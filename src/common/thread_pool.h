// Fixed-size worker pool used to parallelize independent SGP sub-problems in
// the distributed split-and-merge strategy (paper SVI). The paper ran the
// clusters on four machines; the clusters are independent by construction,
// so a thread pool reproduces the same speedup structure on one machine.

#ifndef KGOV_COMMON_THREAD_POOL_H_
#define KGOV_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace kgov {

/// A simple FIFO thread pool. Tasks may not block on other tasks submitted
/// to the same pool (no nested dependency scheduling).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;
};

/// Runs `fn(i)` for i in [0, n) on `pool` (or inline when pool is null),
/// blocking until all iterations complete.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace kgov

#endif  // KGOV_COMMON_THREAD_POOL_H_
