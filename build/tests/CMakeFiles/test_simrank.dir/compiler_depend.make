# Empty compiler generated dependencies file for test_simrank.
# This may be replaced when dependencies are built.
