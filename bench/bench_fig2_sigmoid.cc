// Figure 2: the step function vs its sigmoid approximation (w = 300).
//
// Prints sampled values of both functions over [-1, 1] and the maximum
// deviation for several steepness values, confirming the paper's claim
// that w = 300 makes the sigmoid a close approximation of the step.
// Also registers google-benchmark timings for the two functions, since the
// sigmoid sits in the innermost loop of the multi-vote objective.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "math/sigmoid.h"

namespace kgov {
namespace {

void PrintFigure2() {
  bench::Banner("Figure 2: step function vs sigmoid approximation",
                "Fig. 2 (SV, Eq. 16-17)");

  bench::TablePrinter table({"d", "step(d)", "sigmoid(d, w=300)"},
                            {8, 8, 18});
  table.PrintHeader();
  for (double d = -1.0; d <= 1.0001; d += 0.25) {
    table.PrintRow({bench::Num(d, 2), bench::Num(math::StepFunction(d), 0),
                    bench::Num(math::Sigmoid(d, 300.0), 6)});
  }

  std::printf("\nMax |sigmoid - step| on [-1,1] sampled off the origin:\n");
  bench::TablePrinter dev({"steepness w", "max deviation"}, {12, 14});
  dev.PrintHeader();
  for (double w : {5.0, 20.0, 50.0, 100.0, 300.0}) {
    dev.PrintRow({bench::Num(w, 0),
                  bench::Num(math::SigmoidStepMaxDeviation(w, -1.0, 1.0, 40),
                             8)});
  }
  std::printf(
      "\nPaper: Fig. 2 shows the w=300 sigmoid visually indistinguishable\n"
      "from the step away from 0; measured deviation < 1e-3 confirms it.\n");
}

void BM_Sigmoid(benchmark::State& state) {
  double d = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::Sigmoid(d, 300.0));
    d = -d;
  }
}
BENCHMARK(BM_Sigmoid);

void BM_SigmoidDerivative(benchmark::State& state) {
  double d = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::SigmoidDerivative(d, 300.0));
    d = -d;
  }
}
BENCHMARK(BM_SigmoidDerivative);

}  // namespace
}  // namespace kgov

int main(int argc, char** argv) {
  kgov::PrintFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
