file(REMOVE_RECURSE
  "CMakeFiles/test_vote_encoder.dir/test_vote_encoder.cc.o"
  "CMakeFiles/test_vote_encoder.dir/test_vote_encoder.cc.o.d"
  "test_vote_encoder"
  "test_vote_encoder.pdb"
  "test_vote_encoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vote_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
