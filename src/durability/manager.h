// DurabilityManager: checkpoint protocol + crash recovery.
//
// Ties the two halves together around one directory:
//
//   <dir>/snapshot-<epoch>.kgs   atomic snapshots (durability/snapshot.h)
//   <dir>/wal-<seq>.log          vote log segments (durability/wal.h)
//
// Checkpoint protocol (Checkpoint()):
//   1. Roll the WAL to a fresh segment; call its seq S.
//   2. Encode the snapshot of the CURRENT state (graph CSR, epoch,
//      pending votes, dead letters) stamped wal_seq = S.
//   3. Publish it with fs::WriteFileAtomic.
//   4. Garbage-collect: delete WAL segments with seq < S and snapshots
//      beyond the retention count.
//
// Crash-window analysis: a crash before step 3's rename leaves the older
// snapshot and ALL segments intact (full replay); a crash after the
// rename but before step 4 leaves stale segments the new snapshot's
// wal_seq stamp tells recovery to skip. At no instant can an
// acknowledged vote be lost, and replay never double-applies a vote the
// snapshot already captured.
//
// Recovery (Recover()) scans snapshots newest-first, skipping corrupted
// ones loudly (checksum failures are detected, never trusted), replays
// the WAL tail (seq >= the snapshot's wal_seq), folds replayed
// dead-letter records out of the pending list, and contract-checks the
// result (graph::ValidateCsr + serve::ValidateEpochPin) before handing
// it back.

#ifndef KGOV_DURABILITY_MANAGER_H_
#define KGOV_DURABILITY_MANAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/online_optimizer.h"
#include "durability/wal.h"
#include "graph/graph.h"
#include "votes/vote.h"

namespace kgov::durability {

struct DurabilityOptions {
  /// Directory holding snapshots and WAL segments (created if missing).
  std::string dir;
  VoteWalOptions wal;
  /// Snapshots retained after a checkpoint (>= 1). Keeping more than one
  /// means a checkpoint that corrupts silently (lying disk) still leaves
  /// an older recoverable generation.
  size_t snapshots_to_keep = 2;

  Status Validate() const;
};

/// Owns the WAL and runs the checkpoint protocol. Single-threaded, like
/// the optimizer write path it serves. Move-only.
class DurabilityManager {
 public:
  static StatusOr<DurabilityManager> Open(DurabilityOptions options);

  DurabilityManager(DurabilityManager&&) noexcept = default;
  DurabilityManager& operator=(DurabilityManager&&) noexcept = default;

  /// The vote log to attach via OnlineKgOptimizer::SetVoteLog. Valid for
  /// this manager's lifetime.
  VoteWal* wal() { return &wal_; }

  /// Checkpoints `optimizer`'s current state (serving snapshot, pending
  /// votes, dead letters) into a new snapshot file and truncates the WAL
  /// behind it. `num_entities`/`num_documents` describe the graph's node
  /// layout (recorded in the snapshot header). On error the previous
  /// snapshot generation and the full WAL remain intact.
  Status Checkpoint(const core::OnlineKgOptimizer& optimizer,
                    uint64_t num_entities, uint64_t num_documents);

  const std::string& dir() const { return dir_; }

 private:
  DurabilityManager(std::string dir, size_t snapshots_to_keep, VoteWal wal)
      : dir_(std::move(dir)),
        snapshots_to_keep_(snapshots_to_keep),
        wal_(std::move(wal)) {}

  Status DeleteSnapshotsBeyondRetention();

  std::string dir_;
  size_t snapshots_to_keep_ = 2;
  VoteWal wal_;
};

struct RecoverOptions {
  /// Verify each candidate snapshot's body checksum (see
  /// SnapshotLoadOptions::verify_body_checksum).
  bool verify_body_checksum = true;
  /// Physically truncate torn WAL tails during replay.
  bool truncate_torn_tail = true;
  /// Contract-check the recovered state (graph::ValidateCsr +
  /// serve::ValidateEpochPin) before returning it.
  bool validate = true;

  Status Validate() const;
};

/// What Recover reassembles. Feed `graph` + ToRestoredState() into the
/// OnlineKgOptimizer restoring constructor to resume serving.
struct RecoveredState {
  graph::WeightedDigraph graph;
  uint64_t epoch = 0;
  uint64_t num_entities = 0;
  uint64_t num_documents = 0;
  /// Acknowledged, un-flushed votes: the snapshot's pending list plus the
  /// replayed WAL tail, minus votes a replayed dead-letter record moved.
  std::vector<votes::Vote> pending;
  std::vector<votes::Vote> dead_letters;
  /// Replay/repair evidence, for logs and tests.
  size_t wal_records_replayed = 0;
  size_t torn_tails_truncated = 0;
  size_t corrupt_records = 0;
  size_t snapshots_skipped = 0;
  std::string snapshot_path;

  core::RestoredState ToRestoredState() const {
    return core::RestoredState{epoch, pending, dead_letters};
  }
};

/// Recovers the newest consistent state from `dir`. Returns NotFound when
/// the directory holds no loadable snapshot (a corrupted-only directory
/// is NotFound too - after loud per-file ERROR logs - so callers can fall
/// back to a cold start explicitly rather than silently serving an empty
/// graph).
StatusOr<RecoveredState> Recover(const std::string& dir,
                                 const RecoverOptions& options);

}  // namespace kgov::durability

#endif  // KGOV_DURABILITY_MANAGER_H_
