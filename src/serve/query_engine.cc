#include "serve/query_engine.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/contracts.h"
#include "common/timer.h"
#include "graph/subgraph.h"
#include "serve/validate.h"
#include "telemetry/metrics.h"

namespace kgov::serve {

namespace {

// Serving-subsystem telemetry; pointers resolved once. The queue-depth
// gauge lives in the AdmissionController (published with the atomic
// Gauge::Add), not here.
struct ServeMetrics {
  telemetry::Counter* queries;
  telemetry::Counter* cache_hits;
  telemetry::Counter* cache_misses;
  telemetry::Counter* cache_evictions;
  telemetry::Counter* cache_invalidations;
  telemetry::Counter* sf_leaders;
  telemetry::Counter* sf_followers;
  telemetry::Counter* sf_timeouts;
  telemetry::Counter* errors;
  telemetry::Counter* degraded_queries;
  telemetry::Counter* batch_groups;
  telemetry::Counter* epoch_refreshes;
  telemetry::Counter* invalidation_selective;
  telemetry::Counter* invalidation_full;
  telemetry::Histogram* query_span;

  static const ServeMetrics& Get() {
    static const ServeMetrics m = [] {
      telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Global();
      return ServeMetrics{reg.GetCounter("serve.queries"),
                          reg.GetCounter("serve.cache.hits"),
                          reg.GetCounter("serve.cache.misses"),
                          reg.GetCounter("serve.cache.evictions"),
                          reg.GetCounter("serve.cache.invalidations"),
                          reg.GetCounter("serve.singleflight.leaders"),
                          reg.GetCounter("serve.singleflight.followers"),
                          reg.GetCounter("serve.singleflight.timeouts"),
                          reg.GetCounter("serve.errors"),
                          reg.GetCounter("serve.degraded_queries"),
                          reg.GetCounter("serve.batch.groups"),
                          reg.GetCounter("serve.epoch_refreshes"),
                          reg.GetCounter("stream.invalidation.selective"),
                          reg.GetCounter("stream.invalidation.full"),
                          reg.GetHistogram("span.serve.query.seconds")};
    }();
    return m;
  }
};

}  // namespace

Status QueryEngineOptions::Validate() const {
  KGOV_RETURN_IF_ERROR(eipd.Validate());
  if (top_k < 1) {
    return Status::InvalidArgument("QueryEngineOptions.top_k must be >= 1");
  }
  if (num_threads < 1) {
    return Status::InvalidArgument(
        "QueryEngineOptions.num_threads must be >= 1");
  }
  if (cache_capacity < 1) {
    return Status::InvalidArgument(
        "QueryEngineOptions.cache_capacity must be >= 1");
  }
  if (cache_shards < 1) {
    return Status::InvalidArgument(
        "QueryEngineOptions.cache_shards must be >= 1");
  }
  if (!(full_flush_threshold > 0.0) || full_flush_threshold > 1.0) {
    return Status::InvalidArgument(
        "QueryEngineOptions.full_flush_threshold must be in (0, 1]");
  }
  if (!(single_flight_deadline_seconds > 0.0)) {
    return Status::InvalidArgument(
        "QueryEngineOptions.single_flight_deadline_seconds must be > 0");
  }
  if (max_batch_roots < 1) {
    return Status::InvalidArgument(
        "QueryEngineOptions.max_batch_roots must be >= 1");
  }
  KGOV_RETURN_IF_ERROR(admission.Validate());
  return Status::OK();
}

StatusOr<std::unique_ptr<QueryEngine>> QueryEngine::Create(
    const core::OnlineKgOptimizer* source,
    const std::vector<graph::NodeId>* candidates,
    QueryEngineOptions options) {
  KGOV_RETURN_IF_ERROR(options.Validate());
  if (source == nullptr) {
    return Status::InvalidArgument("QueryEngine requires a non-null source");
  }
  if (candidates == nullptr || candidates->empty()) {
    return Status::InvalidArgument(
        "QueryEngine requires a non-empty candidate set");
  }
  return std::unique_ptr<QueryEngine>(
      new QueryEngine(source, candidates, std::move(options)));
}

QueryEngine::QueryEngine(const core::OnlineKgOptimizer* source,
                         const std::vector<graph::NodeId>* candidates,
                         QueryEngineOptions options)
    : source_(source),
      candidates_(candidates),
      options_(std::move(options)),
      partition_(source->partition()),
      pinned_(source->CurrentEpoch()),
      cache_(options_.cache_capacity, options_.cache_shards),
      admission_(options_.admission),
      workspaces_(options_.num_threads),
      multi_workspaces_(options_.num_threads),
      pool_(std::make_unique<ThreadPool>(options_.num_threads)) {}

QueryEngine::~QueryEngine() = default;

uint64_t QueryEngine::PinnedEpochNumber() const {
  ReaderMutexLock lock(epoch_mu_);
  return pinned_.epoch;
}

QueryEngine::ServeStats QueryEngine::GetServeStats() const {
  ServeStats stats;
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.leaders = leaders_.load(std::memory_order_relaxed);
  stats.followers = followers_.load(std::memory_order_relaxed);
  stats.timeouts = timeouts_.load(std::memory_order_relaxed);
  stats.shed = admission_.GetStats().shed;
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.degraded = degraded_served_.load(std::memory_order_relaxed);
  return stats;
}

void QueryEngine::MaybeRefreshEpoch() {
  const uint64_t latest = source_->CurrentEpochNumber();
  {
    ReaderMutexLock lock(epoch_mu_);
    if (pinned_.epoch >= latest) return;
  }
  // Pin the fresh epoch outside the exclusive section (CurrentEpoch takes
  // the optimizer's own lock), then swap under ours.
  core::ServingEpoch fresh = source_->CurrentEpoch();
  size_t dropped = 0;
  bool full = true;
  {
    WriterMutexLock lock(epoch_mu_);
    if (fresh.epoch <= pinned_.epoch) return;  // raced with another refresh
    if (options_.enable_cache) {
      // Selective invalidation: union the published deltas spanning
      // (pinned, fresh]. Unknowable (history gap, full delta, feature
      // off) or near-global changes fall back to a wholesale flush.
      std::vector<uint32_t> changed;
      if (options_.selective_invalidation &&
          source_->CollectChangedClusters(pinned_.epoch, fresh.epoch,
                                          &changed)) {
        const size_t clusters = partition_->num_clusters();
        full = clusters == 0 ||
               static_cast<double>(changed.size()) >
                   options_.full_flush_threshold *
                       static_cast<double>(clusters);
      }
      // Advance the cache BEFORE the new pin becomes visible: a reader
      // that sees fresh.epoch can then never hit an entry the delta
      // invalidated (see the lock-order proof in result_cache.h).
      dropped = cache_.AdvanceEpoch(fresh.epoch, changed, full);
    }
    pinned_ = std::move(fresh);
  }
  const ServeMetrics& metrics = ServeMetrics::Get();
  metrics.epoch_refreshes->Increment();
  if (options_.enable_cache) {
    if (full) {
      metrics.invalidation_full->Increment();
    } else {
      metrics.invalidation_selective->Increment();
    }
    metrics.cache_invalidations->Increment(dropped);
  }
}

std::vector<uint32_t> QueryEngine::DependencyClusters(
    graph::GraphView view, const ppr::QuerySeed& seed) const {
  std::vector<graph::NodeId> roots;
  roots.reserve(seed.links.size());
  for (const auto& [node, weight] : seed.links) roots.push_back(node);
  // Every edge a walk of length <= L from the seed can traverse has its
  // source inside this ball, and cluster identity is keyed by edge
  // source (matching the optimizer's bitwise diff), so these clusters
  // over-approximate everything the ranking depends on.
  const std::vector<graph::NodeId> ball = graph::CollectOutNeighborhood(
      view, roots, options_.eipd.max_length);
  return partition_->ClustersOf(ball);
}

ppr::PropagationWorkspace* QueryEngine::WorkspaceForThisThread() {
  const size_t index = pool_->CurrentWorkerIndex();
  if (index == ThreadPool::kNotAWorker) {
    return &ppr::ThreadLocalWorkspace();
  }
  return &workspaces_[index];
}

ppr::MultiPropagationWorkspace* QueryEngine::MultiWorkspaceForThisThread() {
  const size_t index = pool_->CurrentWorkerIndex();
  if (index == ThreadPool::kNotAWorker) {
    return &ppr::ThreadLocalMultiWorkspace();
  }
  return &multi_workspaces_[index];
}

ppr::EipdOptions QueryEngine::EffectiveEipd(bool degraded) const {
  ppr::EipdOptions eipd = options_.eipd;
  if (degraded) {
    eipd.max_length =
        std::min(eipd.max_length, options_.admission.degraded_max_length);
  }
  return eipd;
}

std::chrono::nanoseconds QueryEngine::FollowerDeadline() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(options_.single_flight_deadline_seconds));
}

StatusOr<RankedAnswers> QueryEngine::ServeOne(const ppr::QuerySeed& seed) {
  MaybeRefreshEpoch();
  core::ServingEpoch epoch;
  {
    ReaderMutexLock lock(epoch_mu_);
    epoch = pinned_;
  }
  // Debug builds re-check the pinned epoch's structural contract on every
  // query (compiled out under NDEBUG; see serve/validate.h).
  KGOV_DCHECK_OK(ValidateEpochPin(epoch));

  const ServeMetrics& metrics = ServeMetrics::Get();
  const bool degraded = admission_.degraded();

  RankedAnswers result;
  result.epoch = epoch.epoch;
  result.degraded = degraded;

  const std::string key = EncodeCacheKey(seed);
  if (options_.enable_cache && cache_.Get(key, epoch.epoch, &result.answers)) {
    result.from_cache = true;
    result.degraded = false;  // cached rankings are always full depth
    hits_.fetch_add(1, std::memory_order_relaxed);
    metrics.cache_hits->Increment();
    return result;
  }

  ppr::EipdEngine engine(epoch.view(), EffectiveEipd(degraded));
  // Validate before taking flight leadership: an invalid seed is an ERROR
  // outcome, not a miss, and no valid query shares its flight key anyway.
  Status valid = engine.ValidateSeed(seed);
  if (!valid.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    metrics.errors->Increment();
    return valid;
  }

  auto compute = [&]() -> Status {
    StatusOr<std::vector<ppr::ScoredAnswer>> ranked = engine.Rank(
        seed, *candidates_, options_.top_k, WorkspaceForThisThread());
    if (!ranked.ok()) return ranked.status();
    result.answers = std::move(ranked).value();
    return Status::OK();
  };
  auto publish = [&]() {
    // Degraded rankings are never cached: they are not bitwise-comparable
    // to the full-depth result a later hit would be checked against.
    if (options_.enable_cache && !degraded) {
      if (cache_.Put(key, result.answers,
                     DependencyClusters(epoch.view(), seed), epoch.epoch)) {
        metrics.cache_evictions->Increment();
      }
    }
  };
  auto count_propagation = [&]() {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (options_.enable_cache) metrics.cache_misses->Increment();
    if (degraded) {
      degraded_served_.fetch_add(1, std::memory_order_relaxed);
      metrics.degraded_queries->Increment();
    }
  };

  if (options_.enable_single_flight) {
    const std::string flight_key = EncodeFlightKey(key, epoch.epoch, degraded);
    SingleFlightGroup::JoinOutcome join = flights_.JoinOrLead(flight_key);
    if (join.token != nullptr) {
      // Leader. Re-probe the cache first: the previous leader for this
      // key publishes to the cache BEFORE retiring its flight, so a miss
      // that wins leadership just after the old flight retired may find
      // the value already published - serving it keeps "exactly one
      // propagation per cold key" exact instead of best-effort.
      if (options_.enable_cache &&
          cache_.Get(key, epoch.epoch, &result.answers)) {
        join.token->Complete(Status::OK(), result.answers);
        result.from_cache = true;
        result.degraded = false;
        hits_.fetch_add(1, std::memory_order_relaxed);
        metrics.cache_hits->Increment();
        return result;
      }
      Status computed = compute();
      if (!computed.ok()) {
        join.token->Complete(computed, {});
        errors_.fetch_add(1, std::memory_order_relaxed);
        metrics.errors->Increment();
        return computed;
      }
      publish();  // to the cache BEFORE Complete (see the re-probe above)
      join.token->Complete(Status::OK(), result.answers);
      count_propagation();
      leaders_.fetch_add(1, std::memory_order_relaxed);
      metrics.sf_leaders->Increment();
      return result;
    }

    SingleFlightGroup::WaitResult wait =
        SingleFlightGroup::Wait(join.flight, FollowerDeadline());
    if (wait.published) {
      if (!wait.status.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        metrics.errors->Increment();
        return wait.status;
      }
      result.answers = std::move(wait.answers);
      result.coalesced = true;
      followers_.fetch_add(1, std::memory_order_relaxed);
      metrics.sf_followers->Increment();
      if (degraded) {
        degraded_served_.fetch_add(1, std::memory_order_relaxed);
        metrics.degraded_queries->Increment();
      }
      return result;
    }
    // Deadline expired: detach and propagate for ourselves (counted as a
    // timeout AND a miss; the flight stays live for other followers).
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    metrics.sf_timeouts->Increment();
  }

  Status computed = compute();
  if (!computed.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    metrics.errors->Increment();
    return computed;
  }
  publish();
  count_propagation();
  return result;
}

std::vector<std::pair<size_t, StatusOr<RankedAnswers>>> QueryEngine::ServeGroup(
    const std::vector<ppr::QuerySeed>& seeds,
    const std::vector<size_t>& indices) {
  MaybeRefreshEpoch();
  core::ServingEpoch epoch;
  {
    ReaderMutexLock lock(epoch_mu_);
    epoch = pinned_;
  }
  KGOV_DCHECK_OK(ValidateEpochPin(epoch));

  const ServeMetrics& metrics = ServeMetrics::Get();
  const bool degraded = admission_.degraded();
  ppr::EipdEngine engine(epoch.view(), EffectiveEipd(degraded));

  std::vector<std::pair<size_t, StatusOr<RankedAnswers>>> out;
  out.reserve(indices.size());

  auto base_result = [&]() {
    RankedAnswers r;
    r.epoch = epoch.epoch;
    r.degraded = degraded;
    return r;
  };
  auto count_degraded = [&]() {
    if (degraded) {
      degraded_served_.fetch_add(1, std::memory_order_relaxed);
      metrics.degraded_queries->Increment();
    }
  };

  // One propagation lane this task leads: the leading query, its flight
  // obligation (null when single-flight is off), and any in-batch
  // duplicates coalesced onto it.
  struct Led {
    size_t index;
    std::string cache_key;
    std::unique_ptr<SingleFlightGroup::LeaderToken> token;
    std::vector<size_t> coalesced;
  };
  struct Waiting {
    size_t index;
    SingleFlightGroup::JoinOutcome join;
  };
  std::vector<Led> led;
  std::vector<Waiting> waiting;
  std::unordered_map<std::string, size_t> local;  // flight key -> led slot

  // Phase 1 (never blocks): cache probes, validation, flight
  // registration. Foreign flights are only recorded, not waited on.
  for (size_t index : indices) {
    const ppr::QuerySeed& seed = seeds[index];
    RankedAnswers result = base_result();
    std::string key = EncodeCacheKey(seed);
    if (options_.enable_cache &&
        cache_.Get(key, epoch.epoch, &result.answers)) {
      result.from_cache = true;
      result.degraded = false;
      hits_.fetch_add(1, std::memory_order_relaxed);
      metrics.cache_hits->Increment();
      out.emplace_back(index, std::move(result));
      continue;
    }
    Status valid = engine.ValidateSeed(seed);
    if (!valid.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      metrics.errors->Increment();
      out.emplace_back(index, std::move(valid));
      continue;
    }
    if (!options_.enable_single_flight) {
      led.push_back(Led{index, std::move(key), nullptr, {}});
      continue;
    }
    std::string flight_key = EncodeFlightKey(key, epoch.epoch, degraded);
    auto it = local.find(flight_key);
    if (it != local.end()) {
      // In-batch duplicate of a lane we already lead.
      led[it->second].coalesced.push_back(index);
      continue;
    }
    SingleFlightGroup::JoinOutcome join = flights_.JoinOrLead(flight_key);
    if (join.token == nullptr) {
      waiting.push_back(Waiting{index, std::move(join)});
      continue;
    }
    // Leader re-probe (same reasoning as ServeOne).
    if (options_.enable_cache &&
        cache_.Get(key, epoch.epoch, &result.answers)) {
      join.token->Complete(Status::OK(), result.answers);
      result.from_cache = true;
      result.degraded = false;
      hits_.fetch_add(1, std::memory_order_relaxed);
      metrics.cache_hits->Increment();
      out.emplace_back(index, std::move(result));
      continue;
    }
    local.emplace(std::move(flight_key), led.size());
    led.push_back(Led{index, std::move(key), std::move(join.token), {}});
  }

  // Phase 2: ONE multi-root propagation over every lane this task leads,
  // then resolve our own flights. This MUST precede any foreign Wait
  // (the deadlock discipline in single_flight.h).
  if (!led.empty()) {
    std::vector<ppr::QuerySeed> roots;
    roots.reserve(led.size());
    for (const Led& l : led) roots.push_back(seeds[l.index]);
    metrics.batch_groups->Increment();
    StatusOr<std::vector<std::vector<ppr::ScoredAnswer>>> multi =
        engine.RankMulti(roots, *candidates_, options_.top_k,
                         MultiWorkspaceForThisThread());
    if (!multi.ok()) {
      for (Led& l : led) {
        if (l.token != nullptr) l.token->Complete(multi.status(), {});
        out.emplace_back(l.index, multi.status());
        errors_.fetch_add(1, std::memory_order_relaxed);
        metrics.errors->Increment();
        for (size_t dup : l.coalesced) {
          out.emplace_back(dup, multi.status());
          errors_.fetch_add(1, std::memory_order_relaxed);
          metrics.errors->Increment();
        }
      }
    } else {
      std::vector<std::vector<ppr::ScoredAnswer>> lanes =
          std::move(multi).value();
      for (size_t b = 0; b < led.size(); ++b) {
        Led& l = led[b];
        RankedAnswers result = base_result();
        result.answers = std::move(lanes[b]);
        if (options_.enable_cache && !degraded) {
          if (cache_.Put(l.cache_key, result.answers,
                         DependencyClusters(epoch.view(), seeds[l.index]),
                         epoch.epoch)) {
            metrics.cache_evictions->Increment();
          }
        }
        if (l.token != nullptr) {
          l.token->Complete(Status::OK(), result.answers);
          leaders_.fetch_add(1, std::memory_order_relaxed);
          metrics.sf_leaders->Increment();
        }
        misses_.fetch_add(1, std::memory_order_relaxed);
        if (options_.enable_cache) metrics.cache_misses->Increment();
        count_degraded();
        for (size_t dup : l.coalesced) {
          RankedAnswers copy = result;
          copy.coalesced = true;
          followers_.fetch_add(1, std::memory_order_relaxed);
          metrics.sf_followers->Increment();
          count_degraded();
          out.emplace_back(dup, std::move(copy));
        }
        out.emplace_back(l.index, std::move(result));
      }
    }
  }

  // Phase 3: wait on foreign flights. Every flight this task led is
  // already resolved, so these waits can never participate in a cycle.
  for (Waiting& w : waiting) {
    SingleFlightGroup::WaitResult wait =
        SingleFlightGroup::Wait(w.join.flight, FollowerDeadline());
    if (wait.published) {
      if (!wait.status.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        metrics.errors->Increment();
        out.emplace_back(w.index, std::move(wait.status));
        continue;
      }
      RankedAnswers result = base_result();
      result.answers = std::move(wait.answers);
      result.coalesced = true;
      followers_.fetch_add(1, std::memory_order_relaxed);
      metrics.sf_followers->Increment();
      count_degraded();
      out.emplace_back(w.index, std::move(result));
      continue;
    }
    // Deadline expired: detach and propagate solo.
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    metrics.sf_timeouts->Increment();
    const ppr::QuerySeed& seed = seeds[w.index];
    RankedAnswers result = base_result();
    StatusOr<std::vector<ppr::ScoredAnswer>> ranked = engine.Rank(
        seed, *candidates_, options_.top_k, WorkspaceForThisThread());
    if (!ranked.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      metrics.errors->Increment();
      out.emplace_back(w.index, ranked.status());
      continue;
    }
    result.answers = std::move(ranked).value();
    if (options_.enable_cache && !degraded) {
      if (cache_.Put(EncodeCacheKey(seed), result.answers,
                     DependencyClusters(epoch.view(), seed), epoch.epoch)) {
        metrics.cache_evictions->Increment();
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (options_.enable_cache) metrics.cache_misses->Increment();
    count_degraded();
    out.emplace_back(w.index, std::move(result));
  }
  return out;
}

std::vector<std::vector<size_t>> QueryEngine::GroupForBatch(
    const std::vector<ppr::QuerySeed>& seeds,
    const std::vector<size_t>& admitted) const {
  std::vector<std::vector<size_t>> groups;
  if (!options_.enable_batching || options_.max_batch_roots <= 1 ||
      admitted.size() <= 1) {
    groups.reserve(admitted.size());
    for (size_t index : admitted) groups.push_back({index});
    return groups;
  }
  // Bucket by the cluster of the seed's first link node: queries rooted
  // in the same cluster start their frontiers in the same region, so one
  // multi-root pass walks shared structure. Seeds with no links serve
  // solo (they have no root cluster).
  std::unordered_map<uint32_t, std::vector<size_t>> buckets;
  std::vector<uint32_t> order;  // deterministic group order
  for (size_t index : admitted) {
    const ppr::QuerySeed& seed = seeds[index];
    if (seed.links.empty()) {
      groups.push_back({index});
      continue;
    }
    const uint32_t cluster = partition_->ClusterOf(seed.links.front().first);
    auto [it, inserted] = buckets.try_emplace(cluster);
    if (inserted) order.push_back(cluster);
    it->second.push_back(index);
  }
  for (uint32_t cluster : order) {
    const std::vector<size_t>& members = buckets[cluster];
    for (size_t begin = 0; begin < members.size();
         begin += options_.max_batch_roots) {
      const size_t end =
          std::min(members.size(), begin + options_.max_batch_roots);
      groups.emplace_back(members.begin() + static_cast<ptrdiff_t>(begin),
                          members.begin() + static_cast<ptrdiff_t>(end));
    }
  }
  return groups;
}

StatusOr<RankedAnswers> QueryEngine::Submit(const ppr::QuerySeed& seed) {
  std::vector<StatusOr<RankedAnswers>> results = SubmitBatch({seed});
  return std::move(results.front());
}

std::vector<StatusOr<RankedAnswers>> QueryEngine::SubmitBatch(
    const std::vector<ppr::QuerySeed>& seeds) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  const size_t n = seeds.size();
  metrics.queries->Increment(n);
  queries_.fetch_add(n, std::memory_order_relaxed);

  std::vector<std::optional<StatusOr<RankedAnswers>>> slots(n);

  // Admission: one window slot per query. A shed query is answered
  // immediately with kResourceExhausted and never enqueued (the
  // controller counts it; its slot was never taken, so no Finish).
  std::vector<size_t> admitted;
  admitted.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Status admit = admission_.TryAdmit();
    if (admit.ok()) {
      admitted.push_back(i);
    } else {
      slots[i].emplace(std::move(admit));
    }
  }

  using GroupResult = std::vector<std::pair<size_t, StatusOr<RankedAnswers>>>;
  std::vector<std::vector<size_t>> groups = GroupForBatch(seeds, admitted);
  std::vector<std::future<GroupResult>> futures;
  futures.reserve(groups.size());
  for (std::vector<size_t>& group : groups) {
    Timer enqueue_timer;
    futures.push_back(pool_->Submit(
        [this, &seeds, group = std::move(group), enqueue_timer, &metrics]() {
          GroupResult served;
          if (group.size() == 1) {
            served.emplace_back(group.front(), ServeOne(seeds[group.front()]));
          } else {
            served = ServeGroup(seeds, group);
          }
          // End-to-end latency: queue wait + propagation (or cache hit),
          // observed at completion so gather order cannot inflate it.
          // Each admitted query releases its admission slot here.
          const double elapsed = enqueue_timer.ElapsedSeconds();
          for (size_t i = 0; i < served.size(); ++i) {
            metrics.query_span->Observe(elapsed);
            admission_.Finish(elapsed);
          }
          return served;
        }));
  }
  for (std::future<GroupResult>& future : futures) {
    for (auto& [index, result] : future.get()) {
      slots[index].emplace(std::move(result));
    }
  }

  std::vector<StatusOr<RankedAnswers>> results;
  results.reserve(n);
  for (std::optional<StatusOr<RankedAnswers>>& slot : slots) {
    KGOV_CHECK(slot.has_value());
    results.push_back(std::move(*slot));
  }
  return results;
}

}  // namespace kgov::serve
