# Empty compiler generated dependencies file for kgov_math.
# This may be replaced when dependencies are built.
