#include "core/kg_optimizer.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>

#include "cluster/vote_similarity.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "graph/csr.h"
#include "graph/subgraph.h"
#include "ppr/eipd_engine.h"
#include "ppr/eipd_engine.h"
#include "telemetry/metrics.h"

namespace kgov::core {

namespace {

// Split-and-merge stage telemetry; pointers resolved once.
struct SplitMergeMetrics {
  telemetry::Counter* solves;
  telemetry::Counter* clusters;
  telemetry::Counter* failed_clusters;
  telemetry::Counter* quarantined_votes;
  telemetry::Counter* votes_verified;
  telemetry::Counter* votes_satisfied;
  telemetry::Histogram* split_span;
  telemetry::Histogram* solve_span;
  telemetry::Histogram* cluster_span;
  telemetry::Histogram* verify_span;
  telemetry::Histogram* merge_span;

  static const SplitMergeMetrics& Get() {
    static const SplitMergeMetrics m = [] {
      telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Global();
      return SplitMergeMetrics{
          reg.GetCounter("split_merge.solves"),
          reg.GetCounter("split_merge.clusters"),
          reg.GetCounter("split_merge.failed_clusters"),
          reg.GetCounter("split_merge.quarantined_votes"),
          reg.GetCounter("split_merge.votes_verified"),
          reg.GetCounter("split_merge.votes_satisfied"),
          reg.GetHistogram("span.split_merge.split.seconds"),
          reg.GetHistogram("span.split_merge.solve.seconds"),
          reg.GetHistogram("span.split_merge.cluster.seconds"),
          reg.GetHistogram("span.split_merge.verify.seconds"),
          reg.GetHistogram("span.split_merge.merge.seconds")};
    }();
    return m;
  }
};

// Accumulates per-variable deltas into `changes`, keyed by edge: the
// difference between the value ApplyValues is about to write and the
// weight currently in `graph`. Diff against the graph, NOT
// problem.initial(): the encoder clamps its initial point into the
// variable box, so a solution that "did not move" can still write a
// clamped value over an out-of-box weight - a real bitwise change that
// must be recorded (and its source renormalized) like any other. Call
// before ApplyValues.
void RecordDeltas(const ppr::EdgeVariableMap& vars,
                  const graph::WeightedDigraph& graph,
                  const std::vector<double>& solution,
                  std::unordered_map<graph::EdgeId, double>* changes) {
  for (size_t v = 0; v < vars.NumVariables(); ++v) {
    const graph::EdgeId edge = vars.EdgeOf(static_cast<math::VarId>(v));
    const double delta = solution[v] - graph.Weight(edge);
    if (delta != 0.0) {
      (*changes)[edge] += delta;
    }
  }
}

// Renormalizes only the out-weight lists the update touched (the source
// nodes of edges whose weight moved). Untouched nodes keep their exact bit
// patterns - the invariant the streaming epoch diff and selective cache
// invalidation are built on. A whole-graph renormalize would divide every
// node's weights by a sum that equals 1.0 only up to rounding, perturbing
// the entire graph by an ulp and marking every cluster changed on every
// flush. Normalization-per-touched-node is inductively equivalent: the
// initial graph arrives normalized, and a node's sum only drifts when one
// of its out-edges is updated - exactly when it is renormalized here.
void NormalizeTouchedSources(
    const std::unordered_map<graph::EdgeId, double>& changes,
    graph::WeightedDigraph* g) {
  std::unordered_set<graph::NodeId> sources;
  sources.reserve(changes.size());
  for (const auto& [edge, delta] : changes) {
    sources.insert(g->edges()[edge].from);
  }
  for (graph::NodeId node : sources) g->NormalizeOutWeights(node);
}

}  // namespace

Status OptimizerOptions::Validate() const {
  KGOV_RETURN_IF_ERROR(encoder.symbolic.eipd.Validate());
  KGOV_RETURN_IF_ERROR(sgp.Validate());
  if (encoder.weight_lower_bound <= 0.0) {
    return Status::InvalidArgument(
        "OptimizerOptions.encoder.weight_lower_bound must be > 0");
  }
  if (encoder.weight_upper_bound < encoder.weight_lower_bound) {
    return Status::InvalidArgument(
        "OptimizerOptions.encoder.weight_upper_bound must be >= "
        "weight_lower_bound");
  }
  if (judgment_shared_weight <= 0.0 || judgment_shared_weight >= 1.0) {
    return Status::InvalidArgument(
        "OptimizerOptions.judgment_shared_weight must be in (0, 1)");
  }
  if (single_vote_refine_rounds < 1) {
    return Status::InvalidArgument(
        "OptimizerOptions.single_vote_refine_rounds must be >= 1");
  }
  if (ap.damping < 0.5 || ap.damping >= 1.0) {
    return Status::InvalidArgument(
        "OptimizerOptions.ap.damping must be in [0.5, 1)");
  }
  if (ap.max_iterations < 1) {
    return Status::InvalidArgument(
        "OptimizerOptions.ap.max_iterations must be >= 1");
  }
  if (retry.max_attempts < 1) {
    return Status::InvalidArgument(
        "OptimizerOptions.retry.max_attempts must be >= 1");
  }
  return Status::OK();
}

KgOptimizer::KgOptimizer(const graph::WeightedDigraph* graph,
                         OptimizerOptions options)
    : graph_(graph),
      options_(std::move(options)),
      options_status_(options_.Validate()) {
  KGOV_CHECK(graph_ != nullptr);
}

std::vector<votes::Vote> KgOptimizer::Filter(
    const std::vector<votes::Vote>& votes,
    const graph::WeightedDigraph& graph) const {
  if (!options_.apply_judgment_filter) {
    std::vector<votes::Vote> kept;
    kept.reserve(votes.size());
    for (const votes::Vote& vote : votes) {
      if (vote.IsWellFormed()) kept.push_back(vote);
    }
    return kept;
  }
  votes::JudgmentOptions judgment;
  judgment.symbolic = options_.encoder.symbolic;
  judgment.is_variable = options_.encoder.is_variable;
  judgment.shared_edge_weight = options_.judgment_shared_weight;
  votes::JudgmentFilter filter(&graph, std::move(judgment));
  return filter.FilterVotes(votes);
}

Result<OptimizeReport> KgOptimizer::SingleVoteSolve(
    const std::vector<votes::Vote>& votes) const {
  KGOV_RETURN_IF_ERROR(options_status_);
  OptimizeReport report;
  report.votes_in = votes.size();
  report.optimized = *graph_;
  graph::WeightedDigraph& current = report.optimized;

  math::SgpSolverOptions sgp = options_.sgp;
  sgp.formulation = math::SgpFormulation::kHardConstraints;
  math::SgpSolver solver(sgp);

  Timer timer;
  const int rounds = std::max(1, options_.single_vote_refine_rounds);
  for (const votes::Vote& vote : votes) {
    if (!vote.IsWellFormed() || vote.IsPositive()) continue;

    bool encoded_any = false;
    for (int round = 0; round < rounds; ++round) {
      timer.Restart();
      // Encode against the *current* graph: the greedy algorithm folds
      // each vote's result into the graph before the next (Alg. 1), and
      // refinement rounds see the effect of normalization.
      votes::VoteEncoder encoder(&current, options_.encoder);
      Result<votes::EncodedProgram> encoded = encoder.EncodeSingle(vote);
      report.encode_seconds += timer.ElapsedSeconds();
      if (!encoded.ok()) {
        KGOV_LOG(DEBUG) << "vote " << vote.id
                        << " not encodable: " << encoded.status();
        break;
      }
      votes::EncodedProgram& program = encoded.value();

      timer.Restart();
      math::SgpSolution solution = solver.Solve(program.problem);
      report.solve_seconds += timer.ElapsedSeconds();
      // A greedy baseline applies the solver's point even when full
      // feasibility was not reached (fmincon behaves the same way).
      std::unordered_map<graph::EdgeId, double> round_changes;
      RecordDeltas(program.variables, current, solution.x, &round_changes);
      for (const auto& [edge, delta] : round_changes) {
        report.weight_changes[edge] += delta;
      }
      program.variables.ApplyValues(solution.x, &current);
      if (options_.normalize_after_update) {
        NormalizeTouchedSources(round_changes, &current);
      }
      if (!encoded_any) {
        report.constraints_total += solution.total_constraints;
        ++report.votes_encoded;
        encoded_any = true;
      }

      // Refinement check: is the voted best answer ranked first now? The
      // engine wants a frozen view; one CSR build per refine round is
      // noise next to the SGP solve that preceded it.
      graph::CsrSnapshot refine_snapshot(current);
      ppr::EipdEngine evaluator(refine_snapshot.View(),
                                options_.encoder.symbolic.eipd);
      StatusOr<std::vector<ppr::ScoredAnswer>> reranked_or = evaluator.Rank(
          vote.query, vote.answer_list, vote.answer_list.size());
      std::vector<ppr::ScoredAnswer> reranked =
          reranked_or.ok() ? std::move(reranked_or).value()
                           : std::vector<ppr::ScoredAnswer>{};
      if (!reranked.empty() && reranked.front().node == vote.best_answer) {
        report.constraints_satisfied += solution.total_constraints;
        break;
      }
      if (round + 1 == rounds) {
        report.constraints_satisfied += solution.satisfied_constraints;
      }
    }
  }
  report.votes_after_filter = report.votes_encoded;
  return report;
}

Result<OptimizeReport> KgOptimizer::MultiVoteSolve(
    const std::vector<votes::Vote>& votes) const {
  KGOV_RETURN_IF_ERROR(options_status_);
  OptimizeReport report;
  report.votes_in = votes.size();
  report.optimized = *graph_;

  Timer timer;
  std::vector<votes::Vote> filtered = Filter(votes, *graph_);
  report.votes_after_filter = filtered.size();
  if (filtered.empty()) {
    return Status::InvalidArgument("no votes survive filtering");
  }

  votes::VoteEncoder encoder(graph_, options_.encoder);
  Result<votes::EncodedProgram> encoded = encoder.EncodeBatch(filtered);
  KGOV_RETURN_IF_ERROR(encoded.status());
  votes::EncodedProgram& program = encoded.value();
  report.votes_encoded = program.encoded_vote_ids.size();
  report.encode_seconds = timer.ElapsedSeconds();

  timer.Restart();
  ResilientSgpSolver solver(options_.sgp, options_.retry);
  ResilientSolveOutcome outcome = solver.Solve(program.problem);
  math::SgpSolution& solution = outcome.solution;
  report.solve_seconds = timer.ElapsedSeconds();
  report.solve_attempts = outcome.attempts.size();

  RecordDeltas(program.variables, report.optimized, solution.x,
               &report.weight_changes);
  program.variables.ApplyValues(solution.x, &report.optimized);
  if (options_.normalize_after_update) {
    NormalizeTouchedSources(report.weight_changes, &report.optimized);
  }
  report.constraints_total = solution.total_constraints;
  report.constraints_satisfied = solution.satisfied_constraints;
  return report;
}

Result<OptimizeReport> KgOptimizer::SplitMergeSolve(
    const std::vector<votes::Vote>& votes) const {
  return SplitMergeImpl(votes, nullptr);
}

namespace {

// Options identical to `base` except that the encoder's variable set is
// narrowed to edges satisfying both the original predicate and `scope`.
// The judgment filter inherits encoder.is_variable, so filtering sees the
// same narrowed scope the solve does.
OptimizerOptions NarrowToScope(const OptimizerOptions& base,
                               ppr::SymbolicEipd::VariablePredicate scope) {
  OptimizerOptions scoped = base;
  if (base.encoder.is_variable) {
    scoped.encoder.is_variable =
        [outer = base.encoder.is_variable, scope = std::move(scope)](
            const graph::WeightedDigraph& g, graph::EdgeId e) {
          return outer(g, e) && scope(g, e);
        };
  } else {
    scoped.encoder.is_variable = std::move(scope);
  }
  return scoped;
}

}  // namespace

Result<OptimizeReport> KgOptimizer::MultiVoteSolveScoped(
    const std::vector<votes::Vote>& votes,
    ppr::SymbolicEipd::VariablePredicate scope) const {
  KGOV_RETURN_IF_ERROR(options_status_);
  if (!scope) return MultiVoteSolve(votes);
  KgOptimizer scoped(graph_, NarrowToScope(options_, std::move(scope)));
  return scoped.MultiVoteSolve(votes);
}

Result<OptimizeReport> KgOptimizer::SplitMergeSolveScoped(
    const std::vector<votes::Vote>& votes,
    ppr::SymbolicEipd::VariablePredicate scope) const {
  KGOV_RETURN_IF_ERROR(options_status_);
  if (!scope) return SplitMergeSolve(votes);
  KgOptimizer scoped(graph_, NarrowToScope(options_, std::move(scope)));
  return scoped.SplitMergeImpl(votes, nullptr);
}

Result<OptimizeReport> KgOptimizer::DistributedSplitMergeSolve(
    const std::vector<votes::Vote>& votes, ThreadPool* pool) const {
  if (pool == nullptr) {
    return Status::InvalidArgument(
        "DistributedSplitMergeSolve requires a thread pool");
  }
  return SplitMergeImpl(votes, pool);
}

Result<OptimizeReport> KgOptimizer::SplitMergeImpl(
    const std::vector<votes::Vote>& votes, ThreadPool* pool) const {
  KGOV_RETURN_IF_ERROR(options_status_);
  const SplitMergeMetrics& metrics = SplitMergeMetrics::Get();
  metrics.solves->Increment();
  OptimizeReport report;
  report.votes_in = votes.size();
  report.optimized = *graph_;

  Timer timer;
  std::vector<votes::Vote> filtered = Filter(votes, *graph_);
  report.votes_after_filter = filtered.size();
  if (filtered.empty()) {
    return Status::InvalidArgument("no votes survive filtering");
  }

  // Split: edge sets per vote -> similarity matrix -> affinity propagation.
  votes::VoteEncoder encoder(graph_, options_.encoder);
  std::vector<std::unordered_set<graph::EdgeId>> vote_edges;
  vote_edges.reserve(filtered.size());
  for (const votes::Vote& vote : filtered) {
    vote_edges.push_back(encoder.AssociatedEdges(vote));
  }
  std::vector<std::vector<double>> similarity =
      cluster::VoteSimilarityMatrix(vote_edges);
  Result<cluster::ApResult> clustering =
      cluster::AffinityPropagation(similarity, options_.ap);
  KGOV_RETURN_IF_ERROR(clustering.status());

  size_t num_clusters = clustering->exemplars.size();
  std::vector<std::vector<votes::Vote>> groups(num_clusters);
  for (size_t i = 0; i < filtered.size(); ++i) {
    groups[clustering->labels[i]].push_back(filtered[i]);
  }
  report.num_clusters = num_clusters;
  report.encode_seconds = timer.ElapsedSeconds();
  metrics.split_span->Observe(report.encode_seconds);
  metrics.clusters->Increment(num_clusters);

  // Frozen parent CSR shared (read-only) by all cluster tasks: each
  // verification builds a zero-copy induced sub-view over it instead of
  // materializing a per-cluster WeightedDigraph.
  std::unique_ptr<graph::CsrSnapshot> parent_snapshot;
  if (options_.verify_cluster_solutions) {
    parent_snapshot = std::make_unique<graph::CsrSnapshot>(*graph_);
  }
  const graph::GraphView parent_view =
      parent_snapshot == nullptr ? graph::GraphView{}
                                 : parent_snapshot->View();

  // Solve one multi-vote SGP per cluster (clusters are independent by
  // construction, so they may run in parallel). A cluster whose solve
  // fails after the retry chain is isolated: its votes are quarantined
  // into the report and the rest of the batch proceeds.
  timer.Restart();
  std::vector<cluster::ClusterDelta> deltas(num_clusters);
  report.cluster_seconds.assign(num_clusters, 0.0);
  Mutex report_mu{KGOV_LOCK_RANK(kSolverBatchReport)};
  Status first_error;
  std::vector<char> cluster_handled(num_clusters, 0);
  ResilientSgpSolver solver(options_.sgp, options_.retry);

  auto record_failure = [&](size_t c,
                            const Status& status) KGOV_REQUIRES(report_mu) {
    report.failed_clusters.push_back(
        ClusterFailure{c, groups[c].size(), status});
    report.quarantined_votes.insert(report.quarantined_votes.end(),
                                    groups[c].begin(), groups[c].end());
    metrics.failed_clusters->Increment();
    metrics.quarantined_votes->Increment(groups[c].size());
    if (first_error.ok()) first_error = status;
  };

  auto solve_cluster = [&](size_t c) {
    if (groups[c].empty()) {
      MutexLock lock(report_mu);
      cluster_handled[c] = 1;
      return;
    }
    Timer cluster_timer;
    // Injection point for stalled cluster solves (deadline testing).
    MaybeInjectStall(FaultSite::kSlowSolve);
    votes::VoteEncoder cluster_encoder(graph_, options_.encoder);
    Result<votes::EncodedProgram> encoded =
        cluster_encoder.EncodeBatch(groups[c]);
    if (!encoded.ok()) {
      metrics.cluster_span->Observe(cluster_timer.ElapsedSeconds());
      MutexLock lock(report_mu);
      cluster_handled[c] = 1;
      record_failure(c, encoded.status());
      return;
    }
    votes::EncodedProgram& program = encoded.value();
    ResilientSolveOutcome outcome = solver.Solve(program.problem, c);
    math::SgpSolution& solution = outcome.solution;
    if (outcome.exhausted) {
      metrics.cluster_span->Observe(cluster_timer.ElapsedSeconds());
      MutexLock lock(report_mu);
      cluster_handled[c] = 1;
      report.solve_attempts += outcome.attempts.size();
      record_failure(c, solution.status);
      return;
    }

    cluster::ClusterDelta delta;
    delta.num_votes = groups[c].size();
    const std::vector<double>& initial = program.problem.initial();
    for (size_t v = 0; v < program.variables.NumVariables(); ++v) {
      double d = solution.x[v] - initial[v];
      if (d != 0.0) {
        delta.delta[program.variables.EdgeOf(static_cast<math::VarId>(v))] =
            d;
      }
    }
    deltas[c] = std::move(delta);

    // Verify the cluster's own solution at the EIPD level: rank each
    // vote's answer list on the L-ball sub-view around its seeds and
    // answers, with the solved weights applied as overrides (the sub-view
    // keeps the parent's EdgeIds, so the solver's keys apply directly).
    size_t verified = 0;
    size_t satisfied = 0;
    if (options_.verify_cluster_solutions) {
      telemetry::ScopedSpan verify_span(metrics.verify_span);
      std::unordered_map<graph::EdgeId, double> overrides;
      overrides.reserve(program.variables.NumVariables());
      for (size_t v = 0; v < program.variables.NumVariables(); ++v) {
        overrides[program.variables.EdgeOf(static_cast<math::VarId>(v))] =
            solution.x[v];
      }
      std::vector<graph::NodeId> roots;
      for (const votes::Vote& vote : groups[c]) {
        for (const auto& [node, weight] : vote.query.links) {
          roots.push_back(node);
        }
        roots.insert(roots.end(), vote.answer_list.begin(),
                     vote.answer_list.end());
      }
      std::vector<graph::NodeId> ball = graph::CollectOutNeighborhood(
          parent_view, roots, options_.encoder.symbolic.eipd.max_length);
      Result<graph::InducedSubview> sub =
          graph::InducedSubview::Make(parent_view, ball);
      if (sub.ok()) {
        ppr::EipdEngine engine(sub->view(), options_.encoder.symbolic.eipd);
        ppr::PropagationWorkspace workspace;
        for (const votes::Vote& vote : groups[c]) {
          if (!vote.IsWellFormed()) continue;
          ppr::QuerySeed local_seed;
          local_seed.links.reserve(vote.query.links.size());
          for (const auto& [node, weight] : vote.query.links) {
            local_seed.links.emplace_back(sub->LocalOf(node), weight);
          }
          std::vector<graph::NodeId> local_answers;
          local_answers.reserve(vote.answer_list.size());
          for (graph::NodeId a : vote.answer_list) {
            local_answers.push_back(sub->LocalOf(a));
          }
          StatusOr<std::vector<ppr::ScoredAnswer>> top =
              engine.RankWithOverrides(local_seed, local_answers, 1,
                                       overrides, &workspace);
          ++verified;
          if (top.ok() && !top->empty() &&
              top->front().node == sub->LocalOf(vote.best_answer)) {
            ++satisfied;
          }
        }
      }
    }

    metrics.cluster_span->Observe(cluster_timer.ElapsedSeconds());
    metrics.votes_verified->Increment(verified);
    metrics.votes_satisfied->Increment(satisfied);
    MutexLock lock(report_mu);
    cluster_handled[c] = 1;
    report.cluster_seconds[c] = cluster_timer.ElapsedSeconds();
    report.solve_attempts += outcome.attempts.size();
    report.votes_encoded += program.encoded_vote_ids.size();
    report.constraints_total += solution.total_constraints;
    report.constraints_satisfied += solution.satisfied_constraints;
    report.votes_verified += verified;
    report.votes_satisfied += satisfied;
  };

  Status parallel_status = ParallelFor(pool, num_clusters, solve_cluster);
  report.solve_seconds = timer.ElapsedSeconds();
  metrics.solve_span->Observe(report.solve_seconds);
  // A task that died (threw) before recording any outcome still isolates
  // to its own cluster: quarantine it like a failed solve.
  if (!parallel_status.ok()) {
    MutexLock lock(report_mu);
    for (size_t c = 0; c < num_clusters; ++c) {
      if (!cluster_handled[c] && !groups[c].empty()) {
        record_failure(c, parallel_status);
      }
    }
  }
  if (!options_.quarantine_failed_clusters && !first_error.ok()) {
    return first_error;
  }
  if (report.failed_clusters.size() == num_clusters && num_clusters > 0) {
    // Nothing survived: surface the failure instead of a silent no-op.
    return first_error;
  }

  // Merge: resolve multi-cluster conflicts, apply, normalize.
  telemetry::ScopedSpan merge_span(metrics.merge_span);
  std::unordered_map<graph::EdgeId, double> merged =
      cluster::MergeClusterDeltas(deltas, options_.merge_rule);
  for (const auto& [edge, delta] : merged) {
    double w = report.optimized.Weight(edge) + delta;
    w = std::clamp(w, options_.encoder.weight_lower_bound,
                   options_.encoder.weight_upper_bound);
    report.optimized.SetWeight(edge, w);
  }
  report.weight_changes = std::move(merged);
  if (options_.normalize_after_update) {
    NormalizeTouchedSources(report.weight_changes, &report.optimized);
  }
  return report;
}

}  // namespace kgov::core
