// Figure 5: MRR and MAP of the test dataset before/after optimization.
//
// (a) over the whole test set; (b) restricted to the questions whose best
// answer does NOT rank first under the original graph (the subset the
// single-vote solution can actually help).
//
// Paper: (a) original ~0.63 MRR/MAP; single-vote degrades to ~0.61;
// multi-vote improves by ~8%. (b) both solutions improve on the non-top-1
// subset. Shape: multi > original everywhere; single helps on (b) but not
// necessarily on (a).

#include <cstdio>

#include "bench/bench_util.h"
#include "qa/metrics.h"

namespace kgov {
namespace {

using Rankings = std::vector<std::vector<qa::RankedDocument>>;

int Run() {
  bench::Banner("Figure 5: MRR and MAP of graph optimization",
                "Fig. 5(a)-(b) (SVII-B)");

  Result<bench::TaobaoEnvironment> setup =
      bench::MakeTaobaoEnvironment(1.0, /*seed=*/7101);
  if (!setup.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 setup.status().ToString().c_str());
    return 1;
  }
  bench::TaobaoEnvironment& t = *setup;
  const std::vector<qa::Question>& questions = t.env.test_questions;

  core::KgOptimizer optimizer(&t.env.deployed.graph, t.optimizer_options);
  Result<core::OptimizeReport> single =
      optimizer.SingleVoteSolve(t.env.votes);
  Result<core::OptimizeReport> multi = optimizer.MultiVoteSolve(t.env.votes);
  if (!single.ok() || !multi.ok()) {
    std::fprintf(stderr, "optimization failed\n");
    return 1;
  }

  auto ask_all = [&](const graph::WeightedDigraph& g) {
    qa::QaSystem system(&g, &t.env.deployed.answer_nodes,
                        t.env.deployed.num_entities, t.sim_params.qa);
    Rankings rankings;
    for (const qa::Question& q : questions) {
      rankings.push_back(system.Ask(q));
    }
    return rankings;
  };

  Rankings original = ask_all(t.env.deployed.graph);
  Rankings after_single = ask_all(single->optimized);
  Rankings after_multi = ask_all(multi->optimized);

  // Subset (b): questions whose best answer is not top-1 originally.
  std::vector<size_t> hard;
  for (size_t i = 0; i < questions.size(); ++i) {
    if (qa::DocumentRank(original[i], questions[i].best_document) != 1) {
      hard.push_back(i);
    }
  }
  auto subset = [&](const Rankings& rankings) {
    std::pair<std::vector<qa::Question>, Rankings> out;
    for (size_t i : hard) {
      out.first.push_back(questions[i]);
      out.second.push_back(rankings[i]);
    }
    return out;
  };

  auto print_panel = [&](const char* title,
                         const std::vector<qa::Question>& qs,
                         const Rankings& orig, const Rankings& sgl,
                         const Rankings& mlt) {
    std::printf("\n%s (%zu questions)\n", title, qs.size());
    bench::TablePrinter table({"Graph", "MRR", "MAP"}, {22, 8, 8});
    table.PrintHeader();
    qa::RankingMetrics mo = qa::EvaluateRankings(qs, orig);
    qa::RankingMetrics ms = qa::EvaluateRankings(qs, sgl);
    qa::RankingMetrics mm = qa::EvaluateRankings(qs, mlt);
    table.PrintRow({"Original", bench::Num(mo.mrr, 3), bench::Num(mo.map, 3)});
    table.PrintRow({"Single-V", bench::Num(ms.mrr, 3), bench::Num(ms.map, 3)});
    table.PrintRow({"Multi-V", bench::Num(mm.mrr, 3), bench::Num(mm.map, 3)});
  };

  print_panel("(a) whole test dataset", questions, original, after_single,
              after_multi);
  auto [hard_qs, hard_orig] = subset(original);
  auto [hq2, hard_single] = subset(after_single);
  auto [hq3, hard_multi] = subset(after_multi);
  print_panel("(b) questions whose best answer was not top-1", hard_qs,
              hard_orig, hard_single, hard_multi);

  std::printf(
      "\nPaper Fig. 5: (a) original 0.63 -> single 0.61 / multi ~0.68; (b) "
      "both\nsolutions improve MRR and MAP on the non-top-1 subset.\n");
  return 0;
}

}  // namespace
}  // namespace kgov

int main() { return kgov::Run(); }
