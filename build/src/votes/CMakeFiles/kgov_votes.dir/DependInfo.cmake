
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/votes/aggregate.cc" "src/votes/CMakeFiles/kgov_votes.dir/aggregate.cc.o" "gcc" "src/votes/CMakeFiles/kgov_votes.dir/aggregate.cc.o.d"
  "/root/repo/src/votes/conflict.cc" "src/votes/CMakeFiles/kgov_votes.dir/conflict.cc.o" "gcc" "src/votes/CMakeFiles/kgov_votes.dir/conflict.cc.o.d"
  "/root/repo/src/votes/judgment.cc" "src/votes/CMakeFiles/kgov_votes.dir/judgment.cc.o" "gcc" "src/votes/CMakeFiles/kgov_votes.dir/judgment.cc.o.d"
  "/root/repo/src/votes/vote.cc" "src/votes/CMakeFiles/kgov_votes.dir/vote.cc.o" "gcc" "src/votes/CMakeFiles/kgov_votes.dir/vote.cc.o.d"
  "/root/repo/src/votes/vote_encoder.cc" "src/votes/CMakeFiles/kgov_votes.dir/vote_encoder.cc.o" "gcc" "src/votes/CMakeFiles/kgov_votes.dir/vote_encoder.cc.o.d"
  "/root/repo/src/votes/vote_generator.cc" "src/votes/CMakeFiles/kgov_votes.dir/vote_generator.cc.o" "gcc" "src/votes/CMakeFiles/kgov_votes.dir/vote_generator.cc.o.d"
  "/root/repo/src/votes/votes_io.cc" "src/votes/CMakeFiles/kgov_votes.dir/votes_io.cc.o" "gcc" "src/votes/CMakeFiles/kgov_votes.dir/votes_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kgov_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kgov_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/kgov_math.dir/DependInfo.cmake"
  "/root/repo/build/src/ppr/CMakeFiles/kgov_ppr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
