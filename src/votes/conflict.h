// Vote-conflict diagnostics (supporting the discussion in paper SV).
//
// Two votes conflict *explicitly* when they impose contradictory pairwise
// orderings: vote A requires S(a1) > S(a2) (a1 is A's best and a2 is
// listed) while vote B requires S(a2) > S(a1) for an overlapping query.
// Conflicts are the reason the multi-vote solution exists; this analyzer
// surfaces them so operators can inspect noisy feedback before optimizing,
// and so experiments can report conflict rates.

#ifndef KGOV_VOTES_CONFLICT_H_
#define KGOV_VOTES_CONFLICT_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "votes/vote.h"

namespace kgov::votes {

/// One contradictory pair of votes.
struct VoteConflict {
  /// Indices into the analyzed vote vector.
  size_t vote_a = 0;
  size_t vote_b = 0;
  /// The two answers ordered oppositely by the votes.
  graph::NodeId answer_x = graph::kInvalidNode;
  graph::NodeId answer_y = graph::kInvalidNode;
  /// Jaccard overlap of the votes' query seed nodes in [0, 1]; conflicts
  /// only matter when the queries overlap (0 overlap = unrelated queries
  /// that happen to disagree, typically harmless).
  double query_overlap = 0.0;
};

struct ConflictReport {
  std::vector<VoteConflict> conflicts;
  /// Votes involved in at least one conflict.
  size_t conflicted_votes = 0;
  /// Pairs inspected (votes with query overlap above the threshold).
  size_t overlapping_pairs = 0;
};

struct ConflictOptions {
  /// Only vote pairs whose query seeds overlap at least this much (Jaccard
  /// over seed nodes) are considered related enough to conflict.
  double min_query_overlap = 0.0;

  /// Checks every field range (the overlap is a Jaccard index in [0, 1]).
  Status Validate() const;
};

/// Scans all vote pairs for contradictory orderings.
/// O(votes^2 * k^2) worst case; intended for diagnostic runs, not the
/// serving path.
ConflictReport AnalyzeConflicts(const std::vector<Vote>& votes,
                                const ConflictOptions& options = {});

}  // namespace kgov::votes

#endif  // KGOV_VOTES_CONFLICT_H_
