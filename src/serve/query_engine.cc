#include "serve/query_engine.h"

#include <future>
#include <string>
#include <utility>

#include "common/contracts.h"
#include "common/timer.h"
#include "serve/validate.h"
#include "telemetry/metrics.h"

namespace kgov::serve {

namespace {

// Serving-subsystem telemetry; pointers resolved once.
struct ServeMetrics {
  telemetry::Counter* queries;
  telemetry::Counter* cache_hits;
  telemetry::Counter* cache_misses;
  telemetry::Counter* cache_evictions;
  telemetry::Counter* cache_invalidations;
  telemetry::Counter* epoch_refreshes;
  telemetry::Gauge* queue_depth;
  telemetry::Histogram* query_span;

  static const ServeMetrics& Get() {
    static const ServeMetrics m = [] {
      telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Global();
      return ServeMetrics{reg.GetCounter("serve.queries"),
                          reg.GetCounter("serve.cache.hits"),
                          reg.GetCounter("serve.cache.misses"),
                          reg.GetCounter("serve.cache.evictions"),
                          reg.GetCounter("serve.cache.invalidations"),
                          reg.GetCounter("serve.epoch_refreshes"),
                          reg.GetGauge("serve.queue_depth"),
                          reg.GetHistogram("span.serve.query.seconds")};
    }();
    return m;
  }
};

}  // namespace

Status QueryEngineOptions::Validate() const {
  KGOV_RETURN_IF_ERROR(eipd.Validate());
  if (top_k < 1) {
    return Status::InvalidArgument("QueryEngineOptions.top_k must be >= 1");
  }
  if (num_threads < 1) {
    return Status::InvalidArgument(
        "QueryEngineOptions.num_threads must be >= 1");
  }
  if (cache_capacity < 1) {
    return Status::InvalidArgument(
        "QueryEngineOptions.cache_capacity must be >= 1");
  }
  if (cache_shards < 1) {
    return Status::InvalidArgument(
        "QueryEngineOptions.cache_shards must be >= 1");
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<QueryEngine>> QueryEngine::Create(
    const core::OnlineKgOptimizer* source,
    const std::vector<graph::NodeId>* candidates,
    QueryEngineOptions options) {
  KGOV_RETURN_IF_ERROR(options.Validate());
  if (source == nullptr) {
    return Status::InvalidArgument("QueryEngine requires a non-null source");
  }
  if (candidates == nullptr || candidates->empty()) {
    return Status::InvalidArgument(
        "QueryEngine requires a non-empty candidate set");
  }
  return std::unique_ptr<QueryEngine>(
      new QueryEngine(source, candidates, std::move(options)));
}

QueryEngine::QueryEngine(const core::OnlineKgOptimizer* source,
                         const std::vector<graph::NodeId>* candidates,
                         QueryEngineOptions options)
    : source_(source),
      candidates_(candidates),
      options_(std::move(options)),
      pinned_(source->CurrentEpoch()),
      cache_(options_.cache_capacity, options_.cache_shards),
      workspaces_(options_.num_threads),
      pool_(std::make_unique<ThreadPool>(options_.num_threads)) {}

QueryEngine::~QueryEngine() = default;

uint64_t QueryEngine::PinnedEpochNumber() const {
  ReaderMutexLock lock(epoch_mu_);
  return pinned_.epoch;
}

void QueryEngine::MaybeRefreshEpoch() {
  const uint64_t latest = source_->CurrentEpochNumber();
  {
    ReaderMutexLock lock(epoch_mu_);
    if (pinned_.epoch >= latest) return;
  }
  // Pin the fresh epoch outside the exclusive section (CurrentEpoch takes
  // the optimizer's own lock), then swap under ours.
  core::ServingEpoch fresh = source_->CurrentEpoch();
  {
    WriterMutexLock lock(epoch_mu_);
    if (fresh.epoch <= pinned_.epoch) return;  // raced with another refresh
    pinned_ = std::move(fresh);
  }
  const ServeMetrics& metrics = ServeMetrics::Get();
  metrics.epoch_refreshes->Increment();
  // Wholesale invalidation: every cached entry belongs to a dead epoch.
  // Correctness does not depend on this sweep (keys carry the epoch); it
  // just releases the dead epoch's memory promptly.
  metrics.cache_invalidations->Increment(cache_.InvalidateAll());
}

ppr::PropagationWorkspace* QueryEngine::WorkspaceForThisThread() {
  const size_t index = pool_->CurrentWorkerIndex();
  if (index == ThreadPool::kNotAWorker) {
    return &ppr::ThreadLocalWorkspace();
  }
  return &workspaces_[index];
}

StatusOr<RankedAnswers> QueryEngine::ServeOne(const ppr::QuerySeed& seed) {
  MaybeRefreshEpoch();
  core::ServingEpoch epoch;
  {
    ReaderMutexLock lock(epoch_mu_);
    epoch = pinned_;
  }
  // Debug builds re-check the pinned epoch's structural contract on every
  // query (compiled out under NDEBUG; see serve/validate.h).
  KGOV_DCHECK_OK(ValidateEpochPin(epoch));

  const ServeMetrics& metrics = ServeMetrics::Get();
  RankedAnswers result;
  result.epoch = epoch.epoch;

  std::string key;
  if (options_.enable_cache) {
    key = EncodeCacheKey(epoch.epoch, seed);
    if (cache_.Get(key, &result.answers)) {
      result.from_cache = true;
      metrics.cache_hits->Increment();
      return result;
    }
    metrics.cache_misses->Increment();
  }

  ppr::EipdEngine engine(epoch.view(), options_.eipd);
  StatusOr<std::vector<ppr::ScoredAnswer>> ranked = engine.Rank(
      seed, *candidates_, options_.top_k, WorkspaceForThisThread());
  if (!ranked.ok()) return ranked.status();
  result.answers = std::move(ranked).value();

  if (options_.enable_cache) {
    if (cache_.Put(key, result.answers)) {
      metrics.cache_evictions->Increment();
    }
  }
  return result;
}

StatusOr<RankedAnswers> QueryEngine::Submit(const ppr::QuerySeed& seed) {
  std::vector<StatusOr<RankedAnswers>> results = SubmitBatch({seed});
  return std::move(results.front());
}

std::vector<StatusOr<RankedAnswers>> QueryEngine::SubmitBatch(
    const std::vector<ppr::QuerySeed>& seeds) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  std::vector<std::future<StatusOr<RankedAnswers>>> futures;
  futures.reserve(seeds.size());
  for (const ppr::QuerySeed& seed : seeds) {
    metrics.queries->Increment();
    metrics.queue_depth->Set(static_cast<double>(
        queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1));
    Timer enqueue_timer;
    futures.push_back(
        pool_->Submit([this, seed, enqueue_timer, &metrics]() {
          // End-to-end latency: queue wait + propagation (or cache hit),
          // observed at completion so gather order cannot inflate it.
          StatusOr<RankedAnswers> served = ServeOne(seed);
          metrics.queue_depth->Set(static_cast<double>(
              queue_depth_.fetch_sub(1, std::memory_order_relaxed) - 1));
          metrics.query_span->Observe(enqueue_timer.ElapsedSeconds());
          return served;
        }));
  }
  std::vector<StatusOr<RankedAnswers>> results;
  results.reserve(seeds.size());
  for (auto& future : futures) {
    results.push_back(future.get());
  }
  return results;
}

}  // namespace kgov::serve
