#include "ppr/simrank.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace kgov::ppr {
namespace {

using graph::WeightedDigraph;

TEST(SimRankTest, EmptyGraphRejected) {
  WeightedDigraph g;
  EXPECT_FALSE(ComputeSimRank(g).ok());
}

TEST(SimRankTest, BadDecayRejected) {
  WeightedDigraph g(2);
  SimRankOptions options;
  options.decay = 1.0;
  EXPECT_FALSE(ComputeSimRank(g, options).ok());
}

TEST(SimRankTest, TooLargeGraphRejected) {
  WeightedDigraph g(10);
  SimRankOptions options;
  options.max_nodes = 5;
  EXPECT_FALSE(ComputeSimRank(g, options).ok());
}

TEST(SimRankTest, DiagonalIsOne) {
  WeightedDigraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  Result<SimRankResult> r = ComputeSimRank(g);
  ASSERT_TRUE(r.ok());
  for (graph::NodeId v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(r->Score(v, v), 1.0);
  }
}

TEST(SimRankTest, CommonParentClosedForm) {
  // 0 -> 1, 0 -> 2: s(1,2) = C * s(0,0) = 0.8, a fixed point.
  WeightedDigraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 1.0).ok());
  Result<SimRankResult> r = ComputeSimRank(g);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->Score(1, 2), 0.8, 1e-9);
  EXPECT_TRUE(r->converged());
}

TEST(SimRankTest, NoInNeighborsScoreZero) {
  // Nodes without in-neighbors share no evidence: s = 0.
  WeightedDigraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 2, 1.0).ok());
  Result<SimRankResult> r = ComputeSimRank(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Score(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(r->Score(0, 2), 0.0);  // 0 itself has no in-neighbors
}

TEST(SimRankTest, SymmetricMatrix) {
  Rng rng(5);
  Result<WeightedDigraph> g = graph::ErdosRenyi(20, 80, rng);
  ASSERT_TRUE(g.ok());
  Result<SimRankResult> r = ComputeSimRank(*g);
  ASSERT_TRUE(r.ok());
  for (graph::NodeId a = 0; a < 20; ++a) {
    for (graph::NodeId b = 0; b < 20; ++b) {
      EXPECT_DOUBLE_EQ(r->Score(a, b), r->Score(b, a));
    }
  }
}

TEST(SimRankTest, ScoresBounded) {
  Rng rng(6);
  Result<WeightedDigraph> g = graph::ErdosRenyi(25, 120, rng);
  ASSERT_TRUE(g.ok());
  Result<SimRankResult> r = ComputeSimRank(*g);
  ASSERT_TRUE(r.ok());
  for (graph::NodeId a = 0; a < 25; ++a) {
    for (graph::NodeId b = 0; b < 25; ++b) {
      EXPECT_GE(r->Score(a, b), 0.0);
      EXPECT_LE(r->Score(a, b), 1.0 + 1e-12);
    }
  }
}

TEST(SimRankTest, WeightsIgnoredStructureOnly) {
  WeightedDigraph g1(3), g2(3);
  ASSERT_TRUE(g1.AddEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(g1.AddEdge(0, 2, 0.1).ok());
  ASSERT_TRUE(g2.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g2.AddEdge(0, 2, 0.5).ok());
  Result<SimRankResult> r1 = ComputeSimRank(g1);
  Result<SimRankResult> r2 = ComputeSimRank(g2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_DOUBLE_EQ(r1->Score(1, 2), r2->Score(1, 2));
}

TEST(SimRankTest, MostSimilarRanksByScore) {
  // 0 -> {1, 2}; 3 -> {1}: 1 is similar to 2 (shared parent 0) but not 3.
  WeightedDigraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(3, 1, 1.0).ok());
  Result<SimRankResult> r = ComputeSimRank(g);
  ASSERT_TRUE(r.ok());
  auto similar = r->MostSimilar(2, 2);
  ASSERT_EQ(similar.size(), 2u);
  EXPECT_EQ(similar[0].first, 1u);
  EXPECT_GT(similar[0].second, similar[1].second);
}

TEST(SimRankTest, IterationCapReported) {
  Rng rng(7);
  Result<WeightedDigraph> g = graph::ErdosRenyi(30, 200, rng);
  ASSERT_TRUE(g.ok());
  SimRankOptions options;
  options.max_iterations = 1;
  options.tolerance = 0.0;  // force the cap
  Result<SimRankResult> r = ComputeSimRank(*g, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->iterations(), 1);
  EXPECT_FALSE(r->converged());
}

}  // namespace
}  // namespace kgov::ppr
