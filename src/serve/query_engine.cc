#include "serve/query_engine.h"

#include <future>
#include <string>
#include <utility>

#include "common/contracts.h"
#include "common/timer.h"
#include "graph/subgraph.h"
#include "serve/validate.h"
#include "telemetry/metrics.h"

namespace kgov::serve {

namespace {

// Serving-subsystem telemetry; pointers resolved once.
struct ServeMetrics {
  telemetry::Counter* queries;
  telemetry::Counter* cache_hits;
  telemetry::Counter* cache_misses;
  telemetry::Counter* cache_evictions;
  telemetry::Counter* cache_invalidations;
  telemetry::Counter* epoch_refreshes;
  telemetry::Counter* invalidation_selective;
  telemetry::Counter* invalidation_full;
  telemetry::Gauge* queue_depth;
  telemetry::Histogram* query_span;

  static const ServeMetrics& Get() {
    static const ServeMetrics m = [] {
      telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Global();
      return ServeMetrics{reg.GetCounter("serve.queries"),
                          reg.GetCounter("serve.cache.hits"),
                          reg.GetCounter("serve.cache.misses"),
                          reg.GetCounter("serve.cache.evictions"),
                          reg.GetCounter("serve.cache.invalidations"),
                          reg.GetCounter("serve.epoch_refreshes"),
                          reg.GetCounter("stream.invalidation.selective"),
                          reg.GetCounter("stream.invalidation.full"),
                          reg.GetGauge("serve.queue_depth"),
                          reg.GetHistogram("span.serve.query.seconds")};
    }();
    return m;
  }
};

}  // namespace

Status QueryEngineOptions::Validate() const {
  KGOV_RETURN_IF_ERROR(eipd.Validate());
  if (top_k < 1) {
    return Status::InvalidArgument("QueryEngineOptions.top_k must be >= 1");
  }
  if (num_threads < 1) {
    return Status::InvalidArgument(
        "QueryEngineOptions.num_threads must be >= 1");
  }
  if (cache_capacity < 1) {
    return Status::InvalidArgument(
        "QueryEngineOptions.cache_capacity must be >= 1");
  }
  if (cache_shards < 1) {
    return Status::InvalidArgument(
        "QueryEngineOptions.cache_shards must be >= 1");
  }
  if (!(full_flush_threshold > 0.0) || full_flush_threshold > 1.0) {
    return Status::InvalidArgument(
        "QueryEngineOptions.full_flush_threshold must be in (0, 1]");
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<QueryEngine>> QueryEngine::Create(
    const core::OnlineKgOptimizer* source,
    const std::vector<graph::NodeId>* candidates,
    QueryEngineOptions options) {
  KGOV_RETURN_IF_ERROR(options.Validate());
  if (source == nullptr) {
    return Status::InvalidArgument("QueryEngine requires a non-null source");
  }
  if (candidates == nullptr || candidates->empty()) {
    return Status::InvalidArgument(
        "QueryEngine requires a non-empty candidate set");
  }
  return std::unique_ptr<QueryEngine>(
      new QueryEngine(source, candidates, std::move(options)));
}

QueryEngine::QueryEngine(const core::OnlineKgOptimizer* source,
                         const std::vector<graph::NodeId>* candidates,
                         QueryEngineOptions options)
    : source_(source),
      candidates_(candidates),
      options_(std::move(options)),
      partition_(source->partition()),
      pinned_(source->CurrentEpoch()),
      cache_(options_.cache_capacity, options_.cache_shards),
      workspaces_(options_.num_threads),
      pool_(std::make_unique<ThreadPool>(options_.num_threads)) {}

QueryEngine::~QueryEngine() = default;

uint64_t QueryEngine::PinnedEpochNumber() const {
  ReaderMutexLock lock(epoch_mu_);
  return pinned_.epoch;
}

void QueryEngine::MaybeRefreshEpoch() {
  const uint64_t latest = source_->CurrentEpochNumber();
  {
    ReaderMutexLock lock(epoch_mu_);
    if (pinned_.epoch >= latest) return;
  }
  // Pin the fresh epoch outside the exclusive section (CurrentEpoch takes
  // the optimizer's own lock), then swap under ours.
  core::ServingEpoch fresh = source_->CurrentEpoch();
  size_t dropped = 0;
  bool full = true;
  {
    WriterMutexLock lock(epoch_mu_);
    if (fresh.epoch <= pinned_.epoch) return;  // raced with another refresh
    if (options_.enable_cache) {
      // Selective invalidation: union the published deltas spanning
      // (pinned, fresh]. Unknowable (history gap, full delta, feature
      // off) or near-global changes fall back to a wholesale flush.
      std::vector<uint32_t> changed;
      if (options_.selective_invalidation &&
          source_->CollectChangedClusters(pinned_.epoch, fresh.epoch,
                                          &changed)) {
        const size_t clusters = partition_->num_clusters();
        full = clusters == 0 ||
               static_cast<double>(changed.size()) >
                   options_.full_flush_threshold *
                       static_cast<double>(clusters);
      }
      // Advance the cache BEFORE the new pin becomes visible: a reader
      // that sees fresh.epoch can then never hit an entry the delta
      // invalidated (see the lock-order proof in result_cache.h).
      dropped = cache_.AdvanceEpoch(fresh.epoch, changed, full);
    }
    pinned_ = std::move(fresh);
  }
  const ServeMetrics& metrics = ServeMetrics::Get();
  metrics.epoch_refreshes->Increment();
  if (options_.enable_cache) {
    if (full) {
      metrics.invalidation_full->Increment();
    } else {
      metrics.invalidation_selective->Increment();
    }
    metrics.cache_invalidations->Increment(dropped);
  }
}

std::vector<uint32_t> QueryEngine::DependencyClusters(
    graph::GraphView view, const ppr::QuerySeed& seed) const {
  std::vector<graph::NodeId> roots;
  roots.reserve(seed.links.size());
  for (const auto& [node, weight] : seed.links) roots.push_back(node);
  // Every edge a walk of length <= L from the seed can traverse has its
  // source inside this ball, and cluster identity is keyed by edge
  // source (matching the optimizer's bitwise diff), so these clusters
  // over-approximate everything the ranking depends on.
  const std::vector<graph::NodeId> ball = graph::CollectOutNeighborhood(
      view, roots, options_.eipd.max_length);
  return partition_->ClustersOf(ball);
}

ppr::PropagationWorkspace* QueryEngine::WorkspaceForThisThread() {
  const size_t index = pool_->CurrentWorkerIndex();
  if (index == ThreadPool::kNotAWorker) {
    return &ppr::ThreadLocalWorkspace();
  }
  return &workspaces_[index];
}

StatusOr<RankedAnswers> QueryEngine::ServeOne(const ppr::QuerySeed& seed) {
  MaybeRefreshEpoch();
  core::ServingEpoch epoch;
  {
    ReaderMutexLock lock(epoch_mu_);
    epoch = pinned_;
  }
  // Debug builds re-check the pinned epoch's structural contract on every
  // query (compiled out under NDEBUG; see serve/validate.h).
  KGOV_DCHECK_OK(ValidateEpochPin(epoch));

  const ServeMetrics& metrics = ServeMetrics::Get();
  RankedAnswers result;
  result.epoch = epoch.epoch;

  std::string key;
  if (options_.enable_cache) {
    key = EncodeCacheKey(seed);
    if (cache_.Get(key, epoch.epoch, &result.answers)) {
      result.from_cache = true;
      metrics.cache_hits->Increment();
      return result;
    }
    metrics.cache_misses->Increment();
  }

  ppr::EipdEngine engine(epoch.view(), options_.eipd);
  StatusOr<std::vector<ppr::ScoredAnswer>> ranked = engine.Rank(
      seed, *candidates_, options_.top_k, WorkspaceForThisThread());
  if (!ranked.ok()) return ranked.status();
  result.answers = std::move(ranked).value();

  if (options_.enable_cache) {
    if (cache_.Put(key, result.answers,
                   DependencyClusters(epoch.view(), seed), epoch.epoch)) {
      metrics.cache_evictions->Increment();
    }
  }
  return result;
}

StatusOr<RankedAnswers> QueryEngine::Submit(const ppr::QuerySeed& seed) {
  std::vector<StatusOr<RankedAnswers>> results = SubmitBatch({seed});
  return std::move(results.front());
}

std::vector<StatusOr<RankedAnswers>> QueryEngine::SubmitBatch(
    const std::vector<ppr::QuerySeed>& seeds) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  std::vector<std::future<StatusOr<RankedAnswers>>> futures;
  futures.reserve(seeds.size());
  for (const ppr::QuerySeed& seed : seeds) {
    metrics.queries->Increment();
    metrics.queue_depth->Set(static_cast<double>(
        queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1));
    Timer enqueue_timer;
    futures.push_back(
        pool_->Submit([this, seed, enqueue_timer, &metrics]() {
          // End-to-end latency: queue wait + propagation (or cache hit),
          // observed at completion so gather order cannot inflate it.
          StatusOr<RankedAnswers> served = ServeOne(seed);
          metrics.queue_depth->Set(static_cast<double>(
              queue_depth_.fetch_sub(1, std::memory_order_relaxed) - 1));
          metrics.query_span->Observe(enqueue_timer.ElapsedSeconds());
          return served;
        }));
  }
  std::vector<StatusOr<RankedAnswers>> results;
  results.reserve(seeds.size());
  for (auto& future : futures) {
    results.push_back(future.get());
  }
  return results;
}

}  // namespace kgov::serve
