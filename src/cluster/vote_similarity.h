// Vote-to-vote similarity (paper Eq. 20): the Jaccard overlap of the edge
// sets each vote's similarity evaluation touches. Votes whose walks share
// many edges conflict-interact and belong in the same SGP sub-problem.

#ifndef KGOV_CLUSTER_VOTE_SIMILARITY_H_
#define KGOV_CLUSTER_VOTE_SIMILARITY_H_

#include <unordered_set>
#include <vector>

#include "graph/graph.h"

namespace kgov::cluster {

/// Jaccard similarity |a n b| / |a u b|; 0 when both sets are empty.
double JaccardSimilarity(const std::unordered_set<graph::EdgeId>& a,
                         const std::unordered_set<graph::EdgeId>& b);

/// Dense symmetric similarity matrix over votes' associated edge sets
/// (diagonal = 1).
std::vector<std::vector<double>> VoteSimilarityMatrix(
    const std::vector<std::unordered_set<graph::EdgeId>>& vote_edges);

}  // namespace kgov::cluster

#endif  // KGOV_CLUSTER_VOTE_SIMILARITY_H_
