#include "common/timer.h"

#include <gtest/gtest.h>

#include <thread>

namespace kgov {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double elapsed = timer.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 2.0);
}

TEST(TimerTest, RestartResetsEpoch) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 0.015);
}

TEST(TimerTest, UnitsAgree) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double s = timer.ElapsedSeconds();
  double ms = timer.ElapsedMillis();
  EXPECT_NEAR(ms, s * 1e3, 5.0);
  EXPECT_GT(timer.ElapsedMicros(), 0);
}

TEST(StopWatchTest, AccumulatesAcrossWindows) {
  StopWatch watch;
  watch.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  watch.Stop();
  double first = watch.TotalSeconds();
  EXPECT_GE(first, 0.008);

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_NEAR(watch.TotalSeconds(), first, 1e-9);  // stopped: no growth

  watch.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  watch.Stop();
  EXPECT_GE(watch.TotalSeconds(), first + 0.008);
}

TEST(StopWatchTest, ResetClears) {
  StopWatch watch;
  watch.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  watch.Stop();
  watch.Reset();
  EXPECT_EQ(watch.TotalSeconds(), 0.0);
}

TEST(StopWatchTest, DoubleStartIsIdempotent) {
  StopWatch watch;
  watch.Start();
  watch.Start();  // must not reset the open window
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  watch.Stop();
  EXPECT_GE(watch.TotalSeconds(), 0.008);
}

TEST(StopWatchTest, StartWhileRunningKeepsTheOpenWindowsEpoch) {
  StopWatch watch;
  watch.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  watch.Start();  // no-op: the window opened 10ms ago stays open
  EXPECT_TRUE(watch.IsRunning());
  EXPECT_GE(watch.TotalSeconds(), 0.008);  // Start did not re-zero it
}

TEST(StopWatchTest, ResetDiscardsTheOpenWindow) {
  StopWatch watch;
  watch.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  watch.Reset();  // the 10ms open window must NOT leak into the total
  EXPECT_FALSE(watch.IsRunning());
  EXPECT_EQ(watch.TotalSeconds(), 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(watch.TotalSeconds(), 0.0);  // stays stopped after Reset
}

TEST(StopWatchTest, ResetThenStartMeasuresFreshWindow) {
  StopWatch watch;
  watch.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  watch.Reset();
  watch.Start();
  EXPECT_TRUE(watch.IsRunning());
  // The pre-Reset 10ms is gone; the fresh window has barely begun.
  EXPECT_LT(watch.TotalSeconds(), 0.008);
  watch.Stop();
}

TEST(StopWatchTest, StopWithoutStartIsANoOp) {
  StopWatch watch;
  watch.Stop();
  EXPECT_EQ(watch.TotalSeconds(), 0.0);
  EXPECT_FALSE(watch.IsRunning());
}

}  // namespace
}  // namespace kgov
