// Personalized PageRank (paper Eq. 1) by power iteration, and the
// linear-equation-group random-walk similarity of Yang et al. [5], which the
// paper uses as the similarity-evaluation baseline in Table VI.
//
// The core iteration runs on graph::GraphView (CSR ranges); the
// WeightedDigraph overloads freeze a snapshot per call for compatibility.

#ifndef KGOV_PPR_PPR_H_
#define KGOV_PPR_PPR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "ppr/query_seed.h"

namespace kgov::ppr {

struct PprOptions {
  /// Restart probability c (paper uses c ~ 0.15).
  double restart = 0.15;
  int max_iterations = 500;
  /// Stop when the L1 change between iterates drops below this.
  double tolerance = 1e-12;

  /// Checks every field range; returns InvalidArgument naming the first
  /// offending field. PowerIterationPpr fails fast with the result.
  Status Validate() const;
};

/// Solves pi = (1-c) M pi + c e_source by power iteration, where
/// M_ij = w(vj, vi) (column-sub-stochastic). Returns the full PPR vector.
/// The view's backing storage must stay alive for the duration of the call.
Result<std::vector<double>> PowerIterationPpr(graph::GraphView view,
                                              graph::NodeId source,
                                              const PprOptions& options = {});

/// Compatibility overload: snapshots `graph` and runs on the view.
Result<std::vector<double>> PowerIterationPpr(
    const graph::WeightedDigraph& graph, graph::NodeId source,
    const PprOptions& options = {});

/// PPR of a *virtual* query node whose out-edges are `seed`: the stationary
/// scores of walks whose first hop follows the seed links. Equals
/// (1-c) * sum_s seed(s) * PPR_s, and matches the extended inverse
/// P-distance of the same seed as L -> infinity (paper Theorem 1).
Result<std::vector<double>> PowerIterationPprFromSeed(
    graph::GraphView view, const QuerySeed& seed,
    const PprOptions& options = {});

/// Compatibility overload: snapshots `graph` and runs on the view.
Result<std::vector<double>> PowerIterationPprFromSeed(
    const graph::WeightedDigraph& graph, const QuerySeed& seed,
    const PprOptions& options = {});

/// The random-walk baseline of [5]: evaluates the similarity of ONE
/// (query, answer) pair by solving the linear equation group and reading
/// the answer entry. Per-pair cost is a full system solve, which is what
/// makes the baseline's total cost linear in the number of answers
/// (Table VI).
class RandomWalkBaseline {
 public:
  /// Serves from `view`; its backing storage must outlive the baseline.
  explicit RandomWalkBaseline(graph::GraphView view, PprOptions options = {});

  /// Compatibility: freezes a CSR snapshot of `graph` at construction
  /// (owned by the baseline) and serves from it.
  explicit RandomWalkBaseline(const graph::WeightedDigraph* graph,
                              PprOptions options = {});

  /// Similarity of one pair; re-solves the system each call (baseline
  /// behaviour under measurement).
  Result<double> Similarity(const QuerySeed& seed,
                            graph::NodeId answer) const;

 private:
  std::shared_ptr<const graph::CsrSnapshot> owned_snapshot_;
  graph::GraphView view_;
  PprOptions options_;
};

}  // namespace kgov::ppr

#endif  // KGOV_PPR_PPR_H_
