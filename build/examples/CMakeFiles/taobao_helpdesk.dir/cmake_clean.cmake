file(REMOVE_RECURSE
  "CMakeFiles/taobao_helpdesk.dir/taobao_helpdesk.cpp.o"
  "CMakeFiles/taobao_helpdesk.dir/taobao_helpdesk.cpp.o.d"
  "taobao_helpdesk"
  "taobao_helpdesk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taobao_helpdesk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
