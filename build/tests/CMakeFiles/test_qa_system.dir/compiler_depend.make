# Empty compiler generated dependencies file for test_qa_system.
# This may be replaced when dependencies are built.
