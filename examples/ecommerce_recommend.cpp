// E-commerce recommendation with implicit votes (the paper's Example 1).
//
// A co-purchase knowledge graph recommends related products. When
// customers consistently buy a product that is NOT ranked first in the
// recommendation list, each such purchase is an implicit negative vote;
// the split-and-merge optimizer folds a batch of them into the graph.
//
// Run: ./build/examples/ecommerce_recommend

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/kg_optimizer.h"
#include "core/scoring.h"
#include "graph/csr.h"
#include "ppr/eipd_engine.h"

using namespace kgov;

int main() {
  Rng rng(77);

  // ---- Co-purchase graph: categories -> products ----
  // Category nodes model browsing context; product nodes are answers.
  const std::vector<std::string> category_names{
      "laptops", "accessories", "audio", "cables", "bags"};
  const std::vector<std::string> product_names{
      "laptop-pro",   "usb-c-hub",  "noise-cancelling-headset",
      "hdmi-cable",   "laptop-bag", "wireless-mouse",
      "mechanical-kb"};

  graph::WeightedDigraph g;
  std::vector<graph::NodeId> categories;
  for (const std::string& name : category_names) {
    graph::NodeId node = g.AddNode();
    g.SetNodeLabel(node, name);
    categories.push_back(node);
  }
  size_t num_context_nodes = g.NumNodes();
  std::vector<graph::NodeId> products;
  for (const std::string& name : product_names) {
    graph::NodeId node = g.AddNode();
    g.SetNodeLabel(node, name);
    products.push_back(node);
  }

  // Category-category affinity (browsing transitions).
  auto edge = [&](graph::NodeId a, graph::NodeId b, double w) {
    (void)g.AddEdge(a, b, w);
  };
  edge(categories[0], categories[1], 0.5);  // laptops -> accessories
  edge(categories[0], categories[4], 0.2);  // laptops -> bags
  edge(categories[1], categories[3], 0.4);  // accessories -> cables
  edge(categories[1], categories[2], 0.3);  // accessories -> audio
  edge(categories[2], categories[1], 0.3);
  edge(categories[4], categories[0], 0.4);
  edge(categories[3], categories[1], 0.5);

  // Category -> product purchase propensities (initially skewed toward
  // the wrong products - stale statistics).
  edge(categories[0], products[0], 0.6);  // laptops -> laptop-pro
  edge(categories[1], products[1], 0.5);  // accessories -> usb-c-hub
  edge(categories[1], products[5], 0.3);  // accessories -> wireless-mouse
  edge(categories[1], products[6], 0.1);  // accessories -> mechanical-kb
  edge(categories[2], products[2], 0.7);  // audio -> headset
  edge(categories[3], products[3], 0.8);  // cables -> hdmi
  edge(categories[4], products[4], 0.7);  // bags -> laptop-bag
  g.NormalizeAllOutWeights();

  // ---- Serve recommendations for the "laptops+accessories" context ----
  ppr::QuerySeed context =
      ppr::QuerySeed::UniformOver({categories[0], categories[1]});
  ppr::EipdOptions eipd;
  eipd.max_length = 5;
  graph::CsrSnapshot snapshot(g);
  ppr::EipdEngine evaluator(snapshot.View(), eipd);
  std::vector<ppr::ScoredAnswer> shown =
      evaluator.Rank(context, products, products.size()).value_or({});

  std::printf("Recommendations for laptop shoppers:\n");
  for (size_t i = 0; i < shown.size(); ++i) {
    std::printf("  %zu. %-26s %.5f\n", i + 1,
                g.NodeLabel(shown[i].node).c_str(), shown[i].score);
  }

  // ---- Implicit votes: customers keep buying the mechanical keyboard ----
  // Every purchase of a non-top recommendation is one negative vote.
  std::vector<votes::Vote> implicit_votes;
  for (uint32_t i = 0; i < 8; ++i) {
    votes::Vote vote;
    vote.id = i;
    vote.query = context;
    for (const ppr::ScoredAnswer& sa : shown) {
      vote.answer_list.push_back(sa.node);
    }
    // 6 of 8 buyers picked the keyboard, 2 confirmed the top item.
    vote.best_answer = i < 6 ? products[6] : shown.front().node;
    implicit_votes.push_back(std::move(vote));
  }

  // ---- Optimize with split-and-merge ----
  core::OptimizerOptions options;
  options.encoder.symbolic.eipd = eipd;
  options.encoder.is_variable = [num_context_nodes](
                                    const graph::WeightedDigraph& gr,
                                    graph::EdgeId e) {
    // Both affinity and propensity edges are tunable; product nodes have
    // no out-edges.
    return gr.edge(e).from < num_context_nodes;
  };
  core::KgOptimizer optimizer(&g, options);
  Result<core::OptimizeReport> report =
      optimizer.SplitMergeSolve(implicit_votes);
  if (!report.ok()) {
    std::fprintf(stderr, "optimization failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  graph::CsrSnapshot optimized_snapshot(report->optimized);
  ppr::EipdEngine optimized(optimized_snapshot.View(), eipd);
  std::vector<ppr::ScoredAnswer> reranked =
      optimized.Rank(context, products, products.size()).value_or({});
  std::printf("\nAfter %zu implicit votes (%zu clusters):\n",
              implicit_votes.size(), report->num_clusters);
  for (size_t i = 0; i < reranked.size(); ++i) {
    std::printf("  %zu. %-26s %.5f\n", i + 1,
                report->optimized.NodeLabel(reranked[i].node).c_str(),
                reranked[i].score);
  }

  core::OmegaResult omega =
      core::EvaluateOmega(report->optimized, implicit_votes, eipd);
  std::printf("\nOmega_avg = %.2f; '%s' moved from rank %d to rank %d.\n",
              omega.average, product_names[6].c_str(),
              votes::RankOf(implicit_votes[0].answer_list, products[6]),
              [&] {
                for (size_t i = 0; i < reranked.size(); ++i) {
                  if (reranked[i].node == products[6]) {
                    return static_cast<int>(i) + 1;
                  }
                }
                return 0;
              }());
  return 0;
}
