#!/usr/bin/env bash
# The kgov static-analysis gate (docs/static_analysis.md):
#
#   1. clang thread-safety build: the whole tree compiled with
#      -Wthread-safety{,-beta} promoted to errors (KGOV_STATIC_ANALYSIS),
#      plus the misannotated-lock compile-FAIL demo. Requires clang;
#      skipped with a notice when no clang++ is on PATH.
#   2. dropped-Status compile-FAIL demo: tools/ci/compile_fail/
#      dropped_status.cc must NOT compile ([[nodiscard]] +
#      -Werror=unused-result). Runs under any compiler.
#   3. clang-tidy (.clang-tidy profile) over the library sources, against
#      the CMake-exported compile_commands.json. Skipped with a notice
#      when clang-tidy is not installed.
#   4. kgov_lint (tools/lint/kgov_lint.py): repo rules - options structs
#      must declare Validate(), no logging under a lock, no raw std lock
#      types in src/, no unseeded RNG, [[nodiscard]] kept in place, no
#      unchecked ofstream/fwrite writes, no predicate-less condition-
#      variable waits, every kgov::Mutex in src/ rank-annotated - plus
#      the lint canaries: the linter must still FLAG the planted
#      violations in tools/ci/compile_fail/{unchecked_io,naked_wait,
#      unranked_mutex}.cc (compile-FAIL style, but for the linter
#      itself).
#   5. lock-rank must-fire canary: builds tools/lockcheck_canary.cc with
#      KGOV_LOCK_DEBUG=ON and runs it; the gate fails unless the
#      detector FIRES on a known rank inversion AND a known two-lock
#      cycle. The recorded acquired-after graph lands in
#      <build-dir>/lock_acquired_after.dot (uploaded as a CI artifact).
#
# Any failure of an *available* phase fails the gate; unavailable tools
# skip loudly but do not fail (the lint phase and the dropped-Status demo
# always run, so every environment enforces a non-empty subset).
#
# Usage: tools/ci/analyze.sh [build-dir]
#   build-dir (default build-analyze) is used for the clang build; the
#   lint report lands in <build-dir>/kgov_lint_report.txt.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-analyze}"
COMPILE_FAIL_DIR="$REPO_ROOT/tools/ci/compile_fail"
mkdir -p "$BUILD_DIR"

FAILURES=0

fail() {
  echo "ANALYZE FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

CLANGXX="${KGOV_CLANGXX:-clang++}"
HAVE_CLANG=0
if command -v "$CLANGXX" >/dev/null 2>&1; then
  HAVE_CLANG=1
fi

# ----------------------------------------------------------------------
echo "== [1/5] clang thread-safety analysis =="
if [[ "$HAVE_CLANG" == "1" ]]; then
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
      -DCMAKE_CXX_COMPILER="$CLANGXX" \
      -DKGOV_STATIC_ANALYSIS=ON \
      -DKGOV_BUILD_BENCHMARKS=OFF
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
      || fail "thread-safety analysis reported errors"

  echo "-- misannotated-lock compile-FAIL demo --"
  if "$CLANGXX" -std=c++20 -I"$REPO_ROOT/src" \
      -Wthread-safety -Wthread-safety-beta \
      -Werror=thread-safety -Werror=thread-safety-beta \
      -fsyntax-only "$COMPILE_FAIL_DIR/misannotated_lock.cc" \
      2>"$BUILD_DIR/misannotated_lock.log"; then
    fail "misannotated_lock.cc compiled - the thread-safety gate is dead"
  else
    echo "OK: misannotated lock rejected, as required"
  fi
else
  echo "SKIP: no $CLANGXX on PATH - thread-safety analysis needs clang."
  echo "      (The KGOV_* annotations compile as no-ops under this"
  echo "      toolchain; run this script where clang is installed to"
  echo "      check them.)"
fi

# ----------------------------------------------------------------------
echo "== [2/5] dropped-Status compile-FAIL demo =="
CXX_FOR_DEMO="${CXX:-}"
if [[ -z "$CXX_FOR_DEMO" ]]; then
  if [[ "$HAVE_CLANG" == "1" ]]; then CXX_FOR_DEMO="$CLANGXX";
  else CXX_FOR_DEMO="c++"; fi
fi
if "$CXX_FOR_DEMO" -std=c++20 -I"$REPO_ROOT/src" -Werror=unused-result \
    -fsyntax-only "$COMPILE_FAIL_DIR/dropped_status.cc" \
    2>"$BUILD_DIR/dropped_status.log"; then
  fail "dropped_status.cc compiled - [[nodiscard]] enforcement is dead"
else
  echo "OK: dropped Status rejected, as required"
fi

# ----------------------------------------------------------------------
echo "== [3/5] clang-tidy =="
CLANG_TIDY="${KGOV_CLANG_TIDY:-clang-tidy}"
if command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  TIDY_DB_DIR="$BUILD_DIR"
  if [[ ! -f "$TIDY_DB_DIR/compile_commands.json" ]]; then
    # No clang build happened (phase 1 skipped); export a database with
    # the default compiler instead.
    cmake -B "$TIDY_DB_DIR" -S "$REPO_ROOT" \
        -DKGOV_BUILD_BENCHMARKS=OFF >/dev/null
  fi
  mapfile -t TIDY_SOURCES < <(find "$REPO_ROOT/src" -name '*.cc' | sort)
  "$CLANG_TIDY" -p "$TIDY_DB_DIR" --quiet "${TIDY_SOURCES[@]}" \
      2>"$BUILD_DIR/clang_tidy.log" \
      || fail "clang-tidy reported errors (see $BUILD_DIR/clang_tidy.log)"
else
  echo "SKIP: no $CLANG_TIDY on PATH (profile: .clang-tidy at repo root)."
fi

# ----------------------------------------------------------------------
echo "== [4/5] kgov_lint =="
python3 "$REPO_ROOT/tools/lint/kgov_lint.py" --root "$REPO_ROOT" \
    --report "$BUILD_DIR/kgov_lint_report.txt" \
    || fail "kgov_lint found violations"

echo "-- unchecked-io lint canary --"
if python3 "$REPO_ROOT/tools/lint/kgov_lint.py" --root "$REPO_ROOT" \
    --file "$COMPILE_FAIL_DIR/unchecked_io.cc" \
    >"$BUILD_DIR/unchecked_io_canary.log" 2>&1; then
  fail "unchecked_io.cc passed the linter - the no-unchecked-io rule is dead"
elif ! grep -q "no-unchecked-io" "$BUILD_DIR/unchecked_io_canary.log"; then
  fail "linter rejected unchecked_io.cc for the wrong reason (see $BUILD_DIR/unchecked_io_canary.log)"
else
  echo "OK: planted unchecked writes flagged, as required"
fi

# One canary per concurrency lint rule: run the linter on the planted
# file, demand a non-zero exit AND the expected rule name in the log.
lint_canary() {
  local canary="$1" rule="$2"
  local log="$BUILD_DIR/${canary%.cc}_canary.log"
  echo "-- $rule lint canary --"
  if python3 "$REPO_ROOT/tools/lint/kgov_lint.py" --root "$REPO_ROOT" \
      --file "$COMPILE_FAIL_DIR/$canary" >"$log" 2>&1; then
    fail "$canary passed the linter - the $rule rule is dead"
  elif ! grep -q "$rule" "$log"; then
    fail "linter rejected $canary for the wrong reason (see $log)"
  else
    echo "OK: planted violations flagged, as required"
  fi
}
lint_canary naked_wait.cc condvar-naked-wait
lint_canary unranked_mutex.cc lock-rank-coverage

# ----------------------------------------------------------------------
echo "== [5/5] lock-rank must-fire canary =="
LOCKCHECK_BUILD="$BUILD_DIR/lockcheck-build"
DOT_OUT="$BUILD_DIR/lock_acquired_after.dot"
if ! command -v cmake >/dev/null 2>&1; then
  echo "SKIP: no cmake on PATH; cannot build lockcheck_canary."
else
  cmake -B "$LOCKCHECK_BUILD" -S "$REPO_ROOT" \
      -DKGOV_BUILD_TESTS=OFF -DKGOV_BUILD_BENCHMARKS=OFF \
      -DKGOV_BUILD_EXAMPLES=OFF -DKGOV_LOCK_DEBUG=ON \
      >"$BUILD_DIR/lockcheck_configure.log" 2>&1 \
      || fail "lockcheck canary: cmake configure failed (see $BUILD_DIR/lockcheck_configure.log)"
  if cmake --build "$LOCKCHECK_BUILD" --target lockcheck_canary \
      -j "$(nproc)" >"$BUILD_DIR/lockcheck_build.log" 2>&1; then
    if "$LOCKCHECK_BUILD/tools/lockcheck_canary" "$DOT_OUT" \
        >"$BUILD_DIR/lockcheck_canary.log" 2>&1; then
      echo "OK: rank inversion and two-lock cycle both fired;"
      echo "    acquired-after graph: $DOT_OUT"
    else
      fail "lockcheck canary: detector went SILENT on a planted violation (see $BUILD_DIR/lockcheck_canary.log)"
    fi
    [[ -s "$DOT_OUT" ]] \
        || fail "lockcheck canary: empty acquired-after DOT dump ($DOT_OUT)"
  else
    fail "lockcheck canary failed to build (see $BUILD_DIR/lockcheck_build.log)"
  fi
fi

# ----------------------------------------------------------------------
if [[ "$FAILURES" -gt 0 ]]; then
  echo "Static-analysis gate FAILED ($FAILURES failure(s))." >&2
  exit 1
fi
echo "Static-analysis gate passed."
