// Solver front-end for SgpProblem instances.
//
// Three formulations are supported, mirroring the paper:
//
//  * kHardConstraints    - single-vote form (SIV): minimize the proximal
//                          objective subject to every constraint, via the
//                          augmented Lagrangian. May report Infeasible.
//  * kDeviationVariables - multi-vote form exactly as written (SV, Eq. 15):
//                          each constraint g_i(x) <= 0 is relaxed to
//                          g_i(x) - d_i <= 0 with a fresh variable d_i and a
//                          sigmoid(w d_i) objective term (Eq. 18/19).
//  * kReducedSigmoid     - analytically equivalent multi-vote form: because
//                          the sigmoid is increasing, the optimum of the
//                          deviation form has d_i = g_i(x), so the deviation
//                          variables can be substituted out, leaving the
//                          smooth box-constrained problem
//                          min lambda1*prox + lambda2*sum sigmoid(w g_i(x)).
//                          This is the default (faster, same optima); the
//                          ablation bench compares all three.

#ifndef KGOV_MATH_SGP_SOLVER_H_
#define KGOV_MATH_SGP_SOLVER_H_

#include <vector>

#include "math/sgp_problem.h"
#include "math/sigmoid.h"

namespace kgov::math {

enum class SgpFormulation {
  kHardConstraints,
  kDeviationVariables,
  kReducedSigmoid,
};

struct SgpSolverOptions {
  SgpFormulation formulation = SgpFormulation::kReducedSigmoid;
  /// Preference weight on edge-weight change (paper lambda1, Eq. 19).
  double lambda1 = 0.5;
  /// Preference weight on vote satisfaction (paper lambda2, Eq. 19).
  double lambda2 = 0.5;
  /// Sigmoid steepness w (paper uses 300).
  double sigmoid_steepness = kPaperSigmoidSteepness;
  /// With w = 300 the sigmoid saturates (zero gradient) far from the
  /// boundary; continuation solves a sequence of problems with increasing
  /// steepness ending at `sigmoid_steepness`, each warm-started from the
  /// previous solution. 1 disables continuation.
  int continuation_steps = 6;
  /// Margin enforcing strict inequalities: g(x) <= -margin.
  double strict_margin = 1e-6;
  /// Wall-clock budget for one Solve call, spanning every continuation
  /// step and augmented-Lagrangian outer iteration; <= 0 disables it. On
  /// expiry Solve returns the best iterate reached so far with
  /// StatusCode::kDeadlineExceeded.
  double deadline_seconds = 0.0;
  InnerSolverKind inner_solver = InnerSolverKind::kProjectedBb;
  SolveOptions inner;
  AugLagOptions auglag;

  /// Checks every field range; returns InvalidArgument naming the first
  /// offending field. SgpSolver captures the result at construction and
  /// every Solve on an invalid configuration fails fast with it.
  Status Validate() const;
};

struct SgpSolution {
  /// Optimized values for the problem's original variables (deviation
  /// variables, when present, are stripped).
  std::vector<double> x;
  double objective = 0.0;
  int iterations = 0;
  /// Number of constraints with g_i(x) <= tolerance at the solution.
  int satisfied_constraints = 0;
  int total_constraints = 0;
  bool converged = false;
  /// OK, NotConverged, Infeasible, DeadlineExceeded, or NumericalError.
  /// Whatever the status, `x` is always finite and inside the problem's
  /// box: non-finite iterates are replaced by the initial point before the
  /// solution is returned (no garbage point ever escapes the solver).
  Status status;
};

class SgpSolver {
 public:
  explicit SgpSolver(SgpSolverOptions options = {})
      : options_(options), options_status_(options_.Validate()) {}

  const SgpSolverOptions& options() const { return options_; }

  /// Solves `problem` from its initial point.
  SgpSolution Solve(const SgpProblem& problem) const;

 private:
  /// Validation + fault-injection + formulation dispatch; Solve wraps it
  /// with the telemetry span and counters.
  SgpSolution SolveDispatch(const SgpProblem& problem) const;

  SgpSolution SolveHard(const SgpProblem& problem) const;
  SgpSolution SolveDeviation(const SgpProblem& problem) const;
  SgpSolution SolveReduced(const SgpProblem& problem) const;

  /// Counts satisfied constraints of `problem` at `x`.
  static int CountSatisfied(const SgpProblem& problem,
                            const std::vector<double>& x, double tolerance);

  /// Replaces a non-finite solution point with the (projected) initial
  /// point and downgrades the status to kNumericalError.
  static void Sanitize(const SgpProblem& problem, SgpSolution* solution);

  SgpSolverOptions options_;
  // Result of options_.Validate() captured at construction; Solve returns
  // it (in SgpSolution::status) without touching the problem when not OK.
  Status options_status_;
};

}  // namespace kgov::math

#endif  // KGOV_MATH_SGP_SOLVER_H_
