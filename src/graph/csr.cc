#include "graph/csr.h"

namespace kgov::graph {

CsrSnapshot::CsrSnapshot(const WeightedDigraph& graph) {
  const size_t n = graph.NumNodes();
  offsets_.resize(n + 1, 0);
  neighbors_.reserve(graph.NumEdges());
  edge_ids_.reserve(graph.NumEdges());
  for (NodeId v = 0; v < n; ++v) {
    offsets_[v] = neighbors_.size();
    for (const OutEdge& out : graph.OutEdges(v)) {
      neighbors_.push_back(Neighbor{out.to, graph.Weight(out.edge)});
      edge_ids_.push_back(out.edge);
    }
  }
  offsets_[n] = neighbors_.size();
}

double CsrSnapshot::OutWeightSum(NodeId node) const {
  double sum = 0.0;
  for (const Neighbor* it = begin(node); it != end(node); ++it) {
    sum += it->weight;
  }
  return sum;
}

}  // namespace kgov::graph
