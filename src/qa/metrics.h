// Ranking-quality metrics used by the paper's effectiveness experiments:
// H@k (Table V), MRR and MAP (Fig. 5), Ravg / Pavg (Table IV).

#ifndef KGOV_QA_METRICS_H_
#define KGOV_QA_METRICS_H_

#include <vector>

#include "graph/graph_view.h"
#include "qa/corpus.h"
#include "qa/qa_system.h"

namespace kgov::qa {

/// Metrics over a batch of questions. All values are means across
/// questions with a valid ground-truth label.
struct RankingMetrics {
  /// hits_at[i]: fraction of questions whose best answer ranks <= ks[i].
  std::vector<double> hits_at;
  std::vector<size_t> ks;
  /// Mean reciprocal rank of the best answer (0 contribution when absent
  /// from the list).
  double mrr = 0.0;
  /// Mean average precision over the graded relevance set.
  double map = 0.0;
  /// Mean rank of the best answer; absent answers count as list size + 1
  /// (paper's Ravg).
  double average_rank = 0.0;
  /// Mean NDCG over the graded relevance set (best answer gain 2, other
  /// relevant documents gain 1, log2 position discount). Extension beyond
  /// the paper's metric set.
  double ndcg = 0.0;
  /// Mean precision@k for the same ks as hits_at.
  std::vector<double> precision_at;
  size_t num_questions = 0;
};

/// Evaluates ranked lists (one per question, aligned by index) against the
/// questions' ground truth.
RankingMetrics EvaluateRankings(
    const std::vector<Question>& questions,
    const std::vector<std::vector<RankedDocument>>& rankings,
    std::vector<size_t> ks = {1, 3, 5, 10});

/// One-stop snapshot-epoch evaluation: serves every question from `view`
/// through a QaSystem and scores the resulting rankings against ground
/// truth. The view's backing storage must stay alive for the duration of
/// the call.
RankingMetrics EvaluateServingView(graph::GraphView view,
                                   const std::vector<graph::NodeId>& answer_nodes,
                                   size_t num_entities,
                                   const std::vector<Question>& questions,
                                   const QaOptions& options = {},
                                   std::vector<size_t> ks = {1, 3, 5, 10});

/// Per-question mean of (rank_before - rank_after) / rank_before, the
/// paper's Pavg (percentage-wise ranking improvement).
double AveragePercentImprovement(const std::vector<double>& ranks_before,
                                 const std::vector<double>& ranks_after);

/// Convenience: 1-based rank of `document` in `ranking` (0 when absent).
int DocumentRank(const std::vector<RankedDocument>& ranking, int document);

}  // namespace kgov::qa

#endif  // KGOV_QA_METRICS_H_
