file(REMOVE_RECURSE
  "CMakeFiles/test_vote_similarity.dir/test_vote_similarity.cc.o"
  "CMakeFiles/test_vote_similarity.dir/test_vote_similarity.cc.o.d"
  "test_vote_similarity"
  "test_vote_similarity.pdb"
  "test_vote_similarity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vote_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
