file(REMOVE_RECURSE
  "CMakeFiles/test_sigmoid.dir/test_sigmoid.cc.o"
  "CMakeFiles/test_sigmoid.dir/test_sigmoid.cc.o.d"
  "test_sigmoid"
  "test_sigmoid.pdb"
  "test_sigmoid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sigmoid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
