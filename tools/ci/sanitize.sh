#!/usr/bin/env bash
# Build and run the kgov test suite under AddressSanitizer + UBSan
# (including the durability suite and its fork-based kill-tests; the
# child's std::_Exit skips LSan's atexit hook, so the injected crashes do
# not produce false leak reports), then a dedicated UBSan-only pass over
# the serving / streaming / durability suites (-fsanitize=undefined with
# -fno-sanitize-recover=all and none of ASan's allocator interference),
# then the concurrency-heavy tests (serve, single-flight, admission,
# thread pool, online optimizer, durability recovery, lock-rank
# detector, schedule explorer) under ThreadSanitizer.
#
# Usage: tools/ci/sanitize.sh [build-dir] [ctest-args...]
#
# Uses the KGOV_SANITIZE CMake option; any failure (including a sanitizer
# report, via -fno-sanitize-recover=all) fails the script.
#   KGOV_SKIP_TSAN=1   skip the ThreadSanitizer pass (TSan and ASan cannot
#                      be combined, so it needs its own build tree)
#   KGOV_SKIP_UBSAN=1  skip the UBSan-only pass
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-sanitize}"
shift || true

echo "== sanitize: ASan/UBSan (full suite) =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DKGOV_SANITIZE=address,undefined \
    -DKGOV_BUILD_BENCHMARKS=OFF \
    -DKGOV_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"

if [[ "${KGOV_SKIP_UBSAN:-0}" != "1" ]]; then
  echo "== sanitize: UBSan only (serving / streaming / durability) =="
  UBSAN_BUILD_DIR="${BUILD_DIR}-ubsan"
  cmake -B "$UBSAN_BUILD_DIR" -S "$REPO_ROOT" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DKGOV_SANITIZE=undefined \
      -DKGOV_BUILD_BENCHMARKS=OFF \
      -DKGOV_BUILD_EXAMPLES=OFF
  cmake --build "$UBSAN_BUILD_DIR" -j "$(nproc)" --target \
      test_query_engine test_single_flight test_admission \
      test_stream test_stream_invalidation test_online_optimizer \
      test_durability test_durability_kill
  ctest --test-dir "$UBSAN_BUILD_DIR" --output-on-failure \
      -R 'QueryEngine|SingleFlight|Admission|Stream|VoteIngestQueue|OnlineOptimizer|Durability' \
      "$@"
else
  echo "== sanitize: UBSan-only pass skipped (KGOV_SKIP_UBSAN=1) =="
fi

if [[ "${KGOV_SKIP_TSAN:-0}" != "1" ]]; then
  echo "== sanitize: TSan (serve / thread pool / online optimizer) =="
  TSAN_BUILD_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_BUILD_DIR" -S "$REPO_ROOT" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DKGOV_SANITIZE=thread \
      -DKGOV_BUILD_BENCHMARKS=OFF \
      -DKGOV_BUILD_EXAMPLES=OFF
  cmake --build "$TSAN_BUILD_DIR" -j "$(nproc)" --target \
      test_query_engine test_thread_pool test_online_optimizer \
      test_resilience test_durability test_stream test_stream_invalidation \
      test_single_flight test_admission test_eipd_multi test_eipd_sparse \
      test_telemetry test_lock_rank test_sched_explorer
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
  ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure \
      -R 'QueryEngine|ThreadPool|OnlineOptimizer|FaultPipeline|Durability|Stream|VoteIngestQueue|SingleFlight|Admission|RankMulti|Gauge|Sparse|KernelResolution|LockRank|SchedExplorer' \
      "$@"
else
  echo "== sanitize: TSan skipped (KGOV_SKIP_TSAN=1) =="
fi
