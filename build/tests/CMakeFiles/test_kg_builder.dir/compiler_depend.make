# Empty compiler generated dependencies file for test_kg_builder.
# This may be replaced when dependencies are built.
