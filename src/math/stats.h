// Summary statistics used by the evaluation metrics and the benchmark
// harnesses.

#ifndef KGOV_MATH_STATS_H_
#define KGOV_MATH_STATS_H_

#include <vector>

namespace kgov::math {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Median (average of the two middle elements for even sizes); 0 for empty.
double Median(std::vector<double> values);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double StdDev(const std::vector<double>& values);

/// Linear-interpolated percentile, p in [0, 100] (clamped); 0 for empty.
/// Takes the samples by const reference and selects via nth_element on a
/// scratch copy of the two needed order statistics -- no full sort, no
/// caller-visible copy of the sample set.
double Percentile(const std::vector<double>& values, double p);

/// Several percentiles of one sample set in one pass: sorts a single
/// scratch copy and reads every requested p from it. The cheap path for
/// telemetry snapshots (p50/p95/p99 per histogram). Returns one value per
/// entry of `ps`, in the same order; all zeros for an empty input.
std::vector<double> Percentiles(const std::vector<double>& values,
                                const std::vector<double>& ps);

/// Min / max; 0 for empty.
double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);

}  // namespace kgov::math

#endif  // KGOV_MATH_STATS_H_
