// CRC-32C (Castagnoli) checksums for the durability layer.
//
// Every on-disk record the durability subsystem writes (snapshot headers,
// snapshot bodies, WAL records) carries a CRC-32C so corruption and torn
// writes are *detected*, never silently loaded. CRC-32C is the polynomial
// used by iSCSI/ext4/RocksDB; this is the byte-table software variant
// (~1 GB/s, far above the fsync-bound write paths that call it).

#ifndef KGOV_COMMON_CRC32_H_
#define KGOV_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace kgov {

/// CRC-32C of `data`. `seed` chains calls: Crc32c(b, Crc32c(a)) ==
/// Crc32c(a ++ b). The empty range returns `seed` unchanged.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

/// Masked CRC in the RocksDB/LevelDB style: storing a CRC of data that
/// itself contains CRCs makes accidental fixed-point matches likelier, so
/// stored checksums are rotated and offset. Verify by comparing against
/// MaskCrc32c of the recomputed value.
uint32_t MaskCrc32c(uint32_t crc);

}  // namespace kgov

#endif  // KGOV_COMMON_CRC32_H_
