#include "core/resilience.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "telemetry/metrics.h"

namespace kgov::core {


Status RetryOptions::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument(
        "RetryOptions.max_attempts must be >= 1, got " +
        std::to_string(max_attempts));
  }
  if (!(initial_backoff_seconds >= 0.0) ||
      !std::isfinite(initial_backoff_seconds)) {
    return Status::InvalidArgument(
        "RetryOptions.initial_backoff_seconds must be finite and >= 0, "
        "got " + std::to_string(initial_backoff_seconds));
  }
  if (!(backoff_multiplier >= 1.0) || !std::isfinite(backoff_multiplier)) {
    return Status::InvalidArgument(
        "RetryOptions.backoff_multiplier must be finite and >= 1, got " +
        std::to_string(backoff_multiplier));
  }
  if (!(restart_jitter >= 0.0 && restart_jitter < 1.0)) {
    return Status::InvalidArgument(
        "RetryOptions.restart_jitter must be in [0, 1), got " +
        std::to_string(restart_jitter));
  }
  return Status::OK();
}

Status GraphValidatorOptions::Validate() const {
  if (!std::isfinite(weight_lower_bound) ||
      !std::isfinite(weight_upper_bound)) {
    return Status::InvalidArgument(
        "GraphValidatorOptions weight bounds must be finite, got [" +
        std::to_string(weight_lower_bound) + ", " +
        std::to_string(weight_upper_bound) + "]");
  }
  if (!(weight_lower_bound <= weight_upper_bound)) {
    return Status::InvalidArgument(
        "GraphValidatorOptions.weight_lower_bound must be <= "
        "weight_upper_bound, got [" + std::to_string(weight_lower_bound) +
        ", " + std::to_string(weight_upper_bound) + "]");
  }
  if (!(tolerance >= 0.0) || !std::isfinite(tolerance)) {
    return Status::InvalidArgument(
        "GraphValidatorOptions.tolerance must be finite and >= 0, got " +
        std::to_string(tolerance));
  }
  return Status::OK();
}

namespace {

// Retryable failures: transient (a different start point or formulation can
// succeed). InvalidArgument/Internal are structural and retried never.
bool IsRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotConverged:
    case StatusCode::kInfeasible:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kNumericalError:
      return true;
    default:
      return false;
  }
}

// True when `a` is a strictly better solve outcome than `b`.
bool BetterThan(const math::SgpSolution& a, const math::SgpSolution& b) {
  if (a.status.ok() != b.status.ok()) return a.status.ok();
  if (a.satisfied_constraints != b.satisfied_constraints) {
    return a.satisfied_constraints > b.satisfied_constraints;
  }
  return a.objective < b.objective;
}

// Telemetry for the retry/fallback chain; pointers resolved once.
struct ResilienceMetrics {
  telemetry::Counter* solves;
  telemetry::Counter* attempts;
  telemetry::Counter* retries;
  telemetry::Counter* fallback_switches;
  telemetry::Counter* deadline_hits;
  telemetry::Counter* recovered;
  telemetry::Counter* exhausted;
  telemetry::Histogram* attempt_span;

  static const ResilienceMetrics& Get() {
    static const ResilienceMetrics m = [] {
      telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Global();
      return ResilienceMetrics{
          reg.GetCounter("resilience.solves"),
          reg.GetCounter("resilience.attempts"),
          reg.GetCounter("resilience.retries"),
          reg.GetCounter("resilience.fallback_switches"),
          reg.GetCounter("resilience.deadline_hits"),
          reg.GetCounter("resilience.recovered"),
          reg.GetCounter("resilience.exhausted"),
          reg.GetHistogram("span.resilience.attempt.seconds")};
    }();
    return m;
  }
};

}  // namespace

ResilientSolveOutcome ResilientSgpSolver::Solve(
    const math::SgpProblem& problem, uint64_t seed_salt) const {
  const ResilienceMetrics& metrics = ResilienceMetrics::Get();
  metrics.solves->Increment();
  ResilientSolveOutcome outcome;
  Status retry_valid = retry_.Validate();
  if (!retry_valid.ok()) {
    outcome.solution.status = retry_valid;
    outcome.exhausted = true;
    return outcome;
  }
  const int max_attempts = std::max(1, retry_.max_attempts);

  // Effective fallback chain: base formulation first, then the configured
  // chain minus duplicates of the base.
  std::vector<math::SgpFormulation> chain = {base_.formulation};
  for (math::SgpFormulation f : retry_.formulation_chain) {
    if (f != base_.formulation) chain.push_back(f);
  }

  Rng jitter_rng(retry_.seed ^ (seed_salt * 0x9E3779B97F4A7C15ull));
  const std::vector<double> original_initial = problem.initial();

  bool have_best = false;
  math::SgpSolution best;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    math::SgpSolverOptions options = base_;
    options.formulation =
        chain[std::min<size_t>(attempt, chain.size() - 1)];
    if (retry_.attempt_deadline_seconds > 0.0) {
      options.deadline_seconds = retry_.attempt_deadline_seconds;
    }

    // Restart point: the original initial values on attempt 0, a jittered
    // perturbation afterwards. The anchor (proximal target) stays pinned
    // to the original weights either way.
    math::SgpProblem restarted;  // only used when jitter applies
    const math::SgpProblem* to_solve = &problem;
    if (attempt > 0 && retry_.restart_jitter > 0.0) {
      restarted = problem;
      std::vector<double> x0 = original_initial;
      const math::BoxBounds& bounds = problem.bounds();
      for (size_t i = 0; i < x0.size(); ++i) {
        double width = 1.0;
        if (i < bounds.lower.size() && i < bounds.upper.size()) {
          width = bounds.upper[i] - bounds.lower[i];
        }
        x0[i] += retry_.restart_jitter * jitter_rng.Uniform(-1.0, 1.0) *
                 width;
      }
      restarted.SetInitial(std::move(x0));
      to_solve = &restarted;
    }

    if (attempt > 0 && retry_.initial_backoff_seconds > 0.0) {
      double backoff = retry_.initial_backoff_seconds *
                       std::pow(retry_.backoff_multiplier, attempt - 1);
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }

    Timer timer;
    math::SgpSolution solution = math::SgpSolver(options).Solve(*to_solve);
    SolveAttempt record;
    record.attempt = attempt;
    record.formulation = options.formulation;
    record.status = solution.status;
    record.seconds = timer.ElapsedSeconds();
    outcome.attempts.push_back(record);

    metrics.attempts->Increment();
    metrics.attempt_span->Observe(record.seconds);
    if (attempt > 0) metrics.retries->Increment();
    if (options.formulation != base_.formulation) {
      metrics.fallback_switches->Increment();
    }
    if (solution.status.IsDeadlineExceeded()) {
      metrics.deadline_hits->Increment();
    }

    if (!have_best || BetterThan(solution, best)) {
      best = solution;
      have_best = true;
    }
    if (solution.status.ok()) {
      if (attempt > 0) metrics.recovered->Increment();
      outcome.solution = std::move(solution);
      return outcome;
    }
    if (!IsRetryable(solution.status)) {
      // Structural failure: retrying cannot help.
      metrics.exhausted->Increment();
      outcome.solution = std::move(solution);
      outcome.exhausted = true;
      return outcome;
    }
    KGOV_LOG(DEBUG) << "SGP attempt " << attempt
                    << " failed: " << solution.status
                    << "; retrying with fallback";
  }

  outcome.exhausted = true;
  metrics.exhausted->Increment();
  if (retry_.accept_best_effort) {
    outcome.solution = std::move(best);
  } else {
    // Strict mode: report the failure against the untouched initial point.
    outcome.solution.x = original_initial;
    outcome.solution.status = best.status;
    outcome.solution.total_constraints = best.total_constraints;
    outcome.solution.satisfied_constraints = 0;
  }
  return outcome;
}

Status ValidateGraphUpdate(const graph::WeightedDigraph& before,
                           const graph::WeightedDigraph& after,
                           const GraphValidatorOptions& options) {
  KGOV_RETURN_IF_ERROR(options.Validate());
  if (options.check_edge_drift) {
    if (after.NumNodes() != before.NumNodes()) {
      return Status::FailedPrecondition(
          "node count drift: " + std::to_string(before.NumNodes()) + " -> " +
          std::to_string(after.NumNodes()));
    }
    if (after.NumEdges() != before.NumEdges()) {
      return Status::FailedPrecondition(
          "edge count drift: " + std::to_string(before.NumEdges()) + " -> " +
          std::to_string(after.NumEdges()));
    }
    for (graph::EdgeId e = 0; e < before.NumEdges(); ++e) {
      const graph::Edge& eb = before.edge(e);
      const graph::Edge& ea = after.edge(e);
      if (eb.from != ea.from || eb.to != ea.to) {
        return Status::FailedPrecondition("edge " + std::to_string(e) +
                                          " endpoints drifted");
      }
    }
  }
  const double lo = options.weight_lower_bound - options.tolerance;
  const double hi = options.weight_upper_bound + options.tolerance;
  for (graph::EdgeId e = 0; e < after.NumEdges(); ++e) {
    double w = after.Weight(e);
    if (!std::isfinite(w)) {
      return Status::FailedPrecondition("edge " + std::to_string(e) +
                                        " has non-finite weight");
    }
    if (w < lo || w > hi) {
      return Status::FailedPrecondition(
          "edge " + std::to_string(e) + " weight " + std::to_string(w) +
          " outside [" + std::to_string(options.weight_lower_bound) + ", " +
          std::to_string(options.weight_upper_bound) + "]");
    }
  }
  if (options.check_substochastic &&
      !after.IsSubStochastic(options.tolerance)) {
    return Status::FailedPrecondition(
        "out-weight normalization violated: a node's out-weights sum to "
        "more than 1");
  }
  return Status::OK();
}

}  // namespace kgov::core
