#include "math/sgp_problem.h"

#include "common/logging.h"

namespace kgov::math {

VarId SgpProblem::AddVariable(double initial, double lo, double hi) {
  KGOV_CHECK(lo <= initial && initial <= hi)
      << "initial value " << initial << " outside [" << lo << ", " << hi
      << "]";
  VarId id = static_cast<VarId>(initial_.size());
  initial_.push_back(initial);
  bounds_.lower.push_back(lo);
  bounds_.upper.push_back(hi);
  proximal_mask_.push_back(true);
  return id;
}

void SgpProblem::AddConstraint(Signomial g, std::string label,
                               double weight) {
  KGOV_CHECK(weight > 0.0) << "constraint weight must be positive";
  constraints_.push_back(
      SgpConstraint{std::move(g), std::move(label), weight});
}

void SgpProblem::AddSigmoidTerm(Signomial s) {
  sigmoid_terms_.push_back(std::move(s));
}

void SgpProblem::SetInitial(std::vector<double> x0) {
  KGOV_CHECK(x0.size() == initial_.size())
      << "initial point size " << x0.size() << " != variable count "
      << initial_.size();
  if (anchor_.empty()) anchor_ = initial_;
  initial_ = std::move(x0);
  bounds_.Project(&initial_);
}

void SgpProblem::ExcludeFromProximal(VarId var) {
  KGOV_CHECK(var < proximal_mask_.size());
  proximal_mask_[var] = false;
}

Status SgpProblem::Validate() const {
  const int64_t n = static_cast<int64_t>(num_variables());
  if (!anchor_.empty() && anchor_.size() != initial_.size()) {
    return Status::InvalidArgument("anchor size does not match variables");
  }
  for (size_t i = 0; i < initial_.size(); ++i) {
    if (bounds_.lower[i] > bounds_.upper[i]) {
      return Status::InvalidArgument("inverted bounds on variable " +
                                     std::to_string(i));
    }
  }
  for (const SgpConstraint& c : constraints_) {
    if (c.g.MaxVarId() >= n) {
      return Status::InvalidArgument("constraint '" + c.label +
                                     "' references undeclared variable");
    }
  }
  for (const Signomial& s : sigmoid_terms_) {
    if (s.MaxVarId() >= n) {
      return Status::InvalidArgument(
          "sigmoid term references undeclared variable");
    }
  }
  return Status::OK();
}

}  // namespace kgov::math
