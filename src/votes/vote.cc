#include "votes/vote.h"

namespace kgov::votes {

int Vote::BestAnswerRank() const { return RankOf(answer_list, best_answer); }

bool Vote::IsWellFormed() const {
  return !answer_list.empty() && BestAnswerRank() > 0 && !query.empty();
}

int RankOf(const std::vector<graph::NodeId>& ranked, graph::NodeId node) {
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i] == node) return static_cast<int>(i) + 1;
  }
  return 0;
}

VoteSetSummary Summarize(const std::vector<Vote>& votes) {
  VoteSetSummary summary;
  for (const Vote& vote : votes) {
    if (vote.IsPositive()) {
      ++summary.positive;
    } else {
      ++summary.negative;
    }
  }
  return summary;
}

}  // namespace kgov::votes
