file(REMOVE_RECURSE
  "CMakeFiles/kgov_math.dir/gp_condensation.cc.o"
  "CMakeFiles/kgov_math.dir/gp_condensation.cc.o.d"
  "CMakeFiles/kgov_math.dir/monomial.cc.o"
  "CMakeFiles/kgov_math.dir/monomial.cc.o.d"
  "CMakeFiles/kgov_math.dir/optimizer.cc.o"
  "CMakeFiles/kgov_math.dir/optimizer.cc.o.d"
  "CMakeFiles/kgov_math.dir/sgp_problem.cc.o"
  "CMakeFiles/kgov_math.dir/sgp_problem.cc.o.d"
  "CMakeFiles/kgov_math.dir/sgp_solver.cc.o"
  "CMakeFiles/kgov_math.dir/sgp_solver.cc.o.d"
  "CMakeFiles/kgov_math.dir/sigmoid.cc.o"
  "CMakeFiles/kgov_math.dir/sigmoid.cc.o.d"
  "CMakeFiles/kgov_math.dir/signomial.cc.o"
  "CMakeFiles/kgov_math.dir/signomial.cc.o.d"
  "CMakeFiles/kgov_math.dir/stats.cc.o"
  "CMakeFiles/kgov_math.dir/stats.cc.o.d"
  "CMakeFiles/kgov_math.dir/vector_ops.cc.o"
  "CMakeFiles/kgov_math.dir/vector_ops.cc.o.d"
  "libkgov_math.a"
  "libkgov_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgov_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
