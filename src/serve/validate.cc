#include "serve/validate.h"

#include <string>

#include "graph/validate.h"

namespace kgov::serve {

Status ValidateEpochPin(const core::ServingEpoch& epoch,
                        uint64_t min_expected_epoch) {
  if (epoch.snapshot == nullptr) {
    return Status::Internal("pinned epoch " + std::to_string(epoch.epoch) +
                            " has no snapshot");
  }
  if (epoch.epoch < min_expected_epoch) {
    return Status::FailedPrecondition(
        "pinned epoch moved backwards: epoch " + std::to_string(epoch.epoch) +
        " observed after " + std::to_string(min_expected_epoch));
  }
  return graph::ValidateCsr(epoch.view());
}

}  // namespace kgov::serve
