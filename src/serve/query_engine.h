// serve::QueryEngine - the concurrent query-serving subsystem.
//
// Production deployments serve QA traffic continuously while the
// OnlineKgOptimizer folds vote batches into the graph. This engine is the
// read side of that loop:
//
//  * It pins a core::ServingEpoch (ref-counted CSR snapshot + epoch
//    number) and serves every query from that frozen view; an optimizer
//    flush never blocks or mutates an in-flight query.
//  * Queries fan out across a ThreadPool. Each worker owns a reusable
//    ppr::PropagationWorkspace, so steady-state serving performs no
//    per-query allocation (the workspace is addressed by
//    ThreadPool::CurrentWorkerIndex - no locks, no thread_local growth).
//  * Results are memoized in a delta-aware ShardedResultCache. A cache
//    hit is bitwise identical to the propagation it replaced. On epoch
//    swap the engine asks the optimizer for the changed-cluster delta
//    (stream::EpochDelta history) and drops only entries whose dependency
//    clusters intersect it - selective invalidation, the read-side half
//    of the streaming pipeline. When the delta is unavailable, disabled,
//    or larger than full_flush_threshold of the partition, it falls back
//    to the old wholesale flush.
//  * Concurrent misses on the same (seed, epoch) key collapse onto one
//    single-flight leader propagation; followers receive the leader's
//    bitwise-identical result (serve/single_flight.h). The flight key
//    embeds the pinned epoch and the degraded bit, so a follower is
//    never handed a result computed under a different pin or depth.
//  * Queries that share a partition cluster inside one SubmitBatch window
//    fold into a single multi-root propagation pass
//    (ppr::EipdEngine::RankMulti), amortizing the level-synchronous
//    frontier walk across roots while keeping each lane's result bitwise
//    identical to a solo propagation.
//  * An AdmissionController bounds the admitted-and-unfinished window:
//    beyond capacity, Submit sheds immediately with kResourceExhausted
//    (never parks the caller), and under a sustained latency-SLO breach
//    the engine serves misses at a reduced eipd.max_length (degraded
//    rankings are flagged and never cached).
//  * Before each query the engine probes
//    OnlineKgOptimizer::CurrentEpochNumber() (one acquire load) and
//    re-pins when the optimizer has published a newer epoch, so fresh
//    results appear promptly without polling threads.
//
// Telemetry (kgov_telemetry registry): serve.queries, serve.cache.hits /
// .misses / .evictions / .invalidations, serve.singleflight.leaders /
// .followers / .timeouts, serve.admission.shed / .degraded (gauge),
// serve.degraded_queries, serve.errors, serve.batch.groups,
// serve.epoch_refreshes, serve.queue_depth (gauge, published atomically
// via Gauge::Add from the admission window), span.serve.query.seconds
// (end-to-end latency histogram), stream.invalidation.selective / .full.
// serve.cache.misses counts PROPAGATIONS the engine ran (leaders,
// follower-timeout fallbacks, single-flight-off misses) - collapsed
// followers are counted in serve.singleflight.followers instead, so
// hits + misses + followers + shed (+ errors) == queries. See
// docs/serving.md.

#ifndef KGOV_SERVE_QUERY_ENGINE_H_
#define KGOV_SERVE_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/online_optimizer.h"
#include "ppr/eipd_engine.h"
#include "ppr/query_seed.h"
#include "ppr/ranking.h"
#include "serve/admission.h"
#include "serve/result_cache.h"
#include "serve/single_flight.h"
#include "stream/partition.h"

namespace kgov::serve {

struct QueryEngineOptions {
  /// Propagation settings used for every query.
  ppr::EipdOptions eipd;
  /// Answers returned per query.
  size_t top_k = 10;
  /// Serving worker threads.
  size_t num_threads = 4;
  /// Memoize per-seed rankings (delta-aware LRU). Disable to force every
  /// query through a fresh propagation (the cache-off baseline).
  bool enable_cache = true;
  /// Total cached seed rankings across all shards.
  size_t cache_capacity = 4096;
  /// Cache shard count (locks per shard; more shards = less contention).
  size_t cache_shards = 8;
  /// Invalidate selectively on epoch swap using the optimizer's published
  /// changed-cluster deltas. Disable to flush the whole cache on every
  /// swap (the pre-streaming behaviour, and the bench baseline).
  bool selective_invalidation = true;
  /// Fall back to a full flush when the changed-cluster set exceeds this
  /// fraction of the partition (a near-global change makes the selective
  /// sweep pointless bookkeeping). In (0, 1].
  double full_flush_threshold = 0.5;
  /// Collapse concurrent identical misses onto one leader propagation.
  /// Disable for the duplicated-work baseline (every miss propagates).
  bool enable_single_flight = true;
  /// How long a follower waits for its leader before detaching and
  /// propagating for itself. A backstop, not a latency target - it only
  /// fires if a leader stalls for a full propagation's worth of time.
  double single_flight_deadline_seconds = 5.0;
  /// Fold same-cluster queries within one SubmitBatch call into
  /// multi-root propagation passes.
  bool enable_batching = true;
  /// Max roots folded into one multi-root pass (bounds per-task latency
  /// and workspace footprint).
  size_t max_batch_roots = 8;
  /// Admission window + load-shedding + SLO degradation settings.
  AdmissionOptions admission;

  /// Checks every field range; returns InvalidArgument naming the first
  /// offending field. QueryEngine::Create fails fast with the result.
  Status Validate() const;
};

/// One served query result.
struct RankedAnswers {
  /// Top-k candidates by descending EIPD score (ties by node id).
  std::vector<ppr::ScoredAnswer> answers;
  /// Epoch the ranking was computed on.
  uint64_t epoch = 0;
  /// True when the ranking came out of the result cache.
  bool from_cache = false;
  /// True when the ranking was coalesced off another query's propagation
  /// (single-flight follower or in-batch duplicate).
  bool coalesced = false;
  /// True when the ranking was computed at the admission controller's
  /// degraded max_length instead of the configured depth. Degraded
  /// rankings are never cached.
  bool degraded = false;
};

/// Concurrent query-serving engine over an OnlineKgOptimizer's published
/// epochs. Submit/SubmitBatch are safe to call from any number of threads;
/// the engine never blocks on an in-progress optimizer flush.
class QueryEngine {
 public:
  /// Engine-local outcome counters (mirrored into global telemetry).
  /// Every query resolves to exactly one of {hit, miss, follower, shed,
  /// error}, so hits + misses + followers + shed + errors == queries;
  /// misses further splits into leaders + timeouts + plain misses
  /// (single-flight disabled).
  struct ServeStats {
    uint64_t queries = 0;
    /// Served from the result cache (first probe or leader re-probe).
    uint64_t hits = 0;
    /// Ran their own propagation.
    uint64_t misses = 0;
    /// Misses that led a single-flight (subset of misses).
    uint64_t leaders = 0;
    /// Coalesced onto another query's propagation.
    uint64_t followers = 0;
    /// Followers whose deadline expired and who self-computed (subset of
    /// misses, disjoint from leaders).
    uint64_t timeouts = 0;
    /// Shed by admission control with kResourceExhausted.
    uint64_t shed = 0;
    /// Failed with any other status (invalid seed, abandoned leader...).
    uint64_t errors = 0;
    /// Served at the degraded depth (compute or coalesced; not hits).
    uint64_t degraded = 0;
  };

  /// `source` and `candidates` are borrowed and must outlive the engine.
  /// `candidates` is the fixed answer-node universe ranked for every
  /// query (a QA system's answer documents). Fails fast on invalid
  /// options or null/empty inputs.
  static StatusOr<std::unique_ptr<QueryEngine>> Create(
      const core::OnlineKgOptimizer* source,
      const std::vector<graph::NodeId>* candidates,
      QueryEngineOptions options);

  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Serves one query: enqueues it on the worker pool and blocks until
  /// its ranking is ready. InvalidArgument when the seed does not fit the
  /// pinned epoch's view; ResourceExhausted (immediately, without
  /// queueing) when the admission window is full.
  StatusOr<RankedAnswers> Submit(const ppr::QuerySeed& seed);

  /// Serves a batch: admitted queries are grouped by partition cluster
  /// (when batching is enabled), enqueued up front (saturating the
  /// pool), then gathered in order. results[i] corresponds to seeds[i].
  std::vector<StatusOr<RankedAnswers>> SubmitBatch(
      const std::vector<ppr::QuerySeed>& seeds);

  /// The epoch queries are currently served from (pinned; may trail the
  /// optimizer's latest by at most one in-flight refresh).
  uint64_t PinnedEpochNumber() const KGOV_EXCLUDES(epoch_mu_);

  /// Cache counters since construction.
  ShardedResultCache::Stats CacheStats() const { return cache_.GetStats(); }

  /// Outcome counters since construction (see the identity on ServeStats).
  ServeStats GetServeStats() const;

  /// Admission window counters since construction.
  AdmissionController::Stats AdmissionStats() const {
    return admission_.GetStats();
  }

  /// True while the engine is serving misses at the degraded depth.
  bool Degraded() const { return admission_.degraded(); }

  const QueryEngineOptions& options() const { return options_; }

 private:
  QueryEngine(const core::OnlineKgOptimizer* source,
              const std::vector<graph::NodeId>* candidates,
              QueryEngineOptions options);

  /// Re-pins the serving epoch when the optimizer has published a newer
  /// one (cheap acquire-load probe; lock taken only on an actual swap),
  /// advancing the cache with the changed-cluster delta (or a full flush
  /// when no usable delta exists) BEFORE the new pin becomes visible.
  void MaybeRefreshEpoch() KGOV_EXCLUDES(epoch_mu_);

  /// The partition clusters `seed`'s ranking can depend on: the L-ball
  /// around its link nodes mapped through the streaming partition.
  std::vector<uint32_t> DependencyClusters(graph::GraphView view,
                                           const ppr::QuerySeed& seed) const;

  /// The worker-side body of one query.
  StatusOr<RankedAnswers> ServeOne(const ppr::QuerySeed& seed)
      KGOV_EXCLUDES(epoch_mu_);

  /// The worker-side body of one same-cluster group: per-seed cache
  /// probes, local + cross-task single-flight coalescing, then ONE
  /// multi-root propagation pass over the keys this task leads. Returns
  /// (index-into-seeds, result) pairs covering exactly `indices`.
  std::vector<std::pair<size_t, StatusOr<RankedAnswers>>> ServeGroup(
      const std::vector<ppr::QuerySeed>& seeds,
      const std::vector<size_t>& indices) KGOV_EXCLUDES(epoch_mu_);

  /// Splits the admitted indices into per-task groups: singleton groups
  /// when batching is off, else same-cluster runs capped at
  /// max_batch_roots (cluster of the seed's first link node).
  std::vector<std::vector<size_t>> GroupForBatch(
      const std::vector<ppr::QuerySeed>& seeds,
      const std::vector<size_t>& admitted) const;

  /// The propagation settings for this query: the configured eipd, with
  /// max_length clamped to the admission controller's degraded depth
  /// while the engine is degraded.
  ppr::EipdOptions EffectiveEipd(bool degraded) const;

  std::chrono::nanoseconds FollowerDeadline() const;

  /// This worker's reusable workspace (falls back to the thread-local
  /// workspace for non-pool callers).
  ppr::PropagationWorkspace* WorkspaceForThisThread();
  ppr::MultiPropagationWorkspace* MultiWorkspaceForThisThread();

  const core::OnlineKgOptimizer* source_;
  const std::vector<graph::NodeId>* candidates_;
  QueryEngineOptions options_;
  /// The optimizer's fixed streaming partition (shared; never null).
  std::shared_ptr<const stream::GraphPartition> partition_;

  /// Pinned epoch; a shared (reader-writer) mutex so concurrent queries
  /// copy it without serializing on each other, while a refresh takes it
  /// exclusively.
  mutable SharedMutex epoch_mu_{KGOV_LOCK_RANK(kQueryEpochPin)};
  core::ServingEpoch pinned_ KGOV_GUARDED_BY(epoch_mu_);

  ShardedResultCache cache_;
  SingleFlightGroup flights_;
  AdmissionController admission_;
  std::vector<ppr::PropagationWorkspace> workspaces_;
  std::vector<ppr::MultiPropagationWorkspace> multi_workspaces_;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> leaders_{0};
  std::atomic<uint64_t> followers_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> degraded_served_{0};

  /// Declared last: destroyed first, so workers drain before the state
  /// they touch goes away.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace kgov::serve

#endif  // KGOV_SERVE_QUERY_ENGINE_H_
