#!/usr/bin/env bash
# The kgov static-analysis gate (docs/static_analysis.md):
#
#   1. clang thread-safety build: the whole tree compiled with
#      -Wthread-safety{,-beta} promoted to errors (KGOV_STATIC_ANALYSIS),
#      plus the misannotated-lock compile-FAIL demo. Requires clang;
#      skipped with a notice when no clang++ is on PATH.
#   2. dropped-Status compile-FAIL demo: tools/ci/compile_fail/
#      dropped_status.cc must NOT compile ([[nodiscard]] +
#      -Werror=unused-result). Runs under any compiler.
#   3. clang-tidy (.clang-tidy profile) over the library sources, against
#      the CMake-exported compile_commands.json. Skipped with a notice
#      when clang-tidy is not installed.
#   4. kgov_lint (tools/lint/kgov_lint.py): repo rules - options structs
#      must declare Validate(), no logging under a lock, no raw std lock
#      types in src/, no unseeded RNG, [[nodiscard]] kept in place, no
#      unchecked ofstream/fwrite writes - plus the unchecked-io lint
#      canary: the linter must still FLAG the planted violations in
#      tools/ci/compile_fail/unchecked_io.cc (compile-FAIL style, but for
#      the linter itself).
#
# Any failure of an *available* phase fails the gate; unavailable tools
# skip loudly but do not fail (the lint phase and the dropped-Status demo
# always run, so every environment enforces a non-empty subset).
#
# Usage: tools/ci/analyze.sh [build-dir]
#   build-dir (default build-analyze) is used for the clang build; the
#   lint report lands in <build-dir>/kgov_lint_report.txt.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-analyze}"
COMPILE_FAIL_DIR="$REPO_ROOT/tools/ci/compile_fail"
mkdir -p "$BUILD_DIR"

FAILURES=0

fail() {
  echo "ANALYZE FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

CLANGXX="${KGOV_CLANGXX:-clang++}"
HAVE_CLANG=0
if command -v "$CLANGXX" >/dev/null 2>&1; then
  HAVE_CLANG=1
fi

# ----------------------------------------------------------------------
echo "== [1/4] clang thread-safety analysis =="
if [[ "$HAVE_CLANG" == "1" ]]; then
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
      -DCMAKE_CXX_COMPILER="$CLANGXX" \
      -DKGOV_STATIC_ANALYSIS=ON \
      -DKGOV_BUILD_BENCHMARKS=OFF
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
      || fail "thread-safety analysis reported errors"

  echo "-- misannotated-lock compile-FAIL demo --"
  if "$CLANGXX" -std=c++20 -I"$REPO_ROOT/src" \
      -Wthread-safety -Wthread-safety-beta \
      -Werror=thread-safety -Werror=thread-safety-beta \
      -fsyntax-only "$COMPILE_FAIL_DIR/misannotated_lock.cc" \
      2>"$BUILD_DIR/misannotated_lock.log"; then
    fail "misannotated_lock.cc compiled - the thread-safety gate is dead"
  else
    echo "OK: misannotated lock rejected, as required"
  fi
else
  echo "SKIP: no $CLANGXX on PATH - thread-safety analysis needs clang."
  echo "      (The KGOV_* annotations compile as no-ops under this"
  echo "      toolchain; run this script where clang is installed to"
  echo "      check them.)"
fi

# ----------------------------------------------------------------------
echo "== [2/4] dropped-Status compile-FAIL demo =="
CXX_FOR_DEMO="${CXX:-}"
if [[ -z "$CXX_FOR_DEMO" ]]; then
  if [[ "$HAVE_CLANG" == "1" ]]; then CXX_FOR_DEMO="$CLANGXX";
  else CXX_FOR_DEMO="c++"; fi
fi
if "$CXX_FOR_DEMO" -std=c++20 -I"$REPO_ROOT/src" -Werror=unused-result \
    -fsyntax-only "$COMPILE_FAIL_DIR/dropped_status.cc" \
    2>"$BUILD_DIR/dropped_status.log"; then
  fail "dropped_status.cc compiled - [[nodiscard]] enforcement is dead"
else
  echo "OK: dropped Status rejected, as required"
fi

# ----------------------------------------------------------------------
echo "== [3/4] clang-tidy =="
CLANG_TIDY="${KGOV_CLANG_TIDY:-clang-tidy}"
if command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  TIDY_DB_DIR="$BUILD_DIR"
  if [[ ! -f "$TIDY_DB_DIR/compile_commands.json" ]]; then
    # No clang build happened (phase 1 skipped); export a database with
    # the default compiler instead.
    cmake -B "$TIDY_DB_DIR" -S "$REPO_ROOT" \
        -DKGOV_BUILD_BENCHMARKS=OFF >/dev/null
  fi
  mapfile -t TIDY_SOURCES < <(find "$REPO_ROOT/src" -name '*.cc' | sort)
  "$CLANG_TIDY" -p "$TIDY_DB_DIR" --quiet "${TIDY_SOURCES[@]}" \
      2>"$BUILD_DIR/clang_tidy.log" \
      || fail "clang-tidy reported errors (see $BUILD_DIR/clang_tidy.log)"
else
  echo "SKIP: no $CLANG_TIDY on PATH (profile: .clang-tidy at repo root)."
fi

# ----------------------------------------------------------------------
echo "== [4/4] kgov_lint =="
python3 "$REPO_ROOT/tools/lint/kgov_lint.py" --root "$REPO_ROOT" \
    --report "$BUILD_DIR/kgov_lint_report.txt" \
    || fail "kgov_lint found violations"

echo "-- unchecked-io lint canary --"
if python3 "$REPO_ROOT/tools/lint/kgov_lint.py" --root "$REPO_ROOT" \
    --file "$COMPILE_FAIL_DIR/unchecked_io.cc" \
    >"$BUILD_DIR/unchecked_io_canary.log" 2>&1; then
  fail "unchecked_io.cc passed the linter - the no-unchecked-io rule is dead"
elif ! grep -q "no-unchecked-io" "$BUILD_DIR/unchecked_io_canary.log"; then
  fail "linter rejected unchecked_io.cc for the wrong reason (see $BUILD_DIR/unchecked_io_canary.log)"
else
  echo "OK: planted unchecked writes flagged, as required"
fi

# ----------------------------------------------------------------------
if [[ "$FAILURES" -gt 0 ]]; then
  echo "Static-analysis gate FAILED ($FAILURES failure(s))." >&2
  exit 1
fi
echo "Static-analysis gate passed."
