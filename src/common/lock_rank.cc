#include "common/lock_rank.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>  // kgov-lint: allow(raw-mutex)
#include <set>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "common/sched.h"

// The tracker's own state is guarded by a RAW std::mutex (lint-allowed
// above): it cannot use the instrumented wrappers without observing
// itself. Reentrancy from the violation-report path (logging and the
// telemetry mirror both take instrumented locks) is cut by the per-thread
// in_hook guard, which sends nested hook entries straight to the native
// lock.

namespace kgov::lockinstr {

std::atomic<uint32_t> g_active{0};

}  // namespace kgov::lockinstr

namespace kgov::lockrank {

const char* RankName(Rank rank) {
  switch (rank) {
    case Rank::kUnranked:
      return "kUnranked";
    case Rank::kLogging:
      return "kLogging";
    case Rank::kTelemetryReservoir:
      return "kTelemetryReservoir";
    case Rank::kTelemetryRegistry:
      return "kTelemetryRegistry";
    case Rank::kFaultInjection:
      return "kFaultInjection";
    case Rank::kParallelForState:
      return "kParallelForState";
    case Rank::kSolverBatchReport:
      return "kSolverBatchReport";
    case Rank::kThreadPool:
      return "kThreadPool";
    case Rank::kVoteLogSerial:
      return "kVoteLogSerial";
    case Rank::kEpochPublish:
      return "kEpochPublish";
    case Rank::kAdmissionSlo:
      return "kAdmissionSlo";
    case Rank::kSingleFlightFlight:
      return "kSingleFlightFlight";
    case Rank::kSingleFlightTable:
      return "kSingleFlightTable";
    case Rank::kServeCacheEpoch:
      return "kServeCacheEpoch";
    case Rank::kServeCacheShard:
      return "kServeCacheShard";
    case Rank::kQueryEpochPin:
      return "kQueryEpochPin";
    case Rank::kStreamQueue:
      return "kStreamQueue";
  }
  return "k?";
}

namespace {

struct HeldLock {
  const void* id;
  Rank rank;
};

struct ThreadState {
  std::vector<HeldLock> held;
  // Nonzero while inside tracker internals (violation reporting): nested
  // hook entries bypass tracking entirely instead of recursing.
  int in_hook = 0;
};

ThreadState& State() {
  thread_local ThreadState ts;
  return ts;
}

// Graph node identity: ranked locks collapse into one node per rank
// class (the ORDER is per class, not per instance); unranked locks get a
// node per instance address.
using NodeKey = uint64_t;
constexpr NodeKey kRankClassBit = 1ull << 63;

NodeKey KeyFor(const void* id, Rank rank) {
  if (rank != Rank::kUnranked) {
    return kRankClassBit | static_cast<NodeKey>(rank);
  }
  return static_cast<NodeKey>(reinterpret_cast<uintptr_t>(id));
}

struct Node {
  std::string label;
  // Edge this-node -> key, with the context (thread + held stack) of the
  // first time the order was observed.
  std::map<NodeKey, std::string> out;
};

struct Graph {
  std::mutex mu;  // kgov-lint: allow(raw-mutex)
  std::unordered_map<NodeKey, Node> nodes;
  // (from, to) pairs already reported, so a hot path with a stable
  // inversion fires one soft violation, not one per iteration.
  std::set<std::pair<NodeKey, NodeKey>> reported;
};

Graph& TheGraph() {
  static Graph* graph = new Graph();  // leaked: outlives all threads
  return *graph;
}

std::string LockLabel(const void* id, Rank rank) {
  if (rank != Rank::kUnranked) {
    std::ostringstream out;
    out << RankName(rank) << "(" << static_cast<int>(rank) << ")";
    return out.str();
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "unranked@%p", id);
  return buf;
}

std::string DescribeStack(const std::vector<HeldLock>& held) {
  std::string out;
  for (const HeldLock& lock : held) {
    if (!out.empty()) out += " > ";
    out += LockLabel(lock.id, lock.rank);
  }
  return out;
}

// Reports one lock-order violation through the contracts layer. Runs
// with in_hook bumped so the logging / telemetry locks taken downstream
// are not themselves tracked.
void ReportViolation(ThreadState& ts, const std::string& message) {
  ++ts.in_hook;
  {
    contracts::internal::ContractFailure failure(
        __FILE__, __LINE__, "lock-order", contracts::ViolationKind::kLockOrder);
    failure.stream() << message;
  }
  --ts.in_hook;
}

// True when `to` is reachable from `from` via recorded acquired-after
// edges (path length >= 1). On success fills `path` with the node keys
// from `from` to `to` inclusive. Caller holds graph.mu.
bool FindPath(const Graph& graph, NodeKey from, NodeKey to,
              std::vector<NodeKey>* path) {
  std::unordered_map<NodeKey, NodeKey> parent;
  std::unordered_set<NodeKey> visited;
  std::deque<NodeKey> frontier;
  frontier.push_back(from);
  visited.insert(from);
  while (!frontier.empty()) {
    NodeKey key = frontier.front();
    frontier.pop_front();
    auto it = graph.nodes.find(key);
    if (it == graph.nodes.end()) continue;
    for (const auto& [next, ctx] : it->second.out) {
      if (next == to) {
        path->clear();
        path->push_back(to);
        for (NodeKey at = key; at != from; at = parent.at(at)) {
          path->push_back(at);
        }
        path->push_back(from);
        std::reverse(path->begin(), path->end());
        return true;
      }
      if (visited.insert(next).second) {
        parent[next] = key;
        frontier.push_back(next);
      }
    }
  }
  return false;
}

// The rank + cycle checks on one acquisition attempt. Records the
// acquired-after edges held -> new regardless of outcome (the DOT dump
// shows violating orders too).
void CheckAcquire(ThreadState& ts, const void* id, Rank rank) {
  if (ts.held.empty()) return;

  const NodeKey new_key = KeyFor(id, rank);
  std::string violation;  // built under graph.mu, reported after

  Graph& graph = TheGraph();
  {
    std::lock_guard<std::mutex> g(graph.mu);

    Node& new_node = graph.nodes[new_key];
    if (new_node.label.empty()) new_node.label = LockLabel(id, rank);

    // Rank check: every ranked lock already held must outrank the new
    // one strictly (descending acquisition order).
    if (rank != Rank::kUnranked) {
      for (const HeldLock& held : ts.held) {
        if (held.rank == Rank::kUnranked) continue;
        if (rank < held.rank) continue;
        const NodeKey held_key = KeyFor(held.id, held.rank);
        if (graph.reported.insert({held_key, new_key}).second &&
            violation.empty()) {
          std::ostringstream out;
          out << "rank inversion: acquiring " << LockLabel(id, rank)
              << " while holding " << LockLabel(held.id, held.rank)
              << (rank == held.rank ? " (equal ranks may not nest)"
                                    : " (ranks must strictly descend)")
              << "; this thread holds: " << DescribeStack(ts.held)
              << "; see common/lock_ranks.h for the acquisition order";
          violation = out.str();
        }
      }
    }

    // Record edges + cycle check against every held lock.
    std::ostringstream ctx;
    ctx << "thread " << std::this_thread::get_id() << " held "
        << DescribeStack(ts.held);
    for (const HeldLock& held : ts.held) {
      const NodeKey held_key = KeyFor(held.id, held.rank);
      if (held_key == new_key) {
        // Same unranked instance re-acquired (self-deadlock), or two
        // same-rank-class instances nested (already flagged by the rank
        // check above).
        if (rank == Rank::kUnranked &&
            graph.reported.insert({held_key, new_key}).second &&
            violation.empty()) {
          violation = "recursive acquisition of " + LockLabel(id, rank) +
                      "; this thread holds: " + DescribeStack(ts.held);
        }
        continue;
      }
      Node& held_node = graph.nodes[held_key];
      if (held_node.label.empty()) {
        held_node.label = LockLabel(held.id, held.rank);
      }
      // Cycle: the new lock already reaches a held lock, so adding
      // held -> new closes a loop in the acquired-after order.
      std::vector<NodeKey> path;
      if (violation.empty() && !graph.reported.count({new_key, held_key}) &&
          FindPath(graph, new_key, held_key, &path)) {
        graph.reported.insert({new_key, held_key});
        std::ostringstream out;
        out << "acquired-after cycle: acquiring " << LockLabel(id, rank)
            << " while holding " << LockLabel(held.id, held.rank)
            << ", but the reverse order was already observed: ";
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          const Node& from = graph.nodes.at(path[i]);
          out << from.label << " -> ";
          auto edge = from.out.find(path[i + 1]);
          if (i + 2 == path.size() && edge != from.out.end()) {
            out << graph.nodes.at(path[i + 1]).label << " [" << edge->second
                << "]";
          }
        }
        out << "; this thread holds: " << DescribeStack(ts.held);
        violation = out.str();
      }
      held_node.out.emplace(new_key, ctx.str());
    }
  }

  if (!violation.empty()) ReportViolation(ts, violation);
}

}  // namespace

void EnableTracking() {
  lockinstr::g_active.fetch_or(lockinstr::kRankTrackingBit,
                               std::memory_order_relaxed);
}

void DisableTracking() {
  lockinstr::g_active.fetch_and(~lockinstr::kRankTrackingBit,
                                std::memory_order_relaxed);
}

bool TrackingEnabled() {
  return (lockinstr::g_active.load(std::memory_order_relaxed) &
          lockinstr::kRankTrackingBit) != 0;
}

void ResetGraph() {
  Graph& graph = TheGraph();
  std::lock_guard<std::mutex> g(graph.mu);
  graph.nodes.clear();
  graph.reported.clear();
}

void ResetThreadState() {
  State().held.clear();
  State().in_hook = 0;
}

std::string HeldLocksDescription() { return DescribeStack(State().held); }

std::string AcquiredAfterGraphDot() {
  Graph& graph = TheGraph();
  std::ostringstream out;
  out << "digraph acquired_after {\n"
      << "  rankdir=TB;\n"
      << "  node [shape=box, fontname=\"monospace\"];\n";
  std::lock_guard<std::mutex> g(graph.mu);
  for (const auto& [key, node] : graph.nodes) {
    out << "  n" << key << " [label=\"" << node.label << "\"];\n";
  }
  for (const auto& [key, node] : graph.nodes) {
    for (const auto& [to, ctx] : node.out) {
      out << "  n" << key << " -> n" << to;
      if (graph.reported.count({key, to}) || graph.reported.count({to, key})) {
        out << " [color=red, penwidth=2]";
      }
      out << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace kgov::lockrank

namespace kgov::lockinstr {

// The entry points below reuse the tracker internals through the implicit
// using-directive of lockrank's unnamed namespace (same TU).

namespace {

using lockrank::Rank;

// Pops `id` from the held stack (search from the top: release order may
// differ from acquisition order). Missing entries are tolerated - the
// lock may have been acquired before tracking was armed.
void PopHeld(lockrank::ThreadState& ts, const void* id) {
  for (auto it = ts.held.rbegin(); it != ts.held.rend(); ++it) {
    if (it->id == id) {
      ts.held.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

void Acquire(const void* id, Rank rank, const NativeLockOps& ops) {
  lockrank::ThreadState& ts = lockrank::State();
  const uint32_t active = g_active.load(std::memory_order_relaxed);
  const bool track = (active & kRankTrackingBit) != 0 && ts.in_hook == 0;
  if (track) lockrank::CheckAcquire(ts, id, rank);
  if ((active & kExplorerBit) != 0 && ts.in_hook == 0 &&
      sched::CurrentThreadRegistered()) {
    sched::internal::AcquireMutex(id, ops);
  } else {
    ops.lock(ops.handle);
  }
  if (track) ts.held.push_back({id, rank});
}

bool TryAcquire(const void* id, Rank rank, const NativeLockOps& ops) {
  lockrank::ThreadState& ts = lockrank::State();
  const uint32_t active = g_active.load(std::memory_order_relaxed);
  const bool track = (active & kRankTrackingBit) != 0 && ts.in_hook == 0;
  // The rank check fires on the ATTEMPT: a try-lock in inverted order is
  // the same latent deadlock, it only "works" until contention wins.
  if (track) lockrank::CheckAcquire(ts, id, rank);
  bool acquired;
  if ((active & kExplorerBit) != 0 && ts.in_hook == 0 &&
      sched::CurrentThreadRegistered()) {
    acquired = sched::internal::TryAcquireMutex(id, ops);
  } else {
    acquired = ops.try_lock(ops.handle);
  }
  if (acquired && track) ts.held.push_back({id, rank});
  return acquired;
}

void Release(const void* id, const NativeLockOps& ops) {
  lockrank::ThreadState& ts = lockrank::State();
  const uint32_t active = g_active.load(std::memory_order_relaxed);
  if ((active & kRankTrackingBit) != 0 && ts.in_hook == 0) PopHeld(ts, id);
  if ((active & kExplorerBit) != 0 && ts.in_hook == 0 &&
      sched::CurrentThreadRegistered()) {
    sched::internal::ReleaseMutex(id, ops);  // unlocks + wakes + yields
  } else {
    ops.unlock(ops.handle);
  }
}

bool ReleaseAndWait(const void* mu_id, const NativeLockOps& mu_ops,
                    const void* cv_id, bool timed) {
  lockrank::ThreadState& ts = lockrank::State();
  const uint32_t active = g_active.load(std::memory_order_relaxed);
  if ((active & kRankTrackingBit) != 0 && ts.in_hook == 0) PopHeld(ts, mu_id);
  return sched::internal::BlockOnCv(mu_id, mu_ops, cv_id, timed);
}

void CvNotify(const void* cv_id, bool notify_all) {
  lockrank::ThreadState& ts = lockrank::State();
  const uint32_t active = g_active.load(std::memory_order_relaxed);
  if ((active & kExplorerBit) != 0 && ts.in_hook == 0) {
    // Free (unregistered) threads route through too: their notifies must
    // wake modeled waiters or the explorer would miss real wakeups.
    sched::internal::NotifyCv(cv_id, notify_all);
  }
}

}  // namespace kgov::lockinstr
