# Empty compiler generated dependencies file for ecommerce_recommend.
# This may be replaced when dependencies are built.
