#include "math/signomial.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace kgov::math {

Signomial::Signomial(double constant) {
  if (constant != 0.0) terms_.push_back(Monomial(constant));
}

Signomial::Signomial(Monomial term) {
  if (term.coefficient() != 0.0) terms_.push_back(std::move(term));
}

Signomial::Signomial(std::vector<Monomial> terms) : terms_(std::move(terms)) {}

void Signomial::AddTerm(Monomial term) {
  if (term.coefficient() != 0.0) terms_.push_back(std::move(term));
}

void Signomial::Add(const Signomial& other) {
  terms_.insert(terms_.end(), other.terms_.begin(), other.terms_.end());
}

void Signomial::Subtract(const Signomial& other) {
  terms_.reserve(terms_.size() + other.terms_.size());
  for (const Monomial& term : other.terms_) {
    terms_.push_back(term.Scaled(-1.0));
  }
}

void Signomial::Scale(double factor) {
  for (Monomial& term : terms_) {
    term = term.Scaled(factor);
  }
  if (factor == 0.0) terms_.clear();
}

void Signomial::Compact() {
  // Group by power vector; map key is the normalized powers() of each term.
  std::map<std::vector<std::pair<VarId, double>>, double> grouped;
  for (const Monomial& term : terms_) {
    grouped[term.powers()] += term.coefficient();
  }
  terms_.clear();
  terms_.reserve(grouped.size());
  for (auto& [powers, coeff] : grouped) {
    if (coeff != 0.0) {
      terms_.push_back(Monomial(coeff, powers));
    }
  }
}

double Signomial::Evaluate(const std::vector<double>& x) const {
  double value = 0.0;
  for (const Monomial& term : terms_) {
    value += term.Evaluate(x);
  }
  return value;
}

void Signomial::AccumulateGradient(const std::vector<double>& x, double scale,
                                   std::vector<double>* grad) const {
  for (const Monomial& term : terms_) {
    term.AccumulateGradient(x, scale, grad);
  }
}

double Signomial::EvaluateWithGradient(const std::vector<double>& x,
                                       size_t num_vars,
                                       std::vector<double>* grad) const {
  grad->assign(num_vars, 0.0);
  AccumulateGradient(x, 1.0, grad);
  return Evaluate(x);
}

int64_t Signomial::MaxVarId() const {
  int64_t max_id = -1;
  for (const Monomial& term : terms_) {
    max_id = std::max(max_id, term.MaxVarId());
  }
  return max_id;
}

bool Signomial::IsPosynomial() const {
  return std::all_of(terms_.begin(), terms_.end(), [](const Monomial& t) {
    return t.coefficient() > 0.0;
  });
}

Signomial Signomial::Sum(const Signomial& f, const Signomial& g) {
  Signomial out = f;
  out.Add(g);
  out.Compact();
  return out;
}

Signomial Signomial::Difference(const Signomial& f, const Signomial& g) {
  Signomial out = f;
  out.Subtract(g);
  out.Compact();
  return out;
}

std::string Signomial::ToString() const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) os << " + ";
    os << terms_[i].ToString();
  }
  return os.str();
}

}  // namespace kgov::math
