// VoteIngestQueue: the bounded, backpressured, WAL-ordered front door of
// the streaming write path.
//
// Producers (request handlers) call Offer/TryOffer from any thread; one
// consumer (the StreamPipeline) drains micro-batches. Three contracts:
//
//  * Durable acknowledgment stays AHEAD of optimization: with a vote log
//    attached, Offer appends the vote to the log before enqueueing it,
//    both under the queue mutex, so `Offer returned OK` implies `logged`
//    and a checkpoint can never observe a logged-but-invisible vote (see
//    DrainAllAndRun).
//  * Bounded: at `capacity` queued votes, Offer blocks (backpressure) or
//    sheds with kResourceExhausted (TryOffer, or block_when_full=false).
//  * Dead-letter backpressure: when the attached dead_letter_full probe
//    fires (the optimizer's dead-letter buffer is at capacity), new votes
//    are shed with kResourceExhausted instead of being accepted only to
//    silently evict an older abandoned vote later. Sheds are counted in
//    stream.shed_votes.
//
// Telemetry: stream.queue_depth (gauge), stream.votes_ingested,
// stream.shed_votes, stream.rejected_votes (queue-full non-blocking
// rejections).

#ifndef KGOV_STREAM_INGEST_QUEUE_H_
#define KGOV_STREAM_INGEST_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "votes/vote.h"
#include "votes/vote_log.h"

namespace kgov::stream {

struct VoteIngestQueueOptions {
  /// Maximum queued (accepted but not yet drained) votes.
  size_t capacity = 1024;
  /// When the queue is full: true = Offer blocks until space (bounded
  /// backpressure), false = Offer sheds with kResourceExhausted.
  bool block_when_full = true;

  /// Returns InvalidArgument naming the first offending field.
  Status Validate() const;
};

class VoteIngestQueue {
 public:
  /// `log` (nullable) is the durable-acknowledgment sink; it must be safe
  /// to call under the queue mutex (wrap shared sinks in
  /// SerializedVoteLog). `dead_letter_full` (nullable) is the producer-side
  /// shed probe; it must be thread-safe and non-blocking.
  VoteIngestQueue(VoteIngestQueueOptions options, votes::VoteLogSink* log,
                  std::function<bool()> dead_letter_full);

  VoteIngestQueue(const VoteIngestQueue&) = delete;
  VoteIngestQueue& operator=(const VoteIngestQueue&) = delete;

  /// Acknowledges one vote: logs it (when a sink is attached), then
  /// enqueues it. Blocks while the queue is full if block_when_full;
  /// otherwise sheds. kResourceExhausted = shed (queue or dead-letter
  /// buffer full), kFailedPrecondition = closed, other errors = the log
  /// append failed (the vote was NOT acknowledged).
  Status Offer(votes::Vote vote) KGOV_EXCLUDES(mu_);

  /// Never blocks: sheds with kResourceExhausted when the queue is full
  /// regardless of block_when_full.
  Status TryOffer(votes::Vote vote) KGOV_EXCLUDES(mu_);

  /// Drains up to `max` votes without waiting (may return empty).
  StatusOr<std::vector<votes::Vote>> DrainUpTo(size_t max)
      KGOV_EXCLUDES(mu_);

  /// Blocks until at least one vote is queued, the queue is closed, or
  /// `timeout_ms` elapses (<= 0 waits indefinitely), then drains up to
  /// `max`. An empty result with OK status means timeout or closed-empty.
  StatusOr<std::vector<votes::Vote>> WaitAndDrain(size_t max,
                                                  int64_t timeout_ms)
      KGOV_EXCLUDES(mu_);

  /// Atomically drains EVERY queued vote and runs `fn` on them while new
  /// Offers are blocked out. This is the checkpoint interleave: fn folds
  /// the drained votes into the optimizer and checkpoints it, and because
  /// producer appends nest under the queue mutex, no vote can land in a
  /// WAL segment the checkpoint is about to garbage-collect without also
  /// being visible to the checkpointed state.
  Status DrainAllAndRun(
      const std::function<Status(std::vector<votes::Vote>)>& fn)
      KGOV_EXCLUDES(mu_);

  /// Closes the queue: wakes blocked producers and the consumer; further
  /// Offers fail with kFailedPrecondition. Queued votes remain drainable.
  Status Close() KGOV_EXCLUDES(mu_);

  size_t size() const KGOV_EXCLUDES(mu_);
  bool closed() const KGOV_EXCLUDES(mu_);

  struct Stats {
    uint64_t accepted = 0;
    /// Shed with kResourceExhausted because the dead-letter buffer was
    /// full (the stream.shed_votes satellite contract).
    uint64_t shed_dead_letter_full = 0;
    /// Shed/rejected because the queue itself was full.
    uint64_t rejected_queue_full = 0;
  };
  Stats GetStats() const KGOV_EXCLUDES(mu_);

 private:
  Status OfferImpl(votes::Vote vote, bool may_block) KGOV_EXCLUDES(mu_);

  const VoteIngestQueueOptions options_;
  const Status options_status_;
  votes::VoteLogSink* log_;
  std::function<bool()> dead_letter_full_;

  mutable Mutex mu_{KGOV_LOCK_RANK(kStreamQueue)};
  std::deque<votes::Vote> queue_ KGOV_GUARDED_BY(mu_);
  bool closed_ KGOV_GUARDED_BY(mu_) = false;
  Stats stats_ KGOV_GUARDED_BY(mu_);
  CondVar not_full_;
  CondVar not_empty_;
};

}  // namespace kgov::stream

#endif  // KGOV_STREAM_INGEST_QUEUE_H_
