#!/usr/bin/env bash
# The full kgov CI gate:
#   0. static analysis + lint (tools/ci/analyze.sh),
#   1. tier-1: configure + build + ctest (Release-ish default flags),
#      with the durability kill-tests rerun standalone so their recovery
#      artifacts land in a known directory for the CI upload,
#   2. the ASan/UBSan pass (tools/ci/sanitize.sh),
#   3. the serving-path perf probe, emitting BENCH_serving.json at the
#      repo root so the queries/sec trajectory is tracked per commit,
#      plus the durability bench smoke run gating the WAL's flush-path
#      overhead below 5%, the scale bench smoke run gating the sparse
#      EIPD kernel's advantage at 1e5+ nodes and the bounded
#      million-node generator, and the lock-rank detector overhead gate
#      (the default KGOV_LOCK_DEBUG=ON build must hold 98% of a plain
#      build's bench_concurrent_serving throughput - the hooks are one
#      dormant atomic load).
#
# Usage: tools/ci/check.sh [build-dir]
#   KGOV_SKIP_ANALYZE=1   skip step 0
#   KGOV_SKIP_SANITIZE=1  skip step 2 (e.g. toolchains without ASan)
#   KGOV_SKIP_BENCH=1     skip step 3
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"

if [[ "${KGOV_SKIP_ANALYZE:-0}" != "1" ]]; then
  echo "== [0/3] static analysis + lint =="
  "$REPO_ROOT/tools/ci/analyze.sh"
else
  echo "== [0/3] static analysis skipped (KGOV_SKIP_ANALYZE=1) =="
fi

echo "== [1/3] tier-1 build + tests =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== [1/3] durability kill-tests (crash -> restart -> recover) =="
# Rerun the kill-test binary with the artifact dir pinned: every scenario
# leaves its expected/recovered ranking fingerprints and the crashed state
# directory there, and CI uploads the tree when the job fails.
export KGOV_DURABILITY_ARTIFACT_DIR="${KGOV_DURABILITY_ARTIFACT_DIR:-$BUILD_DIR/durability-kill-artifacts}"
rm -rf "$KGOV_DURABILITY_ARTIFACT_DIR"
mkdir -p "$KGOV_DURABILITY_ARTIFACT_DIR"
"$BUILD_DIR/tests/test_durability_kill"

if [[ "${KGOV_SKIP_SANITIZE:-0}" != "1" ]]; then
  echo "== [2/3] ASan/UBSan =="
  "$REPO_ROOT/tools/ci/sanitize.sh"
else
  echo "== [2/3] ASan/UBSan skipped (KGOV_SKIP_SANITIZE=1) =="
fi

if [[ "${KGOV_SKIP_BENCH:-0}" != "1" ]]; then
  echo "== [3/3] serving-path bench =="
  TELEMETRY_JSON="$REPO_ROOT/BENCH_serving_telemetry.json"
  rm -f "$TELEMETRY_JSON"
  "$BUILD_DIR/bench/bench_serving_path" \
      --json "$REPO_ROOT/BENCH_serving.json" \
      --telemetry-json "$TELEMETRY_JSON" \
      --benchmark_min_time=0.1

  # The bench must leave behind a well-formed telemetry snapshot with the
  # serving-latency histogram populated (docs/observability.md).
  if [[ ! -s "$TELEMETRY_JSON" ]]; then
    echo "FAIL: telemetry snapshot $TELEMETRY_JSON missing or empty" >&2
    exit 1
  fi
  python3 - "$TELEMETRY_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    snap = json.load(f)
for section in ("counters", "gauges", "histograms"):
    if section not in snap:
        sys.exit(f"FAIL: telemetry snapshot lacks '{section}'")
hist = snap["histograms"].get("serving.eipd.propagate.seconds")
if not hist or hist.get("count", 0) == 0:
    sys.exit("FAIL: serving.eipd.propagate.seconds histogram is empty")
for key in ("p50", "p95", "p99", "buckets"):
    if key not in hist:
        sys.exit(f"FAIL: serving latency histogram lacks '{key}'")
if snap["counters"].get("serving.eipd.queries", 0) == 0:
    sys.exit("FAIL: serving.eipd.queries counter is zero")
print("telemetry snapshot OK:",
      hist["count"], "propagations,",
      "p50={:.3g}s p99={:.3g}s".format(hist["p50"], hist["p99"]))
EOF

  echo "== [3/3] concurrent-serving bench (smoke) =="
  CONCURRENT_JSON="$BUILD_DIR/BENCH_concurrent_smoke.json"
  CONCURRENT_TELEMETRY="$REPO_ROOT/BENCH_concurrent_telemetry.json"
  rm -f "$CONCURRENT_JSON" "$CONCURRENT_TELEMETRY"
  "$BUILD_DIR/bench/bench_concurrent_serving" --smoke \
      --json "$CONCURRENT_JSON" \
      --telemetry-json "$CONCURRENT_TELEMETRY"

  # The sweep must show the cache-hit speedup and ideal thread scaling,
  # and leave a snapshot with the serve.* metrics populated
  # (docs/serving.md). On top of the sweep, three serving-path gates:
  #   * single-flight: a flash crowd of identical cold misses must
  #     collapse to EXACTLY one propagation per cold key (counter-verified
  #     from the engine's own outcome accounting, not timing);
  #   * batching: the batched run must have executed real multi-root
  #     passes (counter-verified via serving.eipd.multi_passes);
  #   * shedding: a saturated admission window must shed with
  #     kResourceExhausted promptly - shed-path p99 under 50 ms (the
  #     whole point of load shedding is that rejection never queues
  #     behind the work it is rejecting).
  # The committed full-run artifact is BENCH_concurrent.json at the repo
  # root; the smoke json stays in the build dir so CI never clobbers it.
  python3 - "$CONCURRENT_JSON" "$CONCURRENT_TELEMETRY" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
if bench.get("cache_hit_speedup", 0) <= 1.0:
    sys.exit("FAIL: cache-hit speedup not > 1x")
scaling = bench.get("scaling")
if scaling is None:
    # Single-core host: the bench emits "scaling": null because the thread
    # sweep cannot measure real scaling there. Skip (don't gate) the check.
    print("SKIP: thread-scaling gate (host_cores={}, scaling is null)"
          .format(bench.get("host_cores", "?")))
elif scaling.get("ideal_1_to_4", 0) < 2.0:
    sys.exit("FAIL: ideal 1->4 thread scaling below 2x")

sf = bench.get("single_flight")
if not sf:
    sys.exit("FAIL: bench json lacks 'single_flight'")
if sf.get("propagations", -1) != sf.get("cold_keys", 0):
    sys.exit("FAIL: single-flight dedup broken: {} cold keys but {} "
             "propagations (want exactly one leader per key)"
             .format(sf.get("cold_keys"), sf.get("propagations")))
if sf.get("leaders", -1) != sf.get("cold_keys", 0):
    sys.exit("FAIL: single-flight leader count {} != cold keys {}"
             .format(sf.get("leaders"), sf.get("cold_keys")))
accounted = (sf.get("propagations", 0) + sf.get("followers", 0)
             + sf.get("hits", 0))
if accounted != sf.get("queries", -1):
    sys.exit("FAIL: single-flight outcome accounting broken: "
             "propagations+followers+hits={} != queries={}"
             .format(accounted, sf.get("queries")))

batching = bench.get("batching")
if not batching:
    sys.exit("FAIL: bench json lacks 'batching'")
if batching.get("multi_passes", 0) == 0:
    sys.exit("FAIL: batched run executed no multi-root passes")
if batching.get("avg_roots_per_pass", 0.0) <= 1.0:
    sys.exit("FAIL: multi-root passes averaged <= 1 root - batching "
             "folded nothing")

shed = bench.get("shedding")
if not shed:
    sys.exit("FAIL: bench json lacks 'shedding'")
if shed.get("shed", 0) == 0:
    sys.exit("FAIL: saturating workload shed nothing")
if shed.get("served", 0) == 0:
    sys.exit("FAIL: saturating workload served nothing (window stuck)")
if shed.get("shed_p99_seconds", 1.0) >= 0.05:
    sys.exit("FAIL: shed-path p99 {:.4f}s >= 50ms - rejection is "
             "queuing behind the work".format(shed["shed_p99_seconds"]))

with open(sys.argv[2]) as f:
    snap = json.load(f)
counters = snap.get("counters", {})
if counters.get("serve.queries", 0) == 0:
    sys.exit("FAIL: serve.queries counter is zero")
if counters.get("serve.cache.hits", 0) == 0:
    sys.exit("FAIL: serve.cache.hits counter is zero")
if counters.get("serve.singleflight.leaders", 0) == 0:
    sys.exit("FAIL: serve.singleflight.leaders counter is zero")
if counters.get("serve.admission.shed", 0) == 0:
    sys.exit("FAIL: serve.admission.shed counter is zero")
if counters.get("serve.batch.groups", 0) == 0:
    sys.exit("FAIL: serve.batch.groups counter is zero")
hist = snap.get("histograms", {}).get("span.serve.query.seconds")
if not hist or hist.get("count", 0) == 0:
    sys.exit("FAIL: span.serve.query.seconds histogram is empty")
for key in ("p50", "p95", "p99", "buckets"):
    if key not in hist:
        sys.exit(f"FAIL: serve latency histogram lacks '{key}'")
print("concurrent serving OK:",
      "{:.1f}x cache speedup,".format(bench["cache_hit_speedup"]),
      ("{:.2f}x ideal scaling,".format(scaling["ideal_1_to_4"])
       if scaling is not None else "scaling n/a (1 core),"),
      "{}:{} flash dedup,".format(sf["queries"], sf["propagations"]),
      "{} multi-root passes,".format(batching["multi_passes"]),
      "shed p99 {:.2g}s,".format(shed["shed_p99_seconds"]),
      hist["count"], "queries served")
EOF

  echo "== [3/3] streaming bench (smoke) =="
  STREAMING_JSON="$BUILD_DIR/BENCH_streaming_smoke.json"
  STREAMING_TELEMETRY="$BUILD_DIR/BENCH_streaming_telemetry_smoke.json"
  rm -f "$STREAMING_JSON" "$STREAMING_TELEMETRY"
  "$BUILD_DIR/bench/bench_streaming" --smoke \
      --json "$STREAMING_JSON" \
      --telemetry-json "$STREAMING_TELEMETRY"

  # The committed full-run artifact is BENCH_streaming.json at the repo
  # root; the smoke json stays in the build dir. The gates: the pipeline
  # must sustain a positive acknowledged-vote rate with epochs actually
  # published, and selective invalidation must retain a strictly higher
  # post-swap cache hit rate than the full-flush baseline on the same
  # workload - the property the whole delta machinery exists for.
  python3 - "$STREAMING_JSON" "$STREAMING_TELEMETRY" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
ingest = bench.get("ingest", {})
if ingest.get("votes_per_sec", 0) <= 0:
    sys.exit("FAIL: streaming ingest rate is zero")
if ingest.get("epochs_published", 0) == 0:
    sys.exit("FAIL: streaming ingest published no epochs")
if ingest.get("queries_served", 0) == 0:
    sys.exit("FAIL: no queries served concurrently with ingest")
inval = bench.get("invalidation", {})
sel = inval.get("hit_rate_selective", 0.0)
full = inval.get("hit_rate_full", 0.0)
if sel <= full:
    sys.exit(f"FAIL: selective invalidation hit rate {sel:.4f} not "
             f"strictly above full-flush {full:.4f}")
with open(sys.argv[2]) as f:
    snap = json.load(f)
counters = snap.get("counters", {})
for counter in ("stream.votes_ingested", "stream.micro_batches",
                "stream.epochs_published", "stream.invalidation.selective"):
    if counters.get(counter, 0) == 0:
        sys.exit(f"FAIL: telemetry counter '{counter}' is zero")
print("streaming OK:",
      "{:.0f} votes/s sustained,".format(ingest["votes_per_sec"]),
      "p99 {:.2f} ms serving,".format(ingest.get("serving_p99_ms", 0.0)),
      "retention {:.1%} selective vs {:.1%} full".format(sel, full))
EOF

  echo "== [3/3] scale bench (smoke) =="
  SCALE_JSON="$BUILD_DIR/BENCH_scale_smoke.json"
  rm -f "$SCALE_JSON"
  # Bounded: the smoke sweep (4096 / 1e5 / 1e6 nodes, few queries each)
  # including the million-node streaming-generator run must finish inside
  # 10 minutes; `timeout` turns a generator regression into a hard FAIL
  # instead of a hung CI job.
  timeout 600 "$BUILD_DIR/bench/bench_scale" --smoke --json "$SCALE_JSON"

  # The committed full-run artifact is BENCH_scale.json at the repo root;
  # the smoke json stays in the build dir. Gates:
  #   * the sweep must reach 1e6 nodes, with the million-node generator
  #     bounded in time (< 120 s) and the whole process bounded in memory
  #     (< 8 GB peak RSS);
  #   * every size reports dense and sparse p99;
  #   * the sparse kernel must be strictly faster than dense (mean) at
  #     every size >= 1e5 - the tentpole claim behind docs/scale.md.
  python3 - "$SCALE_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
sizes = bench.get("sizes", [])
if not sizes:
    sys.exit("FAIL: scale bench json has no sizes")
max_nodes = max(s["num_nodes"] for s in sizes)
if max_nodes < 1_000_000:
    sys.exit(f"FAIL: scale sweep stopped at {max_nodes} nodes; the "
             "million-node generator smoke did not run")
rss = bench.get("max_rss_mb", 1e9)
if rss >= 8192:
    sys.exit(f"FAIL: scale bench peak RSS {rss:.0f} MB >= 8 GB")
for s in sizes:
    for kernel in ("dense", "sparse"):
        stats = s.get(kernel)
        if not stats or "p99_ms" not in stats:
            sys.exit("FAIL: size {} lacks {} p99".format(
                s.get("num_nodes"), kernel))
    if s["num_nodes"] >= 1_000_000 and s.get("gen_seconds", 1e9) >= 120:
        sys.exit("FAIL: million-node generator took {:.1f}s >= 120s"
                 .format(s["gen_seconds"]))
    if s["num_nodes"] >= 100_000 and s.get("sparse_speedup", 0.0) <= 1.0:
        sys.exit("FAIL: sparse kernel not faster than dense at {} nodes "
                 "(speedup {:.2f}x)".format(s["num_nodes"],
                                            s.get("sparse_speedup", 0.0)))
million = [s for s in sizes if s["num_nodes"] >= 1_000_000][0]
print("scale OK:",
      "{} sizes to {} nodes,".format(len(sizes), max_nodes),
      "1e6 gen {:.1f}s,".format(million["gen_seconds"]),
      "sparse speedup at 1e5+: " + ", ".join(
          "{:.2f}x".format(s["sparse_speedup"])
          for s in sizes if s["num_nodes"] >= 100_000),
      "peak RSS {:.0f} MB".format(rss))
EOF

  echo "== [3/3] durability bench (smoke) =="
  DURABILITY_JSON="$BUILD_DIR/BENCH_durability_smoke.json"
  rm -f "$DURABILITY_JSON"
  "$BUILD_DIR/bench/bench_durability" --smoke \
      --json "$DURABILITY_JSON" \
      --telemetry-json "$BUILD_DIR/BENCH_durability_telemetry_smoke.json"

  # The committed full-run artifact is BENCH_durability.json at the repo
  # root; the smoke json stays in the build dir. The gate: logging an
  # acknowledged vote must stay in the noise on the flush path (< 5% in
  # group-commit mode), and the recovery-side numbers must be present and
  # sane.
  python3 - "$DURABILITY_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
for key in ("snapshot_write_mbps", "mmap_load_verify_seconds",
            "wal_append_qps_group_commit", "wal_append_qps_sync_each",
            "wal_replay_qps", "wal_overhead_pct_nosync"):
    if key not in bench:
        sys.exit(f"FAIL: durability bench json lacks '{key}'")
overhead = bench["wal_overhead_pct_nosync"]
if overhead >= 5.0:
    sys.exit(f"FAIL: WAL flush-path overhead {overhead:.2f}% >= 5% "
             "(group-commit mode)")
if bench["wal_replay_qps"] <= bench["wal_append_qps_sync_each"]:
    sys.exit("FAIL: WAL replay slower than synced appends - recovery "
             "would lag the log")
print("durability OK:",
      "{:.2f}% WAL flush overhead,".format(overhead),
      "{:.0f} votes/s group-commit append,".format(
          bench["wal_append_qps_group_commit"]),
      "{:.0f} votes/s replay".format(bench["wal_replay_qps"]))
EOF
  echo "== [3/3] lock-rank detector overhead gate =="
  # The lock-order / schedule-exploration hooks (KGOV_LOCK_DEBUG, default
  # ON) are dormant outside tests: one relaxed atomic load per lock
  # operation. This gate holds that claim to a number: the default
  # (rank-tracking) build must stay within 2% of a KGOV_LOCK_DEBUG=OFF
  # build of the same bench. Best-of-3 per build because single-core CI
  # hosts jitter more than the margin being measured.
  PLAIN_BUILD_DIR="$BUILD_DIR-nolockdbg"
  cmake -B "$PLAIN_BUILD_DIR" -S "$REPO_ROOT" \
      -DKGOV_LOCK_DEBUG=OFF -DKGOV_BUILD_TESTS=OFF \
      -DKGOV_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "$PLAIN_BUILD_DIR" -j "$(nproc)" \
      --target bench_concurrent_serving
  OVERHEAD_DIR="$BUILD_DIR/lockrank-overhead"
  rm -rf "$OVERHEAD_DIR"
  mkdir -p "$OVERHEAD_DIR"
  for run in 1 2 3; do
    "$BUILD_DIR/bench/bench_concurrent_serving" --smoke \
        --json "$OVERHEAD_DIR/tracked_$run.json" \
        --telemetry-json "$OVERHEAD_DIR/tracked_telemetry_$run.json" \
        >/dev/null
    "$PLAIN_BUILD_DIR/bench/bench_concurrent_serving" --smoke \
        --json "$OVERHEAD_DIR/plain_$run.json" \
        --telemetry-json "$OVERHEAD_DIR/plain_telemetry_$run.json" \
        >/dev/null
  done
  python3 - "$OVERHEAD_DIR" <<'EOF'
import glob, json, os, sys

def best_qps(pattern):
    best = 0.0
    for path in glob.glob(pattern):
        with open(path) as f:
            bench = json.load(f)
        for point in bench.get("sweep", []):
            best = max(best, point.get("measured_qps", 0.0))
    return best

out_dir = sys.argv[1]
tracked = best_qps(os.path.join(out_dir, "tracked_*.json"))
plain = best_qps(os.path.join(out_dir, "plain_*.json"))
if plain <= 0.0 or tracked <= 0.0:
    sys.exit("FAIL: lock-rank overhead gate got no qps samples")
ratio = tracked / plain
if ratio < 0.98:
    sys.exit("FAIL: rank-tracking build at {:.1f} qps vs plain "
             "{:.1f} qps ({:.1%}) - dormant-hook overhead exceeds "
             "2%".format(tracked, plain, ratio))
print("lock-rank overhead OK: tracked {:.1f} qps vs plain {:.1f} qps "
      "({:.1%} of plain, best of 3)".format(tracked, plain, ratio))
EOF
else
  echo "== [3/3] serving benches skipped (KGOV_SKIP_BENCH=1) =="
fi

echo "CI gate passed."
