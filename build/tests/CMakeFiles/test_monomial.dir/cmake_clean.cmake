file(REMOVE_RECURSE
  "CMakeFiles/test_monomial.dir/test_monomial.cc.o"
  "CMakeFiles/test_monomial.dir/test_monomial.cc.o.d"
  "test_monomial"
  "test_monomial.pdb"
  "test_monomial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monomial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
