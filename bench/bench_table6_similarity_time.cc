// Table VI: average elapsed time per query for similarity evaluation,
// random walk [5] vs extended inverse P-distance, as the answer-set size
// ||A|| grows over {5,000, 10,000, 20,000, 40,000}.
//
// Paper: random walk grows linearly (3.0s -> 28s), EIPD stays flat
// (2.6s -> 3.0s). Shape to reproduce: RW ~ linear in ||A||, EIPD ~ flat.
// Absolute numbers differ (compiled C++ vs MATLAB).
//
// Methodology note: the RW baseline's cost is one linear-system solve per
// answer. Measuring 40,000 solves directly is pointless; we time a random
// sample of answers and scale linearly, which is exact for a cost that is
// a sum over answers. EIPD is timed in full.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "graph/csr.h"
#include "graph/source.h"
#include "ppr/eipd_engine.h"
#include "ppr/ppr.h"

namespace kgov {
namespace {

constexpr size_t kEntityNodes = 5000;  // Table II "Random" graph
constexpr size_t kEntityEdges = 20000;
constexpr size_t kLinksPerAnswer = 3;
constexpr size_t kQueriesPerPoint = 3;
constexpr size_t kRwSampleAnswers = 40;

int Run() {
  bench::Banner(
      "Table VI: average elapsed time per query (similarity evaluation)",
      "Table VI (SVII-C)");

  graph::GeneratorSpec spec;
  spec.kind = graph::GeneratorKind::kErdosRenyi;
  spec.num_nodes = kEntityNodes;
  spec.num_edges = kEntityEdges;
  Result<graph::WeightedDigraph> base =
      graph::LoadGraph(graph::GraphSource::Generator(spec, 2211));
  Rng rng(2212);  // augmentation stream, separate from the generator's
  if (!base.ok()) {
    std::fprintf(stderr, "graph generation failed\n");
    return 1;
  }

  bench::TablePrinter table({"||A||", "Random Walk [5]", "Extended Inverse "
                             "P-Distance"},
                            {8, 16, 28});
  table.PrintHeader();

  for (size_t num_answers : {5000u, 10000u, 20000u, 40000u}) {
    // Build the augmented graph: base + answer nodes.
    graph::WeightedDigraph g = *base;
    std::vector<graph::NodeId> answers;
    answers.reserve(num_answers);
    std::unordered_set<graph::NodeId> touched;
    for (size_t a = 0; a < num_answers; ++a) {
      graph::NodeId answer = g.AddNode();
      answers.push_back(answer);
      for (size_t l = 0; l < kLinksPerAnswer; ++l) {
        graph::NodeId entity =
            static_cast<graph::NodeId>(rng.NextIndex(kEntityNodes));
        if (g.AddEdge(entity, answer, rng.Uniform(0.2, 1.0)).ok()) {
          touched.insert(entity);
        }
      }
    }
    for (graph::NodeId entity : touched) g.NormalizeOutWeights(entity);

    ppr::EipdOptions eipd_options;
    eipd_options.max_length = 5;
    graph::CsrSnapshot snap(g);
    ppr::EipdEngine eipd(snap.View(), eipd_options);
    ppr::PprOptions rw_options;
    rw_options.tolerance = 1e-10;
    ppr::RandomWalkBaseline rw(&g, rw_options);

    double rw_total = 0.0;
    double eipd_total = 0.0;
    for (size_t q = 0; q < kQueriesPerPoint; ++q) {
      std::vector<graph::NodeId> seeds;
      for (size_t i = 0; i < 3; ++i) {
        seeds.push_back(
            static_cast<graph::NodeId>(rng.NextIndex(kEntityNodes)));
      }
      ppr::QuerySeed seed = ppr::QuerySeed::UniformOver(seeds);

      // Random walk: per-answer solves on a sample, scaled to ||A||.
      Timer timer;
      for (size_t s = 0; s < kRwSampleAnswers; ++s) {
        graph::NodeId answer = answers[rng.NextIndex(answers.size())];
        (void)rw.Similarity(seed, answer);
      }
      rw_total += timer.ElapsedSeconds() *
                  (static_cast<double>(num_answers) / kRwSampleAnswers);

      // EIPD: one propagation yields every answer's score.
      timer.Restart();
      std::vector<double> scores = eipd.Scores(seed, answers).value();
      eipd_total += timer.ElapsedSeconds();
      if (scores.empty()) return 1;  // defeat optimizer
    }

    table.PrintRow({std::to_string(num_answers),
                    FormatDuration(rw_total / kQueriesPerPoint) +
                        " (sampled)",
                    FormatDuration(eipd_total / kQueriesPerPoint)});
  }

  std::printf(
      "\nPaper Table VI: RW 3.0s/6.1s/13.5s/28s vs EIPD "
      "2.6s/2.8s/2.9s/3.0s.\nShape: RW linear in ||A||, EIPD flat. RW "
      "column measured on %zu sampled\nanswers per query and scaled "
      "linearly (its cost is a sum over answers).\n",
      kRwSampleAnswers);
  return 0;
}

}  // namespace
}  // namespace kgov

int main() { return kgov::Run(); }
