// Synthetic vote workloads (paper SVII-A).
//
// The paper generates NQ queries and NA answers randomly linked to an
// Nnodes-node subgraph of a real graph, ranks top-k answers per query, and
// fabricates a positive or negative vote per query; negative votes pick a
// best answer whose average position is NaveN. This module reproduces that
// construction on any base graph.

#ifndef KGOV_VOTES_VOTE_GENERATOR_H_
#define KGOV_VOTES_VOTE_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"
#include "ppr/eipd_engine.h"
#include "ppr/symbolic_eipd.h"
#include "votes/vote.h"

namespace kgov::votes {

struct SyntheticVoteParams {
  /// NQ: number of queries (= votes).
  size_t num_queries = 100;
  /// NA: number of answer nodes.
  size_t num_answers = 2379;
  /// Nnodes: size of the subgraph queries/answers link into.
  size_t subgraph_nodes = 10000;
  /// Ndegree: target average out-degree of the subgraph (paper default 4).
  /// When the selected region is sparser, random entity-entity edges are
  /// added within it (then re-normalized) until the target is met;
  /// 0 keeps the host graph's structure untouched.
  double subgraph_target_degree = 4.0;
  /// Entity links per query node.
  size_t links_per_query = 3;
  /// Incoming entity links per answer node.
  size_t links_per_answer = 3;
  /// k: length of the returned answer list.
  size_t top_k = 20;
  /// NaveN: mean rank of the voted best answer in negative votes.
  double avg_negative_rank = 10.0;
  /// Fraction of votes that are negative (rest confirm the top answer).
  double negative_fraction = 0.5;
  /// Similarity evaluation settings used to produce the ranked lists.
  ppr::EipdOptions eipd;
};

/// A self-contained experiment input: the augmented graph (base entities +
/// appended answer nodes), the answer ids, and the votes.
struct SyntheticWorkload {
  graph::WeightedDigraph graph;
  /// Nodes with id < num_entity_nodes are entities; the rest are answers.
  size_t num_entity_nodes = 0;
  std::vector<graph::NodeId> answers;
  std::vector<Vote> votes;

  /// Predicate marking entity->entity edges as optimizable and
  /// query/answer link edges as fixed. Holds no graph pointer.
  ppr::SymbolicEipd::VariablePredicate EntityEdgePredicate() const;
};

/// Builds a workload over a copy of `base`. Fails when `base` is too small
/// for the requested parameters.
Result<SyntheticWorkload> GenerateSyntheticWorkload(
    const graph::WeightedDigraph& base, const SyntheticVoteParams& params,
    Rng& rng);

}  // namespace kgov::votes

#endif  // KGOV_VOTES_VOTE_GENERATOR_H_
