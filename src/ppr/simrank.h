// SimRank (Jeh & Widom, KDD 2002): the "similar if referenced by similar
// objects" similarity the paper contrasts with random-walk measures in its
// related work (SII). Provided as an additional comparator for the
// similarity-measurement layer; the Q&A pipeline itself uses the extended
// inverse P-distance.
//
//   s(a, a) = 1
//   s(a, b) = C / (|I(a)||I(b)|) * sum_{i in I(a)} sum_{j in I(b)} s(i, j)
//
// where I(v) is v's in-neighbor set and C in (0, 1) the decay factor.
// Computed by the standard fixed-point iteration over all pairs - O(K n^2
// d^2) - so intended for the small/medium graphs where SimRank is
// meaningful, not the KONECT-scale profiles.

#ifndef KGOV_PPR_SIMRANK_H_
#define KGOV_PPR_SIMRANK_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/graph_view.h"

namespace kgov::ppr {

struct SimRankOptions {
  /// Decay factor C (0, 1); 0.8 in the original paper.
  double decay = 0.8;
  int max_iterations = 10;
  /// Early stop when the max entry change falls below this.
  double tolerance = 1e-6;
  /// Safety cap: graphs larger than this are rejected (the all-pairs
  /// matrix is n^2 doubles).
  size_t max_nodes = 5000;

  /// Checks every field range; returns InvalidArgument naming the first
  /// offending field. ComputeSimRank fails fast with the result.
  Status Validate() const;
};

/// Dense symmetric SimRank matrix. scores[a][b] in [0, 1], diagonal 1.
class SimRankResult {
 public:
  SimRankResult(size_t n, int iterations, bool converged)
      : n_(n),
        iterations_(iterations),
        converged_(converged),
        scores_(n * n, 0.0) {}

  double Score(graph::NodeId a, graph::NodeId b) const {
    return scores_[a * n_ + b];
  }
  void SetScore(graph::NodeId a, graph::NodeId b, double value) {
    scores_[a * n_ + b] = value;
  }
  size_t NumNodes() const { return n_; }
  int iterations() const { return iterations_; }
  bool converged() const { return converged_; }

  /// The k most similar nodes to `node` (excluding itself), sorted by
  /// descending score then ascending id.
  std::vector<std::pair<graph::NodeId, double>> MostSimilar(
      graph::NodeId node, size_t k) const;

 private:
  size_t n_;
  int iterations_;
  bool converged_;
  std::vector<double> scores_;
};

/// Runs the SimRank fixed point on `view` (edge weights are ignored;
/// SimRank is a structural measure).
Result<SimRankResult> ComputeSimRank(graph::GraphView view,
                                     const SimRankOptions& options = {});

/// Compatibility overload: snapshots `graph` and runs on the view.
Result<SimRankResult> ComputeSimRank(const graph::WeightedDigraph& graph,
                                     const SimRankOptions& options = {});

}  // namespace kgov::ppr

#endif  // KGOV_PPR_SIMRANK_H_
