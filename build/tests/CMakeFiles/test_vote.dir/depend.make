# Empty dependencies file for test_vote.
# This may be replaced when dependencies are built.
