#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/online_optimizer.h"
#include "ppr/query_seed.h"

namespace kgov::serve {
namespace {

using core::OnlineKgOptimizer;
using core::OnlineOptimizerOptions;
using graph::WeightedDigraph;

WeightedDigraph MakeFixture() {
  WeightedDigraph g(5);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.4).ok());
  EXPECT_TRUE(g.AddEdge(1, 3, 1.0).ok());
  EXPECT_TRUE(g.AddEdge(2, 4, 1.0).ok());
  return g;
}

votes::Vote MakeVote(graph::NodeId best, uint32_t id) {
  votes::Vote vote;
  vote.id = id;
  vote.query.links.emplace_back(0, 1.0);
  vote.answer_list = {3, 4};
  vote.best_answer = best;
  return vote;
}

OnlineOptimizerOptions SmallOnlineOptions() {
  OnlineOptimizerOptions options;
  options.batch_size = 100;  // flush explicitly
  options.optimizer.encoder.symbolic.eipd.max_length = 4;
  options.optimizer.apply_judgment_filter = false;
  options.strategy = core::FlushStrategy::kMultiVote;
  return options;
}

QueryEngineOptions SmallEngineOptions() {
  QueryEngineOptions options;
  options.eipd.max_length = 4;
  options.top_k = 2;
  options.num_threads = 2;
  return options;
}

const std::vector<graph::NodeId>& Candidates() {
  static const std::vector<graph::NodeId> c = {3, 4};
  return c;
}

/// Deterministic query stream: seeds over source nodes {0, 1, 2} with
/// pseudo-random (but seeded, hence replayable) link weights.
std::vector<ppr::QuerySeed> SeededStream(size_t count, uint64_t rng_seed) {
  std::mt19937_64 rng(rng_seed);
  std::uniform_real_distribution<double> weight(0.1, 1.0);
  std::vector<ppr::QuerySeed> seeds;
  seeds.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ppr::QuerySeed seed;
    const graph::NodeId first = static_cast<graph::NodeId>(rng() % 3);
    seed.links.emplace_back(first, weight(rng));
    if (rng() % 2 == 0) {
      seed.links.emplace_back((first + 1) % 3, weight(rng));
    }
    seed.Normalize();
    seeds.push_back(std::move(seed));
  }
  return seeds;
}

bool BitwiseEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Bitwise comparison of two rankings (node ids and raw score bits).
void ExpectIdenticalAnswers(const std::vector<ppr::ScoredAnswer>& a,
                            const std::vector<ppr::ScoredAnswer>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node) << "rank " << i;
    EXPECT_TRUE(BitwiseEqual(a[i].score, b[i].score))
        << "rank " << i << ": " << a[i].score << " vs " << b[i].score;
  }
}

TEST(QueryEngineTest, CreateFailsFastNamingTheField) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());

  QueryEngineOptions bad = SmallEngineOptions();
  bad.top_k = 0;
  auto engine_or = QueryEngine::Create(&online, &Candidates(), bad);
  ASSERT_FALSE(engine_or.ok());
  EXPECT_EQ(engine_or.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(engine_or.status().message().find("top_k"), std::string::npos)
      << engine_or.status().message();

  auto null_source = QueryEngine::Create(nullptr, &Candidates(),
                                         SmallEngineOptions());
  EXPECT_FALSE(null_source.ok());

  auto null_candidates =
      QueryEngine::Create(&online, nullptr, SmallEngineOptions());
  EXPECT_FALSE(null_candidates.ok());
}

TEST(QueryEngineTest, RepeatSubmitIsServedFromCacheBitwiseIdentical) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());
  auto engine_or =
      QueryEngine::Create(&online, &Candidates(), SmallEngineOptions());
  ASSERT_TRUE(engine_or.ok()) << engine_or.status();
  QueryEngine& engine = **engine_or;

  ppr::QuerySeed seed = ppr::QuerySeed::UniformOver({0});
  StatusOr<RankedAnswers> first = engine.Submit(seed);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->from_cache);
  EXPECT_EQ(first->epoch, 0u);
  ASSERT_EQ(first->answers.size(), 2u);

  StatusOr<RankedAnswers> second = engine.Submit(seed);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->from_cache);
  ExpectIdenticalAnswers(first->answers, second->answers);

  ShardedResultCache::Stats stats = engine.CacheStats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.misses, 1u);
}

TEST(QueryEngineTest, InvalidSeedReturnsErrorNotCrash) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());
  auto engine_or =
      QueryEngine::Create(&online, &Candidates(), SmallEngineOptions());
  ASSERT_TRUE(engine_or.ok()) << engine_or.status();

  ppr::QuerySeed out_of_range;
  out_of_range.links.emplace_back(999, 1.0);
  StatusOr<RankedAnswers> served = (*engine_or)->Submit(out_of_range);
  EXPECT_FALSE(served.ok());
  EXPECT_EQ(served.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, CacheOnAndOffIdenticalAcrossEpochSwaps) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());

  QueryEngineOptions cached = SmallEngineOptions();
  QueryEngineOptions uncached = SmallEngineOptions();
  uncached.enable_cache = false;

  auto cached_or = QueryEngine::Create(&online, &Candidates(), cached);
  auto uncached_or = QueryEngine::Create(&online, &Candidates(), uncached);
  ASSERT_TRUE(cached_or.ok()) << cached_or.status();
  ASSERT_TRUE(uncached_or.ok()) << uncached_or.status();
  QueryEngine& with_cache = **cached_or;
  QueryEngine& without_cache = **uncached_or;

  const std::vector<ppr::QuerySeed> stream = SeededStream(24, 0xC0FFEE);

  // Serve the stream twice on the cached engine (second pass hits), once
  // on the uncached engine; every ranking must be bitwise identical.
  auto serve_and_compare = [&](uint64_t expect_epoch) {
    std::vector<StatusOr<RankedAnswers>> fresh =
        without_cache.SubmitBatch(stream);
    std::vector<StatusOr<RankedAnswers>> pass1 =
        with_cache.SubmitBatch(stream);
    std::vector<StatusOr<RankedAnswers>> pass2 =
        with_cache.SubmitBatch(stream);
    ASSERT_EQ(fresh.size(), stream.size());
    for (size_t i = 0; i < stream.size(); ++i) {
      ASSERT_TRUE(fresh[i].ok()) << fresh[i].status();
      ASSERT_TRUE(pass1[i].ok()) << pass1[i].status();
      ASSERT_TRUE(pass2[i].ok()) << pass2[i].status();
      EXPECT_EQ(fresh[i]->epoch, expect_epoch);
      EXPECT_EQ(pass1[i]->epoch, expect_epoch);
      EXPECT_EQ(pass2[i]->epoch, expect_epoch);
      EXPECT_FALSE(fresh[i]->from_cache);
      // The replay is served from the cache (duplicate seeds may make
      // some pass1 entries hits too, which is fine).
      EXPECT_TRUE(pass2[i]->from_cache);
      ExpectIdenticalAnswers(fresh[i]->answers, pass1[i]->answers);
      ExpectIdenticalAnswers(fresh[i]->answers, pass2[i]->answers);
    }
  };

  serve_and_compare(/*expect_epoch=*/0);

  // Epoch swap: fold a vote in, then re-serve the same stream. Both
  // engines must re-pin epoch 1 and agree again (the cached engine must
  // not leak epoch-0 rankings).
  ASSERT_TRUE(online.AddVote(MakeVote(4, 0)).ok());
  ASSERT_TRUE(online.Flush().ok());
  serve_and_compare(/*expect_epoch=*/1);

  ASSERT_TRUE(online.AddVote(MakeVote(3, 1)).ok());
  ASSERT_TRUE(online.Flush().ok());
  serve_and_compare(/*expect_epoch=*/2);

  EXPECT_EQ(with_cache.PinnedEpochNumber(), 2u);
  EXPECT_EQ(without_cache.PinnedEpochNumber(), 2u);
}

TEST(QueryEngineTest, FaultedFlushLeavesServingOnOldEpoch) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());
  auto engine_or =
      QueryEngine::Create(&online, &Candidates(), SmallEngineOptions());
  ASSERT_TRUE(engine_or.ok()) << engine_or.status();
  QueryEngine& engine = **engine_or;

  ppr::QuerySeed seed = ppr::QuerySeed::UniformOver({0});
  StatusOr<RankedAnswers> before = engine.Submit(seed);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(before->epoch, 0u);

  // A corrupted optimization result must roll back: the engine keeps
  // serving the pinned epoch-0 rankings, bit for bit.
  ASSERT_TRUE(online.AddVote(MakeVote(4, 0)).ok());
  {
    ScopedFault fault(FaultSite::kGraphCorruption,
                      {.probability = 1.0, .max_fires = 1});
    Result<core::FlushReport> r = online.Flush();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  }
  EXPECT_EQ(online.RollbackCount(), 1u);
  EXPECT_EQ(online.CurrentEpochNumber(), 0u);

  StatusOr<RankedAnswers> during = engine.Submit(seed);
  ASSERT_TRUE(during.ok()) << during.status();
  EXPECT_EQ(during->epoch, 0u);
  EXPECT_EQ(engine.PinnedEpochNumber(), 0u);
  ExpectIdenticalAnswers(before->answers, during->answers);

  // With the fault gone the retry publishes epoch 1 and the engine
  // re-pins on the next query.
  ASSERT_TRUE(online.Flush().ok());
  StatusOr<RankedAnswers> after = engine.Submit(seed);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->epoch, 1u);
  EXPECT_EQ(engine.PinnedEpochNumber(), 1u);
}

TEST(QueryEngineTest, ConcurrentFlushAndServeStress) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());
  auto engine_or =
      QueryEngine::Create(&online, &Candidates(), SmallEngineOptions());
  ASSERT_TRUE(engine_or.ok()) << engine_or.status();
  QueryEngine& engine = **engine_or;

  constexpr int kFlushes = 20;
  std::atomic<bool> stop{false};
  std::atomic<int> serve_errors{0};
  std::atomic<int> epoch_regressions{0};

  // Client threads hammer Submit while the optimizer flushes. Served
  // epochs must never go backwards from any single client's view.
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&, t]() {
      const std::vector<ppr::QuerySeed> stream =
          SeededStream(8, 0xBEEF + static_cast<uint64_t>(t));
      uint64_t last_epoch = 0;
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        StatusOr<RankedAnswers> served =
            engine.Submit(stream[i++ % stream.size()]);
        if (!served.ok()) {
          serve_errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (served->epoch < last_epoch) {
          epoch_regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last_epoch = served->epoch;
      }
    });
  }

  for (uint32_t i = 0; i < kFlushes; ++i) {
    ASSERT_TRUE(online.AddVote(MakeVote(i % 2 == 0 ? 4 : 3, i)).ok());
    ASSERT_TRUE(online.Flush().ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(serve_errors.load(), 0);
  EXPECT_EQ(epoch_regressions.load(), 0);
  EXPECT_EQ(online.CurrentEpochNumber(), static_cast<uint64_t>(kFlushes));

  // The next query re-pins the final epoch and serves from it.
  StatusOr<RankedAnswers> final_result =
      engine.Submit(ppr::QuerySeed::UniformOver({0}));
  ASSERT_TRUE(final_result.ok()) << final_result.status();
  EXPECT_EQ(final_result->epoch, static_cast<uint64_t>(kFlushes));
  EXPECT_EQ(engine.PinnedEpochNumber(), static_cast<uint64_t>(kFlushes));
}

}  // namespace
}  // namespace kgov::serve
