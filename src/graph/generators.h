// Synthetic graph generators.
//
// The paper's efficiency experiments (SVII-D) run on three KONECT graphs
// (Twitter, Digg, Gnutella). We cannot ship those datasets, so seeded
// generators reproduce each graph's |V|, |E| and average degree; an
// edge-list loader (graph_io.h) accepts the real files when available.
// Edge weights are initialized as random conditional probabilities
// (uniform, then normalized per source node), matching the paper's
// construction where weights are conditional co-occurrence probabilities.

#ifndef KGOV_GRAPH_GENERATORS_H_
#define KGOV_GRAPH_GENERATORS_H_

#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"

namespace kgov::graph {

/// How edge weights are assigned by the generators.
enum class WeightInit {
  /// Uniform(0,1] then per-node normalization to sum 1 (default).
  kNormalizedRandom,
  /// Every out-edge of a node gets 1/out-degree.
  kUniformStochastic,
};

/// G(n, m): n nodes, m distinct directed edges chosen uniformly at random
/// (no self-loops). Fails when m exceeds n*(n-1).
Result<WeightedDigraph> ErdosRenyi(size_t num_nodes, size_t num_edges,
                                   Rng& rng,
                                   WeightInit init = WeightInit::kNormalizedRandom);

/// Barabasi-Albert preferential attachment: each new node attaches
/// `edges_per_node` out-edges to existing nodes with probability
/// proportional to (in-degree + 1). Produces a heavy-tailed in-degree
/// distribution like real social graphs.
Result<WeightedDigraph> BarabasiAlbert(size_t num_nodes,
                                       size_t edges_per_node, Rng& rng,
                                       WeightInit init = WeightInit::kNormalizedRandom);

/// Hybrid generator targeting an exact edge count: a preferential-
/// attachment backbone plus uniform random extra edges until |E| =
/// num_edges. This is what the KONECT profiles use. The uniform top-up is
/// rejection-sampled, so edge targets above half the n*(n-1) possible
/// edges are rejected with kInvalidArgument (naming num_edges) instead of
/// spinning toward saturation.
Result<WeightedDigraph> ScaleFreeWithTargetEdges(size_t num_nodes,
                                                 size_t num_edges, Rng& rng,
                                                 WeightInit init = WeightInit::kNormalizedRandom);

/// Streaming scale-free generator for large graphs (10^5-10^7 nodes):
/// preferential attachment via a bounded endpoint pool, O(V + E) memory,
/// no global dedup table and no O(V^2) intermediates (duplicate edges are
/// rejected by scanning the source's own O(avg_out_degree) adjacency
/// row). Every node gets up to `avg_out_degree` out-edges; heavy-tailed
/// in-degrees. Deterministic for a given rng state.
Result<WeightedDigraph> StreamingScaleFree(size_t num_nodes,
                                           size_t avg_out_degree, Rng& rng,
                                           WeightInit init = WeightInit::kNormalizedRandom);

/// Named profiles matching the datasets in the paper's Table II.
struct GraphProfile {
  std::string name;
  size_t num_nodes;
  size_t num_edges;
};

/// Twitter follow graph profile: 23,370 nodes, 33,101 edges.
GraphProfile TwitterProfile();
/// Digg reply graph profile: 30,398 nodes, 87,627 edges.
GraphProfile DiggProfile();
/// Gnutella host graph profile: 62,586 nodes, 147,892 edges.
GraphProfile GnutellaProfile();
/// Taobao-scale knowledge-graph profile: 1,663 nodes, 17,591 edges.
GraphProfile TaobaoProfile();

/// Generates a synthetic stand-in for `profile` (ScaleFreeWithTargetEdges).
Result<WeightedDigraph> GenerateFromProfile(const GraphProfile& profile,
                                            Rng& rng);

/// Assigns weights per `init` to an already-built topology.
void InitializeWeights(WeightedDigraph* graph, WeightInit init, Rng& rng);

}  // namespace kgov::graph

#endif  // KGOV_GRAPH_GENERATORS_H_
