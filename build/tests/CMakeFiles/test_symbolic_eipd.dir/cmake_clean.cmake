file(REMOVE_RECURSE
  "CMakeFiles/test_symbolic_eipd.dir/test_symbolic_eipd.cc.o"
  "CMakeFiles/test_symbolic_eipd.dir/test_symbolic_eipd.cc.o.d"
  "test_symbolic_eipd"
  "test_symbolic_eipd.pdb"
  "test_symbolic_eipd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symbolic_eipd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
