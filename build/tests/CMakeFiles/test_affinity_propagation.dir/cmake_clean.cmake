file(REMOVE_RECURSE
  "CMakeFiles/test_affinity_propagation.dir/test_affinity_propagation.cc.o"
  "CMakeFiles/test_affinity_propagation.dir/test_affinity_propagation.cc.o.d"
  "test_affinity_propagation"
  "test_affinity_propagation.pdb"
  "test_affinity_propagation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_affinity_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
