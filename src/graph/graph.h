// Weighted directed graph: the knowledge-graph substrate (paper SIII-A).
//
// Nodes are entities (plus, in the augmented graph used for Q&A, answer
// nodes); a directed edge (vi, vj) carries the weight w(vi, vj), the
// conditional-probability-style semantic relevance of vj given vi. Queries
// are *not* materialized as nodes: they are represented as seed
// distributions over entity nodes (see kgov::ppr::QuerySeed), which keeps
// the graph immutable across concurrent queries.

#ifndef KGOV_GRAPH_GRAPH_H_
#define KGOV_GRAPH_GRAPH_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace kgov::graph {

using NodeId = uint32_t;
using EdgeId = uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// A directed weighted edge.
struct Edge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double weight = 0.0;
};

/// Entry in a node's out-adjacency list.
struct OutEdge {
  NodeId to = kInvalidNode;
  EdgeId edge = kInvalidEdge;
};

/// Mutable weighted digraph with stable node and edge ids. Parallel edges
/// are rejected; self-loops are allowed but unusual in knowledge graphs.
///
/// Weight mutation (SetWeight) is the core operation of the optimizer; it
/// is O(1) and does not invalidate adjacency.
class WeightedDigraph {
 public:
  WeightedDigraph() = default;

  /// Pre-creates `n` nodes (ids 0..n-1).
  explicit WeightedDigraph(size_t n) : out_edges_(n) {}

  WeightedDigraph(const WeightedDigraph&) = default;
  WeightedDigraph& operator=(const WeightedDigraph&) = default;
  WeightedDigraph(WeightedDigraph&&) noexcept = default;
  WeightedDigraph& operator=(WeightedDigraph&&) noexcept = default;

  /// Adds an isolated node and returns its id.
  NodeId AddNode();

  /// Adds `count` nodes; returns the id of the first.
  NodeId AddNodes(size_t count);

  /// Pre-allocates for `num_edges` edges so bulk construction (the
  /// streaming generators, snapshot loads) does not pay vector regrowth.
  void ReserveEdges(size_t num_edges) { edges_.reserve(num_edges); }

  size_t NumNodes() const { return out_edges_.size(); }
  size_t NumEdges() const { return edges_.size(); }
  bool IsValidNode(NodeId node) const { return node < out_edges_.size(); }

  /// Adds edge (from, to) with `weight`. Fails on invalid endpoints,
  /// negative weight, or an existing (from, to) edge.
  Result<EdgeId> AddEdge(NodeId from, NodeId to, double weight);

  /// Id of edge (from, to), if present. O(out-degree(from)).
  std::optional<EdgeId> FindEdge(NodeId from, NodeId to) const;

  const Edge& edge(EdgeId id) const { return edges_[id]; }
  double Weight(EdgeId id) const { return edges_[id].weight; }

  /// Overwrites the weight of `id`. Negative weights are clamped to 0.
  void SetWeight(EdgeId id, double weight);

  const std::vector<OutEdge>& OutEdges(NodeId node) const {
    return out_edges_[node];
  }
  size_t OutDegree(NodeId node) const { return out_edges_[node].size(); }

  /// Sum of outgoing weights of `node`.
  double OutWeightSum(NodeId node) const;

  /// Scales the outgoing weights of `node` so they sum to 1 (no-op when the
  /// node has no outgoing weight).
  void NormalizeOutWeights(NodeId node);

  /// Normalizes every node (paper Alg. 1 NormalizeEdges).
  void NormalizeAllOutWeights();

  /// True when every node's out-weights sum to <= 1 + tol (the
  /// sub-stochasticity required for the random-walk series to converge).
  bool IsSubStochastic(double tol = 1e-9) const;

  /// Average out-degree |E| / |V| (0 for the empty graph).
  double AverageDegree() const;

  /// All edges, indexed by EdgeId.
  const std::vector<Edge>& edges() const { return edges_; }

  /// Optional human-readable node labels (entity names). Unset labels
  /// return "".
  void SetNodeLabel(NodeId node, std::string label);
  const std::string& NodeLabel(NodeId node) const;

 private:
  std::vector<std::vector<OutEdge>> out_edges_;
  std::vector<Edge> edges_;
  std::vector<std::string> labels_;  // lazily sized; may be shorter than V
};

}  // namespace kgov::graph

#endif  // KGOV_GRAPH_GRAPH_H_
