#include "qa/user_sim.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace kgov::qa {

KnowledgeGraph CorruptKnowledgeGraph(const KnowledgeGraph& truth,
                                     const UserSimParams& params, Rng& rng) {
  KnowledgeGraph deployed = truth;
  graph::WeightedDigraph& g = deployed.graph;
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    const graph::Edge& edge = g.edge(e);
    bool entity_edge = edge.from < deployed.num_entities &&
                       edge.to < deployed.num_entities;
    if (!entity_edge) continue;
    if (rng.Bernoulli(params.edge_dropout)) {
      g.SetWeight(e, 1e-4);
      continue;
    }
    double factor = std::exp(params.weight_noise * rng.NextGaussian());
    g.SetWeight(e, edge.weight * factor);
  }
  g.NormalizeAllOutWeights();
  return deployed;
}

namespace {

// Internal vote construction with explicit node translation.
votes::Vote MakeVote(uint32_t vote_id, const Question& question,
                     const KnowledgeGraph& deployed,
                     const std::vector<RankedDocument>& shown, int best_doc) {
  votes::Vote vote;
  vote.id = vote_id;
  vote.query = LinkQuestion(question, deployed.num_entities);
  vote.answer_list.reserve(shown.size());
  for (const RankedDocument& rd : shown) {
    vote.answer_list.push_back(deployed.answer_nodes[rd.document]);
  }
  vote.best_answer = deployed.answer_nodes[best_doc];
  return vote;
}

}  // namespace

Result<SimulatedEnvironment> BuildEnvironment(
    const CorpusParams& corpus_params, const UserSimParams& params,
    Rng& rng) {
  SimulatedEnvironment env;
  KGOV_ASSIGN_OR_RETURN(env.corpus, GenerateCorpus(corpus_params, rng));
  KGOV_ASSIGN_OR_RETURN(env.truth, BuildKnowledgeGraph(env.corpus));
  env.deployed = CorruptKnowledgeGraph(env.truth, params, rng);

  env.train_questions =
      GenerateQuestions(env.corpus, params.num_votes, corpus_params, rng);
  env.test_questions = GenerateQuestions(env.corpus,
                                         params.num_test_questions,
                                         corpus_params, rng);

  QaSystem deployed_system(&env.deployed.graph, &env.deployed.answer_nodes,
                           env.deployed.num_entities, params.qa);
  QaSystem truth_system(&env.truth.graph, &env.truth.answer_nodes,
                        env.truth.num_entities, params.qa);

  uint32_t vote_id = 0;
  for (const Question& question : env.train_questions) {
    StatusOr<std::vector<RankedDocument>> shown_or =
        deployed_system.Answer(question);
    if (!shown_or.ok()) continue;  // unservable question: no vote
    std::vector<RankedDocument> shown = std::move(shown_or).value();
    while (!shown.empty() && shown.back().score <= 0.0) shown.pop_back();
    if (shown.size() < 2) continue;

    int best_doc = -1;
    if (rng.Bernoulli(params.vote_error_rate)) {
      best_doc = shown[rng.NextIndex(shown.size())].document;
    } else {
      for (const RankedDocument& rd : shown) {
        if (rd.document == question.best_document) {
          best_doc = rd.document;
          break;
        }
      }
      if (best_doc < 0) {
        StatusOr<std::vector<RankedDocument>> truth_or =
            truth_system.Answer(question);
        std::vector<RankedDocument> truth_view =
            truth_or.ok() ? std::move(truth_or).value()
                          : std::vector<RankedDocument>{};
        for (const RankedDocument& rd : truth_view) {
          bool is_shown =
              std::any_of(shown.begin(), shown.end(),
                          [&](const RankedDocument& s) {
                            return s.document == rd.document;
                          });
          if (is_shown) {
            best_doc = rd.document;
            break;
          }
        }
      }
      if (best_doc < 0) best_doc = shown.front().document;
    }
    env.votes.push_back(
        MakeVote(vote_id++, question, env.deployed, shown, best_doc));
  }

  if (env.votes.empty()) {
    return Status::Internal("simulation produced no usable votes");
  }
  return env;
}

}  // namespace kgov::qa
