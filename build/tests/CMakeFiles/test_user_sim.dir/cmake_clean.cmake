file(REMOVE_RECURSE
  "CMakeFiles/test_user_sim.dir/test_user_sim.cc.o"
  "CMakeFiles/test_user_sim.dir/test_user_sim.cc.o.d"
  "test_user_sim"
  "test_user_sim.pdb"
  "test_user_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_user_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
