// Search engine with click feedback (the paper's Example 2).
//
// A web-search knowledge graph ranks pages for queries; user clicks on
// lower-ranked results are implicit votes. This example streams clicks in
// small batches and applies the distributed split-and-merge optimizer
// after each batch, showing the click-through position improving over
// time - the online-learning usage pattern the paper's framework targets.
//
// Run: ./build/examples/search_click_feedback

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/kg_optimizer.h"
#include "graph/csr.h"
#include "graph/source.h"
#include "ppr/eipd_engine.h"
#include "votes/vote_generator.h"

using namespace kgov;

int main() {
  Rng rng(99);

  // Term graph (concept co-occurrence on the web) + pages as answers.
  graph::GeneratorSpec spec;
  spec.kind = graph::GeneratorKind::kScaleFree;
  spec.num_nodes = 2000;
  spec.num_edges = 9000;
  Result<graph::WeightedDigraph> base =
      graph::LoadGraph(graph::GraphSource::Generator(spec, 99));
  if (!base.ok()) {
    std::fprintf(stderr, "graph generation failed\n");
    return 1;
  }

  // Synthetic search traffic: 45 queries with clicks. A click on a result
  // below rank 1 is a negative vote; a click on the top result confirms.
  votes::SyntheticVoteParams params;
  params.num_queries = 45;
  params.num_answers = 300;     // indexed pages
  params.subgraph_nodes = 800;  // the topic neighbourhood searched
  params.top_k = 10;
  params.avg_negative_rank = 4.0;  // clicks concentrate near the top
  params.negative_fraction = 0.7;
  Result<votes::SyntheticWorkload> workload =
      votes::GenerateSyntheticWorkload(*base, params, rng);
  if (!workload.ok()) {
    std::fprintf(stderr, "traffic generation failed: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  core::OptimizerOptions options;
  options.encoder.symbolic.eipd.max_length = 5;
  options.encoder.symbolic.min_path_mass = 1e-8;
  options.encoder.is_variable = workload->EntityEdgePredicate();

  ppr::EipdOptions eipd = options.encoder.symbolic.eipd;
  ThreadPool pool(4);

  // Mean clicked-result position under a given graph (lower = better).
  auto mean_click_position = [&](const graph::WeightedDigraph& g) {
    graph::CsrSnapshot snapshot(g);
    ppr::EipdEngine evaluator(snapshot.View(), eipd);
    double total = 0.0;
    for (const votes::Vote& vote : workload->votes) {
      std::vector<ppr::ScoredAnswer> ranked =
          evaluator
              .Rank(vote.query, vote.answer_list, vote.answer_list.size())
              .value_or({});
      for (size_t i = 0; i < ranked.size(); ++i) {
        if (ranked[i].node == vote.best_answer) {
          total += static_cast<double>(i + 1);
          break;
        }
      }
    }
    return total / static_cast<double>(workload->votes.size());
  };

  graph::WeightedDigraph current = workload->graph;
  std::printf("Streaming click feedback in batches of 15:\n");
  std::printf("  batch 0 (no feedback): mean clicked position %.2f\n",
              mean_click_position(current));

  const size_t batch_size = 15;
  for (size_t start = 0; start < workload->votes.size();
       start += batch_size) {
    size_t end = std::min(start + batch_size, workload->votes.size());
    std::vector<votes::Vote> batch(workload->votes.begin() + start,
                                   workload->votes.begin() + end);
    core::KgOptimizer optimizer(&current, options);
    Result<core::OptimizeReport> report =
        optimizer.DistributedSplitMergeSolve(batch, &pool);
    if (!report.ok()) {
      std::fprintf(stderr, "batch failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    current = std::move(report->optimized);
    std::printf("  batch %zu (%zu clicks, %zu clusters): mean clicked "
                "position %.2f\n",
                start / batch_size + 1, batch.size(), report->num_clusters,
                mean_click_position(current));
  }

  std::printf(
      "\nThe clicked results drift toward the top as feedback accumulates -"
      "\nthe search engine adapts its knowledge graph without retraining.\n");
  return 0;
}
