#include "graph/graph_view.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "ppr/eipd_engine.h"

namespace kgov::graph {
namespace {

TEST(GraphViewTest, DefaultViewIsEmpty) {
  GraphView view;
  EXPECT_EQ(view.NumNodes(), 0u);
  EXPECT_EQ(view.NumEdges(), 0u);
  EXPECT_FALSE(view.IsValidNode(0));
  EXPECT_FALSE(view.HasEdgeIds());
  EXPECT_TRUE(view.IsSubStochastic());
}

TEST(GraphViewTest, ViewsAreCheapCopies) {
  WeightedDigraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  CsrSnapshot snap(g);
  GraphView a = snap.View();
  GraphView b = a;  // copies share the snapshot's arrays
  EXPECT_EQ(a.begin(0), b.begin(0));
  EXPECT_DOUBLE_EQ(b.begin(0)->weight, 0.5);
}

TEST(NodeSetIndexTest, MapsBothDirections) {
  Result<NodeSetIndex> index = NodeSetIndex::Make({4, 1, 7}, 10);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->size(), 3u);
  EXPECT_TRUE(index->Contains(4));
  EXPECT_TRUE(index->Contains(1));
  EXPECT_FALSE(index->Contains(0));
  EXPECT_FALSE(index->Contains(9));
  EXPECT_EQ(index->LocalOf(4), 0u);
  EXPECT_EQ(index->LocalOf(7), 2u);
  EXPECT_EQ(index->LocalOf(3), kInvalidNode);
  EXPECT_EQ(index->ToOriginal(1), 1u);
}

TEST(NodeSetIndexTest, RejectsDuplicatesAndOutOfRange) {
  EXPECT_FALSE(NodeSetIndex::Make({1, 2, 1}, 5).ok());
  EXPECT_FALSE(NodeSetIndex::Make({1, 5}, 5).ok());
}

TEST(InducedSubviewTest, KeepsOnlyInternalEdges) {
  WeightedDigraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.3).ok());  // leaves the set
  ASSERT_TRUE(g.AddEdge(1, 0, 0.4).ok());
  ASSERT_TRUE(g.AddEdge(3, 0, 0.5).ok());  // enters from outside
  CsrSnapshot snap(g);
  Result<InducedSubview> sub = InducedSubview::Make(snap.View(), {0, 1});
  ASSERT_TRUE(sub.ok());
  GraphView view = sub->view();
  EXPECT_EQ(view.NumNodes(), 2u);
  EXPECT_EQ(view.NumEdges(), 2u);
  ASSERT_EQ(view.OutDegree(0), 1u);
  EXPECT_EQ(view.begin(0)->to, sub->LocalOf(1));
  EXPECT_DOUBLE_EQ(view.begin(0)->weight, 0.2);
  ASSERT_EQ(view.OutDegree(1), 1u);
  EXPECT_EQ(view.begin(1)->to, sub->LocalOf(0));
  EXPECT_DOUBLE_EQ(view.begin(1)->weight, 0.4);
}

TEST(InducedSubviewTest, KeepsParentEdgeIds) {
  WeightedDigraph g(3);
  EdgeId e01 = *g.AddEdge(0, 1, 0.2);
  ASSERT_TRUE(g.AddEdge(1, 2, 0.3).ok());
  EdgeId e10 = *g.AddEdge(1, 0, 0.4);
  CsrSnapshot snap(g);
  Result<InducedSubview> sub = InducedSubview::Make(snap.View(), {0, 1});
  ASSERT_TRUE(sub.ok());
  GraphView view = sub->view();
  ASSERT_TRUE(view.HasEdgeIds());
  // The ids are the PARENT's EdgeIds, so overrides keyed against the
  // original graph apply to the sub-view unchanged.
  EXPECT_EQ(view.edge_ids(0)[0], e01);
  EXPECT_EQ(view.edge_ids(1)[0], e10);
}

TEST(InducedSubviewTest, AgreesWithCopyingExtraction) {
  // The zero-copy sub-view and the copying ExtractInducedSubgraph must
  // describe the same graph: identical EIPD scores on matching nodes.
  Rng rng(21);
  Result<WeightedDigraph> g = ErdosRenyi(40, 200, rng);
  ASSERT_TRUE(g.ok());
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < 40; v += 2) nodes.push_back(v);

  Result<InducedSubgraph> copied = ExtractInducedSubgraph(*g, nodes);
  ASSERT_TRUE(copied.ok());
  CsrSnapshot snap(*g);
  Result<InducedSubview> sub = InducedSubview::Make(snap.View(), nodes);
  ASSERT_TRUE(sub.ok());
  ASSERT_EQ(sub->NumNodes(), copied->graph.NumNodes());
  ASSERT_EQ(sub->view().NumEdges(), copied->graph.NumEdges());

  CsrSnapshot copied_snap(copied->graph);
  ppr::EipdEngine on_copy(copied_snap.View());
  ppr::EipdEngine on_view(sub->view());
  ppr::QuerySeed seed;
  seed.links.emplace_back(0, 0.6);
  seed.links.emplace_back(3, 0.4);
  std::vector<NodeId> answers;
  for (NodeId local = 0; local < sub->NumNodes(); ++local) {
    answers.push_back(local);
  }
  std::vector<double> a = on_copy.Scores(seed, answers).value();
  std::vector<double> b = on_view.Scores(seed, answers).value();
  for (size_t i = 0; i < answers.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-14);
  }
}

TEST(InducedSubviewTest, ParentKeyedOverridesApply) {
  WeightedDigraph g(3);
  EdgeId e01 = *g.AddEdge(0, 1, 0.5);
  ASSERT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  CsrSnapshot snap(g);
  Result<InducedSubview> sub =
      InducedSubview::Make(snap.View(), {0, 1, 2});
  ASSERT_TRUE(sub.ok());
  ppr::EipdEngine engine(sub->view());
  ppr::QuerySeed seed;
  seed.links.emplace_back(sub->LocalOf(0), 1.0);
  std::unordered_map<EdgeId, double> overrides{{e01, 0.0}};
  std::vector<double> scores =
      engine
          .ScoresWithOverrides(seed, {sub->LocalOf(1), sub->LocalOf(2)},
                               overrides)
          .value();
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_GT(scores[1], 0.0);
}

TEST(CollectOutNeighborhoodTest, BoundedBfs) {
  // Chain 0 -> 1 -> 2 -> 3 plus an unreachable node 4.
  WeightedDigraph g(5);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 1.0).ok());
  CsrSnapshot snap(g);
  std::vector<NodeId> ball =
      CollectOutNeighborhood(snap.View(), {0}, /*depth=*/2);
  std::sort(ball.begin(), ball.end());
  EXPECT_EQ(ball, (std::vector<NodeId>{0, 1, 2}));

  // Duplicate and out-of-range roots are tolerated.
  ball = CollectOutNeighborhood(snap.View(), {3, 3, 99}, /*depth=*/1);
  EXPECT_EQ(ball, (std::vector<NodeId>{3}));
}

}  // namespace
}  // namespace kgov::graph
