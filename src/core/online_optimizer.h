// OnlineKgOptimizer: the deployment loop around KgOptimizer.
//
// A live system interleaves serving and learning: votes stream in, and the
// graph should be re-optimized in batches while queries keep being served
// from a stable view. This class owns the evolving graph, buffers votes,
// flushes them through a configurable strategy when the batch is full (or
// on demand), and maintains a frozen CSR snapshot for the serving path -
// the pattern the paper's Examples 1-2 (recommendations, search clicks)
// imply but leave to the reader.
//
// Failure semantics (see docs/robustness.md):
//  * A failed flush PRESERVES the vote buffer - votes are never silently
//    dropped. Each vote carries an attempt count; votes that have failed
//    `max_vote_attempts` flushes move to a bounded dead-letter buffer.
//  * Votes quarantined by per-cluster failure isolation are re-queued for
//    the next flush under the same bounded-attempt policy.
//  * Before the serving snapshot is swapped, the optimized graph is
//    validated (finite weights, weights in bounds, out-weight
//    normalization, no edge drift). A violation rolls the flush back:
//    the serving graph and snapshot are left untouched and the batch is
//    re-queued.
//
// Serving is epoch-based: each successful flush publishes a new
// ServingEpoch (ref-counted CsrSnapshot + monotonically increasing epoch
// number). The writer builds the snapshot entirely outside the epoch lock
// and holds it only for the pointer swap, so readers never block on an
// optimize; a reader that pinned an epoch keeps serving from it until it
// drops its reference, regardless of how many flushes happen meanwhile.

#ifndef KGOV_CORE_ONLINE_OPTIMIZER_H_
#define KGOV_CORE_ONLINE_OPTIMIZER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/kg_optimizer.h"
#include "core/resilience.h"
#include "graph/csr.h"
#include "graph/graph_view.h"
#include "stream/epoch_delta.h"
#include "stream/partition.h"
#include "votes/vote_log.h"

namespace kgov::core {

/// One published serving epoch: a frozen snapshot plus its sequence
/// number. Copies share the snapshot (ref-counted), so readers pin an
/// epoch by value and serve from view() while flushes publish newer
/// epochs underneath.
struct ServingEpoch {
  std::shared_ptr<const graph::CsrSnapshot> snapshot;
  /// 0 for the initial graph; +1 per successful flush.
  uint64_t epoch = 0;
  /// What changed relative to the previous epoch (null for the initial or
  /// a restored epoch: treat as a full change). See stream::EpochDelta.
  std::shared_ptr<const stream::EpochDelta> delta;

  /// The epoch's read view; valid while `snapshot` is held.
  graph::GraphView view() const {
    return snapshot == nullptr ? graph::GraphView{} : snapshot->View();
  }
};

/// Which strategy flush batches go through.
enum class FlushStrategy {
  kMultiVote,
  kSplitMerge,
};

struct OnlineOptimizerOptions {
  OptimizerOptions optimizer;
  /// Votes buffered before an automatic flush.
  size_t batch_size = 25;
  FlushStrategy strategy = FlushStrategy::kSplitMerge;
  /// Flush attempts a vote may fail (batch error, rollback, or cluster
  /// quarantine) before it is moved to the dead-letter buffer.
  int max_vote_attempts = 3;
  /// Dead-letter capacity; the oldest entries are evicted beyond this.
  size_t dead_letter_capacity = 4096;
  /// Validate the optimized graph before swapping it in, rolling back on
  /// violation.
  bool validate_updates = true;
  /// Invariants checked by the pre-swap validator. The weight bounds are
  /// widened to cover the encoder's configured bounds automatically.
  GraphValidatorOptions validator;
  /// Target cluster count of the streaming partition (stream.md): the
  /// granularity of dirty tracking, scoped re-solves, and selective cache
  /// invalidation. Built once from the initial graph (topology is fixed).
  size_t partition_clusters = 64;
  /// Published epoch deltas retained for CollectChangedClusters (a serve
  /// engine that fell further behind gets a conservative full answer).
  size_t delta_history_capacity = 64;

  /// Checks this struct and the nested OptimizerOptions; returns
  /// InvalidArgument naming the first offending field. OnlineKgOptimizer
  /// captures the result at construction; AddVote/Flush fail fast with it.
  Status Validate() const;
};

/// State carried across a restart: what durability::Recover reassembles
/// from the newest snapshot plus the WAL tail. Constructing an
/// OnlineKgOptimizer with one resumes exactly where the crashed process
/// checkpointed: the first published epoch is `epoch` (not 0), the vote
/// buffer holds the un-flushed acknowledged votes, and the dead-letter
/// buffer is restored (trimmed to dead_letter_capacity, oldest first).
struct RestoredState {
  /// Epoch number to republish (readers resume at the pre-crash epoch).
  uint64_t epoch = 0;
  /// Acknowledged votes that had not been folded into the graph.
  std::vector<votes::Vote> pending;
  /// Dead-letter buffer contents, oldest first.
  std::vector<votes::Vote> dead_letters;
};

/// Result of one flush.
struct FlushReport {
  /// Votes applied to the graph by this flush (excludes quarantined).
  size_t votes_flushed = 0;
  /// Votes quarantined by cluster-failure isolation and re-queued.
  size_t votes_quarantined = 0;
  /// Votes moved to the dead-letter buffer by this flush.
  size_t votes_dead_lettered = 0;
  int constraints_total = 0;
  int constraints_satisfied = 0;
  double solve_seconds = 0.0;
  /// SGP solve attempts, counting retries.
  size_t solve_attempts = 0;
  /// Whether this flush published a new serving epoch. A successful
  /// scoped (micro-batch) flush whose bitwise graph diff is empty keeps
  /// the current epoch instead of forcing a pointless cache cycle.
  bool epoch_published = false;
  /// Partition clusters whose edge weights changed (sorted unique);
  /// empty when epoch_published is false.
  std::vector<uint32_t> changed_clusters;
};

/// Owns a knowledge graph that evolves under vote feedback. The write path
/// (AddVote/Flush) is single-threaded; serving()/snapshot() are safe to
/// call from concurrent reader threads and never block on an in-progress
/// optimize (the epoch lock guards only the pointer swap).
class OnlineKgOptimizer {
 public:
  /// Starts from a copy of `initial`.
  OnlineKgOptimizer(const graph::WeightedDigraph& initial,
                    OnlineOptimizerOptions options);

  /// Resumes from recovered state: `initial` is the recovered graph, and
  /// `restored` supplies the epoch to republish plus the surviving vote
  /// buffers (see durability::Recover).
  OnlineKgOptimizer(const graph::WeightedDigraph& initial,
                    OnlineOptimizerOptions options, RestoredState restored);

  /// Flushes any dead letters the attached vote log has not yet recorded
  /// (see PersistDeadLetters).
  ~OnlineKgOptimizer();

  /// The current (latest) graph.
  const graph::WeightedDigraph& graph() const { return graph_; }

  /// The current serving epoch; republished on every successful flush.
  /// Callers may hold the returned epoch across flushes (its snapshot
  /// stays valid and immutable), and a rolled-back flush never replaces
  /// it. Thread-safe.
  ServingEpoch serving() const KGOV_EXCLUDES(serving_mu_) {
    MutexLock lock(serving_mu_);
    return serving_;
  }

  /// Documented name for serving(): pins the current epoch by value.
  ServingEpoch CurrentEpoch() const { return serving(); }

  /// The latest published epoch number, without taking the epoch lock.
  /// The release store in PublishEpoch happens after serving_ is updated,
  /// so a reader that observes epoch N here is guaranteed to receive a
  /// snapshot at least as new as N from CurrentEpoch(). Intended as the
  /// serve path's cheap staleness probe (see serve::QueryEngine).
  uint64_t CurrentEpochNumber() const {
    return epoch_number_.load(std::memory_order_acquire);
  }

  /// Compatibility: the current epoch's frozen snapshot. Thread-safe.
  std::shared_ptr<const graph::CsrSnapshot> snapshot() const
      KGOV_EXCLUDES(serving_mu_) {
    MutexLock lock(serving_mu_);
    return serving_.snapshot;
  }

  /// Attaches the write-ahead vote log. Once set, AddVote appends each
  /// vote to the log BEFORE buffering it and rejects the vote if the
  /// append fails (acknowledged implies logged), and dead-lettered votes
  /// are recorded through AppendDeadLetter. `sink` must outlive this
  /// object (or be detached with nullptr first); pass nullptr to detach.
  /// Dead letters already buffered when a sink is attached are persisted
  /// on the next PersistDeadLetters() or destruction.
  void SetVoteLog(votes::VoteLogSink* sink) { vote_log_ = sink; }

  /// Writes every dead letter the attached log has not yet recorded
  /// through AppendDeadLetter, stopping at the first failure. Called from
  /// the destructor; call it earlier to bound loss from an abrupt exit.
  /// No-op without an attached sink.
  Status PersistDeadLetters();

  /// Buffers one vote; flushes automatically when the batch is full.
  /// Returns the flush report when a flush happened, an empty report
  /// otherwise (votes_flushed == 0). On a failed flush the error status is
  /// returned and the buffered votes are preserved for the next attempt
  /// (PendingVotes() stays non-zero until they succeed or dead-letter).
  /// With a vote log attached, a vote whose log append fails is rejected
  /// outright (not buffered) and the append error is returned.
  Result<FlushReport> AddVote(votes::Vote vote);

  /// Buffers one vote that has ALREADY been durably logged (the streaming
  /// ingest queue appends to the WAL before draining). Unlike AddVote this
  /// never writes the vote log and never auto-flushes: the caller controls
  /// the micro-batch cadence with FlushScoped/Flush.
  Status IngestLogged(votes::Vote vote);

  /// Forces a flush of the current buffer (no-op on an empty buffer).
  Result<FlushReport> Flush();

  /// Flushes the current buffer re-solving only `dirty_clusters` (sorted
  /// unique partition cluster ids; see partition()): edges whose source
  /// node lies outside the dirty set are held constant during encoding and
  /// solving. Publishes a new epoch only when the resulting graph differs
  /// bitwise from the current one; FlushReport.epoch_published /
  /// .changed_clusters say what happened. The changed set is always a
  /// subset of `dirty_clusters` (constants cannot move, and out-weight
  /// normalization is per source node).
  Result<FlushReport> FlushScoped(const std::vector<uint32_t>& dirty_clusters);

  /// The fixed streaming partition built from the initial graph (topology
  /// never changes; only weights do). Never null. Thread-safe.
  std::shared_ptr<const stream::GraphPartition> partition() const {
    return partition_;
  }

  /// The options this optimizer was constructed with.
  const OnlineOptimizerOptions& options() const { return options_; }

  /// Accumulates into `out` the clusters that changed across epochs
  /// (from_epoch, to_epoch] from the retained delta history. Returns true
  /// when the history covers the whole range with selective deltas; false
  /// (out left canonical but incomplete) when any record is missing or
  /// marked full - callers must then treat everything as changed.
  /// from_epoch == to_epoch trivially succeeds with no additions.
  /// Thread-safe.
  bool CollectChangedClusters(uint64_t from_epoch, uint64_t to_epoch,
                              std::vector<uint32_t>* out) const
      KGOV_EXCLUDES(serving_mu_);

  /// Dead-letter occupancy, readable from any thread (the ingest queue's
  /// shed probe). Tracks dead_letter_ with release/acquire ordering.
  size_t DeadLetterCount() const {
    return dead_letter_count_.load(std::memory_order_acquire);
  }

  /// True when the dead-letter buffer is at capacity: accepting further
  /// failing votes would evict abandoned ones. VoteIngestQueue uses this
  /// to shed instead (see stream.shed_votes).
  bool DeadLetterFull() const {
    return DeadLetterCount() >= options_.dead_letter_capacity;
  }

  /// Votes currently buffered (including re-queued failures).
  size_t PendingVotes() const { return buffer_.size(); }

  /// Copies of the buffered votes in flush order (attempt counters are
  /// internal). What a checkpoint must capture to resume after a crash.
  std::vector<votes::Vote> PendingVoteList() const;

  /// Total votes folded into the graph so far.
  size_t TotalVotesApplied() const { return total_applied_; }

  /// Votes abandoned after max_vote_attempts failed flushes, oldest first.
  const std::vector<votes::Vote>& DeadLetters() const { return dead_letter_; }

  /// Status of the most recent flush attempt (OK before any flush).
  const Status& LastFlushStatus() const { return last_flush_status_; }

  /// Flushes rolled back by the graph-update validator so far.
  size_t RollbackCount() const { return rollback_count_; }

 private:
  struct PendingVote {
    votes::Vote vote;
    int attempts = 0;
  };

  /// One retained publication record for CollectChangedClusters.
  struct DeltaRecord {
    uint64_t epoch = 0;
    std::shared_ptr<const stream::EpochDelta> delta;
  };

  /// Shared body of Flush (scope == nullptr: every edge variable, always
  /// publish on success) and FlushScoped (solve restricted to *scope,
  /// publish only on a bitwise graph change).
  Result<FlushReport> FlushImpl(const std::vector<uint32_t>* scope);

  /// Re-queues `failed` votes with one more attempt on their counters;
  /// votes out of attempts move to the dead-letter buffer. Returns how
  /// many were dead-lettered.
  size_t RequeueOrDeadLetter(std::vector<PendingVote> failed);

  /// Publishes `snapshot` as the next epoch (outside work done, swap only)
  /// and records `delta` (null = full change) in the delta history.
  void PublishEpoch(std::shared_ptr<const graph::CsrSnapshot> snapshot,
                    std::shared_ptr<const stream::EpochDelta> delta)
      KGOV_EXCLUDES(serving_mu_);

  OnlineOptimizerOptions options_;
  // options_.Validate() captured at construction; AddVote/Flush fail fast
  // with it when not OK (the initial epoch still publishes so readers can
  // serve the unoptimized graph).
  Status options_status_;
  graph::WeightedDigraph graph_;
  // Fixed node-to-cluster map shared with trackers and serve engines;
  // built once at construction (never null, immutable afterwards).
  std::shared_ptr<const stream::GraphPartition> partition_;
  mutable Mutex serving_mu_{KGOV_LOCK_RANK(kEpochPublish)};
  ServingEpoch serving_ KGOV_GUARDED_BY(serving_mu_);
  // Most recent publications, oldest first, capped at
  // options_.delta_history_capacity. Fuel for CollectChangedClusters.
  std::deque<DeltaRecord> delta_history_ KGOV_GUARDED_BY(serving_mu_);
  // Mirrors serving_.epoch for lock-free staleness checks. Stored with
  // release order while serving_mu_ is held (after serving_ is updated);
  // read with acquire in CurrentEpochNumber().
  std::atomic<uint64_t> epoch_number_{0};
  std::vector<PendingVote> buffer_;
  std::vector<votes::Vote> dead_letter_;
  // Mirrors dead_letter_.size() for lock-free reads from producer threads
  // (DeadLetterCount/DeadLetterFull). The write path updates it wherever
  // dead_letter_ changes.
  std::atomic<size_t> dead_letter_count_{0};
  // Parallel to dead_letter_: 1 if the entry has been written through the
  // vote log. Entries dead-lettered while a sink is attached persist
  // immediately; the rest (restored state, late-attached sink, append
  // failures) are retried by PersistDeadLetters()/the destructor.
  std::vector<uint8_t> dead_letter_persisted_;
  votes::VoteLogSink* vote_log_ = nullptr;
  Status last_flush_status_;
  size_t total_applied_ = 0;
  size_t rollback_count_ = 0;
};

}  // namespace kgov::core

#endif  // KGOV_CORE_ONLINE_OPTIMIZER_H_
