#include "ppr/eipd_engine.h"

#include <cmath>
#include <string>

#include "common/timer.h"
#include "telemetry/metrics.h"

namespace kgov::ppr {

Status EipdOptions::Validate() const {
  if (max_length < 1) {
    return Status::InvalidArgument(
        "EipdOptions.max_length must be >= 1, got " +
        std::to_string(max_length));
  }
  if (!(restart > 0.0 && restart < 1.0)) {
    return Status::InvalidArgument(
        "EipdOptions.restart must be in (0, 1), got " +
        std::to_string(restart));
  }
  return Status::OK();
}

PropagationWorkspace& ThreadLocalWorkspace() {
  static thread_local PropagationWorkspace workspace;
  return workspace;
}

MultiPropagationWorkspace& ThreadLocalMultiWorkspace() {
  static thread_local MultiPropagationWorkspace workspace;
  return workspace;
}

EipdEngine::EipdEngine(graph::GraphView view, EipdOptions options)
    : view_(view), options_(options) {
  Status valid = options_.Validate();
  KGOV_CHECK(valid.ok()) << valid.ToString();
}

Status EipdEngine::ValidateSeed(const QuerySeed& seed) const {
  for (size_t i = 0; i < seed.links.size(); ++i) {
    const auto& [node, weight] = seed.links[i];
    if (!view_.IsValidNode(node)) {
      return Status::InvalidArgument(
          "seed link " + std::to_string(i) + " names node " +
          std::to_string(node) + ", outside the view's " +
          std::to_string(view_.NumNodes()) + " nodes");
    }
    if (!std::isfinite(weight) || weight < 0.0) {
      return Status::InvalidArgument(
          "seed link " + std::to_string(i) + " (node " +
          std::to_string(node) + ") has non-finite or negative weight " +
          std::to_string(weight));
    }
  }
  return Status::OK();
}

const std::vector<double>& EipdEngine::PropagateInto(
    const QuerySeed& seed,
    const std::unordered_map<graph::EdgeId, double>* overrides,
    PropagationWorkspace* ws) const {
  // Serving-latency telemetry: one Timer (two steady-clock reads) and one
  // histogram Observe per propagation -- a fraction of a percent of a
  // single propagation pass on the bench graph.
  static telemetry::Histogram* const latency =
      telemetry::MetricRegistry::Global().GetHistogram(
          "serving.eipd.propagate.seconds");
  static telemetry::Counter* const queries =
      telemetry::MetricRegistry::Global().GetCounter(
          "serving.eipd.queries");
  Timer timer;
  if (overrides != nullptr) {
    // Overrides are keyed by EdgeId; without the edge-id table they would
    // be silently ignored, so fail loudly (an edgeless view has nothing to
    // override and is fine).
    KGOV_CHECK(view_.HasEdgeIds() || view_.NumEdges() == 0);
  }
  if (ws == nullptr) ws = &ThreadLocalWorkspace();
  internal::PropagatePhi(internal::ViewAdjacency{view_}, seed, options_,
                         overrides, ws);
  queries->Increment();
  latency->Observe(timer.ElapsedSeconds());
  return ws->phi;
}

StatusOr<std::vector<double>> EipdEngine::Propagate(
    const QuerySeed& seed, PropagationWorkspace* ws) const {
  KGOV_RETURN_IF_ERROR(ValidateSeed(seed));
  return PropagateInto(seed, nullptr, ws);
}

StatusOr<std::vector<double>> EipdEngine::PropagateWithOverrides(
    const QuerySeed& seed,
    const std::unordered_map<graph::EdgeId, double>& overrides,
    PropagationWorkspace* ws) const {
  KGOV_RETURN_IF_ERROR(ValidateSeed(seed));
  if (!view_.HasEdgeIds() && view_.NumEdges() > 0) {
    return Status::FailedPrecondition(
        "weight overrides require a view with an edge-id table");
  }
  return PropagateInto(seed, &overrides, ws);
}

StatusOr<std::vector<double>> EipdEngine::Scores(
    const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
    PropagationWorkspace* ws) const {
  KGOV_RETURN_IF_ERROR(ValidateSeed(seed));
  const std::vector<double>& phi = PropagateInto(seed, nullptr, ws);
  std::vector<double> out(answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    if (!view_.IsValidNode(answers[i])) {
      return Status::InvalidArgument(
          "answers[" + std::to_string(i) + "] = " +
          std::to_string(answers[i]) + " is outside the view's " +
          std::to_string(view_.NumNodes()) + " nodes");
    }
    out[i] = phi[answers[i]];
  }
  return out;
}

StatusOr<std::vector<double>> EipdEngine::ScoresWithOverrides(
    const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
    const std::unordered_map<graph::EdgeId, double>& overrides,
    PropagationWorkspace* ws) const {
  KGOV_RETURN_IF_ERROR(ValidateSeed(seed));
  if (!view_.HasEdgeIds() && view_.NumEdges() > 0) {
    return Status::FailedPrecondition(
        "weight overrides require a view with an edge-id table");
  }
  const std::vector<double>& phi = PropagateInto(seed, &overrides, ws);
  std::vector<double> out(answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    if (!view_.IsValidNode(answers[i])) {
      return Status::InvalidArgument(
          "answers[" + std::to_string(i) + "] = " +
          std::to_string(answers[i]) + " is outside the view's " +
          std::to_string(view_.NumNodes()) + " nodes");
    }
    out[i] = phi[answers[i]];
  }
  return out;
}

StatusOr<std::vector<ScoredAnswer>> EipdEngine::Rank(
    const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
    size_t k, PropagationWorkspace* ws) const {
  KGOV_RETURN_IF_ERROR(ValidateSeed(seed));
  return TopKByScore(PropagateInto(seed, nullptr, ws), candidates, k);
}

StatusOr<std::vector<ScoredAnswer>> EipdEngine::RankWithOverrides(
    const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
    size_t k, const std::unordered_map<graph::EdgeId, double>& overrides,
    PropagationWorkspace* ws) const {
  KGOV_RETURN_IF_ERROR(ValidateSeed(seed));
  if (!view_.HasEdgeIds() && view_.NumEdges() > 0) {
    return Status::FailedPrecondition(
        "weight overrides require a view with an edge-id table");
  }
  return TopKByScore(PropagateInto(seed, &overrides, ws), candidates, k);
}

StatusOr<std::vector<std::vector<ScoredAnswer>>> EipdEngine::RankMulti(
    const std::vector<QuerySeed>& seeds,
    const std::vector<graph::NodeId>& candidates, size_t k,
    MultiPropagationWorkspace* ws) const {
  std::vector<std::vector<ScoredAnswer>> results;
  if (seeds.empty()) return results;
  std::vector<const QuerySeed*> roots;
  roots.reserve(seeds.size());
  for (const QuerySeed& seed : seeds) {
    KGOV_RETURN_IF_ERROR(ValidateSeed(seed));
    roots.push_back(&seed);
  }

  // Telemetry mirrors the single-root path: each lane counts as one
  // propagation (a lane does the same arithmetic a solo query would), and
  // the pass itself is counted so dashboards can see the batching ratio.
  static telemetry::Histogram* const latency =
      telemetry::MetricRegistry::Global().GetHistogram(
          "serving.eipd.propagate.seconds");
  static telemetry::Counter* const queries =
      telemetry::MetricRegistry::Global().GetCounter("serving.eipd.queries");
  static telemetry::Counter* const multi_passes =
      telemetry::MetricRegistry::Global().GetCounter(
          "serving.eipd.multi_passes");
  static telemetry::Counter* const multi_roots =
      telemetry::MetricRegistry::Global().GetCounter(
          "serving.eipd.multi_roots");
  Timer timer;
  if (ws == nullptr) ws = &ThreadLocalMultiWorkspace();
  internal::PropagatePhiMulti(internal::ViewAdjacency{view_}, roots,
                              options_, ws);
  queries->Increment(roots.size());
  multi_passes->Increment();
  multi_roots->Increment(roots.size());
  latency->Observe(timer.ElapsedSeconds());

  results.reserve(roots.size());
  for (size_t b = 0; b < roots.size(); ++b) {
    KGOV_ASSIGN_OR_RETURN(
        std::vector<ScoredAnswer> ranked,
        TopKByScore(ws->lanes[b].phi, candidates, k));
    results.push_back(std::move(ranked));
  }
  return results;
}

// --- Deprecated wrappers -------------------------------------------------

const std::vector<double>& EipdEngine::Propagate(
    const QuerySeed& seed,
    const std::unordered_map<graph::EdgeId, double>* overrides,
    PropagationWorkspace* ws) const {
  return PropagateInto(seed, overrides, ws);
}

double EipdEngine::Similarity(const QuerySeed& seed, graph::NodeId answer,
                              PropagationWorkspace* ws) const {
  KGOV_CHECK(view_.IsValidNode(answer));
  return PropagateInto(seed, nullptr, ws)[answer];
}

std::vector<double> EipdEngine::SimilarityMany(
    const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
    PropagationWorkspace* ws) const {
  StatusOr<std::vector<double>> scores = Scores(seed, answers, ws);
  KGOV_CHECK(scores.ok()) << scores.status().ToString();
  return std::move(scores).value();
}

std::vector<double> EipdEngine::SimilarityManyWithOverrides(
    const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
    const std::unordered_map<graph::EdgeId, double>& overrides,
    PropagationWorkspace* ws) const {
  StatusOr<std::vector<double>> scores =
      ScoresWithOverrides(seed, answers, overrides, ws);
  KGOV_CHECK(scores.ok()) << scores.status().ToString();
  return std::move(scores).value();
}

std::vector<ScoredAnswer> EipdEngine::RankAnswers(
    const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
    size_t k, PropagationWorkspace* ws) const {
  StatusOr<std::vector<ScoredAnswer>> ranked = Rank(seed, candidates, k, ws);
  KGOV_CHECK(ranked.ok()) << ranked.status().ToString();
  return std::move(ranked).value();
}

std::vector<ScoredAnswer> EipdEngine::RankAnswersWithOverrides(
    const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
    size_t k, const std::unordered_map<graph::EdgeId, double>& overrides,
    PropagationWorkspace* ws) const {
  StatusOr<std::vector<ScoredAnswer>> ranked =
      RankWithOverrides(seed, candidates, k, overrides, ws);
  KGOV_CHECK(ranked.ok()) << ranked.status().ToString();
  return std::move(ranked).value();
}

}  // namespace kgov::ppr
