#include "ppr/eipd_engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/csr.h"
#include "graph/generators.h"
#include "ppr/ppr.h"

namespace kgov::ppr {
namespace {

using graph::CsrSnapshot;
using graph::WeightedDigraph;

// Small hand-checkable graph:
//   0 -> 1 (0.5), 0 -> 2 (0.5), 1 -> 3 (1.0), 2 -> 4 (0.6), 2 -> 1 (0.4)
// Nodes 3 and 4 are answers (no out-edges).
WeightedDigraph MakeFixture() {
  WeightedDigraph g(5);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(1, 3, 1.0).ok());
  EXPECT_TRUE(g.AddEdge(2, 4, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(2, 1, 0.4).ok());
  return g;
}

QuerySeed SeedAt(graph::NodeId node) {
  QuerySeed seed;
  seed.links.emplace_back(node, 1.0);
  return seed;
}

// One-shot Phi(seed, answer) on a live graph through the checked engine.
double Similarity(const WeightedDigraph& g, const QuerySeed& seed,
                  graph::NodeId answer, EipdOptions options = {}) {
  CsrSnapshot snap(g);
  EipdEngine engine(snap.View(), options);
  StatusOr<std::vector<double>> scores = engine.Scores(seed, {answer});
  EXPECT_TRUE(scores.ok()) << scores.status().ToString();
  return scores.value()[0];
}

TEST(EipdTest, HandComputedSimilarity) {
  WeightedDigraph g = MakeFixture();
  const double c = 0.15;
  EipdOptions options;
  options.max_length = 4;
  options.restart = c;
  QuerySeed seed = SeedAt(0);

  // Walks to 3: q->0->1->3 (len 3, P=0.5) and q->0->2->1->3 (len 4, P=0.2).
  double expected3 = c * (0.5 * std::pow(1 - c, 3) + 0.2 * std::pow(1 - c, 4));
  // Walks to 4: q->0->2->4 (len 3, P=0.3).
  double expected4 = c * 0.3 * std::pow(1 - c, 3);
  EXPECT_NEAR(Similarity(g, seed, 3, options), expected3, 1e-12);
  EXPECT_NEAR(Similarity(g, seed, 4, options), expected4, 1e-12);
}

TEST(EipdTest, PruningDropsLongWalks) {
  WeightedDigraph g = MakeFixture();
  const double c = 0.15;
  EipdOptions options;
  options.max_length = 3;  // drops the len-4 walk to node 3
  options.restart = c;
  double expected3 = c * 0.5 * std::pow(1 - c, 3);
  EXPECT_NEAR(Similarity(g, SeedAt(0), 3, options), expected3, 1e-12);
}

TEST(EipdTest, UnreachableAnswerIsZero) {
  WeightedDigraph g = MakeFixture();
  // Node 0 is unreachable from node 3 (3 has no out-edges).
  EXPECT_DOUBLE_EQ(Similarity(g, SeedAt(3), 0), 0.0);
}

TEST(EipdTest, ScoresMatchesIndividual) {
  WeightedDigraph g = MakeFixture();
  CsrSnapshot snap(g);
  EipdEngine engine(snap.View());
  QuerySeed seed = SeedAt(0);
  StatusOr<std::vector<double>> many = engine.Scores(seed, {1, 2, 3, 4});
  ASSERT_TRUE(many.ok());
  EXPECT_NEAR((*many)[0], Similarity(g, seed, 1), 1e-15);
  EXPECT_NEAR((*many)[1], Similarity(g, seed, 2), 1e-15);
  EXPECT_NEAR((*many)[2], Similarity(g, seed, 3), 1e-15);
  EXPECT_NEAR((*many)[3], Similarity(g, seed, 4), 1e-15);
}

TEST(EipdTest, MultiLinkSeedIsWeightedSum) {
  WeightedDigraph g = MakeFixture();
  QuerySeed mix;
  mix.links.emplace_back(1, 0.4);
  mix.links.emplace_back(2, 0.6);
  double expected = 0.4 * Similarity(g, SeedAt(1), 3) +
                    0.6 * Similarity(g, SeedAt(2), 3);
  EXPECT_NEAR(Similarity(g, mix, 3), expected, 1e-14);
}

TEST(EipdTest, OverridesChangeScores) {
  WeightedDigraph g = MakeFixture();
  CsrSnapshot snap(g);
  EipdEngine engine(snap.View());
  QuerySeed seed = SeedAt(0);
  graph::EdgeId e02 = *g.FindEdge(0, 2);

  std::unordered_map<graph::EdgeId, double> overrides{{e02, 0.0}};
  StatusOr<std::vector<double>> scores =
      engine.ScoresWithOverrides(seed, {3, 4}, overrides);
  ASSERT_TRUE(scores.ok());
  // Blocking 0->2 kills all walks to 4 and the len-4 walk to 3.
  const double c = 0.15;
  EXPECT_NEAR((*scores)[0], c * 0.5 * std::pow(1 - c, 3), 1e-12);
  EXPECT_DOUBLE_EQ((*scores)[1], 0.0);
  // The graph itself must be untouched.
  EXPECT_DOUBLE_EQ(g.Weight(e02), 0.5);
}

TEST(EipdTest, RankSortsByScore) {
  WeightedDigraph g = MakeFixture();
  CsrSnapshot snap(g);
  EipdEngine engine(snap.View());
  StatusOr<std::vector<ScoredAnswer>> ranked =
      engine.Rank(SeedAt(0), {3, 4}, 10);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 2u);
  EXPECT_EQ((*ranked)[0].node, 3u);  // higher score per hand computation
  EXPECT_EQ((*ranked)[1].node, 4u);
  EXPECT_GT((*ranked)[0].score, (*ranked)[1].score);
}

TEST(EipdTest, RankTruncatesToK) {
  WeightedDigraph g = MakeFixture();
  CsrSnapshot snap(g);
  EipdEngine engine(snap.View());
  StatusOr<std::vector<ScoredAnswer>> ranked =
      engine.Rank(SeedAt(0), {1, 2, 3, 4}, 2);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), 2u);
}

TEST(EipdTest, RankTieBreaksByNodeId) {
  WeightedDigraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  CsrSnapshot snap(g);
  EipdEngine engine(snap.View());
  StatusOr<std::vector<ScoredAnswer>> ranked =
      engine.Rank(SeedAt(0), {2, 1}, 5);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 2u);
  EXPECT_EQ((*ranked)[0].node, 1u);
  EXPECT_EQ((*ranked)[1].node, 2u);
}

TEST(EipdTest, SnapshotServesWhileGraphEvolves) {
  // The serving pattern: freeze, mutate the live graph, keep serving old
  // scores until the next freeze.
  WeightedDigraph g(3);
  graph::EdgeId e01 = *g.AddEdge(0, 1, 0.5);
  ASSERT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  CsrSnapshot before(g);
  EipdEngine engine(before.View());
  QuerySeed seed;
  seed.links.emplace_back(0, 1.0);
  double score_before = engine.Scores(seed, {1}).value()[0];

  g.SetWeight(e01, 0.05);
  EXPECT_DOUBLE_EQ(engine.Scores(seed, {1}).value()[0], score_before);

  CsrSnapshot after(g);
  EipdEngine engine_after(after.View());
  EXPECT_LT(engine_after.Scores(seed, {1}).value()[0], score_before);
}

// --- Theorem 1 (paper): extended inverse P-distance equals the PPR vector
// scores, verified as a property over random graphs and seeds. ---

class Theorem1Property : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem1Property, EipdConvergesToPpr) {
  Rng rng(GetParam());
  Result<WeightedDigraph> g = graph::ErdosRenyi(
      30, 150, rng, graph::WeightInit::kNormalizedRandom);
  ASSERT_TRUE(g.ok());

  graph::NodeId source = static_cast<graph::NodeId>(rng.NextIndex(30));
  QuerySeed seed = QuerySeed::FromNode(*g, source);
  if (seed.empty()) GTEST_SKIP() << "source has no out-edges";

  EipdOptions options;
  options.max_length = 80;  // effectively L -> infinity at (1-c)^80
  CsrSnapshot snap(*g);
  EipdEngine engine(snap.View(), options);
  StatusOr<std::vector<double>> phi = engine.Propagate(seed);
  ASSERT_TRUE(phi.ok());

  Result<std::vector<double>> pi = PowerIterationPprFromSeed(*g, seed);
  ASSERT_TRUE(pi.ok());

  for (graph::NodeId v = 0; v < g->NumNodes(); ++v) {
    EXPECT_NEAR((*phi)[v], (*pi)[v], 1e-6)
        << "node " << v << " seed " << source;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, Theorem1Property,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

// Monotonicity property: longer L never decreases a similarity.
class MonotoneLengthProperty : public ::testing::TestWithParam<int> {};

TEST_P(MonotoneLengthProperty, SimilarityGrowsWithL) {
  Rng rng(99);
  Result<WeightedDigraph> g = graph::ErdosRenyi(20, 100, rng);
  ASSERT_TRUE(g.ok());
  QuerySeed seed = QuerySeed::FromNode(*g, 0);
  if (seed.empty()) GTEST_SKIP();

  int length = GetParam();
  EipdOptions shorter;
  shorter.max_length = length;
  EipdOptions longer;
  longer.max_length = length + 1;
  CsrSnapshot snap(*g);
  EipdEngine eval_short(snap.View(), shorter);
  EipdEngine eval_long(snap.View(), longer);
  StatusOr<std::vector<double>> phi_short = eval_short.Propagate(seed);
  StatusOr<std::vector<double>> phi_long = eval_long.Propagate(seed);
  ASSERT_TRUE(phi_short.ok());
  ASSERT_TRUE(phi_long.ok());
  for (graph::NodeId v = 0; v < g->NumNodes(); ++v) {
    EXPECT_LE((*phi_short)[v], (*phi_long)[v] + 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, MonotoneLengthProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace kgov::ppr
