file(REMOVE_RECURSE
  "CMakeFiles/test_qa_system.dir/test_qa_system.cc.o"
  "CMakeFiles/test_qa_system.dir/test_qa_system.cc.o.d"
  "test_qa_system"
  "test_qa_system.pdb"
  "test_qa_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qa_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
