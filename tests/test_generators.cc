#include "graph/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

namespace kgov::graph {
namespace {

TEST(ErdosRenyiTest, ExactCounts) {
  Rng rng(1);
  Result<WeightedDigraph> g = ErdosRenyi(100, 400, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumNodes(), 100u);
  EXPECT_EQ(g->NumEdges(), 400u);
}

TEST(ErdosRenyiTest, NoSelfLoops) {
  Rng rng(2);
  Result<WeightedDigraph> g = ErdosRenyi(50, 300, rng);
  ASSERT_TRUE(g.ok());
  for (const Edge& e : g->edges()) {
    EXPECT_NE(e.from, e.to);
  }
}

TEST(ErdosRenyiTest, RejectsImpossibleEdgeCount) {
  Rng rng(3);
  EXPECT_FALSE(ErdosRenyi(3, 100, rng).ok());
}

TEST(ErdosRenyiTest, NormalizedRandomWeightsAreStochastic) {
  Rng rng(4);
  Result<WeightedDigraph> g = ErdosRenyi(60, 240, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->IsSubStochastic());
  for (NodeId v = 0; v < g->NumNodes(); ++v) {
    if (g->OutDegree(v) > 0) {
      EXPECT_NEAR(g->OutWeightSum(v), 1.0, 1e-9);
    }
  }
}

TEST(ErdosRenyiTest, UniformStochasticInit) {
  Rng rng(5);
  Result<WeightedDigraph> g =
      ErdosRenyi(40, 160, rng, WeightInit::kUniformStochastic);
  ASSERT_TRUE(g.ok());
  for (NodeId v = 0; v < g->NumNodes(); ++v) {
    size_t d = g->OutDegree(v);
    for (const OutEdge& out : g->OutEdges(v)) {
      EXPECT_DOUBLE_EQ(g->Weight(out.edge), 1.0 / static_cast<double>(d));
    }
  }
}

TEST(ErdosRenyiTest, DeterministicUnderSeed) {
  Rng rng1(42), rng2(42);
  Result<WeightedDigraph> a = ErdosRenyi(30, 90, rng1);
  Result<WeightedDigraph> b = ErdosRenyi(30, 90, rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->NumEdges(), b->NumEdges());
  for (EdgeId e = 0; e < a->NumEdges(); ++e) {
    EXPECT_EQ(a->edge(e).from, b->edge(e).from);
    EXPECT_EQ(a->edge(e).to, b->edge(e).to);
    EXPECT_DOUBLE_EQ(a->edge(e).weight, b->edge(e).weight);
  }
}

TEST(BarabasiAlbertTest, NodeCountAndConnectivity) {
  Rng rng(6);
  Result<WeightedDigraph> g = BarabasiAlbert(200, 3, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumNodes(), 200u);
  // Every non-seed node attaches ~3 out-edges.
  EXPECT_GT(g->NumEdges(), 500u);
  EXPECT_LE(g->NumEdges(), 600u);
}

TEST(BarabasiAlbertTest, RejectsTinyGraphs) {
  Rng rng(7);
  EXPECT_FALSE(BarabasiAlbert(3, 5, rng).ok());
}

TEST(BarabasiAlbertTest, HeavyTailedInDegree) {
  Rng rng(8);
  Result<WeightedDigraph> g = BarabasiAlbert(2000, 2, rng);
  ASSERT_TRUE(g.ok());
  std::vector<size_t> in_degree(g->NumNodes(), 0);
  for (const Edge& e : g->edges()) ++in_degree[e.to];
  size_t max_in = 0;
  for (size_t d : in_degree) max_in = std::max(max_in, d);
  // Preferential attachment produces hubs far above the mean (~2).
  EXPECT_GT(max_in, 20u);
}

TEST(ScaleFreeTest, HitsExactEdgeTarget) {
  Rng rng(9);
  Result<WeightedDigraph> g = ScaleFreeWithTargetEdges(1000, 4000, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumNodes(), 1000u);
  EXPECT_EQ(g->NumEdges(), 4000u);
  EXPECT_TRUE(g->IsSubStochastic());
}

TEST(ScaleFreeTest, SaturatedEdgeTargetFailsNamingTheLimit) {
  // 10 nodes allow 90 directed edges; the rejection-sampling top-up
  // saturates past half of that. The old behavior was an unbounded spin;
  // now it must refuse upfront and name the limiting parameter.
  Rng rng(12);
  Result<WeightedDigraph> g = ScaleFreeWithTargetEdges(10, 60, rng);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
  const std::string message = g.status().ToString();
  EXPECT_NE(message.find("num_edges"), std::string::npos) << message;
  EXPECT_NE(message.find("45"), std::string::npos)
      << "expected the cap (90 / 2 = 45) in: " << message;
  EXPECT_NE(message.find("num_nodes"), std::string::npos) << message;

  // Just under the cap still succeeds.
  Result<WeightedDigraph> ok = ScaleFreeWithTargetEdges(10, 45, rng);
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST(StreamingScaleFreeTest, CountsAndStochasticWeights) {
  Rng rng(13);
  Result<WeightedDigraph> g = StreamingScaleFree(5000, 4, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumNodes(), 5000u);
  // Node v attaches min(4, v) out-edges (best-effort under the attempt
  // bound), so the total lands close to 4 * V.
  EXPECT_GT(g->NumEdges(), 4u * 5000u * 9 / 10);
  EXPECT_LE(g->NumEdges(), 4u * 5000u);
  EXPECT_TRUE(g->IsSubStochastic());
}

TEST(StreamingScaleFreeTest, DeterministicUnderSeed) {
  Rng rng1(14), rng2(14);
  Result<WeightedDigraph> a = StreamingScaleFree(2000, 3, rng1);
  Result<WeightedDigraph> b = StreamingScaleFree(2000, 3, rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->NumEdges(), b->NumEdges());
  for (EdgeId e = 0; e < a->NumEdges(); ++e) {
    EXPECT_EQ(a->edge(e).from, b->edge(e).from);
    EXPECT_EQ(a->edge(e).to, b->edge(e).to);
    EXPECT_DOUBLE_EQ(a->edge(e).weight, b->edge(e).weight);
  }
}

TEST(StreamingScaleFreeTest, NoSelfLoopsOrDuplicates) {
  Rng rng(15);
  Result<WeightedDigraph> g = StreamingScaleFree(1000, 5, rng);
  ASSERT_TRUE(g.ok());
  std::unordered_set<uint64_t> seen;
  for (const Edge& e : g->edges()) {
    EXPECT_NE(e.from, e.to);
    EXPECT_TRUE(
        seen.insert((static_cast<uint64_t>(e.from) << 32) | e.to).second)
        << "duplicate edge " << e.from << " -> " << e.to;
  }
}

TEST(StreamingScaleFreeTest, HeavyTailedInDegree) {
  Rng rng(16);
  Result<WeightedDigraph> g = StreamingScaleFree(4000, 3, rng);
  ASSERT_TRUE(g.ok());
  std::vector<size_t> in_degree(g->NumNodes(), 0);
  for (const Edge& e : g->edges()) ++in_degree[e.to];
  size_t max_in = 0;
  for (size_t d : in_degree) max_in = std::max(max_in, d);
  // The bounded endpoint pool must preserve preferential attachment: hubs
  // far above the mean in-degree (~3).
  EXPECT_GT(max_in, 30u);
}

TEST(StreamingScaleFreeTest, RejectsDegenerateParameters) {
  Rng rng(17);
  EXPECT_FALSE(StreamingScaleFree(1, 1, rng).ok());
  EXPECT_FALSE(StreamingScaleFree(100, 0, rng).ok());
  EXPECT_FALSE(StreamingScaleFree(100, 100, rng).ok());
}

TEST(ProfileTest, MatchTablesInPaper) {
  EXPECT_EQ(TwitterProfile().num_nodes, 23370u);
  EXPECT_EQ(TwitterProfile().num_edges, 33101u);
  EXPECT_EQ(DiggProfile().num_nodes, 30398u);
  EXPECT_EQ(DiggProfile().num_edges, 87627u);
  EXPECT_EQ(GnutellaProfile().num_nodes, 62586u);
  EXPECT_EQ(GnutellaProfile().num_edges, 147892u);
  EXPECT_EQ(TaobaoProfile().num_nodes, 1663u);
  EXPECT_EQ(TaobaoProfile().num_edges, 17591u);
}

TEST(ProfileTest, GenerateFromTaobaoProfile) {
  Rng rng(10);
  Result<WeightedDigraph> g = GenerateFromProfile(TaobaoProfile(), rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumNodes(), 1663u);
  EXPECT_EQ(g->NumEdges(), 17591u);
  EXPECT_NEAR(g->AverageDegree(), 10.57, 0.1);
}

TEST(InitializeWeightsTest, Reassign) {
  Rng rng(11);
  WeightedDigraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 1.0).ok());
  InitializeWeights(&g, WeightInit::kNormalizedRandom, rng);
  EXPECT_NEAR(g.OutWeightSum(0), 1.0, 1e-9);
  // Random init almost surely asymmetric.
  EXPECT_NE(g.Weight(0), g.Weight(1));
}

}  // namespace
}  // namespace kgov::graph
