#include "core/scoring.h"

#include "common/logging.h"
#include "graph/csr.h"
#include "ppr/eipd_engine.h"

namespace kgov::core {

OmegaResult EvaluateOmega(graph::GraphView view,
                          const std::vector<votes::Vote>& votes,
                          const ppr::EipdOptions& eipd) {
  OmegaResult result;
  ppr::EipdEngine engine(view, eipd);
  ppr::PropagationWorkspace workspace;
  for (const votes::Vote& vote : votes) {
    if (!vote.IsWellFormed()) continue;
    int before = vote.BestAnswerRank();
    StatusOr<std::vector<ppr::ScoredAnswer>> ranked = engine.Rank(
        vote.query, vote.answer_list, vote.answer_list.size(), &workspace);
    if (!ranked.ok()) continue;  // vote doesn't fit this view: skip it
    const std::vector<ppr::ScoredAnswer>& reranked = ranked.value();
    std::vector<graph::NodeId> order;
    order.reserve(reranked.size());
    for (const ppr::ScoredAnswer& sa : reranked) order.push_back(sa.node);
    int after = votes::RankOf(order, vote.best_answer);
    if (after == 0) after = static_cast<int>(order.size());  // defensive
    result.before_ranks.push_back(before);
    result.after_ranks.push_back(after);
    result.total += static_cast<double>(before - after);
  }
  if (!result.before_ranks.empty()) {
    result.average =
        result.total / static_cast<double>(result.before_ranks.size());
  }
  return result;
}

OmegaResult EvaluateOmega(const graph::WeightedDigraph& optimized,
                          const std::vector<votes::Vote>& votes,
                          const ppr::EipdOptions& eipd) {
  graph::CsrSnapshot snapshot(optimized);
  return EvaluateOmega(snapshot.View(), votes, eipd);
}

}  // namespace kgov::core
