#include "votes/conflict.h"

#include <gtest/gtest.h>

namespace kgov::votes {
namespace {

Vote MakeVote(std::vector<graph::NodeId> seed_nodes,
              std::vector<graph::NodeId> answers, graph::NodeId best) {
  Vote vote;
  for (graph::NodeId node : seed_nodes) {
    vote.query.links.emplace_back(node, 1.0 / seed_nodes.size());
  }
  vote.answer_list = std::move(answers);
  vote.best_answer = best;
  return vote;
}

TEST(ConflictTest, DetectsContradictoryPair) {
  // A: 10 best over {10, 11}; B: 11 best over {10, 11}.
  std::vector<Vote> votes{MakeVote({0}, {10, 11}, 10),
                          MakeVote({0}, {11, 10}, 11)};
  ConflictReport report = AnalyzeConflicts(votes);
  ASSERT_EQ(report.conflicts.size(), 1u);
  EXPECT_EQ(report.conflicts[0].vote_a, 0u);
  EXPECT_EQ(report.conflicts[0].vote_b, 1u);
  EXPECT_EQ(report.conflicted_votes, 2u);
  EXPECT_DOUBLE_EQ(report.conflicts[0].query_overlap, 1.0);
}

TEST(ConflictTest, AgreeingVotesDoNotConflict) {
  std::vector<Vote> votes{MakeVote({0}, {10, 11}, 10),
                          MakeVote({0}, {11, 10}, 10)};
  ConflictReport report = AnalyzeConflicts(votes);
  EXPECT_TRUE(report.conflicts.empty());
}

TEST(ConflictTest, DisjointAnswerListsDoNotConflict) {
  std::vector<Vote> votes{MakeVote({0}, {10, 11}, 11),
                          MakeVote({0}, {20, 21}, 21)};
  EXPECT_TRUE(AnalyzeConflicts(votes).conflicts.empty());
}

TEST(ConflictTest, OneSidedDominationIsNotAConflict) {
  // B's best (12) is not in A's list, so only one ordering binds both.
  std::vector<Vote> votes{MakeVote({0}, {10, 11}, 10),
                          MakeVote({0}, {10, 12}, 12)};
  EXPECT_TRUE(AnalyzeConflicts(votes).conflicts.empty());
}

TEST(ConflictTest, OverlapThresholdFilters) {
  std::vector<Vote> votes{MakeVote({0, 1}, {10, 11}, 10),
                          MakeVote({2, 3}, {11, 10}, 11)};
  ConflictOptions strict;
  strict.min_query_overlap = 0.5;
  EXPECT_TRUE(AnalyzeConflicts(votes, strict).conflicts.empty());

  ConflictOptions loose;  // overlap 0 allowed
  ConflictReport report = AnalyzeConflicts(votes, loose);
  EXPECT_EQ(report.conflicts.size(), 1u);
  EXPECT_DOUBLE_EQ(report.conflicts[0].query_overlap, 0.0);
}

TEST(ConflictTest, PartialOverlapComputed) {
  std::vector<Vote> votes{MakeVote({0, 1}, {10, 11}, 10),
                          MakeVote({1, 2}, {11, 10}, 11)};
  ConflictReport report = AnalyzeConflicts(votes);
  ASSERT_EQ(report.conflicts.size(), 1u);
  EXPECT_NEAR(report.conflicts[0].query_overlap, 1.0 / 3.0, 1e-12);
}

TEST(ConflictTest, MalformedVotesIgnored) {
  Vote bad;  // no list, no seed
  std::vector<Vote> votes{bad, MakeVote({0}, {10, 11}, 11)};
  ConflictReport report = AnalyzeConflicts(votes);
  EXPECT_TRUE(report.conflicts.empty());
  EXPECT_EQ(report.overlapping_pairs, 0u);
}

TEST(ConflictTest, CountsOverlappingPairs) {
  std::vector<Vote> votes{MakeVote({0}, {10, 11}, 10),
                          MakeVote({0}, {10, 11}, 10),
                          MakeVote({0}, {11, 10}, 11)};
  ConflictReport report = AnalyzeConflicts(votes);
  EXPECT_EQ(report.overlapping_pairs, 3u);
  EXPECT_EQ(report.conflicts.size(), 2u);  // votes 0-2 and 1-2
  EXPECT_EQ(report.conflicted_votes, 3u);
}

}  // namespace
}  // namespace kgov::votes
