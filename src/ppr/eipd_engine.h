// The unified extended-inverse-P-distance engine (paper SIV-A, Eq. 7-9).
//
//   Phi(vq, va) = sum over walks z : vq ~> va, |z| <= L of P[z]*c*(1-c)^|z|
//
// There is exactly ONE propagation implementation in kgov: the
// level-synchronous kernel internal::PropagatePhi below, templated over an
// adjacency source. EipdEngine instantiates it over graph::GraphView (the
// CSR serving path); the compatibility EipdEvaluator in ppr/eipd.h
// instantiates it over the live WeightedDigraph. Both therefore share one
// body, and fixes/optimizations apply to every caller at once.
//
// PropagationWorkspace keeps the per-query O(n) scratch (`phi`, `mass`,
// `next` plus the frontiers) alive across queries so steady-state serving
// does no per-call allocation. Pass one explicitly to reuse it across
// engines, or pass nullptr to use a per-thread workspace.

#ifndef KGOV_PPR_EIPD_ENGINE_H_
#define KGOV_PPR_EIPD_ENGINE_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/contracts.h"
#include "common/logging.h"
#include "common/status.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "ppr/query_seed.h"
#include "ppr/ranking.h"

namespace kgov::ppr {

struct EipdOptions {
  /// Maximum walk length L (number of edges, including the query's first
  /// hop). Paper default: 5.
  int max_length = 5;
  /// Restart probability c. Paper default: ~0.15.
  double restart = 0.15;

  /// OK iff the options describe a usable propagation: max_length >= 1 and
  /// restart in (0, 1). Consumers (EipdEngine, QaSystem, serve::QueryEngine)
  /// call this at construction; the message names the offending field.
  Status Validate() const;
};

/// Reusable per-query scratch buffers. Prepare(n) zeroes (and if needed
/// grows) them; capacity is retained, so repeated queries on graphs of
/// stable size allocate nothing. Not thread-safe: use one workspace per
/// thread (the engines default to a thread_local one).
struct PropagationWorkspace {
  std::vector<double> phi;
  std::vector<double> mass;
  std::vector<double> next;
  std::vector<graph::NodeId> frontier;
  std::vector<graph::NodeId> next_frontier;

  void Prepare(size_t n) {
    phi.assign(n, 0.0);
    mass.assign(n, 0.0);
    next.assign(n, 0.0);
    frontier.clear();
    next_frontier.clear();
  }
};

/// The per-thread default workspace used when callers pass nullptr.
PropagationWorkspace& ThreadLocalWorkspace();

/// Scratch for a multi-root pass: one PropagationWorkspace lane per root.
/// Lane capacity is retained across passes (EnsureLanes only grows), so a
/// serving worker that batches queries steadily allocates nothing.
struct MultiPropagationWorkspace {
  std::vector<PropagationWorkspace> lanes;

  void EnsureLanes(size_t count) {
    if (lanes.size() < count) lanes.resize(count);
  }
};

/// The per-thread default multi-root workspace used when callers pass
/// nullptr to RankMulti.
MultiPropagationWorkspace& ThreadLocalMultiWorkspace();

namespace internal {

/// Adjacency adapter over a GraphView (contiguous CSR ranges).
struct ViewAdjacency {
  graph::GraphView view;

  size_t NumNodes() const { return view.NumNodes(); }
  bool IsValidNode(graph::NodeId v) const { return view.IsValidNode(v); }

  template <typename Fn>
  void ForEachOut(graph::NodeId u, Fn&& fn) const {
    const graph::GraphView::Neighbor* b = view.begin(u);
    const graph::GraphView::Neighbor* e = view.end(u);
    const graph::EdgeId* ids = view.edge_ids(u);
    for (const graph::GraphView::Neighbor* it = b; it != e; ++it) {
      fn(it->to, it->weight,
         ids == nullptr ? graph::kInvalidEdge : ids[it - b]);
    }
  }
};

/// Adjacency adapter over the live mutable graph (reads current weights).
struct DigraphAdjacency {
  const graph::WeightedDigraph* graph;

  size_t NumNodes() const { return graph->NumNodes(); }
  bool IsValidNode(graph::NodeId v) const { return graph->IsValidNode(v); }

  template <typename Fn>
  void ForEachOut(graph::NodeId u, Fn&& fn) const {
    for (const graph::OutEdge& out : graph->OutEdges(u)) {
      fn(out.to, graph->Weight(out.edge), out.edge);
    }
  }
};

// --- Per-lane primitives ---------------------------------------------
// One lane = one seed's propagation state in its own workspace. Both the
// single-root driver (PropagatePhi) and the multi-root driver
// (PropagatePhiMulti) are composed of exactly these steps, so a lane's
// floating-point operation sequence is identical whichever driver runs
// it: a multi-root result is bitwise-identical, per root, to the
// single-root propagation of the same seed (tests/test_eipd_multi.cc).

/// Level 1: the query's first hop.
template <typename Adjacency>
void SeedLane(const Adjacency& adj, const QuerySeed& seed,
              PropagationWorkspace* ws) {
  ws->Prepare(adj.NumNodes());
  for (const auto& [node, weight] : seed.links) {
    KGOV_DCHECK(adj.IsValidNode(node));
    if (weight <= 0.0) continue;
    if (ws->mass[node] == 0.0) ws->frontier.push_back(node);
    ws->mass[node] += weight;
  }
}

/// Absorbs the current level's mass into phi at the given decay
/// c*(1-c)^len.
inline void AbsorbLane(PropagationWorkspace* ws, double decay) {
  for (graph::NodeId v : ws->frontier) {
    ws->phi[v] += ws->mass[v] * decay;
  }
}

/// Pushes the lane's mass one level along the out-edges.
template <typename Adjacency>
void AdvanceLane(const Adjacency& adj,
                 const std::unordered_map<graph::EdgeId, double>* overrides,
                 PropagationWorkspace* ws) {
  std::vector<double>& next = ws->next;
  ws->next_frontier.clear();
  for (graph::NodeId u : ws->frontier) {
    const double m = ws->mass[u];
    adj.ForEachOut(u, [&](graph::NodeId to, double w, graph::EdgeId e) {
      if (overrides != nullptr) {
        auto it = overrides->find(e);
        if (it != overrides->end()) w = it->second;
      }
      if (w <= 0.0) return;
      if (next[to] == 0.0) ws->next_frontier.push_back(to);
      next[to] += m * w;
    });
    ws->mass[u] = 0.0;
  }
  // `next` entries touched twice keep their accumulated value;
  // next_frontier may contain duplicates only if next[v] was exactly 0
  // after a prior add, which cannot happen with positive weights. After
  // the swap the old mass array (all zeroed above) becomes next.
  ws->mass.swap(ws->next);
  ws->frontier.swap(ws->next_frontier);
}

/// THE propagation body: level-synchronous mass propagation (a truncated
/// power iteration over the walk length), yielding the scores of *all*
/// nodes in one pass - the property behind the paper's Table VI efficiency
/// result. Walks longer than L are dropped (SIV-A; L = 5 in the paper's
/// experiments, justified by Fig. 7). Weights present in `overrides`
/// (keyed by EdgeId; may be null) replace the adjacency's weights.
/// Results land in ws->phi.
template <typename Adjacency>
void PropagatePhi(const Adjacency& adj, const QuerySeed& seed,
                  const EipdOptions& options,
                  const std::unordered_map<graph::EdgeId, double>* overrides,
                  PropagationWorkspace* ws) {
  const double c = options.restart;
  SeedLane(adj, seed, ws);
  double decay = c * (1.0 - c);  // c*(1-c)^len for len = 1
  for (int len = 1; len <= options.max_length; ++len) {
    AbsorbLane(ws, decay);
    if (len == options.max_length) break;
    AdvanceLane(adj, overrides, ws);
    decay *= 1.0 - c;
  }
}

/// The multi-root kernel: B seeds advance level-synchronously through one
/// pass, lane b in ws->lanes[b]. Because the lanes interleave at level
/// granularity (every lane absorbs, then every lane advances), the
/// adjacency rows a level touches are revisited across lanes while still
/// warm - the locality batched serving rides on - and each lane's
/// operation sequence is exactly the single-root sequence, so results
/// are bitwise-identical per root. No overrides: the batched serving
/// path reads the epoch's frozen weights.
template <typename Adjacency>
void PropagatePhiMulti(const Adjacency& adj,
                       const std::vector<const QuerySeed*>& seeds,
                       const EipdOptions& options,
                       MultiPropagationWorkspace* ws) {
  const double c = options.restart;
  const size_t lanes = seeds.size();
  ws->EnsureLanes(lanes);
  for (size_t b = 0; b < lanes; ++b) {
    SeedLane(adj, *seeds[b], &ws->lanes[b]);
  }
  double decay = c * (1.0 - c);
  for (int len = 1; len <= options.max_length; ++len) {
    for (size_t b = 0; b < lanes; ++b) {
      AbsorbLane(&ws->lanes[b], decay);
    }
    if (len == options.max_length) break;
    for (size_t b = 0; b < lanes; ++b) {
      AdvanceLane(adj, nullptr, &ws->lanes[b]);
    }
    decay *= 1.0 - c;
  }
}

}  // namespace internal

/// THE documented EIPD evaluator: numeric EIPD evaluation over a
/// GraphView. The view's backing storage (e.g. a graph::CsrSnapshot or
/// graph::InducedSubview) must outlive the engine. Thread-compatible:
/// concurrent calls on one instance are safe as long as each thread uses
/// its own workspace (the default).
///
/// The checked entry points (Propagate, Scores, Rank, *WithOverrides)
/// return StatusOr<T> and reject malformed seeds/candidates with
/// InvalidArgument instead of asserting; they are the public read-path
/// API. The assert-based methods at the bottom are deprecated wrappers
/// kept for one release.
class EipdEngine {
 public:
  explicit EipdEngine(graph::GraphView view, EipdOptions options = {});

  const EipdOptions& options() const { return options_; }
  const graph::GraphView& view() const { return view_; }

  /// OK iff every seed link names a valid node of the view with a finite,
  /// non-negative weight. The error message names the offending link.
  Status ValidateSeed(const QuerySeed& seed) const;

  /// One propagation pass; returns Phi(seed, v) for every node v of the
  /// view. Pass a workspace to reuse scratch across calls (the returned
  /// vector is an independent copy either way).
  StatusOr<std::vector<double>> Propagate(
      const QuerySeed& seed, PropagationWorkspace* ws = nullptr) const;

  /// Propagate with edge weights in `overrides` replacing the view's
  /// weights (judgment filter's extreme condition, per-cluster solution
  /// checks). The view must carry edge ids when it has any edges.
  StatusOr<std::vector<double>> PropagateWithOverrides(
      const QuerySeed& seed,
      const std::unordered_map<graph::EdgeId, double>& overrides,
      PropagationWorkspace* ws = nullptr) const;

  /// Phi(seed, a) for every a in `answers`, in one propagation pass.
  StatusOr<std::vector<double>> Scores(
      const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
      PropagationWorkspace* ws = nullptr) const;

  /// Scores under weight overrides.
  StatusOr<std::vector<double>> ScoresWithOverrides(
      const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
      const std::unordered_map<graph::EdgeId, double>& overrides,
      PropagationWorkspace* ws = nullptr) const;

  /// Top-k candidates sorted by descending score, ties by ascending node
  /// id (rankings are deterministic).
  StatusOr<std::vector<ScoredAnswer>> Rank(
      const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
      size_t k, PropagationWorkspace* ws = nullptr) const;

  /// Rank under weight overrides.
  StatusOr<std::vector<ScoredAnswer>> RankWithOverrides(
      const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
      size_t k, const std::unordered_map<graph::EdgeId, double>& overrides,
      PropagationWorkspace* ws = nullptr) const;

  /// Ranks every seed against `candidates` in ONE multi-root propagation
  /// pass (internal::PropagatePhiMulti): the seeds advance
  /// level-synchronously, so adjacency rows shared by related roots are
  /// revisited while still cache-warm. results[b] is bitwise-identical
  /// to Rank(seeds[b], ...) - per-lane arithmetic order is preserved.
  /// The batched serving path folds same-cluster misses through this.
  StatusOr<std::vector<std::vector<ScoredAnswer>>> RankMulti(
      const std::vector<QuerySeed>& seeds,
      const std::vector<graph::NodeId>& candidates, size_t k,
      MultiPropagationWorkspace* ws = nullptr) const;

  // --- Deprecated wrappers (kept for one release) -----------------------
  // Same numerics as the checked API, but malformed input asserts
  // (KGOV_CHECK / KGOV_DCHECK) instead of returning a Status. New code
  // should call the StatusOr<T> entry points above.

  /// Deprecated: use Scores() and index the result.
  double Similarity(const QuerySeed& seed, graph::NodeId answer,
                    PropagationWorkspace* ws = nullptr) const;

  /// Deprecated: use Scores().
  std::vector<double> SimilarityMany(const QuerySeed& seed,
                                     const std::vector<graph::NodeId>& answers,
                                     PropagationWorkspace* ws = nullptr) const;

  /// Deprecated: use Scores() after PropagateWithOverrides(), or
  /// RankWithOverrides().
  std::vector<double> SimilarityManyWithOverrides(
      const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
      const std::unordered_map<graph::EdgeId, double>& overrides,
      PropagationWorkspace* ws = nullptr) const;

  /// Deprecated: use Rank().
  std::vector<ScoredAnswer> RankAnswers(
      const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
      size_t k, PropagationWorkspace* ws = nullptr) const;

  /// Deprecated: use RankWithOverrides().
  std::vector<ScoredAnswer> RankAnswersWithOverrides(
      const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
      size_t k, const std::unordered_map<graph::EdgeId, double>& overrides,
      PropagationWorkspace* ws = nullptr) const;

  /// Deprecated: runs one unchecked propagation into `ws` (nullptr: the
  /// thread-local workspace) and returns its phi vector, valid until the
  /// workspace's next use. Use the checked Propagate() overloads instead.
  const std::vector<double>& Propagate(
      const QuerySeed& seed,
      const std::unordered_map<graph::EdgeId, double>* overrides,
      PropagationWorkspace* ws = nullptr) const;

 private:
  /// The one kernel invocation every entry point funnels through:
  /// resolves the workspace, runs PropagatePhi, records telemetry, and
  /// returns the workspace's phi vector.
  const std::vector<double>& PropagateInto(
      const QuerySeed& seed,
      const std::unordered_map<graph::EdgeId, double>* overrides,
      PropagationWorkspace* ws) const;

  graph::GraphView view_;
  EipdOptions options_;
};

}  // namespace kgov::ppr

#endif  // KGOV_PPR_EIPD_ENGINE_H_
