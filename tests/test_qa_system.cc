#include "qa/qa_system.h"

#include <gtest/gtest.h>

#include "qa/kg_builder.h"

namespace kgov::qa {
namespace {

Corpus MakeTinyCorpus() {
  Corpus corpus;
  corpus.num_entities = 3;
  corpus.documents.resize(3);
  corpus.documents[0].mentions = {{0, 2}, {1, 1}};
  corpus.documents[1].mentions = {{0, 1}, {2, 1}};
  corpus.documents[2].mentions = {{1, 1}, {2, 3}};
  return corpus;
}

TEST(LinkQuestionTest, WeightsAreMentionShares) {
  Question q;
  q.mentions = {{0, 1}, {2, 3}};
  ppr::QuerySeed seed = LinkQuestion(q, 3);
  ASSERT_EQ(seed.links.size(), 2u);
  EXPECT_DOUBLE_EQ(seed.links[0].second, 0.25);
  EXPECT_DOUBLE_EQ(seed.links[1].second, 0.75);
  EXPECT_EQ(seed.links[1].first, 2u);
}

TEST(LinkQuestionTest, OutOfVocabularyMentionsIgnored) {
  Question q;
  q.mentions = {{0, 1}, {99, 5}};
  ppr::QuerySeed seed = LinkQuestion(q, 3);
  ASSERT_EQ(seed.links.size(), 1u);
  EXPECT_DOUBLE_EQ(seed.links[0].second, 1.0);
}

TEST(LinkQuestionTest, AllOutOfVocabularyYieldsEmptySeed) {
  Question q;
  q.mentions = {{99, 1}};
  EXPECT_TRUE(LinkQuestion(q, 3).empty());
}

class QaSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<KnowledgeGraph> kg = BuildKnowledgeGraph(MakeTinyCorpus());
    ASSERT_TRUE(kg.ok());
    kg_ = std::move(kg).value();
  }
  KnowledgeGraph kg_;
};

TEST_F(QaSystemTest, AskReturnsRankedDocuments) {
  QaOptions options;
  options.top_k = 3;
  QaSystem system(&kg_.graph, &kg_.answer_nodes, kg_.num_entities, options);
  Question q;
  q.mentions = {{0, 1}};  // asks about entity 0
  std::vector<RankedDocument> docs = system.Ask(q);
  ASSERT_FALSE(docs.empty());
  for (size_t i = 1; i < docs.size(); ++i) {
    EXPECT_GE(docs[i - 1].score, docs[i].score);
  }
  for (const RankedDocument& rd : docs) {
    EXPECT_GE(rd.document, 0);
    EXPECT_LT(rd.document, 3);
  }
}

TEST_F(QaSystemTest, EntityHeavyDocumentRanksHigh) {
  QaOptions options;
  options.top_k = 3;
  QaSystem system(&kg_.graph, &kg_.answer_nodes, kg_.num_entities, options);
  Question q;
  q.mentions = {{2, 1}};  // entity 2 dominates doc2 (count 3)
  std::vector<RankedDocument> docs = system.Ask(q);
  ASSERT_FALSE(docs.empty());
  EXPECT_EQ(docs.front().document, 2);
}

TEST_F(QaSystemTest, TopKTruncates) {
  QaOptions options;
  options.top_k = 1;
  QaSystem system(&kg_.graph, &kg_.answer_nodes, kg_.num_entities, options);
  Question q;
  q.mentions = {{0, 1}};
  EXPECT_EQ(system.Ask(q).size(), 1u);
}

TEST_F(QaSystemTest, EmptySeedYieldsNoAnswers) {
  QaSystem system(&kg_.graph, &kg_.answer_nodes, kg_.num_entities);
  Question q;
  q.mentions = {{99, 1}};
  EXPECT_TRUE(system.Ask(q).empty());
}

TEST_F(QaSystemTest, AskSeedExposesNodeLevelApi) {
  QaSystem system(&kg_.graph, &kg_.answer_nodes, kg_.num_entities);
  ppr::QuerySeed seed;
  seed.links.emplace_back(0, 1.0);
  std::vector<ppr::ScoredAnswer> ranked = system.AskSeed(seed);
  ASSERT_FALSE(ranked.empty());
  for (const ppr::ScoredAnswer& sa : ranked) {
    EXPECT_GE(sa.node, kg_.num_entities);
  }
}

TEST_F(QaSystemTest, FreezesSnapshotAtConstruction) {
  // Snapshot-backed serving: the system freezes the graph's weights when
  // it is built, so later mutations are invisible until a new system (or
  // a new epoch's view) is constructed over the updated graph.
  graph::WeightedDigraph copy = kg_.graph;
  QaSystem system(&copy, &kg_.answer_nodes, kg_.num_entities);
  Question q;
  q.mentions = {{0, 1}};
  std::vector<RankedDocument> before = system.Ask(q);
  ASSERT_FALSE(before.empty());

  // Crush all of entity 0's outgoing weights except the doc1 link.
  for (const graph::OutEdge& out : copy.OutEdges(0)) {
    if (out.to != kg_.answer_nodes[1]) copy.SetWeight(out.edge, 1e-6);
  }
  copy.NormalizeOutWeights(0);

  // The frozen system still serves the old ranking...
  std::vector<RankedDocument> after = system.Ask(q);
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].document, before[i].document);
    EXPECT_DOUBLE_EQ(after[i].score, before[i].score);
  }

  // ...and a system rebuilt over the mutated graph sees the change.
  QaSystem rebuilt(&copy, &kg_.answer_nodes, kg_.num_entities);
  std::vector<RankedDocument> fresh = rebuilt.Ask(q);
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(fresh.front().document, 1);
}

TEST_F(QaSystemTest, ViewConstructorServesFromCallerSnapshot) {
  // The epoch-serving path: the caller owns the snapshot and hands the
  // system a view of it; rankings match the digraph constructor's.
  graph::CsrSnapshot snapshot(kg_.graph);
  QaSystem from_view(snapshot.View(), &kg_.answer_nodes, kg_.num_entities);
  QaSystem from_graph(&kg_.graph, &kg_.answer_nodes, kg_.num_entities);
  Question q;
  q.mentions = {{0, 1}, {2, 2}};
  std::vector<RankedDocument> a = from_view.Ask(q);
  std::vector<RankedDocument> b = from_graph.Ask(q);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].document, b[i].document);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

}  // namespace
}  // namespace kgov::qa
