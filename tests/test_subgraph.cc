#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"

namespace kgov::graph {
namespace {

TEST(SelectBfsRegionTest, CollectsRequestedCount) {
  Rng rng(1);
  Result<WeightedDigraph> g = ErdosRenyi(100, 400, rng);
  ASSERT_TRUE(g.ok());
  std::vector<NodeId> region = SelectBfsRegion(*g, 40, rng);
  EXPECT_EQ(region.size(), 40u);
  std::set<NodeId> unique(region.begin(), region.end());
  EXPECT_EQ(unique.size(), 40u);
}

TEST(SelectBfsRegionTest, TargetLargerThanGraphClamped) {
  Rng rng(2);
  WeightedDigraph g(5);
  std::vector<NodeId> region = SelectBfsRegion(g, 50, rng);
  EXPECT_EQ(region.size(), 5u);
}

TEST(SelectBfsRegionTest, RegionIsBfsConnectedOnConnectedGraph) {
  // On a directed ring every BFS region from one seed is a contiguous arc.
  WeightedDigraph g(10);
  for (NodeId v = 0; v < 10; ++v) {
    ASSERT_TRUE(g.AddEdge(v, (v + 1) % 10, 1.0).ok());
  }
  Rng rng(3);
  std::vector<NodeId> region = SelectBfsRegion(g, 4, rng);
  ASSERT_EQ(region.size(), 4u);
  for (size_t i = 1; i < region.size(); ++i) {
    EXPECT_EQ(region[i], (region[i - 1] + 1) % 10);
  }
}

TEST(SelectBfsRegionTest, DeterministicUnderSeed) {
  Rng rng_a(7), rng_b(7);
  Result<WeightedDigraph> g = ErdosRenyi(60, 240, rng_a);
  Rng rng_g(7);
  Result<WeightedDigraph> g2 = ErdosRenyi(60, 240, rng_g);
  ASSERT_TRUE(g.ok() && g2.ok());
  Rng r1(9), r2(9);
  EXPECT_EQ(SelectBfsRegion(*g, 30, r1), SelectBfsRegion(*g2, 30, r2));
}

TEST(InducedSubgraphTest, KeepsOnlyInternalEdges) {
  WeightedDigraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.3).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());  // crosses the boundary
  ASSERT_TRUE(g.AddEdge(1, 0, 0.7).ok());
  g.SetNodeLabel(0, "a");
  Result<InducedSubgraph> sub = ExtractInducedSubgraph(g, {0, 1});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->graph.NumNodes(), 2u);
  EXPECT_EQ(sub->graph.NumEdges(), 2u);
  EXPECT_DOUBLE_EQ(sub->graph.Weight(*sub->graph.FindEdge(0, 1)), 0.3);
  EXPECT_DOUBLE_EQ(sub->graph.Weight(*sub->graph.FindEdge(1, 0)), 0.7);
  EXPECT_EQ(sub->to_original, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(sub->graph.NodeLabel(0), "a");
}

TEST(InducedSubgraphTest, RejectsDuplicatesAndBadNodes) {
  WeightedDigraph g(3);
  EXPECT_FALSE(ExtractInducedSubgraph(g, {0, 0}).ok());
  EXPECT_FALSE(ExtractInducedSubgraph(g, {0, 9}).ok());
}

TEST(InducedSubgraphTest, EmptySetYieldsEmptyGraph) {
  WeightedDigraph g(3);
  Result<InducedSubgraph> sub = ExtractInducedSubgraph(g, {});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->graph.NumNodes(), 0u);
}

TEST(CountInternalEdgesTest, Counts) {
  WeightedDigraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.1).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 0.1).ok());
  EXPECT_EQ(CountInternalEdges(g, {0, 1, 2}), 2u);
  EXPECT_EQ(CountInternalEdges(g, {0, 3}), 0u);
  EXPECT_EQ(CountInternalEdges(g, {}), 0u);
}

}  // namespace
}  // namespace kgov::graph
