// Tests for the vote-weight extension: per-vote trust scales the vote's
// constraint penalties, so a heavier vote wins conflicts against a lighter
// one.

#include <gtest/gtest.h>

#include "core/kg_optimizer.h"
#include "core/scoring.h"
#include "graph/csr.h"
#include "math/sgp_problem.h"
#include "math/sgp_solver.h"
#include "ppr/eipd_engine.h"

namespace kgov {
namespace {

using graph::WeightedDigraph;

// One-shot Phi(seed, answer) via a snapshot of the given live graph.
double Similarity(const WeightedDigraph& g, const ppr::QuerySeed& seed,
                  graph::NodeId answer, const ppr::EipdOptions& options) {
  graph::CsrSnapshot snap(g);
  ppr::EipdEngine engine(snap.View(), options);
  return engine.Scores(seed, {answer}).value()[0];
}

WeightedDigraph MakeFixture() {
  WeightedDigraph g(5);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.4).ok());
  EXPECT_TRUE(g.AddEdge(1, 3, 1.0).ok());
  EXPECT_TRUE(g.AddEdge(2, 4, 1.0).ok());
  return g;
}

votes::Vote MakeVote(graph::NodeId best, double weight, uint32_t id) {
  votes::Vote vote;
  vote.id = id;
  vote.weight = weight;
  vote.query.links.emplace_back(0, 1.0);
  vote.answer_list = {3, 4};
  vote.best_answer = best;
  return vote;
}

TEST(SgpConstraintWeightTest, DefaultIsOne) {
  math::SgpProblem problem;
  problem.AddVariable(0.5, 0.0, 1.0);
  problem.AddConstraint(math::Signomial(math::Monomial(1.0, {{0, 1.0}})),
                        "c");
  EXPECT_DOUBLE_EQ(problem.constraints()[0].weight, 1.0);
}

TEST(SgpConstraintWeightTest, StoredWeight) {
  math::SgpProblem problem;
  problem.AddVariable(0.5, 0.0, 1.0);
  problem.AddConstraint(math::Signomial(math::Monomial(1.0, {{0, 1.0}})),
                        "c", 3.5);
  EXPECT_DOUBLE_EQ(problem.constraints()[0].weight, 3.5);
}

TEST(SgpConstraintWeightTest, ZeroWeightRejected) {
  math::SgpProblem problem;
  problem.AddVariable(0.5, 0.0, 1.0);
  EXPECT_DEATH(problem.AddConstraint(
                   math::Signomial(math::Monomial(1.0, {{0, 1.0}})), "c", 0.0),
               "positive");
}

TEST(VoteWeightTest, HeavierVoteWinsConflict) {
  // Two directly conflicting votes on the same query: one says answer 4 is
  // best (weight 5), one confirms answer 3 (weight 1). The weighted
  // multi-vote objective should side with the heavy vote.
  WeightedDigraph g = MakeFixture();
  core::OptimizerOptions options;
  options.encoder.symbolic.eipd.max_length = 4;
  options.apply_judgment_filter = false;
  options.sgp.lambda1 = 0.1;  // let the votes dominate

  core::KgOptimizer optimizer(&g, options);
  std::vector<votes::Vote> conflict{MakeVote(4, 5.0, 0), MakeVote(3, 1.0, 1)};
  Result<core::OptimizeReport> report = optimizer.MultiVoteSolve(conflict);
  ASSERT_TRUE(report.ok());

  ppr::EipdOptions eipd;
  eipd.max_length = 4;
  double s3 = Similarity(report->optimized, conflict[0].query, 3, eipd);
  double s4 = Similarity(report->optimized, conflict[0].query, 4, eipd);
  EXPECT_GT(s4, s3);
}

TEST(VoteWeightTest, LighterVoteLosesConflict) {
  // Mirror case: the vote for 4 is now the light one; the confirmation of
  // 3 dominates and the ranking stays.
  WeightedDigraph g = MakeFixture();
  core::OptimizerOptions options;
  options.encoder.symbolic.eipd.max_length = 4;
  options.apply_judgment_filter = false;
  options.sgp.lambda1 = 0.1;

  core::KgOptimizer optimizer(&g, options);
  std::vector<votes::Vote> conflict{MakeVote(4, 1.0, 0), MakeVote(3, 5.0, 1)};
  Result<core::OptimizeReport> report = optimizer.MultiVoteSolve(conflict);
  ASSERT_TRUE(report.ok());

  ppr::EipdOptions eipd;
  eipd.max_length = 4;
  double s3 = Similarity(report->optimized, conflict[0].query, 3, eipd);
  double s4 = Similarity(report->optimized, conflict[0].query, 4, eipd);
  EXPECT_GT(s3, s4);
}

TEST(VoteWeightTest, WeightsWorkInDeviationFormulation) {
  WeightedDigraph g = MakeFixture();
  core::OptimizerOptions options;
  options.encoder.symbolic.eipd.max_length = 4;
  options.apply_judgment_filter = false;
  options.sgp.lambda1 = 0.1;
  options.sgp.formulation = math::SgpFormulation::kDeviationVariables;

  core::KgOptimizer optimizer(&g, options);
  std::vector<votes::Vote> conflict{MakeVote(4, 5.0, 0), MakeVote(3, 1.0, 1)};
  Result<core::OptimizeReport> report = optimizer.MultiVoteSolve(conflict);
  ASSERT_TRUE(report.ok());

  ppr::EipdOptions eipd;
  eipd.max_length = 4;
  EXPECT_GT(Similarity(report->optimized, conflict[0].query, 4, eipd),
            Similarity(report->optimized, conflict[0].query, 3, eipd));
}

TEST(VoteWeightTest, EqualWeightsMatchUnweightedBehaviour) {
  WeightedDigraph g = MakeFixture();
  core::OptimizerOptions options;
  options.encoder.symbolic.eipd.max_length = 4;
  core::KgOptimizer optimizer(&g, options);

  Result<core::OptimizeReport> weighted =
      optimizer.MultiVoteSolve({MakeVote(4, 1.0, 0)});
  votes::Vote plain = MakeVote(4, 1.0, 0);
  Result<core::OptimizeReport> unweighted =
      optimizer.MultiVoteSolve({plain});
  ASSERT_TRUE(weighted.ok() && unweighted.ok());
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_NEAR(weighted->optimized.Weight(e),
                unweighted->optimized.Weight(e), 1e-12);
  }
}

}  // namespace
}  // namespace kgov
