// KgOptimizer: the public entry point of kgov, implementing the paper's
// four graph-optimization strategies:
//
//   * SingleVoteSolve           - Algorithm 1: one hard-constrained SGP per
//                                 negative vote, solved greedily in
//                                 sequence (SIV).
//   * MultiVoteSolve            - one SGP over all votes (negative and
//                                 positive) with deviation-variable /
//                                 sigmoid objective (SV, Eq. 15/19).
//   * SplitMergeSolve           - the S-M strategy: cluster votes by edge
//                                 overlap with affinity propagation, solve
//                                 one multi-vote SGP per cluster, merge the
//                                 weight changes by the voting rule (SVI).
//   * DistributedSplitMergeSolve- S-M with clusters solved in parallel on a
//                                 thread pool (the paper's 4-machine
//                                 distributed variant).
//
// All strategies leave the input graph untouched and return the optimized
// copy G* plus a report of what happened.

#ifndef KGOV_CORE_KG_OPTIMIZER_H_
#define KGOV_CORE_KG_OPTIMIZER_H_

#include <unordered_map>
#include <vector>

#include "cluster/affinity_propagation.h"
#include "cluster/merge.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/resilience.h"
#include "graph/graph.h"
#include "math/sgp_solver.h"
#include "votes/judgment.h"
#include "votes/vote.h"
#include "votes/vote_encoder.h"

namespace kgov::core {

struct OptimizerOptions {
  /// Vote -> SGP encoding settings (path length L, variable predicate,
  /// weight bounds).
  votes::EncoderOptions encoder;
  /// SGP solver settings (formulation, lambda1/lambda2, sigmoid w, inner
  /// solver). SingleVoteSolve always uses hard constraints regardless of
  /// the formulation set here.
  math::SgpSolverOptions sgp;
  /// Run the judgment filter before multi-vote encoding (SV). The filter
  /// inherits the encoder's symbolic settings.
  bool apply_judgment_filter = true;
  /// Constant for shared edges in the judgment extreme condition.
  double judgment_shared_weight = 0.5;
  /// Re-normalize out-weights after applying a solution (Alg. 1 line 16).
  bool normalize_after_update = true;
  /// Single-vote refinement: the hard-constraint solution sits exactly on
  /// the feasibility boundary, and the subsequent normalization can cancel
  /// slack placed on out-degree-1 edges (whose relative weight is
  /// normalization-invariant). Re-encode and re-solve against the
  /// normalized graph until the vote is satisfied, up to this many rounds.
  /// 1 reproduces the paper's Algorithm 1 verbatim.
  int single_vote_refine_rounds = 3;
  /// Affinity-propagation settings for SplitMergeSolve.
  cluster::ApOptions ap;
  /// Conflict-resolution rule for SplitMergeSolve.
  cluster::MergeRule merge_rule = cluster::MergeRule::kWeightedSignExtreme;
  /// Retry/fallback policy applied to every multi-vote SGP solve (batch
  /// and per-cluster). max_attempts = 1 reproduces the non-resilient
  /// behaviour.
  RetryOptions retry;
  /// Split-and-merge failure isolation: when a cluster's solve fails after
  /// the full retry chain (or its task dies), skip the cluster and
  /// quarantine its votes into the report instead of aborting the batch.
  /// When false a cluster failure fails the whole solve.
  bool quarantine_failed_clusters = true;
  /// Split-and-merge: after each cluster solve, re-rank the cluster's
  /// votes by EIPD on a zero-copy induced sub-view of the parent CSR (the
  /// L-ball around the votes' seeds and answers) with the solved weights
  /// applied as EdgeId-keyed overrides — no per-cluster WeightedDigraph is
  /// materialized. Fills votes_verified / votes_satisfied in the report.
  bool verify_cluster_solutions = true;

  /// Checks this struct and its nested option structs; returns
  /// InvalidArgument naming the first offending field. KgOptimizer captures
  /// the result at construction and every solve entry point returns it
  /// without doing work when not OK.
  Status Validate() const;
};

/// A cluster whose solve failed and was isolated from the batch.
struct ClusterFailure {
  size_t cluster = 0;
  size_t num_votes = 0;
  Status status;
};

struct OptimizeReport {
  /// The optimized graph G*.
  graph::WeightedDigraph optimized;
  /// Votes given / surviving the judgment filter / actually encoded.
  size_t votes_in = 0;
  size_t votes_after_filter = 0;
  size_t votes_encoded = 0;
  /// Constraint satisfaction at the solution (multi-vote strategies).
  int constraints_total = 0;
  int constraints_satisfied = 0;
  /// Cluster count (split-and-merge strategies; 0 otherwise).
  size_t num_clusters = 0;
  /// Per-cluster solve wall times (split-and-merge strategies). Lets
  /// callers compute a simulated distributed makespan on machines with too
  /// few cores to measure real parallel speedups.
  std::vector<double> cluster_seconds;
  /// Wall time spent building programs vs solving them.
  double encode_seconds = 0.0;
  double solve_seconds = 0.0;
  /// Net weight change applied per edge (before normalization).
  std::unordered_map<graph::EdgeId, double> weight_changes;
  /// Total SGP solve attempts, counting retries (split-and-merge and
  /// multi-vote strategies).
  size_t solve_attempts = 0;
  /// Split-and-merge with verify_cluster_solutions: votes re-ranked on
  /// their cluster's sub-view under the solved weights, and how many of
  /// them ranked their voted best answer first.
  size_t votes_verified = 0;
  size_t votes_satisfied = 0;
  /// Clusters skipped by failure isolation (split-and-merge strategies).
  std::vector<ClusterFailure> failed_clusters;
  /// The failed clusters' votes, untouched, so the caller can re-queue
  /// them (see OnlineKgOptimizer) or inspect them.
  std::vector<votes::Vote> quarantined_votes;
};

class KgOptimizer {
 public:
  /// `graph` is borrowed (never mutated) and must outlive the optimizer.
  KgOptimizer(const graph::WeightedDigraph* graph, OptimizerOptions options);

  const OptimizerOptions& options() const { return options_; }

  /// Algorithm 1. Positive votes are ignored (SIV-B). Infeasible votes
  /// still apply the solver's best-effort point, matching the greedy
  /// baseline behaviour.
  Result<OptimizeReport> SingleVoteSolve(
      const std::vector<votes::Vote>& votes) const;

  /// One batch SGP over all votes (SV).
  Result<OptimizeReport> MultiVoteSolve(
      const std::vector<votes::Vote>& votes) const;

  /// MultiVoteSolve restricted to a sub-scope: only edges satisfying
  /// `scope` (ANDed with the configured encoder.is_variable) are treated
  /// as variables; everything else is held constant. The streaming write
  /// path uses this to re-solve only dirty partition clusters. A null
  /// scope degenerates to MultiVoteSolve.
  Result<OptimizeReport> MultiVoteSolveScoped(
      const std::vector<votes::Vote>& votes,
      ppr::SymbolicEipd::VariablePredicate scope) const;

  /// Split-and-merge (SVI); sequential cluster solves.
  Result<OptimizeReport> SplitMergeSolve(
      const std::vector<votes::Vote>& votes) const;

  /// SplitMergeSolve restricted to a sub-scope (see MultiVoteSolveScoped):
  /// the incremental re-solve entry point of the streaming pipeline.
  Result<OptimizeReport> SplitMergeSolveScoped(
      const std::vector<votes::Vote>& votes,
      ppr::SymbolicEipd::VariablePredicate scope) const;

  /// Split-and-merge with clusters solved on `pool` (must have >= 1
  /// worker; the paper used 4 machines).
  Result<OptimizeReport> DistributedSplitMergeSolve(
      const std::vector<votes::Vote>& votes, ThreadPool* pool) const;

 private:
  Result<OptimizeReport> SplitMergeImpl(const std::vector<votes::Vote>& votes,
                                        ThreadPool* pool) const;

  /// Applies judgment filtering when enabled; returns surviving votes.
  std::vector<votes::Vote> Filter(const std::vector<votes::Vote>& votes,
                                  const graph::WeightedDigraph& graph) const;

  const graph::WeightedDigraph* graph_;
  OptimizerOptions options_;
  // options_.Validate() captured at construction; solve entry points fail
  // fast with it when not OK.
  Status options_status_;
};

}  // namespace kgov::core

#endif  // KGOV_CORE_KG_OPTIMIZER_H_
