#include "votes/judgment.h"

#include <gtest/gtest.h>

namespace kgov::votes {
namespace {

using graph::WeightedDigraph;

// Fixture where answers 3 and 4 are reachable from the query via disjoint
// and shared edges.
WeightedDigraph MakeFixture() {
  WeightedDigraph g(5);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(1, 3, 1.0).ok());
  EXPECT_TRUE(g.AddEdge(2, 4, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(2, 1, 0.4).ok());
  return g;
}

Vote MakeVote(std::vector<graph::NodeId> list, graph::NodeId best) {
  Vote vote;
  vote.query.links.emplace_back(0, 1.0);
  vote.answer_list = std::move(list);
  vote.best_answer = best;
  return vote;
}

JudgmentOptions DefaultOptions() {
  JudgmentOptions options;
  options.symbolic.eipd.max_length = 4;
  return options;
}

TEST(JudgmentTest, PositiveVoteAlwaysSatisfiable) {
  WeightedDigraph g = MakeFixture();
  JudgmentFilter filter(&g, DefaultOptions());
  EXPECT_TRUE(filter.IsSatisfiable(MakeVote({3, 4}, 3)));
}

TEST(JudgmentTest, MalformedVoteRejected) {
  WeightedDigraph g = MakeFixture();
  JudgmentFilter filter(&g, DefaultOptions());
  Vote bad;
  EXPECT_FALSE(filter.IsSatisfiable(bad));
}

TEST(JudgmentTest, SatisfiableNegativeVoteAccepted) {
  // Answer 4 has an exclusive edge (2->4) that the extreme condition can
  // raise to 1 while zeroing 1->3; the vote for 4 is satisfiable.
  WeightedDigraph g = MakeFixture();
  JudgmentFilter filter(&g, DefaultOptions());
  EXPECT_TRUE(filter.IsSatisfiable(MakeVote({3, 4}, 4)));
}

TEST(JudgmentTest, UnreachableBestAnswerRejected) {
  // Node 4 unreachable: remove its only inbound edge by zero weight on a
  // fresh graph where 2->4 does not exist.
  WeightedDigraph g(5);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 3, 1.0).ok());
  JudgmentFilter filter(&g, DefaultOptions());
  // Vote claims 4 (unreachable) is best over 3: no weighting can help.
  EXPECT_FALSE(filter.IsSatisfiable(MakeVote({3, 4}, 4)));
}

TEST(JudgmentTest, SharedOnlyPathsDecidedByStructure) {
  // Both answers are reached through the single shared edge 0->1, then
  // diverge; the extreme condition gives the best answer's exclusive edge
  // weight 1 and the rival's 0, so the vote is satisfiable.
  WeightedDigraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.7).ok());  // rival answer 2
  ASSERT_TRUE(g.AddEdge(1, 3, 0.3).ok());  // best answer 3
  JudgmentFilter filter(&g, DefaultOptions());
  EXPECT_TRUE(filter.IsSatisfiable(MakeVote({2, 3}, 3)));
}

TEST(JudgmentTest, FixedEdgesCannotBeRaised) {
  // Same structure, but all edges are fixed (not optimizable): the extreme
  // condition cannot change anything, so the current ranking stands and
  // the vote for the lower answer is unsatisfiable.
  WeightedDigraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.7).ok());
  ASSERT_TRUE(g.AddEdge(1, 3, 0.3).ok());
  JudgmentOptions options = DefaultOptions();
  options.is_variable = [](const WeightedDigraph&, graph::EdgeId) {
    return false;
  };
  JudgmentFilter filter(&g, options);
  EXPECT_FALSE(filter.IsSatisfiable(MakeVote({2, 3}, 3)));
}

TEST(JudgmentTest, RankAboveComparatorUsed) {
  // Best answer at rank 3 competes against the answer at rank 2, not the
  // top answer. Construct scores s(5) > s(6) > s(7) and make 7 the best;
  // 7's exclusive path can be maxed, so it's satisfiable.
  WeightedDigraph g(8);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.3).ok());
  ASSERT_TRUE(g.AddEdge(0, 3, 0.2).ok());
  ASSERT_TRUE(g.AddEdge(1, 5, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 6, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(3, 7, 1.0).ok());
  JudgmentFilter filter(&g, DefaultOptions());
  EXPECT_TRUE(filter.IsSatisfiable(MakeVote({5, 6, 7}, 7)));
}

TEST(JudgmentTest, FilterVotesKeepsOrder) {
  WeightedDigraph g = MakeFixture();
  JudgmentFilter filter(&g, DefaultOptions());
  Vote v1 = MakeVote({3, 4}, 4);
  v1.id = 1;
  Vote bad;  // malformed -> dropped
  bad.id = 2;
  Vote v3 = MakeVote({3, 4}, 3);
  v3.id = 3;
  std::vector<Vote> kept = filter.FilterVotes({v1, bad, v3});
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].id, 1u);
  EXPECT_EQ(kept[1].id, 3u);
}

}  // namespace
}  // namespace kgov::votes
