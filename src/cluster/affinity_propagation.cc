#include "cluster/affinity_propagation.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "math/stats.h"
#include <string>

namespace kgov::cluster {


Status ApOptions::Validate() const {
  if (!(damping >= 0.5 && damping < 1.0)) {
    return Status::InvalidArgument(
        "ApOptions.damping must be in [0.5, 1), got " +
        std::to_string(damping));
  }
  if (max_iterations < 1) {
    return Status::InvalidArgument(
        "ApOptions.max_iterations must be >= 1, got " +
        std::to_string(max_iterations));
  }
  if (convergence_window < 1) {
    return Status::InvalidArgument(
        "ApOptions.convergence_window must be >= 1, got " +
        std::to_string(convergence_window));
  }
  // NaN selects the median-preference default; infinity is never valid.
  if (std::isinf(preference)) {
    return Status::InvalidArgument(
        "ApOptions.preference must be finite or NaN, got " +
        std::to_string(preference));
  }
  return Status::OK();
}

Result<ApResult> AffinityPropagation(
    const std::vector<std::vector<double>>& similarity,
    const ApOptions& options) {
  KGOV_RETURN_IF_ERROR(options.Validate());
  const size_t n = similarity.size();
  if (n == 0) {
    return Status::InvalidArgument("empty similarity matrix");
  }
  for (const auto& row : similarity) {
    if (row.size() != n) {
      return Status::InvalidArgument("similarity matrix is not square");
    }
  }
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must lie in [0, 1)");
  }
  if (n == 1) {
    ApResult single;
    single.labels = {0};
    single.exemplars = {0};
    single.converged = true;
    return single;
  }

  // Working similarity matrix with the preference on the diagonal.
  double preference = options.preference;
  if (std::isnan(preference)) {
    std::vector<double> off_diagonal;
    off_diagonal.reserve(n * (n - 1));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i != j) off_diagonal.push_back(similarity[i][j]);
      }
    }
    preference = math::Median(std::move(off_diagonal));
  }
  std::vector<std::vector<double>> s = similarity;
  for (size_t i = 0; i < n; ++i) s[i][i] = preference;

  // Degeneracy breaking (Frey & Dueck): on exactly symmetric inputs the
  // messages settle at r(k,k) + a(k,k) == 0 for every k and no exemplar
  // emerges. Add tiny deterministic jitter well below any meaningful
  // similarity difference.
  double spread = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      spread = std::max(spread, std::fabs(s[i][j]));
    }
  }
  if (spread == 0.0) spread = 1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      // splitmix-style hash of (i, j) -> [0, 1).
      uint64_t h = (static_cast<uint64_t>(i) << 32) ^ j ^ 0x9E3779B97F4A7C15ull;
      h ^= h >> 30;
      h *= 0xBF58476D1CE4E5B9ull;
      h ^= h >> 27;
      double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      s[i][j] += 1e-9 * spread * u;
    }
  }

  std::vector<std::vector<double>> r(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));

  const double lambda = options.damping;
  std::vector<char> exemplar_flags(n, 0);
  int stable_rounds = 0;
  int iter = 0;
  bool converged = false;

  for (; iter < options.max_iterations; ++iter) {
    // Responsibilities: r(i,k) <- s(i,k) - max_{k' != k} (a(i,k')+s(i,k')).
    for (size_t i = 0; i < n; ++i) {
      // Track best and second-best of a+s over k'.
      double best = -std::numeric_limits<double>::infinity();
      double second = best;
      size_t best_k = 0;
      for (size_t k = 0; k < n; ++k) {
        double v = a[i][k] + s[i][k];
        if (v > best) {
          second = best;
          best = v;
          best_k = k;
        } else if (v > second) {
          second = v;
        }
      }
      for (size_t k = 0; k < n; ++k) {
        double competing = (k == best_k) ? second : best;
        double fresh = s[i][k] - competing;
        r[i][k] = lambda * r[i][k] + (1.0 - lambda) * fresh;
      }
    }

    // Availabilities: a(i,k) <- min(0, r(k,k) + sum_{i' not in {i,k}}
    // max(0, r(i',k))); a(k,k) <- sum_{i' != k} max(0, r(i',k)).
    for (size_t k = 0; k < n; ++k) {
      double positive_sum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (i != k) positive_sum += std::max(0.0, r[i][k]);
      }
      for (size_t i = 0; i < n; ++i) {
        double fresh;
        if (i == k) {
          fresh = positive_sum;
        } else {
          double without_i = positive_sum - std::max(0.0, r[i][k]);
          fresh = std::min(0.0, r[k][k] + without_i);
        }
        a[i][k] = lambda * a[i][k] + (1.0 - lambda) * fresh;
      }
    }

    // Exemplar set: k with r(k,k)+a(k,k) > 0.
    std::vector<char> flags(n, 0);
    bool any = false;
    for (size_t k = 0; k < n; ++k) {
      if (r[k][k] + a[k][k] > 0.0) {
        flags[k] = 1;
        any = true;
      }
    }
    if (any && flags == exemplar_flags) {
      if (++stable_rounds >= options.convergence_window) {
        converged = true;
        ++iter;
        break;
      }
    } else {
      stable_rounds = 0;
      exemplar_flags = flags;
    }
  }

  // Collect exemplars; fall back to the single best self-score if none
  // emerged (can happen with very low preference).
  std::vector<size_t> exemplars;
  for (size_t k = 0; k < n; ++k) {
    if (exemplar_flags[k]) exemplars.push_back(k);
  }
  if (exemplars.empty()) {
    size_t best_k = 0;
    double best = -std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < n; ++k) {
      double v = r[k][k] + a[k][k];
      if (v > best) {
        best = v;
        best_k = k;
      }
    }
    exemplars.push_back(best_k);
  }

  // Assign every item to its most similar exemplar (exemplars to
  // themselves).
  ApResult result;
  result.labels.assign(n, 0);
  result.exemplars = exemplars;
  for (size_t i = 0; i < n; ++i) {
    int best_c = 0;
    double best = -std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < exemplars.size(); ++c) {
      if (exemplars[c] == i) {
        best_c = static_cast<int>(c);
        break;
      }
      if (s[i][exemplars[c]] > best) {
        best = s[i][exemplars[c]];
        best_c = static_cast<int>(c);
      }
    }
    result.labels[i] = best_c;
  }
  result.iterations = iter;
  result.converged = converged;
  return result;
}

}  // namespace kgov::cluster
