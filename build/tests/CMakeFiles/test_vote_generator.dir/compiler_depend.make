# Empty compiler generated dependencies file for test_vote_generator.
# This may be replaced when dependencies are built.
