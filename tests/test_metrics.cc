#include "qa/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "qa/kg_builder.h"

namespace kgov::qa {
namespace {

std::vector<RankedDocument> Ranking(std::vector<int> docs) {
  std::vector<RankedDocument> out;
  double score = 1.0;
  for (int d : docs) {
    out.push_back(RankedDocument{d, score});
    score *= 0.9;
  }
  return out;
}

Question Labeled(int best, std::vector<int> relevant = {}) {
  Question q;
  q.best_document = best;
  q.relevant_documents = relevant.empty() ? std::vector<int>{best} : relevant;
  return q;
}

TEST(DocumentRankTest, Basics) {
  std::vector<RankedDocument> ranking = Ranking({5, 2, 9});
  EXPECT_EQ(DocumentRank(ranking, 5), 1);
  EXPECT_EQ(DocumentRank(ranking, 9), 3);
  EXPECT_EQ(DocumentRank(ranking, 7), 0);
}

TEST(MetricsTest, PerfectRanking) {
  std::vector<Question> questions{Labeled(1), Labeled(2)};
  std::vector<std::vector<RankedDocument>> rankings{Ranking({1, 2, 3}),
                                                    Ranking({2, 1, 3})};
  RankingMetrics m = EvaluateRankings(questions, rankings);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
  EXPECT_DOUBLE_EQ(m.map, 1.0);
  EXPECT_DOUBLE_EQ(m.average_rank, 1.0);
  EXPECT_DOUBLE_EQ(m.hits_at[0], 1.0);  // H@1
}

TEST(MetricsTest, MrrAveragesReciprocalRanks) {
  std::vector<Question> questions{Labeled(1), Labeled(9)};
  std::vector<std::vector<RankedDocument>> rankings{
      Ranking({1, 2}),      // rank 1
      Ranking({2, 3, 9})};  // rank 3
  RankingMetrics m = EvaluateRankings(questions, rankings);
  EXPECT_NEAR(m.mrr, (1.0 + 1.0 / 3.0) / 2.0, 1e-12);
}

TEST(MetricsTest, HitsAtKThresholds) {
  std::vector<Question> questions{Labeled(7)};
  std::vector<std::vector<RankedDocument>> rankings{
      Ranking({1, 2, 3, 7})};  // rank 4
  RankingMetrics m = EvaluateRankings(questions, rankings, {1, 3, 5, 10});
  EXPECT_DOUBLE_EQ(m.hits_at[0], 0.0);  // H@1
  EXPECT_DOUBLE_EQ(m.hits_at[1], 0.0);  // H@3
  EXPECT_DOUBLE_EQ(m.hits_at[2], 1.0);  // H@5
  EXPECT_DOUBLE_EQ(m.hits_at[3], 1.0);  // H@10
}

TEST(MetricsTest, AbsentBestAnswerPenalized) {
  std::vector<Question> questions{Labeled(42)};
  std::vector<std::vector<RankedDocument>> rankings{Ranking({1, 2, 3})};
  RankingMetrics m = EvaluateRankings(questions, rankings);
  EXPECT_DOUBLE_EQ(m.mrr, 0.0);
  EXPECT_DOUBLE_EQ(m.average_rank, 4.0);  // list size + 1
  EXPECT_DOUBLE_EQ(m.hits_at[0], 0.0);
}

TEST(MetricsTest, MapOverGradedRelevance) {
  // Relevant {1, 3}; ranking (1, 2, 3): AP = (1/1 + 2/3) / 2.
  std::vector<Question> questions{Labeled(1, {1, 3})};
  std::vector<std::vector<RankedDocument>> rankings{Ranking({1, 2, 3})};
  RankingMetrics m = EvaluateRankings(questions, rankings);
  EXPECT_NEAR(m.map, (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(MetricsTest, MapLowerWhenRelevantMissing) {
  std::vector<Question> questions{Labeled(1, {1, 99})};
  std::vector<std::vector<RankedDocument>> rankings{Ranking({1, 2, 3})};
  RankingMetrics m = EvaluateRankings(questions, rankings);
  EXPECT_NEAR(m.map, 0.5, 1e-12);  // only 1 of 2 relevant found
}

TEST(MetricsTest, UnlabeledQuestionsSkipped) {
  Question unlabeled;
  std::vector<Question> questions{unlabeled, Labeled(1)};
  std::vector<std::vector<RankedDocument>> rankings{Ranking({5}),
                                                    Ranking({1})};
  RankingMetrics m = EvaluateRankings(questions, rankings);
  EXPECT_EQ(m.num_questions, 1u);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
}

TEST(MetricsTest, EmptyInput) {
  RankingMetrics m = EvaluateRankings({}, {});
  EXPECT_EQ(m.num_questions, 0u);
  EXPECT_DOUBLE_EQ(m.mrr, 0.0);
}

TEST(MetricsTest, PerfectRankingNdcgIsOne) {
  std::vector<Question> questions{Labeled(1, {1, 2})};
  std::vector<std::vector<RankedDocument>> rankings{Ranking({1, 2, 3})};
  RankingMetrics m = EvaluateRankings(questions, rankings);
  EXPECT_NEAR(m.ndcg, 1.0, 1e-12);
}

TEST(MetricsTest, WorseOrderingLowersNdcg) {
  std::vector<Question> questions{Labeled(1, {1, 2})};
  std::vector<std::vector<RankedDocument>> good{Ranking({1, 2, 3})};
  std::vector<std::vector<RankedDocument>> bad{Ranking({3, 2, 1})};
  double ndcg_good = EvaluateRankings(questions, good).ndcg;
  double ndcg_bad = EvaluateRankings(questions, bad).ndcg;
  EXPECT_GT(ndcg_good, ndcg_bad);
  EXPECT_GT(ndcg_bad, 0.0);
}

TEST(MetricsTest, NdcgHandComputed) {
  // Relevant {1 (best, gain 2), 3 (gain 1)}; ranking (2, 1, 3):
  // DCG = 2/log2(3) + 1/log2(4); IDCG = 2/log2(2) + 1/log2(3).
  std::vector<Question> questions{Labeled(1, {1, 3})};
  std::vector<std::vector<RankedDocument>> rankings{Ranking({2, 1, 3})};
  RankingMetrics m = EvaluateRankings(questions, rankings);
  double dcg = 2.0 / std::log2(3.0) + 1.0 / 2.0;
  double idcg = 2.0 + 1.0 / std::log2(3.0);
  EXPECT_NEAR(m.ndcg, dcg / idcg, 1e-12);
}

TEST(MetricsTest, PrecisionAtK) {
  // Relevant {1, 3}; ranking (1, 2, 3): P@1 = 1, P@3 = 2/3.
  std::vector<Question> questions{Labeled(1, {1, 3})};
  std::vector<std::vector<RankedDocument>> rankings{Ranking({1, 2, 3})};
  RankingMetrics m = EvaluateRankings(questions, rankings, {1, 3});
  ASSERT_EQ(m.precision_at.size(), 2u);
  EXPECT_DOUBLE_EQ(m.precision_at[0], 1.0);
  EXPECT_NEAR(m.precision_at[1], 2.0 / 3.0, 1e-12);
}

TEST(EvaluateServingViewTest, MatchesManualAskAndEvaluate) {
  Corpus corpus;
  corpus.num_entities = 3;
  corpus.documents.resize(3);
  corpus.documents[0].mentions = {{0, 2}, {1, 1}};
  corpus.documents[1].mentions = {{0, 1}, {2, 1}};
  corpus.documents[2].mentions = {{1, 1}, {2, 3}};
  Result<KnowledgeGraph> kg = BuildKnowledgeGraph(corpus);
  ASSERT_TRUE(kg.ok());

  std::vector<Question> questions(2);
  questions[0].mentions = {{0, 1}};
  questions[0].best_document = 0;
  questions[0].relevant_documents = {0};
  questions[1].mentions = {{2, 1}};
  questions[1].best_document = 2;
  questions[1].relevant_documents = {2};

  graph::CsrSnapshot snapshot(kg->graph);
  RankingMetrics from_view = EvaluateServingView(
      snapshot.View(), kg->answer_nodes, kg->num_entities, questions);

  QaSystem system(&kg->graph, &kg->answer_nodes, kg->num_entities);
  std::vector<std::vector<RankedDocument>> rankings;
  for (const Question& q : questions) rankings.push_back(system.Ask(q));
  RankingMetrics manual = EvaluateRankings(questions, rankings);

  EXPECT_EQ(from_view.num_questions, manual.num_questions);
  EXPECT_DOUBLE_EQ(from_view.mrr, manual.mrr);
  EXPECT_DOUBLE_EQ(from_view.map, manual.map);
  EXPECT_DOUBLE_EQ(from_view.average_rank, manual.average_rank);
  ASSERT_EQ(from_view.hits_at.size(), manual.hits_at.size());
  for (size_t i = 0; i < manual.hits_at.size(); ++i) {
    EXPECT_DOUBLE_EQ(from_view.hits_at[i], manual.hits_at[i]);
  }
}

TEST(PercentImprovementTest, Basics) {
  // (4->2): 50% improvement; (2->2): 0%.
  EXPECT_NEAR(AveragePercentImprovement({4.0, 2.0}, {2.0, 2.0}), 0.25,
              1e-12);
}

TEST(PercentImprovementTest, DegradationIsNegative) {
  EXPECT_NEAR(AveragePercentImprovement({2.0}, {4.0}), -1.0, 1e-12);
}

TEST(PercentImprovementTest, EmptyAndZeroRanksHandled) {
  EXPECT_DOUBLE_EQ(AveragePercentImprovement({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(AveragePercentImprovement({0.0}, {1.0}), 0.0);
}

}  // namespace
}  // namespace kgov::qa
