#include "graph/generators.h"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace kgov::graph {

namespace {

// Packs a (from, to) pair into one key for duplicate detection.
uint64_t EdgeKey(NodeId from, NodeId to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

}  // namespace

void InitializeWeights(WeightedDigraph* graph, WeightInit init, Rng& rng) {
  switch (init) {
    case WeightInit::kNormalizedRandom:
      for (EdgeId e = 0; e < graph->NumEdges(); ++e) {
        graph->SetWeight(e, rng.Uniform(0.05, 1.0));
      }
      graph->NormalizeAllOutWeights();
      break;
    case WeightInit::kUniformStochastic:
      for (NodeId node = 0; node < graph->NumNodes(); ++node) {
        size_t degree = graph->OutDegree(node);
        if (degree == 0) continue;
        for (const OutEdge& out : graph->OutEdges(node)) {
          graph->SetWeight(out.edge, 1.0 / static_cast<double>(degree));
        }
      }
      break;
  }
}

Result<WeightedDigraph> ErdosRenyi(size_t num_nodes, size_t num_edges,
                                   Rng& rng, WeightInit init) {
  if (num_nodes < 2 && num_edges > 0) {
    return Status::InvalidArgument("ErdosRenyi: too few nodes");
  }
  if (num_edges > num_nodes * (num_nodes - 1)) {
    return Status::InvalidArgument("ErdosRenyi: too many edges requested");
  }
  WeightedDigraph graph(num_nodes);
  std::unordered_set<uint64_t> used;
  used.reserve(num_edges * 2);
  while (graph.NumEdges() < num_edges) {
    NodeId from = static_cast<NodeId>(rng.NextIndex(num_nodes));
    NodeId to = static_cast<NodeId>(rng.NextIndex(num_nodes));
    if (from == to) continue;
    if (!used.insert(EdgeKey(from, to)).second) continue;
    Result<EdgeId> added = graph.AddEdge(from, to, 1.0);
    KGOV_CHECK(added.ok());
  }
  InitializeWeights(&graph, init, rng);
  return graph;
}

Result<WeightedDigraph> BarabasiAlbert(size_t num_nodes,
                                       size_t edges_per_node, Rng& rng,
                                       WeightInit init) {
  if (num_nodes < edges_per_node + 1) {
    return Status::InvalidArgument("BarabasiAlbert: num_nodes too small");
  }
  WeightedDigraph graph(num_nodes);
  // Repeated-node list trick: attachment probability proportional to
  // (in-degree + 1) by mixing a uniform pick with a pick from endpoints.
  std::vector<NodeId> endpoint_pool;
  endpoint_pool.reserve(num_nodes * edges_per_node);
  std::unordered_set<uint64_t> used;

  size_t seed_nodes = edges_per_node + 1;
  // Seed clique among the first few nodes (ring, to keep it sparse).
  for (NodeId v = 0; v < seed_nodes; ++v) {
    NodeId next = static_cast<NodeId>((v + 1) % seed_nodes);
    if (graph.AddEdge(v, next, 1.0).ok()) {
      used.insert(EdgeKey(v, next));
      endpoint_pool.push_back(next);
    }
  }

  for (NodeId v = static_cast<NodeId>(seed_nodes); v < num_nodes; ++v) {
    size_t attached = 0;
    size_t attempts = 0;
    while (attached < edges_per_node && attempts < 50 * edges_per_node) {
      ++attempts;
      NodeId target;
      if (!endpoint_pool.empty() && rng.Bernoulli(0.75)) {
        target = endpoint_pool[rng.NextIndex(endpoint_pool.size())];
      } else {
        target = static_cast<NodeId>(rng.NextIndex(v));
      }
      if (target == v) continue;
      if (!used.insert(EdgeKey(v, target)).second) continue;
      KGOV_CHECK(graph.AddEdge(v, target, 1.0).ok());
      endpoint_pool.push_back(target);
      ++attached;
    }
  }
  InitializeWeights(&graph, init, rng);
  return graph;
}

Result<WeightedDigraph> ScaleFreeWithTargetEdges(size_t num_nodes,
                                                 size_t num_edges, Rng& rng,
                                                 WeightInit init) {
  if (num_nodes == 0) {
    return Status::InvalidArgument("ScaleFreeWithTargetEdges: empty graph");
  }
  // The top-up loop below draws uniform (from, to) pairs and rejects
  // duplicates. Past half the possible edges the expected number of draws
  // per accepted edge diverges toward infinity at saturation, so refuse
  // upfront and name the limiting parameter instead of spinning.
  const size_t possible = num_nodes * (num_nodes - 1);
  if (num_edges > possible / 2) {
    return Status::InvalidArgument(
        "ScaleFreeWithTargetEdges: num_edges = " + std::to_string(num_edges) +
        " exceeds the rejection-sampling saturation cap " +
        std::to_string(possible / 2) + " (half of the " +
        std::to_string(possible) + " possible edges for num_nodes = " +
        std::to_string(num_nodes) + ")");
  }
  // Backbone: preferential attachment with about 3/4 of the edge budget.
  size_t per_node = std::max<size_t>(1, (num_edges * 3 / 4) / num_nodes);
  Result<WeightedDigraph> backbone =
      BarabasiAlbert(num_nodes, per_node, rng, WeightInit::kUniformStochastic);
  KGOV_RETURN_IF_ERROR(backbone.status());
  WeightedDigraph graph = std::move(backbone).value();

  std::unordered_set<uint64_t> used;
  used.reserve(num_edges * 2);
  for (const Edge& e : graph.edges()) {
    used.insert(EdgeKey(e.from, e.to));
  }
  // Top up with uniform random edges to hit the exact target.
  while (graph.NumEdges() < num_edges) {
    NodeId from = static_cast<NodeId>(rng.NextIndex(num_nodes));
    NodeId to = static_cast<NodeId>(rng.NextIndex(num_nodes));
    if (from == to) continue;
    if (!used.insert(EdgeKey(from, to)).second) continue;
    KGOV_CHECK(graph.AddEdge(from, to, 1.0).ok());
  }
  InitializeWeights(&graph, init, rng);
  return graph;
}

Result<WeightedDigraph> StreamingScaleFree(size_t num_nodes,
                                           size_t avg_out_degree, Rng& rng,
                                           WeightInit init) {
  if (num_nodes < 2) {
    return Status::InvalidArgument(
        "StreamingScaleFree: num_nodes must be >= 2, got " +
        std::to_string(num_nodes));
  }
  if (avg_out_degree == 0 || avg_out_degree >= num_nodes) {
    return Status::InvalidArgument(
        "StreamingScaleFree: avg_out_degree must be in [1, num_nodes), got " +
        std::to_string(avg_out_degree));
  }
  WeightedDigraph graph(num_nodes);
  graph.ReserveEdges(num_nodes * avg_out_degree);

  // Preferential attachment through a bounded endpoint pool: each accepted
  // edge records its target, and 3/4 of later draws pick uniformly from
  // the pool (probability proportional to in-degree). The pool is capped
  // so memory stays O(min(E, cap)); once full, a random slot is replaced,
  // which keeps the recent-degree bias while bounding the footprint.
  constexpr size_t kPoolCap = size_t{1} << 22;
  std::vector<NodeId> endpoint_pool;
  endpoint_pool.reserve(std::min(num_nodes * avg_out_degree, kPoolCap));

  for (NodeId v = 1; v < num_nodes; ++v) {
    const size_t want = std::min<size_t>(avg_out_degree, v);
    size_t attached = 0;
    size_t attempts = 0;
    const size_t max_attempts = 16 * avg_out_degree + 16;
    while (attached < want && attempts < max_attempts) {
      ++attempts;
      NodeId target;
      if (!endpoint_pool.empty() && rng.Bernoulli(0.75)) {
        target = endpoint_pool[rng.NextIndex(endpoint_pool.size())];
      } else {
        target = static_cast<NodeId>(rng.NextIndex(v));
      }
      if (target == v) continue;
      // Duplicate check against the source's own row: O(out-degree),
      // bounded by avg_out_degree - no global edge set.
      if (graph.FindEdge(v, target).has_value()) continue;
      KGOV_CHECK(graph.AddEdge(v, target, 1.0).ok());
      if (endpoint_pool.size() < kPoolCap) {
        endpoint_pool.push_back(target);
      } else {
        endpoint_pool[rng.NextIndex(kPoolCap)] = target;
      }
      ++attached;
    }
  }
  InitializeWeights(&graph, init, rng);
  return graph;
}

GraphProfile TwitterProfile() { return {"twitter", 23370, 33101}; }
GraphProfile DiggProfile() { return {"digg", 30398, 87627}; }
GraphProfile GnutellaProfile() { return {"gnutella", 62586, 147892}; }
GraphProfile TaobaoProfile() { return {"taobao", 1663, 17591}; }

Result<WeightedDigraph> GenerateFromProfile(const GraphProfile& profile,
                                            Rng& rng) {
  return ScaleFreeWithTargetEdges(profile.num_nodes, profile.num_edges, rng);
}

}  // namespace kgov::graph
