# Empty compiler generated dependencies file for test_signomial.
# This may be replaced when dependencies are built.
