// Quickstart: the paper's Fig. 1 scenario end to end.
//
// Builds a small knowledge graph for an email-client help desk, asks a
// question ("email stuck in outbox"), shows the ranked answers, casts a
// negative vote for the runner-up, optimizes the graph, and shows that the
// voted answer now ranks first.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/kg_optimizer.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "ppr/eipd_engine.h"
#include "ppr/query_seed.h"
#include "votes/vote.h"

using namespace kgov;

int main() {
  // ---- 1. Build the knowledge graph (entities + answer documents) ----
  // Entities: Stuck, Outbox, Email, SendMessage, Outlook.
  graph::WeightedDigraph g;
  graph::NodeId stuck = g.AddNode();
  graph::NodeId outbox = g.AddNode();
  graph::NodeId email = g.AddNode();
  graph::NodeId send = g.AddNode();
  graph::NodeId outlook = g.AddNode();
  g.SetNodeLabel(stuck, "Stuck");
  g.SetNodeLabel(outbox, "Outbox");
  g.SetNodeLabel(email, "Email");
  g.SetNodeLabel(send, "SendMessage");
  g.SetNodeLabel(outlook, "Outlook");

  // Entity relations (weights = co-occurrence conditionals, as in Fig. 1).
  (void)g.AddEdge(stuck, outbox, 0.7);
  (void)g.AddEdge(stuck, email, 0.3);
  (void)g.AddEdge(outbox, email, 0.3);
  (void)g.AddEdge(outbox, send, 0.5);
  (void)g.AddEdge(email, outbox, 0.4);
  (void)g.AddEdge(email, send, 0.6);
  (void)g.AddEdge(send, outlook, 0.3);
  (void)g.AddEdge(send, email, 0.5);

  // Answer documents, linked from the entities they cover.
  graph::NodeId a1 = g.AddNode();  // "Clear a stuck outbox"
  graph::NodeId a2 = g.AddNode();  // "Why mail stays in the outbox"
  graph::NodeId a3 = g.AddNode();  // "Configure Outlook send/receive"
  g.SetNodeLabel(a1, "doc:clear-stuck-outbox");
  g.SetNodeLabel(a2, "doc:mail-stays-in-outbox");
  g.SetNodeLabel(a3, "doc:outlook-send-receive");
  (void)g.AddEdge(outbox, a1, 0.5);
  (void)g.AddEdge(stuck, a1, 0.2);
  (void)g.AddEdge(email, a2, 0.35);
  (void)g.AddEdge(outbox, a2, 0.3);
  (void)g.AddEdge(outlook, a3, 1.0);
  g.NormalizeAllOutWeights();

  std::vector<graph::NodeId> answers{a1, a2, a3};
  size_t num_entities = 5;

  // ---- 2. Ask a question ----
  // "My email is stuck in the outbox" -> mentions Stuck, Outbox, Email
  // with equal weight (the 0.33 links of Fig. 1).
  ppr::QuerySeed question = ppr::QuerySeed::UniformOver({stuck, outbox, email});

  ppr::EipdOptions eipd;
  eipd.max_length = 5;
  graph::CsrSnapshot snapshot(g);
  ppr::EipdEngine evaluator(snapshot.View(), eipd);
  StatusOr<std::vector<ppr::ScoredAnswer>> ranked_or =
      evaluator.Rank(question, answers, 3);
  if (!ranked_or.ok()) {
    std::fprintf(stderr, "ranking failed: %s\n",
                 ranked_or.status().ToString().c_str());
    return 1;
  }
  std::vector<ppr::ScoredAnswer> ranked = std::move(ranked_or).value();

  std::printf("Ranked answers before optimization:\n");
  for (size_t i = 0; i < ranked.size(); ++i) {
    std::printf("  %zu. %-28s score %.5f\n", i + 1,
                g.NodeLabel(ranked[i].node).c_str(), ranked[i].score);
  }

  // ---- 3. The user votes: the SECOND answer was actually the best ----
  votes::Vote vote;
  vote.id = 0;
  vote.query = question;
  for (const ppr::ScoredAnswer& sa : ranked) {
    vote.answer_list.push_back(sa.node);
  }
  vote.best_answer = ranked[1].node;
  std::printf("\nUser vote: best answer is '%s' (currently rank 2)\n",
              g.NodeLabel(vote.best_answer).c_str());

  // ---- 4. Optimize the graph with the vote ----
  core::OptimizerOptions options;
  options.encoder.symbolic.eipd = eipd;
  // The judgment filter (SV) is conservative on this tiny graph - the
  // extreme condition cannot touch the fixed answer links - but the vote
  // is in fact satisfiable through the entity relations, so skip it here.
  options.apply_judgment_filter = false;
  // Only entity-entity relations are adjustable; answer links are data.
  options.encoder.is_variable = [num_entities](
                                    const graph::WeightedDigraph& gr,
                                    graph::EdgeId e) {
    return gr.edge(e).from < num_entities && gr.edge(e).to < num_entities;
  };
  core::KgOptimizer optimizer(&g, options);
  Result<core::OptimizeReport> report = optimizer.MultiVoteSolve({vote});
  if (!report.ok()) {
    std::fprintf(stderr, "optimization failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // ---- 5. Ask again on the optimized graph ----
  graph::CsrSnapshot optimized_snapshot(report->optimized);
  ppr::EipdEngine optimized_evaluator(optimized_snapshot.View(), eipd);
  std::vector<ppr::ScoredAnswer> reranked =
      optimized_evaluator.Rank(question, answers, 3).value_or({});
  std::printf("\nRanked answers after optimization:\n");
  for (size_t i = 0; i < reranked.size(); ++i) {
    std::printf("  %zu. %-28s score %.5f\n", i + 1,
                report->optimized.NodeLabel(reranked[i].node).c_str(),
                reranked[i].score);
  }

  std::printf("\nChanged relations:\n");
  for (const auto& [edge_id, delta] : report->weight_changes) {
    const graph::Edge& e = g.edge(edge_id);
    std::printf("  %-12s -> %-12s  %.3f -> %.3f\n",
                g.NodeLabel(e.from).c_str(), g.NodeLabel(e.to).c_str(),
                g.Weight(edge_id), report->optimized.Weight(edge_id));
  }

  bool success = !reranked.empty() && reranked[0].node == vote.best_answer;
  std::printf("\n%s\n", success
                            ? "SUCCESS: the voted answer now ranks first."
                            : "NOTE: the voted answer did not reach rank 1.");
  return success ? 0 : 1;
}
