file(REMOVE_RECURSE
  "CMakeFiles/test_gp_condensation.dir/test_gp_condensation.cc.o"
  "CMakeFiles/test_gp_condensation.dir/test_gp_condensation.cc.o.d"
  "test_gp_condensation"
  "test_gp_condensation.pdb"
  "test_gp_condensation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gp_condensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
