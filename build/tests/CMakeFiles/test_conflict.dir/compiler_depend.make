# Empty compiler generated dependencies file for test_conflict.
# This may be replaced when dependencies are built.
