#include "ppr/fast_eipd.h"

#include "common/logging.h"

namespace kgov::ppr {
namespace {

graph::GraphView ViewOf(const graph::CsrSnapshot* snapshot) {
  KGOV_CHECK(snapshot != nullptr);
  return snapshot->View();
}

}  // namespace

FastEipdEvaluator::FastEipdEvaluator(const graph::CsrSnapshot* snapshot,
                                     EipdOptions options)
    : engine_(ViewOf(snapshot), options) {}

}  // namespace kgov::ppr
