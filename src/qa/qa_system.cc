#include "qa/qa_system.h"

#include <unordered_map>

#include "common/logging.h"

namespace kgov::qa {

Status QaOptions::Validate() const {
  KGOV_RETURN_IF_ERROR(eipd.Validate());
  if (top_k < 1) {
    return Status::InvalidArgument("QaOptions.top_k must be >= 1, got 0");
  }
  return Status::OK();
}

ppr::QuerySeed LinkQuestion(const Question& question, size_t num_entities) {
  ppr::QuerySeed seed;
  int total = 0;
  for (const EntityMention& m : question.mentions) {
    if (m.entity < num_entities) total += m.count;
  }
  if (total <= 0) return seed;
  for (const EntityMention& m : question.mentions) {
    if (m.entity >= num_entities) continue;
    seed.links.emplace_back(
        static_cast<graph::NodeId>(m.entity),
        static_cast<double>(m.count) / static_cast<double>(total));
  }
  return seed;
}

namespace {

std::shared_ptr<const graph::CsrSnapshot> SnapshotOf(
    const graph::WeightedDigraph* graph) {
  KGOV_CHECK(graph != nullptr);
  return std::make_shared<graph::CsrSnapshot>(*graph);
}

}  // namespace

QaSystem::QaSystem(graph::GraphView view,
                   const std::vector<graph::NodeId>* answer_nodes,
                   size_t num_entities, QaOptions options)
    : answer_nodes_(answer_nodes),
      num_entities_(num_entities),
      options_(options),
      engine_(view, options.eipd) {
  KGOV_CHECK(answer_nodes_ != nullptr);
  Status valid = options_.Validate();
  KGOV_CHECK(valid.ok()) << valid.ToString();
}

QaSystem::QaSystem(const graph::WeightedDigraph* graph,
                   const std::vector<graph::NodeId>* answer_nodes,
                   size_t num_entities, QaOptions options)
    : owned_snapshot_(SnapshotOf(graph)),
      answer_nodes_(answer_nodes),
      num_entities_(num_entities),
      options_(options),
      engine_(owned_snapshot_->View(), options.eipd) {
  KGOV_CHECK(answer_nodes_ != nullptr);
  Status valid = options_.Validate();
  KGOV_CHECK(valid.ok()) << valid.ToString();
}

StatusOr<std::vector<ppr::ScoredAnswer>> QaSystem::AnswerSeed(
    const ppr::QuerySeed& seed) const {
  if (seed.empty()) return std::vector<ppr::ScoredAnswer>{};
  return engine_.Rank(seed, *answer_nodes_, options_.top_k);
}

StatusOr<std::vector<RankedDocument>> QaSystem::Answer(
    const Question& question) const {
  ppr::QuerySeed seed = LinkQuestion(question, num_entities_);
  std::vector<ppr::ScoredAnswer> ranked;
  KGOV_ASSIGN_OR_RETURN(ranked, AnswerSeed(seed));
  // Node -> document translation (answer nodes are contiguous after the
  // entities, so this is arithmetic).
  std::vector<RankedDocument> docs;
  docs.reserve(ranked.size());
  for (const ppr::ScoredAnswer& sa : ranked) {
    RankedDocument doc;
    doc.document = static_cast<int>(sa.node - num_entities_);
    doc.score = sa.score;
    docs.push_back(doc);
  }
  return docs;
}

std::vector<ppr::ScoredAnswer> QaSystem::AskSeed(
    const ppr::QuerySeed& seed) const {
  StatusOr<std::vector<ppr::ScoredAnswer>> ranked = AnswerSeed(seed);
  if (!ranked.ok()) return {};
  return std::move(ranked).value();
}

std::vector<RankedDocument> QaSystem::Ask(const Question& question) const {
  StatusOr<std::vector<RankedDocument>> docs = Answer(question);
  if (!docs.ok()) return {};
  return std::move(docs).value();
}

}  // namespace kgov::qa
