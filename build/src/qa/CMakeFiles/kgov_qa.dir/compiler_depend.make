# Empty compiler generated dependencies file for kgov_qa.
# This may be replaced when dependencies are built.
