// Plain-text persistence for vote sets, so collected feedback can be
// batched to the optimizer offline (and the kgov_cli tool can replay it).
//
// Format (one vote per line, '#' comments allowed):
//   V <id> <weight> B <best_node> A <node> <node> ... S <node>:<w> ...
// where A lists the ranked answer nodes shown to the user and S the query
// seed links.

#ifndef KGOV_VOTES_VOTES_IO_H_
#define KGOV_VOTES_VOTES_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "votes/vote.h"

namespace kgov::votes {

/// Writes `votes` to `path`.
Status SaveVotes(const std::vector<Vote>& votes, const std::string& path);

/// Reads votes written by SaveVotes.
Result<std::vector<Vote>> LoadVotes(const std::string& path);

}  // namespace kgov::votes

#endif  // KGOV_VOTES_VOTES_IO_H_
