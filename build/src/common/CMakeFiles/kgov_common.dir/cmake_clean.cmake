file(REMOVE_RECURSE
  "CMakeFiles/kgov_common.dir/logging.cc.o"
  "CMakeFiles/kgov_common.dir/logging.cc.o.d"
  "CMakeFiles/kgov_common.dir/rng.cc.o"
  "CMakeFiles/kgov_common.dir/rng.cc.o.d"
  "CMakeFiles/kgov_common.dir/status.cc.o"
  "CMakeFiles/kgov_common.dir/status.cc.o.d"
  "CMakeFiles/kgov_common.dir/string_util.cc.o"
  "CMakeFiles/kgov_common.dir/string_util.cc.o.d"
  "CMakeFiles/kgov_common.dir/thread_pool.cc.o"
  "CMakeFiles/kgov_common.dir/thread_pool.cc.o.d"
  "libkgov_common.a"
  "libkgov_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgov_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
