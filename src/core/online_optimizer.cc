#include "core/online_optimizer.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/contracts.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/timer.h"
#include "telemetry/metrics.h"

namespace kgov::core {

namespace {

// Deployment-loop telemetry; pointers resolved once.
struct OnlineMetrics {
  telemetry::Counter* flushes;
  telemetry::Counter* flush_failures;
  telemetry::Counter* rollbacks;
  telemetry::Counter* epoch_swaps;
  telemetry::Counter* votes_applied;
  telemetry::Counter* votes_quarantined;
  telemetry::Counter* dead_lettered;
  telemetry::Counter* dead_letter_evictions;
  telemetry::Counter* dead_letter_persisted;
  telemetry::Gauge* pending_votes;
  telemetry::Histogram* flush_span;

  static const OnlineMetrics& Get() {
    static const OnlineMetrics m = [] {
      telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Global();
      return OnlineMetrics{reg.GetCounter("online.flushes"),
                           reg.GetCounter("online.flush_failures"),
                           reg.GetCounter("online.rollbacks"),
                           reg.GetCounter("online.epoch_swaps"),
                           reg.GetCounter("online.votes_applied"),
                           reg.GetCounter("online.votes_quarantined"),
                           reg.GetCounter("online.dead_lettered"),
                           reg.GetCounter("online.dead_letter_evictions"),
                           reg.GetCounter("durability.dead_letter_persisted"),
                           reg.GetGauge("online.pending_votes"),
                           reg.GetHistogram("span.online.flush.seconds")};
    }();
    return m;
  }
};

}  // namespace

Status OnlineOptimizerOptions::Validate() const {
  KGOV_RETURN_IF_ERROR(optimizer.Validate());
  if (batch_size < 1) {
    return Status::InvalidArgument(
        "OnlineOptimizerOptions.batch_size must be >= 1");
  }
  if (max_vote_attempts < 1) {
    return Status::InvalidArgument(
        "OnlineOptimizerOptions.max_vote_attempts must be >= 1");
  }
  return Status::OK();
}

OnlineKgOptimizer::OnlineKgOptimizer(const graph::WeightedDigraph& initial,
                                     OnlineOptimizerOptions options)
    : options_(std::move(options)),
      options_status_(options_.Validate()),
      graph_(initial),
      serving_{std::make_shared<graph::CsrSnapshot>(graph_), 0} {
  // The validator must accept anything the optimizer may legally produce:
  // widen its weight band to cover the encoder's bounds (normalization can
  // push weights up to 1 regardless of the encoder's upper bound).
  GraphValidatorOptions& v = options_.validator;
  v.weight_lower_bound = std::min(
      v.weight_lower_bound, 0.0);  // SetWeight clamps negatives to zero
  v.weight_upper_bound =
      std::max({v.weight_upper_bound,
                options_.optimizer.encoder.weight_upper_bound, 1.0});
}

OnlineKgOptimizer::OnlineKgOptimizer(const graph::WeightedDigraph& initial,
                                     OnlineOptimizerOptions options,
                                     RestoredState restored)
    : OnlineKgOptimizer(initial, std::move(options)) {
  buffer_.reserve(restored.pending.size());
  for (votes::Vote& vote : restored.pending) {
    // Attempt counters are not checkpointed; a restored vote starts its
    // retry budget fresh rather than being dead-lettered by stale state.
    buffer_.push_back(PendingVote{std::move(vote), 0});
  }
  dead_letter_ = std::move(restored.dead_letters);
  if (dead_letter_.size() > options_.dead_letter_capacity) {
    dead_letter_.erase(dead_letter_.begin(),
                       dead_letter_.end() -
                           static_cast<ptrdiff_t>(
                               options_.dead_letter_capacity));
  }
  // Recovered dead letters came FROM the log; marking them persisted
  // prevents the destructor from re-appending (and duplicating) them.
  dead_letter_persisted_.assign(dead_letter_.size(), 1);
  MutexLock lock(serving_mu_);
  serving_.epoch = restored.epoch;
  epoch_number_.store(restored.epoch, std::memory_order_release);
}

OnlineKgOptimizer::~OnlineKgOptimizer() {
  Status persisted = PersistDeadLetters();
  if (!persisted.ok()) {
    KGOV_LOG(ERROR) << "dead-letter flush on shutdown failed: "
                    << persisted.ToString();
  }
}

Status OnlineKgOptimizer::PersistDeadLetters() {
  if (vote_log_ == nullptr) return Status::OK();
  KGOV_ASSERT(dead_letter_persisted_.size() == dead_letter_.size());
  const OnlineMetrics& metrics = OnlineMetrics::Get();
  for (size_t i = 0; i < dead_letter_.size(); ++i) {
    if (dead_letter_persisted_[i]) continue;
    KGOV_RETURN_IF_ERROR(vote_log_->AppendDeadLetter(dead_letter_[i]));
    dead_letter_persisted_[i] = 1;
    metrics.dead_letter_persisted->Increment();
  }
  return Status::OK();
}

std::vector<votes::Vote> OnlineKgOptimizer::PendingVoteList() const {
  std::vector<votes::Vote> pending;
  pending.reserve(buffer_.size());
  for (const PendingVote& entry : buffer_) pending.push_back(entry.vote);
  return pending;
}

Result<FlushReport> OnlineKgOptimizer::AddVote(votes::Vote vote) {
  KGOV_RETURN_IF_ERROR(options_status_);
  if (vote_log_ != nullptr) {
    // Durable-acknowledgement contract: the vote is logged before it is
    // buffered, so an append failure rejects the vote outright instead of
    // accepting something a crash would lose.
    KGOV_RETURN_IF_ERROR(vote_log_->AppendVote(vote));
  }
  buffer_.push_back(PendingVote{std::move(vote), 0});
  if (buffer_.size() >= options_.batch_size) {
    return Flush();
  }
  return FlushReport{};
}

size_t OnlineKgOptimizer::RequeueOrDeadLetter(
    std::vector<PendingVote> failed) {
  const OnlineMetrics& metrics = OnlineMetrics::Get();
  size_t dead = 0;
  for (PendingVote& pending : failed) {
    ++pending.attempts;
    if (pending.attempts >= options_.max_vote_attempts) {
      ++dead;
      // Persist at dead-letter time (not just on shutdown): abandonment
      // is the last chance to record the vote before a crash drops it.
      uint8_t persisted = 0;
      if (vote_log_ != nullptr) {
        Status appended = vote_log_->AppendDeadLetter(pending.vote);
        if (appended.ok()) {
          persisted = 1;
          metrics.dead_letter_persisted->Increment();
        } else {
          KGOV_LOG(WARNING) << "dead-letter append failed (will retry on "
                            << "PersistDeadLetters): " << appended.ToString();
        }
      }
      dead_letter_.push_back(std::move(pending.vote));
      dead_letter_persisted_.push_back(persisted);
    } else {
      buffer_.push_back(std::move(pending));
    }
  }
  if (dead_letter_.size() > options_.dead_letter_capacity) {
    const size_t evicted =
        dead_letter_.size() - options_.dead_letter_capacity;
    metrics.dead_letter_evictions->Increment(evicted);
    dead_letter_.erase(dead_letter_.begin(),
                       dead_letter_.begin() + static_cast<ptrdiff_t>(evicted));
    dead_letter_persisted_.erase(
        dead_letter_persisted_.begin(),
        dead_letter_persisted_.begin() + static_cast<ptrdiff_t>(evicted));
  }
  return dead;
}

Result<FlushReport> OnlineKgOptimizer::Flush() {
  KGOV_RETURN_IF_ERROR(options_status_);
  FlushReport report;
  if (buffer_.empty()) return report;
  const OnlineMetrics& metrics = OnlineMetrics::Get();
  metrics.flushes->Increment();
  telemetry::ScopedSpan flush_span(metrics.flush_span);

  std::vector<PendingVote> batch = std::move(buffer_);
  buffer_.clear();
  std::vector<votes::Vote> votes;
  votes.reserve(batch.size());
  for (const PendingVote& pending : batch) votes.push_back(pending.vote);

  Timer timer;
  KgOptimizer optimizer(&graph_, options_.optimizer);
  Result<OptimizeReport> result =
      options_.strategy == FlushStrategy::kMultiVote
          ? optimizer.MultiVoteSolve(votes)
          : optimizer.SplitMergeSolve(votes);
  if (!result.ok()) {
    // The batch is unusable this round, but the votes are NOT dropped:
    // they are re-queued (bounded by max_vote_attempts) so a later flush -
    // possibly alongside fresh votes - can retry them.
    last_flush_status_ = result.status();
    metrics.flush_failures->Increment();
    metrics.dead_lettered->Increment(RequeueOrDeadLetter(std::move(batch)));
    metrics.pending_votes->Set(static_cast<double>(buffer_.size()));
    return result.status();
  }
  OptimizeReport& opt = result.value();

  // Injection point: corrupt the optimized graph before validation, so the
  // rollback path is exercised end-to-end in tests.
  if (FaultFires(FaultSite::kGraphCorruption) &&
      opt.optimized.NumEdges() > 0) {
    opt.optimized.SetWeight(0, std::numeric_limits<double>::quiet_NaN());
  }

  if (options_.validate_updates) {
    Status valid =
        ValidateGraphUpdate(graph_, opt.optimized, options_.validator);
    if (!valid.ok()) {
      // Rollback: the serving graph and snapshot stay exactly as they
      // were; the batch is re-queued for the next flush.
      ++rollback_count_;
      last_flush_status_ = valid;
      metrics.flush_failures->Increment();
      metrics.rollbacks->Increment();
      metrics.dead_lettered->Increment(
          RequeueOrDeadLetter(std::move(batch)));
      metrics.pending_votes->Set(static_cast<double>(buffer_.size()));
      return valid;
    }
  }

  // Quarantined votes (failed clusters) are re-queued with their attempt
  // counters advanced; everything else in the batch was folded in.
  std::unordered_map<uint32_t, std::vector<int>> attempts_by_id;
  for (const PendingVote& pending : batch) {
    attempts_by_id[pending.vote.id].push_back(pending.attempts);
  }
  std::vector<PendingVote> quarantined;
  quarantined.reserve(opt.quarantined_votes.size());
  for (votes::Vote& vote : opt.quarantined_votes) {
    int attempts = 0;
    auto it = attempts_by_id.find(vote.id);
    if (it != attempts_by_id.end() && !it->second.empty()) {
      attempts = it->second.back();
      it->second.pop_back();
    }
    quarantined.push_back(PendingVote{std::move(vote), attempts});
  }

  const size_t applied = batch.size() - quarantined.size();
  graph_ = std::move(opt.optimized);
  // Build the new snapshot fully before taking the epoch lock: readers
  // only ever wait on the pointer swap, never on the optimize or the CSR
  // construction.
  PublishEpoch(std::make_shared<graph::CsrSnapshot>(graph_));
  report.votes_flushed = applied;
  report.votes_quarantined = quarantined.size();
  report.constraints_total = opt.constraints_total;
  report.constraints_satisfied = opt.constraints_satisfied;
  report.solve_attempts = opt.solve_attempts;
  report.solve_seconds = timer.ElapsedSeconds();
  total_applied_ += applied;
  report.votes_dead_lettered = RequeueOrDeadLetter(std::move(quarantined));
  last_flush_status_ = Status::OK();
  metrics.votes_applied->Increment(applied);
  metrics.votes_quarantined->Increment(report.votes_quarantined);
  metrics.dead_lettered->Increment(report.votes_dead_lettered);
  metrics.pending_votes->Set(static_cast<double>(buffer_.size()));
  return report;
}

void OnlineKgOptimizer::PublishEpoch(
    std::shared_ptr<const graph::CsrSnapshot> snapshot) {
  OnlineMetrics::Get().epoch_swaps->Increment();
  MutexLock lock(serving_mu_);
  serving_ = ServingEpoch{std::move(snapshot), serving_.epoch + 1};
  // Published after serving_ so CurrentEpochNumber() == N implies a
  // subsequent CurrentEpoch() returns epoch >= N (readers synchronize on
  // either the mutex or this release store, never on neither).
  epoch_number_.store(serving_.epoch, std::memory_order_release);
}

}  // namespace kgov::core
