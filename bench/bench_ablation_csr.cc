// Ablation: serving-path data layout (adjacency-list graph vs frozen CSR
// snapshot) for extended-inverse-P-distance query evaluation.
//
// The mutable WeightedDigraph indirects through an edge table on every
// out-edge access (the layout the optimizer needs for O(1) weight writes);
// CsrSnapshot + FastEipdEvaluator serve from contiguous (target, weight)
// pairs. This bench measures end-to-end query latency for both on the
// Taobao-scale augmented graph, plus google-benchmark microbenchmarks.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "graph/csr.h"
#include "ppr/fast_eipd.h"
#include "qa/kg_builder.h"

namespace kgov {
namespace {

struct Setup {
  qa::Corpus corpus;
  qa::KnowledgeGraph kg;
  graph::CsrSnapshot snapshot;
  std::vector<ppr::QuerySeed> seeds;
};

Setup* MakeSetup() {
  auto* setup = new Setup();
  Rng rng(3141);
  Result<qa::Corpus> corpus =
      qa::GenerateCorpus(qa::TaobaoScaleParams(), rng);
  KGOV_CHECK(corpus.ok());
  setup->corpus = std::move(corpus).value();
  Result<qa::KnowledgeGraph> kg = qa::BuildKnowledgeGraph(setup->corpus);
  KGOV_CHECK(kg.ok());
  setup->kg = std::move(kg).value();
  setup->snapshot = graph::CsrSnapshot(setup->kg.graph);

  std::vector<qa::Question> questions = qa::GenerateQuestions(
      setup->corpus, 64, qa::TaobaoScaleParams(), rng);
  for (const qa::Question& q : questions) {
    setup->seeds.push_back(qa::LinkQuestion(q, setup->kg.num_entities));
  }
  return setup;
}

Setup* GlobalSetup() {
  static Setup* setup = MakeSetup();
  return setup;
}

void BM_AdjacencyListServe(benchmark::State& state) {
  Setup* s = GlobalSetup();
  ppr::EipdOptions options;
  options.max_length = 5;
  ppr::EipdEvaluator evaluator(&s->kg.graph, options);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.RankAnswers(
        s->seeds[i % s->seeds.size()], s->kg.answer_nodes, 20));
    ++i;
  }
}
BENCHMARK(BM_AdjacencyListServe)->Unit(benchmark::kMillisecond);

void BM_CsrSnapshotServe(benchmark::State& state) {
  Setup* s = GlobalSetup();
  ppr::EipdOptions options;
  options.max_length = 5;
  ppr::FastEipdEvaluator evaluator(&s->snapshot, options);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.RankAnswers(
        s->seeds[i % s->seeds.size()], s->kg.answer_nodes, 20));
    ++i;
  }
}
BENCHMARK(BM_CsrSnapshotServe)->Unit(benchmark::kMillisecond);

void PrintSummary() {
  bench::Banner("Ablation: serving layout (adjacency list vs CSR snapshot)",
                "kgov serving-path design (DESIGN.md SS4)");
  Setup* s = GlobalSetup();
  std::printf("graph: %zu nodes, %zu edges; %zu query seeds; top-20 over "
              "%zu answers\n",
              s->kg.graph.NumNodes(), s->kg.graph.NumEdges(),
              s->seeds.size(), s->kg.answer_nodes.size());

  ppr::EipdOptions options;
  options.max_length = 5;
  ppr::EipdEvaluator slow(&s->kg.graph, options);
  ppr::FastEipdEvaluator fast(&s->snapshot, options);

  constexpr int kRounds = 3;
  Timer timer;
  for (int r = 0; r < kRounds; ++r) {
    for (const ppr::QuerySeed& seed : s->seeds) {
      benchmark::DoNotOptimize(
          slow.RankAnswers(seed, s->kg.answer_nodes, 20));
    }
  }
  double slow_seconds = timer.ElapsedSeconds();
  timer.Restart();
  for (int r = 0; r < kRounds; ++r) {
    for (const ppr::QuerySeed& seed : s->seeds) {
      benchmark::DoNotOptimize(
          fast.RankAnswers(seed, s->kg.answer_nodes, 20));
    }
  }
  double fast_seconds = timer.ElapsedSeconds();
  size_t queries = kRounds * s->seeds.size();
  std::printf("adjacency list: %.3f ms/query\nCSR snapshot:   %.3f ms/query "
              "(%.2fx)\n",
              slow_seconds / queries * 1e3, fast_seconds / queries * 1e3,
              slow_seconds / fast_seconds);
}

}  // namespace
}  // namespace kgov

int main(int argc, char** argv) {
  kgov::PrintSummary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
