#include "math/gp_condensation.h"

#include <gtest/gtest.h>

#include "math/sgp_solver.h"

namespace kgov::math {
namespace {

SgpProblem MakeSwapProblem() {
  SgpProblem problem;
  problem.AddVariable(0.3, 0.01, 1.0);
  problem.AddVariable(0.7, 0.01, 1.0);
  Signomial g;
  g.AddTerm(Monomial(1.0, {{1, 1.0}}));
  g.AddTerm(Monomial(-1.0, {{0, 1.0}}));
  problem.AddConstraint(g, "x1<=x0");
  return problem;
}

TEST(CondensationTest, SolvesSwapProblem) {
  CondensationSgpSolver solver;
  SgpSolution s = solver.Solve(MakeSwapProblem());
  ASSERT_TRUE(s.status.ok());
  EXPECT_EQ(s.satisfied_constraints, 1);
  EXPECT_GE(s.x[0], s.x[1] - 1e-6);
}

TEST(CondensationTest, MinimalMultiplicativeChangeIsSymmetric) {
  // The optimum moves both variables by the same ratio toward each other:
  // x0 * t = x1 / t  =>  t = sqrt(x1/x0) = sqrt(7/3).
  CondensationSgpSolver solver;
  SgpSolution s = solver.Solve(MakeSwapProblem());
  ASSERT_TRUE(s.status.ok());
  double expected_t = std::sqrt(0.7 / 0.3);
  EXPECT_NEAR(s.objective, expected_t, 0.05);
  EXPECT_NEAR(s.x[0], 0.3 * expected_t, 0.03);
  EXPECT_NEAR(s.x[1], 0.7 / expected_t, 0.03);
}

TEST(CondensationTest, AlreadyFeasibleStaysNearAnchor) {
  SgpProblem problem;
  problem.AddVariable(0.8, 0.01, 1.0);
  problem.AddVariable(0.2, 0.01, 1.0);
  Signomial g;  // x1 - x0 <= 0, already satisfied
  g.AddTerm(Monomial(1.0, {{1, 1.0}}));
  g.AddTerm(Monomial(-1.0, {{0, 1.0}}));
  problem.AddConstraint(g, "x1<=x0");
  CondensationSgpSolver solver;
  SgpSolution s = solver.Solve(problem);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, 1.0, 0.02);  // t ~ 1: nothing needs to move
  EXPECT_NEAR(s.x[0], 0.8, 0.02);
  EXPECT_NEAR(s.x[1], 0.2, 0.02);
}

TEST(CondensationTest, PurePosynomialConstraintInfeasible) {
  SgpProblem problem;
  problem.AddVariable(0.5, 0.01, 1.0);
  // x0 <= 0 has no negative part: unsatisfiable for positive x.
  problem.AddConstraint(Signomial(Monomial(1.0, {{0, 1.0}})), "bad");
  CondensationSgpSolver solver;
  SgpSolution s = solver.Solve(problem);
  EXPECT_TRUE(s.status.IsInfeasible());
}

TEST(CondensationTest, TrivialConstraintSkipped) {
  SgpProblem problem;
  problem.AddVariable(0.5, 0.01, 1.0);
  // -x0 <= 0: no positive part, always true.
  problem.AddConstraint(Signomial(Monomial(-1.0, {{0, 1.0}})), "trivial");
  CondensationSgpSolver solver;
  SgpSolution s = solver.Solve(problem);
  ASSERT_TRUE(s.status.ok());
  EXPECT_EQ(s.satisfied_constraints, 1);
  EXPECT_NEAR(s.x[0], 0.5, 0.02);
}

TEST(CondensationTest, MultiTermWalkConstraint) {
  // A vote-shaped constraint with multi-edge walk monomials:
  //   0.1*x0*x1 + 0.05*x2 - 0.08*x3*x4 <= 0.
  SgpProblem problem;
  for (int i = 0; i < 5; ++i) problem.AddVariable(0.5, 0.01, 1.0);
  Signomial g;
  g.AddTerm(Monomial(0.1, {{0, 1.0}, {1, 1.0}}));
  g.AddTerm(Monomial(0.05, {{2, 1.0}}));
  g.AddTerm(Monomial(-0.08, {{3, 1.0}, {4, 1.0}}));
  problem.AddConstraint(g, "walks");
  CondensationSgpSolver solver;
  SgpSolution s = solver.Solve(problem);
  ASSERT_TRUE(s.status.ok());
  EXPECT_EQ(s.satisfied_constraints, 1);
  EXPECT_LE(g.Evaluate(s.x), 1e-6);
}

TEST(CondensationTest, AgreesWithReducedSigmoidOnSatisfiability) {
  SgpProblem problem = MakeSwapProblem();
  CondensationSgpSolver condensation;
  SgpSolution a = condensation.Solve(problem);

  SgpSolverOptions options;
  options.formulation = SgpFormulation::kReducedSigmoid;
  SgpSolution b = SgpSolver(options).Solve(problem);

  EXPECT_EQ(a.satisfied_constraints, b.satisfied_constraints);
  // Both flip the ordering (different proximal notions, same feasibility).
  EXPECT_GE(a.x[0], a.x[1] - 1e-6);
  EXPECT_GE(b.x[0], b.x[1] - 1e-6);
}

TEST(CondensationTest, SolutionInsideBox) {
  CondensationSgpSolver solver;
  SgpSolution s = solver.Solve(MakeSwapProblem());
  for (double v : s.x) {
    EXPECT_GE(v, 0.01 - 1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace kgov::math
