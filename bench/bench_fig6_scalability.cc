// Figure 6: scalability and effectiveness of the optimization strategies
// on the three large graphs (Twitter, Digg, Gnutella profiles).
//
// (a-c) elapsed time vs number of votes {10,30,50,100,150,200} for the
//       single-vote solution, the basic multi-vote solution, the
//       split-and-merge (S-M) strategy, and distributed S-M (thread pool
//       standing in for the paper's 4 machines).
// (d-f) Omega_avg for single-vote, multi-vote and S-M.
//
// Paper shape: multi-vote time explodes with votes (OOM past ~70 on
// Twitter); S-M is >= 6x faster at scale; distributed S-M is another
// order of magnitude faster; S-M's Omega_avg is close to (or better than)
// the basic multi-vote solution, and both beat single-vote.
//
// The basic multi-vote solve is capped at 100 votes here (mirroring the
// paper's memory cutoff) to keep the harness's runtime bounded.

#include <algorithm>
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/scoring.h"
#include "graph/source.h"
#include "votes/vote_generator.h"

namespace kgov {
namespace {

constexpr size_t kMaxVotes = 200;
constexpr size_t kMultiVoteCap = 150;
constexpr size_t kWorkers = 4;  // the paper used four machines

struct MethodResult {
  double seconds = -1.0;  // <0: not run
  double omega = 0.0;
};

int RunGraph(const graph::GraphProfile& profile, uint64_t seed) {
  std::printf("\n--- %s profile: %zu nodes, %zu edges ---\n",
              profile.name.c_str(), profile.num_nodes, profile.num_edges);

  Result<graph::WeightedDigraph> base =
      graph::LoadGraph(graph::GraphSource::Profile(profile.name, seed));
  if (!base.ok()) {
    std::fprintf(stderr, "graph generation failed\n");
    return 1;
  }
  Rng rng(seed + 1000);  // workload stream, separate from the generator's

  votes::SyntheticVoteParams params;  // paper defaults (SVII-A)
  params.num_queries = kMaxVotes;
  params.num_answers = 2379;
  params.subgraph_nodes = 10000;
  params.top_k = 20;
  params.avg_negative_rank = 10.0;
  // The paper picks the voted best answer uniformly from the top-k list,
  // which makes ~19/20 of the votes negative (and NaveN ~ 10).
  params.negative_fraction = 0.95;
  Result<votes::SyntheticWorkload> workload =
      votes::GenerateSyntheticWorkload(*base, params, rng);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  core::OptimizerOptions options;
  options.encoder.symbolic.eipd.max_length = 5;
  options.encoder.symbolic.min_path_mass = 1e-8;
  options.encoder.is_variable = workload->EntityEdgePredicate();
  options.apply_judgment_filter = true;
  // Paper-faithful settings: Algorithm 1 verbatim for single-vote, and the
  // exact deviation-variable formulation of Eq. 15 for the multi-vote
  // machinery (kgov's faster reduced form is benched in bench_ablation_forms).
  options.single_vote_refine_rounds = 1;
  options.sgp.formulation = math::SgpFormulation::kDeviationVariables;
  // Bounded solver effort keeps the sweep's wall time manageable on one
  // core without changing the relative shapes.
  options.sgp.continuation_steps = 3;
  options.sgp.inner.max_iterations = 250;
  options.sgp.auglag.max_outer_iterations = 12;

  core::KgOptimizer optimizer(&workload->graph, options);

  bench::TablePrinter table(
      {"#votes", "single", "multi", "S-M", "dS-M(sim)", "| omega:", "single",
       "multi", "S-M"},
      {7, 9, 9, 9, 9, 8, 7, 7, 7});
  table.PrintHeader();

  for (size_t n : {10u, 30u, 50u, 100u, 150u, 200u}) {
    std::vector<votes::Vote> votes(workload->votes.begin(),
                                   workload->votes.begin() + n);
    MethodResult single, multi, sm, dsm;
    Timer timer;

    timer.Restart();
    Result<core::OptimizeReport> r_single = optimizer.SingleVoteSolve(votes);
    single.seconds = timer.ElapsedSeconds();
    if (r_single.ok()) {
      single.omega = core::EvaluateOmega(r_single->optimized, votes,
                                         options.encoder.symbolic.eipd)
                         .average;
    }

    if (n <= kMultiVoteCap) {
      timer.Restart();
      Result<core::OptimizeReport> r_multi = optimizer.MultiVoteSolve(votes);
      multi.seconds = timer.ElapsedSeconds();
      if (r_multi.ok()) {
        multi.omega = core::EvaluateOmega(r_multi->optimized, votes,
                                          options.encoder.symbolic.eipd)
                          .average;
      }
    }

    timer.Restart();
    Result<core::OptimizeReport> r_sm = optimizer.SplitMergeSolve(votes);
    sm.seconds = timer.ElapsedSeconds();
    if (r_sm.ok()) {
      sm.omega = core::EvaluateOmega(r_sm->optimized, votes,
                                     options.encoder.symbolic.eipd)
                     .average;

      // Distributed S-M: this host has a single core, so a thread pool
      // cannot show real parallel gains (DistributedSplitMergeSolve is
      // exercised by the test suite and usable on multicore hosts).
      // Instead report the simulated 4-machine makespan from the same
      // run's measured per-cluster solve times (LPT assignment), matching
      // the paper's 4-computer setup.
      std::vector<double> times = r_sm->cluster_seconds;
      std::sort(times.begin(), times.end(), std::greater<double>());
      std::vector<double> machines(kWorkers, 0.0);
      for (double t : times) {
        *std::min_element(machines.begin(), machines.end()) += t;
      }
      dsm.seconds = r_sm->encode_seconds +
                    *std::max_element(machines.begin(), machines.end());
    }

    auto cell = [](const MethodResult& m) {
      return m.seconds < 0 ? std::string("-") : FormatDuration(m.seconds);
    };
    table.PrintRow({std::to_string(n), cell(single), cell(multi), cell(sm),
                    cell(dsm), "|", bench::Num(single.omega),
                    multi.seconds < 0 ? std::string("-")
                                      : bench::Num(multi.omega),
                    bench::Num(sm.omega)});
  }
  std::printf(
      "('multi' capped at %zu votes, mirroring the paper's memory cutoff; "
      "dist S-M uses %zu workers)\n",
      kMultiVoteCap, kWorkers);
  return 0;
}

int Run() {
  bench::Banner("Figure 6: #votes vs elapsed time and Omega_avg",
                "Fig. 6(a)-(f) (SVII-D)");
  if (RunGraph(graph::TwitterProfile(), 61) != 0) return 1;
  if (RunGraph(graph::DiggProfile(), 62) != 0) return 1;
  if (RunGraph(graph::GnutellaProfile(), 63) != 0) return 1;
  std::printf(
      "\nPaper shape: multi-vote time grows super-linearly with votes; S-M "
      "is\n>=6x faster past ~70 votes; distributed S-M roughly another "
      "order of\nmagnitude; Omega_avg of S-M is close to or above "
      "multi-vote, both above\nsingle-vote.\n");
  return 0;
}

}  // namespace
}  // namespace kgov

int main() { return kgov::Run(); }
