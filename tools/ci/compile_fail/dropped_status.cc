// Compile-FAIL demo: silently dropping a Status must not build.
//
// tools/ci/analyze.sh compiles this file expecting failure; if it ever
// compiles, the [[nodiscard]] + -Werror=unused-result gate has regressed
// (someone removed the attribute from common/status.h or the flag from
// the root CMakeLists) and the analyze step fails the build.

#include "common/status.h"

namespace {

kgov::Status MightFail() { return kgov::Status::Internal("boom"); }

kgov::StatusOr<int> MightFailWithValue() {
  return kgov::Status::Internal("boom");
}

}  // namespace

int main() {
  MightFail();           // dropped Status: must be a compile error
  MightFailWithValue();  // dropped StatusOr: must be a compile error
  return 0;
}
