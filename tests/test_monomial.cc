#include "math/monomial.h"

#include <gtest/gtest.h>

#include <cmath>

namespace kgov::math {
namespace {

TEST(MonomialTest, ConstantTerm) {
  Monomial m(2.5);
  EXPECT_TRUE(m.IsConstant());
  EXPECT_EQ(m.Degree(), 0.0);
  EXPECT_EQ(m.Evaluate({}), 2.5);
  EXPECT_EQ(m.MaxVarId(), -1);
}

TEST(MonomialTest, SingleVariableEvaluation) {
  Monomial m(3.0, {{0, 2.0}});  // 3 x0^2
  EXPECT_EQ(m.Evaluate({2.0}), 12.0);
  EXPECT_EQ(m.Evaluate({0.0}), 0.0);
}

TEST(MonomialTest, MultiVariableEvaluation) {
  Monomial m(0.5, {{0, 1.0}, {2, 3.0}});  // 0.5 x0 x2^3
  EXPECT_DOUBLE_EQ(m.Evaluate({2.0, 99.0, 2.0}), 0.5 * 2.0 * 8.0);
}

TEST(MonomialTest, PowersAreSortedAndMerged) {
  Monomial m(1.0, {{3, 1.0}, {1, 2.0}, {3, 2.0}});
  ASSERT_EQ(m.powers().size(), 2u);
  EXPECT_EQ(m.powers()[0].first, 1u);
  EXPECT_EQ(m.powers()[0].second, 2.0);
  EXPECT_EQ(m.powers()[1].first, 3u);
  EXPECT_EQ(m.powers()[1].second, 3.0);
}

TEST(MonomialTest, ZeroExponentsDropped) {
  Monomial m(1.0, {{0, 1.0}, {1, 0.0}});
  EXPECT_EQ(m.powers().size(), 1u);
  EXPECT_EQ(m.ExponentOf(1), 0.0);
}

TEST(MonomialTest, CancellingExponentsDropped) {
  Monomial m(1.0, {{2, 1.0}, {2, -1.0}});
  EXPECT_TRUE(m.IsConstant());
}

TEST(MonomialTest, ExponentOf) {
  Monomial m(1.0, {{1, 2.0}, {5, 1.0}});
  EXPECT_EQ(m.ExponentOf(1), 2.0);
  EXPECT_EQ(m.ExponentOf(5), 1.0);
  EXPECT_EQ(m.ExponentOf(0), 0.0);
  EXPECT_EQ(m.ExponentOf(9), 0.0);
}

TEST(MonomialTest, Degree) {
  Monomial m(1.0, {{0, 2.0}, {1, 1.5}});
  EXPECT_DOUBLE_EQ(m.Degree(), 3.5);
}

TEST(MonomialTest, GradientSimple) {
  // f = 3 x0^2 -> df/dx0 = 6 x0.
  Monomial m(3.0, {{0, 2.0}});
  std::vector<double> grad(1, 0.0);
  m.AccumulateGradient({2.0}, 1.0, &grad);
  EXPECT_DOUBLE_EQ(grad[0], 12.0);
}

TEST(MonomialTest, GradientProductRule) {
  // f = x0 * x1 -> df/dx0 = x1, df/dx1 = x0.
  Monomial m(1.0, {{0, 1.0}, {1, 1.0}});
  std::vector<double> grad(2, 0.0);
  m.AccumulateGradient({3.0, 4.0}, 1.0, &grad);
  EXPECT_DOUBLE_EQ(grad[0], 4.0);
  EXPECT_DOUBLE_EQ(grad[1], 3.0);
}

TEST(MonomialTest, GradientAtZeroIsWellDefined) {
  // f = x0 * x1 at x0 = 0: df/dx1 = 0, df/dx0 = x1 (must not be NaN).
  Monomial m(1.0, {{0, 1.0}, {1, 1.0}});
  std::vector<double> grad(2, 0.0);
  m.AccumulateGradient({0.0, 5.0}, 1.0, &grad);
  EXPECT_DOUBLE_EQ(grad[0], 5.0);
  EXPECT_DOUBLE_EQ(grad[1], 0.0);
}

TEST(MonomialTest, GradientScaleApplies) {
  Monomial m(2.0, {{0, 1.0}});
  std::vector<double> grad(1, 1.0);  // pre-existing content preserved
  m.AccumulateGradient({7.0}, 0.5, &grad);
  EXPECT_DOUBLE_EQ(grad[0], 1.0 + 0.5 * 2.0);
}

TEST(MonomialTest, GradientMatchesFiniteDifference) {
  Monomial m(0.7, {{0, 2.0}, {1, 1.0}, {2, 3.0}});
  std::vector<double> x{1.3, 0.8, 1.1};
  std::vector<double> grad(3, 0.0);
  m.AccumulateGradient(x, 1.0, &grad);
  const double h = 1e-6;
  for (size_t i = 0; i < x.size(); ++i) {
    std::vector<double> xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    double numeric = (m.Evaluate(xp) - m.Evaluate(xm)) / (2 * h);
    EXPECT_NEAR(grad[i], numeric, 1e-5);
  }
}

TEST(MonomialTest, Scaled) {
  Monomial m(2.0, {{0, 1.0}});
  Monomial s = m.Scaled(-0.5);
  EXPECT_DOUBLE_EQ(s.coefficient(), -1.0);
  EXPECT_EQ(s.powers(), m.powers());
}

TEST(MonomialTest, ProductMultipliesCoefficientsAddsExponents) {
  Monomial a(2.0, {{0, 1.0}});
  Monomial b(3.0, {{0, 2.0}, {1, 1.0}});
  Monomial p = a * b;
  EXPECT_DOUBLE_EQ(p.coefficient(), 6.0);
  EXPECT_DOUBLE_EQ(p.ExponentOf(0), 3.0);
  EXPECT_DOUBLE_EQ(p.ExponentOf(1), 1.0);
}

TEST(MonomialTest, MultiplyByPower) {
  Monomial m(1.0, {{0, 1.0}});
  m.MultiplyByPower(0, 1.0);
  m.MultiplyByPower(2, 2.0);
  EXPECT_DOUBLE_EQ(m.ExponentOf(0), 2.0);
  EXPECT_DOUBLE_EQ(m.ExponentOf(2), 2.0);
  EXPECT_EQ(m.MaxVarId(), 2);
}

TEST(MonomialTest, ToStringReadable) {
  Monomial m(0.25, {{3, 2.0}, {7, 1.0}});
  EXPECT_EQ(m.ToString(), "0.25*x3^2*x7");
}

TEST(MonomialTest, EqualityIsStructural) {
  EXPECT_EQ(Monomial(1.0, {{0, 1.0}}), Monomial(1.0, {{0, 1.0}}));
  EXPECT_FALSE(Monomial(1.0, {{0, 1.0}}) == Monomial(2.0, {{0, 1.0}}));
  EXPECT_FALSE(Monomial(1.0, {{0, 1.0}}) == Monomial(1.0, {{1, 1.0}}));
}

}  // namespace
}  // namespace kgov::math
