// Wall-clock timing helpers used by benchmark harnesses and the optimizer's
// self-reporting.

#ifndef KGOV_COMMON_TIMER_H_
#define KGOV_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace kgov {

/// Measures elapsed wall time from construction (or the last Restart).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since the epoch.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since the epoch.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since the epoch.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop windows (e.g. total solver
/// time excluding setup).
///
/// Window semantics (telemetry::ScopedSpan and the stage timers are built
/// on these, so they are pinned down by tests/test_timer.cc):
///  * Start() on a running watch is a NO-OP: the open window keeps its
///    original epoch and is NOT restarted. Exactly one window is ever
///    open.
///  * Stop() on a stopped watch is a no-op.
///  * Reset() DISCARDS any open window (its elapsed time never reaches
///    the total) and zeroes the accumulated total; the watch is stopped
///    afterwards. To drop only the open window, call Reset() and re-add
///    nothing; to keep it, Stop() first.
///  * TotalSeconds() includes the open window's elapsed time, so it is
///    monotone while running and stable while stopped.
class StopWatch {
 public:
  void Start() {
    if (!running_) {
      timer_.Restart();
      running_ = true;
    }
  }

  void Stop() {
    if (running_) {
      accumulated_ += timer_.ElapsedSeconds();
      running_ = false;
    }
  }

  /// Stops the watch, discarding the open window, and zeroes the total.
  void Reset() {
    accumulated_ = 0.0;
    running_ = false;
  }

  /// True between Start() and the next Stop()/Reset().
  bool IsRunning() const { return running_; }

  /// Total accumulated seconds, including the open window if running.
  double TotalSeconds() const {
    return accumulated_ + (running_ ? timer_.ElapsedSeconds() : 0.0);
  }

 private:
  Timer timer_;
  double accumulated_ = 0.0;
  bool running_ = false;
};

}  // namespace kgov

#endif  // KGOV_COMMON_TIMER_H_
