// Virtual query nodes.
//
// The paper links each query q to the knowledge graph with weights
// w(vq, vi) = #(q, vi) / sum_j #(q, vj) (SIII-A). Rather than mutating the
// shared graph per query, kgov represents a query as a seed distribution
// over entity nodes; every similarity routine accepts a QuerySeed and
// treats its links as the first hop of each random-walk path.

#ifndef KGOV_PPR_QUERY_SEED_H_
#define KGOV_PPR_QUERY_SEED_H_

#include <utility>
#include <vector>

#include "graph/graph.h"

namespace kgov::ppr {

/// A query's links into the graph: (entity node, first-hop weight) pairs.
struct QuerySeed {
  std::vector<std::pair<graph::NodeId, double>> links;

  /// Seed equivalent to starting walks at physical node `node`: one link
  /// per out-edge of `node`, carrying the edge weight.
  static QuerySeed FromNode(const graph::WeightedDigraph& graph,
                            graph::NodeId node);

  /// Uniform links to the given entities (weight 1/n each), mirroring the
  /// paper's equal-frequency example (all 0.33 in Fig. 1).
  static QuerySeed UniformOver(const std::vector<graph::NodeId>& entities);

  /// Scales link weights to sum to 1 (no-op when the total is 0).
  void Normalize();

  /// Sum of link weights.
  double TotalWeight() const;

  bool empty() const { return links.empty(); }
};

}  // namespace kgov::ppr

#endif  // KGOV_PPR_QUERY_SEED_H_
