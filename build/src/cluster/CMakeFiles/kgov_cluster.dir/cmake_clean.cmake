file(REMOVE_RECURSE
  "CMakeFiles/kgov_cluster.dir/affinity_propagation.cc.o"
  "CMakeFiles/kgov_cluster.dir/affinity_propagation.cc.o.d"
  "CMakeFiles/kgov_cluster.dir/merge.cc.o"
  "CMakeFiles/kgov_cluster.dir/merge.cc.o.d"
  "CMakeFiles/kgov_cluster.dir/vote_similarity.cc.o"
  "CMakeFiles/kgov_cluster.dir/vote_similarity.cc.o.d"
  "libkgov_cluster.a"
  "libkgov_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgov_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
