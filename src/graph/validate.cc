#include "graph/validate.h"

#include <cmath>
#include <string>
#include <unordered_set>

#include "common/contracts.h"
#include "common/status.h"

namespace kgov::graph {

Status ValidateCsr(const GraphView& view) {
  const size_t num_nodes = view.NumNodes();
  if (num_nodes == 0) return Status::OK();

  // Offset monotonicity and contiguity, expressed through the pointer
  // ranges the view hands out (the offsets array itself is private).
  const GraphView::Neighbor* const base = view.begin(0);
  const GraphView::Neighbor* prev_end = base;
  for (NodeId v = 0; v < num_nodes; ++v) {
    const GraphView::Neighbor* row_begin = view.begin(v);
    const GraphView::Neighbor* row_end = view.end(v);
    if (row_begin != prev_end) {
      return Status::Internal("csr offsets not contiguous at node " +
                              std::to_string(v));
    }
    if (row_end < row_begin) {
      return Status::Internal("csr offsets not monotone at node " +
                              std::to_string(v));
    }
    prev_end = row_end;
  }
  if (static_cast<size_t>(prev_end - base) != view.NumEdges()) {
    return Status::Internal(
        "csr neighbor total disagrees with NumEdges(): rows cover " +
        std::to_string(prev_end - base) + " slots, NumEdges() reports " +
        std::to_string(view.NumEdges()));
  }

  // Targets in range, weights finite and non-negative.
  for (NodeId v = 0; v < num_nodes; ++v) {
    size_t slot = 0;
    for (const GraphView::Neighbor* n = view.begin(v); n != view.end(v);
         ++n, ++slot) {
      if (!view.IsValidNode(n->to)) {
        return Status::Internal(
            "csr target out of range: node " + std::to_string(v) + " slot " +
            std::to_string(slot) + " points to " + std::to_string(n->to) +
            " (graph has " + std::to_string(num_nodes) + " nodes)");
      }
      if (!std::isfinite(n->weight) || n->weight < 0.0) {
        return Status::Internal("csr weight invalid: node " +
                                std::to_string(v) + " slot " +
                                std::to_string(slot) + " has weight " +
                                std::to_string(n->weight));
      }
    }
  }

  // Edge-id remap injectivity: a duplicated id would make EdgeId-keyed
  // weight overrides hit two CSR slots at once.
  if (view.HasEdgeIds()) {
    std::unordered_set<EdgeId> seen;
    seen.reserve(view.NumEdges());
    for (NodeId v = 0; v < num_nodes; ++v) {
      const EdgeId* ids = view.edge_ids(v);
      const size_t degree = view.OutDegree(v);
      for (size_t slot = 0; slot < degree; ++slot) {
        if (!seen.insert(ids[slot]).second) {
          return Status::Internal("csr edge-id remap not injective: id " +
                                  std::to_string(ids[slot]) +
                                  " appears twice (second at node " +
                                  std::to_string(v) + " slot " +
                                  std::to_string(slot) + ")");
        }
      }
    }
  }
  return Status::OK();
}

namespace internal {

void DebugValidateView(const GraphView& view) {
  KGOV_CHECK_OK(ValidateCsr(view));
}

}  // namespace internal
}  // namespace kgov::graph
