#include "common/thread_pool.h"

#include <exception>
#include <stdexcept>
#include <string>

#include "common/fault_injection.h"
#include "common/logging.h"

namespace kgov {

namespace {

// Identity of the worker thread currently running: which pool it belongs
// to and its index there. Both are needed — an index alone would be
// ambiguous when tasks of one pool construct another pool.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  size_t index = ThreadPool::kNotAWorker;
};

thread_local WorkerIdentity current_worker;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  cv_.NotifyAll();
  for (auto& worker : workers_) {
    worker.join();
  }
}

size_t ThreadPool::StrayExceptionCount() const {
  MutexLock lock(mu_);
  return stray_exceptions_;
}

size_t ThreadPool::CurrentWorkerIndex() const {
  return current_worker.pool == this ? current_worker.index : kNotAWorker;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  current_worker = WorkerIdentity{this, worker_index};
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      lock.Wait(cv_, [this]() KGOV_REQUIRES(mu_) {
        return shutting_down_ || !queue_.empty();
      });
      if (queue_.empty()) {
        // shutting_down_ && empty queue: drain complete.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Submit wraps tasks in packaged_task, which captures exceptions into
    // the future; anything escaping here would otherwise terminate the
    // process via the noexcept thread entry. Swallow and count instead.
    // The counter update takes mu_, but the log line is emitted outside
    // it: holding the queue lock across the logging sink would serialize
    // every queue pop and Submit on stderr I/O (and trip the lint gate's
    // no-log-under-lock rule).
    std::string stray_message;
    try {
      task();
    } catch (const std::exception& e) {
      stray_message = std::string("thread pool task escaped its wrapper: ") +
                      e.what();
    } catch (...) {
      stray_message = "thread pool task escaped its wrapper";
    }
    if (!stray_message.empty()) {
      {
        MutexLock lock(mu_);
        ++stray_exceptions_;
      }
      KGOV_LOG(ERROR) << stray_message;
    }
  }
}

namespace {

// One guarded iteration: runs fn(i), capturing any exception (including the
// kTaskFailure injection) into the shared failure state.
void GuardedCall(const std::function<void(size_t)>& fn, size_t i,
                 std::vector<char>* failed, Mutex* mu,
                 Status* first_error) {
  try {
    if (FaultFires(FaultSite::kTaskFailure)) {
      throw std::runtime_error("injected task failure (iteration " +
                               std::to_string(i) + ")");
    }
    fn(i);
  } catch (const std::exception& e) {
    MutexLock lock(*mu);
    (*failed)[i] = 1;
    if (first_error->ok()) {
      *first_error = Status::Internal("parallel task " + std::to_string(i) +
                                      " threw: " + e.what());
    }
  } catch (...) {
    MutexLock lock(*mu);
    (*failed)[i] = 1;
    if (first_error->ok()) {
      *first_error = Status::Internal("parallel task " + std::to_string(i) +
                                      " threw a non-std exception");
    }
  }
}

}  // namespace

Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<void(size_t)>& fn,
                   std::vector<char>* failed) {
  failed->assign(n, 0);
  Mutex mu{KGOV_LOCK_RANK(kParallelForState)};
  Status first_error;
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      GuardedCall(fn, i, failed, &mu, &first_error);
    }
    return first_error;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(pool->Submit(
        [&fn, i, failed, &mu, &first_error]() {
          GuardedCall(fn, i, failed, &mu, &first_error);
        }));
  }
  for (auto& f : futures) f.get();
  return first_error;
}

Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<void(size_t)>& fn) {
  std::vector<char> failed;
  return ParallelFor(pool, n, fn, &failed);
}

}  // namespace kgov
