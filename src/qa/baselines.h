// Comparison systems from the paper's Table V / Table VI:
//
//  * IrBaseline    - information-retrieval approach: ranks documents by the
//                    coincidence rate of question and document entities.
//  * RandomWalkQa  - the KG-based Q&A of Yang et al. [5]: similarity per
//                    (question, answer) pair by solving the random-walk
//                    linear equation group; equivalent scores to PPR, but
//                    cost linear in the number of answers.

#ifndef KGOV_QA_BASELINES_H_
#define KGOV_QA_BASELINES_H_

#include <memory>
#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "ppr/ppr.h"
#include "qa/corpus.h"
#include "qa/qa_system.h"

namespace kgov::qa {

class IrBaseline {
 public:
  /// `corpus` is borrowed.
  explicit IrBaseline(const Corpus* corpus);

  /// Top-k documents by entity-coincidence rate
  /// |Q n D| / |Q u D| over the distinct entity sets.
  std::vector<RankedDocument> Ask(const Question& question, size_t k) const;

 private:
  const Corpus* corpus_;
};

class RandomWalkQa {
 public:
  /// Serves from `view` (the same augmented graph as QaSystem). The view's
  /// backing storage and `answer_nodes` must outlive the baseline.
  RandomWalkQa(graph::GraphView view,
               const std::vector<graph::NodeId>* answer_nodes,
               size_t num_entities, ppr::PprOptions options = {},
               size_t top_k = 20);

  /// Compatibility: freezes a CSR snapshot of `graph` at construction and
  /// serves from it.
  RandomWalkQa(const graph::WeightedDigraph* graph,
               const std::vector<graph::NodeId>* answer_nodes,
               size_t num_entities, ppr::PprOptions options = {},
               size_t top_k = 20);

  /// Top-k documents; each answer's score is a separate linear-system
  /// solve (the baseline's cost model). Use this form when *timing* the
  /// baseline (Table VI).
  std::vector<RankedDocument> Ask(const Question& question) const;

  /// Same ranking via a single system solve per question. PPR scores are
  /// identical either way (the per-answer resolves of Ask() are the cost
  /// model, not a different similarity), so accuracy experiments
  /// (Table V) can use this fast path.
  std::vector<RankedDocument> AskFast(const Question& question) const;

 private:
  std::shared_ptr<const graph::CsrSnapshot> owned_snapshot_;
  graph::GraphView view_;
  const std::vector<graph::NodeId>* answer_nodes_;
  size_t num_entities_;
  ppr::PprOptions options_;
  size_t top_k_;
  ppr::RandomWalkBaseline walker_;
};

}  // namespace kgov::qa

#endif  // KGOV_QA_BASELINES_H_
