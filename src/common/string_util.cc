#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace kgov {

std::vector<std::string> SplitString(std::string_view input,
                                     std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    bool at_delim =
        i == input.size() || delims.find(input[i]) != std::string_view::npos;
    if (at_delim) {
      if (i > start) out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fmin", seconds / 60.0);
  }
  return std::string(buf);
}

}  // namespace kgov
