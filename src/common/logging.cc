#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/thread_annotations.h"

namespace kgov {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

// Serializes whole-line emission so concurrent threads do not interleave.
Mutex& EmitMutex() {
  static Mutex mu{KGOV_LOCK_RANK(kLogging)};
  return mu;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    MutexLock lock(EmitMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace kgov
