// Runtime telemetry for the solve and serving pipelines: a process-wide
// MetricRegistry of named counters, gauges, and fixed-bucket latency
// histograms, plus RAII ScopedSpan stage timers built on common/timer.h.
//
// Design constraints (see docs/observability.md):
//  * Hot-path cost must be a handful of relaxed atomic ops: counters and
//    histogram bucket updates are lock-free; only the bounded percentile
//    reservoir takes a (tiny, per-histogram) mutex.
//  * Metric objects are never removed once registered, so instrumentation
//    sites may cache the returned pointer in a function-local static and
//    skip the registry lookup forever after. Reset() zeroes values but
//    keeps every registration (and thus every cached pointer) valid.
//  * Snapshots are JSON, with histogram p50/p95/p99 computed from a
//    bounded reservoir of recent samples via math::Percentile.
//
// Naming scheme: dot-separated lowercase paths, `<subsystem>.<detail>`
// (e.g. "sgp.solver.iterations"). Stage spans are histograms named
// "span.<stage path>.seconds" and are what ScopedSpan records into.

#ifndef KGOV_TELEMETRY_METRICS_H_
#define KGOV_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/timer.h"

namespace kgov::telemetry {

/// Monotonically increasing event count. Lock-free; exact under any
/// number of concurrent writers.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, epoch numbers).
/// Concurrent up/down tracking (in-flight counts) must go through Add():
/// the read-modify-write is a CAS loop, so interleaved +1/-1 from many
/// threads can never publish a stale depth the way Set(load()+1) can.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  /// Atomically adds `delta` (exact under any number of concurrent
  /// writers; use for queue depths instead of Set-of-a-read).
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket layout and reservoir size for a Histogram. Bounds are upper
/// edges in ascending order; an implicit +inf bucket catches the rest.
struct HistogramOptions {
  std::vector<double> bucket_bounds;
  /// Samples retained for percentile estimation. Once full the reservoir
  /// wraps (a ring of the most recent samples).
  size_t reservoir_capacity = 4096;

  /// Checks every field (finite bounds, non-zero reservoir); returns
  /// InvalidArgument naming the first offending field. Checked (debug
  /// builds) when a histogram is first registered under a name.
  Status Validate() const;
};

/// 26 exponential latency buckets from 1us to ~30s, the default for
/// span/latency histograms.
const std::vector<double>& DefaultLatencyBuckets();

/// Everything a histogram knows at one instant.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<double> bucket_bounds;
  std::vector<uint64_t> bucket_counts;  // one extra trailing +inf bucket
};

/// Fixed-bucket histogram with a bounded percentile reservoir. Observe()
/// is one branchless-ish bucket search plus four relaxed atomics and a
/// short critical section appending to the reservoir ring.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options);

  void Observe(double value) KGOV_EXCLUDES(reservoir_mu_);

  /// Count of observations so far (exact).
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  HistogramSnapshot Snapshot() const KGOV_EXCLUDES(reservoir_mu_);

  void Reset() KGOV_EXCLUDES(reservoir_mu_);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // +/-inf sentinels; Snapshot() reports 0 for an empty histogram.
  std::atomic<double> min_;
  std::atomic<double> max_;

  mutable Mutex reservoir_mu_{KGOV_LOCK_RANK(kTelemetryReservoir)};
  /// Ring buffer of recent samples.
  std::vector<double> reservoir_ KGOV_GUARDED_BY(reservoir_mu_);
  size_t reservoir_next_ KGOV_GUARDED_BY(reservoir_mu_) = 0;
  size_t reservoir_capacity_;  // immutable after construction
};

/// Process-wide metric registry. GetX() registers on first use and
/// returns a pointer that stays valid for the process lifetime; callers
/// on hot paths should cache it (function-local static). All methods are
/// thread-safe.
class MetricRegistry {
 public:
  static MetricRegistry& Global();

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(const std::string& name) KGOV_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) KGOV_EXCLUDES(mu_);
  /// `options` applies only on first registration of `name`.
  Histogram* GetHistogram(const std::string& name,
                          const HistogramOptions& options = {
                              DefaultLatencyBuckets()}) KGOV_EXCLUDES(mu_);

  /// Zeroes every metric's value. Registrations (and cached pointers)
  /// survive; tests and benchmarks call this between scenarios.
  void Reset() KGOV_EXCLUDES(mu_);

  /// The full registry as a JSON document (metrics sorted by name, so
  /// snapshots are diffable).
  std::string SnapshotJson() const KGOV_EXCLUDES(mu_);

  /// Writes SnapshotJson() to `path`.
  Status WriteSnapshotJson(const std::string& path) const;

 private:
  mutable Mutex mu_{KGOV_LOCK_RANK(kTelemetryRegistry)};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      KGOV_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ KGOV_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      KGOV_GUARDED_BY(mu_);
};

/// RAII stage timer: records the scope's wall time (common/timer.h
/// steady-clock Timer) into a histogram on destruction. Use the
/// name-based constructor for one-off stages, or hand it a cached
/// Histogram* on hot paths.
class ScopedSpan {
 public:
  /// Records into "span.<name>.seconds" in the global registry.
  explicit ScopedSpan(const std::string& name)
      : histogram_(MetricRegistry::Global().GetHistogram(
            "span." + name + ".seconds")) {}

  explicit ScopedSpan(Histogram* histogram) : histogram_(histogram) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (histogram_ != nullptr) histogram_->Observe(timer_.ElapsedSeconds());
  }

  /// Drops the measurement (the span records nothing on destruction).
  void Cancel() { histogram_ = nullptr; }

  /// Seconds since the span opened.
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  Timer timer_;
  Histogram* histogram_;
};

}  // namespace kgov::telemetry

#endif  // KGOV_TELEMETRY_METRICS_H_
