# Empty compiler generated dependencies file for test_edge_vars.
# This may be replaced when dependencies are built.
