// Ablation: SGP formulations and the judgment filter.
//
// Compares the three solver formulations on the same multi-vote problem:
//   * hard constraints (augmented Lagrangian; fails on conflicting votes),
//   * deviation variables (the paper's Eq. 15 exactly),
//   * reduced sigmoid (deviation variables substituted out; kgov default),
// and measures the effect of the judgment filter (SV) on runtime and
// Omega_avg. This backs DESIGN.md's claim that the reduced form is an
// equivalent but cheaper realization of Eq. 15/19.

#include <cstdio>

#include "bench/bench_util.h"
#include "math/gp_condensation.h"
#include "common/timer.h"
#include "core/scoring.h"
#include "graph/source.h"
#include "votes/vote_generator.h"

namespace kgov {
namespace {

int Run() {
  bench::Banner("Ablation: SGP formulation and judgment filter",
                "design choices behind SV (Eq. 15/18/19)");

  graph::GeneratorSpec spec;
  spec.kind = graph::GeneratorKind::kScaleFree;
  spec.num_nodes = 4000;
  spec.num_edges = 16000;
  Result<graph::WeightedDigraph> base =
      graph::LoadGraph(graph::GraphSource::Generator(spec, 881));
  if (!base.ok()) return 1;
  Rng rng(882);  // workload stream, separate from the generator's

  votes::SyntheticVoteParams params;
  params.num_queries = 50;
  params.num_answers = 500;
  params.subgraph_nodes = 2000;
  params.top_k = 12;
  params.avg_negative_rank = 6.0;
  Result<votes::SyntheticWorkload> workload =
      votes::GenerateSyntheticWorkload(*base, params, rng);
  if (!workload.ok()) return 1;

  bench::TablePrinter table({"formulation", "filter", "time", "omega_avg",
                             "satisfied"},
                            {20, 7, 9, 10, 10});
  table.PrintHeader();

  struct Case {
    const char* name;
    math::SgpFormulation formulation;
    bool filter;
  };
  std::vector<Case> cases{
      {"hard-constraints", math::SgpFormulation::kHardConstraints, true},
      {"deviation (Eq.15)", math::SgpFormulation::kDeviationVariables, true},
      {"reduced-sigmoid", math::SgpFormulation::kReducedSigmoid, true},
      {"reduced-sigmoid", math::SgpFormulation::kReducedSigmoid, false},
  };

  for (const Case& c : cases) {
    core::OptimizerOptions options;
    options.encoder.symbolic.eipd.max_length = 4;
    options.encoder.symbolic.min_path_mass = 1e-8;
    options.encoder.is_variable = workload->EntityEdgePredicate();
    options.sgp.formulation = c.formulation;
    options.apply_judgment_filter = c.filter;

    core::KgOptimizer optimizer(&workload->graph, options);
    Timer timer;
    Result<core::OptimizeReport> report =
        optimizer.MultiVoteSolve(workload->votes);
    double seconds = timer.ElapsedSeconds();
    if (!report.ok()) {
      table.PrintRow({c.name, c.filter ? "on" : "off",
                      FormatDuration(seconds), "failed", "-"});
      continue;
    }
    core::OmegaResult omega =
        core::EvaluateOmega(report->optimized, workload->votes,
                            options.encoder.symbolic.eipd);
    table.PrintRow({c.name, c.filter ? "on" : "off",
                    FormatDuration(seconds), bench::Num(omega.average),
                    std::to_string(report->constraints_satisfied) + "/" +
                        std::to_string(report->constraints_total)});
  }

  // Condensation (successive GP approximation, cf. paper ref. [35]):
  // solved outside KgOptimizer since it swaps the proximal notion for the
  // GP-compatible minimal multiplicative change.
  {
    votes::EncoderOptions eo;
    eo.symbolic.eipd.max_length = 4;
    eo.symbolic.min_path_mass = 1e-8;
    eo.is_variable = workload->EntityEdgePredicate();
    votes::VoteEncoder encoder(&workload->graph, eo);
    Result<votes::EncodedProgram> program =
        encoder.EncodeBatch(workload->votes);
    if (program.ok()) {
      Timer timer;
      math::CondensationSgpSolver solver;
      math::SgpSolution sol = solver.Solve(program->problem);
      double seconds = timer.ElapsedSeconds();
      graph::WeightedDigraph optimized = workload->graph;
      program->variables.ApplyValues(sol.x, &optimized);
      optimized.NormalizeAllOutWeights();
      core::OmegaResult omega =
          core::EvaluateOmega(optimized, workload->votes, eo.symbolic.eipd);
      table.PrintRow({"condensation (GP/SCA)", "off", FormatDuration(seconds),
                      bench::Num(omega.average),
                      std::to_string(sol.satisfied_constraints) + "/" +
                          std::to_string(sol.total_constraints)});
    }
  }

  std::printf(
      "\nExpected: deviation and reduced forms reach similar Omega_avg "
      "(same\noptima), reduced is faster (no auxiliary variables, no "
      "augmented\nLagrangian); hard constraints struggle when votes "
      "conflict; the filter\ntrades a little encoding time for discarding "
      "unsatisfiable votes;\ncondensation (successive GP approximation) "
      "trades runtime for the\nclassical convex-approximation guarantees.\n");
  return 0;
}

}  // namespace
}  // namespace kgov

int main() { return kgov::Run(); }
