#include "common/contracts.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/online_optimizer.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "graph/validate.h"
#include "serve/validate.h"
#include "telemetry/metrics.h"

namespace kgov {
namespace {

using contracts::CheckMode;
using contracts::ScopedCheckMode;
using graph::EdgeId;
using graph::GraphView;
using graph::NodeId;
using graph::ValidateCsr;

// ---------------------------------------------------------------------
// KGOV_ASSERT / KGOV_CHECK_OK failure behavior.

TEST(ContractsDeathTest, AssertAbortsWithExpressionText) {
  EXPECT_DEATH({ KGOV_ASSERT(1 + 1 == 3) << "context"; },
               "Contract violated: 1 \\+ 1 == 3");
}

TEST(ContractsDeathTest, CheckOkAbortsWithStatusText) {
  EXPECT_DEATH(KGOV_CHECK_OK(Status::Internal("broken invariant")),
               "broken invariant");
}

TEST(ContractsTest, PassingAssertHasNoSideEffects) {
  contracts::ResetViolationCount();
  KGOV_ASSERT(2 + 2 == 4) << "never evaluated";
  KGOV_CHECK_OK(Status::OK());
  EXPECT_EQ(contracts::ViolationCount(), 0u);
}

TEST(ContractsTest, SoftModeCountsAndContinues) {
  ScopedCheckMode soft(CheckMode::kSoftCount);
  contracts::ResetViolationCount();
  KGOV_ASSERT(false) << "soft violation 1";
  KGOV_ASSERT(false) << "soft violation 2";
  KGOV_CHECK_OK(Status::Internal("soft violation 3"));
  // Reaching this line is the point: soft mode never aborts.
  EXPECT_EQ(contracts::ViolationCount(), 3u);
}

TEST(ContractsTest, ScopedCheckModeRestoresPreviousMode) {
  ASSERT_EQ(contracts::GetCheckMode(), CheckMode::kAbort);
  {
    ScopedCheckMode soft(CheckMode::kSoftCount);
    EXPECT_EQ(contracts::GetCheckMode(), CheckMode::kSoftCount);
  }
  EXPECT_EQ(contracts::GetCheckMode(), CheckMode::kAbort);
}

TEST(ContractsTest, SoftViolationsMirrorIntoTelemetry) {
  // Touching the registry installs the violation handler.
  auto& registry = telemetry::MetricRegistry::Global();
  telemetry::Counter* counter =
      registry.GetCounter("contracts.soft_violations");
  const uint64_t before = counter->Value();

  ScopedCheckMode soft(CheckMode::kSoftCount);
  KGOV_ASSERT(false) << "mirrored into telemetry";
  EXPECT_EQ(counter->Value(), before + 1);
}

TEST(ContractsTest, ViolationHandlerReceivesSite) {
  static const char* seen_expression = nullptr;
  contracts::SetViolationHandler(
      [](const char* /*file*/, int /*line*/, const char* expression,
         contracts::ViolationKind /*kind*/) { seen_expression = expression; });
  ScopedCheckMode soft(CheckMode::kSoftCount);
  KGOV_ASSERT(1 > 2);
  // Restore the telemetry mirror for the rest of the process.
  contracts::SetViolationHandler(nullptr);
  ASSERT_NE(seen_expression, nullptr);
  EXPECT_STREQ(seen_expression, "1 > 2");
  telemetry::MetricRegistry::Global();  // reinstalls via Global()'s init
}

TEST(ContractsTest, DcheckMatchesBuildMode) {
  ScopedCheckMode soft(CheckMode::kSoftCount);
  contracts::ResetViolationCount();
  KGOV_DCHECK(false);
  KGOV_DCHECK_OK(Status::Internal("debug-only"));
#ifdef NDEBUG
  // Compiled out: the expressions must not even be evaluated.
  EXPECT_EQ(contracts::ViolationCount(), 0u);
#else
  EXPECT_EQ(contracts::ViolationCount(), 2u);
#endif
}

TEST(ContractsTest, DcheckDoesNotEvaluateUnderNdebug) {
#ifdef NDEBUG
  int evaluations = 0;
  KGOV_DCHECK([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, 0);
#else
  GTEST_SKIP() << "debug build evaluates KGOV_DCHECK by design";
#endif
}

TEST(ContractsTest, StatusIgnoreErrorIsTheExplicitDropSpelling) {
  // [[nodiscard]] makes a silent drop a compile error; this is the
  // sanctioned loud one.
  Status::Internal("intentionally dropped").IgnoreError();
}

// ---------------------------------------------------------------------
// graph::ValidateCsr structural checks.

struct RawCsr {
  std::vector<size_t> offsets;
  std::vector<GraphView::Neighbor> neighbors;
  std::vector<EdgeId> edge_ids;

  GraphView View(bool with_edge_ids = true) const {
    // Deliberately-corrupt fixtures would abort inside the debug-build
    // constructor hook; soft mode turns that into a counted violation.
    ScopedCheckMode soft(CheckMode::kSoftCount);
    return GraphView(offsets.size() - 1, offsets.data(), neighbors.data(),
                     with_edge_ids ? edge_ids.data() : nullptr);
  }
};

RawCsr ValidFixture() {
  return RawCsr{{0, 2, 3, 3},
                {{1, 0.5}, {2, 0.5}, {0, 1.0}},
                {0, 1, 2}};
}

TEST(ValidateCsrTest, AcceptsEmptyView) {
  EXPECT_TRUE(ValidateCsr(GraphView{}).ok());
}

TEST(ValidateCsrTest, AcceptsValidFixture) {
  RawCsr csr = ValidFixture();
  EXPECT_TRUE(ValidateCsr(csr.View()).ok());
  EXPECT_TRUE(ValidateCsr(csr.View(/*with_edge_ids=*/false)).ok());
}

TEST(ValidateCsrTest, AcceptsRealSnapshot) {
  graph::WeightedDigraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.4).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.6).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 1.0).ok());
  graph::CsrSnapshot snap(g);
  EXPECT_TRUE(ValidateCsr(snap.View()).ok());
}

TEST(ValidateCsrTest, RejectsNonMonotoneOffsets) {
  RawCsr csr = ValidFixture();
  csr.offsets = {0, 2, 1, 3};  // row 1 ends before it begins
  Status status = ValidateCsr(csr.View());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not monotone"), std::string::npos);
}

TEST(ValidateCsrTest, RejectsOffsetsNotStartingAtZero) {
  RawCsr csr = ValidFixture();
  csr.offsets = {1, 2, 3, 3};  // rows cover 2 slots, NumEdges() says 3
  Status status = ValidateCsr(csr.View());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("NumEdges"), std::string::npos);
}

TEST(ValidateCsrTest, RejectsOutOfRangeTarget) {
  RawCsr csr = ValidFixture();
  csr.neighbors[1].to = 7;  // only 3 nodes
  Status status = ValidateCsr(csr.View());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("out of range"), std::string::npos);
}

TEST(ValidateCsrTest, RejectsNonFiniteWeight) {
  RawCsr csr = ValidFixture();
  csr.neighbors[2].weight = std::numeric_limits<double>::quiet_NaN();
  Status status = ValidateCsr(csr.View());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("weight invalid"), std::string::npos);
}

TEST(ValidateCsrTest, RejectsNegativeWeight) {
  RawCsr csr = ValidFixture();
  csr.neighbors[0].weight = -0.25;
  EXPECT_FALSE(ValidateCsr(csr.View()).ok());
}

TEST(ValidateCsrTest, RejectsDuplicateEdgeIds) {
  RawCsr csr = ValidFixture();
  csr.edge_ids = {0, 0, 2};  // id 0 aliases two CSR slots
  Status status = ValidateCsr(csr.View());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not injective"), std::string::npos);
  // Without the edge-id table the same arrays are fine.
  EXPECT_TRUE(ValidateCsr(csr.View(/*with_edge_ids=*/false)).ok());
}

#ifndef NDEBUG
TEST(ValidateCsrTest, DebugConstructorHookCatchesCorruptView) {
  // The GraphView constructor validates in debug builds; a corrupt view
  // surfaces as a (soft-mode) contract violation at construction time.
  ScopedCheckMode soft(CheckMode::kSoftCount);
  contracts::ResetViolationCount();
  RawCsr csr = ValidFixture();
  csr.edge_ids = {1, 1, 2};
  GraphView view(csr.offsets.size() - 1, csr.offsets.data(),
                 csr.neighbors.data(), csr.edge_ids.data());
  (void)view;
  EXPECT_GE(contracts::ViolationCount(), 1u);
}
#endif

// ---------------------------------------------------------------------
// serve::ValidateEpochPin.

core::ServingEpoch MakeEpoch(uint64_t number) {
  graph::WeightedDigraph g(3);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  return core::ServingEpoch{std::make_shared<graph::CsrSnapshot>(g), number};
}

TEST(ValidateEpochPinTest, AcceptsHealthyEpoch) {
  core::ServingEpoch epoch = MakeEpoch(7);
  EXPECT_TRUE(serve::ValidateEpochPin(epoch).ok());
  EXPECT_TRUE(serve::ValidateEpochPin(epoch, 7).ok());
}

TEST(ValidateEpochPinTest, RejectsNullSnapshot) {
  core::ServingEpoch epoch;
  epoch.epoch = 3;
  Status status = serve::ValidateEpochPin(epoch);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("no snapshot"), std::string::npos);
}

TEST(ValidateEpochPinTest, RejectsEpochMovingBackwards) {
  core::ServingEpoch epoch = MakeEpoch(4);
  Status status = serve::ValidateEpochPin(epoch, /*min_expected_epoch=*/5);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ValidateEpochPinTest, AcceptsLiveOptimizerEpoch) {
  graph::WeightedDigraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  core::OnlineKgOptimizer optimizer(g, core::OnlineOptimizerOptions{});
  EXPECT_TRUE(serve::ValidateEpochPin(optimizer.CurrentEpoch()).ok());
}

}  // namespace
}  // namespace kgov
