// Must-fire canary for the lock-rank deadlock detector
// (common/lock_rank.h). tools/ci/analyze.sh builds and runs this with
// KGOV_LOCK_DEBUG=ON; a CI run where the detector goes silent on a known
// rank inversion or a known acquired-after cycle FAILS the gate - a
// detector that stops firing is indistinguishable from a clean tree.
//
// The program deliberately commits the two canonical mistakes in
// kSoftCount mode and then checks the violation counter moved:
//
//   1. a ranked inversion - acquiring a higher rank while holding a
//      lower one (ranks must strictly descend), and
//   2. a two-lock cycle between unranked mutexes - A before B on one
//      code path, B before A on another.
//
// It also dumps the process-wide acquired-after graph as DOT to argv[1]
// (uploaded as a CI artifact) so a human can see exactly which edges the
// run recorded and which ones were flagged.
//
// Exit status: 0 only if BOTH violations fired and the DOT file was
// written; 1 if the detector was silent; 2 if the binary was built
// without KGOV_LOCK_DEBUG (the detector is compiled out, so the canary
// proves nothing).

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/contracts.h"
#include "common/lock_rank.h"
#include "common/lock_ranks.h"
#include "common/thread_annotations.h"

namespace kgov {
namespace {

int Run(const char* dot_path) {
#if !defined(KGOV_LOCK_DEBUG)
  (void)dot_path;
  std::fprintf(stderr,
               "lockcheck_canary: built without KGOV_LOCK_DEBUG; the "
               "detector is compiled out and cannot be exercised\n");
  return 2;
#else
  contracts::ScopedCheckMode soft(contracts::CheckMode::kSoftCount);
  lockrank::ScopedTracking tracking;
  lockrank::ResetGraph();
  lockrank::ResetThreadState();
  contracts::ResetLockOrderViolationCount();

  // 1. Ranked inversion: kStreamQueue outranks kEpochPublish, so taking
  // the queue lock while holding the publish lock ascends.
  Mutex low{KGOV_LOCK_RANK(kEpochPublish)};
  Mutex high{KGOV_LOCK_RANK(kStreamQueue)};
  {
    MutexLock hold_low(low);
    MutexLock ascend(high);
  }
  const uint64_t after_inversion = contracts::LockOrderViolationCount();

  // 2. Unranked two-lock cycle: a before b, then b before a.
  Mutex a;
  Mutex b;
  {
    MutexLock first(a);
    MutexLock second(b);
  }
  {
    MutexLock first(b);
    MutexLock second(a);
  }
  const uint64_t after_cycle = contracts::LockOrderViolationCount();

  const bool inversion_fired = after_inversion >= 1;
  const bool cycle_fired = after_cycle > after_inversion;

  bool dot_ok = false;
  {
    std::ofstream out(dot_path);
    out << lockrank::AcquiredAfterGraphDot();
    out.flush();
    dot_ok = out.good();
  }

  std::printf("lockcheck_canary: rank inversion %s (violations after: "
              "%llu), unranked cycle %s (violations after: %llu), DOT "
              "dump to %s %s\n",
              inversion_fired ? "FIRED" : "SILENT",
              static_cast<unsigned long long>(after_inversion),
              cycle_fired ? "FIRED" : "SILENT",
              static_cast<unsigned long long>(after_cycle), dot_path,
              dot_ok ? "ok" : "FAILED");
  return (inversion_fired && cycle_fired && dot_ok) ? 0 : 1;
#endif
}

}  // namespace
}  // namespace kgov

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: lockcheck_canary <acquired-after.dot>\n");
    return 1;
  }
  return kgov::Run(argv[1]);
}
