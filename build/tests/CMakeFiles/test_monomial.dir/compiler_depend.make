# Empty compiler generated dependencies file for test_monomial.
# This may be replaced when dependencies are built.
