
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_forms.cc" "bench/CMakeFiles/bench_ablation_forms.dir/bench_ablation_forms.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_forms.dir/bench_ablation_forms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/kgov_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/kgov_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/qa/CMakeFiles/kgov_qa.dir/DependInfo.cmake"
  "/root/repo/build/src/votes/CMakeFiles/kgov_votes.dir/DependInfo.cmake"
  "/root/repo/build/src/ppr/CMakeFiles/kgov_ppr.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/kgov_math.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kgov_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kgov_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
