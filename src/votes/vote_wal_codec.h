// Binary vote encoding for the write-ahead log and snapshot aux sections.
//
// The text format in votes_io.h is the interchange format (human-readable,
// diff-able); the WAL needs something cheaper and framing-friendly. This
// codec is a flat little-endian layout with explicit counts:
//
//   u32 id | f64 weight | u32 best_answer |
//   u32 n_answers | u32 answer[n_answers] |
//   u32 n_links   | (u32 node, f64 weight)[n_links]
//
// Framing (lengths, CRCs, record types) is the caller's job (see
// durability/wal.h and docs/file_formats.md); DecodeVote only needs the
// byte range to start at a record boundary. Encodings are host-endian -
// WAL segments and snapshots are per-host recovery artifacts, not
// portable interchange files.

#ifndef KGOV_VOTES_VOTE_WAL_CODEC_H_
#define KGOV_VOTES_VOTE_WAL_CODEC_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "votes/vote.h"

namespace kgov::votes {

/// Appends the binary encoding of `vote` to `*out`.
void EncodeVote(const Vote& vote, std::string* out);

/// Decodes one vote starting at `*offset` of `data`, advancing `*offset`
/// past it. Returns IoError on truncation and InvalidArgument on
/// structurally impossible counts (a corrupted record that happens to
/// pass its CRC must still not allocate unbounded memory).
Status DecodeVote(std::string_view data, size_t* offset, Vote* out);

}  // namespace kgov::votes

#endif  // KGOV_VOTES_VOTE_WAL_CODEC_H_
