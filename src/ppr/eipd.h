// Extended inverse P-distance (paper SIV-A, Eq. 7-9).
//
//   Phi(vq, va) = sum over walks z : vq ~> va, |z| <= L of P[z]*c*(1-c)^|z|
//
// Numerically this is evaluated by level-synchronous mass propagation (a
// truncated power iteration over the walk length), which yields the scores
// of *all* candidate answers in one pass - the property behind the paper's
// Table VI efficiency result. Walks longer than the pruning threshold L are
// dropped (SIV-A; L = 5 in the paper's experiments, justified by Fig. 7).

#ifndef KGOV_PPR_EIPD_H_
#define KGOV_PPR_EIPD_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "ppr/query_seed.h"

namespace kgov::ppr {

struct EipdOptions {
  /// Maximum walk length L (number of edges, including the query's first
  /// hop). Paper default: 5.
  int max_length = 5;
  /// Restart probability c. Paper default: ~0.15.
  double restart = 0.15;
};

/// A ranked answer.
struct ScoredAnswer {
  graph::NodeId node = graph::kInvalidNode;
  double score = 0.0;
};

/// Numeric extended-inverse-P-distance evaluation over a fixed graph.
/// Thread-compatible: concurrent calls on one instance are safe because all
/// evaluation state is call-local.
class EipdEvaluator {
 public:
  /// `graph` is borrowed and must outlive the evaluator.
  explicit EipdEvaluator(const graph::WeightedDigraph* graph,
                         EipdOptions options = {});

  const EipdOptions& options() const { return options_; }

  /// Phi(seed, answer).
  double Similarity(const QuerySeed& seed, graph::NodeId answer) const;

  /// Phi(seed, a) for every a in `answers`, in one propagation pass.
  std::vector<double> SimilarityMany(
      const QuerySeed& seed, const std::vector<graph::NodeId>& answers) const;

  /// Like SimilarityMany, but edge weights in `overrides` replace the
  /// graph's weights (used by the judgment filter's extreme condition).
  std::vector<double> SimilarityManyWithOverrides(
      const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
      const std::unordered_map<graph::EdgeId, double>& overrides) const;

  /// Top-k candidates sorted by descending score (ties by ascending node
  /// id, making rankings deterministic).
  std::vector<ScoredAnswer> RankAnswers(
      const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
      size_t k) const;

 private:
  /// Phi contributions for all nodes; overrides may be null.
  std::vector<double> Propagate(
      const QuerySeed& seed,
      const std::unordered_map<graph::EdgeId, double>* overrides) const;

  const graph::WeightedDigraph* graph_;
  EipdOptions options_;
};

}  // namespace kgov::ppr

#endif  // KGOV_PPR_EIPD_H_
