#include "ppr/eipd_engine.h"

#include "common/timer.h"
#include "telemetry/metrics.h"

namespace kgov::ppr {

PropagationWorkspace& ThreadLocalWorkspace() {
  static thread_local PropagationWorkspace workspace;
  return workspace;
}

EipdEngine::EipdEngine(graph::GraphView view, EipdOptions options)
    : view_(view), options_(options) {
  KGOV_CHECK(options_.max_length >= 1);
  KGOV_CHECK(options_.restart > 0.0 && options_.restart < 1.0);
}

const std::vector<double>& EipdEngine::Propagate(
    const QuerySeed& seed,
    const std::unordered_map<graph::EdgeId, double>* overrides,
    PropagationWorkspace* ws) const {
  // Serving-latency telemetry: one Timer (two steady-clock reads) and one
  // histogram Observe per propagation -- a fraction of a percent of a
  // single propagation pass on the bench graph.
  static telemetry::Histogram* const latency =
      telemetry::MetricRegistry::Global().GetHistogram(
          "serving.eipd.propagate.seconds");
  static telemetry::Counter* const queries =
      telemetry::MetricRegistry::Global().GetCounter(
          "serving.eipd.queries");
  Timer timer;
  if (overrides != nullptr) {
    // Overrides are keyed by EdgeId; without the edge-id table they would
    // be silently ignored, so fail loudly (an edgeless view has nothing to
    // override and is fine).
    KGOV_CHECK(view_.HasEdgeIds() || view_.NumEdges() == 0);
  }
  if (ws == nullptr) ws = &ThreadLocalWorkspace();
  internal::PropagatePhi(internal::ViewAdjacency{view_}, seed, options_,
                         overrides, ws);
  queries->Increment();
  latency->Observe(timer.ElapsedSeconds());
  return ws->phi;
}

double EipdEngine::Similarity(const QuerySeed& seed, graph::NodeId answer,
                              PropagationWorkspace* ws) const {
  KGOV_CHECK(view_.IsValidNode(answer));
  return Propagate(seed, nullptr, ws)[answer];
}

std::vector<double> EipdEngine::SimilarityMany(
    const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
    PropagationWorkspace* ws) const {
  const std::vector<double>& phi = Propagate(seed, nullptr, ws);
  std::vector<double> out(answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    KGOV_CHECK(view_.IsValidNode(answers[i]));
    out[i] = phi[answers[i]];
  }
  return out;
}

std::vector<double> EipdEngine::SimilarityManyWithOverrides(
    const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
    const std::unordered_map<graph::EdgeId, double>& overrides,
    PropagationWorkspace* ws) const {
  const std::vector<double>& phi = Propagate(seed, &overrides, ws);
  std::vector<double> out(answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    KGOV_CHECK(view_.IsValidNode(answers[i]));
    out[i] = phi[answers[i]];
  }
  return out;
}

std::vector<ScoredAnswer> EipdEngine::RankAnswers(
    const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
    size_t k, PropagationWorkspace* ws) const {
  std::vector<double> scores = SimilarityMany(seed, candidates, ws);
  std::vector<ScoredAnswer> ranked(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    ranked[i] = ScoredAnswer{candidates[i], scores[i]};
  }
  SortRankedTruncate(&ranked, k);
  return ranked;
}

std::vector<ScoredAnswer> EipdEngine::RankAnswersWithOverrides(
    const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
    size_t k, const std::unordered_map<graph::EdgeId, double>& overrides,
    PropagationWorkspace* ws) const {
  std::vector<double> scores =
      SimilarityManyWithOverrides(seed, candidates, overrides, ws);
  std::vector<ScoredAnswer> ranked(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    ranked[i] = ScoredAnswer{candidates[i], scores[i]};
  }
  SortRankedTruncate(&ranked, k);
  return ranked;
}

}  // namespace kgov::ppr
