#include "graph/graph.h"

#include <gtest/gtest.h>

namespace kgov::graph {
namespace {

TEST(GraphTest, EmptyGraph) {
  WeightedDigraph g;
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_FALSE(g.IsValidNode(0));
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.0);
}

TEST(GraphTest, PreSizedConstructor) {
  WeightedDigraph g(5);
  EXPECT_EQ(g.NumNodes(), 5u);
  EXPECT_TRUE(g.IsValidNode(4));
  EXPECT_FALSE(g.IsValidNode(5));
}

TEST(GraphTest, AddNodeReturnsSequentialIds) {
  WeightedDigraph g;
  EXPECT_EQ(g.AddNode(), 0u);
  EXPECT_EQ(g.AddNode(), 1u);
  EXPECT_EQ(g.NumNodes(), 2u);
}

TEST(GraphTest, AddNodesBulk) {
  WeightedDigraph g(2);
  EXPECT_EQ(g.AddNodes(3), 2u);
  EXPECT_EQ(g.NumNodes(), 5u);
}

TEST(GraphTest, AddEdgeStoresWeight) {
  WeightedDigraph g(3);
  Result<EdgeId> e = g.AddEdge(0, 1, 0.4);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(g.edge(*e).from, 0u);
  EXPECT_EQ(g.edge(*e).to, 1u);
  EXPECT_DOUBLE_EQ(g.Weight(*e), 0.4);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphTest, AddEdgeRejectsInvalidEndpoints) {
  WeightedDigraph g(2);
  EXPECT_TRUE(g.AddEdge(0, 5, 0.1).status().IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge(9, 0, 0.1).status().IsInvalidArgument());
}

TEST(GraphTest, AddEdgeRejectsNegativeWeight) {
  WeightedDigraph g(2);
  EXPECT_TRUE(g.AddEdge(0, 1, -0.1).status().IsInvalidArgument());
}

TEST(GraphTest, AddEdgeRejectsDuplicates) {
  WeightedDigraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  Result<EdgeId> dup = g.AddEdge(0, 1, 0.7);
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphTest, ReverseEdgeIsDistinct) {
  WeightedDigraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(1, 0, 0.5).ok());
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(GraphTest, SelfLoopAllowed) {
  WeightedDigraph g(1);
  EXPECT_TRUE(g.AddEdge(0, 0, 0.3).ok());
}

TEST(GraphTest, FindEdge) {
  WeightedDigraph g(3);
  Result<EdgeId> e = g.AddEdge(0, 2, 0.9);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(g.FindEdge(0, 2), *e);
  EXPECT_FALSE(g.FindEdge(2, 0).has_value());
  EXPECT_FALSE(g.FindEdge(0, 1).has_value());
  EXPECT_FALSE(g.FindEdge(99, 0).has_value());
}

TEST(GraphTest, SetWeightUpdatesAndClampsNegative) {
  WeightedDigraph g(2);
  EdgeId e = *g.AddEdge(0, 1, 0.5);
  g.SetWeight(e, 0.8);
  EXPECT_DOUBLE_EQ(g.Weight(e), 0.8);
  g.SetWeight(e, -0.3);
  EXPECT_DOUBLE_EQ(g.Weight(e), 0.0);
}

TEST(GraphTest, OutEdgesAndDegree) {
  WeightedDigraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.2).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.3).ok());
  ASSERT_TRUE(g.AddEdge(1, 3, 0.5).ok());
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(3), 0u);
  EXPECT_EQ(g.OutEdges(0)[0].to, 1u);
  EXPECT_EQ(g.OutEdges(0)[1].to, 2u);
}

TEST(GraphTest, OutWeightSum) {
  WeightedDigraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.2).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.3).ok());
  EXPECT_DOUBLE_EQ(g.OutWeightSum(0), 0.5);
  EXPECT_DOUBLE_EQ(g.OutWeightSum(1), 0.0);
}

TEST(GraphTest, NormalizeOutWeights) {
  WeightedDigraph g(3);
  EdgeId e1 = *g.AddEdge(0, 1, 2.0);
  EdgeId e2 = *g.AddEdge(0, 2, 6.0);
  g.NormalizeOutWeights(0);
  EXPECT_DOUBLE_EQ(g.Weight(e1), 0.25);
  EXPECT_DOUBLE_EQ(g.Weight(e2), 0.75);
  EXPECT_DOUBLE_EQ(g.OutWeightSum(0), 1.0);
}

TEST(GraphTest, NormalizeNoOutEdgesIsNoOp) {
  WeightedDigraph g(1);
  g.NormalizeOutWeights(0);  // must not crash
  SUCCEED();
}

TEST(GraphTest, NormalizeAllOutWeights) {
  WeightedDigraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 3.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 5.0).ok());
  g.NormalizeAllOutWeights();
  EXPECT_DOUBLE_EQ(g.OutWeightSum(0), 1.0);
  EXPECT_DOUBLE_EQ(g.OutWeightSum(1), 1.0);
}

TEST(GraphTest, IsSubStochastic) {
  WeightedDigraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.7).ok());
  EXPECT_TRUE(g.IsSubStochastic());
  EdgeId e = *g.AddEdge(1, 0, 1.5);
  EXPECT_FALSE(g.IsSubStochastic());
  g.SetWeight(e, 1.0);
  EXPECT_TRUE(g.IsSubStochastic());
}

TEST(GraphTest, AverageDegree) {
  WeightedDigraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.1).ok());
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.5);
}

TEST(GraphTest, NodeLabels) {
  WeightedDigraph g(3);
  EXPECT_EQ(g.NodeLabel(1), "");
  g.SetNodeLabel(1, "Outlook");
  EXPECT_EQ(g.NodeLabel(1), "Outlook");
  EXPECT_EQ(g.NodeLabel(0), "");
  EXPECT_EQ(g.NodeLabel(2), "");
}

TEST(GraphTest, CopyIsIndependent) {
  WeightedDigraph g(2);
  EdgeId e = *g.AddEdge(0, 1, 0.5);
  WeightedDigraph copy = g;
  copy.SetWeight(e, 0.9);
  EXPECT_DOUBLE_EQ(g.Weight(e), 0.5);
  EXPECT_DOUBLE_EQ(copy.Weight(e), 0.9);
}

TEST(GraphTest, EdgesVectorIndexedByEdgeId) {
  WeightedDigraph g(3);
  EdgeId e0 = *g.AddEdge(0, 1, 0.1);
  EdgeId e1 = *g.AddEdge(1, 2, 0.2);
  EXPECT_EQ(e0, 0u);
  EXPECT_EQ(e1, 1u);
  EXPECT_EQ(g.edges().size(), 2u);
  EXPECT_EQ(g.edges()[1].to, 2u);
}

}  // namespace
}  // namespace kgov::graph
