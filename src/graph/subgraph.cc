#include "graph/subgraph.h"

#include <deque>
#include <unordered_map>

#include "common/logging.h"

namespace kgov::graph {

std::vector<NodeId> SelectBfsRegion(const WeightedDigraph& graph,
                                    size_t target, Rng& rng) {
  const size_t n = graph.NumNodes();
  target = std::min(target, n);
  std::vector<char> visited(n, 0);
  std::vector<NodeId> region;
  region.reserve(target);
  std::deque<NodeId> frontier;

  while (region.size() < target) {
    if (frontier.empty()) {
      NodeId start;
      do {
        start = static_cast<NodeId>(rng.NextIndex(n));
      } while (visited[start]);
      visited[start] = 1;
      region.push_back(start);
      frontier.push_back(start);
      continue;
    }
    NodeId u = frontier.front();
    frontier.pop_front();
    for (const OutEdge& out : graph.OutEdges(u)) {
      if (region.size() >= target) break;
      if (visited[out.to]) continue;
      visited[out.to] = 1;
      region.push_back(out.to);
      frontier.push_back(out.to);
    }
  }
  return region;
}

Result<InducedSubgraph> ExtractInducedSubgraph(
    const WeightedDigraph& graph, const std::vector<NodeId>& nodes) {
  std::unordered_map<NodeId, NodeId> to_local;
  to_local.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!graph.IsValidNode(nodes[i])) {
      return Status::InvalidArgument("subgraph node out of range");
    }
    auto [it, inserted] =
        to_local.emplace(nodes[i], static_cast<NodeId>(i));
    if (!inserted) {
      return Status::InvalidArgument("duplicate node in subgraph set");
    }
  }

  InducedSubgraph out;
  out.graph = WeightedDigraph(nodes.size());
  out.to_original = nodes;
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (const OutEdge& edge : graph.OutEdges(nodes[i])) {
      auto it = to_local.find(edge.to);
      if (it == to_local.end()) continue;
      Result<EdgeId> added = out.graph.AddEdge(
          static_cast<NodeId>(i), it->second, graph.Weight(edge.edge));
      KGOV_CHECK(added.ok());
    }
    // Preserve labels where present.
    const std::string& label = graph.NodeLabel(nodes[i]);
    if (!label.empty()) {
      out.graph.SetNodeLabel(static_cast<NodeId>(i), label);
    }
  }
  return out;
}

size_t CountInternalEdges(const WeightedDigraph& graph,
                          const std::vector<NodeId>& nodes) {
  std::vector<char> inside(graph.NumNodes(), 0);
  for (NodeId v : nodes) {
    if (graph.IsValidNode(v)) inside[v] = 1;
  }
  size_t count = 0;
  for (const Edge& e : graph.edges()) {
    if (inside[e.from] && inside[e.to]) ++count;
  }
  return count;
}

}  // namespace kgov::graph
