#include "graph/csr.h"

#include <algorithm>
#include <numeric>

#include "common/contracts.h"

namespace kgov::graph {

Status CsrOptions::Validate() const { return Status::OK(); }

CsrSnapshot::CsrSnapshot(const WeightedDigraph& graph)
    : CsrSnapshot(graph, CsrOptions{}) {}

CsrSnapshot::CsrSnapshot(const WeightedDigraph& graph,
                         const CsrOptions& options) {
  Status valid = options.Validate();
  KGOV_CHECK(valid.ok()) << valid.ToString();
  const size_t n = graph.NumNodes();
  if (options.layout == CsrLayout::kDegreeOrdered && n > 0) {
    internal_to_original_.resize(n);
    std::iota(internal_to_original_.begin(), internal_to_original_.end(),
              NodeId{0});
    std::stable_sort(internal_to_original_.begin(),
                     internal_to_original_.end(),
                     [&graph](NodeId a, NodeId b) {
                       return graph.OutDegree(a) > graph.OutDegree(b);
                     });
    original_to_internal_.resize(n);
    for (NodeId row = 0; row < n; ++row) {
      original_to_internal_[internal_to_original_[row]] = row;
    }
  }

  offsets_.resize(n + 1, 0);
  neighbors_.reserve(graph.NumEdges());
  edge_ids_.reserve(graph.NumEdges());
  for (NodeId row = 0; row < n; ++row) {
    const NodeId v = ToOriginal(row);
    offsets_[row] = neighbors_.size();
    for (const OutEdge& out : graph.OutEdges(v)) {
      neighbors_.push_back(
          Neighbor{ToInternal(out.to), graph.Weight(out.edge)});
      edge_ids_.push_back(out.edge);
    }
  }
  offsets_[n] = neighbors_.size();
}

double CsrSnapshot::OutWeightSum(NodeId node) const {
  double sum = 0.0;
  for (const Neighbor* it = begin(node); it != end(node); ++it) {
    sum += it->weight;
  }
  return sum;
}

}  // namespace kgov::graph
