# Empty dependencies file for test_vote_similarity.
# This may be replaced when dependencies are built.
