file(REMOVE_RECURSE
  "libkgov_cluster.a"
)
