#include "votes/vote_wal_codec.h"

#include <cstring>

namespace kgov::votes {
namespace {

// Sanity bound on decoded list lengths: a vote's answer list is a top-k
// page and its seed links a query's entity mentions; 1M of either means
// the record is garbage that slipped past the CRC.
constexpr uint32_t kMaxListLength = 1u << 20;

template <typename T>
void AppendRaw(std::string* out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

template <typename T>
bool ReadRaw(std::string_view data, size_t* offset, T* out) {
  if (data.size() - *offset < sizeof(T)) return false;
  std::memcpy(out, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

Status Truncated(size_t offset) {
  return Status::IoError("vote record truncated at byte " +
                         std::to_string(offset));
}

}  // namespace

void EncodeVote(const Vote& vote, std::string* out) {
  AppendRaw(out, vote.id);
  AppendRaw(out, vote.weight);
  AppendRaw(out, vote.best_answer);
  AppendRaw(out, static_cast<uint32_t>(vote.answer_list.size()));
  for (graph::NodeId node : vote.answer_list) AppendRaw(out, node);
  AppendRaw(out, static_cast<uint32_t>(vote.query.links.size()));
  for (const auto& [node, weight] : vote.query.links) {
    AppendRaw(out, node);
    AppendRaw(out, weight);
  }
}

Status DecodeVote(std::string_view data, size_t* offset, Vote* out) {
  *out = Vote{};
  if (*offset > data.size()) return Truncated(*offset);
  if (!ReadRaw(data, offset, &out->id) ||
      !ReadRaw(data, offset, &out->weight) ||
      !ReadRaw(data, offset, &out->best_answer)) {
    return Truncated(*offset);
  }
  uint32_t n_answers = 0;
  if (!ReadRaw(data, offset, &n_answers)) return Truncated(*offset);
  if (n_answers > kMaxListLength) {
    return Status::InvalidArgument("vote answer-list length " +
                                   std::to_string(n_answers) +
                                   " is implausible; record corrupted");
  }
  out->answer_list.resize(n_answers);
  for (uint32_t i = 0; i < n_answers; ++i) {
    if (!ReadRaw(data, offset, &out->answer_list[i])) {
      return Truncated(*offset);
    }
  }
  uint32_t n_links = 0;
  if (!ReadRaw(data, offset, &n_links)) return Truncated(*offset);
  if (n_links > kMaxListLength) {
    return Status::InvalidArgument("vote seed-link length " +
                                   std::to_string(n_links) +
                                   " is implausible; record corrupted");
  }
  out->query.links.resize(n_links);
  for (uint32_t i = 0; i < n_links; ++i) {
    if (!ReadRaw(data, offset, &out->query.links[i].first) ||
        !ReadRaw(data, offset, &out->query.links[i].second)) {
      return Truncated(*offset);
    }
  }
  return Status::OK();
}

}  // namespace kgov::votes
