#include "graph/subgraph.h"

#include <deque>

#include "common/logging.h"

namespace kgov::graph {

std::vector<NodeId> SelectBfsRegion(const WeightedDigraph& graph,
                                    size_t target, Rng& rng) {
  const size_t n = graph.NumNodes();
  target = std::min(target, n);
  std::vector<char> visited(n, 0);
  std::vector<NodeId> region;
  region.reserve(target);
  std::deque<NodeId> frontier;

  while (region.size() < target) {
    if (frontier.empty()) {
      NodeId start;
      do {
        start = static_cast<NodeId>(rng.NextIndex(n));
      } while (visited[start]);
      visited[start] = 1;
      region.push_back(start);
      frontier.push_back(start);
      continue;
    }
    NodeId u = frontier.front();
    frontier.pop_front();
    for (const OutEdge& out : graph.OutEdges(u)) {
      if (region.size() >= target) break;
      if (visited[out.to]) continue;
      visited[out.to] = 1;
      region.push_back(out.to);
      frontier.push_back(out.to);
    }
  }
  return region;
}

Result<NodeSetIndex> NodeSetIndex::Make(const std::vector<NodeId>& nodes,
                                        size_t num_nodes) {
  NodeSetIndex index;
  index.local_of_.assign(num_nodes, kInvalidNode);
  index.to_original_.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] >= num_nodes) {
      return Status::InvalidArgument("subgraph node out of range");
    }
    if (index.local_of_[nodes[i]] != kInvalidNode) {
      return Status::InvalidArgument("duplicate node in subgraph set");
    }
    index.local_of_[nodes[i]] = static_cast<NodeId>(i);
    index.to_original_.push_back(nodes[i]);
  }
  return index;
}

Result<InducedSubgraph> ExtractInducedSubgraph(
    const WeightedDigraph& graph, const std::vector<NodeId>& nodes) {
  Result<NodeSetIndex> index = NodeSetIndex::Make(nodes, graph.NumNodes());
  if (!index.ok()) return index.status();

  InducedSubgraph out;
  out.graph = WeightedDigraph(nodes.size());
  out.to_original = nodes;
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (const OutEdge& edge : graph.OutEdges(nodes[i])) {
      NodeId local = index.value().LocalOf(edge.to);
      if (local == kInvalidNode) continue;
      Result<EdgeId> added = out.graph.AddEdge(
          static_cast<NodeId>(i), local, graph.Weight(edge.edge));
      KGOV_CHECK(added.ok());
    }
    // Preserve labels where present.
    const std::string& label = graph.NodeLabel(nodes[i]);
    if (!label.empty()) {
      out.graph.SetNodeLabel(static_cast<NodeId>(i), label);
    }
  }
  return out;
}

size_t CountInternalEdges(const WeightedDigraph& graph,
                          const std::vector<NodeId>& nodes) {
  // Tolerates out-of-range and duplicate entries (set semantics), so build
  // the membership mask directly rather than through NodeSetIndex::Make.
  std::vector<char> inside(graph.NumNodes(), 0);
  for (NodeId v : nodes) {
    if (graph.IsValidNode(v)) inside[v] = 1;
  }
  size_t count = 0;
  for (const Edge& e : graph.edges()) {
    if (inside[e.from] && inside[e.to]) ++count;
  }
  return count;
}

Result<InducedSubview> InducedSubview::Make(GraphView parent,
                                            const std::vector<NodeId>& nodes) {
  Result<NodeSetIndex> index = NodeSetIndex::Make(nodes, parent.NumNodes());
  if (!index.ok()) return index.status();

  InducedSubview out;
  out.index_ = std::move(index.value());
  const size_t n = out.index_.size();
  out.offsets_.resize(n + 1, 0);
  for (NodeId local = 0; local < n; ++local) {
    out.offsets_[local] = out.neighbors_.size();
    const NodeId original = out.index_.ToOriginal(local);
    const GraphView::Neighbor* b = parent.begin(original);
    const GraphView::Neighbor* e = parent.end(original);
    const EdgeId* ids = parent.edge_ids(original);
    for (const GraphView::Neighbor* it = b; it != e; ++it) {
      NodeId local_to = out.index_.LocalOf(it->to);
      if (local_to == kInvalidNode) continue;
      out.neighbors_.push_back(GraphView::Neighbor{local_to, it->weight});
      if (ids != nullptr) out.edge_ids_.push_back(ids[it - b]);
    }
  }
  out.offsets_[n] = out.neighbors_.size();
  return out;
}

std::vector<NodeId> CollectOutNeighborhood(GraphView view,
                                           const std::vector<NodeId>& roots,
                                           int depth) {
  std::vector<char> visited(view.NumNodes(), 0);
  std::vector<NodeId> ball;
  std::vector<NodeId> frontier;
  for (NodeId r : roots) {
    if (!view.IsValidNode(r) || visited[r]) continue;
    visited[r] = 1;
    ball.push_back(r);
    frontier.push_back(r);
  }
  std::vector<NodeId> next;
  for (int level = 0; level < depth && !frontier.empty(); ++level) {
    next.clear();
    for (NodeId u : frontier) {
      for (const GraphView::Neighbor* it = view.begin(u);
           it != view.end(u); ++it) {
        if (visited[it->to]) continue;
        visited[it->to] = 1;
        ball.push_back(it->to);
        next.push_back(it->to);
      }
    }
    frontier.swap(next);
  }
  return ball;
}

}  // namespace kgov::graph
