#include "graph/csr.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace kgov::graph {
namespace {

TEST(CsrTest, EmptyGraph) {
  CsrSnapshot snap{WeightedDigraph{}};
  EXPECT_EQ(snap.NumNodes(), 0u);
  EXPECT_EQ(snap.NumEdges(), 0u);
  EXPECT_FALSE(snap.IsValidNode(0));
}

TEST(CsrTest, DefaultConstructedIsEmpty) {
  CsrSnapshot snap;
  EXPECT_EQ(snap.NumNodes(), 0u);
}

TEST(CsrTest, CapturesTopologyAndWeights) {
  WeightedDigraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.3).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.7).ok());
  ASSERT_TRUE(g.AddEdge(2, 1, 1.0).ok());
  CsrSnapshot snap(g);
  EXPECT_EQ(snap.NumNodes(), 3u);
  EXPECT_EQ(snap.NumEdges(), 3u);
  EXPECT_EQ(snap.OutDegree(0), 2u);
  EXPECT_EQ(snap.OutDegree(1), 0u);
  EXPECT_EQ(snap.OutDegree(2), 1u);
  EXPECT_EQ(snap.begin(0)[0].to, 1u);
  EXPECT_DOUBLE_EQ(snap.begin(0)[0].weight, 0.3);
  EXPECT_EQ(snap.begin(0)[1].to, 2u);
  EXPECT_DOUBLE_EQ(snap.begin(2)->weight, 1.0);
}

TEST(CsrTest, SnapshotIsImmutableUnderGraphMutation) {
  WeightedDigraph g(2);
  EdgeId e = *g.AddEdge(0, 1, 0.5);
  CsrSnapshot snap(g);
  g.SetWeight(e, 0.9);
  EXPECT_DOUBLE_EQ(snap.begin(0)->weight, 0.5);
}

TEST(CsrTest, OutWeightSumMatchesGraph) {
  Rng rng(5);
  Result<WeightedDigraph> g = ErdosRenyi(40, 160, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);
  for (NodeId v = 0; v < g->NumNodes(); ++v) {
    EXPECT_NEAR(snap.OutWeightSum(v), g->OutWeightSum(v), 1e-12);
  }
}

TEST(CsrTest, NeighborRangesPartitionEdges) {
  Rng rng(6);
  Result<WeightedDigraph> g = ErdosRenyi(30, 120, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);
  size_t total = 0;
  for (NodeId v = 0; v < snap.NumNodes(); ++v) {
    total += static_cast<size_t>(snap.end(v) - snap.begin(v));
    EXPECT_EQ(static_cast<size_t>(snap.end(v) - snap.begin(v)),
              g->OutDegree(v));
  }
  EXPECT_EQ(total, g->NumEdges());
}

}  // namespace
}  // namespace kgov::graph
