// VoteLogSink: the durable-acknowledgement hook between the online
// optimizer and the write-ahead vote log.
//
// User votes are the scarcest input in the system (the paper's whole
// evaluation rests on a handful of human judges), so an acknowledged vote
// must never exist only in process memory. core::OnlineKgOptimizer calls
// AppendVote BEFORE buffering a vote - an append failure rejects the vote,
// so "acknowledged" always implies "logged" - and AppendDeadLetter when a
// vote is abandoned after its flush attempts are exhausted, so the
// dead-letter buffer survives a crash too.
//
// The interface lives in votes/ (not durability/) so core can depend on
// it without a dependency cycle; durability::VoteWal is the on-disk
// implementation, and tests substitute in-memory fakes.

#ifndef KGOV_VOTES_VOTE_LOG_H_
#define KGOV_VOTES_VOTE_LOG_H_

#include "common/status.h"
#include "votes/vote.h"

namespace kgov::votes {

/// Where acknowledged votes are made durable. Implementations are called
/// from the optimizer's single write thread; they need not be
/// thread-safe.
class VoteLogSink {
 public:
  virtual ~VoteLogSink() = default;

  /// Records an incoming vote. Must return only after the record is as
  /// durable as the implementation promises; a non-OK status means the
  /// vote was NOT acknowledged and the caller must reject it.
  virtual Status AppendVote(const Vote& vote) = 0;

  /// Records that `vote` was moved to the dead-letter buffer (it will not
  /// be retried, but it must never be silently dropped).
  virtual Status AppendDeadLetter(const Vote& vote) = 0;
};

}  // namespace kgov::votes

#endif  // KGOV_VOTES_VOTE_LOG_H_
