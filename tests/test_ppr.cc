#include "ppr/ppr.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.h"

namespace kgov::ppr {
namespace {

using graph::WeightedDigraph;

// Two-node cycle with unit weights: symmetric stationary distribution.
WeightedDigraph MakeCycle() {
  WeightedDigraph g(2);
  EXPECT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  EXPECT_TRUE(g.AddEdge(1, 0, 1.0).ok());
  return g;
}

TEST(PprTest, InvalidSourceRejected) {
  WeightedDigraph g(2);
  EXPECT_FALSE(PowerIterationPpr(g, 7).ok());
}

TEST(PprTest, InvalidRestartRejected) {
  WeightedDigraph g = MakeCycle();
  PprOptions options;
  options.restart = 0.0;
  EXPECT_FALSE(PowerIterationPpr(g, 0, options).ok());
  options.restart = 1.0;
  EXPECT_FALSE(PowerIterationPpr(g, 0, options).ok());
}

TEST(PprTest, SuperStochasticGraphRejected) {
  WeightedDigraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 2.0).ok());
  EXPECT_FALSE(PowerIterationPpr(g, 0).ok());
}

TEST(PprTest, IsolatedSourceKeepsOnlyRestartMass) {
  WeightedDigraph g(2);  // no edges
  Result<std::vector<double>> pi = PowerIterationPpr(g, 0);
  ASSERT_TRUE(pi.ok());
  EXPECT_NEAR((*pi)[0], 0.15, 1e-10);
  EXPECT_NEAR((*pi)[1], 0.0, 1e-10);
}

TEST(PprTest, StochasticGraphScoresSumToOne) {
  // On a graph where every node has out-weight exactly 1, PPR mass is
  // conserved: sum_i pi[i] = 1.
  Rng rng(3);
  Result<WeightedDigraph> g = graph::ErdosRenyi(40, 200, rng);
  ASSERT_TRUE(g.ok());
  // Some nodes may lack out-edges; patch them with a self-loop.
  for (graph::NodeId v = 0; v < g->NumNodes(); ++v) {
    if (g->OutDegree(v) == 0) {
      ASSERT_TRUE(g->AddEdge(v, v, 1.0).ok());
    }
  }
  Result<std::vector<double>> pi = PowerIterationPpr(*g, 5);
  ASSERT_TRUE(pi.ok());
  double total = std::accumulate(pi->begin(), pi->end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(PprTest, CycleClosedForm) {
  // For the 2-cycle: pi(0) = c / (1 - (1-c)^2), pi(1) = (1-c) * pi(0).
  WeightedDigraph g = MakeCycle();
  const double c = 0.15;
  Result<std::vector<double>> pi = PowerIterationPpr(g, 0);
  ASSERT_TRUE(pi.ok());
  double expected0 = c / (1.0 - (1.0 - c) * (1.0 - c));
  EXPECT_NEAR((*pi)[0], expected0, 1e-9);
  EXPECT_NEAR((*pi)[1], (1.0 - c) * expected0, 1e-9);
}

TEST(PprTest, SourceHasHighestScore) {
  Rng rng(7);
  Result<WeightedDigraph> g = graph::ErdosRenyi(30, 150, rng);
  ASSERT_TRUE(g.ok());
  Result<std::vector<double>> pi = PowerIterationPpr(*g, 3);
  ASSERT_TRUE(pi.ok());
  for (size_t i = 0; i < pi->size(); ++i) {
    EXPECT_LE((*pi)[i], (*pi)[3] + 1e-12);
  }
}

TEST(PprFromSeedTest, EmptySeedRejected) {
  WeightedDigraph g = MakeCycle();
  EXPECT_FALSE(PowerIterationPprFromSeed(g, QuerySeed{}).ok());
}

TEST(PprFromSeedTest, SeedNodeOutOfRangeRejected) {
  WeightedDigraph g = MakeCycle();
  QuerySeed seed;
  seed.links.emplace_back(9, 1.0);
  EXPECT_FALSE(PowerIterationPprFromSeed(g, seed).ok());
}

TEST(PprFromSeedTest, MatchesManualSeriesOnChain) {
  // Graph 0 -> 1 (w=1), seed = {(0, 1.0)}:
  //   pi[0] = sum_k c(1-c)^{1} restricted... walk lengths: q->0 length 1,
  //   q->0->1 length 2. pi[0] = c(1-c), pi[1] = c(1-c)^2.
  WeightedDigraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  QuerySeed seed;
  seed.links.emplace_back(0, 1.0);
  Result<std::vector<double>> pi = PowerIterationPprFromSeed(g, seed);
  ASSERT_TRUE(pi.ok());
  const double c = 0.15;
  EXPECT_NEAR((*pi)[0], c * (1 - c), 1e-10);
  EXPECT_NEAR((*pi)[1], c * (1 - c) * (1 - c), 1e-10);
}

TEST(PprFromSeedTest, LinearInSeedWeights) {
  Rng rng(11);
  Result<WeightedDigraph> g = graph::ErdosRenyi(25, 120, rng);
  ASSERT_TRUE(g.ok());
  QuerySeed a;
  a.links.emplace_back(0, 1.0);
  QuerySeed b;
  b.links.emplace_back(1, 1.0);
  QuerySeed mix;
  mix.links.emplace_back(0, 0.3);
  mix.links.emplace_back(1, 0.7);

  auto pa = PowerIterationPprFromSeed(*g, a);
  auto pb = PowerIterationPprFromSeed(*g, b);
  auto pm = PowerIterationPprFromSeed(*g, mix);
  ASSERT_TRUE(pa.ok() && pb.ok() && pm.ok());
  for (size_t i = 0; i < pm->size(); ++i) {
    EXPECT_NEAR((*pm)[i], 0.3 * (*pa)[i] + 0.7 * (*pb)[i], 1e-9);
  }
}

TEST(RandomWalkBaselineTest, AgreesWithSeedPpr) {
  Rng rng(13);
  Result<WeightedDigraph> g = graph::ErdosRenyi(30, 150, rng);
  ASSERT_TRUE(g.ok());
  QuerySeed seed = QuerySeed::FromNode(*g, 0);
  ASSERT_FALSE(seed.empty());
  RandomWalkBaseline baseline(&*g);
  Result<std::vector<double>> pi = PowerIterationPprFromSeed(*g, seed);
  ASSERT_TRUE(pi.ok());
  for (graph::NodeId answer : {1u, 5u, 12u}) {
    Result<double> s = baseline.Similarity(seed, answer);
    ASSERT_TRUE(s.ok());
    EXPECT_NEAR(*s, (*pi)[answer], 1e-9);
  }
}

TEST(RandomWalkBaselineTest, InvalidAnswerRejected) {
  WeightedDigraph g = MakeCycle();
  RandomWalkBaseline baseline(&g);
  QuerySeed seed = QuerySeed::FromNode(g, 0);
  EXPECT_FALSE(baseline.Similarity(seed, 77).ok());
}

TEST(QuerySeedTest, FromNodeCopiesOutEdges) {
  WeightedDigraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.3).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.7).ok());
  QuerySeed seed = QuerySeed::FromNode(g, 0);
  ASSERT_EQ(seed.links.size(), 2u);
  EXPECT_EQ(seed.links[0].first, 1u);
  EXPECT_DOUBLE_EQ(seed.links[0].second, 0.3);
  EXPECT_DOUBLE_EQ(seed.TotalWeight(), 1.0);
}

TEST(QuerySeedTest, UniformOver) {
  QuerySeed seed = QuerySeed::UniformOver({4, 7, 9});
  ASSERT_EQ(seed.links.size(), 3u);
  for (const auto& [node, w] : seed.links) {
    EXPECT_NEAR(w, 1.0 / 3.0, 1e-12);
  }
  EXPECT_TRUE(QuerySeed::UniformOver({}).empty());
}

TEST(QuerySeedTest, Normalize) {
  QuerySeed seed;
  seed.links.emplace_back(0, 2.0);
  seed.links.emplace_back(1, 6.0);
  seed.Normalize();
  EXPECT_DOUBLE_EQ(seed.links[0].second, 0.25);
  EXPECT_DOUBLE_EQ(seed.links[1].second, 0.75);
  QuerySeed zero;
  zero.links.emplace_back(0, 0.0);
  zero.Normalize();  // no-op, no crash
  EXPECT_DOUBLE_EQ(zero.links[0].second, 0.0);
}

}  // namespace
}  // namespace kgov::ppr
