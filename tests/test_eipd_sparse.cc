// The frontier-tracked sparse EIPD kernel (internal::PropagatePhiSparse)
// and the kernel-selection layer around it.
//
// Load-bearing contracts, in order of importance:
//   1. With sparse_threshold == 0 the sparse kernel is BITWISE identical
//      to the frozen dense kernel (memcmp over the full phi vector) - the
//      sparse data path may then sit behind every existing bitwise gate.
//   2. With a positive threshold the error is one-sided (pruning only
//      drops non-negative contributions) and bounded by
//      pruned * threshold, so top-k rankings agree whenever score gaps
//      exceed the bound.
//   3. kAuto dispatch (internal::ResolveKernel / EipdEngine::KernelFor)
//      is deterministic in (options, num_nodes, seed_links), so a
//      multi-root lane resolves exactly as the same seed would solo.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "ppr/eipd_engine.h"
#include "ppr/query_seed.h"
#include "telemetry/metrics.h"

namespace kgov::ppr {
namespace {

using graph::CsrSnapshot;
using graph::WeightedDigraph;

bool BitwiseEqualVectors(const std::vector<double>& a,
                         const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// --- Contract 1: bitwise identity at threshold 0 -----------------------

class SparseBitwiseIdentity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparseBitwiseIdentity, ZeroThresholdMatchesDenseBitwise) {
  Rng rng(GetParam());
  Result<WeightedDigraph> g = graph::ScaleFreeWithTargetEdges(200, 900, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);

  for (int length : {1, 3, 5}) {
    EipdOptions dense_opts;
    dense_opts.max_length = length;
    dense_opts.kernel = EipdKernel::kDense;
    EipdOptions sparse_opts = dense_opts;
    sparse_opts.kernel = EipdKernel::kSparse;
    sparse_opts.sparse_threshold = 0.0;

    EipdEngine dense(snap.View(), dense_opts);
    EipdEngine sparse(snap.View(), sparse_opts);
    for (graph::NodeId v = 0; v < 200; v += 37) {
      QuerySeed seed = QuerySeed::FromNode(*g, v);
      if (seed.empty()) continue;
      StatusOr<std::vector<double>> d = dense.Propagate(seed);
      StatusOr<std::vector<double>> s = sparse.Propagate(seed);
      ASSERT_TRUE(d.ok()) << d.status();
      ASSERT_TRUE(s.ok()) << s.status();
      EXPECT_TRUE(BitwiseEqualVectors(*d, *s))
          << "seed " << v << " length " << length
          << ": sparse phi diverged from dense";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseBitwiseIdentity,
                         ::testing::Values(21, 22, 23));

TEST(SparseKernelTest, ZeroThresholdMatchesDenseWithOverrides) {
  Rng rng(31);
  Result<WeightedDigraph> g = graph::ErdosRenyi(60, 300, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);

  // Override a handful of edge weights (including one zeroed edge, which
  // both kernels must skip identically).
  std::unordered_map<graph::EdgeId, double> overrides;
  graph::GraphView view = snap.View();
  const graph::EdgeId* ids = view.edge_ids(0);
  if (ids != nullptr && view.begin(0) != view.end(0)) {
    overrides[ids[0]] = 0.0;
  }
  for (graph::NodeId u = 1; u < 10; ++u) {
    const graph::EdgeId* row = view.edge_ids(u);
    if (row != nullptr && view.begin(u) != view.end(u)) {
      overrides[row[0]] = 0.5;
    }
  }
  ASSERT_FALSE(overrides.empty());

  EipdEngine dense(snap.View(), {.kernel = EipdKernel::kDense});
  EipdEngine sparse(snap.View(),
                    {.kernel = EipdKernel::kSparse, .sparse_threshold = 0.0});
  QuerySeed seed = QuerySeed::FromNode(*g, 0);
  if (seed.empty()) GTEST_SKIP();
  StatusOr<std::vector<double>> d =
      dense.PropagateWithOverrides(seed, overrides);
  StatusOr<std::vector<double>> s =
      sparse.PropagateWithOverrides(seed, overrides);
  ASSERT_TRUE(d.ok()) << d.status();
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_TRUE(BitwiseEqualVectors(*d, *s));
}

TEST(SparseKernelTest, InternalKernelReportsZeroPrunedAtZeroThreshold) {
  Rng rng(33);
  Result<WeightedDigraph> g = graph::ScaleFreeWithTargetEdges(120, 500, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);

  EipdOptions options;
  options.sparse_threshold = 0.0;
  QuerySeed seed = QuerySeed::FromNode(*g, 1);
  if (seed.empty()) GTEST_SKIP();

  PropagationWorkspace ws;
  size_t pruned = internal::PropagatePhiSparse(
      internal::ViewAdjacency{snap.View()}, seed, options, nullptr, &ws);
  EXPECT_EQ(pruned, 0u);
}

// --- Contract 2: bounded one-sided pruning error -----------------------

TEST(SparseKernelTest, PruningErrorIsOneSidedAndBounded) {
  Rng rng(41);
  Result<WeightedDigraph> g = graph::ScaleFreeWithTargetEdges(400, 1800, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);

  const double threshold = 1e-4;  // aggressive: forces real pruning
  EipdOptions dense_opts;
  dense_opts.kernel = EipdKernel::kDense;
  EipdEngine dense(snap.View(), dense_opts);

  EipdOptions sparse_opts;
  sparse_opts.kernel = EipdKernel::kSparse;
  sparse_opts.sparse_threshold = threshold;

  size_t total_pruned = 0;
  for (graph::NodeId v = 0; v < 400; v += 53) {
    QuerySeed seed = QuerySeed::FromNode(*g, v);
    if (seed.empty()) continue;

    StatusOr<std::vector<double>> exact = dense.Propagate(seed);
    ASSERT_TRUE(exact.ok());

    PropagationWorkspace ws;
    size_t pruned = internal::PropagatePhiSparse(
        internal::ViewAdjacency{snap.View()}, seed, sparse_opts, nullptr,
        &ws);
    total_pruned += pruned;

    // Each pruned (node, level) drops < threshold of walk mass, and a
    // unit of walk mass contributes at most (1 - c) of itself to any
    // phi entry downstream - the documented bound, relaxed here to the
    // loose-but-safe pruned * threshold.
    const double bound =
        static_cast<double>(pruned) * threshold + 1e-12;
    for (size_t i = 0; i < exact->size(); ++i) {
      EXPECT_LE(ws.phi[i], (*exact)[i] + 1e-12)
          << "pruning must only underestimate (node " << i << ")";
      EXPECT_LE((*exact)[i] - ws.phi[i], bound)
          << "pruning error exceeded the documented bound (node " << i
          << ")";
    }
  }
  EXPECT_GT(total_pruned, 0u)
      << "threshold 1e-4 on a 400-node scale-free graph should prune; "
         "the bound check above was vacuous";
}

TEST(SparseKernelTest, TopKAgreesWithDenseAtModerateThreshold) {
  Rng rng(43);
  Result<WeightedDigraph> g = graph::ScaleFreeWithTargetEdges(300, 1400, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);

  std::vector<graph::NodeId> candidates;
  for (graph::NodeId v = 0; v < 300; v += 7) candidates.push_back(v);

  EipdEngine dense(snap.View(), {.kernel = EipdKernel::kDense});
  EipdEngine sparse(snap.View(), {.kernel = EipdKernel::kSparse,
                                  .sparse_threshold = 1e-12});

  for (graph::NodeId v : {2, 29, 61, 107}) {
    QuerySeed seed = QuerySeed::FromNode(*g, v);
    if (seed.empty()) continue;
    StatusOr<std::vector<ScoredAnswer>> d = dense.Rank(seed, candidates, 10);
    StatusOr<std::vector<ScoredAnswer>> s = sparse.Rank(seed, candidates, 10);
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(s.ok());
    ASSERT_EQ(d->size(), s->size());
    for (size_t i = 0; i < d->size(); ++i) {
      EXPECT_EQ((*d)[i].node, (*s)[i].node) << "rank " << i;
      EXPECT_NEAR((*d)[i].score, (*s)[i].score, 1e-9) << "rank " << i;
    }
  }
}

// --- Contract 3: kAuto dispatch ---------------------------------------

TEST(KernelResolutionTest, ExplicitKernelsAreNeverOverridden) {
  EipdOptions dense;
  dense.kernel = EipdKernel::kDense;
  EipdOptions sparse;
  sparse.kernel = EipdKernel::kSparse;
  // Explicit choices win regardless of size and seed sparsity.
  EXPECT_EQ(internal::ResolveKernel(dense, 10'000'000, 1),
            EipdKernel::kDense);
  EXPECT_EQ(internal::ResolveKernel(sparse, 10, 9), EipdKernel::kSparse);
}

TEST(KernelResolutionTest, AutoPicksDenseBelowMinNodes) {
  EipdOptions auto_opts;
  EXPECT_EQ(internal::ResolveKernel(auto_opts,
                                    internal::kSparseKernelMinNodes - 1, 1),
            EipdKernel::kDense);
  EXPECT_EQ(
      internal::ResolveKernel(auto_opts, internal::kSparseKernelMinNodes, 1),
      EipdKernel::kSparse);
}

TEST(KernelResolutionTest, AutoPicksDenseForFloodingSeeds) {
  EipdOptions auto_opts;
  const size_t n = 1u << 20;
  const size_t flood = n / internal::kSparseKernelSeedFactor;
  EXPECT_EQ(internal::ResolveKernel(auto_opts, n, flood),
            EipdKernel::kDense);
  EXPECT_EQ(internal::ResolveKernel(auto_opts, n, flood - 1),
            EipdKernel::kSparse);
}

TEST(KernelResolutionTest, EngineKernelForMatchesResolveKernel) {
  Rng rng(47);
  Result<WeightedDigraph> g = graph::ErdosRenyi(50, 250, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);

  QuerySeed seed = QuerySeed::FromNode(*g, 0);
  if (seed.empty()) GTEST_SKIP();

  EipdEngine auto_engine(snap.View(), {.kernel = EipdKernel::kAuto});
  // 50 nodes < kSparseKernelMinNodes: kAuto resolves dense.
  EXPECT_EQ(auto_engine.KernelFor(seed), EipdKernel::kDense);

  EipdEngine sparse_engine(snap.View(), {.kernel = EipdKernel::kSparse});
  EXPECT_EQ(sparse_engine.KernelFor(seed), EipdKernel::kSparse);
}

TEST(KernelResolutionTest, KernelTelemetryCountsDispatch) {
  Rng rng(49);
  Result<WeightedDigraph> g = graph::ErdosRenyi(40, 200, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);
  QuerySeed seed = QuerySeed::FromNode(*g, 0);
  if (seed.empty()) GTEST_SKIP();

  telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Global();
  const uint64_t dense_before =
      reg.GetCounter("serving.eipd.kernel.dense")->Value();
  const uint64_t sparse_before =
      reg.GetCounter("serving.eipd.kernel.sparse")->Value();

  EipdEngine dense(snap.View(), {.kernel = EipdKernel::kDense});
  EipdEngine sparse(snap.View(), {.kernel = EipdKernel::kSparse});
  ASSERT_TRUE(dense.Propagate(seed).ok());
  ASSERT_TRUE(sparse.Propagate(seed).ok());

  EXPECT_EQ(reg.GetCounter("serving.eipd.kernel.dense")->Value(),
            dense_before + 1);
  EXPECT_EQ(reg.GetCounter("serving.eipd.kernel.sparse")->Value(),
            sparse_before + 1);
}

TEST(KernelResolutionTest, KernelNamesAreStable) {
  EXPECT_STREQ(EipdKernelName(EipdKernel::kAuto), "auto");
  EXPECT_STREQ(EipdKernelName(EipdKernel::kDense), "dense");
  EXPECT_STREQ(EipdKernelName(EipdKernel::kSparse), "sparse");
}

TEST(KernelResolutionTest, OptionsValidateRejectsBadThreshold) {
  EipdOptions options;
  options.sparse_threshold = -1.0;
  EXPECT_FALSE(options.Validate().ok());
  options.sparse_threshold = 0.0;
  EXPECT_TRUE(options.Validate().ok());
}

// --- Multi-root lanes under the sparse kernel --------------------------

TEST(SparseMultiRootTest, SparseLanesBitwiseMatchSoloSparse) {
  Rng rng(53);
  Result<WeightedDigraph> g = graph::ScaleFreeWithTargetEdges(100, 450, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);

  EipdOptions options;
  options.kernel = EipdKernel::kSparse;  // force sparse on a small graph
  options.max_length = 4;

  std::vector<QuerySeed> seeds;
  for (graph::NodeId v : {3, 17, 42}) {
    QuerySeed seed = QuerySeed::FromNode(*g, v);
    if (!seed.empty()) seeds.push_back(std::move(seed));
  }
  if (seeds.empty()) GTEST_SKIP();

  std::vector<const QuerySeed*> roots;
  for (const QuerySeed& seed : seeds) roots.push_back(&seed);
  MultiPropagationWorkspace multi_ws;
  internal::PropagatePhiMulti(internal::ViewAdjacency{snap.View()}, roots,
                              options, &multi_ws);
  for (size_t b = 0; b < seeds.size(); ++b) {
    EXPECT_EQ(multi_ws.lane_kernels[b], EipdKernel::kSparse);
  }

  PropagationWorkspace solo_ws;
  for (size_t b = 0; b < seeds.size(); ++b) {
    internal::PropagatePhiSparse(internal::ViewAdjacency{snap.View()},
                                 seeds[b], options, nullptr, &solo_ws);
    ASSERT_EQ(solo_ws.phi.size(), multi_ws.lanes[b].phi.size());
    EXPECT_EQ(std::memcmp(solo_ws.phi.data(), multi_ws.lanes[b].phi.data(),
                          solo_ws.phi.size() * sizeof(double)),
              0)
        << "sparse lane " << b << " diverged from solo sparse propagation";
  }
}

TEST(SparseMultiRootTest, RankMultiMatchesRankUnderSparseKernel) {
  Rng rng(59);
  Result<WeightedDigraph> g = graph::ErdosRenyi(60, 320, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);

  EipdEngine engine(snap.View(), {.kernel = EipdKernel::kSparse});
  std::vector<graph::NodeId> candidates{1, 5, 9, 13, 22, 31, 44};

  std::vector<QuerySeed> seeds;
  for (graph::NodeId v = 0; v < 60 && seeds.size() < 3; v += 11) {
    QuerySeed seed = QuerySeed::FromNode(*g, v);
    if (!seed.empty()) seeds.push_back(std::move(seed));
  }
  if (seeds.empty()) GTEST_SKIP();

  StatusOr<std::vector<std::vector<ScoredAnswer>>> multi =
      engine.RankMulti(seeds, candidates, 5);
  ASSERT_TRUE(multi.ok()) << multi.status();
  for (size_t b = 0; b < seeds.size(); ++b) {
    StatusOr<std::vector<ScoredAnswer>> solo =
        engine.Rank(seeds[b], candidates, 5);
    ASSERT_TRUE(solo.ok());
    ASSERT_EQ(solo->size(), (*multi)[b].size());
    for (size_t i = 0; i < solo->size(); ++i) {
      EXPECT_EQ((*solo)[i].node, (*multi)[b][i].node);
      double a = (*solo)[i].score;
      double bscore = (*multi)[b][i].score;
      EXPECT_EQ(std::memcmp(&a, &bscore, sizeof(double)), 0)
          << "lane " << b << " rank " << i;
    }
  }
}

// --- Workspace reuse / lazy-reset correctness --------------------------

TEST(SparseWorkspaceTest, ConsecutiveSparseQueriesLazyResetCorrectly) {
  Rng rng(61);
  Result<WeightedDigraph> g = graph::ScaleFreeWithTargetEdges(150, 700, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);
  EipdEngine engine(snap.View(), {.kernel = EipdKernel::kSparse});

  PropagationWorkspace shared;
  for (graph::NodeId v = 0; v < 150; v += 13) {
    QuerySeed seed = QuerySeed::FromNode(*g, v);
    if (seed.empty()) continue;
    StatusOr<std::vector<double>> reused = engine.Propagate(seed, &shared);
    PropagationWorkspace fresh;
    StatusOr<std::vector<double>> clean = engine.Propagate(seed, &fresh);
    ASSERT_TRUE(reused.ok());
    ASSERT_TRUE(clean.ok());
    EXPECT_TRUE(BitwiseEqualVectors(*reused, *clean))
        << "lazy reset left stale state behind (seed " << v << ")";
  }
}

TEST(SparseWorkspaceTest, DenseRunInvalidatesSparseTracking) {
  Rng rng(67);
  Result<WeightedDigraph> g = graph::ErdosRenyi(80, 400, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);

  EipdEngine dense(snap.View(), {.kernel = EipdKernel::kDense});
  EipdEngine sparse(snap.View(), {.kernel = EipdKernel::kSparse});

  QuerySeed a = QuerySeed::FromNode(*g, 0);
  QuerySeed b = QuerySeed::FromNode(*g, 7);
  if (a.empty() || b.empty()) GTEST_SKIP();

  // sparse -> dense -> sparse through one workspace. The dense run writes
  // untracked entries; the final sparse run must detect that and fully
  // reset rather than trusting the stale touched list.
  PropagationWorkspace shared;
  ASSERT_TRUE(sparse.Propagate(a, &shared).ok());
  ASSERT_TRUE(dense.Propagate(b, &shared).ok());
  StatusOr<std::vector<double>> interleaved = sparse.Propagate(a, &shared);
  StatusOr<std::vector<double>> clean = sparse.Propagate(a);
  ASSERT_TRUE(interleaved.ok());
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(BitwiseEqualVectors(*interleaved, *clean));
}

TEST(SparseWorkspaceTest, ResizeAcrossGraphsFallsBackToFullReset) {
  Rng rng(71);
  Result<WeightedDigraph> small = graph::ErdosRenyi(40, 200, rng);
  Result<WeightedDigraph> large = graph::ErdosRenyi(90, 500, rng);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  CsrSnapshot small_snap(*small);
  CsrSnapshot large_snap(*large);

  EipdEngine on_small(small_snap.View(), {.kernel = EipdKernel::kSparse});
  EipdEngine on_large(large_snap.View(), {.kernel = EipdKernel::kSparse});

  QuerySeed small_seed = QuerySeed::FromNode(*small, 1);
  QuerySeed large_seed = QuerySeed::FromNode(*large, 1);
  if (small_seed.empty() || large_seed.empty()) GTEST_SKIP();

  PropagationWorkspace shared;
  ASSERT_TRUE(on_small.Propagate(small_seed, &shared).ok());
  StatusOr<std::vector<double>> grown =
      on_large.Propagate(large_seed, &shared);
  StatusOr<std::vector<double>> clean = on_large.Propagate(large_seed);
  ASSERT_TRUE(grown.ok());
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(BitwiseEqualVectors(*grown, *clean));

  // Shrink back down again: size mismatch must trigger the full reset.
  StatusOr<std::vector<double>> shrunk =
      on_small.Propagate(small_seed, &shared);
  StatusOr<std::vector<double>> small_clean =
      on_small.Propagate(small_seed);
  ASSERT_TRUE(shrunk.ok());
  ASSERT_TRUE(small_clean.ok());
  EXPECT_TRUE(BitwiseEqualVectors(*shrunk, *small_clean));
}

}  // namespace
}  // namespace kgov::ppr
