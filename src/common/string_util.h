// Small string helpers shared by the corpus generator, graph I/O, and the
// benchmark table printers.

#ifndef KGOV_COMMON_STRING_UTIL_H_
#define KGOV_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace kgov {

/// Splits `input` on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view input,
                                     std::string_view delims);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view input);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// True when `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats a double with `precision` fractional digits ("%.*f").
std::string FormatDouble(double value, int precision);

/// Formats seconds adaptively: "950us", "12.3ms", "4.56s", "3.2min".
std::string FormatDuration(double seconds);

}  // namespace kgov

#endif  // KGOV_COMMON_STRING_UTIL_H_
