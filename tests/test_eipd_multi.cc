// Multi-root propagation (EipdEngine::RankMulti / PropagatePhiMulti).
//
// The serving-path batcher folds same-cluster queries into one
// level-interleaved pass; its load-bearing contract is that every lane is
// BITWISE identical to the solo propagation of the same seed (a cache
// entry written by a batched leader must satisfy the same memcmp check a
// solo entry does). These tests compare raw score bits, not tolerances.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "ppr/eipd_engine.h"
#include "ppr/query_seed.h"
#include "telemetry/metrics.h"

namespace kgov::ppr {
namespace {

using graph::CsrSnapshot;
using graph::WeightedDigraph;

bool BitwiseEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void ExpectIdenticalRanking(const std::vector<ScoredAnswer>& a,
                            const std::vector<ScoredAnswer>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node) << "rank " << i;
    EXPECT_TRUE(BitwiseEqual(a[i].score, b[i].score))
        << "rank " << i << ": " << a[i].score << " vs " << b[i].score;
  }
}

class RankMultiEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RankMultiEquivalence, EveryLaneBitwiseMatchesSoloRank) {
  Rng rng(GetParam());
  Result<WeightedDigraph> g = graph::ErdosRenyi(40, 200, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);

  std::vector<graph::NodeId> candidates;
  for (graph::NodeId v = 0; v < 40; v += 3) candidates.push_back(v);

  std::vector<QuerySeed> seeds;
  for (int i = 0; i < 5 && seeds.size() < 4; ++i) {
    QuerySeed seed = QuerySeed::FromNode(
        *g, static_cast<graph::NodeId>(rng.NextIndex(40)));
    if (!seed.empty()) seeds.push_back(std::move(seed));
  }
  if (seeds.empty()) GTEST_SKIP();
  // Duplicate roots must be allowed (the batcher dedupes by flight key,
  // but single-flight can be disabled) and identical per lane.
  seeds.push_back(seeds.front());

  for (int length : {1, 3, 5}) {
    EipdEngine engine(snap.View(), {.max_length = length});
    StatusOr<std::vector<std::vector<ScoredAnswer>>> multi =
        engine.RankMulti(seeds, candidates, 6);
    ASSERT_TRUE(multi.ok()) << multi.status();
    ASSERT_EQ(multi->size(), seeds.size());
    for (size_t b = 0; b < seeds.size(); ++b) {
      StatusOr<std::vector<ScoredAnswer>> solo =
          engine.Rank(seeds[b], candidates, 6);
      ASSERT_TRUE(solo.ok()) << solo.status();
      ExpectIdenticalRanking(*solo, (*multi)[b]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankMultiEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(RankMultiTest, FullPhiVectorsBitwiseMatchSoloPropagation) {
  Rng rng(7);
  Result<WeightedDigraph> g = graph::ErdosRenyi(30, 150, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);
  graph::GraphView view = snap.View();

  EipdOptions options;
  options.max_length = 4;

  std::vector<QuerySeed> seeds;
  for (graph::NodeId v : {0, 5, 11}) {
    QuerySeed seed = QuerySeed::FromNode(*g, v);
    if (!seed.empty()) seeds.push_back(std::move(seed));
  }
  if (seeds.empty()) GTEST_SKIP();

  std::vector<const QuerySeed*> roots;
  for (const QuerySeed& seed : seeds) roots.push_back(&seed);
  MultiPropagationWorkspace multi_ws;
  internal::PropagatePhiMulti(internal::ViewAdjacency{view}, roots, options,
                              &multi_ws);

  PropagationWorkspace solo_ws;
  for (size_t b = 0; b < seeds.size(); ++b) {
    internal::PropagatePhi(internal::ViewAdjacency{view}, seeds[b], options,
                           nullptr, &solo_ws);
    ASSERT_EQ(solo_ws.phi.size(), multi_ws.lanes[b].phi.size());
    EXPECT_EQ(std::memcmp(solo_ws.phi.data(), multi_ws.lanes[b].phi.data(),
                          solo_ws.phi.size() * sizeof(double)),
              0)
        << "lane " << b << " diverged from the solo propagation";
  }
}

TEST(RankMultiTest, EmptySeedListReturnsEmptyAndSingleSeedMatchesRank) {
  Rng rng(11);
  Result<WeightedDigraph> g = graph::ErdosRenyi(20, 80, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);
  EipdEngine engine(snap.View(), {.max_length = 3});
  std::vector<graph::NodeId> candidates{1, 4, 7, 10};

  StatusOr<std::vector<std::vector<ScoredAnswer>>> none =
      engine.RankMulti({}, candidates, 3);
  ASSERT_TRUE(none.ok()) << none.status();
  EXPECT_TRUE(none->empty());

  QuerySeed seed = QuerySeed::FromNode(*g, 0);
  if (seed.empty()) GTEST_SKIP();
  StatusOr<std::vector<std::vector<ScoredAnswer>>> one =
      engine.RankMulti({seed}, candidates, 3);
  ASSERT_TRUE(one.ok()) << one.status();
  ASSERT_EQ(one->size(), 1u);
  StatusOr<std::vector<ScoredAnswer>> solo = engine.Rank(seed, candidates, 3);
  ASSERT_TRUE(solo.ok()) << solo.status();
  ExpectIdenticalRanking(*solo, one->front());
}

TEST(RankMultiTest, WorkspaceLanesGrowButNeverShrinkAcrossCalls) {
  Rng rng(13);
  Result<WeightedDigraph> g = graph::ErdosRenyi(20, 80, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);
  EipdEngine engine(snap.View(), {.max_length = 3});
  std::vector<graph::NodeId> candidates{1, 4, 7, 10};

  std::vector<QuerySeed> seeds;
  for (graph::NodeId v = 0; v < 20 && seeds.size() < 4; ++v) {
    QuerySeed seed = QuerySeed::FromNode(*g, v);
    if (!seed.empty()) seeds.push_back(std::move(seed));
  }
  if (seeds.size() < 4) GTEST_SKIP();

  MultiPropagationWorkspace ws;
  ASSERT_TRUE(engine.RankMulti(seeds, candidates, 3, &ws).ok());
  EXPECT_EQ(ws.lanes.size(), 4u);

  // A smaller batch reuses the first lanes in place (steady-state batched
  // serving allocates nothing per pass).
  std::vector<QuerySeed> two(seeds.begin(), seeds.begin() + 2);
  StatusOr<std::vector<std::vector<ScoredAnswer>>> again =
      engine.RankMulti(two, candidates, 3, &ws);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(ws.lanes.size(), 4u);
  StatusOr<std::vector<ScoredAnswer>> solo = engine.Rank(two[1], candidates, 3);
  ASSERT_TRUE(solo.ok());
  ExpectIdenticalRanking(*solo, (*again)[1]);
}

TEST(RankMultiTest, InvalidSeedFailsTheBatchBeforePropagating) {
  Rng rng(17);
  Result<WeightedDigraph> g = graph::ErdosRenyi(20, 80, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);
  EipdEngine engine(snap.View(), {.max_length = 3});

  QuerySeed good = QuerySeed::FromNode(*g, 0);
  QuerySeed bad;
  bad.links.emplace_back(999, 1.0);
  StatusOr<std::vector<std::vector<ScoredAnswer>>> multi =
      engine.RankMulti({good, bad}, {1, 4}, 2);
  ASSERT_FALSE(multi.ok());
  EXPECT_EQ(multi.status().code(), StatusCode::kInvalidArgument);
}

TEST(RankMultiTest, TelemetryCountsPassesAndRoots) {
  Rng rng(19);
  Result<WeightedDigraph> g = graph::ErdosRenyi(20, 80, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);
  EipdEngine engine(snap.View(), {.max_length = 3});

  std::vector<QuerySeed> seeds;
  for (graph::NodeId v = 0; v < 20 && seeds.size() < 3; ++v) {
    QuerySeed seed = QuerySeed::FromNode(*g, v);
    if (!seed.empty()) seeds.push_back(std::move(seed));
  }
  if (seeds.size() < 3) GTEST_SKIP();

  telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Global();
  const uint64_t passes_before =
      reg.GetCounter("serving.eipd.multi_passes")->Value();
  const uint64_t roots_before =
      reg.GetCounter("serving.eipd.multi_roots")->Value();
  ASSERT_TRUE(engine.RankMulti(seeds, {1, 4, 7}, 2).ok());
  EXPECT_EQ(reg.GetCounter("serving.eipd.multi_passes")->Value(),
            passes_before + 1);
  EXPECT_EQ(reg.GetCounter("serving.eipd.multi_roots")->Value(),
            roots_before + seeds.size());
}

}  // namespace
}  // namespace kgov::ppr
