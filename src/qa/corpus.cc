#include "qa/corpus.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace kgov::qa {

CorpusParams TaobaoScaleParams() {
  CorpusParams params;
  // Tuned jointly so (a) BuildKnowledgeGraph yields entity-edge counts
  // near Table II's Taobao row (1,663 nodes / 17,591 edges) and (b) the
  // baseline ordering of Table V (IR << KG) reproduces: tight topics with
  // query-side vocabulary create the lexical gap that defeats surface
  // overlap, while mention-count alignment gives the weighted graph its
  // edge.
  params.num_entities = 1663;
  params.num_topics = 180;
  params.num_documents = 2379;
  params.mentions_per_document = 6;
  params.mentions_per_question = 3;
  params.cross_topic_noise = 0.02;
  params.max_mention_count = 5;
  params.common_entity_fraction = 0.0;
  params.common_mentions_per_document = 0;
  params.query_entities_per_topic = 3;
  params.question_paraphrase_fraction = 0.5;
  return params;
}

Result<Corpus> GenerateCorpus(const CorpusParams& params, Rng& rng) {
  if (params.num_entities == 0 || params.num_topics == 0 ||
      params.num_documents == 0) {
    return Status::InvalidArgument("corpus dimensions must be positive");
  }
  size_t reserved_common = static_cast<size_t>(
      params.common_entity_fraction * static_cast<double>(params.num_entities));
  if (reserved_common >= params.num_entities) {
    return Status::InvalidArgument("common entities exceed vocabulary");
  }
  size_t per_topic =
      (params.num_entities - reserved_common) / params.num_topics;
  if (per_topic < params.query_entities_per_topic + 2) {
    return Status::InvalidArgument(
        "fewer than query_entities_per_topic + 2 entities per topic");
  }
  if (params.mentions_per_document > params.num_entities) {
    return Status::InvalidArgument("document mentions exceed vocabulary");
  }
  // Each document draws its topical mentions from the topic's document-side
  // vocabulary; if that pool is smaller than the requested count the
  // generator would stall on duplicate rejections and pad documents with
  // cross-topic noise (unique fingerprints that break the experiments).
  {
    size_t reserved = static_cast<size_t>(params.common_entity_fraction *
                                          static_cast<double>(params.num_entities));
    size_t block = (params.num_entities - reserved) / params.num_topics;
    size_t doc_vocab = block > params.query_entities_per_topic
                           ? block - params.query_entities_per_topic
                           : 0;
    size_t commons_in_doc = std::min(params.common_mentions_per_document,
                                     reserved);
    if (params.mentions_per_document > commons_in_doc + doc_vocab) {
      return Status::InvalidArgument(
          "mentions_per_document exceeds per-topic document vocabulary");
    }
  }
  if (params.max_mention_count < 1) {
    return Status::InvalidArgument("max_mention_count must be >= 1");
  }

  Corpus corpus;
  corpus.num_entities = params.num_entities;

  // The first `num_common` entities are topic-free common terms; the rest
  // are assigned to topics in contiguous blocks (remainder entities join
  // the last topic).
  const size_t num_common = static_cast<size_t>(
      params.common_entity_fraction * static_cast<double>(params.num_entities));
  auto topic_of = [&](EntityId e) {
    if (e < num_common) return params.num_topics;  // sentinel: common
    size_t t = (e - num_common) / per_topic;
    return std::min(t, params.num_topics - 1);
  };
  corpus.entity_names.reserve(params.num_entities);
  for (EntityId e = 0; e < params.num_entities; ++e) {
    if (e < num_common) {
      corpus.entity_names.push_back("common_entity" + std::to_string(e));
    } else {
      corpus.entity_names.push_back("topic" + std::to_string(topic_of(e)) +
                                    "_entity" + std::to_string(e));
    }
  }

  // Entity index ranges per topic for sampling.
  auto topic_range = [&](size_t t) {
    size_t begin = num_common + t * per_topic;
    size_t end =
        (t + 1 == params.num_topics) ? params.num_entities : begin + per_topic;
    return std::pair<size_t, size_t>{begin, end};
  };

  corpus.documents.reserve(params.num_documents);
  for (size_t d = 0; d < params.num_documents; ++d) {
    Document doc;
    doc.topic = static_cast<int>(rng.NextIndex(params.num_topics));
    auto [begin, end] = topic_range(static_cast<size_t>(doc.topic));
    // The first query_entities_per_topic entities of the block are
    // query-side vocabulary: documents never mention them.
    size_t doc_begin = begin + std::min(params.query_entities_per_topic,
                                        end - begin);
    // Query-side vocabulary never occurs in document text, including in
    // cross-topic noise mentions.
    auto is_query_side = [&](EntityId e) {
      if (e < num_common) return false;
      size_t t = std::min<size_t>((e - num_common) / per_topic,
                                  params.num_topics - 1);
      size_t block_begin = num_common + t * per_topic;
      return e < block_begin + params.query_entities_per_topic;
    };
    std::unordered_set<EntityId> used;
    // Ambient vocabulary first: every document mentions a couple of common
    // entities (these also flow into questions via the subset sampling).
    if (num_common > 0) {
      size_t take = std::min(params.common_mentions_per_document, num_common);
      std::vector<size_t> commons =
          rng.SampleWithoutReplacement(num_common, take);
      for (size_t idx : commons) {
        EntityMention mention;
        mention.entity = static_cast<EntityId>(idx);
        mention.count =
            static_cast<int>(rng.UniformInt(1, params.max_mention_count));
        used.insert(mention.entity);
        doc.mentions.push_back(mention);
      }
    }
    while (doc.mentions.size() < params.mentions_per_document) {
      EntityId entity;
      if (rng.Bernoulli(params.cross_topic_noise)) {
        do {
          entity = static_cast<EntityId>(rng.NextIndex(params.num_entities));
        } while (is_query_side(entity));
      } else {
        entity = static_cast<EntityId>(doc_begin +
                                       rng.NextIndex(end - doc_begin));
      }
      if (!used.insert(entity).second) continue;
      EntityMention mention;
      mention.entity = entity;
      mention.count =
          static_cast<int>(rng.UniformInt(1, params.max_mention_count));
      doc.mentions.push_back(mention);
    }
    // Historical paired questions: the topic's query-side entities
    // co-occur with this document's text in past Q&A pairs.
    for (size_t q = 0; q < std::min(params.query_entities_per_topic,
                                    end - begin);
         ++q) {
      if (!rng.Bernoulli(0.75)) continue;  // not every pair uses every term
      EntityMention mention;
      mention.entity = static_cast<EntityId>(begin + q);
      mention.count =
          static_cast<int>(rng.UniformInt(1, params.max_mention_count));
      doc.query_mentions.push_back(mention);
    }
    corpus.documents.push_back(std::move(doc));
  }
  return corpus;
}

std::vector<Question> GenerateQuestions(const Corpus& corpus,
                                        size_t num_questions,
                                        const CorpusParams& params,
                                        Rng& rng) {
  KGOV_CHECK(!corpus.documents.empty());
  std::vector<Question> questions;
  questions.reserve(num_questions);

  // Reconstruct the vocabulary layout (common block + topic blocks) the
  // corpus was generated with; needed for paraphrased mentions.
  const size_t num_common = static_cast<size_t>(
      params.common_entity_fraction * static_cast<double>(corpus.num_entities));
  const size_t per_topic =
      params.num_topics > 0
          ? (corpus.num_entities - num_common) / params.num_topics
          : 0;
  auto topic_range = [&](size_t t) {
    size_t begin = num_common + t * per_topic;
    size_t end = (t + 1 == params.num_topics) ? corpus.num_entities
                                              : begin + per_topic;
    return std::pair<size_t, size_t>{begin, end};
  };

  // Zipf-style popularity over documents (document index = popularity
  // rank); skew 0 degenerates to the uniform distribution.
  std::vector<double> popularity(corpus.documents.size());
  for (size_t d = 0; d < popularity.size(); ++d) {
    popularity[d] =
        std::pow(static_cast<double>(d + 1), -params.question_popularity_skew);
  }

  for (size_t q = 0; q < num_questions; ++q) {
    int target = static_cast<int>(rng.Categorical(popularity));
    const Document& doc = corpus.documents[target];

    Question question;
    question.best_document = target;

    // Mention a mix of the target document's own entities (direct) and
    // related same-topic entities absent from it (paraphrase); see
    // question_paraphrase_fraction. Common (stop-word-like) entities carry
    // no intent and are filtered by entity extraction, so questions sample
    // only the document's topical mentions.
    std::vector<size_t> topical;
    for (size_t i = 0; i < doc.mentions.size(); ++i) {
      if (doc.mentions[i].entity >= num_common) topical.push_back(i);
    }
    if (topical.empty()) {
      for (size_t i = 0; i < doc.mentions.size(); ++i) topical.push_back(i);
    }
    // Users ask about what the document is centrally about: prefer the
    // highest-count mentions (ties shuffled).
    rng.Shuffle(topical);
    std::stable_sort(topical.begin(), topical.end(),
                     [&](size_t a, size_t b) {
                       return doc.mentions[a].count > doc.mentions[b].count;
                     });
    size_t take = std::min(params.mentions_per_question, topical.size());
    std::vector<size_t> picks(topical.begin(), topical.begin() + take);
    std::unordered_set<EntityId> doc_entity_set;
    for (const EntityMention& m : doc.mentions) {
      doc_entity_set.insert(m.entity);
    }
    std::unordered_set<EntityId> used;
    bool first_mention = true;
    for (size_t idx : picks) {
      // The user's emphasis mirrors the document's: mention counts follow
      // the doc's counts. This is the count-share signal the KG's
      // answer-link weights encode and surface overlap cannot.
      EntityMention mention = doc.mentions[idx];
      bool paraphrase = !first_mention && !doc.query_mentions.empty() &&
                        rng.Bernoulli(params.question_paraphrase_fraction);
      if (paraphrase) {
        // Query-side vocabulary of this document's historical questions.
        const EntityMention& qm = doc.query_mentions[rng.NextIndex(
            doc.query_mentions.size())];
        mention.entity = qm.entity;
        mention.count = qm.count;
      } else if (rng.Bernoulli(params.cross_topic_noise * 0.5)) {
        mention.entity =
            static_cast<EntityId>(rng.NextIndex(corpus.num_entities));
      }
      if (!used.insert(mention.entity).second) continue;
      question.mentions.push_back(mention);
      first_mention = false;
    }
    if (question.mentions.empty()) {
      // Degenerate sample; fall back to the doc's first entity.
      question.mentions.push_back(doc.mentions.front());
    }

    // Graded relevance: same-topic documents sharing >= 2 entities with the
    // target (up to 4 extras), plus the target itself.
    question.relevant_documents.push_back(target);
    std::unordered_set<EntityId> target_entities;
    for (const EntityMention& m : doc.mentions) {
      target_entities.insert(m.entity);
    }
    for (size_t d = 0;
         d < corpus.documents.size() && question.relevant_documents.size() < 5;
         ++d) {
      if (static_cast<int>(d) == target) continue;
      const Document& other = corpus.documents[d];
      if (other.topic != doc.topic) continue;
      int shared = 0;
      for (const EntityMention& m : other.mentions) {
        if (target_entities.count(m.entity) > 0) ++shared;
      }
      if (shared >= 2) {
        question.relevant_documents.push_back(static_cast<int>(d));
      }
    }
    questions.push_back(std::move(question));
  }
  return questions;
}

}  // namespace kgov::qa
