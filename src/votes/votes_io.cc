#include "votes/votes_io.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/string_util.h"

namespace kgov::votes {
namespace {

// strtoul/strtod wrappers that reject partial parses, range overflow, and
// (for node ids) negative input - unlike std::stoul/std::stod they never
// throw, so malformed tokens surface as Status instead of terminating.
bool ParseNodeId(const std::string& token, graph::NodeId* out) {
  if (token.empty() || token[0] == '-') return false;
  const char* begin = token.c_str();
  char* end = nullptr;
  errno = 0;
  unsigned long value = std::strtoul(begin, &end, 10);
  if (end == begin || *end != '\0' || errno == ERANGE ||
      value > std::numeric_limits<graph::NodeId>::max()) {
    return false;
  }
  *out = static_cast<graph::NodeId>(value);
  return true;
}

bool ParseFiniteWeight(const std::string& token, double* out) {
  if (token.empty()) return false;
  const char* begin = token.c_str();
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(begin, &end);
  if (end == begin || *end != '\0' || !std::isfinite(value)) return false;
  *out = value;
  return true;
}

}  // namespace

Status SaveVotes(const std::vector<Vote>& votes, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << std::setprecision(17);
  out << "# kgov votes: " << votes.size() << "\n";
  for (const Vote& vote : votes) {
    out << "V " << vote.id << ' ' << vote.weight << " B "
        << vote.best_answer << " A";
    for (graph::NodeId node : vote.answer_list) out << ' ' << node;
    out << " S";
    for (const auto& [node, weight] : vote.query.links) {
      out << ' ' << node << ':' << weight;
    }
    out << "\n";
  }
  if (!out.good()) {
    return Status::IoError("write failure on '" + path + "'");
  }
  return Status::OK();
}

Result<std::vector<Vote>> LoadVotes(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::vector<Vote> votes;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream fields{std::string(trimmed)};
    std::string tag;
    fields >> tag;
    if (tag != "V") {
      return Status::IoError("unknown tag '" + tag + "' at " + path + ":" +
                             std::to_string(line_no));
    }
    Vote vote;
    std::string section;
    fields >> vote.id >> vote.weight >> section;
    if (fields.fail() || section != "B") {
      return Status::IoError("bad vote header at " + path + ":" +
                             std::to_string(line_no));
    }
    // NaN fails every ordered comparison, so test positivity in a form
    // NaN cannot pass, and reject infinities explicitly.
    if (!(vote.weight > 0.0) || !std::isfinite(vote.weight)) {
      return Status::InvalidArgument(
          "vote weight must be finite and > 0 at " + path + ":" +
          std::to_string(line_no));
    }
    fields >> vote.best_answer;
    // Answer list.
    fields >> section;
    if (fields.fail() || section != "A") {
      return Status::IoError("missing answer list at " + path + ":" +
                             std::to_string(line_no));
    }
    std::string token;
    bool in_seed = false;
    while (fields >> token) {
      if (token == "S") {
        in_seed = true;
        continue;
      }
      if (!in_seed) {
        graph::NodeId answer = graph::kInvalidNode;
        if (!ParseNodeId(token, &answer)) {
          return Status::InvalidArgument("bad answer id '" + token + "' at " +
                                         path + ":" +
                                         std::to_string(line_no));
        }
        vote.answer_list.push_back(answer);
      } else {
        size_t colon = token.find(':');
        if (colon == std::string::npos) {
          return Status::IoError("bad seed link '" + token + "' at " + path +
                                 ":" + std::to_string(line_no));
        }
        graph::NodeId node = graph::kInvalidNode;
        double weight = 0.0;
        if (!ParseNodeId(token.substr(0, colon), &node) ||
            !ParseFiniteWeight(token.substr(colon + 1), &weight)) {
          return Status::InvalidArgument("bad seed link '" + token + "' at " +
                                         path + ":" +
                                         std::to_string(line_no));
        }
        vote.query.links.emplace_back(node, weight);
      }
    }
    votes.push_back(std::move(vote));
  }
  return votes;
}

}  // namespace kgov::votes
