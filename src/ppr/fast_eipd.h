// Extended inverse P-distance over an immutable CSR snapshot.
//
// DEPRECATED: ppr::EipdEngine (ppr/eipd_engine.h) is the one documented
// EIPD evaluator — construct it directly over snapshot->View().
// FastEipdEvaluator remains for one release as a thin compatibility alias
// over the unified engine bound to a snapshot's GraphView: same numeric
// API, contiguous neighbor ranges with inlined weights, no per-query
// allocation (thread-local PropagationWorkspace). For a deployed Q&A
// serving frontend use serve::QueryEngine, which adds worker threads,
// epoch pinning, and a result cache on top of the engine.
// bench_ablation_csr and bench_serving_path quantify the speedup over the
// mutable evaluator.

#ifndef KGOV_PPR_FAST_EIPD_H_
#define KGOV_PPR_FAST_EIPD_H_

#include <unordered_map>
#include <vector>

#include "graph/csr.h"
#include "ppr/eipd_engine.h"
#include "ppr/query_seed.h"
#include "ppr/ranking.h"

namespace kgov::ppr {

/// Deprecated: use ppr::EipdEngine over snapshot->View() (see the file
/// comment). Numeric EIPD evaluation on a frozen snapshot.
/// Thread-compatible: all evaluation state lives in per-thread workspaces.
class FastEipdEvaluator {
 public:
  /// `snapshot` is borrowed and must outlive the evaluator.
  explicit FastEipdEvaluator(const graph::CsrSnapshot* snapshot,
                             EipdOptions options = {});

  const EipdOptions& options() const { return engine_.options(); }

  /// The underlying unified engine (e.g. to pass an explicit workspace).
  const EipdEngine& engine() const { return engine_; }

  /// Phi(seed, answer).
  double Similarity(const QuerySeed& seed, graph::NodeId answer) const {
    return engine_.Similarity(seed, answer);
  }

  /// Phi(seed, a) for every a in `answers`, in one propagation pass.
  std::vector<double> SimilarityMany(
      const QuerySeed& seed,
      const std::vector<graph::NodeId>& answers) const {
    return engine_.SimilarityMany(seed, answers);
  }

  /// Like SimilarityMany with edge-weight overrides (snapshots carry the
  /// edge-id table, so EdgeId-keyed overrides work on the frozen view).
  std::vector<double> SimilarityManyWithOverrides(
      const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
      const std::unordered_map<graph::EdgeId, double>& overrides) const {
    return engine_.SimilarityManyWithOverrides(seed, answers, overrides);
  }

  /// Top-k candidates sorted by descending score (ties by node id).
  std::vector<ScoredAnswer> RankAnswers(
      const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
      size_t k) const {
    return engine_.RankAnswers(seed, candidates, k);
  }

 private:
  EipdEngine engine_;
};

}  // namespace kgov::ppr

#endif  // KGOV_PPR_FAST_EIPD_H_
