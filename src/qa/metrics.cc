#include "qa/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace kgov::qa {

int DocumentRank(const std::vector<RankedDocument>& ranking, int document) {
  for (size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i].document == document) return static_cast<int>(i) + 1;
  }
  return 0;
}

RankingMetrics EvaluateRankings(
    const std::vector<Question>& questions,
    const std::vector<std::vector<RankedDocument>>& rankings,
    std::vector<size_t> ks) {
  KGOV_CHECK(questions.size() == rankings.size());
  RankingMetrics metrics;
  metrics.ks = std::move(ks);
  metrics.hits_at.assign(metrics.ks.size(), 0.0);
  metrics.precision_at.assign(metrics.ks.size(), 0.0);

  double mrr_sum = 0.0;
  double map_sum = 0.0;
  double rank_sum = 0.0;
  double ndcg_sum = 0.0;
  size_t counted = 0;

  for (size_t q = 0; q < questions.size(); ++q) {
    const Question& question = questions[q];
    if (question.best_document < 0) continue;
    const std::vector<RankedDocument>& ranking = rankings[q];
    ++counted;

    int rank = DocumentRank(ranking, question.best_document);
    for (size_t i = 0; i < metrics.ks.size(); ++i) {
      if (rank > 0 && static_cast<size_t>(rank) <= metrics.ks[i]) {
        metrics.hits_at[i] += 1.0;
      }
    }
    if (rank > 0) {
      mrr_sum += 1.0 / static_cast<double>(rank);
      rank_sum += static_cast<double>(rank);
    } else {
      rank_sum += static_cast<double>(ranking.size() + 1);
    }

    // Average precision over the graded relevance set.
    std::unordered_set<int> relevant(question.relevant_documents.begin(),
                                     question.relevant_documents.end());
    if (relevant.empty()) relevant.insert(question.best_document);
    double hits = 0.0;
    double precision_sum = 0.0;
    for (size_t i = 0; i < ranking.size(); ++i) {
      if (relevant.count(ranking[i].document) > 0) {
        hits += 1.0;
        precision_sum += hits / static_cast<double>(i + 1);
      }
    }
    map_sum += relevant.empty()
                   ? 0.0
                   : precision_sum / static_cast<double>(relevant.size());

    // Precision@k over the graded relevance set.
    for (size_t i = 0; i < metrics.ks.size(); ++i) {
      size_t k = metrics.ks[i];
      size_t hits_at_k = 0;
      for (size_t r = 0; r < ranking.size() && r < k; ++r) {
        if (relevant.count(ranking[r].document) > 0) ++hits_at_k;
      }
      metrics.precision_at[i] +=
          static_cast<double>(hits_at_k) / static_cast<double>(k);
    }

    // NDCG with graded gains: best answer 2, other relevant 1.
    auto gain_of = [&](int doc) {
      if (doc == question.best_document) return 2.0;
      return relevant.count(doc) > 0 ? 1.0 : 0.0;
    };
    double dcg = 0.0;
    for (size_t r = 0; r < ranking.size(); ++r) {
      double gain = gain_of(ranking[r].document);
      if (gain > 0.0) dcg += gain / std::log2(static_cast<double>(r) + 2.0);
    }
    // Ideal ordering: the best answer first, then the other relevant docs.
    double idcg = 2.0 / std::log2(2.0);
    size_t others = relevant.size() - (relevant.count(question.best_document)
                                           ? 1
                                           : 0);
    for (size_t r = 0; r < others; ++r) {
      idcg += 1.0 / std::log2(static_cast<double>(r) + 3.0);
    }
    ndcg_sum += idcg > 0.0 ? dcg / idcg : 0.0;
  }

  metrics.num_questions = counted;
  if (counted > 0) {
    for (double& h : metrics.hits_at) h /= static_cast<double>(counted);
    for (double& p : metrics.precision_at) p /= static_cast<double>(counted);
    metrics.mrr = mrr_sum / static_cast<double>(counted);
    metrics.map = map_sum / static_cast<double>(counted);
    metrics.average_rank = rank_sum / static_cast<double>(counted);
    metrics.ndcg = ndcg_sum / static_cast<double>(counted);
  }
  return metrics;
}

RankingMetrics EvaluateServingView(
    graph::GraphView view, const std::vector<graph::NodeId>& answer_nodes,
    size_t num_entities, const std::vector<Question>& questions,
    const QaOptions& options, std::vector<size_t> ks) {
  QaSystem system(view, &answer_nodes, num_entities, options);
  std::vector<std::vector<RankedDocument>> rankings;
  rankings.reserve(questions.size());
  for (const Question& question : questions) {
    StatusOr<std::vector<RankedDocument>> ranked = system.Answer(question);
    // A question the view cannot serve scores as an empty ranking rather
    // than poisoning the whole batch.
    rankings.push_back(ranked.ok() ? std::move(ranked).value()
                                   : std::vector<RankedDocument>{});
  }
  return EvaluateRankings(questions, rankings, std::move(ks));
}

double AveragePercentImprovement(const std::vector<double>& ranks_before,
                                 const std::vector<double>& ranks_after) {
  KGOV_CHECK(ranks_before.size() == ranks_after.size());
  if (ranks_before.empty()) return 0.0;
  double sum = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < ranks_before.size(); ++i) {
    if (ranks_before[i] <= 0.0) continue;
    sum += (ranks_before[i] - ranks_after[i]) / ranks_before[i];
    ++counted;
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 0.0;
}

}  // namespace kgov::qa
