file(REMOVE_RECURSE
  "CMakeFiles/kgov_votes.dir/aggregate.cc.o"
  "CMakeFiles/kgov_votes.dir/aggregate.cc.o.d"
  "CMakeFiles/kgov_votes.dir/conflict.cc.o"
  "CMakeFiles/kgov_votes.dir/conflict.cc.o.d"
  "CMakeFiles/kgov_votes.dir/judgment.cc.o"
  "CMakeFiles/kgov_votes.dir/judgment.cc.o.d"
  "CMakeFiles/kgov_votes.dir/vote.cc.o"
  "CMakeFiles/kgov_votes.dir/vote.cc.o.d"
  "CMakeFiles/kgov_votes.dir/vote_encoder.cc.o"
  "CMakeFiles/kgov_votes.dir/vote_encoder.cc.o.d"
  "CMakeFiles/kgov_votes.dir/vote_generator.cc.o"
  "CMakeFiles/kgov_votes.dir/vote_generator.cc.o.d"
  "CMakeFiles/kgov_votes.dir/votes_io.cc.o"
  "CMakeFiles/kgov_votes.dir/votes_io.cc.o.d"
  "libkgov_votes.a"
  "libkgov_votes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgov_votes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
