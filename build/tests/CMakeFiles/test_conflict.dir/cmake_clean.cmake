file(REMOVE_RECURSE
  "CMakeFiles/test_conflict.dir/test_conflict.cc.o"
  "CMakeFiles/test_conflict.dir/test_conflict.cc.o.d"
  "test_conflict"
  "test_conflict.pdb"
  "test_conflict[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
