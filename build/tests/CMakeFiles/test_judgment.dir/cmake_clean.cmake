file(REMOVE_RECURSE
  "CMakeFiles/test_judgment.dir/test_judgment.cc.o"
  "CMakeFiles/test_judgment.dir/test_judgment.cc.o.d"
  "test_judgment"
  "test_judgment.pdb"
  "test_judgment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_judgment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
