#include "common/logging.h"

#include <gtest/gtest.h>

namespace kgov {
namespace {

// Restores the global level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }
  LogLevel previous_;
};

TEST_F(LoggingTest, DefaultLevelIsWarning) {
  // The library must not spam users by default.
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, SuppressedLogDoesNotEvaluateNothingWeird) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  // The streamed expression IS evaluated when the level passes, and the
  // macro must compile and run cleanly either way.
  KGOV_LOG(DEBUG) << "hidden " << ++evaluations;
  SUCCEED();
}

TEST_F(LoggingTest, EmittedLogRuns) {
  SetLogLevel(LogLevel::kDebug);
  KGOV_LOG(INFO) << "test message " << 42;  // must not crash
  KGOV_LOG(ERROR) << "error message";
  SUCCEED();
}

TEST_F(LoggingTest, CheckPassesSilently) {
  KGOV_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST_F(LoggingTest, CheckFailureAborts) {
  EXPECT_DEATH({ KGOV_CHECK(false) << "boom"; }, "Check failed");
}

TEST_F(LoggingTest, LogInsideExpressionContexts) {
  SetLogLevel(LogLevel::kDebug);
  // The macro must compose with if/else without dangling-else surprises.
  bool flag = true;
  if (flag)
    KGOV_LOG(INFO) << "then-branch";
  else
    KGOV_LOG(INFO) << "else-branch";
  SUCCEED();
}

}  // namespace
}  // namespace kgov
