file(REMOVE_RECURSE
  "CMakeFiles/kgov_ppr.dir/edge_vars.cc.o"
  "CMakeFiles/kgov_ppr.dir/edge_vars.cc.o.d"
  "CMakeFiles/kgov_ppr.dir/eipd.cc.o"
  "CMakeFiles/kgov_ppr.dir/eipd.cc.o.d"
  "CMakeFiles/kgov_ppr.dir/fast_eipd.cc.o"
  "CMakeFiles/kgov_ppr.dir/fast_eipd.cc.o.d"
  "CMakeFiles/kgov_ppr.dir/ppr.cc.o"
  "CMakeFiles/kgov_ppr.dir/ppr.cc.o.d"
  "CMakeFiles/kgov_ppr.dir/query_seed.cc.o"
  "CMakeFiles/kgov_ppr.dir/query_seed.cc.o.d"
  "CMakeFiles/kgov_ppr.dir/simrank.cc.o"
  "CMakeFiles/kgov_ppr.dir/simrank.cc.o.d"
  "CMakeFiles/kgov_ppr.dir/symbolic_eipd.cc.o"
  "CMakeFiles/kgov_ppr.dir/symbolic_eipd.cc.o.d"
  "libkgov_ppr.a"
  "libkgov_ppr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgov_ppr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
