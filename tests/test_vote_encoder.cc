#include "votes/vote_encoder.h"

#include <gtest/gtest.h>

#include "graph/csr.h"
#include "ppr/eipd_engine.h"

namespace kgov::votes {
namespace {

using graph::WeightedDigraph;

// One-shot Phi(seed, answer) via a snapshot of the given live graph.
double Similarity(const WeightedDigraph& g, const ppr::QuerySeed& seed,
                  graph::NodeId answer, const ppr::EipdOptions& options) {
  graph::CsrSnapshot snap(g);
  ppr::EipdEngine engine(snap.View(), options);
  return engine.Scores(seed, {answer}).value()[0];
}

// Fixture graph where the query reaches answers 3 and 4.
//   0 -> 1 (0.5), 0 -> 2 (0.5), 1 -> 3 (1.0), 2 -> 4 (0.6), 2 -> 1 (0.4)
WeightedDigraph MakeFixture() {
  WeightedDigraph g(5);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(1, 3, 1.0).ok());
  EXPECT_TRUE(g.AddEdge(2, 4, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(2, 1, 0.4).ok());
  return g;
}

Vote MakeNegativeVote(uint32_t id = 0) {
  Vote vote;
  vote.id = id;
  vote.query.links.emplace_back(0, 1.0);
  vote.answer_list = {3, 4};  // 3 ranks first under the fixture weights
  vote.best_answer = 4;       // user prefers the runner-up
  return vote;
}

Vote MakePositiveVote(uint32_t id = 1) {
  Vote vote = MakeNegativeVote(id);
  vote.best_answer = 3;
  return vote;
}

EncoderOptions DefaultOptions() {
  EncoderOptions options;
  options.symbolic.eipd.max_length = 4;
  return options;
}

TEST(VoteEncoderTest, SingleNegativeVoteProducesKMinusOneConstraints) {
  WeightedDigraph g = MakeFixture();
  VoteEncoder encoder(&g, DefaultOptions());
  Result<EncodedProgram> program = encoder.EncodeSingle(MakeNegativeVote());
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->problem.constraints().size(), 1u);  // k=2 answers
  EXPECT_EQ(program->encoded_vote_ids, (std::vector<uint32_t>{0}));
}

TEST(VoteEncoderTest, SingleRejectsPositiveVote) {
  WeightedDigraph g = MakeFixture();
  VoteEncoder encoder(&g, DefaultOptions());
  EXPECT_FALSE(encoder.EncodeSingle(MakePositiveVote()).ok());
}

TEST(VoteEncoderTest, SingleRejectsMalformedVote) {
  WeightedDigraph g = MakeFixture();
  VoteEncoder encoder(&g, DefaultOptions());
  Vote bad;
  EXPECT_FALSE(encoder.EncodeSingle(bad).ok());
}

TEST(VoteEncoderTest, ConstraintSignomialIsSimilarityDifference) {
  // g = S(vq, a_other) - S(vq, a_best); at the initial weights the negative
  // vote's constraint must be violated (g > 0) because the best answer
  // currently ranks below the other.
  WeightedDigraph g = MakeFixture();
  VoteEncoder encoder(&g, DefaultOptions());
  Result<EncodedProgram> program = encoder.EncodeSingle(MakeNegativeVote());
  ASSERT_TRUE(program.ok());
  std::vector<double> x0 = program->problem.initial();
  double g_value = program->problem.constraints()[0].g.Evaluate(x0);

  ppr::EipdOptions eipd;
  eipd.max_length = 4;
  Vote vote = MakeNegativeVote();
  double expected = Similarity(g, vote.query, 3, eipd) -
                    Similarity(g, vote.query, 4, eipd);
  EXPECT_NEAR(g_value, expected, 1e-10);
  EXPECT_GT(g_value, 0.0);
}

TEST(VoteEncoderTest, VariablesInitializedFromGraphWeights) {
  WeightedDigraph g = MakeFixture();
  VoteEncoder encoder(&g, DefaultOptions());
  Result<EncodedProgram> program = encoder.EncodeSingle(MakeNegativeVote());
  ASSERT_TRUE(program.ok());
  const auto& vars = program->variables;
  for (size_t v = 0; v < vars.NumVariables(); ++v) {
    EXPECT_DOUBLE_EQ(program->problem.initial()[v],
                     g.Weight(vars.EdgeOf(static_cast<math::VarId>(v))));
  }
}

TEST(VoteEncoderTest, BoundsComeFromOptions) {
  WeightedDigraph g = MakeFixture();
  EncoderOptions options = DefaultOptions();
  options.weight_lower_bound = 0.05;
  options.weight_upper_bound = 0.95;
  VoteEncoder encoder(&g, options);
  Result<EncodedProgram> program = encoder.EncodeSingle(MakeNegativeVote());
  ASSERT_TRUE(program.ok());
  for (double lo : program->problem.bounds().lower) {
    EXPECT_DOUBLE_EQ(lo, 0.05);
  }
  for (double hi : program->problem.bounds().upper) {
    EXPECT_DOUBLE_EQ(hi, 0.95);
  }
}

TEST(VoteEncoderTest, InitialValueClampedIntoBox) {
  WeightedDigraph g = MakeFixture();
  g.SetWeight(*g.FindEdge(1, 3), 0.0);  // below the lower bound
  EncoderOptions options = DefaultOptions();
  options.weight_lower_bound = 0.01;
  VoteEncoder encoder(&g, options);
  Result<EncodedProgram> program = encoder.EncodeSingle(MakeNegativeVote());
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->problem.Validate().ok());
}

TEST(VoteEncoderTest, BatchCombinesVotes) {
  WeightedDigraph g = MakeFixture();
  VoteEncoder encoder(&g, DefaultOptions());
  Result<EncodedProgram> program = encoder.EncodeBatch(
      {MakeNegativeVote(0), MakePositiveVote(1)});
  ASSERT_TRUE(program.ok());
  // Each vote contributes k-1 = 1 constraint.
  EXPECT_EQ(program->problem.constraints().size(), 2u);
  EXPECT_EQ(program->encoded_vote_ids, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(program->vote_edges.size(), 2u);
}

TEST(VoteEncoderTest, BatchSkipsMalformedVotes) {
  WeightedDigraph g = MakeFixture();
  VoteEncoder encoder(&g, DefaultOptions());
  Vote bad;
  bad.id = 7;
  Result<EncodedProgram> program =
      encoder.EncodeBatch({bad, MakeNegativeVote(3)});
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->encoded_vote_ids, (std::vector<uint32_t>{3}));
}

TEST(VoteEncoderTest, BatchAllMalformedIsError) {
  WeightedDigraph g = MakeFixture();
  VoteEncoder encoder(&g, DefaultOptions());
  Vote bad;
  EXPECT_FALSE(encoder.EncodeBatch({bad}).ok());
}

TEST(VoteEncoderTest, PositiveVoteConstraintInitiallySatisfied) {
  WeightedDigraph g = MakeFixture();
  VoteEncoder encoder(&g, DefaultOptions());
  Result<EncodedProgram> program =
      encoder.EncodeBatch({MakePositiveVote()});
  ASSERT_TRUE(program.ok());
  double g_value = program->problem.constraints()[0].g.Evaluate(
      program->problem.initial());
  EXPECT_LT(g_value, 0.0);  // confirmation: already satisfied
}

TEST(VoteEncoderTest, FixedEdgePredicateShrinksVariableSpace) {
  WeightedDigraph g = MakeFixture();
  EncoderOptions options = DefaultOptions();
  // Only edges out of node 0 are optimizable.
  options.is_variable = [](const WeightedDigraph& gr, graph::EdgeId e) {
    return gr.edge(e).from == 0;
  };
  VoteEncoder encoder(&g, options);
  Result<EncodedProgram> program = encoder.EncodeSingle(MakeNegativeVote());
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->variables.NumVariables(), 2u);  // 0->1 and 0->2
}

TEST(VoteEncoderTest, AssociatedEdgesCoverAllAnswers) {
  WeightedDigraph g = MakeFixture();
  VoteEncoder encoder(&g, DefaultOptions());
  std::unordered_set<graph::EdgeId> edges =
      encoder.AssociatedEdges(MakeNegativeVote());
  EXPECT_EQ(edges.size(), 5u);  // all fixture edges lie on walks to {3,4}
}

TEST(VoteEncoderTest, AssociatedEdgesEmptyForMalformedVote) {
  WeightedDigraph g = MakeFixture();
  VoteEncoder encoder(&g, DefaultOptions());
  Vote bad;
  EXPECT_TRUE(encoder.AssociatedEdges(bad).empty());
}

}  // namespace
}  // namespace kgov::votes
