#include "core/scoring.h"

#include <gtest/gtest.h>

namespace kgov::core {
namespace {

using graph::WeightedDigraph;

// Query 0 reaches answer 3 via node 1 and answer 4 via node 2.
WeightedDigraph MakeFixture(double w01 = 0.6, double w02 = 0.4) {
  WeightedDigraph g(5);
  EXPECT_TRUE(g.AddEdge(0, 1, w01).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, w02).ok());
  EXPECT_TRUE(g.AddEdge(1, 3, 1.0).ok());
  EXPECT_TRUE(g.AddEdge(2, 4, 1.0).ok());
  return g;
}

votes::Vote MakeVote(graph::NodeId best) {
  votes::Vote vote;
  vote.query.links.emplace_back(0, 1.0);
  vote.answer_list = {3, 4};  // ranking under w01 > w02
  vote.best_answer = best;
  return vote;
}

TEST(ScoringTest, UnchangedGraphScoresZero) {
  WeightedDigraph g = MakeFixture();
  OmegaResult omega = EvaluateOmega(g, {MakeVote(4)});
  EXPECT_DOUBLE_EQ(omega.total, 0.0);
  EXPECT_EQ(omega.before_ranks, (std::vector<int>{2}));
  EXPECT_EQ(omega.after_ranks, (std::vector<int>{2}));
}

TEST(ScoringTest, ImprovedGraphScoresPositive) {
  // Swap the weights: answer 4 now outranks 3.
  WeightedDigraph improved = MakeFixture(0.4, 0.6);
  OmegaResult omega = EvaluateOmega(improved, {MakeVote(4)});
  EXPECT_DOUBLE_EQ(omega.total, 1.0);  // rank 2 -> 1
  EXPECT_DOUBLE_EQ(omega.average, 1.0);
}

TEST(ScoringTest, DegradedPositiveVoteScoresNegative) {
  WeightedDigraph degraded = MakeFixture(0.4, 0.6);
  OmegaResult omega = EvaluateOmega(degraded, {MakeVote(3)});
  EXPECT_DOUBLE_EQ(omega.total, -1.0);  // rank 1 -> 2
}

TEST(ScoringTest, AverageOverMixedVotes) {
  WeightedDigraph improved = MakeFixture(0.4, 0.6);
  OmegaResult omega =
      EvaluateOmega(improved, {MakeVote(4), MakeVote(3)});
  EXPECT_DOUBLE_EQ(omega.total, 0.0);  // +1 and -1
  EXPECT_DOUBLE_EQ(omega.average, 0.0);
  EXPECT_EQ(omega.before_ranks.size(), 2u);
}

TEST(ScoringTest, MalformedVotesSkipped) {
  WeightedDigraph g = MakeFixture();
  votes::Vote bad;
  OmegaResult omega = EvaluateOmega(g, {bad, MakeVote(4)});
  EXPECT_EQ(omega.before_ranks.size(), 1u);
}

TEST(ScoringTest, EmptyVoteSet) {
  WeightedDigraph g = MakeFixture();
  OmegaResult omega = EvaluateOmega(g, {});
  EXPECT_DOUBLE_EQ(omega.total, 0.0);
  EXPECT_DOUBLE_EQ(omega.average, 0.0);
}

}  // namespace
}  // namespace kgov::core
