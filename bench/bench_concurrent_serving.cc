// Concurrent serving throughput: serve::QueryEngine over an
// OnlineKgOptimizer's pinned epoch, swept across worker-thread counts
// {1, 2, 4} with the epoch-keyed result cache off and on.
//
// Two throughput numbers per configuration:
//
//  * measured_qps - wall-clock queries/sec on this host. On a single-core
//    CI runner the thread sweep cannot show real scaling (every worker
//    shares one core), so the measured column mostly tracks scheduling
//    overhead there.
//  * ideal_qps - the single-thread busy time for the same cache setting
//    partitioned evenly across T workers (makespan = busy_total / T), the
//    same idealization OptimizeReport::cluster_seconds uses for the
//    split-merge solver. host_cores is recorded in the JSON so readers
//    can tell which column is meaningful on a given machine.
//
// The cache rows are measured in steady state (a warm-up round fills the
// cache), so cache-on vs cache-off is the honest hit-path speedup.
// Writes BENCH_concurrent.json + a telemetry snapshot with the serve.*
// counters and the span.serve.query.seconds histogram populated
// (tools/ci/check.sh validates both). --smoke shrinks the stream for CI.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/online_optimizer.h"
#include "qa/kg_builder.h"
#include "serve/query_engine.h"

namespace kgov {
namespace {

struct Setup {
  qa::Corpus corpus;
  qa::KnowledgeGraph kg;
  std::vector<ppr::QuerySeed> seeds;
};

Setup MakeSetup(size_t num_questions) {
  Setup s;
  Rng rng(2718);
  Result<qa::Corpus> corpus =
      qa::GenerateCorpus(qa::TaobaoScaleParams(), rng);
  KGOV_CHECK(corpus.ok());
  s.corpus = std::move(corpus).value();
  Result<qa::KnowledgeGraph> kg = qa::BuildKnowledgeGraph(s.corpus);
  KGOV_CHECK(kg.ok());
  s.kg = std::move(kg).value();
  std::vector<qa::Question> questions = qa::GenerateQuestions(
      s.corpus, num_questions, qa::TaobaoScaleParams(), rng);
  for (const qa::Question& q : questions) {
    s.seeds.push_back(qa::LinkQuestion(q, s.kg.num_entities));
  }
  return s;
}

struct SweepPoint {
  size_t threads = 0;
  bool cache = false;
  double wall_seconds = 0.0;
  double measured_qps = 0.0;
  double ideal_qps = 0.0;
  double hit_rate = 0.0;
};

/// One configuration: build an engine, warm up one round (untimed; fills
/// the cache when enabled), then serve `rounds` full replays of the
/// stream and report wall-clock throughput.
SweepPoint RunConfig(const Setup& s, const core::OnlineKgOptimizer& online,
                     size_t threads, bool cache, int rounds) {
  serve::QueryEngineOptions options;
  options.eipd.max_length = 5;
  options.top_k = 20;
  options.num_threads = threads;
  options.enable_cache = cache;
  auto engine_or =
      serve::QueryEngine::Create(&online, &s.kg.answer_nodes, options);
  KGOV_CHECK(engine_or.ok());
  serve::QueryEngine& engine = **engine_or;

  auto serve_round = [&]() {
    std::vector<StatusOr<serve::RankedAnswers>> results =
        engine.SubmitBatch(s.seeds);
    for (const auto& r : results) KGOV_CHECK(r.ok());
  };

  serve_round();  // warm-up (and cache fill when enabled)
  Timer timer;
  for (int r = 0; r < rounds; ++r) serve_round();
  SweepPoint point;
  point.threads = threads;
  point.cache = cache;
  point.wall_seconds = timer.ElapsedSeconds();
  point.measured_qps = static_cast<double>(rounds * s.seeds.size()) /
                       point.wall_seconds;
  serve::ShardedResultCache::Stats stats = engine.CacheStats();
  const uint64_t lookups = stats.hits + stats.misses;
  point.hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(stats.hits) /
                         static_cast<double>(lookups);
  return point;
}

void RunAndReport(bool smoke, const char* json_path,
                  const char* telemetry_path) {
  bench::Banner(
      "Concurrent serving: threads x cache sweep (serve::QueryEngine)",
      "kgov serving subsystem (docs/serving.md)");

  const size_t num_questions = smoke ? 16 : 64;
  const int rounds = smoke ? 2 : 8;
  Setup s = MakeSetup(num_questions);

  core::OnlineOptimizerOptions online_options;
  online_options.optimizer.apply_judgment_filter = false;
  core::OnlineKgOptimizer online(s.kg.graph, online_options);

  const unsigned host_cores = std::thread::hardware_concurrency();
  std::printf("graph: %zu nodes, %zu edges; %zu seeds x %d rounds; "
              "top-20 over %zu answers; host_cores=%u%s\n",
              s.kg.graph.NumNodes(), s.kg.graph.NumEdges(),
              s.seeds.size(), rounds, s.kg.answer_nodes.size(),
              host_cores, smoke ? " [smoke]" : "");

  const std::vector<size_t> thread_counts = {1, 2, 4};
  std::vector<SweepPoint> sweep;
  for (bool cache : {false, true}) {
    double t1_wall = 0.0;
    for (size_t threads : thread_counts) {
      SweepPoint point = RunConfig(s, online, threads, cache, rounds);
      if (threads == 1) t1_wall = point.wall_seconds;
      // Ideal work partition: the single-thread busy total for this cache
      // setting spread evenly over T workers.
      point.ideal_qps = static_cast<double>(rounds * s.seeds.size()) /
                        (t1_wall / static_cast<double>(threads));
      sweep.push_back(point);
    }
  }

  bench::TablePrinter table(
      {"threads", "cache", "measured q/s", "ideal q/s", "hit rate"},
      {7, 5, 12, 12, 8});
  table.PrintHeader();
  for (const SweepPoint& p : sweep) {
    table.PrintRow({std::to_string(p.threads), p.cache ? "on" : "off",
                    bench::Num(p.measured_qps, 1),
                    bench::Num(p.ideal_qps, 1),
                    bench::Num(p.hit_rate, 3)});
  }

  auto find = [&](size_t threads, bool cache) -> const SweepPoint& {
    for (const SweepPoint& p : sweep) {
      if (p.threads == threads && p.cache == cache) return p;
    }
    KGOV_CHECK(false);
    return sweep.front();
  };
  const double cache_speedup =
      find(1, true).measured_qps / find(1, false).measured_qps;
  // A single-core host cannot produce a meaningful thread-scaling verdict:
  // every worker time-slices one core, so the "scaling" ratio only measures
  // scheduler noise. Rather than publish a number readers might gate on,
  // emit "scaling": null and say so loudly.
  const bool scaling_meaningful = host_cores > 1;
  double scaling_ideal = 0.0;
  double scaling_measured = 0.0;
  if (scaling_meaningful) {
    scaling_ideal = find(4, false).ideal_qps / find(1, false).measured_qps;
    scaling_measured =
        find(4, false).measured_qps / find(1, false).measured_qps;
    std::printf("1->4 thread scaling: %.2fx ideal, %.2fx measured "
                "(host has %u cores)\n",
                scaling_ideal, scaling_measured, host_cores);
  } else {
    std::printf(
        "WARNING: host has 1 core - the thread sweep cannot measure real\n"
        "WARNING: scaling (all workers share one core). Emitting\n"
        "WARNING: \"scaling\": null; run on a multi-core host for a\n"
        "WARNING: meaningful scaling verdict.\n");
  }
  std::printf("cache-hit speedup (1 thread, steady state): %.2fx\n",
              cache_speedup);

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"concurrent_serving\",\n"
               "  \"smoke\": %s,\n"
               "  \"host_cores\": %u,\n"
               "  \"nodes\": %zu,\n"
               "  \"edges\": %zu,\n"
               "  \"queries_per_config\": %zu,\n"
               "  \"top_k\": 20,\n"
               "  \"max_length\": 5,\n"
               "  \"sweep\": [\n",
               smoke ? "true" : "false", host_cores,
               s.kg.graph.NumNodes(), s.kg.graph.NumEdges(),
               static_cast<size_t>(rounds) * s.seeds.size());
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"cache\": %s, "
                 "\"measured_qps\": %.2f, \"ideal_qps\": %.2f, "
                 "\"hit_rate\": %.4f}%s\n",
                 p.threads, p.cache ? "true" : "false", p.measured_qps,
                 p.ideal_qps, p.hit_rate,
                 i + 1 < sweep.size() ? "," : "");
  }
  if (scaling_meaningful) {
    std::fprintf(out,
                 "  ],\n"
                 "  \"scaling\": {\"ideal_1_to_4\": %.3f, "
                 "\"measured_1_to_4\": %.3f},\n"
                 "  \"cache_hit_speedup\": %.3f\n"
                 "}\n",
                 scaling_ideal, scaling_measured, cache_speedup);
  } else {
    std::fprintf(out,
                 "  ],\n"
                 "  \"scaling\": null,\n"
                 "  \"cache_hit_speedup\": %.3f\n"
                 "}\n",
                 cache_speedup);
  }
  std::fclose(out);
  std::printf("wrote %s\n", json_path);

  bench::DumpTelemetry(telemetry_path);
}

}  // namespace
}  // namespace kgov

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = "BENCH_concurrent.json";
  const char* telemetry_path = "BENCH_concurrent_telemetry.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--telemetry-json") == 0 && i + 1 < argc) {
      telemetry_path = argv[i + 1];
    }
  }
  kgov::RunAndReport(smoke, json_path, telemetry_path);
  return 0;
}
