# Empty dependencies file for test_fast_eipd.
# This may be replaced when dependencies are built.
