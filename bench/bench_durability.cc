// Durability subsystem cost model: what checkpointing and recovery cost,
// and what the write-ahead vote log adds to the online flush path.
//
// Four measurements over the Taobao-scale synthetic knowledge graph:
//
//  * snapshot write - EncodeSnapshot + atomic publish (temp, fsync,
//    rename), reported as seconds and MB/s for the durable epoch swap.
//  * snapshot load - MappedSnapshot::Load with the body checksum verified
//    (recovery default) and skipped (trusted fast path). The mmap layout
//    makes the no-verify load O(1) in the graph size; the verify pass is
//    one sequential CRC sweep.
//  * WAL append/replay - acknowledged votes/sec through VoteWal with
//    sync_each_append on (every vote fdatasync'd: the strict durability
//    point) and off (group commit: records hit the page cache now, disk
//    at segment roll/checkpoint), plus replay votes/sec for the recovery
//    tail.
//  * flush-path overhead - the same AddVote+Flush workload with no vote
//    log vs. a group-commit VoteWal attached. tools/ci/check.sh gates
//    wal_overhead_pct_nosync < 5: logging acknowledged votes must stay
//    in the noise next to the optimizer's own solve work.
//
// Writes BENCH_durability.json (+ telemetry snapshot). --smoke shrinks
// the vote counts for CI.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/fs.h"
#include "common/timer.h"
#include "core/online_optimizer.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "graph/csr.h"
#include "qa/kg_builder.h"

namespace kgov {
namespace {

votes::Vote MakeVote(const qa::KnowledgeGraph& kg, uint32_t id) {
  votes::Vote vote;
  vote.id = id;
  vote.weight = 1.0;
  vote.query.links.emplace_back(
      kg.EntityNode(id % static_cast<uint32_t>(kg.num_entities)), 1.0);
  const size_t num_answers = kg.answer_nodes.size();
  vote.answer_list = {kg.answer_nodes[id % num_answers],
                      kg.answer_nodes[(id + 1) % num_answers]};
  vote.best_answer = vote.answer_list[id % 2];
  return vote;
}

double AppendThroughput(const std::string& dir,
                        const qa::KnowledgeGraph& kg, size_t num_votes,
                        bool sync_each_append) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  KGOV_CHECK(fs::CreateDirs(dir).ok());
  durability::VoteWalOptions options;
  options.sync_each_append = sync_each_append;
  auto wal = durability::VoteWal::Open(dir, options);
  KGOV_CHECK(wal.ok());
  Timer timer;
  for (size_t i = 0; i < num_votes; ++i) {
    KGOV_CHECK(
        wal.value().AppendVote(MakeVote(kg, static_cast<uint32_t>(i)))
            .ok());
  }
  KGOV_CHECK(wal.value().Sync().ok());
  return static_cast<double>(num_votes) / timer.ElapsedSeconds();
}

/// VoteLogSink decorator that accumulates the wall time spent inside the
/// wrapped sink's appends. The flush path's WAL overhead is measured
/// directly from this (time-in-appends / total path time) rather than by
/// differencing two full-path wall clocks: the optimizer's threaded
/// solves carry several percent of run-to-run variance, far above the
/// sub-percent signal being measured.
class TimingSink final : public votes::VoteLogSink {
 public:
  explicit TimingSink(votes::VoteLogSink* inner) : inner_(inner) {}
  Status AppendVote(const votes::Vote& vote) override {
    Timer timer;
    Status status = inner_->AppendVote(vote);
    seconds += timer.ElapsedSeconds();
    return status;
  }
  Status AppendDeadLetter(const votes::Vote& vote) override {
    Timer timer;
    Status status = inner_->AppendDeadLetter(vote);
    seconds += timer.ElapsedSeconds();
    return status;
  }

  double seconds = 0.0;

 private:
  votes::VoteLogSink* inner_;
};

/// Wall-clock for `num_votes` acknowledged votes flushed in batches of
/// `batch`, with an optional vote log on the acknowledgement path.
double FlushWallSeconds(const qa::KnowledgeGraph& kg, size_t num_votes,
                        size_t batch, votes::VoteLogSink* sink) {
  core::OnlineOptimizerOptions options;
  options.batch_size = batch;
  options.optimizer.encoder.symbolic.eipd.max_length = 4;
  options.optimizer.apply_judgment_filter = false;
  options.strategy = core::FlushStrategy::kMultiVote;
  core::OnlineKgOptimizer online(kg.graph, options);
  if (sink != nullptr) online.SetVoteLog(sink);
  Timer timer;
  for (size_t i = 0; i < num_votes; ++i) {
    KGOV_CHECK(online.AddVote(MakeVote(kg, static_cast<uint32_t>(i))).ok());
  }
  KGOV_CHECK(online.Flush().ok());
  return timer.ElapsedSeconds();
}

void RunAndReport(bool smoke, const char* json_path,
                  const char* telemetry_path) {
  bench::Banner("Durability: snapshot + WAL + flush-path overhead",
                "kgov durability subsystem (docs/durability.md)");

  Rng rng(2718);
  Result<qa::Corpus> corpus =
      qa::GenerateCorpus(qa::TaobaoScaleParams(), rng);
  KGOV_CHECK(corpus.ok());
  Result<qa::KnowledgeGraph> kg_or = qa::BuildKnowledgeGraph(*corpus);
  KGOV_CHECK(kg_or.ok());
  const qa::KnowledgeGraph& kg = kg_or.value();
  const graph::CsrSnapshot csr(kg.graph);

  const std::string root =
      (std::filesystem::temp_directory_path() / "kgov_bench_durability")
          .string();
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  KGOV_CHECK(fs::CreateDirs(root).ok());

  const size_t wal_votes = smoke ? 2000 : 50000;
  const size_t sync_votes = smoke ? 200 : 2000;
  const size_t flush_votes = smoke ? 128 : 512;
  const size_t flush_batch = 16;
  std::printf("graph: %zu nodes, %zu edges; wal votes=%zu (sync %zu); "
              "flush votes=%zu batch=%zu%s\n",
              kg.graph.NumNodes(), kg.graph.NumEdges(), wal_votes,
              sync_votes, flush_votes, flush_batch, smoke ? " [smoke]" : "");

  // --- snapshot write + load ------------------------------------------
  durability::SnapshotMeta meta;
  meta.epoch = 1;
  meta.num_entities = kg.num_entities;
  meta.num_documents = kg.answer_nodes.size();
  const std::string snap_path =
      root + "/" + durability::SnapshotFileName(meta.epoch);
  Timer write_timer;
  KGOV_CHECK(durability::WriteSnapshot(snap_path, csr.View(), meta).ok());
  const double snapshot_write_seconds = write_timer.ElapsedSeconds();
  const int64_t snapshot_bytes = fs::FileSize(snap_path).value();
  const double snapshot_write_mbps =
      static_cast<double>(snapshot_bytes) / 1e6 / snapshot_write_seconds;

  auto time_load = [&](bool verify) {
    durability::SnapshotLoadOptions options;
    options.verify_body_checksum = verify;
    Timer timer;
    auto loaded = durability::MappedSnapshot::Load(snap_path, options);
    KGOV_CHECK(loaded.ok());
    KGOV_CHECK(loaded.value().View().NumEdges() == csr.NumEdges());
    return timer.ElapsedSeconds();
  };
  const double load_verify_seconds = time_load(true);
  const double load_noverify_seconds = time_load(false);

  // --- WAL append + replay --------------------------------------------
  const double wal_append_qps_nosync =
      AppendThroughput(root + "/wal_nosync", kg, wal_votes, false);
  const double wal_append_qps_sync =
      AppendThroughput(root + "/wal_sync", kg, sync_votes, true);

  Timer replay_timer;
  auto replayed = durability::ReplayWal(root + "/wal_nosync", 0, {});
  KGOV_CHECK(replayed.ok());
  KGOV_CHECK(replayed.value().records.size() == wal_votes);
  const double wal_replay_qps =
      static_cast<double>(wal_votes) / replay_timer.ElapsedSeconds();

  // --- flush-path overhead --------------------------------------------
  // Group-commit WAL (the deployment default for the gate): appends land
  // in the page cache, fdatasync happens at roll/checkpoint. Best-of-3
  // per mode so scheduler noise cannot fake an overhead.
  (void)FlushWallSeconds(kg, flush_batch, flush_batch, nullptr);  // warm-up
  const double flush_plain_seconds =
      FlushWallSeconds(kg, flush_votes, flush_batch, nullptr);
  std::filesystem::remove_all(root + "/wal_flush", ec);
  KGOV_CHECK(fs::CreateDirs(root + "/wal_flush").ok());
  durability::VoteWalOptions group_commit;
  group_commit.sync_each_append = false;
  auto flush_wal = durability::VoteWal::Open(root + "/wal_flush",
                                             group_commit);
  KGOV_CHECK(flush_wal.ok());
  TimingSink timed(&flush_wal.value());
  const double flush_wal_seconds =
      FlushWallSeconds(kg, flush_votes, flush_batch, &timed);
  // The overhead the WAL adds to the acknowledged-vote path is the time
  // actually spent inside its appends, relative to the whole path.
  const double wal_overhead_pct =
      timed.seconds / flush_wal_seconds * 100.0;

  bench::TablePrinter table({"measurement", "value"}, {38, 16});
  table.PrintHeader();
  table.PrintRow({"snapshot write (s)",
                  bench::Num(snapshot_write_seconds, 4)});
  table.PrintRow({"snapshot size (MB)",
                  bench::Num(static_cast<double>(snapshot_bytes) / 1e6, 2)});
  table.PrintRow({"snapshot write (MB/s)",
                  bench::Num(snapshot_write_mbps, 1)});
  table.PrintRow({"mmap load, verify (s)",
                  bench::Num(load_verify_seconds, 5)});
  table.PrintRow({"mmap load, no verify (s)",
                  bench::Num(load_noverify_seconds, 5)});
  table.PrintRow({"WAL append, group commit (votes/s)",
                  bench::Num(wal_append_qps_nosync, 0)});
  table.PrintRow({"WAL append, sync each (votes/s)",
                  bench::Num(wal_append_qps_sync, 0)});
  table.PrintRow({"WAL replay (votes/s)", bench::Num(wal_replay_qps, 0)});
  table.PrintRow({"flush path, no WAL (s)",
                  bench::Num(flush_plain_seconds, 3)});
  table.PrintRow({"flush path, WAL (s)",
                  bench::Num(flush_wal_seconds, 3)});
  table.PrintRow({"time inside WAL appends (s)",
                  bench::Num(timed.seconds, 5)});
  table.PrintRow({"WAL flush overhead (%)",
                  bench::Num(wal_overhead_pct, 2)});

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"durability\",\n"
               "  \"smoke\": %s,\n"
               "  \"nodes\": %zu,\n"
               "  \"edges\": %zu,\n"
               "  \"snapshot_bytes\": %lld,\n"
               "  \"snapshot_write_seconds\": %.6f,\n"
               "  \"snapshot_write_mbps\": %.2f,\n"
               "  \"mmap_load_verify_seconds\": %.6f,\n"
               "  \"mmap_load_noverify_seconds\": %.6f,\n"
               "  \"wal_append_qps_group_commit\": %.1f,\n"
               "  \"wal_append_qps_sync_each\": %.1f,\n"
               "  \"wal_replay_qps\": %.1f,\n"
               "  \"flush_seconds_no_wal\": %.4f,\n"
               "  \"flush_seconds_with_wal\": %.4f,\n"
               "  \"wal_append_seconds_in_flush\": %.6f,\n"
               "  \"wal_overhead_pct_nosync\": %.3f\n"
               "}\n",
               smoke ? "true" : "false", kg.graph.NumNodes(),
               kg.graph.NumEdges(),
               static_cast<long long>(snapshot_bytes),
               snapshot_write_seconds, snapshot_write_mbps,
               load_verify_seconds, load_noverify_seconds,
               wal_append_qps_nosync, wal_append_qps_sync,
               wal_replay_qps, flush_plain_seconds, flush_wal_seconds,
               timed.seconds, wal_overhead_pct);
  std::fclose(out);
  std::printf("wrote %s\n", json_path);

  bench::DumpTelemetry(telemetry_path);
  std::filesystem::remove_all(root, ec);
}

}  // namespace
}  // namespace kgov

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = "BENCH_durability.json";
  const char* telemetry_path = "BENCH_durability_telemetry.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--telemetry-json") == 0 && i + 1 < argc) {
      telemetry_path = argv[i + 1];
    }
  }
  kgov::RunAndReport(smoke, json_path, telemetry_path);
  return 0;
}
