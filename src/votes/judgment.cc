#include "votes/judgment.h"

#include <unordered_map>

#include "common/logging.h"
#include "ppr/eipd.h"

namespace kgov::votes {

JudgmentFilter::JudgmentFilter(const graph::WeightedDigraph* graph,
                               JudgmentOptions options)
    : graph_(graph), options_(std::move(options)) {
  KGOV_CHECK(graph_ != nullptr);
  KGOV_CHECK(options_.shared_edge_weight > 0.0 &&
             options_.shared_edge_weight < 1.0);
}

bool JudgmentFilter::IsSatisfiable(const Vote& vote) const {
  if (!vote.IsWellFormed()) return false;
  if (vote.IsPositive()) return true;

  int rank = vote.BestAnswerRank();  // 1-based; >= 2 for negative votes
  KGOV_DCHECK(rank >= 2);
  graph::NodeId best = vote.best_answer;
  graph::NodeId rival = vote.answer_list[rank - 2];  // ranked one above

  // Edge sets of contributing walks to each of the two answers.
  ppr::SymbolicEipd symbolic(graph_, options_.is_variable, options_.symbolic);
  ppr::EdgeVariableMap scratch;
  std::vector<ppr::SymbolicAnswer> answers =
      symbolic.Collect(vote.query, {best, rival}, &scratch);
  const auto& best_edges = answers[0].path_edges;
  const auto& rival_edges = answers[1].path_edges;

  // Extreme condition: favour a* maximally, the rival minimally. Only
  // optimizable edges are reassigned; fixed edges keep their weights.
  auto changeable = [this](graph::EdgeId e) {
    return !options_.is_variable || options_.is_variable(*graph_, e);
  };
  std::unordered_map<graph::EdgeId, double> overrides;
  overrides.reserve(best_edges.size() + rival_edges.size());
  for (graph::EdgeId e : best_edges) {
    if (!changeable(e)) continue;
    overrides[e] = rival_edges.count(e) > 0 ? options_.shared_edge_weight
                                            : 1.0;
  }
  for (graph::EdgeId e : rival_edges) {
    if (!changeable(e)) continue;
    if (best_edges.count(e) == 0) overrides[e] = 0.0;
  }

  ppr::EipdEvaluator evaluator(graph_, options_.symbolic.eipd);
  std::vector<double> scores =
      evaluator.SimilarityManyWithOverrides(vote.query, {best, rival},
                                            overrides);
  return scores[0] > scores[1];
}

std::vector<Vote> JudgmentFilter::FilterVotes(
    const std::vector<Vote>& votes) const {
  std::vector<Vote> kept;
  kept.reserve(votes.size());
  for (const Vote& vote : votes) {
    if (IsSatisfiable(vote)) {
      kept.push_back(vote);
    } else {
      KGOV_LOG(DEBUG) << "judgment filter discarded vote " << vote.id;
    }
  }
  return kept;
}

}  // namespace kgov::votes
