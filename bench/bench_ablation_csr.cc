// Ablation: serving-path CSR layout (natural node order vs degree-ordered
// rows) for extended-inverse-P-distance query evaluation.
//
// CsrLayout::kDegreeOrdered packs high-out-degree rows into a hot prefix
// of the neighbor array, so the frontier's hub rows share cache lines.
// The remap changes floating-point accumulation order, which is why the
// serving path stays on kNatural (bitwise gates) and this layout is an
// offline/bench option - this bench measures what the reordering buys on
// the Taobao-scale augmented graph, plus google-benchmark microbenchmarks.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "graph/csr.h"
#include "ppr/eipd_engine.h"
#include "qa/kg_builder.h"

namespace kgov {
namespace {

struct Setup {
  qa::Corpus corpus;
  qa::KnowledgeGraph kg;
  graph::CsrSnapshot natural;
  graph::CsrSnapshot degree_ordered;
  std::vector<ppr::QuerySeed> seeds;
  std::vector<ppr::QuerySeed> seeds_remapped;
  std::vector<graph::NodeId> answers_remapped;
};

Setup* MakeSetup() {
  auto* setup = new Setup();
  Rng rng(3141);
  Result<qa::Corpus> corpus =
      qa::GenerateCorpus(qa::TaobaoScaleParams(), rng);
  KGOV_CHECK(corpus.ok());
  setup->corpus = std::move(corpus).value();
  Result<qa::KnowledgeGraph> kg = qa::BuildKnowledgeGraph(setup->corpus);
  KGOV_CHECK(kg.ok());
  setup->kg = std::move(kg).value();
  setup->natural = graph::CsrSnapshot(setup->kg.graph);
  setup->degree_ordered = graph::CsrSnapshot(
      setup->kg.graph, {.layout = graph::CsrLayout::kDegreeOrdered});

  std::vector<qa::Question> questions = qa::GenerateQuestions(
      setup->corpus, 64, qa::TaobaoScaleParams(), rng);
  for (const qa::Question& q : questions) {
    setup->seeds.push_back(qa::LinkQuestion(q, setup->kg.num_entities));
  }
  // The degree-ordered snapshot renumbers nodes; queries against it use
  // internal ids for both seeds and candidates.
  for (const ppr::QuerySeed& seed : setup->seeds) {
    ppr::QuerySeed remapped = seed;
    for (auto& [node, weight] : remapped.links) {
      node = setup->degree_ordered.ToInternal(node);
    }
    setup->seeds_remapped.push_back(std::move(remapped));
  }
  for (graph::NodeId answer : setup->kg.answer_nodes) {
    setup->answers_remapped.push_back(
        setup->degree_ordered.ToInternal(answer));
  }
  return setup;
}

Setup* GlobalSetup() {
  static Setup* setup = MakeSetup();
  return setup;
}

void BM_NaturalLayoutServe(benchmark::State& state) {
  Setup* s = GlobalSetup();
  ppr::EipdOptions options;
  options.max_length = 5;
  ppr::EipdEngine engine(s->natural.View(), options);
  ppr::PropagationWorkspace workspace;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Rank(s->seeds[i % s->seeds.size()],
                                         s->kg.answer_nodes, 20,
                                         &workspace));
    ++i;
  }
}
BENCHMARK(BM_NaturalLayoutServe)->Unit(benchmark::kMillisecond);

void BM_DegreeOrderedServe(benchmark::State& state) {
  Setup* s = GlobalSetup();
  ppr::EipdOptions options;
  options.max_length = 5;
  ppr::EipdEngine engine(s->degree_ordered.View(), options);
  ppr::PropagationWorkspace workspace;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.Rank(s->seeds_remapped[i % s->seeds_remapped.size()],
                    s->answers_remapped, 20, &workspace));
    ++i;
  }
}
BENCHMARK(BM_DegreeOrderedServe)->Unit(benchmark::kMillisecond);

void PrintSummary() {
  bench::Banner("Ablation: CSR layout (natural vs degree-ordered rows)",
                "kgov serving-path design (docs/scale.md)");
  Setup* s = GlobalSetup();
  std::printf("graph: %zu nodes, %zu edges; %zu query seeds; top-20 over "
              "%zu answers\n",
              s->kg.graph.NumNodes(), s->kg.graph.NumEdges(),
              s->seeds.size(), s->kg.answer_nodes.size());

  ppr::EipdOptions options;
  options.max_length = 5;
  ppr::EipdEngine natural(s->natural.View(), options);
  ppr::EipdEngine reordered(s->degree_ordered.View(), options);
  ppr::PropagationWorkspace workspace;

  constexpr int kRounds = 3;
  Timer timer;
  for (int r = 0; r < kRounds; ++r) {
    for (const ppr::QuerySeed& seed : s->seeds) {
      benchmark::DoNotOptimize(
          natural.Rank(seed, s->kg.answer_nodes, 20, &workspace));
    }
  }
  double natural_seconds = timer.ElapsedSeconds();
  timer.Restart();
  for (int r = 0; r < kRounds; ++r) {
    for (const ppr::QuerySeed& seed : s->seeds_remapped) {
      benchmark::DoNotOptimize(
          reordered.Rank(seed, s->answers_remapped, 20, &workspace));
    }
  }
  double reordered_seconds = timer.ElapsedSeconds();
  size_t queries = kRounds * s->seeds.size();
  std::printf("natural layout: %.3f ms/query\ndegree-ordered: %.3f ms/query "
              "(%.2fx)\n",
              natural_seconds / queries * 1e3,
              reordered_seconds / queries * 1e3,
              natural_seconds / reordered_seconds);
}

}  // namespace
}  // namespace kgov

int main(int argc, char** argv) {
  kgov::PrintSummary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
