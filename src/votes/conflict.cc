#include "votes/conflict.h"

#include <algorithm>
#include <unordered_set>
#include <string>
#include "common/contracts.h"

namespace kgov::votes {


Status ConflictOptions::Validate() const {
  if (!(min_query_overlap >= 0.0 && min_query_overlap <= 1.0)) {
    return Status::InvalidArgument(
        "ConflictOptions.min_query_overlap must be in [0, 1], got " +
        std::to_string(min_query_overlap));
  }
  return Status::OK();
}

namespace {

std::unordered_set<graph::NodeId> SeedNodes(const Vote& vote) {
  std::unordered_set<graph::NodeId> nodes;
  for (const auto& [node, weight] : vote.query.links) {
    if (weight > 0.0) nodes.insert(node);
  }
  return nodes;
}

double Overlap(const std::unordered_set<graph::NodeId>& a,
               const std::unordered_set<graph::NodeId>& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t intersection = 0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  for (graph::NodeId v : small) {
    if (large.count(v) > 0) ++intersection;
  }
  return static_cast<double>(intersection) /
         static_cast<double>(a.size() + b.size() - intersection);
}

bool Lists(const Vote& vote, graph::NodeId node) {
  return std::find(vote.answer_list.begin(), vote.answer_list.end(),
                   node) != vote.answer_list.end();
}

}  // namespace

ConflictReport AnalyzeConflicts(const std::vector<Vote>& votes,
                                const ConflictOptions& options) {
  // Diagnostic API with no status channel; debug builds still reject a
  // nonsensical overlap threshold.
  KGOV_DCHECK_OK(options.Validate());
  ConflictReport report;
  std::vector<std::unordered_set<graph::NodeId>> seeds;
  seeds.reserve(votes.size());
  for (const Vote& vote : votes) {
    seeds.push_back(SeedNodes(vote));
  }

  std::vector<char> involved(votes.size(), 0);
  for (size_t i = 0; i < votes.size(); ++i) {
    if (!votes[i].IsWellFormed()) continue;
    for (size_t j = i + 1; j < votes.size(); ++j) {
      if (!votes[j].IsWellFormed()) continue;
      double overlap = Overlap(seeds[i], seeds[j]);
      if (overlap < options.min_query_overlap) continue;
      ++report.overlapping_pairs;

      // Contradiction: each vote's best answer is dominated by the
      // other's (A: bestA > bestB, B: bestB > bestA).
      graph::NodeId best_i = votes[i].best_answer;
      graph::NodeId best_j = votes[j].best_answer;
      if (best_i == best_j) continue;
      if (Lists(votes[i], best_j) && Lists(votes[j], best_i)) {
        VoteConflict conflict;
        conflict.vote_a = i;
        conflict.vote_b = j;
        conflict.answer_x = best_i;
        conflict.answer_y = best_j;
        conflict.query_overlap = overlap;
        report.conflicts.push_back(conflict);
        involved[i] = 1;
        involved[j] = 1;
      }
    }
  }
  for (char flag : involved) {
    if (flag) ++report.conflicted_votes;
  }
  return report;
}

}  // namespace kgov::votes
