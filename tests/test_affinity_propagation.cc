#include "cluster/affinity_propagation.h"

#include <gtest/gtest.h>

#include <set>

namespace kgov::cluster {
namespace {

// Block-diagonal similarity: two obvious groups {0,1,2} and {3,4,5}.
std::vector<std::vector<double>> TwoBlockMatrix() {
  const size_t n = 6;
  std::vector<std::vector<double>> s(n, std::vector<double>(n, 0.05));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      bool same_block = (i < 3) == (j < 3);
      s[i][j] = same_block ? 0.9 : 0.05;
    }
    s[i][i] = 1.0;
  }
  return s;
}

TEST(ApTest, EmptyMatrixRejected) {
  EXPECT_FALSE(AffinityPropagation({}).ok());
}

TEST(ApTest, NonSquareRejected) {
  std::vector<std::vector<double>> bad{{1.0, 0.5}, {0.5}};
  EXPECT_FALSE(AffinityPropagation(bad).ok());
}

TEST(ApTest, BadDampingRejected) {
  ApOptions options;
  options.damping = 1.0;
  EXPECT_FALSE(AffinityPropagation(TwoBlockMatrix(), options).ok());
}

TEST(ApTest, SingleItemTrivialCluster) {
  Result<ApResult> r = AffinityPropagation({{1.0}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->labels, (std::vector<int>{0}));
  EXPECT_EQ(r->exemplars, (std::vector<size_t>{0}));
  EXPECT_TRUE(r->converged);
}

TEST(ApTest, RecoversTwoBlocks) {
  Result<ApResult> r = AffinityPropagation(TwoBlockMatrix());
  ASSERT_TRUE(r.ok());
  // Items within a block share a label; items across blocks do not.
  EXPECT_EQ(r->labels[0], r->labels[1]);
  EXPECT_EQ(r->labels[1], r->labels[2]);
  EXPECT_EQ(r->labels[3], r->labels[4]);
  EXPECT_EQ(r->labels[4], r->labels[5]);
  EXPECT_NE(r->labels[0], r->labels[3]);
  EXPECT_EQ(r->exemplars.size(), 2u);
}

TEST(ApTest, LabelsIndexExemplars) {
  Result<ApResult> r = AffinityPropagation(TwoBlockMatrix());
  ASSERT_TRUE(r.ok());
  for (int label : r->labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(static_cast<size_t>(label), r->exemplars.size());
  }
  // Each exemplar belongs to its own cluster.
  for (size_t c = 0; c < r->exemplars.size(); ++c) {
    EXPECT_EQ(r->labels[r->exemplars[c]], static_cast<int>(c));
  }
}

TEST(ApTest, HighPreferenceMakesManyClusters) {
  ApOptions many;
  many.preference = 1.5;  // self-similarity above everything else
  Result<ApResult> r = AffinityPropagation(TwoBlockMatrix(), many);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->exemplars.size(), 6u);  // every item its own exemplar
}

TEST(ApTest, LowPreferenceMakesFewClusters) {
  ApOptions few;
  few.preference = -10.0;
  Result<ApResult> r = AffinityPropagation(TwoBlockMatrix(), few);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->exemplars.size(), 2u);
  EXPECT_GE(r->exemplars.size(), 1u);
}

TEST(ApTest, IdenticalItemsFormOneCluster) {
  const size_t n = 5;
  std::vector<std::vector<double>> s(n, std::vector<double>(n, 0.8));
  ApOptions options;
  options.preference = 0.1;  // below the mutual similarity
  Result<ApResult> r = AffinityPropagation(s, options);
  ASSERT_TRUE(r.ok());
  std::set<int> labels(r->labels.begin(), r->labels.end());
  EXPECT_EQ(labels.size(), 1u);
}

TEST(ApTest, DeterministicForFixedInput) {
  Result<ApResult> a = AffinityPropagation(TwoBlockMatrix());
  Result<ApResult> b = AffinityPropagation(TwoBlockMatrix());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->labels, b->labels);
  EXPECT_EQ(a->exemplars, b->exemplars);
}

}  // namespace
}  // namespace kgov::cluster
