# Empty compiler generated dependencies file for test_sigmoid.
# This may be replaced when dependencies are built.
