file(REMOVE_RECURSE
  "libkgov_ppr.a"
)
