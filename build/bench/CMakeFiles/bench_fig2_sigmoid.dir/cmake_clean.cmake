file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_sigmoid.dir/bench_fig2_sigmoid.cc.o"
  "CMakeFiles/bench_fig2_sigmoid.dir/bench_fig2_sigmoid.cc.o.d"
  "bench_fig2_sigmoid"
  "bench_fig2_sigmoid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_sigmoid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
