# Empty compiler generated dependencies file for search_click_feedback.
# This may be replaced when dependencies are built.
