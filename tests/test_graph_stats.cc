#include "graph/stats.h"

#include <gtest/gtest.h>

namespace kgov::graph {
namespace {

TEST(GraphStatsTest, EmptyGraph) {
  GraphStats stats = ComputeGraphStats(WeightedDigraph{});
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.num_edges, 0u);
  EXPECT_DOUBLE_EQ(stats.average_out_degree, 0.0);
}

TEST(GraphStatsTest, CountsBasics) {
  WeightedDigraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.4).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.6).ok());
  ASSERT_TRUE(g.AddEdge(1, 1, 0.5).ok());  // self-loop
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_nodes, 4u);
  EXPECT_EQ(stats.num_edges, 3u);
  EXPECT_EQ(stats.max_out_degree, 2u);
  EXPECT_EQ(stats.self_loops, 1u);
  EXPECT_DOUBLE_EQ(stats.average_out_degree, 0.75);
}

TEST(GraphStatsTest, DanglingAndSourceNodes) {
  WeightedDigraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  GraphStats stats = ComputeGraphStats(g);
  // 2 and 3 have no out-edges; 0 and 3 have no in-edges.
  EXPECT_EQ(stats.dangling_nodes, 2u);
  EXPECT_EQ(stats.source_nodes, 2u);
}

TEST(GraphStatsTest, WeightSummary) {
  WeightedDigraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.8).ok());
  ASSERT_TRUE(g.AddEdge(2, 0, 0.0).ok());
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_DOUBLE_EQ(stats.min_weight, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_weight, 0.8);
  EXPECT_NEAR(stats.mean_weight, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(stats.zero_weight_edges, 1u);
}

TEST(GraphStatsTest, SuperStochasticDetection) {
  WeightedDigraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.7).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 0.7).ok());  // sums to 1.4
  ASSERT_TRUE(g.AddEdge(1, 2, 1.0).ok());  // exactly 1: fine
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.super_stochastic_nodes, 1u);
}

TEST(GraphStatsTest, ToStringMentionsKeyNumbers) {
  WeightedDigraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  std::string text = ComputeGraphStats(g).ToString();
  EXPECT_NE(text.find("nodes 2"), std::string::npos);
  EXPECT_NE(text.find("edges 1"), std::string::npos);
}

}  // namespace
}  // namespace kgov::graph
