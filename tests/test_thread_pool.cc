#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace kgov {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter]() { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.Submit([&]() {
      int now = ++active;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      --active;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter]() { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ReturnsValuesInOrderOfFutures) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitCapturesExceptionInFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives and keeps serving tasks.
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
  EXPECT_EQ(pool.StrayExceptionCount(), 0u);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> out(10, 0);
  EXPECT_TRUE(ParallelFor(nullptr, out.size(),
                          [&](size_t i) { out[i] = static_cast<int>(i); })
                  .ok());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
}

TEST(ParallelForTest, PoolCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(64);
  EXPECT_TRUE(
      ParallelFor(&pool, counts.size(), [&](size_t i) { ++counts[i]; }).ok());
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelForTest, ZeroIterations) {
  ThreadPool pool(2);
  bool touched = false;
  EXPECT_TRUE(ParallelFor(&pool, 0, [&](size_t) { touched = true; }).ok());
  EXPECT_FALSE(touched);
}

TEST(ParallelForTest, TaskExceptionBecomesStatusNotCrash) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(16);
  Status status = ParallelFor(&pool, counts.size(), [&](size_t i) {
    if (i == 5) throw std::runtime_error("iteration exploded");
    ++counts[i];
  });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("iteration exploded"), std::string::npos);
  // Every other iteration still ran to completion.
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i != 5) {
      EXPECT_EQ(counts[i].load(), 1) << i;
    }
  }
}

// Destruction ordering: tasks that re-submit work while the destructor
// is draining are either enqueued (and drained to completion) or run
// inline on the submitter - never dropped, and their futures never throw
// broken_promise. Exercised here under real scheduling noise for TSan
// (tools/ci/sanitize.sh); the same contract is explored deterministically
// in tests/test_sched_explorer.cc (ThreadPoolShutdownVsSubmitNeverDrops).
TEST(ThreadPoolTest, ShutdownVsSubmitNeverDropsTasks) {
  for (int iteration = 0; iteration < 50; ++iteration) {
    std::vector<std::future<int>> children(4);
    std::vector<std::future<int>> parents;
    {
      ThreadPool pool(2);
      for (int i = 0; i < 4; ++i) {
        parents.push_back(pool.Submit([&pool, &children, i]() {
          // Races the destructor below: shutdown may already be in
          // progress when this runs on a worker.
          children[static_cast<size_t>(i)] = pool.Submit([i]() { return i; });
          return i + 100;
        }));
      }
      // ~ThreadPool drains: every parent (and through it every child)
      // must complete before join returns.
    }
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(parents[static_cast<size_t>(i)].get(), i + 100) << iteration;
      EXPECT_EQ(children[static_cast<size_t>(i)].get(), i) << iteration;
    }
  }
}

TEST(ThreadPoolTest, SubmitDuringShutdownRunsInline) {
  std::future<int> child;
  std::atomic<bool> observed_inline{false};
  {
    ThreadPool pool(1);
    ThreadPool* raw = &pool;
    auto parent = pool.Submit([raw, &child, &observed_inline]() {
      // Hold the single worker until the destructor has published
      // shutting_down_, then re-submit: the task must run inline on this
      // worker (the drain may already have seen an empty queue).
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      child = raw->Submit([]() { return 7; });
      observed_inline.store(true);
      return 0;
    });
    // Destructor begins while the parent sleeps on the worker.
  }
  ASSERT_TRUE(observed_inline.load());
  EXPECT_EQ(child.get(), 7);
}

TEST(ParallelForTest, FailedFlagsIdentifyThrowingIterations) {
  ThreadPool pool(4);
  std::vector<char> failed;
  Status status = ParallelFor(
      &pool, 8,
      [&](size_t i) {
        if (i % 3 == 0) throw std::invalid_argument("bad index");
      },
      &failed);
  EXPECT_FALSE(status.ok());
  ASSERT_EQ(failed.size(), 8u);
  for (size_t i = 0; i < failed.size(); ++i) {
    EXPECT_EQ(failed[i] != 0, i % 3 == 0) << i;
  }
}

TEST(ParallelForTest, InlineExceptionAlsoCaptured) {
  std::vector<char> failed;
  Status status = ParallelFor(
      nullptr, 4,
      [&](size_t i) {
        if (i == 2) throw std::runtime_error("inline failure");
      },
      &failed);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  ASSERT_EQ(failed.size(), 4u);
  EXPECT_TRUE(failed[2]);
  EXPECT_FALSE(failed[0] || failed[1] || failed[3]);
}

}  // namespace
}  // namespace kgov
