// Graph-optimization scoring (paper Definition 3 and Eq. 21).
//
// Omega(G*) = sum over votes of (rank_t - rank'_t), where rank_t is the
// best answer's position in the list the original graph produced (recorded
// in the vote itself) and rank'_t is its position after re-ranking the same
// answer list with the optimized graph. Omega_avg divides by the vote
// count.

#ifndef KGOV_CORE_SCORING_H_
#define KGOV_CORE_SCORING_H_

#include <vector>

#include "graph/graph.h"
#include "graph/graph_view.h"
#include "ppr/eipd_engine.h"
#include "votes/vote.h"

namespace kgov::core {

struct OmegaResult {
  /// Omega(G*): total rank improvement (positive = better).
  double total = 0.0;
  /// Omega_avg = total / #votes (Eq. 21); 0 when there are no votes.
  double average = 0.0;
  /// 1-based rank of each vote's best answer before/after, vote order.
  std::vector<int> before_ranks;
  std::vector<int> after_ranks;
};

/// Re-ranks each vote's recorded answer list under `view` (a frozen view
/// of the optimized graph) and scores the improvement of the voted best
/// answers. One propagation per vote, shared workspace, no per-vote
/// allocation.
OmegaResult EvaluateOmega(graph::GraphView view,
                          const std::vector<votes::Vote>& votes,
                          const ppr::EipdOptions& eipd = {});

/// Compatibility overload: snapshots `optimized` and scores on the view.
OmegaResult EvaluateOmega(const graph::WeightedDigraph& optimized,
                          const std::vector<votes::Vote>& votes,
                          const ppr::EipdOptions& eipd = {});

}  // namespace kgov::core

#endif  // KGOV_CORE_SCORING_H_
