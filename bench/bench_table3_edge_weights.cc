// Table III: samples of optimized edge weights.
//
// After the multi-vote solve, prints the largest weight changes as
// (head entity, tail entity, original, optimized, diff) rows - the
// qualitative evidence that the optimizer adjusts semantically meaningful
// relations (the paper's Juhuasuan/rule/refund and cart/commodity rows).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

namespace kgov {
namespace {

int Run() {
  bench::Banner("Table III: samples of optimized edge weights",
                "Table III (SVII-B)");

  Result<bench::TaobaoEnvironment> setup =
      bench::MakeTaobaoEnvironment(1.0, /*seed=*/7101);
  if (!setup.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 setup.status().ToString().c_str());
    return 1;
  }
  bench::TaobaoEnvironment& t = *setup;

  core::KgOptimizer optimizer(&t.env.deployed.graph, t.optimizer_options);
  Result<core::OptimizeReport> multi = optimizer.MultiVoteSolve(t.env.votes);
  if (!multi.ok()) {
    std::fprintf(stderr, "optimization failed\n");
    return 1;
  }

  // Net change per edge including the effect of normalization.
  struct ChangedEdge {
    graph::EdgeId edge;
    double before;
    double after;
  };
  std::vector<ChangedEdge> changed;
  const graph::WeightedDigraph& before = t.env.deployed.graph;
  const graph::WeightedDigraph& after = multi->optimized;
  for (graph::EdgeId e = 0; e < before.NumEdges(); ++e) {
    // Only entity-entity edges are interpretable relations.
    if (before.edge(e).to >= t.env.deployed.num_entities) continue;
    double b = before.Weight(e);
    double a = after.Weight(e);
    if (std::fabs(a - b) > 1e-6) {
      changed.push_back(ChangedEdge{e, b, a});
    }
  }
  std::sort(changed.begin(), changed.end(),
            [](const ChangedEdge& x, const ChangedEdge& y) {
              return std::fabs(x.after - x.before) >
                     std::fabs(y.after - y.before);
            });

  std::printf("%zu entity-entity edges changed; top 12 by |diff|:\n\n",
              changed.size());
  bench::TablePrinter table(
      {"Head Entity", "Tail Entity", "Original", "Optimized", "Diff"},
      {22, 22, 9, 9, 9});
  table.PrintHeader();
  for (size_t i = 0; i < std::min<size_t>(12, changed.size()); ++i) {
    const ChangedEdge& c = changed[i];
    const graph::Edge& edge = before.edge(c.edge);
    table.PrintRow({before.NodeLabel(edge.from), before.NodeLabel(edge.to),
                    bench::Num(c.before, 3), bench::Num(c.after, 3),
                    bench::Num(c.after - c.before, 3)});
  }

  std::printf(
      "\nPaper Table III shows the analogous rows for the real Taobao "
      "graph,\ne.g. (Juhuasuan, rule): 0.1 -> 0.08, (Juhuasuan, refund): "
      "0.1 -> 0.13.\nShape to check: a mix of raised and lowered weights "
      "concentrated on\nrelations touched by the votes.\n");
  return 0;
}

}  // namespace
}  // namespace kgov

int main() { return kgov::Run(); }
