#include "graph/graph_view.h"

namespace kgov::graph {

double GraphView::OutWeightSum(NodeId node) const {
  double sum = 0.0;
  for (const Neighbor* it = begin(node); it != end(node); ++it) {
    sum += it->weight;
  }
  return sum;
}

bool GraphView::IsSubStochastic(double tol) const {
  for (NodeId v = 0; v < num_nodes_; ++v) {
    if (OutWeightSum(v) > 1.0 + tol) return false;
  }
  return true;
}

}  // namespace kgov::graph
