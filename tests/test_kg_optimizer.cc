#include "core/kg_optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/fault_injection.h"
#include "core/scoring.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "ppr/eipd_engine.h"
#include "votes/vote_generator.h"

namespace kgov::core {
namespace {

using graph::WeightedDigraph;

// One-shot Phi(seed, answer) via a snapshot of the given live graph.
double Similarity(const WeightedDigraph& g, const ppr::QuerySeed& seed,
                  graph::NodeId answer, const ppr::EipdOptions& options) {
  graph::CsrSnapshot snap(g);
  ppr::EipdEngine engine(snap.View(), options);
  return engine.Scores(seed, {answer}).value()[0];
}

// Query 0 reaches answer 3 via node 1 and answer 4 via node 2. Under the
// initial weights answer 3 ranks first.
WeightedDigraph MakeFixture() {
  WeightedDigraph g(5);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.4).ok());
  EXPECT_TRUE(g.AddEdge(1, 3, 1.0).ok());
  EXPECT_TRUE(g.AddEdge(2, 4, 1.0).ok());
  return g;
}

votes::Vote MakeVote(graph::NodeId best, uint32_t id = 0) {
  votes::Vote vote;
  vote.id = id;
  vote.query.links.emplace_back(0, 1.0);
  vote.answer_list = {3, 4};
  vote.best_answer = best;
  return vote;
}

OptimizerOptions SmallOptions() {
  OptimizerOptions options;
  options.encoder.symbolic.eipd.max_length = 4;
  return options;
}

TEST(KgOptimizerTest, SingleVoteFlipsRanking) {
  WeightedDigraph g = MakeFixture();
  KgOptimizer optimizer(&g, SmallOptions());
  Result<OptimizeReport> report =
      optimizer.SingleVoteSolve({MakeVote(4)});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->votes_encoded, 1u);

  // After optimization the voted answer must rank first.
  ppr::EipdOptions eipd;
  eipd.max_length = 4;
  votes::Vote vote = MakeVote(4);
  double s3 = Similarity(report->optimized, vote.query, 3, eipd);
  double s4 = Similarity(report->optimized, vote.query, 4, eipd);
  EXPECT_GT(s4, s3);

  OmegaResult omega = EvaluateOmega(report->optimized, {vote}, eipd);
  EXPECT_DOUBLE_EQ(omega.total, 1.0);
}

TEST(KgOptimizerTest, SingleVoteIgnoresPositiveVotes) {
  WeightedDigraph g = MakeFixture();
  KgOptimizer optimizer(&g, SmallOptions());
  Result<OptimizeReport> report =
      optimizer.SingleVoteSolve({MakeVote(3)});  // positive
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->votes_encoded, 0u);
  // Graph unchanged.
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_DOUBLE_EQ(report->optimized.Weight(e), g.Weight(e));
  }
}

TEST(KgOptimizerTest, InputGraphNeverMutated) {
  WeightedDigraph g = MakeFixture();
  WeightedDigraph snapshot = g;
  KgOptimizer optimizer(&g, SmallOptions());
  ASSERT_TRUE(optimizer.SingleVoteSolve({MakeVote(4)}).ok());
  ASSERT_TRUE(optimizer.MultiVoteSolve({MakeVote(4)}).ok());
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_DOUBLE_EQ(g.Weight(e), snapshot.Weight(e));
  }
}

TEST(KgOptimizerTest, MultiVoteFlipsRanking) {
  WeightedDigraph g = MakeFixture();
  KgOptimizer optimizer(&g, SmallOptions());
  Result<OptimizeReport> report = optimizer.MultiVoteSolve({MakeVote(4)});
  ASSERT_TRUE(report.ok());
  OmegaResult omega = EvaluateOmega(report->optimized, {MakeVote(4)},
                                    {.max_length = 4});
  EXPECT_DOUBLE_EQ(omega.total, 1.0);
  EXPECT_EQ(report->constraints_total, 1);
  EXPECT_EQ(report->constraints_satisfied, 1);
}

TEST(KgOptimizerTest, MultiVoteRespectsPositiveVotes) {
  // One negative vote (4 best) and one positive vote (3 best) for the same
  // query conflict; the solver should satisfy as many as possible and not
  // crash. Omega should not be strongly negative.
  WeightedDigraph g = MakeFixture();
  OptimizerOptions options = SmallOptions();
  options.apply_judgment_filter = false;
  KgOptimizer optimizer(&g, options);
  Result<OptimizeReport> report =
      optimizer.MultiVoteSolve({MakeVote(4, 0), MakeVote(3, 1)});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->votes_encoded, 2u);
  EXPECT_GE(report->constraints_satisfied, 1);
}

TEST(KgOptimizerTest, MultiVoteEmptyAfterFilterIsError) {
  WeightedDigraph g = MakeFixture();
  KgOptimizer optimizer(&g, SmallOptions());
  votes::Vote bad;
  EXPECT_FALSE(optimizer.MultiVoteSolve({bad}).ok());
}

TEST(KgOptimizerTest, WeightChangesReported) {
  WeightedDigraph g = MakeFixture();
  KgOptimizer optimizer(&g, SmallOptions());
  Result<OptimizeReport> report = optimizer.MultiVoteSolve({MakeVote(4)});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->weight_changes.empty());
}

TEST(KgOptimizerTest, NormalizationKeepsGraphStochastic) {
  WeightedDigraph g = MakeFixture();
  KgOptimizer optimizer(&g, SmallOptions());
  Result<OptimizeReport> report = optimizer.MultiVoteSolve({MakeVote(4)});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->optimized.IsSubStochastic(1e-9));
}

TEST(KgOptimizerTest, SingleVoteBestEffortSurvivesSolverFailure) {
  // Algorithm 1 applies the solver's best-effort point even when the solve
  // reports failure; force every solve to fail and check the report stays
  // well-formed with finite, sub-stochastic weights.
  WeightedDigraph g = MakeFixture();
  KgOptimizer optimizer(&g, SmallOptions());
  ScopedFault fault(FaultSite::kSolveNonConvergence, {.probability = 1.0});
  Result<OptimizeReport> report = optimizer.SingleVoteSolve({MakeVote(4)});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->votes_encoded, 1u);
  EXPECT_GT(report->constraints_total, 0);
  // The injected failure returns the initial point, so nothing is
  // satisfied and the graph keeps its original weights.
  EXPECT_EQ(report->constraints_satisfied, 0);
  for (graph::EdgeId e = 0; e < report->optimized.NumEdges(); ++e) {
    EXPECT_TRUE(std::isfinite(report->optimized.Weight(e)));
  }
  EXPECT_TRUE(report->optimized.IsSubStochastic(1e-9));
}

TEST(KgOptimizerTest, SingleVoteBestEffortSurvivesNanGradients) {
  // NaN gradients on every evaluation: the sanitized solutions keep the
  // pipeline alive and the output graph finite.
  WeightedDigraph g = MakeFixture();
  KgOptimizer optimizer(&g, SmallOptions());
  ScopedFault fault(FaultSite::kNanGradient, {.probability = 1.0});
  Result<OptimizeReport> report = optimizer.SingleVoteSolve({MakeVote(4)});
  ASSERT_TRUE(report.ok());
  for (graph::EdgeId e = 0; e < report->optimized.NumEdges(); ++e) {
    EXPECT_TRUE(std::isfinite(report->optimized.Weight(e)));
  }
  EXPECT_TRUE(report->optimized.IsSubStochastic(1e-9));
}

TEST(KgOptimizerTest, MultiVoteReportsSolveAttempts) {
  WeightedDigraph g = MakeFixture();
  KgOptimizer optimizer(&g, SmallOptions());
  Result<OptimizeReport> report = optimizer.MultiVoteSolve({MakeVote(4)});
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->solve_attempts, 1u);
  EXPECT_TRUE(report->failed_clusters.empty());
  EXPECT_TRUE(report->quarantined_votes.empty());
}

TEST(KgOptimizerTest, DistributedRequiresPool) {
  WeightedDigraph g = MakeFixture();
  KgOptimizer optimizer(&g, SmallOptions());
  EXPECT_FALSE(
      optimizer.DistributedSplitMergeSolve({MakeVote(4)}, nullptr).ok());
}

// Integration over a synthetic workload: all four strategies improve the
// graph score for negative votes.
class StrategyIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2024);
    Result<WeightedDigraph> base =
        graph::ScaleFreeWithTargetEdges(300, 1200, rng);
    ASSERT_TRUE(base.ok());
    votes::SyntheticVoteParams params;
    params.num_queries = 12;
    params.num_answers = 40;
    params.subgraph_nodes = 150;
    params.top_k = 8;
    params.avg_negative_rank = 4.0;
    params.negative_fraction = 0.7;
    params.eipd.max_length = 4;  // match the evaluation settings below
    Result<votes::SyntheticWorkload> w =
        votes::GenerateSyntheticWorkload(*base, params, rng);
    ASSERT_TRUE(w.ok());
    workload_ = std::move(w).value();

    options_.encoder.symbolic.eipd.max_length = 4;
    options_.encoder.symbolic.min_path_mass = 1e-7;
    options_.encoder.is_variable = workload_.EntityEdgePredicate();
  }

  votes::SyntheticWorkload workload_;
  OptimizerOptions options_;
};

TEST_F(StrategyIntegrationTest, MultiVoteImprovesOmega) {
  KgOptimizer optimizer(&workload_.graph, options_);
  Result<OptimizeReport> report =
      optimizer.MultiVoteSolve(workload_.votes);
  ASSERT_TRUE(report.ok());
  OmegaResult omega = EvaluateOmega(report->optimized, workload_.votes,
                                    options_.encoder.symbolic.eipd);
  EXPECT_GT(omega.total, 0.0);
}

TEST_F(StrategyIntegrationTest, SplitMergeImprovesOmega) {
  KgOptimizer optimizer(&workload_.graph, options_);
  Result<OptimizeReport> report =
      optimizer.SplitMergeSolve(workload_.votes);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->num_clusters, 1u);
  OmegaResult omega = EvaluateOmega(report->optimized, workload_.votes,
                                    options_.encoder.symbolic.eipd);
  EXPECT_GT(omega.total, 0.0);
}

TEST_F(StrategyIntegrationTest, DistributedMatchesSequentialSplitMerge) {
  KgOptimizer optimizer(&workload_.graph, options_);
  Result<OptimizeReport> sequential =
      optimizer.SplitMergeSolve(workload_.votes);
  ASSERT_TRUE(sequential.ok());

  ThreadPool pool(4);
  Result<OptimizeReport> distributed =
      optimizer.DistributedSplitMergeSolve(workload_.votes, &pool);
  ASSERT_TRUE(distributed.ok());

  // Cluster solves are deterministic, so both paths produce identical
  // optimized weights.
  ASSERT_EQ(sequential->optimized.NumEdges(),
            distributed->optimized.NumEdges());
  for (graph::EdgeId e = 0; e < sequential->optimized.NumEdges(); ++e) {
    EXPECT_NEAR(sequential->optimized.Weight(e),
                distributed->optimized.Weight(e), 1e-12);
  }
  EXPECT_EQ(sequential->num_clusters, distributed->num_clusters);
}

TEST_F(StrategyIntegrationTest, ClusterTimesReported) {
  KgOptimizer optimizer(&workload_.graph, options_);
  Result<OptimizeReport> report =
      optimizer.SplitMergeSolve(workload_.votes);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->cluster_seconds.size(), report->num_clusters);
  double total = 0.0;
  for (double t : report->cluster_seconds) {
    EXPECT_GE(t, 0.0);
    total += t;
  }
  // Sequential solves: wall time covers the per-cluster sum.
  EXPECT_LE(total, report->solve_seconds + 0.5);
}

TEST_F(StrategyIntegrationTest, SingleVoteHandlesWorkload) {
  KgOptimizer optimizer(&workload_.graph, options_);
  Result<OptimizeReport> report =
      optimizer.SingleVoteSolve(workload_.votes);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->votes_encoded, 0u);
  EXPECT_TRUE(report->optimized.IsSubStochastic(1e-6));
}

}  // namespace
}  // namespace kgov::core
