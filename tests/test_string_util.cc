#include "common/string_util.h"

#include <gtest/gtest.h>

namespace kgov {
namespace {

TEST(SplitStringTest, BasicSplit) {
  EXPECT_EQ(SplitString("a b c", " "),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitStringTest, MultipleDelimiters) {
  EXPECT_EQ(SplitString("a,b;c", ",;"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitStringTest, DropsEmptyPieces) {
  EXPECT_EQ(SplitString("  a   b  ", " "),
            (std::vector<std::string>{"a", "b"}));
}

TEST(SplitStringTest, EmptyInput) {
  EXPECT_TRUE(SplitString("", " ").empty());
}

TEST(SplitStringTest, NoDelimiterFound) {
  EXPECT_EQ(SplitString("abc", ","), (std::vector<std::string>{"abc"}));
}

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  hi there \t\n"), "hi there");
}

TEST(TrimWhitespaceTest, AllWhitespace) {
  EXPECT_EQ(TrimWhitespace(" \t\n"), "");
}

TEST(TrimWhitespaceTest, NoWhitespace) {
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
}

TEST(JoinStringsTest, JoinsWithSeparator) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(JoinStringsTest, SingleAndEmpty) {
  EXPECT_EQ(JoinStrings({"only"}, ","), "only");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

TEST(FormatDurationTest, PicksUnitByMagnitude) {
  EXPECT_EQ(FormatDuration(0.0000005), "0us");
  EXPECT_EQ(FormatDuration(0.00095), "950us");
  EXPECT_EQ(FormatDuration(0.0123), "12.3ms");
  EXPECT_EQ(FormatDuration(4.56), "4.56s");
  EXPECT_EQ(FormatDuration(192.0), "3.2min");
}

}  // namespace
}  // namespace kgov
