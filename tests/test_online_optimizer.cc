#include "core/online_optimizer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ppr/fast_eipd.h"

namespace kgov::core {
namespace {

using graph::WeightedDigraph;

WeightedDigraph MakeFixture() {
  WeightedDigraph g(5);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.4).ok());
  EXPECT_TRUE(g.AddEdge(1, 3, 1.0).ok());
  EXPECT_TRUE(g.AddEdge(2, 4, 1.0).ok());
  return g;
}

votes::Vote MakeVote(graph::NodeId best, uint32_t id) {
  votes::Vote vote;
  vote.id = id;
  vote.query.links.emplace_back(0, 1.0);
  vote.answer_list = {3, 4};
  vote.best_answer = best;
  return vote;
}

OnlineOptimizerOptions SmallOptions(size_t batch) {
  OnlineOptimizerOptions options;
  options.batch_size = batch;
  options.optimizer.encoder.symbolic.eipd.max_length = 4;
  options.optimizer.apply_judgment_filter = false;
  options.strategy = FlushStrategy::kMultiVote;
  return options;
}

TEST(OnlineOptimizerTest, BuffersUntilBatchFull) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOptions(3));
  for (uint32_t i = 0; i < 2; ++i) {
    Result<FlushReport> r = online.AddVote(MakeVote(4, i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->votes_flushed, 0u);
  }
  EXPECT_EQ(online.PendingVotes(), 2u);
  Result<FlushReport> r = online.AddVote(MakeVote(4, 2));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->votes_flushed, 3u);
  EXPECT_EQ(online.PendingVotes(), 0u);
  EXPECT_EQ(online.TotalVotesApplied(), 3u);
}

TEST(OnlineOptimizerTest, FlushChangesGraph) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOptions(10));
  ASSERT_TRUE(online.AddVote(MakeVote(4, 0)).ok());
  Result<FlushReport> r = online.Flush();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->votes_flushed, 1u);
  // The voted answer now ranks first on the evolved graph.
  ppr::EipdOptions eipd;
  eipd.max_length = 4;
  ppr::EipdEvaluator evaluator(&online.graph(), eipd);
  votes::Vote vote = MakeVote(4, 0);
  EXPECT_GT(evaluator.Similarity(vote.query, 4),
            evaluator.Similarity(vote.query, 3));
}

TEST(OnlineOptimizerTest, EmptyFlushIsNoOp) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOptions(5));
  Result<FlushReport> r = online.Flush();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->votes_flushed, 0u);
}

TEST(OnlineOptimizerTest, SnapshotStableAcrossFlushes) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOptions(10));
  std::shared_ptr<const graph::CsrSnapshot> before = online.snapshot();
  ppr::FastEipdEvaluator before_eval(before.get(), {.max_length = 4});
  votes::Vote vote = MakeVote(4, 0);
  double s4_before = before_eval.Similarity(vote.query, 4);

  ASSERT_TRUE(online.AddVote(vote).ok());
  ASSERT_TRUE(online.Flush().ok());

  // Old snapshot still serves old scores; the new one reflects the flush.
  EXPECT_DOUBLE_EQ(before_eval.Similarity(vote.query, 4), s4_before);
  std::shared_ptr<const graph::CsrSnapshot> after = online.snapshot();
  EXPECT_NE(before.get(), after.get());
  ppr::FastEipdEvaluator after_eval(after.get(), {.max_length = 4});
  EXPECT_GT(after_eval.Similarity(vote.query, 4), s4_before);
}

TEST(OnlineOptimizerTest, FailedFlushPreservesVotes) {
  // Regression: a failed flush must NOT silently drop buffered votes.
  WeightedDigraph g = MakeFixture();
  OnlineOptimizerOptions options = SmallOptions(1);
  options.max_vote_attempts = 3;
  OnlineKgOptimizer online(g, options);
  votes::Vote malformed;  // empty answer list -> nothing encodes
  Result<FlushReport> r = online.AddVote(malformed);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(online.PendingVotes(), 1u);  // preserved, not dropped
  EXPECT_FALSE(online.LastFlushStatus().ok());
  EXPECT_TRUE(online.DeadLetters().empty());
}

TEST(OnlineOptimizerTest, ExhaustedVotesMoveToDeadLetterBuffer) {
  WeightedDigraph g = MakeFixture();
  OnlineOptimizerOptions options = SmallOptions(1);
  options.max_vote_attempts = 2;
  OnlineKgOptimizer online(g, options);
  votes::Vote malformed;
  malformed.id = 77;
  EXPECT_FALSE(online.AddVote(malformed).ok());  // attempt 1: re-queued
  EXPECT_EQ(online.PendingVotes(), 1u);
  EXPECT_FALSE(online.Flush().ok());  // attempt 2: out of attempts
  EXPECT_EQ(online.PendingVotes(), 0u);
  ASSERT_EQ(online.DeadLetters().size(), 1u);
  EXPECT_EQ(online.DeadLetters().front().id, 77u);
  // The pipeline is healthy afterwards.
  Result<FlushReport> good = online.AddVote(MakeVote(4, 1));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->votes_flushed, 1u);
  EXPECT_TRUE(online.LastFlushStatus().ok());
}

TEST(OnlineOptimizerTest, EpochAdvancesOnlyOnSuccessfulFlush) {
  WeightedDigraph g = MakeFixture();
  OnlineOptimizerOptions options = SmallOptions(10);
  options.max_vote_attempts = 5;
  OnlineKgOptimizer online(g, options);
  EXPECT_EQ(online.serving().epoch, 0u);

  // An empty flush publishes nothing.
  ASSERT_TRUE(online.Flush().ok());
  EXPECT_EQ(online.serving().epoch, 0u);

  ASSERT_TRUE(online.AddVote(MakeVote(4, 0)).ok());
  ASSERT_TRUE(online.Flush().ok());
  EXPECT_EQ(online.serving().epoch, 1u);

  // A failed flush leaves the serving epoch untouched.
  std::shared_ptr<const graph::CsrSnapshot> pinned = online.snapshot();
  votes::Vote malformed;  // empty answer list -> nothing encodes
  ASSERT_TRUE(online.AddVote(malformed).ok());  // buffered, batch not full
  EXPECT_FALSE(online.Flush().ok());
  EXPECT_EQ(online.serving().epoch, 1u);
  EXPECT_EQ(online.snapshot().get(), pinned.get());
}

TEST(OnlineOptimizerTest, PinnedEpochServesIdenticalScoresAcrossFlushes) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOptions(10));
  ServingEpoch pinned = online.serving();
  ppr::EipdEngine pinned_engine(pinned.view(), {.max_length = 4});
  votes::Vote vote = MakeVote(4, 0);
  std::vector<double> before =
      pinned_engine.SimilarityMany(vote.query, vote.answer_list);

  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(online.AddVote(MakeVote(4, i)).ok());
    ASSERT_TRUE(online.Flush().ok());
  }
  EXPECT_EQ(online.serving().epoch, 3u);

  // The pinned epoch's view is frozen: identical scores, while the latest
  // epoch reflects the optimized graph.
  std::vector<double> after =
      pinned_engine.SimilarityMany(vote.query, vote.answer_list);
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(after[i], before[i]);
  }
  ServingEpoch latest = online.serving();
  ppr::EipdEngine latest_engine(latest.view(), {.max_length = 4});
  EXPECT_GT(latest_engine.Similarity(vote.query, 4),
            pinned_engine.Similarity(vote.query, 4));
}

TEST(OnlineOptimizerTest, InvalidOptionsFailFastNamingTheField) {
  WeightedDigraph g = MakeFixture();
  OnlineOptimizerOptions options = SmallOptions(0);  // batch_size = 0
  OnlineKgOptimizer online(g, options);
  Result<FlushReport> r = online.AddVote(MakeVote(4, 0));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().message().find("batch_size"), std::string::npos);
  EXPECT_FALSE(online.Flush().ok());
  // Serving still works: the initial epoch published regardless.
  EXPECT_NE(online.serving().snapshot, nullptr);
}

TEST(OnlineOptimizerTest, PinnedEpochImmutableUnderHundredConcurrentFlushes) {
  // The epoch-swap ordering contract: a reader that pinned an epoch keeps
  // serving bitwise-identical scores no matter how many flushes publish
  // newer epochs underneath, and CurrentEpochNumber() is monotone with
  // CurrentEpoch() never trailing an observed number.
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOptions(10));
  ServingEpoch pinned = online.CurrentEpoch();
  ASSERT_EQ(pinned.epoch, 0u);
  votes::Vote probe = MakeVote(4, 0);
  ppr::EipdEngine reference(pinned.view(), {.max_length = 4});
  StatusOr<std::vector<double>> before_or =
      reference.Scores(probe.query, probe.answer_list);
  ASSERT_TRUE(before_or.ok());
  const std::vector<double> before = before_or.value();

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&]() {
      ppr::EipdEngine engine(pinned.view(), {.max_length = 4});
      ppr::PropagationWorkspace ws;
      uint64_t last_seen = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        StatusOr<std::vector<double>> now =
            engine.Scores(probe.query, probe.answer_list, &ws);
        if (!now.ok() || now.value() != before) {  // bitwise comparison
          violations.fetch_add(1);
          break;
        }
        uint64_t number = online.CurrentEpochNumber();
        if (number < last_seen ||
            online.CurrentEpoch().epoch < number) {
          violations.fetch_add(1);
          break;
        }
        last_seen = number;
      }
    });
  }

  for (uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(online.AddVote(MakeVote(4, i)).ok());
    ASSERT_TRUE(online.Flush().ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(online.CurrentEpochNumber(), 100u);
  EXPECT_EQ(online.serving().epoch, 100u);
  // The pinned epoch is still epoch 0 and still serves the same bits.
  EXPECT_EQ(pinned.epoch, 0u);
  StatusOr<std::vector<double>> after =
      reference.Scores(probe.query, probe.answer_list);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), before);
}

TEST(OnlineOptimizerTest, SplitMergeStrategyWorks) {
  WeightedDigraph g = MakeFixture();
  OnlineOptimizerOptions options = SmallOptions(2);
  options.strategy = FlushStrategy::kSplitMerge;
  OnlineKgOptimizer online(g, options);
  ASSERT_TRUE(online.AddVote(MakeVote(4, 0)).ok());
  Result<FlushReport> r = online.AddVote(MakeVote(4, 1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->votes_flushed, 2u);
  EXPECT_GT(r->constraints_total, 0);
}

}  // namespace
}  // namespace kgov::core
