// Bidirectional mapping between graph edges and SGP optimization variables.
//
// The paper's ObtainVariableSet (Alg. 1 line 4) introduces one variable
// x_{i,j} per optimizable edge that appears on some walk relevant to a
// vote. Variables are registered lazily while collecting symbolic
// similarities, so the variable space of a program is exactly the set of
// edges its votes can influence.

#ifndef KGOV_PPR_EDGE_VARS_H_
#define KGOV_PPR_EDGE_VARS_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "math/monomial.h"

namespace kgov::ppr {

class EdgeVariableMap {
 public:
  EdgeVariableMap() = default;

  /// Variable for `edge`, registering it on first use.
  math::VarId GetOrRegister(graph::EdgeId edge);

  /// Variable for `edge` if already registered.
  std::optional<math::VarId> Find(graph::EdgeId edge) const;

  /// Edge behind `var`. Requires var < NumVariables().
  graph::EdgeId EdgeOf(math::VarId var) const;

  size_t NumVariables() const { return var_to_edge_.size(); }

  /// var -> edge table (index = variable id).
  const std::vector<graph::EdgeId>& variables() const { return var_to_edge_; }

  /// Current weights of all registered edges, indexed by variable id: the
  /// SGP initial point (Alg. 1 lines 5-8).
  std::vector<double> InitialValues(const graph::WeightedDigraph& graph) const;

  /// Writes `values` (indexed by variable id) back into the graph
  /// (Alg. 1 lines 13-15).
  void ApplyValues(const std::vector<double>& values,
                   graph::WeightedDigraph* graph) const;

 private:
  std::unordered_map<graph::EdgeId, math::VarId> edge_to_var_;
  std::vector<graph::EdgeId> var_to_edge_;
};

}  // namespace kgov::ppr

#endif  // KGOV_PPR_EDGE_VARS_H_
