// Write-ahead vote log: the other half of the durability story.
//
// Votes are the scarcest input in the system, so OnlineKgOptimizer logs
// each one here (via votes::VoteLogSink) BEFORE acknowledging it. The log
// is a directory of append-only segment files; each record carries its
// own CRC so replay can tell a torn tail (the process died mid-append)
// from genuine corruption mid-file:
//
//   segment file wal-<seq, 20 digits>.log:
//     header  "KGOVWAL1" | u32 version | u32 reserved | u64 seq
//     record* u32 payload_len | u32 masked_crc32c(payload) | payload
//     payload u8 type (1 = vote accepted, 2 = dead-lettered) | vote bytes
//                                                 (vote_wal_codec.h)
//
// Segment-roll + truncate-after-snapshot policy: DurabilityManager rolls
// to a fresh segment at the START of a checkpoint, stamps the snapshot
// with that segment's seq, and deletes the older segments only after the
// snapshot has been atomically published - so at every instant the newest
// valid snapshot plus the surviving segments reconstruct every
// acknowledged vote (see docs/durability.md for the crash-window
// analysis).

#ifndef KGOV_DURABILITY_WAL_H_
#define KGOV_DURABILITY_WAL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/fs.h"
#include "common/status.h"
#include "votes/vote.h"
#include "votes/vote_log.h"

namespace kgov::durability {

/// What a WAL record says happened to its vote.
enum class WalRecordType : uint8_t {
  /// The vote was acknowledged and entered the flush buffer.
  kVote = 1,
  /// The vote was abandoned into the dead-letter buffer.
  kDeadLetter = 2,
};

struct VoteWalOptions {
  /// fdatasync after every append. The durable default; group-commit
  /// callers that batch acknowledgements may disable it and call Sync()
  /// themselves (a crash then loses at most the unsynced suffix).
  bool sync_each_append = true;
  /// A segment exceeding this size rolls to a fresh one on the next
  /// append (bounds replay work between checkpoints).
  uint64_t max_segment_bytes = 64ull << 20;

  Status Validate() const;
};

/// Append side of the log. Single-writer (called from the optimizer's
/// write thread); not thread-safe. Move-only.
class VoteWal final : public votes::VoteLogSink {
 public:
  /// Opens the log in `dir` (creating the directory if needed), resuming
  /// after the highest existing segment: existing segments are never
  /// reopened for writing, a fresh segment at max_seq + 1 is started.
  static StatusOr<VoteWal> Open(std::string dir, VoteWalOptions options);

  VoteWal(VoteWal&&) noexcept = default;
  VoteWal& operator=(VoteWal&&) noexcept = default;

  /// VoteLogSink: appends a kVote / kDeadLetter record. With
  /// sync_each_append the record is on disk when this returns OK; a
  /// non-OK return means the vote must not be acknowledged. Fault sites:
  /// kFsWriteFailure, kFsyncFailure, and the kCrashMidWalAppend kill
  /// point (which dies after writing a record PREFIX - a torn tail).
  Status AppendVote(const votes::Vote& vote) override;
  Status AppendDeadLetter(const votes::Vote& vote) override;

  /// Durability barrier for sync_each_append == false callers.
  Status Sync();

  /// Syncs and closes the live segment and starts a fresh one at
  /// live_seq() + 1. The checkpoint protocol calls this first, so every
  /// record the new snapshot does NOT capture lands at seq >= the
  /// snapshot's wal_seq stamp.
  Status RollSegment();

  /// Deletes every segment with seq < `seq` (the truncate-after-snapshot
  /// step). Never touches the live segment.
  Status DeleteSegmentsBelow(uint64_t seq);

  /// Sequence number of the live (currently appended) segment.
  uint64_t live_seq() const { return live_seq_; }
  const std::string& dir() const { return dir_; }

 private:
  VoteWal(std::string dir, VoteWalOptions options)
      : dir_(std::move(dir)), options_(options) {}

  Status Append(WalRecordType type, const votes::Vote& vote);
  Status StartSegment(uint64_t seq);

  std::string dir_;
  VoteWalOptions options_;
  uint64_t live_seq_ = 0;
  // unique_ptr because AppendFile has no default construction; null only
  // after a StartSegment failure.
  std::unique_ptr<fs::AppendFile> segment_;
};

/// Canonical segment file name ("wal-00000000000000000007.log").
std::string WalFileName(uint64_t seq);

/// Parses a WalFileName back to its seq; nullopt for anything else.
std::optional<uint64_t> ParseWalFileName(std::string_view name);

/// One replayed record.
struct WalRecord {
  WalRecordType type = WalRecordType::kVote;
  votes::Vote vote;
};

struct WalReplayOptions {
  /// Physically truncate a torn final record off its segment, so the next
  /// process sees a clean tail. Replay tolerates the torn record either
  /// way; truncation just keeps the loud log from repeating forever.
  bool truncate_torn_tail = true;

  Status Validate() const;
};

struct WalReplayResult {
  /// Every intact record of every replayed segment, in log order.
  std::vector<WalRecord> records;
  size_t segments_read = 0;
  /// Torn final records encountered (0 or 1 per segment).
  size_t torn_tails_truncated = 0;
  /// Mid-segment records whose CRC failed; replay stops reading that
  /// segment (loudly) and continues with the next.
  size_t corrupt_records = 0;
};

/// Reads every segment in `dir` with seq >= `min_seq` in sequence order.
/// A truncated or CRC-failing FINAL record is the expected crash artifact
/// and is tolerated (and optionally truncated away); a CRC failure with
/// intact bytes after it means real corruption - the rest of that segment
/// is skipped with an ERROR log and counted in corrupt_records.
StatusOr<WalReplayResult> ReplayWal(const std::string& dir, uint64_t min_seq,
                                    const WalReplayOptions& options);

}  // namespace kgov::durability

#endif  // KGOV_DURABILITY_WAL_H_
