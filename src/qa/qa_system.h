// The knowledge-graph Q&A system (paper Fig. 1): link a question into the
// graph, evaluate extended-inverse-P-distance similarities, return ranked
// answers.

#ifndef KGOV_QA_QA_SYSTEM_H_
#define KGOV_QA_QA_SYSTEM_H_

#include <vector>

#include "graph/graph.h"
#include "ppr/eipd.h"
#include "ppr/query_seed.h"
#include "qa/corpus.h"
#include "qa/kg_builder.h"

namespace kgov::qa {

/// Builds the query seed of a question: w(vq, vi) = #(q, vi) / sum_j
/// #(q, vj) over the question's entity mentions (paper SIII-A). Mentions of
/// entities outside [0, num_entities) are ignored.
ppr::QuerySeed LinkQuestion(const Question& question, size_t num_entities);

struct QaOptions {
  ppr::EipdOptions eipd;
  /// Length of the returned answer list.
  size_t top_k = 20;
};

/// A ranked document with its similarity score.
struct RankedDocument {
  int document = -1;
  double score = 0.0;
};

class QaSystem {
 public:
  /// Serves answers from `graph` (typically a KnowledgeGraph's graph or an
  /// optimized copy of it). `answer_nodes[d]` must be document d's node.
  /// Both referents are borrowed.
  QaSystem(const graph::WeightedDigraph* graph,
           const std::vector<graph::NodeId>* answer_nodes,
           size_t num_entities, QaOptions options = {});

  const QaOptions& options() const { return options_; }

  /// Top-k documents for `question`, best first.
  std::vector<RankedDocument> Ask(const Question& question) const;

  /// Top-k answer *nodes* for a pre-linked query.
  std::vector<ppr::ScoredAnswer> AskSeed(const ppr::QuerySeed& seed) const;

 private:
  const graph::WeightedDigraph* graph_;
  const std::vector<graph::NodeId>* answer_nodes_;
  size_t num_entities_;
  QaOptions options_;
  ppr::EipdEvaluator evaluator_;
};

}  // namespace kgov::qa

#endif  // KGOV_QA_QA_SYSTEM_H_
