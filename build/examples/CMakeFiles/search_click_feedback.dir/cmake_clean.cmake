file(REMOVE_RECURSE
  "CMakeFiles/search_click_feedback.dir/search_click_feedback.cpp.o"
  "CMakeFiles/search_click_feedback.dir/search_click_feedback.cpp.o.d"
  "search_click_feedback"
  "search_click_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_click_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
