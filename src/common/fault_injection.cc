#include "common/fault_injection.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace kgov {

namespace {

// splitmix64 finalizer: decorrelates (seed, site, hit) into a fire decision.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::string_view FaultSiteToString(FaultSite site) {
  switch (site) {
    case FaultSite::kSolveNonConvergence:
      return "SolveNonConvergence";
    case FaultSite::kNanGradient:
      return "NanGradient";
    case FaultSite::kSlowSolve:
      return "SlowSolve";
    case FaultSite::kTaskFailure:
      return "TaskFailure";
    case FaultSite::kGraphCorruption:
      return "GraphCorruption";
    case FaultSite::kFsWriteFailure:
      return "FsWriteFailure";
    case FaultSite::kFsyncFailure:
      return "FsyncFailure";
    case FaultSite::kCrashMidSnapshot:
      return "CrashMidSnapshot";
    case FaultSite::kCrashMidWalAppend:
      return "CrashMidWalAppend";
    case FaultSite::kCrashMidEpochSwap:
      return "CrashMidEpochSwap";
  }
  return "Unknown";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(FaultSite site, FaultConfig config) {
  MutexLock lock(mu_);
  SiteState& state = sites_[static_cast<int>(site)];
  state.config = config;
  state.hits = 0;
  state.fires = 0;
  armed_mask_.fetch_or(1u << static_cast<int>(site),
                       std::memory_order_release);
}

void FaultInjector::Disarm(FaultSite site) {
  MutexLock lock(mu_);
  armed_mask_.fetch_and(~(1u << static_cast<int>(site)),
                        std::memory_order_release);
}

void FaultInjector::Reset() {
  MutexLock lock(mu_);
  armed_mask_.store(0, std::memory_order_release);
  for (SiteState& state : sites_) state = SiteState{};
}

void FaultInjector::Reseed(uint64_t seed) {
  MutexLock lock(mu_);
  seed_ = seed;
}

bool FaultInjector::ShouldFire(FaultSite site) {
  const uint32_t bit = 1u << static_cast<int>(site);
  if ((armed_mask_.load(std::memory_order_acquire) & bit) == 0) return false;

  MutexLock lock(mu_);
  if ((armed_mask_.load(std::memory_order_relaxed) & bit) == 0) return false;
  SiteState& state = sites_[static_cast<int>(site)];
  const int64_t hit = state.hits++;
  if (hit < state.config.skip_hits) return false;
  if (state.config.max_fires >= 0 &&
      state.fires >= state.config.max_fires) {
    return false;
  }
  bool fire;
  if (state.config.probability >= 1.0) {
    fire = true;
  } else if (state.config.probability <= 0.0) {
    fire = false;
  } else {
    // Deterministic given (seed, site, hit index): a fixed seed and hit
    // order replay the same schedule.
    uint64_t h = Mix64(seed_ ^ Mix64(static_cast<uint64_t>(site) * 0x1000 +
                                     static_cast<uint64_t>(hit)));
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    fire = u < state.config.probability;
  }
  if (fire) ++state.fires;
  return fire;
}

double FaultInjector::SleepSeconds(FaultSite site) const {
  const uint32_t bit = 1u << static_cast<int>(site);
  if ((armed_mask_.load(std::memory_order_acquire) & bit) == 0) return 0.0;
  MutexLock lock(mu_);
  return sites_[static_cast<int>(site)].config.sleep_seconds;
}

int64_t FaultInjector::Hits(FaultSite site) const {
  MutexLock lock(mu_);
  return sites_[static_cast<int>(site)].hits;
}

int64_t FaultInjector::Fires(FaultSite site) const {
  MutexLock lock(mu_);
  return sites_[static_cast<int>(site)].fires;
}

void MaybeKillProcess(FaultSite site) {
  if (!FaultInjector::Global().ShouldFire(site)) return;
  std::fprintf(stderr, "kgov fault: killing process at %.*s\n",
               static_cast<int>(FaultSiteToString(site).size()),
               FaultSiteToString(site).data());
  std::_Exit(kKillTestExitCode);
}

bool MaybeInjectStall(FaultSite site) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.ShouldFire(site)) return false;
  double seconds = injector.SleepSeconds(site);
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
  return true;
}

}  // namespace kgov
