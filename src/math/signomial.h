// Signomial functions: sums of monomial terms with real coefficients and
// real exponents (paper Eq. 3). The similarity S(vq, va) expressed over the
// optimizable edge-weight variables (Eq. 9/11) is a signomial, as are all
// SGP constraint functions built from user votes.

#ifndef KGOV_MATH_SIGNOMIAL_H_
#define KGOV_MATH_SIGNOMIAL_H_

#include <string>
#include <vector>

#include "math/monomial.h"

namespace kgov::math {

/// A signomial f(x) = sum_k c_k * prod_i x_i^{e_ik}. Mutable builder-style
/// value type.
class Signomial {
 public:
  Signomial() = default;
  /// A constant signomial (single constant term, omitted when 0).
  explicit Signomial(double constant);
  explicit Signomial(Monomial term);
  explicit Signomial(std::vector<Monomial> terms);

  const std::vector<Monomial>& terms() const { return terms_; }
  size_t NumTerms() const { return terms_.size(); }
  bool IsZero() const { return terms_.empty(); }

  /// Appends a term (no like-term merging; call Compact()).
  void AddTerm(Monomial term);

  /// Adds `other` term-wise.
  void Add(const Signomial& other);

  /// Subtracts `other` term-wise.
  void Subtract(const Signomial& other);

  /// Multiplies every coefficient by `factor`.
  void Scale(double factor);

  /// Merges terms with identical power vectors and drops zero terms.
  void Compact();

  /// Value at `x`.
  double Evaluate(const std::vector<double>& x) const;

  /// Adds `scale` * grad f(x) into `grad` (size >= max var id + 1).
  void AccumulateGradient(const std::vector<double>& x, double scale,
                          std::vector<double>* grad) const;

  /// Value and gradient in one pass; `grad` is overwritten (resized to
  /// `num_vars`).
  double EvaluateWithGradient(const std::vector<double>& x, size_t num_vars,
                              std::vector<double>* grad) const;

  /// Largest variable id used, or -1 for a constant/zero signomial.
  int64_t MaxVarId() const;

  /// True when every coefficient is positive (posynomial).
  bool IsPosynomial() const;

  /// Sum: f + g.
  static Signomial Sum(const Signomial& f, const Signomial& g);

  /// Difference: f - g.
  static Signomial Difference(const Signomial& f, const Signomial& g);

  /// Human-readable form, e.g. "0.2*x1*x3 - 0.5*x2^2 + 1".
  std::string ToString() const;

 private:
  std::vector<Monomial> terms_;
};

}  // namespace kgov::math

#endif  // KGOV_MATH_SIGNOMIAL_H_
