#include "ppr/edge_vars.h"

#include "common/logging.h"

namespace kgov::ppr {

math::VarId EdgeVariableMap::GetOrRegister(graph::EdgeId edge) {
  auto [it, inserted] = edge_to_var_.try_emplace(
      edge, static_cast<math::VarId>(var_to_edge_.size()));
  if (inserted) {
    var_to_edge_.push_back(edge);
  }
  return it->second;
}

std::optional<math::VarId> EdgeVariableMap::Find(graph::EdgeId edge) const {
  auto it = edge_to_var_.find(edge);
  if (it == edge_to_var_.end()) return std::nullopt;
  return it->second;
}

graph::EdgeId EdgeVariableMap::EdgeOf(math::VarId var) const {
  KGOV_CHECK(var < var_to_edge_.size());
  return var_to_edge_[var];
}

std::vector<double> EdgeVariableMap::InitialValues(
    const graph::WeightedDigraph& graph) const {
  std::vector<double> values(var_to_edge_.size());
  for (size_t v = 0; v < var_to_edge_.size(); ++v) {
    values[v] = graph.Weight(var_to_edge_[v]);
  }
  return values;
}

void EdgeVariableMap::ApplyValues(const std::vector<double>& values,
                                  graph::WeightedDigraph* graph) const {
  KGOV_CHECK(values.size() == var_to_edge_.size());
  for (size_t v = 0; v < values.size(); ++v) {
    graph->SetWeight(var_to_edge_[v], values[v]);
  }
}

}  // namespace kgov::ppr
