file(REMOVE_RECURSE
  "CMakeFiles/kgov_qa.dir/baselines.cc.o"
  "CMakeFiles/kgov_qa.dir/baselines.cc.o.d"
  "CMakeFiles/kgov_qa.dir/corpus.cc.o"
  "CMakeFiles/kgov_qa.dir/corpus.cc.o.d"
  "CMakeFiles/kgov_qa.dir/corpus_io.cc.o"
  "CMakeFiles/kgov_qa.dir/corpus_io.cc.o.d"
  "CMakeFiles/kgov_qa.dir/kg_builder.cc.o"
  "CMakeFiles/kgov_qa.dir/kg_builder.cc.o.d"
  "CMakeFiles/kgov_qa.dir/metrics.cc.o"
  "CMakeFiles/kgov_qa.dir/metrics.cc.o.d"
  "CMakeFiles/kgov_qa.dir/qa_system.cc.o"
  "CMakeFiles/kgov_qa.dir/qa_system.cc.o.d"
  "CMakeFiles/kgov_qa.dir/user_sim.cc.o"
  "CMakeFiles/kgov_qa.dir/user_sim.cc.o.d"
  "libkgov_qa.a"
  "libkgov_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgov_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
