// Clang thread-safety annotations and the capability-annotated mutex
// wrappers every concurrent kgov subsystem uses.
//
// The locking discipline of the serving stack (epoch-swapped reads in
// core::OnlineKgOptimizer, the sharded result cache, the thread pool's
// task queue) used to live in comments. These macros turn those comments
// into machine-checked contracts: under Clang with -Wthread-safety (the
// KGOV_STATIC_ANALYSIS build, tools/ci/analyze.sh), annotating a member
// with KGOV_GUARDED_BY(mu_) makes any unlocked access a compile error.
// Under GCC (which has no thread-safety analysis) every macro expands to
// nothing and the wrappers behave exactly like std::mutex +
// std::lock_guard, so the annotations cost nothing where they cannot be
// checked.
//
// Conventions (docs/static_analysis.md):
//  * Mutex members are kgov::Mutex / kgov::SharedMutex, never raw
//    std::mutex (enforced by tools/lint/kgov_lint.py: raw-mutex-member).
//  * Every member a mutex protects carries KGOV_GUARDED_BY(mu_).
//  * Functions that expect the caller to hold a lock say
//    KGOV_REQUIRES(mu_) instead of a "caller holds mu_" comment.
//  * Critical sections are MutexLock / ReaderMutexLock / WriterMutexLock
//    scopes; condition waits go through MutexLock::Wait.

#ifndef KGOV_COMMON_THREAD_ANNOTATIONS_H_
#define KGOV_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>

#if defined(KGOV_LOCK_DEBUG)
#include "common/lock_rank.h"
#include "common/lock_ranks.h"
#include "common/sched.h"
#else
// The rank registry is tiny and header-only; keeping it visible in plain
// builds lets call sites say Mutex mu_{KGOV_LOCK_RANK(...)} without their
// own #if. The constructor discards the value below.
#include "common/lock_ranks.h"
#endif

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define KGOV_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef KGOV_THREAD_ANNOTATION_
#define KGOV_THREAD_ANNOTATION_(x)  // not supported by this compiler
#endif

/// Declares a type to be a capability ("mutex"-like). Applied to the
/// wrapper classes below; user code never needs it directly.
#define KGOV_CAPABILITY(x) KGOV_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define KGOV_SCOPED_CAPABILITY KGOV_THREAD_ANNOTATION_(scoped_lockable)

/// Member annotation: reads/writes require holding `x`.
#define KGOV_GUARDED_BY(x) KGOV_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer-member annotation: the pointed-to data requires holding `x`
/// (the pointer itself may be read freely).
#define KGOV_PT_GUARDED_BY(x) KGOV_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function annotation: the caller must hold the listed capabilities
/// exclusively. Replaces "caller holds mu_" comments.
#define KGOV_REQUIRES(...) \
  KGOV_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function annotation: the caller must hold the listed capabilities at
/// least in shared (reader) mode.
#define KGOV_REQUIRES_SHARED(...) \
  KGOV_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function annotation: the function acquires the capability and leaves it
/// held on return.
#define KGOV_ACQUIRE(...) \
  KGOV_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define KGOV_ACQUIRE_SHARED(...) \
  KGOV_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function annotation: the function releases a held capability.
#define KGOV_RELEASE(...) \
  KGOV_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define KGOV_RELEASE_SHARED(...) \
  KGOV_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function annotation: acquires the capability only when returning the
/// given value (e.g. KGOV_TRY_ACQUIRE(true) on a try_lock).
#define KGOV_TRY_ACQUIRE(...) \
  KGOV_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the listed capabilities
/// (deadlock prevention; e.g. public methods that lock internally).
#define KGOV_EXCLUDES(...) KGOV_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function annotation: returns a reference to the given capability.
#define KGOV_RETURN_CAPABILITY(x) KGOV_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Use only with a
/// comment explaining why the analysis cannot see the invariant.
#define KGOV_NO_THREAD_SAFETY_ANALYSIS \
  KGOV_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace kgov {

/// std::mutex with the capability annotation, so members can be declared
/// KGOV_GUARDED_BY(mu_) and functions KGOV_REQUIRES(mu_). Lock through
/// MutexLock; Lock()/Unlock() exist for the rare manual pairing.
///
/// The optional constructor rank (common/lock_ranks.h) places the mutex
/// in the process-wide acquisition order; in lock-debug builds
/// (KGOV_LOCK_DEBUG) every acquisition is checked against it by the
/// runtime detector (common/lock_rank.h) whenever tracking is armed, and
/// routed through the schedule explorer (common/sched.h) on registered
/// test threads. When both are dormant the hook is one relaxed atomic
/// load; in plain builds it does not exist at all.
class KGOV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
#if defined(KGOV_LOCK_DEBUG)
  explicit Mutex(lockrank::Rank rank) : rank_(rank) {}
#else
  explicit Mutex(lockrank::Rank /*rank*/) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KGOV_ACQUIRE() {
#if defined(KGOV_LOCK_DEBUG)
    if (lockinstr::Active()) {
      lockinstr::Acquire(this, rank_, Ops());
      return;
    }
#endif
    mu_.lock();
  }
  void Unlock() KGOV_RELEASE() {
#if defined(KGOV_LOCK_DEBUG)
    if (lockinstr::Active()) {
      lockinstr::Release(this, Ops());
      return;
    }
#endif
    mu_.unlock();
  }
  bool TryLock() KGOV_TRY_ACQUIRE(true) {
#if defined(KGOV_LOCK_DEBUG)
    if (lockinstr::Active()) {
      return lockinstr::TryAcquire(this, rank_, Ops());
    }
#endif
    return mu_.try_lock();
  }

  /// The wrapped handle, for condition-variable waits (MutexLock::Wait).
  /// Locking through the handle bypasses the analysis - don't.
  std::mutex& native_handle() { return mu_; }

 private:
  friend class MutexLock;  // Wait/WaitFor need rank_ + Ops()

#if defined(KGOV_LOCK_DEBUG)
  lockinstr::NativeLockOps Ops() {
    return {&mu_, [](void* h) { static_cast<std::mutex*>(h)->lock(); },
            [](void* h) { return static_cast<std::mutex*>(h)->try_lock(); },
            [](void* h) { static_cast<std::mutex*>(h)->unlock(); }};
  }
  lockrank::Rank rank_ = lockrank::Rank::kUnranked;
#endif
  std::mutex mu_;
};

/// std::shared_mutex with the capability annotation: one writer or many
/// readers. Lock through WriterMutexLock / ReaderMutexLock. Takes an
/// optional rank exactly like Mutex; reader acquisitions participate in
/// the ordering too (reader-writer lock cycles deadlock just as hard).
class KGOV_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
#if defined(KGOV_LOCK_DEBUG)
  explicit SharedMutex(lockrank::Rank rank) : rank_(rank) {}
#else
  explicit SharedMutex(lockrank::Rank /*rank*/) {}
#endif
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() KGOV_ACQUIRE() {
#if defined(KGOV_LOCK_DEBUG)
    if (lockinstr::Active()) {
      lockinstr::Acquire(this, rank_, ExclusiveOps());
      return;
    }
#endif
    mu_.lock();
  }
  void Unlock() KGOV_RELEASE() {
#if defined(KGOV_LOCK_DEBUG)
    if (lockinstr::Active()) {
      lockinstr::Release(this, ExclusiveOps());
      return;
    }
#endif
    mu_.unlock();
  }
  void LockShared() KGOV_ACQUIRE_SHARED() {
#if defined(KGOV_LOCK_DEBUG)
    if (lockinstr::Active()) {
      lockinstr::Acquire(this, rank_, SharedOps());
      return;
    }
#endif
    mu_.lock_shared();
  }
  void UnlockShared() KGOV_RELEASE_SHARED() {
#if defined(KGOV_LOCK_DEBUG)
    if (lockinstr::Active()) {
      lockinstr::Release(this, SharedOps());
      return;
    }
#endif
    mu_.unlock_shared();
  }

 private:
#if defined(KGOV_LOCK_DEBUG)
  lockinstr::NativeLockOps ExclusiveOps() {
    return {&mu_, [](void* h) { static_cast<std::shared_mutex*>(h)->lock(); },
            [](void* h) { return static_cast<std::shared_mutex*>(h)->try_lock(); },
            [](void* h) { static_cast<std::shared_mutex*>(h)->unlock(); }};
  }
  lockinstr::NativeLockOps SharedOps() {
    return {&mu_,
            [](void* h) { static_cast<std::shared_mutex*>(h)->lock_shared(); },
            [](void* h) {
              return static_cast<std::shared_mutex*>(h)->try_lock_shared();
            },
            [](void* h) {
              static_cast<std::shared_mutex*>(h)->unlock_shared();
            }};
  }
  lockrank::Rank rank_ = lockrank::Rank::kUnranked;
#endif
  std::shared_mutex mu_;
};

/// std::condition_variable wrapper whose notifies are visible to the
/// schedule explorer (a registered thread's NotifyOne/NotifyAll is a
/// yield point and wakes modeled waiters). Wait through MutexLock::Wait /
/// WaitFor - always with a predicate (enforced by kgov_lint's
/// condvar-naked-wait rule).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() {
#if defined(KGOV_LOCK_DEBUG)
    if (lockinstr::Active()) lockinstr::CvNotify(this, /*notify_all=*/false);
#endif
    cv_.notify_one();
  }
  void NotifyAll() {
#if defined(KGOV_LOCK_DEBUG)
    if (lockinstr::Active()) lockinstr::CvNotify(this, /*notify_all=*/true);
#endif
    cv_.notify_all();
  }

  /// The wrapped handle, for MutexLock::Wait's native path. Waiting on it
  /// directly bypasses the explorer - don't.
  std::condition_variable& native_handle() { return cv_; }

 private:
  std::condition_variable cv_;
};

/// RAII exclusive critical section over a Mutex (the annotated
/// std::lock_guard). Supports condition waits: Wait() releases and
/// reacquires the underlying handle, which is invisible to (and safe
/// under) the analysis because the capability is held at every sequence
/// point the analysis can observe.
class KGOV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KGOV_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() KGOV_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Blocks on `cv` until `pred()` holds. The predicate runs with the
  /// mutex held; annotate its lambda KGOV_REQUIRES(mu) so guarded reads
  /// inside it check out. On a registered explorer thread the wait is
  /// modeled (common/sched.h) so wakeup ordering becomes a schedule
  /// decision.
  template <typename Predicate>
  void Wait(CondVar& cv, Predicate pred) {
#if defined(KGOV_LOCK_DEBUG)
    if (lockinstr::Active() && sched::CurrentThreadRegistered()) {
      sched::CvWait(&cv, &mu_, mu_.rank_, mu_.Ops(),
                    std::function<bool()>(pred));
      return;
    }
#endif
    std::unique_lock<std::mutex> relock(mu_.native_handle(),
                                        std::adopt_lock);
    cv.native_handle().wait(relock, std::move(pred));
    // The wait returned with the handle re-locked; detach so the
    // unique_lock's destructor does not unlock what this scope still owns.
    relock.release();
  }

  /// Timed variant: blocks on `cv` until `pred()` holds or `timeout`
  /// elapses. Returns pred()'s value at wake-up (false = timed out with
  /// the predicate still unsatisfied). The mutex is held on return either
  /// way. Under the explorer the timeout is modeled, not measured.
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(CondVar& cv, const std::chrono::duration<Rep, Period>& timeout,
               Predicate pred) {
#if defined(KGOV_LOCK_DEBUG)
    if (lockinstr::Active() && sched::CurrentThreadRegistered()) {
      return sched::CvWaitFor(
          &cv, &mu_, mu_.rank_, mu_.Ops(),
          std::chrono::duration_cast<std::chrono::nanoseconds>(timeout),
          std::function<bool()>(pred));
    }
#endif
    std::unique_lock<std::mutex> relock(mu_.native_handle(),
                                        std::adopt_lock);
    const bool satisfied =
        cv.native_handle().wait_for(relock, timeout, std::move(pred));
    relock.release();
    return satisfied;
  }

 private:
  Mutex& mu_;
};

/// RAII exclusive (writer) critical section over a SharedMutex.
class KGOV_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) KGOV_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() KGOV_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) critical section over a SharedMutex.
class KGOV_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) KGOV_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() KGOV_RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace kgov

#endif  // KGOV_COMMON_THREAD_ANNOTATIONS_H_
