// Fixed-size worker pool used to parallelize independent SGP sub-problems in
// the distributed split-and-merge strategy (paper SVI). The paper ran the
// clusters on four machines; the clusters are independent by construction,
// so a thread pool reproduces the same speedup structure on one machine.

#ifndef KGOV_COMMON_THREAD_POOL_H_
#define KGOV_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace kgov {

/// A simple FIFO thread pool. Tasks may not block on other tasks submitted
/// to the same pool (no nested dependency scheduling).
///
/// Exceptions: a task submitted via Submit that throws has the exception
/// captured into its future (std::packaged_task semantics); the worker
/// thread survives. A task that throws something a packaged_task cannot
/// capture never reaches the worker loop, which additionally swallows and
/// counts any stray exception as a last resort instead of terminating the
/// process.
///
/// Locking discipline (checked by the KGOV_STATIC_ANALYSIS build): mu_
/// guards the task queue, the shutdown flag, and the stray-exception
/// counter; cv_ is the queue's not-empty/shutdown signal. Tasks run with
/// no pool lock held - a task that logs or submits more work never holds
/// mu_.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result. If `fn` throws,
  /// the exception is rethrown from future.get(), not on the worker.
  ///
  /// Submit racing the destructor is well-defined: a task is either
  /// enqueued before the shutdown flag is observed (the destructor's drain
  /// runs it) or, once shutdown has begun, executed inline on the
  /// submitting thread. Either way the returned future becomes ready with
  /// the task's result - a submitted task is never dropped and its future
  /// never throws broken_promise. (tests/test_thread_pool.cc,
  /// ShutdownVsSubmit*, locks this in under TSan and sched::Explorer.)
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    bool run_inline = false;
    {
      MutexLock lock(mu_);
      if (shutting_down_) {
        // Workers are draining and may already have observed an empty
        // queue; enqueueing now could strand the task (broken_promise
        // once the pool's queue is destroyed). Run it on the caller.
        run_inline = true;
      } else {
        queue_.emplace_back([task]() { (*task)(); });
      }
    }
    if (run_inline) {
      (*task)();  // packaged_task captures any exception into the future
    } else {
      cv_.NotifyOne();
    }
    return result;
  }

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Exceptions that escaped task wrappers and were swallowed by the worker
  /// loop (should stay 0; non-zero indicates a task infrastructure bug).
  size_t StrayExceptionCount() const KGOV_EXCLUDES(mu_);

  /// The calling thread's worker index in [0, size()), or kNotAWorker when
  /// the caller is not one of THIS pool's workers. Lets tasks address
  /// per-worker state (e.g. reusable workspaces) without locks: a worker
  /// index is stable for the thread's lifetime and never shared.
  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);
  size_t CurrentWorkerIndex() const;

 private:
  void WorkerLoop(size_t worker_index) KGOV_EXCLUDES(mu_);

  mutable Mutex mu_{KGOV_LOCK_RANK(kThreadPool)};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ KGOV_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  size_t stray_exceptions_ KGOV_GUARDED_BY(mu_) = 0;
  bool shutting_down_ KGOV_GUARDED_BY(mu_) = false;
};

/// Runs `fn(i)` for i in [0, n) on `pool` (or inline when pool is null),
/// blocking until all iterations complete. An iteration that throws is
/// captured (it does not terminate the process or abandon the remaining
/// iterations); the returned status is OK when every iteration completed,
/// otherwise Internal with the first failure's message. Use the
/// `failed` out-parameter overload to learn which iterations failed.
Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<void(size_t)>& fn);

/// As above, and fills `failed` (resized to n) with per-iteration failure
/// flags so callers can isolate and retry/quarantine individual items.
Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<void(size_t)>& fn,
                   std::vector<char>* failed);

}  // namespace kgov

#endif  // KGOV_COMMON_THREAD_POOL_H_
