#include "votes/votes_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace kgov::votes {
namespace {

class VotesIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "kgov_votes_io_test.txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
    ASSERT_TRUE(out.good());
  }

  std::string path_;
};

Vote MakeVote(uint32_t id) {
  Vote vote;
  vote.id = id;
  vote.weight = 2.5;
  vote.query.links.emplace_back(3, 0.25);
  vote.query.links.emplace_back(7, 0.75);
  vote.answer_list = {10, 11, 12};
  vote.best_answer = 11;
  return vote;
}

TEST_F(VotesIoTest, RoundTrip) {
  std::vector<Vote> original{MakeVote(0), MakeVote(5)};
  original[1].weight = 1.0;
  original[1].best_answer = 10;
  ASSERT_TRUE(SaveVotes(original, path_).ok());

  Result<std::vector<Vote>> loaded = LoadVotes(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  const Vote& v = (*loaded)[0];
  EXPECT_EQ(v.id, 0u);
  EXPECT_DOUBLE_EQ(v.weight, 2.5);
  EXPECT_EQ(v.best_answer, 11u);
  EXPECT_EQ(v.answer_list, (std::vector<graph::NodeId>{10, 11, 12}));
  ASSERT_EQ(v.query.links.size(), 2u);
  EXPECT_EQ(v.query.links[0].first, 3u);
  EXPECT_DOUBLE_EQ(v.query.links[0].second, 0.25);
  EXPECT_TRUE(v.IsWellFormed());
  EXPECT_EQ((*loaded)[1].best_answer, 10u);
}

TEST_F(VotesIoTest, PositivityPreserved) {
  Vote positive = MakeVote(1);
  positive.best_answer = 10;  // top of the list
  ASSERT_TRUE(SaveVotes({positive}, path_).ok());
  Result<std::vector<Vote>> loaded = LoadVotes(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE((*loaded)[0].IsPositive());
}

TEST_F(VotesIoTest, EmptySetRoundTrips) {
  ASSERT_TRUE(SaveVotes({}, path_).ok());
  Result<std::vector<Vote>> loaded = LoadVotes(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(VotesIoTest, BadTagRejected) {
  WriteFile("W 0 1.0 B 1 A 1 2 S 0:1\n");
  EXPECT_FALSE(LoadVotes(path_).ok());
}

TEST_F(VotesIoTest, NonPositiveWeightRejected) {
  WriteFile("V 0 0.0 B 1 A 1 2 S 0:1\n");
  EXPECT_EQ(LoadVotes(path_).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(VotesIoTest, NegativeWeightIsInvalidArgument) {
  WriteFile("V 0 -2.5 B 1 A 1 2 S 0:1\n");
  EXPECT_EQ(LoadVotes(path_).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(VotesIoTest, GarbageAnswerIdIsInvalidArgumentNotCrash) {
  WriteFile("V 0 1.0 B 1 A 1 oops S 0:1\n");
  Status status = LoadVotes(path_).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("bad answer id"), std::string::npos);
}

TEST_F(VotesIoTest, NegativeAnswerIdRejected) {
  WriteFile("V 0 1.0 B 1 A 1 -7 S 0:1\n");
  EXPECT_EQ(LoadVotes(path_).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(VotesIoTest, GarbageSeedLinkIsInvalidArgument) {
  WriteFile("V 0 1.0 B 1 A 1 2 S a:b\n");
  Status status = LoadVotes(path_).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("bad seed link"), std::string::npos);
}

TEST_F(VotesIoTest, NonFiniteSeedWeightRejected) {
  WriteFile("V 0 1.0 B 1 A 1 2 S 0:nan\n");
  EXPECT_EQ(LoadVotes(path_).status().code(), StatusCode::kInvalidArgument);
  WriteFile("V 0 1.0 B 1 A 1 2 S 0:inf\n");
  EXPECT_EQ(LoadVotes(path_).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(VotesIoTest, MalformedSeedRejected) {
  WriteFile("V 0 1.0 B 1 A 1 2 S 0\n");
  EXPECT_FALSE(LoadVotes(path_).ok());
}

TEST_F(VotesIoTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadVotes("/nonexistent/votes.txt").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace kgov::votes
