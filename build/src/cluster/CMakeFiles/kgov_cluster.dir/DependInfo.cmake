
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/affinity_propagation.cc" "src/cluster/CMakeFiles/kgov_cluster.dir/affinity_propagation.cc.o" "gcc" "src/cluster/CMakeFiles/kgov_cluster.dir/affinity_propagation.cc.o.d"
  "/root/repo/src/cluster/merge.cc" "src/cluster/CMakeFiles/kgov_cluster.dir/merge.cc.o" "gcc" "src/cluster/CMakeFiles/kgov_cluster.dir/merge.cc.o.d"
  "/root/repo/src/cluster/vote_similarity.cc" "src/cluster/CMakeFiles/kgov_cluster.dir/vote_similarity.cc.o" "gcc" "src/cluster/CMakeFiles/kgov_cluster.dir/vote_similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kgov_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kgov_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/kgov_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
