# Empty dependencies file for test_eipd.
# This may be replaced when dependencies are built.
