// Durability subsystem tests: CRC vectors, the vote codec, atomic file
// publish, snapshot round trips (including mmap zero-copy serving and
// corruption detection), WAL append/replay/torn-tail repair, and the full
// checkpoint -> crash -> Recover loop with bitwise-identical rankings.
// The process-kill crash tests live in test_durability_kill.cc.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/fs.h"
#include "durability/manager.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "core/online_optimizer.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/validate.h"
#include "ppr/eipd_engine.h"
#include "serve/query_engine.h"
#include "votes/vote_wal_codec.h"

namespace kgov::durability {
namespace {

// ------------------------------ fixtures ---------------------------------

graph::WeightedDigraph MakeFixture() {
  graph::WeightedDigraph g(5);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.4).ok());
  EXPECT_TRUE(g.AddEdge(1, 3, 1.0).ok());
  EXPECT_TRUE(g.AddEdge(2, 4, 1.0).ok());
  return g;
}

votes::Vote MakeVote(uint32_t id, graph::NodeId best = 4) {
  votes::Vote vote;
  vote.id = id;
  vote.weight = 1.5;
  vote.query.links.emplace_back(0, 1.0);
  vote.answer_list = {3, 4};
  vote.best_answer = best;
  return vote;
}

core::OnlineOptimizerOptions SmallOptions(size_t batch) {
  core::OnlineOptimizerOptions options;
  options.batch_size = batch;
  options.optimizer.encoder.symbolic.eipd.max_length = 4;
  options.optimizer.apply_judgment_filter = false;
  options.strategy = core::FlushStrategy::kMultiVote;
  return options;
}

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "kgov_durability_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    ASSERT_TRUE(fs::CreateDirs(dir_).ok());
  }
  void TearDown() override {
    FaultInjector::Global().Reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string dir_;
};

// -------------------------------- CRC ------------------------------------

TEST(Crc32Test, MatchesKnownCastagnoliVector) {
  // The canonical CRC-32C check vector (iSCSI, RFC 3720 appendix B.4).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(Crc32Test, SeedChainsIncrementalComputation) {
  const std::string data = "the quick brown fox";
  uint32_t whole = Crc32c(data);
  uint32_t chained = Crc32c(data.substr(4), Crc32c(data.substr(0, 4)));
  EXPECT_EQ(whole, chained);
}

TEST(Crc32Test, MaskIsNotIdentityAndIsDeterministic) {
  const uint32_t crc = Crc32c("123456789");
  EXPECT_NE(MaskCrc32c(crc), crc);
  EXPECT_EQ(MaskCrc32c(crc), MaskCrc32c(crc));
}

// ------------------------------ vote codec -------------------------------

TEST(VoteWalCodecTest, RoundTripsAllFields) {
  votes::Vote vote = MakeVote(42);
  vote.query.links.emplace_back(2, 0.25);
  std::string encoded;
  votes::EncodeVote(vote, &encoded);
  size_t offset = 0;
  votes::Vote decoded;
  ASSERT_TRUE(votes::DecodeVote(encoded, &offset, &decoded).ok());
  EXPECT_EQ(offset, encoded.size());
  EXPECT_EQ(decoded.id, vote.id);
  EXPECT_EQ(decoded.weight, vote.weight);
  EXPECT_EQ(decoded.best_answer, vote.best_answer);
  EXPECT_EQ(decoded.answer_list, vote.answer_list);
  EXPECT_EQ(decoded.query.links, vote.query.links);
}

TEST(VoteWalCodecTest, EveryTruncationFailsWithByteOffset) {
  std::string encoded;
  votes::EncodeVote(MakeVote(7), &encoded);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    size_t offset = 0;
    votes::Vote decoded;
    Status status =
        votes::DecodeVote(encoded.substr(0, cut), &offset, &decoded);
    EXPECT_FALSE(status.ok()) << "cut at " << cut;
  }
}

TEST(VoteWalCodecTest, ImplausibleListLengthRejectedNotAllocated) {
  // id + weight + best_answer, then a poisoned answer count.
  std::string encoded;
  votes::Vote vote = MakeVote(1);
  vote.answer_list.clear();
  vote.query.links.clear();
  votes::EncodeVote(vote, &encoded);
  const uint32_t poisoned = 0x7FFFFFFF;
  std::memcpy(encoded.data() + 16, &poisoned, sizeof(poisoned));
  size_t offset = 0;
  votes::Vote decoded;
  Status status = votes::DecodeVote(encoded, &offset, &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
}

// ----------------------------- fs primitives -----------------------------

TEST_F(DurabilityTest, WriteFileAtomicPublishesAndOverwrites) {
  const std::string path = dir_ + "/file.bin";
  ASSERT_TRUE(fs::WriteFileAtomic(path, "one").ok());
  StatusOr<std::string> read = fs::ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "one");
  ASSERT_TRUE(fs::WriteFileAtomic(path, "two").ok());
  EXPECT_EQ(fs::ReadFileToString(path).value(), "two");
}

TEST_F(DurabilityTest, WriteFileAtomicFaultLeavesOldContentIntact) {
  const std::string path = dir_ + "/file.bin";
  ASSERT_TRUE(fs::WriteFileAtomic(path, "old").ok());
  {
    ScopedFault fault(FaultSite::kFsWriteFailure, {.probability = 1.0});
    Status failed = fs::WriteFileAtomic(path, "new");
    ASSERT_FALSE(failed.ok());
  }
  // The previous content survives and no temp file leaks.
  EXPECT_EQ(fs::ReadFileToString(path).value(), "old");
  StatusOr<std::vector<std::string>> entries = fs::ListDir(dir_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 1u);
}

TEST_F(DurabilityTest, FsyncFaultSurfacesAsIoError) {
  ScopedFault fault(FaultSite::kFsyncFailure, {.probability = 1.0});
  Status failed = fs::WriteFileAtomic(dir_ + "/f", "data");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
}

TEST_F(DurabilityTest, AppendFileTracksSizeAndAppends) {
  const std::string path = dir_ + "/append.log";
  StatusOr<fs::AppendFile> opened = fs::AppendFile::Open(path);
  ASSERT_TRUE(opened.ok());
  fs::AppendFile file = std::move(opened.value());
  ASSERT_TRUE(file.Append("hello ").ok());
  ASSERT_TRUE(file.Append("world").ok());
  EXPECT_EQ(file.size(), 11u);
  ASSERT_TRUE(file.Sync().ok());
  ASSERT_TRUE(file.Close().ok());
  // Reopening resumes at the existing size.
  StatusOr<fs::AppendFile> reopened = fs::AppendFile::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().size(), 11u);
  EXPECT_EQ(fs::ReadFileToString(path).value(), "hello world");
}

// ------------------------------- snapshot --------------------------------

TEST(SnapshotNameTest, FileNameRoundTripsAndRejectsGarbage) {
  EXPECT_EQ(ParseSnapshotFileName(SnapshotFileName(0)), 0u);
  EXPECT_EQ(ParseSnapshotFileName(SnapshotFileName(42)), 42u);
  EXPECT_FALSE(ParseSnapshotFileName("snapshot-42.kgs").has_value());
  EXPECT_FALSE(ParseSnapshotFileName("wal-00000000000000000001.log")
                   .has_value());
  EXPECT_EQ(ParseWalFileName(WalFileName(7)), 7u);
  EXPECT_FALSE(ParseWalFileName("wal-7.log").has_value());
}

TEST_F(DurabilityTest, SnapshotRoundTripsGraphMetaAndVoteBuffers) {
  graph::WeightedDigraph g = MakeFixture();
  const graph::CsrSnapshot csr(g);
  SnapshotMeta meta;
  meta.epoch = 9;
  meta.num_entities = 3;
  meta.num_documents = 2;
  meta.wal_seq = 4;
  meta.pending = {MakeVote(1), MakeVote(2, 3)};
  meta.dead_letters = {MakeVote(3)};
  const std::string path = dir_ + "/" + SnapshotFileName(meta.epoch);
  ASSERT_TRUE(WriteSnapshot(path, csr.View(), meta).ok());

  StatusOr<MappedSnapshot> loaded = MappedSnapshot::Load(path, {});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const MappedSnapshot& snapshot = loaded.value();
  EXPECT_EQ(snapshot.epoch(), 9u);
  EXPECT_EQ(snapshot.num_entities(), 3u);
  EXPECT_EQ(snapshot.num_documents(), 2u);
  EXPECT_EQ(snapshot.wal_seq(), 4u);
  ASSERT_EQ(snapshot.pending().size(), 2u);
  EXPECT_EQ(snapshot.pending()[1].best_answer, 3u);
  ASSERT_EQ(snapshot.dead_letters().size(), 1u);
  EXPECT_EQ(snapshot.dead_letters()[0].id, 3u);

  // The mmap'd view is structurally valid and identical to the source.
  graph::GraphView view = snapshot.View();
  ASSERT_TRUE(graph::ValidateCsr(view).ok());
  ASSERT_EQ(view.NumNodes(), csr.NumNodes());
  ASSERT_EQ(view.NumEdges(), csr.NumEdges());
  for (graph::NodeId node = 0; node < view.NumNodes(); ++node) {
    ASSERT_EQ(view.OutDegree(node), csr.OutDegree(node));
    const auto* got = view.begin(node);
    const auto* want = csr.begin(node);
    for (size_t i = 0; i < view.OutDegree(node); ++i) {
      EXPECT_EQ(got[i].to, want[i].to);
      EXPECT_EQ(got[i].weight, want[i].weight);  // bitwise (no arithmetic)
    }
  }
}

TEST_F(DurabilityTest, SnapshotServesBitwiseIdenticalRankingsAfterReload) {
  graph::WeightedDigraph g = MakeFixture();
  const graph::CsrSnapshot csr(g);
  votes::Vote probe = MakeVote(0);
  ppr::EipdEngine original(csr.View(), {.max_length = 4});
  StatusOr<std::vector<double>> want =
      original.Scores(probe.query, probe.answer_list);
  ASSERT_TRUE(want.ok());

  SnapshotMeta meta;
  meta.epoch = 1;
  const std::string path = dir_ + "/" + SnapshotFileName(1);
  ASSERT_TRUE(WriteSnapshot(path, csr.View(), meta).ok());
  StatusOr<MappedSnapshot> loaded = MappedSnapshot::Load(path, {});
  ASSERT_TRUE(loaded.ok());

  // Zero-copy serving straight off the mapping...
  ppr::EipdEngine mapped(loaded.value().View(), {.max_length = 4});
  StatusOr<std::vector<double>> got =
      mapped.Scores(probe.query, probe.answer_list);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), want.value());  // bitwise

  // ...and through the mutable-graph reconstruction (the recovery path):
  // CSR row order is preserved, so the propagation order - and therefore
  // every ranking bit - is too.
  graph::WeightedDigraph rebuilt = loaded.value().ToWeightedDigraph();
  const graph::CsrSnapshot rebuilt_csr(rebuilt);
  ppr::EipdEngine recovered(rebuilt_csr.View(), {.max_length = 4});
  StatusOr<std::vector<double>> after =
      recovered.Scores(probe.query, probe.answer_list);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), want.value());  // bitwise
}

TEST_F(DurabilityTest, CorruptedSnapshotBodyIsDetected) {
  graph::WeightedDigraph g = MakeFixture();
  const graph::CsrSnapshot csr(g);
  SnapshotMeta meta;
  meta.epoch = 1;
  std::string bytes = EncodeSnapshot(csr.View(), meta);
  bytes[200] ^= 0x01;  // flip one bit in the offsets section
  const std::string path = dir_ + "/" + SnapshotFileName(1);
  ASSERT_TRUE(fs::WriteFileAtomic(path, bytes).ok());
  StatusOr<MappedSnapshot> loaded = MappedSnapshot::Load(path, {});
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST_F(DurabilityTest, CorruptedSnapshotHeaderIsDetectedEvenUnverified) {
  graph::WeightedDigraph g = MakeFixture();
  const graph::CsrSnapshot csr(g);
  SnapshotMeta meta;
  meta.epoch = 1;
  std::string bytes = EncodeSnapshot(csr.View(), meta);
  bytes[16] ^= 0x40;  // flip a bit inside the header's epoch field
  const std::string path = dir_ + "/" + SnapshotFileName(1);
  ASSERT_TRUE(fs::WriteFileAtomic(path, bytes).ok());
  SnapshotLoadOptions no_body;
  no_body.verify_body_checksum = false;
  StatusOr<MappedSnapshot> loaded = MappedSnapshot::Load(path, no_body);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST_F(DurabilityTest, TruncatedSnapshotIsDetected) {
  graph::WeightedDigraph g = MakeFixture();
  const graph::CsrSnapshot csr(g);
  SnapshotMeta meta;
  meta.epoch = 1;
  std::string bytes = EncodeSnapshot(csr.View(), meta);
  const std::string path = dir_ + "/" + SnapshotFileName(1);
  ASSERT_TRUE(
      fs::WriteFileAtomic(path, bytes.substr(0, bytes.size() - 9)).ok());
  EXPECT_FALSE(MappedSnapshot::Load(path, {}).ok());
  ASSERT_TRUE(fs::WriteFileAtomic(path, bytes.substr(0, 40)).ok());
  EXPECT_FALSE(MappedSnapshot::Load(path, {}).ok());
}

TEST_F(DurabilityTest, EmptyGraphSnapshotRoundTrips) {
  graph::WeightedDigraph empty;
  const graph::CsrSnapshot csr(empty);
  const std::string path = dir_ + "/" + SnapshotFileName(0);
  ASSERT_TRUE(WriteSnapshot(path, csr.View(), {}).ok());
  StatusOr<MappedSnapshot> loaded = MappedSnapshot::Load(path, {});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().View().NumNodes(), 0u);
  EXPECT_EQ(loaded.value().ToWeightedDigraph().NumNodes(), 0u);
}

// --------------------------------- WAL -----------------------------------

TEST_F(DurabilityTest, WalAppendsReplayInOrderAcrossSegments) {
  {
    StatusOr<VoteWal> opened = VoteWal::Open(dir_, {});
    ASSERT_TRUE(opened.ok());
    VoteWal wal = std::move(opened.value());
    ASSERT_TRUE(wal.AppendVote(MakeVote(1)).ok());
    ASSERT_TRUE(wal.AppendVote(MakeVote(2)).ok());
    ASSERT_TRUE(wal.RollSegment().ok());
    ASSERT_TRUE(wal.AppendDeadLetter(MakeVote(3)).ok());
  }
  StatusOr<WalReplayResult> replayed = ReplayWal(dir_, 0, {});
  ASSERT_TRUE(replayed.ok());
  const WalReplayResult& result = replayed.value();
  EXPECT_EQ(result.segments_read, 2u);
  EXPECT_EQ(result.torn_tails_truncated, 0u);
  EXPECT_EQ(result.corrupt_records, 0u);
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.records[0].vote.id, 1u);
  EXPECT_EQ(result.records[0].type, WalRecordType::kVote);
  EXPECT_EQ(result.records[2].vote.id, 3u);
  EXPECT_EQ(result.records[2].type, WalRecordType::kDeadLetter);
}

TEST_F(DurabilityTest, WalReopenNeverAppendsToAnExistingSegment) {
  uint64_t first_seq = 0;
  {
    StatusOr<VoteWal> opened = VoteWal::Open(dir_, {});
    ASSERT_TRUE(opened.ok());
    first_seq = opened.value().live_seq();
    ASSERT_TRUE(opened.value().AppendVote(MakeVote(1)).ok());
  }
  StatusOr<VoteWal> reopened = VoteWal::Open(dir_, {});
  ASSERT_TRUE(reopened.ok());
  EXPECT_GT(reopened.value().live_seq(), first_seq);
  ASSERT_TRUE(reopened.value().AppendVote(MakeVote(2)).ok());
  StatusOr<WalReplayResult> replayed = ReplayWal(dir_, 0, {});
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed.value().records.size(), 2u);
  EXPECT_EQ(replayed.value().records[1].vote.id, 2u);
}

TEST_F(DurabilityTest, TornTailIsToleratedAndTruncated) {
  std::string segment_path;
  uint64_t seq = 0;
  {
    StatusOr<VoteWal> opened = VoteWal::Open(dir_, {});
    ASSERT_TRUE(opened.ok());
    VoteWal wal = std::move(opened.value());
    seq = wal.live_seq();
    ASSERT_TRUE(wal.AppendVote(MakeVote(1)).ok());
    ASSERT_TRUE(wal.AppendVote(MakeVote(2)).ok());
    segment_path = dir_ + "/" + WalFileName(seq);
  }
  // Tear the final record in half, as a crash mid-append would.
  StatusOr<int64_t> size = fs::FileSize(segment_path);
  ASSERT_TRUE(size.ok());
  StatusOr<std::string> data = fs::ReadFileToString(segment_path);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(
      fs::TruncateFile(segment_path, size.value() - 11).ok());

  StatusOr<WalReplayResult> replayed = ReplayWal(dir_, 0, {});
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().records.size(), 1u);
  EXPECT_EQ(replayed.value().torn_tails_truncated, 1u);
  EXPECT_EQ(replayed.value().corrupt_records, 0u);

  // The default options physically truncated the torn record, so a second
  // replay sees a clean segment.
  StatusOr<WalReplayResult> again = ReplayWal(dir_, 0, {});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().records.size(), 1u);
  EXPECT_EQ(again.value().torn_tails_truncated, 0u);
}

TEST_F(DurabilityTest, MidSegmentCorruptionStopsThatSegmentLoudly) {
  std::string segment_path;
  {
    StatusOr<VoteWal> opened = VoteWal::Open(dir_, {});
    ASSERT_TRUE(opened.ok());
    VoteWal wal = std::move(opened.value());
    ASSERT_TRUE(wal.AppendVote(MakeVote(1)).ok());
    ASSERT_TRUE(wal.AppendVote(MakeVote(2)).ok());
    ASSERT_TRUE(wal.AppendVote(MakeVote(3)).ok());
    segment_path = dir_ + "/" + WalFileName(wal.live_seq());
  }
  StatusOr<std::string> data = fs::ReadFileToString(segment_path);
  ASSERT_TRUE(data.ok());
  std::string bytes = data.value();
  // Flip a payload byte of the SECOND record (records are equal-sized
  // here; the second starts one record past the segment header).
  const size_t record_size = (bytes.size() - 24) / 3;
  bytes[24 + record_size + 10] ^= 0x01;
  ASSERT_TRUE(fs::WriteFileAtomic(segment_path, bytes).ok());

  StatusOr<WalReplayResult> replayed = ReplayWal(dir_, 0, {});
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().records.size(), 1u);  // only the first
  EXPECT_EQ(replayed.value().corrupt_records, 1u);
  EXPECT_EQ(replayed.value().torn_tails_truncated, 0u);
}

TEST_F(DurabilityTest, DeleteSegmentsBelowSparesLiveAndNewer) {
  StatusOr<VoteWal> opened = VoteWal::Open(dir_, {});
  ASSERT_TRUE(opened.ok());
  VoteWal wal = std::move(opened.value());
  ASSERT_TRUE(wal.AppendVote(MakeVote(1)).ok());
  ASSERT_TRUE(wal.RollSegment().ok());
  ASSERT_TRUE(wal.AppendVote(MakeVote(2)).ok());
  ASSERT_TRUE(wal.RollSegment().ok());
  const uint64_t live = wal.live_seq();
  ASSERT_TRUE(wal.DeleteSegmentsBelow(live).ok());
  StatusOr<std::vector<std::string>> entries = fs::ListDir(dir_);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 1u);
  EXPECT_EQ(entries.value()[0], WalFileName(live));
}

TEST_F(DurabilityTest, WalAppendFaultMeansVoteNotAcknowledged) {
  StatusOr<VoteWal> opened = VoteWal::Open(dir_, {});
  ASSERT_TRUE(opened.ok());
  VoteWal wal = std::move(opened.value());
  {
    ScopedFault fault(FaultSite::kFsWriteFailure, {.probability = 1.0});
    EXPECT_FALSE(wal.AppendVote(MakeVote(1)).ok());
  }
  ASSERT_TRUE(wal.AppendVote(MakeVote(2)).ok());
  StatusOr<WalReplayResult> replayed = ReplayWal(dir_, 0, {});
  ASSERT_TRUE(replayed.ok());
  // The failed append may have left a torn prefix; replay must still
  // surface exactly the acknowledged vote.
  ASSERT_EQ(replayed.value().records.size(), 1u);
  EXPECT_EQ(replayed.value().records[0].vote.id, 2u);
}

// ----------------------- manager checkpoint/recover ----------------------

TEST_F(DurabilityTest, RecoverOnEmptyDirectoryIsNotFound) {
  StatusOr<RecoveredState> recovered = Recover(dir_, {});
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsNotFound());
}

TEST_F(DurabilityTest, CheckpointRecoverRoundTripsFullOptimizerState) {
  graph::WeightedDigraph g = MakeFixture();
  DurabilityOptions options;
  options.dir = dir_;
  StatusOr<DurabilityManager> opened = DurabilityManager::Open(options);
  ASSERT_TRUE(opened.ok());
  DurabilityManager manager = std::move(opened.value());

  core::OnlineKgOptimizer online(g, SmallOptions(100));
  online.SetVoteLog(manager.wal());
  // Two flushed batches evolve the graph to epoch 2...
  for (uint32_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(online.AddVote(MakeVote(i)).ok());
    ASSERT_TRUE(online.Flush().ok());
  }
  // ...and two acknowledged-but-unflushed votes sit in the buffer.
  ASSERT_TRUE(online.AddVote(MakeVote(10)).ok());
  ASSERT_TRUE(online.AddVote(MakeVote(11)).ok());
  ASSERT_TRUE(manager.Checkpoint(online, 3, 2).ok());
  // Votes acknowledged after the checkpoint land in the WAL tail.
  ASSERT_TRUE(online.AddVote(MakeVote(12)).ok());

  votes::Vote probe = MakeVote(0);
  const core::ServingEpoch live_epoch = online.CurrentEpoch();
  ppr::EipdEngine live(live_epoch.view(), {.max_length = 4});
  StatusOr<std::vector<double>> want =
      live.Scores(probe.query, probe.answer_list);
  ASSERT_TRUE(want.ok());

  StatusOr<RecoveredState> recovered_or = Recover(dir_, {});
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  RecoveredState& state = recovered_or.value();
  EXPECT_EQ(state.epoch, 2u);
  EXPECT_EQ(state.num_entities, 3u);
  EXPECT_EQ(state.num_documents, 2u);
  EXPECT_EQ(state.wal_records_replayed, 1u);
  ASSERT_EQ(state.pending.size(), 3u);
  EXPECT_EQ(state.pending[0].id, 10u);
  EXPECT_EQ(state.pending[1].id, 11u);
  EXPECT_EQ(state.pending[2].id, 12u);
  EXPECT_TRUE(state.dead_letters.empty());

  // A restarted optimizer resumes at the recovered epoch and serves
  // bitwise-identical rankings.
  core::OnlineKgOptimizer restarted(state.graph, SmallOptions(100),
                                    state.ToRestoredState());
  EXPECT_EQ(restarted.CurrentEpochNumber(), 2u);
  EXPECT_EQ(restarted.PendingVotes(), 3u);
  const core::ServingEpoch resumed_epoch = restarted.CurrentEpoch();
  ppr::EipdEngine resumed(resumed_epoch.view(), {.max_length = 4});
  StatusOr<std::vector<double>> got =
      resumed.Scores(probe.query, probe.answer_list);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), want.value());  // bitwise
}

TEST_F(DurabilityTest, RecoveredStateServesThroughQueryEngine) {
  graph::WeightedDigraph g = MakeFixture();
  DurabilityOptions options;
  options.dir = dir_;
  StatusOr<DurabilityManager> opened = DurabilityManager::Open(options);
  ASSERT_TRUE(opened.ok());
  DurabilityManager manager = std::move(opened.value());

  core::OnlineKgOptimizer online(g, SmallOptions(100));
  online.SetVoteLog(manager.wal());
  ASSERT_TRUE(online.AddVote(MakeVote(0)).ok());
  ASSERT_TRUE(online.Flush().ok());
  ASSERT_TRUE(manager.Checkpoint(online, 3, 2).ok());

  const std::vector<graph::NodeId> candidates = {3, 4};
  serve::QueryEngineOptions serve_options;
  serve_options.eipd.max_length = 4;
  serve_options.num_threads = 2;
  votes::Vote probe = MakeVote(0);

  StatusOr<std::unique_ptr<serve::QueryEngine>> live_engine =
      serve::QueryEngine::Create(&online, &candidates, serve_options);
  ASSERT_TRUE(live_engine.ok());
  StatusOr<serve::RankedAnswers> want =
      live_engine.value()->Submit(probe.query);
  ASSERT_TRUE(want.ok());

  StatusOr<RecoveredState> state = Recover(dir_, {});
  ASSERT_TRUE(state.ok());
  core::OnlineKgOptimizer restarted(state.value().graph, SmallOptions(100),
                                    state.value().ToRestoredState());
  StatusOr<std::unique_ptr<serve::QueryEngine>> recovered_engine =
      serve::QueryEngine::Create(&restarted, &candidates, serve_options);
  ASSERT_TRUE(recovered_engine.ok());
  StatusOr<serve::RankedAnswers> got =
      recovered_engine.value()->Submit(probe.query);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().epoch, want.value().epoch);
  ASSERT_EQ(got.value().answers.size(), want.value().answers.size());
  for (size_t i = 0; i < got.value().answers.size(); ++i) {
    EXPECT_EQ(got.value().answers[i].node, want.value().answers[i].node);
    EXPECT_EQ(got.value().answers[i].score,
              want.value().answers[i].score);  // bitwise
  }
}

TEST_F(DurabilityTest, RecoverSkipsCorruptedSnapshotLoudlyAndFallsBack) {
  graph::WeightedDigraph g = MakeFixture();
  DurabilityOptions options;
  options.dir = dir_;
  StatusOr<DurabilityManager> opened = DurabilityManager::Open(options);
  ASSERT_TRUE(opened.ok());
  DurabilityManager manager = std::move(opened.value());

  core::OnlineKgOptimizer online(g, SmallOptions(100));
  online.SetVoteLog(manager.wal());
  ASSERT_TRUE(online.AddVote(MakeVote(0)).ok());
  ASSERT_TRUE(online.Flush().ok());
  ASSERT_TRUE(manager.Checkpoint(online, 3, 2).ok());  // epoch 1
  ASSERT_TRUE(online.AddVote(MakeVote(1)).ok());
  ASSERT_TRUE(online.Flush().ok());
  ASSERT_TRUE(manager.Checkpoint(online, 3, 2).ok());  // epoch 2

  // Corrupt the newest snapshot; recovery must fall back to epoch 1 and
  // report the skip.
  const std::string newest = dir_ + "/" + SnapshotFileName(2);
  StatusOr<std::string> bytes = fs::ReadFileToString(newest);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = bytes.value();
  corrupted[140] ^= 0xFF;
  ASSERT_TRUE(fs::WriteFileAtomic(newest, corrupted).ok());

  StatusOr<RecoveredState> state = Recover(dir_, {});
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state.value().epoch, 1u);
  EXPECT_EQ(state.value().snapshots_skipped, 1u);

  // With every snapshot corrupted the failure is loud, not silent.
  const std::string older = dir_ + "/" + SnapshotFileName(1);
  StatusOr<std::string> older_bytes = fs::ReadFileToString(older);
  ASSERT_TRUE(older_bytes.ok());
  std::string also_corrupted = older_bytes.value();
  also_corrupted[140] ^= 0xFF;
  ASSERT_TRUE(fs::WriteFileAtomic(older, also_corrupted).ok());
  StatusOr<RecoveredState> none = Recover(dir_, {});
  ASSERT_FALSE(none.ok());
  EXPECT_TRUE(none.status().IsNotFound());
  EXPECT_NE(none.status().message().find("corrupt"), std::string::npos);
}

TEST_F(DurabilityTest, FailedCheckpointLeavesPreviousGenerationRecoverable) {
  graph::WeightedDigraph g = MakeFixture();
  DurabilityOptions options;
  options.dir = dir_;
  StatusOr<DurabilityManager> opened = DurabilityManager::Open(options);
  ASSERT_TRUE(opened.ok());
  DurabilityManager manager = std::move(opened.value());

  core::OnlineKgOptimizer online(g, SmallOptions(100));
  online.SetVoteLog(manager.wal());
  ASSERT_TRUE(online.AddVote(MakeVote(0)).ok());
  ASSERT_TRUE(online.Flush().ok());
  ASSERT_TRUE(manager.Checkpoint(online, 3, 2).ok());
  ASSERT_TRUE(online.AddVote(MakeVote(5)).ok());

  {
    // Fail the snapshot write of a second checkpoint attempt. skip_hits=1
    // lets the segment-header write of the WAL roll inside Checkpoint
    // succeed first, so the fault lands on the snapshot temp file.
    ScopedFault fault(FaultSite::kFsWriteFailure,
                      {.probability = 1.0, .skip_hits = 1});
    Status failed = manager.Checkpoint(online, 3, 2);
    ASSERT_FALSE(failed.ok()) << "fault did not land on the snapshot";
  }

  StatusOr<RecoveredState> state = Recover(dir_, {});
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state.value().epoch, 1u);
  // The acknowledged vote survives via the WAL even though the second
  // checkpoint never completed.
  bool found = false;
  for (const votes::Vote& vote : state.value().pending) {
    if (vote.id == 5) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(DurabilityTest, CheckpointRetentionThinsOldSnapshots) {
  graph::WeightedDigraph g = MakeFixture();
  DurabilityOptions options;
  options.dir = dir_;
  options.snapshots_to_keep = 2;
  StatusOr<DurabilityManager> opened = DurabilityManager::Open(options);
  ASSERT_TRUE(opened.ok());
  DurabilityManager manager = std::move(opened.value());

  core::OnlineKgOptimizer online(g, SmallOptions(100));
  online.SetVoteLog(manager.wal());
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(online.AddVote(MakeVote(i)).ok());
    ASSERT_TRUE(online.Flush().ok());
    ASSERT_TRUE(manager.Checkpoint(online, 3, 2).ok());
  }
  StatusOr<std::vector<std::string>> entries = fs::ListDir(dir_);
  ASSERT_TRUE(entries.ok());
  size_t snapshots = 0;
  for (const std::string& name : entries.value()) {
    if (ParseSnapshotFileName(name).has_value()) ++snapshots;
  }
  EXPECT_EQ(snapshots, 2u);
  StatusOr<RecoveredState> state = Recover(dir_, {});
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value().epoch, 4u);
}

TEST_F(DurabilityTest, ReplayedDeadLetterLeavesPendingList) {
  // A vote checkpointed as pending and then dead-lettered must come back
  // as a dead letter, not as a retryable pending vote.
  DurabilityOptions options;
  options.dir = dir_;
  StatusOr<DurabilityManager> opened = DurabilityManager::Open(options);
  ASSERT_TRUE(opened.ok());
  DurabilityManager manager = std::move(opened.value());

  graph::WeightedDigraph g = MakeFixture();
  const graph::CsrSnapshot csr(g);
  SnapshotMeta meta;
  meta.epoch = 1;
  meta.wal_seq = manager.wal()->live_seq();
  meta.pending = {MakeVote(7), MakeVote(8)};
  ASSERT_TRUE(WriteSnapshot(dir_ + "/" + SnapshotFileName(1), csr.View(),
                            meta)
                  .ok());
  ASSERT_TRUE(manager.wal()->AppendDeadLetter(MakeVote(7)).ok());

  StatusOr<RecoveredState> state = Recover(dir_, {});
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  ASSERT_EQ(state.value().pending.size(), 1u);
  EXPECT_EQ(state.value().pending[0].id, 8u);
  ASSERT_EQ(state.value().dead_letters.size(), 1u);
  EXPECT_EQ(state.value().dead_letters[0].id, 7u);
}

}  // namespace
}  // namespace kgov::durability
