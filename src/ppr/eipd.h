// Extended inverse P-distance over the live mutable graph.
//
// DEPRECATED: ppr::EipdEngine (ppr/eipd_engine.h) is the one documented
// EIPD evaluator; every in-repo read path (serving, scoring, metrics, the
// judgment filter, vote generation) runs on the engine over a frozen
// graph::CsrSnapshot view. EipdEvaluator remains for one release as a
// compatibility shim for callers that genuinely need *live* semantics —
// it reads the WeightedDigraph's current weights on every call with O(1)
// construction — and delegates to the single shared propagation kernel in
// ppr/eipd_engine.h, so there is still exactly one EIPD implementation in
// the codebase. New code should snapshot and use EipdEngine.

#ifndef KGOV_PPR_EIPD_H_
#define KGOV_PPR_EIPD_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "ppr/eipd_engine.h"
#include "ppr/query_seed.h"
#include "ppr/ranking.h"

namespace kgov::ppr {

/// Deprecated: use ppr::EipdEngine over a graph::CsrSnapshot view (see
/// the file comment). Numeric extended-inverse-P-distance evaluation over
/// the live graph. Thread-compatible: concurrent calls on one instance are
/// safe because evaluation state lives in per-thread workspaces.
class EipdEvaluator {
 public:
  /// `graph` is borrowed and must outlive the evaluator. Construction is
  /// O(1); weight changes to `graph` are visible to subsequent calls.
  explicit EipdEvaluator(const graph::WeightedDigraph* graph,
                         EipdOptions options = {});

  const EipdOptions& options() const { return options_; }

  /// Phi(seed, answer).
  double Similarity(const QuerySeed& seed, graph::NodeId answer) const;

  /// Phi(seed, a) for every a in `answers`, in one propagation pass.
  std::vector<double> SimilarityMany(
      const QuerySeed& seed, const std::vector<graph::NodeId>& answers) const;

  /// Like SimilarityMany, but edge weights in `overrides` replace the
  /// graph's weights (used by the judgment filter's extreme condition).
  std::vector<double> SimilarityManyWithOverrides(
      const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
      const std::unordered_map<graph::EdgeId, double>& overrides) const;

  /// Top-k candidates sorted by descending score (ties by ascending node
  /// id, making rankings deterministic).
  std::vector<ScoredAnswer> RankAnswers(
      const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
      size_t k) const;

 private:
  /// Runs the shared kernel on the live graph; overrides may be null.
  /// Returns the thread-local workspace's phi vector.
  const std::vector<double>& Propagate(
      const QuerySeed& seed,
      const std::unordered_map<graph::EdgeId, double>* overrides) const;

  const graph::WeightedDigraph* graph_;
  EipdOptions options_;
};

}  // namespace kgov::ppr

#endif  // KGOV_PPR_EIPD_H_
