// The central lock-rank registry (docs/static_analysis.md, "Lock
// ranking").
//
// Every kgov::Mutex / kgov::SharedMutex in src/ declares a static rank
// from this table at construction:
//
//   mutable Mutex mu_{KGOV_LOCK_RANK(kStreamQueue)};
//
// The rank encodes the mutex's position in the process-wide acquisition
// order: a thread may only acquire a mutex whose rank is STRICTLY LOWER
// than every ranked mutex it already holds (outermost locks have the
// highest ranks, leaf locks the lowest; acquiring equal ranks while one
// is held is also a violation, since two same-class instances taken
// together are an ordering hazard). In lock-debug builds
// (KGOV_LOCK_DEBUG, on by default) the runtime detector in
// common/lock_rank.h enforces this on every acquisition and additionally
// maintains an acquired-after graph that catches cycles among unranked
// locks; in plain builds the rank argument compiles away entirely.
//
// How to pick a rank for a new mutex:
//  1. List every lock that can be HELD when yours is acquired: your rank
//     must be lower than all of them.
//  2. List every lock your critical sections acquire (directly or through
//     any callee): your rank must be higher than all of those.
//  3. Choose a value in the gap, leaving room on both sides (the table is
//     spaced by 50 for exactly this reason), add the enumerator here with
//     a comment naming the mutex it ranks, and keep the enumerators
//     sorted by value.
// If no gap exists, the new nesting is a cycle waiting to happen -
// restructure the critical sections instead of forcing a rank.
//
// The table (highest = outermost first):
//
//   kStreamQueue        > everything a micro-batch flush touches: the
//                         VoteIngestQueue mutex is held across the whole
//                         DrainAllAndRun checkpoint interleave.
//   kQueryEpochPin      > the serve-side refresh path: the QueryEngine
//                         epoch pin is held while advancing the result
//                         cache and re-pinning from the optimizer.
//   kServeCacheShard    > kServeCacheEpoch: ShardedResultCache::Put
//                         validates the epoch history inside a shard
//                         critical section.
//   kEpochPublish       < both write paths above: the optimizer's epoch
//                         swap lock is taken under the queue mutex (flush
//                         publication) and under the epoch pin (re-pin).
//   kThreadPool et al.  : infrastructure locks acquired from inside the
//                         paths above.
//   kTelemetry*/kLogging: leaf ranks - metric reservoirs and the log sink
//                         can be reached from almost anywhere (contract
//                         violations log wherever they fire), so nothing
//                         may nest under them.

#ifndef KGOV_COMMON_LOCK_RANKS_H_
#define KGOV_COMMON_LOCK_RANKS_H_

#include <cstdint>

namespace kgov::lockrank {

/// Static lock ranks, highest (outermost) to lowest (leaf). Values are
/// spaced so a new rank can slot between two existing ones without
/// renumbering the table.
enum class Rank : uint16_t {
  /// No declared rank: exempt from the rank-order check but still a node
  /// in the acquired-after cycle graph. Declaring one requires a
  /// `// kgov-lint: allow(lock-rank)` suppression.
  kUnranked = 0,

  /// Leaf: the logging sink's emit mutex (common/logging.cc). Contract
  /// and lock-order violations log from arbitrary lock contexts, so no
  /// lock may ever nest under it.
  kLogging = 100,
  /// telemetry::Histogram::reservoir_mu_ - percentile reservoirs are
  /// recorded from spans inside solver, serve and stream critical
  /// sections.
  kTelemetryReservoir = 150,
  /// telemetry::MetricRegistry::mu_ - first-use metric registration can
  /// happen under higher locks; Snapshot() nests reservoir locks inside.
  kTelemetryRegistry = 200,
  /// FaultInjector::mu_ - injection sites sit inside durability, solver
  /// and pool critical sections.
  kFaultInjection = 250,
  /// The ParallelFor per-call failure-state mutex (common/thread_pool.cc)
  /// - reachable inline from callers holding write-path locks.
  kParallelForState = 300,
  /// The per-batch solve-report mutex in core::KgOptimizer (taken inside
  /// ParallelFor worker callbacks; only telemetry atomics run under it).
  kSolverBatchReport = 320,
  /// ThreadPool::mu_ - Submit is called from flush paths that hold the
  /// stream queue lock.
  kThreadPool = 350,
  /// stream::SerializedVoteLog::mu_ - producer WAL appends nest under the
  /// ingest-queue mutex.
  kVoteLogSerial = 400,
  /// core::OnlineKgOptimizer::serving_mu_ - the epoch-swap publication
  /// lock, taken under the stream queue (flush) and the query epoch pin
  /// (re-pin probe).
  kEpochPublish = 450,
  /// serve::AdmissionController::slo_mu_ - outcome recording runs inside
  /// the serve path.
  kAdmissionSlo = 500,
  /// serve::SingleFlightGroup per-flight mutex - published under no other
  /// serve lock, but below the flight table for Resolve's scopes.
  kSingleFlightFlight = 550,
  /// serve::SingleFlightGroup::mu_ - the flight table.
  kSingleFlightTable = 600,
  /// serve::ShardedResultCache::epoch_mu_ - nested INSIDE a shard lock by
  /// Put's stale-insert guard.
  kServeCacheEpoch = 650,
  /// serve::ShardedResultCache per-shard mutex.
  kServeCacheShard = 700,
  /// serve::QueryEngine::epoch_mu_ - held (write mode) across the cache
  /// advance + re-pin sequence in MaybeRefreshEpoch.
  kQueryEpochPin = 800,
  /// stream::VoteIngestQueue::mu_ - the outermost lock in the process:
  /// held across WAL appends (acks) and the whole DrainAllAndRun
  /// checkpoint interleave.
  kStreamQueue = 900,
};

/// Human-readable rank-class name for violation messages and DOT dumps.
const char* RankName(Rank rank);

}  // namespace kgov::lockrank

/// Declares a mutex's static rank at its construction site:
///   Mutex mu_{KGOV_LOCK_RANK(kServeCacheShard)};
/// Expands to the enumerator; in non-lock-debug builds the Mutex
/// constructor discards it, so the registry costs nothing in release.
/// tools/lint/kgov_lint.py (lock-rank-coverage) flags declarations
/// without one.
#define KGOV_LOCK_RANK(name) ::kgov::lockrank::Rank::name

#endif  // KGOV_COMMON_LOCK_RANKS_H_
