// Simulated users and the deployed-vs-truth environment (substitute for
// the paper's volunteer study; see DESIGN.md SS1).
//
// The simulation separates the *world* (a clean knowledge graph built from
// the corpus) from the *deployed system* (the same graph with corrupted
// entity-entity weights, standing in for source-data errors and staleness,
// the paper's SI motivation). Simulated users see the deployed system's
// top-k answers and vote for the one the truth graph ranks best - exactly
// the information a human vote carries - with a configurable error rate for
// careless votes.

#ifndef KGOV_QA_USER_SIM_H_
#define KGOV_QA_USER_SIM_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "qa/corpus.h"
#include "qa/kg_builder.h"
#include "qa/qa_system.h"
#include "votes/vote.h"

namespace kgov::qa {

struct UserSimParams {
  /// Std-dev of the multiplicative log-normal noise applied to deployed
  /// entity-entity weights.
  double weight_noise = 0.6;
  /// Fraction of entity-entity edges whose weight is crushed to near zero
  /// (simulates missing/stale relations).
  double edge_dropout = 0.05;
  /// Probability a vote picks a uniformly random listed answer instead of
  /// the truth-best one (erroneous votes, SV).
  double vote_error_rate = 0.05;
  /// Number of training questions used to collect votes.
  size_t num_votes = 100;
  /// Number of expert-labeled test questions.
  size_t num_test_questions = 100;
  QaOptions qa;
};

/// The complete simulated study.
struct SimulatedEnvironment {
  Corpus corpus;
  /// The clean world graph.
  KnowledgeGraph truth;
  /// The corrupted graph the Q&A system actually serves from.
  KnowledgeGraph deployed;
  std::vector<Question> train_questions;
  std::vector<Question> test_questions;
  /// Votes collected against the deployed graph.
  std::vector<votes::Vote> votes;
};

/// Corrupts entity-entity weights of `truth` in place on a copy (answer
/// links are left intact) and re-normalizes.
KnowledgeGraph CorruptKnowledgeGraph(const KnowledgeGraph& truth,
                                     const UserSimParams& params, Rng& rng);

/// Builds corpus -> truth KG -> deployed KG -> votes -> test set.
Result<SimulatedEnvironment> BuildEnvironment(const CorpusParams& corpus_params,
                                              const UserSimParams& params,
                                              Rng& rng);

}  // namespace kgov::qa

#endif  // KGOV_QA_USER_SIM_H_
