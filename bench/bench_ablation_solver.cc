// Ablation: inner solver choice (projected Barzilai-Borwein gradient vs
// L-BFGS) for the multi-vote SGP, at several vote-set sizes. Both are
// local solvers for the same smooth box-constrained problem; this bench
// backs the default choice with measured time/quality numbers.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/scoring.h"
#include "graph/source.h"
#include "votes/vote_generator.h"

namespace kgov {
namespace {

int Run() {
  bench::Banner("Ablation: inner solver (projected BB vs L-BFGS)",
                "solver substitution for fmincon (DESIGN.md SS1)");

  graph::GeneratorSpec spec;
  spec.kind = graph::GeneratorKind::kScaleFree;
  spec.num_nodes = 4000;
  spec.num_edges = 16000;
  Result<graph::WeightedDigraph> base =
      graph::LoadGraph(graph::GraphSource::Generator(spec, 882));
  if (!base.ok()) return 1;
  Rng rng(885);  // workload stream, separate from the generator's

  votes::SyntheticVoteParams params;
  params.num_queries = 60;
  params.num_answers = 500;
  params.subgraph_nodes = 2000;
  params.top_k = 12;
  Result<votes::SyntheticWorkload> workload =
      votes::GenerateSyntheticWorkload(*base, params, rng);
  if (!workload.ok()) return 1;

  bench::TablePrinter table(
      {"#votes", "solver", "time", "omega_avg", "satisfied"},
      {7, 14, 9, 10, 10});
  table.PrintHeader();

  for (size_t n : {15u, 30u, 60u}) {
    std::vector<votes::Vote> votes(workload->votes.begin(),
                                   workload->votes.begin() + n);
    for (auto kind : {math::InnerSolverKind::kProjectedBb,
                      math::InnerSolverKind::kLbfgs}) {
      core::OptimizerOptions options;
      options.encoder.symbolic.eipd.max_length = 4;
      options.encoder.symbolic.min_path_mass = 1e-8;
      options.encoder.is_variable = workload->EntityEdgePredicate();
      options.sgp.inner_solver = kind;

      core::KgOptimizer optimizer(&workload->graph, options);
      Timer timer;
      Result<core::OptimizeReport> report = optimizer.MultiVoteSolve(votes);
      double seconds = timer.ElapsedSeconds();
      if (!report.ok()) continue;
      core::OmegaResult omega = core::EvaluateOmega(
          report->optimized, votes, options.encoder.symbolic.eipd);
      table.PrintRow(
          {std::to_string(n),
           kind == math::InnerSolverKind::kProjectedBb ? "projected-BB"
                                                       : "L-BFGS",
           FormatDuration(seconds), bench::Num(omega.average),
           std::to_string(report->constraints_satisfied) + "/" +
               std::to_string(report->constraints_total)});
    }
  }

  std::printf(
      "\nExpected: comparable Omega_avg (both reach local optima of the "
      "same\nobjective); relative speed depends on problem conditioning.\n");
  return 0;
}

}  // namespace
}  // namespace kgov

int main() { return kgov::Run(); }
