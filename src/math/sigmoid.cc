#include "math/sigmoid.h"

#include <algorithm>

namespace kgov::math {

double SigmoidStepMaxDeviation(double steepness, double lo, double hi,
                               int samples) {
  double worst = 0.0;
  for (int i = 0; i <= samples; ++i) {
    double d = lo + (hi - lo) * static_cast<double>(i) / samples;
    if (d == 0.0) continue;  // the step is discontinuous exactly at 0
    worst = std::max(worst,
                     std::fabs(Sigmoid(d, steepness) - StepFunction(d)));
  }
  return worst;
}

}  // namespace kgov::math
