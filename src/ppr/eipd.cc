#include "ppr/eipd.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace kgov::ppr {

EipdEvaluator::EipdEvaluator(const graph::WeightedDigraph* graph,
                             EipdOptions options)
    : graph_(graph), options_(options) {
  KGOV_CHECK(graph_ != nullptr);
  KGOV_CHECK(options_.max_length >= 1);
  KGOV_CHECK(options_.restart > 0.0 && options_.restart < 1.0);
}

std::vector<double> EipdEvaluator::Propagate(
    const QuerySeed& seed,
    const std::unordered_map<graph::EdgeId, double>* overrides) const {
  const size_t n = graph_->NumNodes();
  const double c = options_.restart;
  std::vector<double> phi(n, 0.0);
  std::vector<double> mass(n, 0.0);
  std::vector<double> next(n, 0.0);
  // Frontier of nodes with nonzero mass, to avoid O(V) sweeps per level.
  std::vector<graph::NodeId> frontier;
  std::vector<graph::NodeId> next_frontier;

  auto weight_of = [&](graph::EdgeId e) {
    if (overrides != nullptr) {
      auto it = overrides->find(e);
      if (it != overrides->end()) return it->second;
    }
    return graph_->Weight(e);
  };

  // Level 1: the query's first hop.
  for (const auto& [node, weight] : seed.links) {
    KGOV_DCHECK(graph_->IsValidNode(node));
    if (weight <= 0.0) continue;
    if (mass[node] == 0.0) frontier.push_back(node);
    mass[node] += weight;
  }

  double decay = c * (1.0 - c);  // c*(1-c)^len for len = 1
  for (int len = 1; len <= options_.max_length; ++len) {
    for (graph::NodeId v : frontier) {
      phi[v] += mass[v] * decay;
    }
    if (len == options_.max_length) break;

    next_frontier.clear();
    for (graph::NodeId u : frontier) {
      double m = mass[u];
      for (const graph::OutEdge& out : graph_->OutEdges(u)) {
        double w = weight_of(out.edge);
        if (w <= 0.0) continue;
        if (next[out.to] == 0.0) next_frontier.push_back(out.to);
        next[out.to] += m * w;
      }
      mass[u] = 0.0;
    }
    // `next` entries touched twice keep their accumulated value;
    // next_frontier may contain duplicates only if next[v] was exactly 0
    // after a prior add, which cannot happen with positive weights.
    mass.swap(next);
    frontier.swap(next_frontier);
    decay *= 1.0 - c;
  }
  return phi;
}

double EipdEvaluator::Similarity(const QuerySeed& seed,
                                 graph::NodeId answer) const {
  KGOV_CHECK(graph_->IsValidNode(answer));
  std::vector<double> phi = Propagate(seed, nullptr);
  return phi[answer];
}

std::vector<double> EipdEvaluator::SimilarityMany(
    const QuerySeed& seed, const std::vector<graph::NodeId>& answers) const {
  std::vector<double> phi = Propagate(seed, nullptr);
  std::vector<double> out(answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    KGOV_CHECK(graph_->IsValidNode(answers[i]));
    out[i] = phi[answers[i]];
  }
  return out;
}

std::vector<double> EipdEvaluator::SimilarityManyWithOverrides(
    const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
    const std::unordered_map<graph::EdgeId, double>& overrides) const {
  std::vector<double> phi = Propagate(seed, &overrides);
  std::vector<double> out(answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    KGOV_CHECK(graph_->IsValidNode(answers[i]));
    out[i] = phi[answers[i]];
  }
  return out;
}

std::vector<ScoredAnswer> EipdEvaluator::RankAnswers(
    const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
    size_t k) const {
  std::vector<double> scores = SimilarityMany(seed, candidates);
  std::vector<ScoredAnswer> ranked(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    ranked[i] = ScoredAnswer{candidates[i], scores[i]};
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ScoredAnswer& a, const ScoredAnswer& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.node < b.node;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace kgov::ppr
