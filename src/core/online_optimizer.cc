#include "core/online_optimizer.h"

#include <utility>

#include "common/timer.h"

namespace kgov::core {

OnlineKgOptimizer::OnlineKgOptimizer(const graph::WeightedDigraph& initial,
                                     OnlineOptimizerOptions options)
    : options_(std::move(options)),
      graph_(initial),
      snapshot_(std::make_shared<graph::CsrSnapshot>(graph_)) {}

Result<FlushReport> OnlineKgOptimizer::AddVote(votes::Vote vote) {
  buffer_.push_back(std::move(vote));
  if (buffer_.size() >= options_.batch_size) {
    return Flush();
  }
  return FlushReport{};
}

Result<FlushReport> OnlineKgOptimizer::Flush() {
  FlushReport report;
  if (buffer_.empty()) return report;

  Timer timer;
  KgOptimizer optimizer(&graph_, options_.optimizer);
  Result<OptimizeReport> result =
      options_.strategy == FlushStrategy::kMultiVote
          ? optimizer.MultiVoteSolve(buffer_)
          : optimizer.SplitMergeSolve(buffer_);
  if (!result.ok()) {
    // An unusable batch (e.g. every vote filtered) is dropped rather than
    // wedging the pipeline; the error is surfaced to the caller.
    buffer_.clear();
    return result.status();
  }

  graph_ = std::move(result->optimized);
  snapshot_ = std::make_shared<graph::CsrSnapshot>(graph_);
  report.votes_flushed = buffer_.size();
  report.constraints_total = result->constraints_total;
  report.constraints_satisfied = result->constraints_satisfied;
  report.solve_seconds = timer.ElapsedSeconds();
  total_applied_ += buffer_.size();
  buffer_.clear();
  return report;
}

}  // namespace kgov::core
