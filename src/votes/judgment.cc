#include "votes/judgment.h"

#include <unordered_map>

#include "common/logging.h"
#include <string>

namespace kgov::votes {


Status JudgmentOptions::Validate() const {
  KGOV_RETURN_IF_ERROR(symbolic.Validate());
  if (!(shared_edge_weight > 0.0 && shared_edge_weight < 1.0)) {
    return Status::InvalidArgument(
        "JudgmentOptions.shared_edge_weight must be in (0, 1), got " +
        std::to_string(shared_edge_weight));
  }
  return Status::OK();
}

namespace {

std::shared_ptr<const graph::CsrSnapshot> SnapshotOf(
    const graph::WeightedDigraph* graph) {
  KGOV_CHECK(graph != nullptr);
  return std::make_shared<graph::CsrSnapshot>(*graph);
}

}  // namespace

JudgmentFilter::JudgmentFilter(const graph::WeightedDigraph* graph,
                               JudgmentOptions options)
    : graph_(graph),
      options_(std::move(options)),
      snapshot_(SnapshotOf(graph)),
      engine_(snapshot_->View(), options_.symbolic.eipd) {
  Status valid = options_.Validate();
  KGOV_CHECK(valid.ok()) << valid.ToString();
}

bool JudgmentFilter::IsSatisfiable(const Vote& vote) const {
  if (!vote.IsWellFormed()) return false;
  if (vote.IsPositive()) return true;

  int rank = vote.BestAnswerRank();  // 1-based; >= 2 for negative votes
  KGOV_DCHECK(rank >= 2);
  graph::NodeId best = vote.best_answer;
  graph::NodeId rival = vote.answer_list[rank - 2];  // ranked one above

  // Edge sets of contributing walks to each of the two answers.
  ppr::SymbolicEipd symbolic(graph_, options_.is_variable, options_.symbolic);
  ppr::EdgeVariableMap scratch;
  std::vector<ppr::SymbolicAnswer> answers =
      symbolic.Collect(vote.query, {best, rival}, &scratch);
  const auto& best_edges = answers[0].path_edges;
  const auto& rival_edges = answers[1].path_edges;

  // Extreme condition: favour a* maximally, the rival minimally. Only
  // optimizable edges are reassigned; fixed edges keep their weights.
  auto changeable = [this](graph::EdgeId e) {
    return !options_.is_variable || options_.is_variable(*graph_, e);
  };
  std::unordered_map<graph::EdgeId, double> overrides;
  overrides.reserve(best_edges.size() + rival_edges.size());
  for (graph::EdgeId e : best_edges) {
    if (!changeable(e)) continue;
    overrides[e] = rival_edges.count(e) > 0 ? options_.shared_edge_weight
                                            : 1.0;
  }
  for (graph::EdgeId e : rival_edges) {
    if (!changeable(e)) continue;
    if (best_edges.count(e) == 0) overrides[e] = 0.0;
  }

  StatusOr<std::vector<double>> scores = engine_.ScoresWithOverrides(
      vote.query, {best, rival}, overrides);
  // A query the graph cannot even link is certainly not satisfiable.
  if (!scores.ok()) return false;
  return scores.value()[0] > scores.value()[1];
}

std::vector<Vote> JudgmentFilter::FilterVotes(
    const std::vector<Vote>& votes) const {
  std::vector<Vote> kept;
  kept.reserve(votes.size());
  for (const Vote& vote : votes) {
    if (IsSatisfiable(vote)) {
      kept.push_back(vote);
    } else {
      KGOV_LOG(DEBUG) << "judgment filter discarded vote " << vote.id;
    }
  }
  return kept;
}

}  // namespace kgov::votes
