file(REMOVE_RECURSE
  "libkgov_math.a"
)
