# Empty dependencies file for test_vote_weights.
# This may be replaced when dependencies are built.
