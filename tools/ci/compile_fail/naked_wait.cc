// Lint canary for the condvar-naked-wait rule. This file is never
// compiled: tools/ci/analyze.sh feeds it to tools/lint/kgov_lint.py
// --file and fails the build if the planted violations below stop being
// reported (a dead rule is worse than no rule).
//
// A condition-variable wait without a predicate returns on spurious
// wakeups and loses races with notify; the waiter's condition must be
// re-checked by the wait itself.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace kgov {

void NakedStdWait(std::condition_variable& cv,
                  std::unique_lock<std::mutex>& lk) {
  cv.wait(lk);  // violation: no predicate
}

void NakedTimedWait(std::condition_variable& cv,
                    std::unique_lock<std::mutex>& lk) {
  // violation: lock + timeout but no predicate, across multiple lines
  cv.wait_for(
      lk, std::chrono::milliseconds(10));
}

void NakedWrapperWait(MutexLock& lock, CondVar& cv) {
  lock.Wait(cv);  // violation: wrapper form without predicate
}

void PredicatedWaitsStayClean(std::condition_variable& cv,
                              std::unique_lock<std::mutex>& lk,
                              MutexLock& lock, CondVar& kcv, bool& ready) {
  cv.wait(lk, [&] { return ready; });
  cv.wait_for(lk, std::chrono::milliseconds(10), [&] { return ready; });
  lock.Wait(kcv, [&] { return ready; });
  lock.WaitFor(kcv, std::chrono::milliseconds(10), [&] { return ready; });
}

}  // namespace kgov
