#include "ppr/eipd_engine.h"

#include <cmath>
#include <string>

#include "common/timer.h"
#include "telemetry/metrics.h"

namespace kgov::ppr {

const char* EipdKernelName(EipdKernel kernel) {
  switch (kernel) {
    case EipdKernel::kAuto:
      return "auto";
    case EipdKernel::kDense:
      return "dense";
    case EipdKernel::kSparse:
      return "sparse";
  }
  return "unknown";
}

Status EipdOptions::Validate() const {
  if (max_length < 1) {
    return Status::InvalidArgument(
        "EipdOptions.max_length must be >= 1, got " +
        std::to_string(max_length));
  }
  if (!(restart > 0.0 && restart < 1.0)) {
    return Status::InvalidArgument(
        "EipdOptions.restart must be in (0, 1), got " +
        std::to_string(restart));
  }
  if (!(std::isfinite(sparse_threshold) && sparse_threshold >= 0.0)) {
    return Status::InvalidArgument(
        "EipdOptions.sparse_threshold must be finite and >= 0, got " +
        std::to_string(sparse_threshold));
  }
  return Status::OK();
}

PropagationWorkspace& ThreadLocalWorkspace() {
  static thread_local PropagationWorkspace workspace;
  return workspace;
}

MultiPropagationWorkspace& ThreadLocalMultiWorkspace() {
  static thread_local MultiPropagationWorkspace workspace;
  return workspace;
}

EipdEngine::EipdEngine(graph::GraphView view, EipdOptions options)
    : view_(view), options_(options) {
  Status valid = options_.Validate();
  KGOV_CHECK(valid.ok()) << valid.ToString();
}

Status EipdEngine::ValidateSeed(const QuerySeed& seed) const {
  for (size_t i = 0; i < seed.links.size(); ++i) {
    const auto& [node, weight] = seed.links[i];
    if (!view_.IsValidNode(node)) {
      return Status::InvalidArgument(
          "seed link " + std::to_string(i) + " names node " +
          std::to_string(node) + ", outside the view's " +
          std::to_string(view_.NumNodes()) + " nodes");
    }
    if (!std::isfinite(weight) || weight < 0.0) {
      return Status::InvalidArgument(
          "seed link " + std::to_string(i) + " (node " +
          std::to_string(node) + ") has non-finite or negative weight " +
          std::to_string(weight));
    }
  }
  return Status::OK();
}

const std::vector<double>& EipdEngine::PropagateInto(
    const QuerySeed& seed,
    const std::unordered_map<graph::EdgeId, double>* overrides,
    PropagationWorkspace* ws) const {
  // Serving-latency telemetry: one Timer (two steady-clock reads) and one
  // histogram Observe per propagation -- a fraction of a percent of a
  // single propagation pass on the bench graph.
  static telemetry::Histogram* const latency =
      telemetry::MetricRegistry::Global().GetHistogram(
          "serving.eipd.propagate.seconds");
  static telemetry::Counter* const queries =
      telemetry::MetricRegistry::Global().GetCounter(
          "serving.eipd.queries");
  static telemetry::Counter* const dense_queries =
      telemetry::MetricRegistry::Global().GetCounter(
          "serving.eipd.kernel.dense");
  static telemetry::Counter* const sparse_queries =
      telemetry::MetricRegistry::Global().GetCounter(
          "serving.eipd.kernel.sparse");
  static telemetry::Counter* const sparse_pruned =
      telemetry::MetricRegistry::Global().GetCounter(
          "serving.eipd.sparse.pruned_nodes");
  Timer timer;
  if (overrides != nullptr) {
    // Overrides are keyed by EdgeId; without the edge-id table they would
    // be silently ignored, so fail loudly (an edgeless view has nothing to
    // override and is fine).
    KGOV_CHECK(view_.HasEdgeIds() || view_.NumEdges() == 0);
  }
  if (ws == nullptr) ws = &ThreadLocalWorkspace();
  if (KernelFor(seed) == EipdKernel::kSparse) {
    size_t pruned = internal::PropagatePhiSparse(
        internal::ViewAdjacency{view_}, seed, options_, overrides, ws);
    sparse_queries->Increment();
    if (pruned > 0) sparse_pruned->Increment(pruned);
  } else {
    internal::PropagatePhi(internal::ViewAdjacency{view_}, seed, options_,
                           overrides, ws);
    dense_queries->Increment();
  }
  queries->Increment();
  latency->Observe(timer.ElapsedSeconds());
  return ws->phi;
}

StatusOr<std::vector<double>> EipdEngine::Propagate(
    const QuerySeed& seed, PropagationWorkspace* ws) const {
  KGOV_RETURN_IF_ERROR(ValidateSeed(seed));
  return PropagateInto(seed, nullptr, ws);
}

StatusOr<std::vector<double>> EipdEngine::PropagateWithOverrides(
    const QuerySeed& seed,
    const std::unordered_map<graph::EdgeId, double>& overrides,
    PropagationWorkspace* ws) const {
  KGOV_RETURN_IF_ERROR(ValidateSeed(seed));
  if (!view_.HasEdgeIds() && view_.NumEdges() > 0) {
    return Status::FailedPrecondition(
        "weight overrides require a view with an edge-id table");
  }
  return PropagateInto(seed, &overrides, ws);
}

StatusOr<std::vector<double>> EipdEngine::Scores(
    const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
    PropagationWorkspace* ws) const {
  KGOV_RETURN_IF_ERROR(ValidateSeed(seed));
  const std::vector<double>& phi = PropagateInto(seed, nullptr, ws);
  std::vector<double> out(answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    if (!view_.IsValidNode(answers[i])) {
      return Status::InvalidArgument(
          "answers[" + std::to_string(i) + "] = " +
          std::to_string(answers[i]) + " is outside the view's " +
          std::to_string(view_.NumNodes()) + " nodes");
    }
    out[i] = phi[answers[i]];
  }
  return out;
}

StatusOr<std::vector<double>> EipdEngine::ScoresWithOverrides(
    const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
    const std::unordered_map<graph::EdgeId, double>& overrides,
    PropagationWorkspace* ws) const {
  KGOV_RETURN_IF_ERROR(ValidateSeed(seed));
  if (!view_.HasEdgeIds() && view_.NumEdges() > 0) {
    return Status::FailedPrecondition(
        "weight overrides require a view with an edge-id table");
  }
  const std::vector<double>& phi = PropagateInto(seed, &overrides, ws);
  std::vector<double> out(answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    if (!view_.IsValidNode(answers[i])) {
      return Status::InvalidArgument(
          "answers[" + std::to_string(i) + "] = " +
          std::to_string(answers[i]) + " is outside the view's " +
          std::to_string(view_.NumNodes()) + " nodes");
    }
    out[i] = phi[answers[i]];
  }
  return out;
}

StatusOr<std::vector<ScoredAnswer>> EipdEngine::Rank(
    const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
    size_t k, PropagationWorkspace* ws) const {
  KGOV_RETURN_IF_ERROR(ValidateSeed(seed));
  return TopKByScore(PropagateInto(seed, nullptr, ws), candidates, k);
}

StatusOr<std::vector<ScoredAnswer>> EipdEngine::RankWithOverrides(
    const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
    size_t k, const std::unordered_map<graph::EdgeId, double>& overrides,
    PropagationWorkspace* ws) const {
  KGOV_RETURN_IF_ERROR(ValidateSeed(seed));
  if (!view_.HasEdgeIds() && view_.NumEdges() > 0) {
    return Status::FailedPrecondition(
        "weight overrides require a view with an edge-id table");
  }
  return TopKByScore(PropagateInto(seed, &overrides, ws), candidates, k);
}

StatusOr<std::vector<std::vector<ScoredAnswer>>> EipdEngine::RankMulti(
    const std::vector<QuerySeed>& seeds,
    const std::vector<graph::NodeId>& candidates, size_t k,
    MultiPropagationWorkspace* ws) const {
  std::vector<std::vector<ScoredAnswer>> results;
  if (seeds.empty()) return results;
  std::vector<const QuerySeed*> roots;
  roots.reserve(seeds.size());
  for (const QuerySeed& seed : seeds) {
    KGOV_RETURN_IF_ERROR(ValidateSeed(seed));
    roots.push_back(&seed);
  }

  // Telemetry mirrors the single-root path: each lane counts as one
  // propagation (a lane does the same arithmetic a solo query would), and
  // the pass itself is counted so dashboards can see the batching ratio.
  static telemetry::Histogram* const latency =
      telemetry::MetricRegistry::Global().GetHistogram(
          "serving.eipd.propagate.seconds");
  static telemetry::Counter* const queries =
      telemetry::MetricRegistry::Global().GetCounter("serving.eipd.queries");
  static telemetry::Counter* const multi_passes =
      telemetry::MetricRegistry::Global().GetCounter(
          "serving.eipd.multi_passes");
  static telemetry::Counter* const multi_roots =
      telemetry::MetricRegistry::Global().GetCounter(
          "serving.eipd.multi_roots");
  Timer timer;
  if (ws == nullptr) ws = &ThreadLocalMultiWorkspace();
  internal::PropagatePhiMulti(internal::ViewAdjacency{view_}, roots,
                              options_, ws);
  queries->Increment(roots.size());
  multi_passes->Increment();
  multi_roots->Increment(roots.size());
  latency->Observe(timer.ElapsedSeconds());

  results.reserve(roots.size());
  for (size_t b = 0; b < roots.size(); ++b) {
    KGOV_ASSIGN_OR_RETURN(
        std::vector<ScoredAnswer> ranked,
        TopKByScore(ws->lanes[b].phi, candidates, k));
    results.push_back(std::move(ranked));
  }
  return results;
}

}  // namespace kgov::ppr
