#include "core/resilience.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/fault_injection.h"
#include "common/timer.h"
#include "graph/graph.h"
#include "math/sgp_problem.h"

namespace kgov::core {
namespace {

using math::Monomial;
using math::SgpFormulation;
using math::SgpProblem;
using math::Signomial;

// Same toy program as the solver tests: x0 (0.3), x1 (0.7) in [0.01, 1],
// one constraint wanting x0 >= x1.
SgpProblem MakeSwapProblem() {
  SgpProblem problem;
  problem.AddVariable(0.3, 0.01, 1.0);
  problem.AddVariable(0.7, 0.01, 1.0);
  Signomial g;
  g.AddTerm(Monomial(1.0, {{1, 1.0}}));
  g.AddTerm(Monomial(-1.0, {{0, 1.0}}));
  problem.AddConstraint(g, "x1<=x0");
  return problem;
}

TEST(ResilientSolverTest, FirstAttemptSuccessDoesNotRetry) {
  ResilientSgpSolver solver(math::SgpSolverOptions{}, RetryOptions{});
  ResilientSolveOutcome outcome = solver.Solve(MakeSwapProblem());
  EXPECT_TRUE(outcome.solution.status.ok());
  EXPECT_FALSE(outcome.exhausted);
  ASSERT_EQ(outcome.attempts.size(), 1u);
  EXPECT_TRUE(outcome.attempts[0].status.ok());
}

TEST(ResilientSolverTest, FallbackChainWalksFormulations) {
  // The first two solve attempts are forced to fail; the third succeeds on
  // the real problem, two formulations down the fallback chain.
  ScopedFault fault(FaultSite::kSolveNonConvergence,
                    {.probability = 1.0, .max_fires = 2});
  RetryOptions retry;
  retry.max_attempts = 3;
  ResilientSgpSolver solver(math::SgpSolverOptions{}, retry);
  ResilientSolveOutcome outcome = solver.Solve(MakeSwapProblem());
  EXPECT_TRUE(outcome.solution.status.ok());
  EXPECT_FALSE(outcome.exhausted);
  ASSERT_EQ(outcome.attempts.size(), 3u);
  EXPECT_EQ(outcome.attempts[0].formulation,
            SgpFormulation::kReducedSigmoid);
  EXPECT_EQ(outcome.attempts[1].formulation,
            SgpFormulation::kDeviationVariables);
  EXPECT_EQ(outcome.attempts[2].formulation,
            SgpFormulation::kHardConstraints);
  EXPECT_TRUE(outcome.attempts[0].status.IsNotConverged());
  EXPECT_TRUE(outcome.attempts[1].status.IsNotConverged());
  EXPECT_TRUE(outcome.attempts[2].status.ok());
  EXPECT_EQ(outcome.solution.satisfied_constraints, 1);
}

TEST(ResilientSolverTest, ExhaustedStillReturnsFinitePoint) {
  ScopedFault fault(FaultSite::kSolveNonConvergence, {.probability = 1.0});
  RetryOptions retry;
  retry.max_attempts = 2;
  ResilientSgpSolver solver(math::SgpSolverOptions{}, retry);
  SgpProblem problem = MakeSwapProblem();
  ResilientSolveOutcome outcome = solver.Solve(problem);
  EXPECT_TRUE(outcome.exhausted);
  EXPECT_EQ(outcome.attempts.size(), 2u);
  EXPECT_TRUE(outcome.solution.status.IsNotConverged());
  ASSERT_EQ(outcome.solution.x.size(), 2u);
  for (double v : outcome.solution.x) EXPECT_TRUE(std::isfinite(v));
}

TEST(ResilientSolverTest, StrictModeReturnsUntouchedInitialOnExhaustion) {
  ScopedFault fault(FaultSite::kSolveNonConvergence, {.probability = 1.0});
  RetryOptions retry;
  retry.max_attempts = 2;
  retry.accept_best_effort = false;
  ResilientSgpSolver solver(math::SgpSolverOptions{}, retry);
  SgpProblem problem = MakeSwapProblem();
  ResilientSolveOutcome outcome = solver.Solve(problem);
  EXPECT_TRUE(outcome.exhausted);
  EXPECT_EQ(outcome.solution.x, problem.initial());
  EXPECT_EQ(outcome.solution.satisfied_constraints, 0);
  EXPECT_FALSE(outcome.solution.status.ok());
}

TEST(ResilientSolverTest, NonRetryableErrorStopsImmediately) {
  SgpProblem problem;
  problem.AddVariable(0.5, 0.0, 1.0);
  problem.AddConstraint(Signomial(Monomial(1.0, {{9, 1.0}})), "bad");
  RetryOptions retry;
  retry.max_attempts = 5;
  ResilientSgpSolver solver(math::SgpSolverOptions{}, retry);
  ResilientSolveOutcome outcome = solver.Solve(problem);
  EXPECT_TRUE(outcome.exhausted);
  EXPECT_EQ(outcome.attempts.size(), 1u);  // structural error: no retries
  EXPECT_FALSE(outcome.solution.status.ok());
}

TEST(ResilientSolverTest, RetriesAreDeterministicUnderFixedSeed) {
  RetryOptions retry;
  retry.max_attempts = 2;
  ResilientSgpSolver solver(math::SgpSolverOptions{}, retry);

  auto run = [&solver]() {
    // Fail the first attempt so the second starts from a jittered point.
    ScopedFault fault(FaultSite::kSolveNonConvergence,
                      {.probability = 1.0, .max_fires = 1});
    return solver.Solve(MakeSwapProblem(), /*seed_salt=*/7);
  };
  ResilientSolveOutcome a = run();
  ResilientSolveOutcome b = run();
  ASSERT_EQ(a.attempts.size(), 2u);
  ASSERT_EQ(b.attempts.size(), 2u);
  EXPECT_EQ(a.solution.x, b.solution.x);  // bitwise-identical replay
  EXPECT_EQ(a.solution.status.code(), b.solution.status.code());
}

TEST(ResilientSolverTest, BackoffDelaysRetries) {
  ScopedFault fault(FaultSite::kSolveNonConvergence, {.probability = 1.0});
  RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff_seconds = 0.01;
  retry.backoff_multiplier = 1.0;
  ResilientSgpSolver solver(math::SgpSolverOptions{}, retry);
  Timer timer;
  ResilientSolveOutcome outcome = solver.Solve(MakeSwapProblem());
  EXPECT_TRUE(outcome.exhausted);
  EXPECT_GE(timer.ElapsedSeconds(), 0.02);  // two backoff sleeps
}

// ---------------------------------------------------------------------------
// ValidateGraphUpdate

graph::WeightedDigraph MakeGraph() {
  graph::WeightedDigraph g(3);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.4).ok());
  EXPECT_TRUE(g.AddEdge(1, 2, 1.0).ok());
  return g;
}

TEST(GraphValidatorTest, AcceptsWeightOnlyUpdate) {
  graph::WeightedDigraph before = MakeGraph();
  graph::WeightedDigraph after = before;
  after.SetWeight(0, 0.7);
  after.SetWeight(1, 0.3);
  EXPECT_TRUE(ValidateGraphUpdate(before, after).ok());
}

TEST(GraphValidatorTest, RejectsNonFiniteWeight) {
  graph::WeightedDigraph before = MakeGraph();
  graph::WeightedDigraph after = before;
  after.SetWeight(1, std::numeric_limits<double>::quiet_NaN());
  Status status = ValidateGraphUpdate(before, after);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("non-finite"), std::string::npos);
}

TEST(GraphValidatorTest, RejectsOutOfBoundsWeight) {
  graph::WeightedDigraph before = MakeGraph();
  graph::WeightedDigraph after = before;
  after.SetWeight(2, 1.5);
  Status status = ValidateGraphUpdate(before, after);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(GraphValidatorTest, RejectsBrokenNormalization) {
  graph::WeightedDigraph before = MakeGraph();
  graph::WeightedDigraph after = before;
  after.SetWeight(0, 0.9);  // node 0 out-weights now sum to 1.3
  GraphValidatorOptions options;
  Status status = ValidateGraphUpdate(before, after, options);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("normalization"), std::string::npos);
  options.check_substochastic = false;
  EXPECT_TRUE(ValidateGraphUpdate(before, after, options).ok());
}

TEST(GraphValidatorTest, RejectsEdgeDrift) {
  graph::WeightedDigraph before = MakeGraph();
  graph::WeightedDigraph after = before;
  ASSERT_TRUE(after.AddEdge(2, 0, 0.1).ok());
  Status status = ValidateGraphUpdate(before, after);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("drift"), std::string::npos);
}

TEST(GraphValidatorTest, RejectsNodeCountDrift) {
  graph::WeightedDigraph before = MakeGraph();
  graph::WeightedDigraph after(4);
  EXPECT_FALSE(ValidateGraphUpdate(before, after).ok());
}

}  // namespace
}  // namespace kgov::core
