#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/kg_optimizer.h"
#include "core/online_optimizer.h"
#include "graph/graph.h"

namespace kgov {
namespace {

using core::FlushReport;
using core::FlushStrategy;
using core::KgOptimizer;
using core::OnlineKgOptimizer;
using core::OnlineOptimizerOptions;
using core::OptimizeReport;
using core::OptimizerOptions;
using graph::WeightedDigraph;

// ---------------------------------------------------------------------------
// Harness semantics

TEST(FaultInjectionTest, DisarmedSiteNeverFires) {
  FaultInjector::Global().Reset();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(FaultFires(FaultSite::kSolveNonConvergence));
  }
  EXPECT_EQ(FaultInjector::Global().Fires(FaultSite::kSolveNonConvergence),
            0);
}

TEST(FaultInjectionTest, ProbabilityOneFiresEveryHit) {
  ScopedFault fault(FaultSite::kNanGradient, {.probability = 1.0});
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(FaultFires(FaultSite::kNanGradient));
  }
  EXPECT_EQ(FaultInjector::Global().Hits(FaultSite::kNanGradient), 10);
  EXPECT_EQ(FaultInjector::Global().Fires(FaultSite::kNanGradient), 10);
}

TEST(FaultInjectionTest, MaxFiresCapsTheFaultBudget) {
  ScopedFault fault(FaultSite::kTaskFailure,
                    {.probability = 1.0, .max_fires = 2});
  int fired = 0;
  for (int i = 0; i < 8; ++i) {
    if (FaultFires(FaultSite::kTaskFailure)) ++fired;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(FaultInjector::Global().Hits(FaultSite::kTaskFailure), 8);
}

TEST(FaultInjectionTest, SkipHitsTargetsLaterHits) {
  ScopedFault fault(FaultSite::kSlowSolve,
                    {.probability = 1.0, .max_fires = 1, .skip_hits = 3});
  std::vector<bool> fires;
  for (int i = 0; i < 6; ++i) {
    fires.push_back(FaultFires(FaultSite::kSlowSolve));
  }
  EXPECT_EQ(fires, (std::vector<bool>{false, false, false, true, false,
                                      false}));
}

TEST(FaultInjectionTest, ScheduleReplaysExactlyUnderSameSeed) {
  FaultInjector& injector = FaultInjector::Global();
  auto pattern = [&injector](uint64_t seed) {
    injector.Reseed(seed);
    injector.Arm(FaultSite::kSolveNonConvergence, {.probability = 0.5});
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) {
      fires.push_back(injector.ShouldFire(FaultSite::kSolveNonConvergence));
    }
    injector.Disarm(FaultSite::kSolveNonConvergence);
    return fires;
  };
  std::vector<bool> a = pattern(42);
  EXPECT_EQ(a, pattern(42));          // identical replay
  EXPECT_NE(a, pattern(0xDEADBEEF));  // seed actually matters
  // A 0.5 schedule should fire neither never nor always.
  int fired = 0;
  for (bool f : a) fired += f ? 1 : 0;
  EXPECT_GT(fired, 8);
  EXPECT_LT(fired, 56);
  injector.Reset();
}

TEST(FaultInjectionTest, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault fault(FaultSite::kNanGradient, {.probability = 1.0});
    EXPECT_TRUE(FaultFires(FaultSite::kNanGradient));
  }
  EXPECT_FALSE(FaultFires(FaultSite::kNanGradient));
}

TEST(FaultInjectionTest, StallInjectionSleepsOnce) {
  ScopedFault fault(
      FaultSite::kSlowSolve,
      {.probability = 1.0, .max_fires = 1, .sleep_seconds = 0.02});
  Timer timer;
  EXPECT_TRUE(MaybeInjectStall(FaultSite::kSlowSolve));
  EXPECT_GE(timer.ElapsedSeconds(), 0.015);
  EXPECT_FALSE(MaybeInjectStall(FaultSite::kSlowSolve));  // budget spent
}

TEST(FaultInjectionTest, SiteNamesAreStable) {
  EXPECT_EQ(FaultSiteToString(FaultSite::kNanGradient), "NanGradient");
  EXPECT_EQ(FaultSiteToString(FaultSite::kGraphCorruption),
            "GraphCorruption");
}

TEST(FaultInjectionTest, InjectedTaskFailureIsolatesOneIteration) {
  ScopedFault fault(FaultSite::kTaskFailure,
                    {.probability = 1.0, .max_fires = 1});
  std::vector<char> failed;
  Status status = ParallelFor(
      nullptr, 4, [](size_t) {}, &failed);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("injected task failure"),
            std::string::npos);
  int failures = 0;
  for (char f : failed) failures += f ? 1 : 0;
  EXPECT_EQ(failures, 1);
}

// ---------------------------------------------------------------------------
// Pipeline acceptance scenarios
//
// Two disconnected five-node components; a vote against each component has
// disjoint edge sets, so affinity propagation splits them into separate
// clusters and fault isolation can be observed per cluster.

WeightedDigraph MakeTwoComponentGraph() {
  WeightedDigraph g(10);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.4).ok());
  EXPECT_TRUE(g.AddEdge(1, 3, 1.0).ok());
  EXPECT_TRUE(g.AddEdge(2, 4, 1.0).ok());
  EXPECT_TRUE(g.AddEdge(5, 6, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(5, 7, 0.4).ok());
  EXPECT_TRUE(g.AddEdge(6, 8, 1.0).ok());
  EXPECT_TRUE(g.AddEdge(7, 9, 1.0).ok());
  return g;
}

votes::Vote MakeComponentVote(graph::NodeId query, graph::NodeId loser,
                              graph::NodeId winner, uint32_t id) {
  votes::Vote vote;
  vote.id = id;
  vote.query.links.emplace_back(query, 1.0);
  vote.answer_list = {loser, winner};
  vote.best_answer = winner;
  return vote;
}

OptimizerOptions TwoClusterOptions() {
  OptimizerOptions options;
  options.encoder.symbolic.eipd.max_length = 4;
  options.apply_judgment_filter = false;
  // One attempt per cluster so a single injected NaN fails its cluster.
  options.retry.max_attempts = 1;
  // With only two (zero-similarity) votes the median-preference heuristic
  // degenerates to a single cluster; an explicit positive preference makes
  // each vote its own exemplar so the test really exercises two clusters.
  options.ap.preference = 0.5;
  return options;
}

// Acceptance (a): a forced-NaN cluster solve still yields a successful
// batch with that cluster quarantined, and every surviving weight finite.
TEST(FaultPipelineTest, NanClusterIsolatedInSplitMerge) {
  WeightedDigraph g = MakeTwoComponentGraph();
  KgOptimizer optimizer(&g, TwoClusterOptions());
  // Sequential solve order is cluster 0 first; its first gradient
  // evaluation is poisoned, everything after runs clean.
  ScopedFault fault(FaultSite::kNanGradient,
                    {.probability = 1.0, .max_fires = 1});
  Result<OptimizeReport> report = optimizer.SplitMergeSolve(
      {MakeComponentVote(0, 3, 4, 1), MakeComponentVote(5, 8, 9, 2)});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->num_clusters, 2u);
  ASSERT_EQ(report->failed_clusters.size(), 1u);
  EXPECT_TRUE(report->failed_clusters[0].status.IsNumericalError())
      << report->failed_clusters[0].status.ToString();
  ASSERT_EQ(report->quarantined_votes.size(), 1u);
  // The surviving cluster still applied its changes.
  EXPECT_FALSE(report->weight_changes.empty());
  for (graph::EdgeId e = 0; e < report->optimized.NumEdges(); ++e) {
    EXPECT_TRUE(std::isfinite(report->optimized.Weight(e))) << e;
  }
  EXPECT_TRUE(report->optimized.IsSubStochastic(1e-9));
}

TEST(FaultPipelineTest, QuarantineDisabledFailsTheBatch) {
  WeightedDigraph g = MakeTwoComponentGraph();
  OptimizerOptions options = TwoClusterOptions();
  options.quarantine_failed_clusters = false;
  KgOptimizer optimizer(&g, options);
  ScopedFault fault(FaultSite::kNanGradient,
                    {.probability = 1.0, .max_fires = 1});
  Result<OptimizeReport> report = optimizer.SplitMergeSolve(
      {MakeComponentVote(0, 3, 4, 1), MakeComponentVote(5, 8, 9, 2)});
  EXPECT_FALSE(report.ok());
}

TEST(FaultPipelineTest, TaskDeathQuarantinesItsCluster) {
  WeightedDigraph g = MakeTwoComponentGraph();
  KgOptimizer optimizer(&g, TwoClusterOptions());
  ScopedFault fault(FaultSite::kTaskFailure,
                    {.probability = 1.0, .max_fires = 1});
  Result<OptimizeReport> report = optimizer.SplitMergeSolve(
      {MakeComponentVote(0, 3, 4, 1), MakeComponentVote(5, 8, 9, 2)});
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->failed_clusters.size(), 1u);
  EXPECT_EQ(report->quarantined_votes.size(), 1u);
  EXPECT_EQ(report->failed_clusters[0].status.code(),
            StatusCode::kInternal);
}

// Acceptance (a), online variant, plus determinism under a fixed seed: two
// identical runs quarantine the same cluster and produce bitwise-identical
// surviving weights.
TEST(FaultPipelineTest, OnlineFlushQuarantinesNanClusterDeterministically) {
  auto run = []() {
    WeightedDigraph g = MakeTwoComponentGraph();
    OnlineOptimizerOptions options;
    options.batch_size = 10;
    options.strategy = FlushStrategy::kSplitMerge;
    options.optimizer = TwoClusterOptions();
    OnlineKgOptimizer online(g, options);
    ScopedFault fault(FaultSite::kNanGradient,
                      {.probability = 1.0, .max_fires = 1});
    EXPECT_TRUE(online.AddVote(MakeComponentVote(0, 3, 4, 1)).ok());
    EXPECT_TRUE(online.AddVote(MakeComponentVote(5, 8, 9, 2)).ok());
    Result<FlushReport> r = online.Flush();
    EXPECT_TRUE(r.ok()) << r.status();
    std::vector<double> weights;
    if (r.ok()) {
      EXPECT_EQ(r->votes_flushed, 1u);
      EXPECT_EQ(r->votes_quarantined, 1u);
      EXPECT_EQ(online.PendingVotes(), 1u);  // quarantined vote re-queued
      for (graph::EdgeId e = 0; e < online.graph().NumEdges(); ++e) {
        double w = online.graph().Weight(e);
        EXPECT_TRUE(std::isfinite(w)) << e;
        weights.push_back(w);
      }
    }
    return weights;
  };
  std::vector<double> first = run();
  std::vector<double> second = run();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// Acceptance (b): a corrupted update is rolled back; the serving snapshot
// and graph stay untouched and the batch is preserved for retry.
TEST(FaultPipelineTest, CorruptedUpdateRollsBackServingSnapshot) {
  WeightedDigraph g = MakeTwoComponentGraph();
  OnlineOptimizerOptions options;
  options.batch_size = 10;
  options.strategy = FlushStrategy::kMultiVote;
  options.optimizer.encoder.symbolic.eipd.max_length = 4;
  options.optimizer.apply_judgment_filter = false;
  OnlineKgOptimizer online(g, options);

  std::shared_ptr<const graph::CsrSnapshot> serving = online.snapshot();
  std::vector<double> before_weights;
  for (graph::EdgeId e = 0; e < online.graph().NumEdges(); ++e) {
    before_weights.push_back(online.graph().Weight(e));
  }

  ASSERT_TRUE(online.AddVote(MakeComponentVote(0, 3, 4, 1)).ok());
  {
    ScopedFault fault(FaultSite::kGraphCorruption,
                      {.probability = 1.0, .max_fires = 1});
    Result<FlushReport> r = online.Flush();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  }
  // Rolled back: same snapshot object, same weights, vote preserved.
  EXPECT_EQ(online.snapshot().get(), serving.get());
  for (graph::EdgeId e = 0; e < online.graph().NumEdges(); ++e) {
    EXPECT_DOUBLE_EQ(online.graph().Weight(e), before_weights[e]) << e;
  }
  EXPECT_EQ(online.RollbackCount(), 1u);
  EXPECT_EQ(online.PendingVotes(), 1u);
  EXPECT_EQ(online.TotalVotesApplied(), 0u);

  // With the fault gone the retry succeeds and the snapshot advances.
  Result<FlushReport> retry = online.Flush();
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(retry->votes_flushed, 1u);
  EXPECT_NE(online.snapshot().get(), serving.get());
  for (graph::EdgeId e = 0; e < online.graph().NumEdges(); ++e) {
    EXPECT_TRUE(std::isfinite(online.graph().Weight(e))) << e;
  }
}

TEST(FaultPipelineTest, ValidatorDisabledLetsCorruptionThrough) {
  // Control for the rollback test: with validation off the poisoned weight
  // reaches the graph, which is exactly what the validator prevents.
  WeightedDigraph g = MakeTwoComponentGraph();
  OnlineOptimizerOptions options;
  options.batch_size = 10;
  options.strategy = FlushStrategy::kMultiVote;
  options.optimizer.encoder.symbolic.eipd.max_length = 4;
  options.optimizer.apply_judgment_filter = false;
  options.validate_updates = false;
  OnlineKgOptimizer online(g, options);
  ASSERT_TRUE(online.AddVote(MakeComponentVote(0, 3, 4, 1)).ok());
  ScopedFault fault(FaultSite::kGraphCorruption,
                    {.probability = 1.0, .max_fires = 1});
  ASSERT_TRUE(online.Flush().ok());
  EXPECT_TRUE(std::isnan(online.graph().Weight(0)));
}

}  // namespace
}  // namespace kgov
