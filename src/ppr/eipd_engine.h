// The unified extended-inverse-P-distance engine (paper SIV-A, Eq. 7-9).
//
//   Phi(vq, va) = sum over walks z : vq ~> va, |z| <= L of P[z]*c*(1-c)^|z|
//
// Two kernels share one set of per-lane primitives, selected through
// EipdOptions::kernel:
//
//  - internal::PropagatePhi (kDense): the level-synchronous reference
//    kernel. Its floating-point operation sequence is frozen - the
//    serving-path bitwise gates (single-flight leader reuse, multi-root
//    lanes, cache hits) compare against it with memcmp.
//  - internal::PropagatePhiSparse (kSparse): identical per-level push
//    order, but the O(n) workspace reset is replaced by a lazy reset of
//    only the entries the previous query touched, and frontier nodes whose
//    mass has decayed below EipdOptions::sparse_threshold are absorbed but
//    not expanded. With sparse_threshold == 0 the arithmetic is
//    bitwise-identical to kDense; with a positive threshold the pruning
//    error is one-sided and bounded (see docs/scale.md).
//
// kAuto (the default) resolves per query via internal::ResolveKernel:
// dense below kSparseKernelMinNodes or when the seed covers a large
// fraction of the graph, sparse otherwise - so existing toy-graph
// workloads keep their bitwise-frozen dense behavior while million-node
// graphs get O(touched) queries.
//
// PropagationWorkspace keeps the per-query O(n) scratch (`phi`, `mass`,
// `next` plus the frontiers) alive across queries so steady-state serving
// does no per-call allocation. Pass one explicitly to reuse it across
// engines, or pass nullptr to use a per-thread workspace.

#ifndef KGOV_PPR_EIPD_ENGINE_H_
#define KGOV_PPR_EIPD_ENGINE_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/contracts.h"
#include "common/logging.h"
#include "common/status.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "ppr/query_seed.h"
#include "ppr/ranking.h"

namespace kgov::ppr {

/// Which propagation kernel an EipdEngine runs (see the header comment).
enum class EipdKernel {
  /// Resolve per query from graph size and seed sparsity
  /// (internal::ResolveKernel). The default.
  kAuto,
  /// The frozen-op-order dense kernel; the bitwise reference.
  kDense,
  /// Frontier-tracked kernel with lazy workspace reset and threshold
  /// pruning. Bitwise-identical to kDense when sparse_threshold == 0.
  kSparse,
};

/// Human-readable kernel name ("auto" / "dense" / "sparse").
const char* EipdKernelName(EipdKernel kernel);

struct EipdOptions {
  /// Maximum walk length L (number of edges, including the query's first
  /// hop). Paper default: 5.
  int max_length = 5;
  /// Restart probability c. Paper default: ~0.15.
  double restart = 0.15;
  /// Kernel selection. kAuto keeps small graphs on the bitwise-frozen
  /// dense kernel and routes large, sparsely-seeded graphs to kSparse.
  EipdKernel kernel = EipdKernel::kAuto;
  /// kSparse only: a frontier node whose remaining walk mass is below this
  /// is absorbed into phi but not expanded further. Every pruned score is
  /// an underestimate of the dense score by at most
  /// sparse_threshold * (1 - restart) per pruned (node, level) - see
  /// docs/scale.md for the ranking-perturbation bound. 0 disables pruning
  /// (bitwise-dense results through the sparse data path).
  double sparse_threshold = 1e-12;

  /// OK iff the options describe a usable propagation: max_length >= 1,
  /// restart in (0, 1), and sparse_threshold finite and >= 0. Consumers
  /// (EipdEngine, QaSystem, serve::QueryEngine) call this at construction;
  /// the message names the offending field.
  Status Validate() const;
};

/// Reusable per-query scratch buffers. Prepare(n) zeroes (and if needed
/// grows) them; capacity is retained, so repeated queries on graphs of
/// stable size allocate nothing. Not thread-safe: use one workspace per
/// thread (the engines default to a thread_local one).
struct PropagationWorkspace {
  std::vector<double> phi;
  std::vector<double> mass;
  std::vector<double> next;
  std::vector<graph::NodeId> frontier;
  std::vector<graph::NodeId> next_frontier;
  /// Every node whose phi/mass/next entry may be nonzero, maintained only
  /// by the sparse kernel (may contain duplicates). Lets PrepareSparse
  /// reset in O(touched) instead of O(n).
  std::vector<graph::NodeId> touched;
  /// True while `touched` covers all possibly-nonzero entries. A dense run
  /// writes without tracking, so it clears the flag and the next sparse
  /// run falls back to one full reset.
  bool sparse_tracked = false;

  void Prepare(size_t n) {
    phi.assign(n, 0.0);
    mass.assign(n, 0.0);
    next.assign(n, 0.0);
    frontier.clear();
    next_frontier.clear();
    touched.clear();
    sparse_tracked = false;
  }

  /// Sparse-kernel reset: zeroes only the entries the previous sparse
  /// query touched. Falls back to Prepare(n) after a resize or a dense
  /// run. Steady-state cost is O(previous query's touched set).
  void PrepareSparse(size_t n) {
    if (!sparse_tracked || phi.size() != n) {
      Prepare(n);
    } else {
      for (graph::NodeId v : touched) {
        phi[v] = 0.0;
        mass[v] = 0.0;
        next[v] = 0.0;
      }
      touched.clear();
      frontier.clear();
      next_frontier.clear();
    }
    sparse_tracked = true;
  }
};

/// The per-thread default workspace used when callers pass nullptr.
PropagationWorkspace& ThreadLocalWorkspace();

/// Scratch for a multi-root pass: one PropagationWorkspace lane per root.
/// Lane capacity is retained across passes (EnsureLanes only grows), so a
/// serving worker that batches queries steadily allocates nothing.
struct MultiPropagationWorkspace {
  std::vector<PropagationWorkspace> lanes;
  /// Per-lane kernel resolution of the current pass (scratch; sized by
  /// PropagatePhiMulti).
  std::vector<EipdKernel> lane_kernels;

  void EnsureLanes(size_t count) {
    if (lanes.size() < count) lanes.resize(count);
  }
};

/// The per-thread default multi-root workspace used when callers pass
/// nullptr to RankMulti.
MultiPropagationWorkspace& ThreadLocalMultiWorkspace();

namespace internal {

/// Adjacency adapter over a GraphView (contiguous CSR ranges).
struct ViewAdjacency {
  graph::GraphView view;

  size_t NumNodes() const { return view.NumNodes(); }
  bool IsValidNode(graph::NodeId v) const { return view.IsValidNode(v); }

  template <typename Fn>
  void ForEachOut(graph::NodeId u, Fn&& fn) const {
    const graph::GraphView::Neighbor* b = view.begin(u);
    const graph::GraphView::Neighbor* e = view.end(u);
    const graph::EdgeId* ids = view.edge_ids(u);
    for (const graph::GraphView::Neighbor* it = b; it != e; ++it) {
      fn(it->to, it->weight,
         ids == nullptr ? graph::kInvalidEdge : ids[it - b]);
    }
  }
};

// --- Per-lane primitives ---------------------------------------------
// One lane = one seed's propagation state in its own workspace. Both the
// single-root driver (PropagatePhi) and the multi-root driver
// (PropagatePhiMulti) are composed of exactly these steps, so a lane's
// floating-point operation sequence is identical whichever driver runs
// it: a multi-root result is bitwise-identical, per root, to the
// single-root propagation of the same seed (tests/test_eipd_multi.cc).

/// Level 1: the query's first hop.
template <typename Adjacency>
void SeedLane(const Adjacency& adj, const QuerySeed& seed,
              PropagationWorkspace* ws) {
  ws->Prepare(adj.NumNodes());
  for (const auto& [node, weight] : seed.links) {
    KGOV_DCHECK(adj.IsValidNode(node));
    if (weight <= 0.0) continue;
    if (ws->mass[node] == 0.0) ws->frontier.push_back(node);
    ws->mass[node] += weight;
  }
}

/// Absorbs the current level's mass into phi at the given decay
/// c*(1-c)^len.
inline void AbsorbLane(PropagationWorkspace* ws, double decay) {
  for (graph::NodeId v : ws->frontier) {
    ws->phi[v] += ws->mass[v] * decay;
  }
}

/// Pushes the lane's mass one level along the out-edges.
template <typename Adjacency>
void AdvanceLane(const Adjacency& adj,
                 const std::unordered_map<graph::EdgeId, double>* overrides,
                 PropagationWorkspace* ws) {
  std::vector<double>& next = ws->next;
  ws->next_frontier.clear();
  for (graph::NodeId u : ws->frontier) {
    const double m = ws->mass[u];
    adj.ForEachOut(u, [&](graph::NodeId to, double w, graph::EdgeId e) {
      if (overrides != nullptr) {
        auto it = overrides->find(e);
        if (it != overrides->end()) w = it->second;
      }
      if (w <= 0.0) return;
      if (next[to] == 0.0) ws->next_frontier.push_back(to);
      next[to] += m * w;
    });
    ws->mass[u] = 0.0;
  }
  // `next` entries touched twice keep their accumulated value;
  // next_frontier may contain duplicates only if next[v] was exactly 0
  // after a prior add, which cannot happen with positive weights. After
  // the swap the old mass array (all zeroed above) becomes next.
  ws->mass.swap(ws->next);
  ws->frontier.swap(ws->next_frontier);
}

/// THE propagation body: level-synchronous mass propagation (a truncated
/// power iteration over the walk length), yielding the scores of *all*
/// nodes in one pass - the property behind the paper's Table VI efficiency
/// result. Walks longer than L are dropped (SIV-A; L = 5 in the paper's
/// experiments, justified by Fig. 7). Weights present in `overrides`
/// (keyed by EdgeId; may be null) replace the adjacency's weights.
/// Results land in ws->phi.
template <typename Adjacency>
void PropagatePhi(const Adjacency& adj, const QuerySeed& seed,
                  const EipdOptions& options,
                  const std::unordered_map<graph::EdgeId, double>* overrides,
                  PropagationWorkspace* ws) {
  const double c = options.restart;
  SeedLane(adj, seed, ws);
  double decay = c * (1.0 - c);  // c*(1-c)^len for len = 1
  for (int len = 1; len <= options.max_length; ++len) {
    AbsorbLane(ws, decay);
    if (len == options.max_length) break;
    AdvanceLane(adj, overrides, ws);
    decay *= 1.0 - c;
  }
}

// --- Sparse (frontier-tracked) lane primitives -----------------------
// Same per-level iteration and push order as the dense primitives - the
// only behavioral differences are the lazy workspace reset (PrepareSparse
// + touched tracking) and the prune_threshold check in the advance step.
// With prune_threshold == 0 every floating-point operation matches the
// dense lane exactly, so sparse results are bitwise-identical to dense
// ones (tests/test_eipd_sparse.cc).

/// Sparse level 1: the query's first hop, with touched tracking.
template <typename Adjacency>
void SeedLaneSparse(const Adjacency& adj, const QuerySeed& seed,
                    PropagationWorkspace* ws) {
  ws->PrepareSparse(adj.NumNodes());
  for (const auto& [node, weight] : seed.links) {
    KGOV_DCHECK(adj.IsValidNode(node));
    if (weight <= 0.0) continue;
    if (ws->mass[node] == 0.0) {
      ws->frontier.push_back(node);
      ws->touched.push_back(node);
    }
    ws->mass[node] += weight;
  }
}

/// Sparse advance: pushes mass one level along the out-edges, skipping
/// frontier nodes whose remaining mass is below `prune_threshold` (their
/// mass was already absorbed into phi this level; only their downstream
/// expansion is dropped). Returns the number of pruned frontier nodes.
template <typename Adjacency>
size_t AdvanceLaneSparse(
    const Adjacency& adj,
    const std::unordered_map<graph::EdgeId, double>* overrides,
    double prune_threshold, PropagationWorkspace* ws) {
  std::vector<double>& next = ws->next;
  ws->next_frontier.clear();
  size_t pruned = 0;
  for (graph::NodeId u : ws->frontier) {
    const double m = ws->mass[u];
    ws->mass[u] = 0.0;
    if (m < prune_threshold) {
      ++pruned;
      continue;
    }
    adj.ForEachOut(u, [&](graph::NodeId to, double w, graph::EdgeId e) {
      if (overrides != nullptr) {
        auto it = overrides->find(e);
        if (it != overrides->end()) w = it->second;
      }
      if (w <= 0.0) return;
      if (next[to] == 0.0) {
        ws->next_frontier.push_back(to);
        ws->touched.push_back(to);
      }
      next[to] += m * w;
    });
  }
  // All frontier masses were zeroed above, so after the swap the old mass
  // array is all-zero and becomes next for the following level.
  ws->mass.swap(ws->next);
  ws->frontier.swap(ws->next_frontier);
  return pruned;
}

/// The frontier-tracked kernel: same walk-sum as PropagatePhi, but the
/// per-query cost is O(touched nodes + traversed edges) instead of
/// O(n + traversed edges) - on a million-node graph with a sparse seed the
/// dense kernel's three O(n) zeroing sweeps dominate, and this kernel
/// skips them. Returns the total number of pruned (node, level) pairs.
template <typename Adjacency>
size_t PropagatePhiSparse(
    const Adjacency& adj, const QuerySeed& seed, const EipdOptions& options,
    const std::unordered_map<graph::EdgeId, double>* overrides,
    PropagationWorkspace* ws) {
  const double c = options.restart;
  SeedLaneSparse(adj, seed, ws);
  double decay = c * (1.0 - c);
  size_t pruned = 0;
  for (int len = 1; len <= options.max_length; ++len) {
    AbsorbLane(ws, decay);
    if (len == options.max_length) break;
    pruned +=
        AdvanceLaneSparse(adj, overrides, options.sparse_threshold, ws);
    decay *= 1.0 - c;
  }
  return pruned;
}

// --- Kernel resolution ------------------------------------------------

/// Below this node count kAuto always picks kDense: the O(n) reset is
/// cheap, and every pre-existing bitwise gate (single-flight, multi-root,
/// cache) runs on graphs well under this size.
inline constexpr size_t kSparseKernelMinNodes = 16384;
/// kAuto picks kDense when seed_links * this >= num_nodes (a seed covering
/// >= 1/16 of the graph floods most of it by level 2, so frontier
/// tracking only adds overhead).
inline constexpr size_t kSparseKernelSeedFactor = 16;

/// Pure dispatch rule behind EipdOptions::kernel == kAuto. Deterministic
/// in (options, num_nodes, seed_links) so a multi-root lane resolves
/// exactly as the same seed would solo.
inline EipdKernel ResolveKernel(const EipdOptions& options, size_t num_nodes,
                                size_t seed_links) {
  if (options.kernel != EipdKernel::kAuto) return options.kernel;
  if (num_nodes < kSparseKernelMinNodes) return EipdKernel::kDense;
  if (seed_links >= num_nodes / kSparseKernelSeedFactor) {
    return EipdKernel::kDense;
  }
  return EipdKernel::kSparse;
}

/// The multi-root kernel: B seeds advance level-synchronously through one
/// pass, lane b in ws->lanes[b]. Because the lanes interleave at level
/// granularity (every lane absorbs, then every lane advances), the
/// adjacency rows a level touches are revisited across lanes while still
/// warm - the locality batched serving rides on - and each lane's
/// operation sequence is exactly the single-root sequence, so results
/// are bitwise-identical per root. Each lane resolves its kernel exactly
/// as the same seed would solo (ResolveKernel is deterministic per seed),
/// preserving that identity under kAuto and kSparse too. No overrides:
/// the batched serving path reads the epoch's frozen weights.
template <typename Adjacency>
void PropagatePhiMulti(const Adjacency& adj,
                       const std::vector<const QuerySeed*>& seeds,
                       const EipdOptions& options,
                       MultiPropagationWorkspace* ws) {
  const double c = options.restart;
  const size_t lanes = seeds.size();
  ws->EnsureLanes(lanes);
  ws->lane_kernels.resize(lanes);
  for (size_t b = 0; b < lanes; ++b) {
    ws->lane_kernels[b] =
        ResolveKernel(options, adj.NumNodes(), seeds[b]->links.size());
    if (ws->lane_kernels[b] == EipdKernel::kSparse) {
      SeedLaneSparse(adj, *seeds[b], &ws->lanes[b]);
    } else {
      SeedLane(adj, *seeds[b], &ws->lanes[b]);
    }
  }
  double decay = c * (1.0 - c);
  for (int len = 1; len <= options.max_length; ++len) {
    for (size_t b = 0; b < lanes; ++b) {
      AbsorbLane(&ws->lanes[b], decay);
    }
    if (len == options.max_length) break;
    for (size_t b = 0; b < lanes; ++b) {
      if (ws->lane_kernels[b] == EipdKernel::kSparse) {
        AdvanceLaneSparse(adj, nullptr, options.sparse_threshold,
                          &ws->lanes[b]);
      } else {
        AdvanceLane(adj, nullptr, &ws->lanes[b]);
      }
    }
    decay *= 1.0 - c;
  }
}

}  // namespace internal

/// THE documented EIPD evaluator: numeric EIPD evaluation over a
/// GraphView. The view's backing storage (e.g. a graph::CsrSnapshot or
/// graph::InducedSubview) must outlive the engine. Thread-compatible:
/// concurrent calls on one instance are safe as long as each thread uses
/// its own workspace (the default).
///
/// All entry points (Propagate, Scores, Rank, *WithOverrides, RankMulti)
/// return StatusOr<T> and reject malformed seeds/candidates with
/// InvalidArgument instead of asserting; there is no unchecked API. Code
/// that held a raw phi reference should use the checked Propagate() and
/// keep the returned vector.
class EipdEngine {
 public:
  explicit EipdEngine(graph::GraphView view, EipdOptions options = {});

  const EipdOptions& options() const { return options_; }
  const graph::GraphView& view() const { return view_; }

  /// The kernel a propagation of `seed` on this engine resolves to
  /// (kDense or kSparse, never kAuto). Deterministic; exposed so dispatch
  /// decisions are testable and observable.
  EipdKernel KernelFor(const QuerySeed& seed) const {
    return internal::ResolveKernel(options_, view_.NumNodes(),
                                   seed.links.size());
  }

  /// OK iff every seed link names a valid node of the view with a finite,
  /// non-negative weight. The error message names the offending link.
  Status ValidateSeed(const QuerySeed& seed) const;

  /// One propagation pass; returns Phi(seed, v) for every node v of the
  /// view. Pass a workspace to reuse scratch across calls (the returned
  /// vector is an independent copy either way).
  StatusOr<std::vector<double>> Propagate(
      const QuerySeed& seed, PropagationWorkspace* ws = nullptr) const;

  /// Propagate with edge weights in `overrides` replacing the view's
  /// weights (judgment filter's extreme condition, per-cluster solution
  /// checks). The view must carry edge ids when it has any edges.
  StatusOr<std::vector<double>> PropagateWithOverrides(
      const QuerySeed& seed,
      const std::unordered_map<graph::EdgeId, double>& overrides,
      PropagationWorkspace* ws = nullptr) const;

  /// Phi(seed, a) for every a in `answers`, in one propagation pass.
  StatusOr<std::vector<double>> Scores(
      const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
      PropagationWorkspace* ws = nullptr) const;

  /// Scores under weight overrides.
  StatusOr<std::vector<double>> ScoresWithOverrides(
      const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
      const std::unordered_map<graph::EdgeId, double>& overrides,
      PropagationWorkspace* ws = nullptr) const;

  /// Top-k candidates sorted by descending score, ties by ascending node
  /// id (rankings are deterministic).
  StatusOr<std::vector<ScoredAnswer>> Rank(
      const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
      size_t k, PropagationWorkspace* ws = nullptr) const;

  /// Rank under weight overrides.
  StatusOr<std::vector<ScoredAnswer>> RankWithOverrides(
      const QuerySeed& seed, const std::vector<graph::NodeId>& candidates,
      size_t k, const std::unordered_map<graph::EdgeId, double>& overrides,
      PropagationWorkspace* ws = nullptr) const;

  /// Ranks every seed against `candidates` in ONE multi-root propagation
  /// pass (internal::PropagatePhiMulti): the seeds advance
  /// level-synchronously, so adjacency rows shared by related roots are
  /// revisited while still cache-warm. results[b] is bitwise-identical
  /// to Rank(seeds[b], ...) - per-lane arithmetic order is preserved.
  /// The batched serving path folds same-cluster misses through this.
  StatusOr<std::vector<std::vector<ScoredAnswer>>> RankMulti(
      const std::vector<QuerySeed>& seeds,
      const std::vector<graph::NodeId>& candidates, size_t k,
      MultiPropagationWorkspace* ws = nullptr) const;

 private:
  /// The one kernel invocation every entry point funnels through:
  /// resolves the workspace and the kernel (KernelFor), runs PropagatePhi
  /// or PropagatePhiSparse, records telemetry, and returns the
  /// workspace's phi vector.
  const std::vector<double>& PropagateInto(
      const QuerySeed& seed,
      const std::unordered_map<graph::EdgeId, double>* overrides,
      PropagationWorkspace* ws) const;

  graph::GraphView view_;
  EipdOptions options_;
};

}  // namespace kgov::ppr

#endif  // KGOV_PPR_EIPD_ENGINE_H_
