#include "stream/dirty_tracker.h"

#include "common/contracts.h"

namespace kgov::stream {

DirtyClusterTracker::DirtyClusterTracker(
    std::shared_ptr<const GraphPartition> partition, int depth)
    : partition_(std::move(partition)), depth_(depth) {
  KGOV_CHECK(partition_ != nullptr);
  dirty_.assign(partition_->num_clusters(), 0);
}

void DirtyClusterTracker::MarkVote(const votes::Vote& vote,
                                   graph::GraphView view) {
  std::vector<graph::NodeId> roots;
  roots.reserve(vote.query.links.size() + vote.answer_list.size());
  for (const auto& [node, weight] : vote.query.links) {
    roots.push_back(node);
  }
  roots.insert(roots.end(), vote.answer_list.begin(),
               vote.answer_list.end());
  const std::vector<graph::NodeId> ball =
      graph::CollectOutNeighborhood(view, roots, depth_);
  for (graph::NodeId node : ball) {
    MarkCluster(partition_->ClusterOf(node));
  }
}

void DirtyClusterTracker::MarkCluster(uint32_t cluster) {
  if (cluster >= dirty_.size() || dirty_[cluster]) return;
  dirty_[cluster] = 1;
  ++dirty_count_;
}

std::vector<uint32_t> DirtyClusterTracker::DirtySet() const {
  std::vector<uint32_t> dirty;
  dirty.reserve(dirty_count_);
  for (uint32_t c = 0; c < dirty_.size(); ++c) {
    if (dirty_[c]) dirty.push_back(c);
  }
  return dirty;
}

void DirtyClusterTracker::Clear() {
  dirty_.assign(dirty_.size(), 0);
  dirty_count_ = 0;
}

}  // namespace kgov::stream
