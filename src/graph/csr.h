// Immutable CSR (compressed sparse row) snapshot of a WeightedDigraph.
//
// The mutable adjacency-list graph is ideal for the optimizer (O(1) weight
// writes), but each out-edge access indirects through the edge table. A
// serving system that answers many queries between optimization rounds can
// freeze the current weights into a CSR snapshot: contiguous
// (target, weight) pairs per node, cache-friendly and pointer-free. The
// fast evaluator in ppr/fast_eipd.h runs on snapshots.

#ifndef KGOV_GRAPH_CSR_H_
#define KGOV_GRAPH_CSR_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kgov::graph {

/// Frozen graph view. Cheap to move, immutable after construction.
class CsrSnapshot {
 public:
  /// A single out-neighbor entry.
  struct Neighbor {
    NodeId to;
    double weight;
  };

  CsrSnapshot() = default;

  /// Captures the current topology and weights of `graph`.
  explicit CsrSnapshot(const WeightedDigraph& graph);

  size_t NumNodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t NumEdges() const { return neighbors_.size(); }
  bool IsValidNode(NodeId node) const { return node < NumNodes(); }

  /// Out-neighbors of `node` as a contiguous range.
  const Neighbor* begin(NodeId node) const {
    return neighbors_.data() + offsets_[node];
  }
  const Neighbor* end(NodeId node) const {
    return neighbors_.data() + offsets_[node + 1];
  }
  size_t OutDegree(NodeId node) const {
    return offsets_[node + 1] - offsets_[node];
  }

  /// Sum of outgoing weights of `node`.
  double OutWeightSum(NodeId node) const;

 private:
  // offsets_[v]..offsets_[v+1] indexes neighbors_ for node v; has
  // NumNodes()+1 entries (empty graph: stays empty).
  std::vector<size_t> offsets_;
  std::vector<Neighbor> neighbors_;
};

}  // namespace kgov::graph

#endif  // KGOV_GRAPH_CSR_H_
