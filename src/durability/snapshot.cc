#include "durability/snapshot.h"

#include <sys/mman.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <type_traits>
#include <utility>

#include "common/crc32.h"
#include "common/fs.h"
#include "common/logging.h"
#include "votes/vote_wal_codec.h"

namespace kgov::durability {
namespace {

// The mapped file is reinterpreted in place as the CSR arrays GraphView
// borrows, so the on-disk layout must match the in-memory one bit for bit.
static_assert(sizeof(size_t) == 8,
              "snapshot offsets are u64 reinterpreted as size_t");
static_assert(sizeof(graph::GraphView::Neighbor) == 16 &&
                  offsetof(graph::GraphView::Neighbor, to) == 0 &&
                  offsetof(graph::GraphView::Neighbor, weight) == 8,
              "snapshot neighbor section mirrors GraphView::Neighbor");
static_assert(std::is_trivially_copyable_v<graph::GraphView::Neighbor>);

constexpr char kMagic[8] = {'K', 'G', 'O', 'V', 'S', 'N', 'P', '1'};
constexpr uint32_t kVersion = 1;
constexpr size_t kSectionAlign = 64;

// Fixed 128-byte header. header_crc covers everything before it (bytes
// [0, offsetof(header_crc))); body_crc covers bytes [128, file size).
struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t flags;
  uint64_t epoch;
  uint64_t num_nodes;
  uint64_t num_edges;
  uint64_t num_entities;
  uint64_t num_documents;
  uint64_t wal_seq;
  uint64_t offsets_pos;
  uint64_t neighbors_pos;
  uint64_t edge_ids_pos;
  uint64_t aux_pos;
  uint64_t aux_len;
  uint32_t body_crc;
  uint32_t header_crc;
  char pad[16];
};
static_assert(sizeof(SnapshotHeader) == 128);
static_assert(offsetof(SnapshotHeader, header_crc) == 108);

size_t AlignUp(size_t pos) {
  return (pos + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

template <typename T>
void AppendRaw(std::string* out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

void PadTo(std::string* out, size_t pos) {
  if (out->size() < pos) out->append(pos - out->size(), '\0');
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::InvalidArgument("snapshot " + path + " corrupt: " + what);
}

Status DecodeVoteList(std::string_view aux, size_t* offset,
                      const std::string& path, const char* what,
                      std::vector<votes::Vote>* out) {
  if (aux.size() - *offset < sizeof(uint32_t)) {
    return Corrupt(path, std::string("truncated ") + what + " count");
  }
  uint32_t count = 0;
  std::memcpy(&count, aux.data() + *offset, sizeof(count));
  *offset += sizeof(count);
  out->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    Status decoded = votes::DecodeVote(aux, offset, &(*out)[i]);
    if (!decoded.ok()) {
      return Corrupt(path, std::string(what) + " vote " + std::to_string(i) +
                               ": " + decoded.ToString());
    }
  }
  return Status::OK();
}

}  // namespace

Status SnapshotLoadOptions::Validate() const { return Status::OK(); }

std::string SnapshotFileName(uint64_t epoch) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "snapshot-%020llu.kgs",
                static_cast<unsigned long long>(epoch));
  return buf;
}

std::optional<uint64_t> ParseSnapshotFileName(std::string_view name) {
  constexpr std::string_view kPrefix = "snapshot-";
  constexpr std::string_view kSuffix = ".kgs";
  if (name.size() != kPrefix.size() + 20 + kSuffix.size() ||
      name.substr(0, kPrefix.size()) != kPrefix ||
      name.substr(name.size() - kSuffix.size()) != kSuffix) {
    return std::nullopt;
  }
  uint64_t epoch = 0;
  for (char c : name.substr(kPrefix.size(), 20)) {
    if (c < '0' || c > '9') return std::nullopt;
    epoch = epoch * 10 + static_cast<uint64_t>(c - '0');
  }
  return epoch;
}

std::string EncodeSnapshot(const graph::GraphView& view,
                           const SnapshotMeta& meta) {
  const size_t num_nodes = view.NumNodes();
  const size_t num_edges = view.NumEdges();

  SnapshotHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.epoch = meta.epoch;
  header.num_nodes = num_nodes;
  header.num_edges = num_edges;
  header.num_entities = meta.num_entities;
  header.num_documents = meta.num_documents;
  header.wal_seq = meta.wal_seq;
  header.offsets_pos = AlignUp(sizeof(SnapshotHeader));
  header.neighbors_pos =
      AlignUp(header.offsets_pos + (num_nodes + 1) * sizeof(uint64_t));
  header.edge_ids_pos = AlignUp(
      header.neighbors_pos + num_edges * sizeof(graph::GraphView::Neighbor));
  header.aux_pos =
      AlignUp(header.edge_ids_pos + num_edges * sizeof(graph::EdgeId));

  std::string out;
  out.reserve(header.aux_pos + 64);
  out.append(sizeof(SnapshotHeader), '\0');  // patched at the end

  // Offsets: rebuilt cumulatively from the view (GraphView does not expose
  // its raw offset array).
  PadTo(&out, header.offsets_pos);
  uint64_t running = 0;
  AppendRaw(&out, running);
  for (graph::NodeId node = 0; node < num_nodes; ++node) {
    running += view.OutDegree(node);
    AppendRaw(&out, running);
  }

  // Neighbors, field by field with explicit zero padding: memcpy-ing the
  // in-memory structs would leak 4 indeterminate padding bytes per entry
  // into the file and make the body CRC nondeterministic.
  PadTo(&out, header.neighbors_pos);
  for (graph::NodeId node = 0; node < num_nodes; ++node) {
    for (const auto* it = view.begin(node); it != view.end(node); ++it) {
      AppendRaw(&out, it->to);
      AppendRaw(&out, uint32_t{0});
      AppendRaw(&out, it->weight);
    }
  }

  PadTo(&out, header.edge_ids_pos);
  for (graph::NodeId node = 0; node < num_nodes; ++node) {
    const graph::EdgeId* ids = view.edge_ids(node);
    for (size_t i = 0; i < view.OutDegree(node); ++i) {
      AppendRaw(&out, ids == nullptr ? graph::kInvalidEdge : ids[i]);
    }
  }

  PadTo(&out, header.aux_pos);
  AppendRaw(&out, static_cast<uint32_t>(meta.pending.size()));
  for (const votes::Vote& vote : meta.pending) votes::EncodeVote(vote, &out);
  AppendRaw(&out, static_cast<uint32_t>(meta.dead_letters.size()));
  for (const votes::Vote& vote : meta.dead_letters) {
    votes::EncodeVote(vote, &out);
  }
  header.aux_len = out.size() - header.aux_pos;

  header.body_crc = MaskCrc32c(
      Crc32c(out.data() + sizeof(SnapshotHeader),
             out.size() - sizeof(SnapshotHeader)));
  header.header_crc = MaskCrc32c(
      Crc32c(&header, offsetof(SnapshotHeader, header_crc)));
  std::memcpy(out.data(), &header, sizeof(header));
  return out;
}

Status WriteSnapshot(const std::string& path, const graph::GraphView& view,
                     const SnapshotMeta& meta) {
  return fs::WriteFileAtomic(path, EncodeSnapshot(view, meta));
}

MappedSnapshot::MappedSnapshot(MappedSnapshot&& other) noexcept {
  *this = std::move(other);
}

MappedSnapshot& MappedSnapshot::operator=(MappedSnapshot&& other) noexcept {
  if (this == &other) return *this;
  if (map_ != nullptr) {
    ::munmap(const_cast<void*>(map_), map_size_);
  }
  map_ = std::exchange(other.map_, nullptr);
  map_size_ = std::exchange(other.map_size_, 0);
  num_nodes_ = std::exchange(other.num_nodes_, 0);
  num_edges_ = std::exchange(other.num_edges_, 0);
  offsets_ = std::exchange(other.offsets_, nullptr);
  neighbors_ = std::exchange(other.neighbors_, nullptr);
  edge_ids_ = std::exchange(other.edge_ids_, nullptr);
  meta_ = std::move(other.meta_);
  path_ = std::move(other.path_);
  return *this;
}

MappedSnapshot::~MappedSnapshot() {
  if (map_ != nullptr) {
    ::munmap(const_cast<void*>(map_), map_size_);
  }
}

StatusOr<MappedSnapshot> MappedSnapshot::Load(
    const std::string& path, const SnapshotLoadOptions& options) {
  KGOV_RETURN_IF_ERROR(options.Validate());
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " +
                           std::string(std::strerror(errno)));
  }
  const off_t file_size = ::lseek(fd, 0, SEEK_END);
  if (file_size < 0) {
    ::close(fd);
    return Status::IoError("lseek " + path + ": " +
                           std::string(std::strerror(errno)));
  }
  if (static_cast<size_t>(file_size) < sizeof(SnapshotHeader)) {
    ::close(fd);
    return Corrupt(path, "file shorter than header");
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(file_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    return Status::IoError("mmap " + path + ": " +
                           std::string(std::strerror(errno)));
  }

  MappedSnapshot snapshot;
  snapshot.map_ = map;
  snapshot.map_size_ = static_cast<size_t>(file_size);
  snapshot.path_ = path;
  const char* base = static_cast<const char*>(map);

  SnapshotHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "bad magic");
  }
  if (header.version != kVersion) {
    return Corrupt(path,
                   "unsupported version " + std::to_string(header.version));
  }
  const uint32_t header_crc = MaskCrc32c(
      Crc32c(&header, offsetof(SnapshotHeader, header_crc)));
  if (header_crc != header.header_crc) {
    return Corrupt(path, "header checksum mismatch");
  }

  // Bounds: each section must lie inside the file, in order, with room
  // for its advertised element count (guards overflowed counts too).
  const auto section_ok = [&](uint64_t pos, uint64_t count,
                              uint64_t elem_size) {
    return pos >= sizeof(SnapshotHeader) && pos <= snapshot.map_size_ &&
           count <= (snapshot.map_size_ - pos) / elem_size;
  };
  if (!section_ok(header.offsets_pos, header.num_nodes + 1,
                  sizeof(uint64_t)) ||
      !section_ok(header.neighbors_pos, header.num_edges,
                  sizeof(graph::GraphView::Neighbor)) ||
      !section_ok(header.edge_ids_pos, header.num_edges,
                  sizeof(graph::EdgeId)) ||
      !section_ok(header.aux_pos, header.aux_len, 1) ||
      header.offsets_pos % alignof(uint64_t) != 0 ||
      header.neighbors_pos % alignof(graph::GraphView::Neighbor) != 0 ||
      header.edge_ids_pos % alignof(graph::EdgeId) != 0) {
    return Corrupt(path, "section layout out of bounds");
  }

  if (options.verify_body_checksum) {
    const uint32_t body_crc = MaskCrc32c(
        Crc32c(base + sizeof(SnapshotHeader),
               snapshot.map_size_ - sizeof(SnapshotHeader)));
    if (body_crc != header.body_crc) {
      return Corrupt(path, "body checksum mismatch");
    }
  }

  snapshot.num_nodes_ = header.num_nodes;
  snapshot.num_edges_ = header.num_edges;
  snapshot.offsets_ =
      reinterpret_cast<const uint64_t*>(base + header.offsets_pos);
  snapshot.neighbors_ = reinterpret_cast<const graph::GraphView::Neighbor*>(
      base + header.neighbors_pos);
  snapshot.edge_ids_ =
      reinterpret_cast<const graph::EdgeId*>(base + header.edge_ids_pos);
  if (snapshot.num_nodes_ > 0 &&
      (snapshot.offsets_[0] != 0 ||
       snapshot.offsets_[snapshot.num_nodes_] != snapshot.num_edges_)) {
    return Corrupt(path, "offset table does not span the edge count");
  }

  snapshot.meta_.epoch = header.epoch;
  snapshot.meta_.num_entities = header.num_entities;
  snapshot.meta_.num_documents = header.num_documents;
  snapshot.meta_.wal_seq = header.wal_seq;
  const std::string_view aux(base + header.aux_pos, header.aux_len);
  size_t offset = 0;
  KGOV_RETURN_IF_ERROR(DecodeVoteList(aux, &offset, path, "pending",
                                      &snapshot.meta_.pending));
  KGOV_RETURN_IF_ERROR(DecodeVoteList(aux, &offset, path, "dead-letter",
                                      &snapshot.meta_.dead_letters));
  return snapshot;
}

graph::GraphView MappedSnapshot::View() const {
  if (num_nodes_ == 0) return graph::GraphView{};
  return graph::GraphView(num_nodes_,
                          reinterpret_cast<const size_t*>(offsets_),
                          neighbors_, edge_ids_);
}

graph::WeightedDigraph MappedSnapshot::ToWeightedDigraph() const {
  graph::WeightedDigraph graph(num_nodes_);
  const graph::GraphView view = View();
  for (graph::NodeId node = 0; node < num_nodes_; ++node) {
    for (const auto* it = view.begin(node); it != view.end(node); ++it) {
      Result<graph::EdgeId> added = graph.AddEdge(node, it->to, it->weight);
      if (!added.ok()) {
        // A validated snapshot cannot contain an edge AddEdge rejects; a
        // corrupted-but-CRC-passing one is vanishingly unlikely but must
        // not crash the recovery path.
        KGOV_LOG(ERROR) << "snapshot " << path_ << ": dropping edge ("
                        << node << " -> " << it->to
                        << "): " << added.status().ToString();
      }
    }
  }
  return graph;
}

}  // namespace kgov::durability
