// Serving-side contract checks.
//
// The serving read path hands frozen epochs (core::ServingEpoch) to query
// workers. ValidateEpochPin checks the invariants a pinned epoch must
// satisfy before a worker serves from it: a live snapshot, an epoch number
// that has not moved backwards relative to what the caller already
// observed, and a structurally sound CSR view (graph::ValidateCsr).
//
// QueryEngine::ServeOne runs this under KGOV_DCHECK_OK, so the check is
// free in release builds and honors contracts::CheckMode in debug builds.

#ifndef KGOV_SERVE_VALIDATE_H_
#define KGOV_SERVE_VALIDATE_H_

#include <cstdint>

#include "common/status.h"
#include "core/online_optimizer.h"

namespace kgov::serve {

/// Checks that `epoch` is servable: non-null snapshot, epoch number at
/// least `min_expected_epoch` (pass the last epoch number the caller
/// observed; epochs only move forward), and a CSR view that passes
/// graph::ValidateCsr. Returns Internal/FailedPrecondition naming the
/// violated invariant.
Status ValidateEpochPin(const core::ServingEpoch& epoch,
                        uint64_t min_expected_epoch = 0);

}  // namespace kgov::serve

#endif  // KGOV_SERVE_VALIDATE_H_
