file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_forms.dir/bench_ablation_forms.cc.o"
  "CMakeFiles/bench_ablation_forms.dir/bench_ablation_forms.cc.o.d"
  "bench_ablation_forms"
  "bench_ablation_forms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_forms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
