#include "votes/vote.h"

#include <gtest/gtest.h>

namespace kgov::votes {
namespace {

Vote MakeVote(std::vector<graph::NodeId> list, graph::NodeId best) {
  Vote vote;
  vote.query.links.emplace_back(0, 1.0);
  vote.answer_list = std::move(list);
  vote.best_answer = best;
  return vote;
}

TEST(VoteTest, PositiveWhenBestIsTop) {
  Vote vote = MakeVote({10, 11, 12}, 10);
  EXPECT_TRUE(vote.IsPositive());
  EXPECT_FALSE(vote.IsNegative());
}

TEST(VoteTest, NegativeWhenBestIsNotTop) {
  Vote vote = MakeVote({10, 11, 12}, 12);
  EXPECT_FALSE(vote.IsPositive());
  EXPECT_TRUE(vote.IsNegative());
}

TEST(VoteTest, EmptyListIsNegativeAndMalformed) {
  Vote vote = MakeVote({}, 10);
  EXPECT_FALSE(vote.IsPositive());
  EXPECT_FALSE(vote.IsWellFormed());
}

TEST(VoteTest, BestAnswerRank) {
  Vote vote = MakeVote({10, 11, 12}, 11);
  EXPECT_EQ(vote.BestAnswerRank(), 2);
  vote.best_answer = 99;
  EXPECT_EQ(vote.BestAnswerRank(), 0);
}

TEST(VoteTest, WellFormedRequiresBestInListAndSeed) {
  Vote ok = MakeVote({10, 11}, 11);
  EXPECT_TRUE(ok.IsWellFormed());

  Vote missing_best = MakeVote({10, 11}, 99);
  EXPECT_FALSE(missing_best.IsWellFormed());

  Vote no_seed = MakeVote({10, 11}, 10);
  no_seed.query.links.clear();
  EXPECT_FALSE(no_seed.IsWellFormed());
}

TEST(RankOfTest, Basics) {
  std::vector<graph::NodeId> list{5, 9, 7};
  EXPECT_EQ(RankOf(list, 5), 1);
  EXPECT_EQ(RankOf(list, 7), 3);
  EXPECT_EQ(RankOf(list, 8), 0);
  EXPECT_EQ(RankOf({}, 8), 0);
}

TEST(SummarizeTest, CountsPositiveAndNegative) {
  std::vector<Vote> votes{
      MakeVote({1, 2}, 1),  // positive
      MakeVote({1, 2}, 2),  // negative
      MakeVote({3, 4}, 4),  // negative
  };
  VoteSetSummary summary = Summarize(votes);
  EXPECT_EQ(summary.positive, 1u);
  EXPECT_EQ(summary.negative, 2u);
}

TEST(SummarizeTest, EmptySet) {
  VoteSetSummary summary = Summarize({});
  EXPECT_EQ(summary.positive, 0u);
  EXPECT_EQ(summary.negative, 0u);
}

}  // namespace
}  // namespace kgov::votes
