// Tests for the deterministic schedule explorer (common/sched.h): the
// exhaustive bounded-preemption enumeration, racy-invariant detection
// with replayable tokens, modeled deadlock detection, the PCT fallback,
// and the ported concurrency invariants from the serving and streaming
// paths (single-flight exactly-one-propagation, ingest ack==logged under
// shed, DrainAllAndRun producer lockout, ThreadPool shutdown-vs-submit).

#include "common/sched.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "serve/single_flight.h"
#include "stream/ingest_queue.h"
#include "votes/vote.h"
#include "votes/vote_log.h"

namespace kgov {
namespace {

#if !defined(KGOV_LOCK_DEBUG)

TEST(SchedExplorer, SkippedWithoutLockDebug) {
  GTEST_SKIP() << "scheduler hooks compiled out (KGOV_LOCK_DEBUG=OFF)";
}

#else  // KGOV_LOCK_DEBUG

// Pulls the replay token out of a failure status message
// ("...; schedule token: x:0,1,0 (from p:abc)").
std::string ExtractToken(const Status& status) {
  const std::string text = status.ToString();
  const std::string marker = "schedule token: ";
  const size_t at = text.find(marker);
  if (at == std::string::npos) return "";
  size_t end = text.find(' ', at + marker.size());
  if (end == std::string::npos) end = text.size();
  return text.substr(at + marker.size(), end - at - marker.size());
}

TEST(SchedExplorer, ValidatesOptions) {
  sched::ExplorerOptions options;
  options.preemption_bound = -1;
  sched::Explorer explorer(options);
  Status status = explorer.Explore([] { return sched::Scenario{}; });
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("preemption_bound"), std::string::npos);
}

TEST(SchedExplorer, SingleThreadScenarioPasses) {
  sched::ExplorerOptions options;
  options.random_schedules = 2;
  sched::Explorer explorer(options);
  Status status = explorer.Explore([] {
    auto hits = std::make_shared<int>(0);
    sched::Scenario s;
    s.threads.push_back([hits] {
      sched::TestYield();
      ++*hits;
      sched::TestYield();
    });
    s.check = [hits]() -> Status {
      if (*hits != 1) return Status::Internal("hits != 1");
      return Status::OK();
    };
    return s;
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(explorer.GetStats().bound_exhausted);
  EXPECT_GE(explorer.GetStats().schedules_run, 1);
}

TEST(SchedExplorer, EnumerationIsDeterministic) {
  auto factory = [] {
    auto counter = std::make_shared<std::atomic<int>>(0);
    sched::Scenario s;
    for (int t = 0; t < 3; ++t) {
      s.threads.push_back([counter] {
        sched::TestYield();
        counter->fetch_add(1);
        sched::TestYield();
      });
    }
    s.check = [counter]() -> Status {
      return counter->load() == 3 ? Status::OK()
                                  : Status::Internal("lost increment");
    };
    return s;
  };

  sched::ExplorerOptions options;
  options.preemption_bound = 1;
  options.random_schedules = 4;
  sched::Explorer first(options);
  ASSERT_TRUE(first.Explore(factory).ok());
  sched::Explorer second(options);
  ASSERT_TRUE(second.Explore(factory).ok());
  EXPECT_EQ(first.GetStats().schedules_run, second.GetStats().schedules_run);
  EXPECT_EQ(first.GetStats().exhaustive_schedules,
            second.GetStats().exhaustive_schedules);
  EXPECT_EQ(first.GetStats().max_decision_points,
            second.GetStats().max_decision_points);
  EXPECT_TRUE(first.GetStats().bound_exhausted);
}

// The classic lost update: read, yield, write-back. A sequential run
// never loses an increment; only a preemption between the read and the
// write does. The explorer must find it and hand back a replayable
// schedule token that reproduces it.
TEST(SchedExplorer, CatchesLostUpdateAndReplays) {
  auto factory = [] {
    auto value = std::make_shared<int>(0);
    sched::Scenario s;
    for (int t = 0; t < 2; ++t) {
      s.threads.push_back([value] {
        const int read = *value;
        sched::TestYield();
        *value = read + 1;
      });
    }
    s.check = [value]() -> Status {
      return *value == 2 ? Status::OK()
                         : Status::Internal("lost update: value = " +
                                            std::to_string(*value));
    };
    return s;
  };

  sched::ExplorerOptions options;
  options.preemption_bound = 2;
  sched::Explorer explorer(options);
  Status status = explorer.Explore(factory);
  ASSERT_FALSE(status.ok()) << "the lost update was not found";
  EXPECT_NE(status.ToString().find("lost update"), std::string::npos)
      << status.ToString();

  const std::string token = ExtractToken(status);
  ASSERT_FALSE(token.empty()) << status.ToString();
  ASSERT_EQ(token.rfind("x:", 0), 0u) << token;

  // The token replays the exact interleaving, so the same invariant
  // fails again - this is the debugging loop the explorer promises.
  sched::Explorer replayer(options);
  Status replay = replayer.Replay(token, factory);
  ASSERT_FALSE(replay.ok());
  EXPECT_NE(replay.ToString().find("lost update"), std::string::npos)
      << replay.ToString();
}

TEST(SchedExplorer, SequentialScheduleMasksTheSameBug) {
  // Control for the test above: the default (no-preemption) schedule
  // alone does NOT expose the lost update - that is why exploration
  // exists at all.
  auto factory = [] {
    auto value = std::make_shared<int>(0);
    sched::Scenario s;
    for (int t = 0; t < 2; ++t) {
      s.threads.push_back([value] {
        const int read = *value;
        sched::TestYield();
        *value = read + 1;
      });
    }
    s.check = [value]() -> Status {
      return *value == 2 ? Status::OK() : Status::Internal("lost update");
    };
    return s;
  };
  sched::Explorer explorer;
  EXPECT_TRUE(explorer.Replay("x:", factory).ok());
}

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
TEST(SchedExplorer, DISABLED_DeadlockIsDetectedAndReported) {
#else
// A modeled deadlock abandons its threads and scenario state (leaked by
// design, see sched.h) - the test is skipped under leak-checking
// sanitizers.
TEST(SchedExplorer, DeadlockIsDetectedAndReported) {
#endif
  auto factory = [] {
    auto a = std::make_shared<Mutex>();
    auto b = std::make_shared<Mutex>();
    sched::Scenario s;
    s.threads.push_back([a, b] {
      MutexLock hold_a(*a);
      MutexLock hold_b(*b);
    });
    s.threads.push_back([a, b] {
      MutexLock hold_b(*b);
      MutexLock hold_a(*a);
    });
    s.check = [] { return Status::OK(); };
    return s;
  };

  sched::ExplorerOptions options;
  options.preemption_bound = 2;
  options.random_schedules = 0;
  sched::Explorer explorer(options);
  Status status = explorer.Explore(factory);
  ASSERT_FALSE(status.ok()) << "AB-BA deadlock was not produced";
  EXPECT_NE(status.ToString().find("deadlock"), std::string::npos)
      << status.ToString();
  EXPECT_FALSE(ExtractToken(status).empty()) << status.ToString();
}

TEST(SchedExplorer, PctPhaseIsDeterministicPerSeed) {
  auto factory = [] {
    auto counter = std::make_shared<std::atomic<int>>(0);
    sched::Scenario s;
    for (int t = 0; t < 2; ++t) {
      s.threads.push_back([counter] {
        sched::TestYield();
        counter->fetch_add(1);
      });
    }
    s.check = [counter]() -> Status {
      return counter->load() == 2 ? Status::OK() : Status::Internal("lost");
    };
    return s;
  };
  sched::ExplorerOptions options;
  options.seed = 1234;
  options.random_schedules = 8;
  sched::Explorer first(options);
  ASSERT_TRUE(first.Explore(factory).ok());
  sched::Explorer second(options);
  ASSERT_TRUE(second.Explore(factory).ok());
  EXPECT_EQ(first.GetStats().random_schedules, 8);
  EXPECT_EQ(first.GetStats().schedules_run, second.GetStats().schedules_run);
}

// ---------------------------------------------------------------------------
// Ported invariants from the serving / streaming paths.
// ---------------------------------------------------------------------------

// Single-flight: for one flight key, exactly one of the concurrent
// misses leads (runs the propagation); the follower receives the
// leader's published result rather than recomputing. A request pinned to
// the next epoch uses a different flight key and must lead its own
// flight - never observe the old epoch's result.
TEST(SchedExplorer, SingleFlightExactlyOnePropagationAcrossEpochSwap) {
  struct State {
    serve::SingleFlightGroup group;
    std::atomic<int> propagations_old{0};
    std::atomic<int> propagations_new{0};
    std::atomic<int> follower_published{0};
    std::atomic<int> follower_timeouts{0};
  };
  auto factory = [] {
    auto st = std::make_shared<State>();
    const std::string old_key = serve::EncodeFlightKey("seed", 7, false);
    const std::string new_key = serve::EncodeFlightKey("seed", 8, false);

    auto miss = [st](const std::string& key, std::atomic<int>* propagations) {
      serve::SingleFlightGroup::JoinOutcome outcome = st->group.JoinOrLead(key);
      if (outcome.token != nullptr) {
        sched::TestYield();  // the propagation "runs" here
        propagations->fetch_add(1);
        outcome.token->Complete(Status::OK(), {});
        return;
      }
      serve::SingleFlightGroup::WaitResult result =
          serve::SingleFlightGroup::Wait(outcome.flight,
                                         std::chrono::seconds(30));
      if (result.published) {
        st->follower_published.fetch_add(1);
      } else {
        st->follower_timeouts.fetch_add(1);
        propagations->fetch_add(1);  // detached follower recomputes
      }
    };

    sched::Scenario s;
    s.threads.push_back([=] { miss(old_key, &st->propagations_old); });
    s.threads.push_back([=] { miss(old_key, &st->propagations_old); });
    // The epoch-swapped request: same seed, new pin, separate flight.
    s.threads.push_back([=] { miss(new_key, &st->propagations_new); });
    s.check = [st]() -> Status {
      // Every old-key miss either ran the propagation itself or received
      // a leader's published result - and never both. Schedules where the
      // two misses are disjoint in time legitimately propagate twice (a
      // resolved flight retires from the table); what may NOT happen is a
      // follower that joined a live flight recomputing, timing out under
      // the model, or walking away with nothing.
      if (st->propagations_old.load() + st->follower_published.load() != 2) {
        return Status::Internal(
            "old-epoch misses: " + std::to_string(st->propagations_old.load()) +
            " propagations + " + std::to_string(st->follower_published.load()) +
            " published follower results != 2 misses");
      }
      if (st->follower_timeouts.load() != 0) {
        return Status::Internal("a follower timed out under the model");
      }
      // The epoch-swapped miss shares no flight: it always propagates
      // under its own pin, exactly once.
      if (st->propagations_new.load() != 1) {
        return Status::Internal(
            "expected exactly one propagation for the new-epoch key, got " +
            std::to_string(st->propagations_new.load()));
      }
      if (st->group.InFlight() != 0) {
        return Status::Internal("unresolved flights left behind");
      }
      return Status::OK();
    };
    return s;
  };

  sched::ExplorerOptions options;
  options.preemption_bound = 2;
  options.max_schedules = 512;
  options.random_schedules = 8;
  sched::Explorer explorer(options);
  Status status = explorer.Explore(factory);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(explorer.GetStats().schedules_run, 1);
}

// Counts durable acknowledgments so ack==logged can be asserted exactly.
class CountingVoteLog final : public votes::VoteLogSink {
 public:
  Status AppendVote(const votes::Vote& /*vote*/) override {
    appended.fetch_add(1);
    return Status::OK();
  }
  Status AppendDeadLetter(const votes::Vote& /*vote*/) override {
    return Status::OK();
  }
  std::atomic<int> appended{0};
};

votes::Vote TestVote(uint32_t id) {
  votes::Vote vote;
  vote.id = id;
  vote.query.links.emplace_back(0, 1.0);
  vote.answer_list = {3, 4};
  vote.best_answer = 3;
  return vote;
}

// VoteIngestQueue under shed pressure: every Offer that returned OK was
// logged, every shed Offer was NOT - no interleaving may acknowledge a
// vote without its WAL append or log a vote that was then shed.
TEST(SchedExplorer, IngestQueueAckEqualsLoggedUnderShed) {
  struct State {
    CountingVoteLog log;
    std::unique_ptr<stream::VoteIngestQueue> queue;
    std::atomic<int> acked{0};
    std::atomic<int> shed{0};
    std::atomic<int> drained{0};
  };
  auto factory = [] {
    auto st = std::make_shared<State>();
    stream::VoteIngestQueueOptions options;
    options.capacity = 1;  // the second concurrent producer sheds
    options.block_when_full = false;
    st->queue = std::make_unique<stream::VoteIngestQueue>(options, &st->log,
                                                          nullptr);

    auto produce = [st](uint32_t id) {
      Status status = st->queue->Offer(TestVote(id));
      if (status.ok()) {
        st->acked.fetch_add(1);
      } else if (status.code() == StatusCode::kResourceExhausted) {
        st->shed.fetch_add(1);
      }
    };

    sched::Scenario s;
    s.threads.push_back([=] { produce(1); });
    s.threads.push_back([=] { produce(2); });
    s.threads.push_back([st] {
      auto drained = st->queue->DrainUpTo(8);
      if (drained.ok()) st->drained.fetch_add(drained.value().size());
      sched::TestYield();
      drained = st->queue->DrainUpTo(8);
      if (drained.ok()) st->drained.fetch_add(drained.value().size());
    });
    s.check = [st]() -> Status {
      if (st->acked.load() + st->shed.load() != 2) {
        return Status::Internal("a producer neither acked nor shed");
      }
      if (st->acked.load() != st->log.appended.load()) {
        return Status::Internal(
            "ack != logged: acked " + std::to_string(st->acked.load()) +
            ", logged " + std::to_string(st->log.appended.load()));
      }
      const int leftover = static_cast<int>(st->queue->size());
      if (st->drained.load() + leftover != st->acked.load()) {
        return Status::Internal("acknowledged votes went missing");
      }
      return Status::OK();
    };
    return s;
  };

  sched::ExplorerOptions options;
  options.preemption_bound = 2;
  options.max_schedules = 1024;
  options.random_schedules = 8;
  sched::Explorer explorer(options);
  Status status = explorer.Explore(factory);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(explorer.GetStats().schedules_run, 1);
}

// DrainAllAndRun holds the queue mutex across fn, and producer WAL
// appends nest under that same mutex - so every vote logged by the time
// fn runs is IN fn's drained batch. That lockout is what makes "logged
// implies visible to the checkpoint" sound: a checkpoint can never
// garbage-collect a WAL segment holding a vote it did not fold in.
TEST(SchedExplorer, DrainAllAndRunLocksProducersOut) {
  struct State {
    CountingVoteLog log;
    std::unique_ptr<stream::VoteIngestQueue> queue;
    std::atomic<int> acked{0};
    std::atomic<int> checkpoint_saw{0};
    std::atomic<bool> logged_vote_missing{false};
  };
  auto factory = [] {
    auto st = std::make_shared<State>();
    stream::VoteIngestQueueOptions options;
    options.capacity = 8;
    st->queue =
        std::make_unique<stream::VoteIngestQueue>(options, &st->log, nullptr);

    sched::Scenario s;
    s.threads.push_back([st] {
      for (uint32_t id = 1; id <= 2; ++id) {
        if (st->queue->Offer(TestVote(id)).ok()) st->acked.fetch_add(1);
      }
    });
    s.threads.push_back([st] {
      st->queue
          ->DrainAllAndRun([st](std::vector<votes::Vote> drained) {
            // Producers are locked out for the whole body: the logged
            // count is frozen and every logged vote must be in `drained`.
            // The yields invite a producer to sneak an append in - with
            // the lockout intact it can only block on the queue mutex.
            sched::TestYield();
            sched::TestYield();
            if (static_cast<int>(drained.size()) != st->log.appended.load()) {
              st->logged_vote_missing.store(true);
            }
            st->checkpoint_saw.fetch_add(static_cast<int>(drained.size()));
            return Status::OK();
          })
          .IgnoreError();
    });
    s.check = [st]() -> Status {
      if (st->logged_vote_missing.load()) {
        return Status::Internal(
            "a logged vote was invisible to the checkpoint drain");
      }
      const int leftover = static_cast<int>(st->queue->size());
      if (st->checkpoint_saw.load() + leftover != st->acked.load()) {
        return Status::Internal("acknowledged votes went missing");
      }
      return Status::OK();
    };
    return s;
  };

  sched::ExplorerOptions options;
  options.preemption_bound = 2;
  options.max_schedules = 1024;
  options.random_schedules = 8;
  sched::Explorer explorer(options);
  Status status = explorer.Explore(factory);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(explorer.GetStats().schedules_run, 1);
}

// ThreadPool shutdown vs submit: a task that re-submits work while the
// pool's destructor is draining gets its child run to completion -
// either via the drain or inline on the submitter - and never a dropped
// task or a broken future. Workers are free (unregistered) threads, so
// the scenario is impure.
TEST(SchedExplorer, ThreadPoolShutdownVsSubmitNeverDropsTasks) {
  struct State {
    std::atomic<int> parent_value{0};
    std::atomic<int> child_value{0};
    std::atomic<bool> futures_ready{false};
  };
  auto factory = [] {
    auto st = std::make_shared<State>();
    sched::Scenario s;
    s.threads.push_back([st] {
      auto pool = std::make_unique<ThreadPool>(1);
      ThreadPool* raw = pool.get();
      std::future<int> child;
      auto parent = raw->Submit([raw, &child]() {
        // Runs on the worker, racing the destructor below: the re-submit
        // must observe shutdown (inline) or win the enqueue (drained).
        child = raw->Submit([] { return 17; });
        return 4;
      });
      sched::TestYield();
      pool.reset();  // shutdown drains; join returns only when idle
      st->parent_value.store(parent.get());
      st->child_value.store(child.get());
      st->futures_ready.store(true);
    });
    s.check = [st]() -> Status {
      if (!st->futures_ready.load()) {
        return Status::Internal("futures never became ready");
      }
      if (st->parent_value.load() != 4 || st->child_value.load() != 17) {
        return Status::Internal("a submitted task was dropped");
      }
      return Status::OK();
    };
    return s;
  };

  sched::ExplorerOptions options;
  options.pure = false;  // pool workers are free threads
  options.preemption_bound = 1;
  options.random_schedules = 4;
  sched::Explorer explorer(options);
  Status status = explorer.Explore(factory);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

#endif  // KGOV_LOCK_DEBUG

}  // namespace
}  // namespace kgov
