// Structural validation of CSR views.
//
// A GraphView borrows raw arrays; nothing in the type system stops a
// backing store from handing it inconsistent offsets, out-of-range
// targets, or a corrupted edge-id remap. ValidateCsr checks the
// structural invariants every read-side consumer assumes:
//
//  * offsets are monotone (begin(v) <= end(v)) and contiguous
//    (end(v) == begin(v+1)), with the neighbor total matching NumEdges();
//  * every neighbor target is a valid node id of the view;
//  * every weight is finite and non-negative;
//  * when the view carries an edge-id table, the remap is injective (no
//    CSR slot aliases another slot's originating edge), so EdgeId-keyed
//    weight overrides cannot silently hit two slots.
//
// Row order is NOT checked: CsrSnapshot and InducedSubview preserve
// insertion order within a row by design (see graph/csr.h), and consumers
// iterate ranges rather than binary-searching them.
//
// Debug builds run ValidateCsr on every non-empty GraphView constructed
// from raw arrays (see the GraphView constructor); the check honors
// contracts::CheckMode, so soft-mode processes log-and-count instead of
// aborting. Release builds (NDEBUG) compile the hook out entirely.

#ifndef KGOV_GRAPH_VALIDATE_H_
#define KGOV_GRAPH_VALIDATE_H_

#include "common/status.h"
#include "graph/graph_view.h"

namespace kgov::graph {

/// Checks the CSR structural invariants above. Returns OK for the empty
/// view; otherwise Internal naming the first violated invariant and the
/// offending node/slot. Cost: O(nodes + edges) plus a hash set over the
/// edge-id table when present.
Status ValidateCsr(const GraphView& view);

}  // namespace kgov::graph

#endif  // KGOV_GRAPH_VALIDATE_H_
