#include "math/gp_condensation.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "math/vector_ops.h"
#include "telemetry/metrics.h"
#include <string>

namespace kgov::math {


Status CondensationOptions::Validate() const {
  if (max_outer_iterations < 1) {
    return Status::InvalidArgument(
        "CondensationOptions.max_outer_iterations must be >= 1, got " +
        std::to_string(max_outer_iterations));
  }
  if (!(outer_tolerance > 0.0) || !std::isfinite(outer_tolerance)) {
    return Status::InvalidArgument(
        "CondensationOptions.outer_tolerance must be finite and > 0, got " +
        std::to_string(outer_tolerance));
  }
  if (!(strict_margin > 0.0) || !std::isfinite(strict_margin)) {
    return Status::InvalidArgument(
        "CondensationOptions.strict_margin must be finite and > 0, got " +
        std::to_string(strict_margin));
  }
  KGOV_RETURN_IF_ERROR(inner.Validate());
  return auglag.Validate();
}

namespace {

// One posynomial term in log space: value(y) = log_coef + m . y.
struct LogTerm {
  double log_coef = 0.0;
  std::vector<std::pair<VarId, double>> powers;

  double Eval(const std::vector<double>& y) const {
    double v = log_coef;
    for (const auto& [var, exp] : powers) v += exp * y[var];
    return v;
  }
};

// Constraint logsumexp_j(p_j(y)) - (c_q + a_q . y) + shift <= 0: the
// condensed GP constraint in log space. Convex and smooth.
class LogGpConstraint : public DifferentiableFunction {
 public:
  LogGpConstraint(std::vector<LogTerm> p_terms, double c_q,
                  std::vector<double> a_q, double shift)
      : p_terms_(std::move(p_terms)),
        c_q_(c_q),
        a_q_(std::move(a_q)),
        shift_(shift) {}

  double Evaluate(const std::vector<double>& y,
                  std::vector<double>* grad) const override {
    // Max-shifted logsumexp over the numerator terms.
    double max_term = -std::numeric_limits<double>::infinity();
    values_.resize(p_terms_.size());
    for (size_t j = 0; j < p_terms_.size(); ++j) {
      values_[j] = p_terms_[j].Eval(y);
      max_term = std::max(max_term, values_[j]);
    }
    double sum = 0.0;
    for (double v : values_) sum += std::exp(v - max_term);
    double lse = max_term + std::log(sum);

    double affine = c_q_;
    for (size_t i = 0; i < a_q_.size(); ++i) affine += a_q_[i] * y[i];

    if (grad) {
      grad->assign(y.size(), 0.0);
      for (size_t j = 0; j < p_terms_.size(); ++j) {
        double softmax = std::exp(values_[j] - max_term) / sum;
        for (const auto& [var, exp] : p_terms_[j].powers) {
          (*grad)[var] += softmax * exp;
        }
      }
      for (size_t i = 0; i < a_q_.size(); ++i) {
        (*grad)[i] -= a_q_[i];
      }
    }
    return lse - affine + shift_;
  }

 private:
  std::vector<LogTerm> p_terms_;
  double c_q_;
  std::vector<double> a_q_;  // dense over all variables (incl. t)
  double shift_;
  mutable std::vector<double> values_;  // scratch
};

// Affine constraint c + a . y <= 0 (used for the ratio-proximal bounds).
class AffineConstraint : public DifferentiableFunction {
 public:
  AffineConstraint(double c, std::vector<std::pair<VarId, double>> terms)
      : c_(c), terms_(std::move(terms)) {}

  double Evaluate(const std::vector<double>& y,
                  std::vector<double>* grad) const override {
    if (grad) grad->assign(y.size(), 0.0);
    double v = c_;
    for (const auto& [var, coef] : terms_) {
      v += coef * y[var];
      if (grad) (*grad)[var] += coef;
    }
    return v;
  }

 private:
  double c_;
  std::vector<std::pair<VarId, double>> terms_;
};

// Minimize y_t: gradient is the unit vector on the t variable.
class LinearObjective : public DifferentiableFunction {
 public:
  explicit LinearObjective(VarId t_var) : t_var_(t_var) {}

  double Evaluate(const std::vector<double>& y,
                  std::vector<double>* grad) const override {
    if (grad) {
      grad->assign(y.size(), 0.0);
      (*grad)[t_var_] = 1.0;
    }
    return y[t_var_];
  }

 private:
  VarId t_var_;
};

}  // namespace

SgpSolution CondensationSgpSolver::Solve(const SgpProblem& problem) const {
  SgpSolution solution;
  solution.x = problem.initial();
  solution.total_constraints = static_cast<int>(problem.constraints().size());

  Status valid = problem.Validate();
  if (!valid.ok()) {
    solution.status = valid;
    return solution;
  }
  Status options_valid = options_.Validate();
  if (!options_valid.ok()) {
    solution.status = options_valid;
    return solution;
  }

  const size_t n = problem.num_variables();
  // GP requires strictly positive variables.
  std::vector<double> lo = problem.bounds().lower;
  std::vector<double> hi = problem.bounds().upper;
  for (size_t i = 0; i < n; ++i) {
    if (lo[i] <= 0.0) lo[i] = 1e-8;
    if (hi[i] <= lo[i]) {
      solution.status =
          Status::InvalidArgument("condensation requires positive box");
      return solution;
    }
  }

  // Split every constraint into posynomial parts P - Q.
  struct SplitConstraint {
    std::vector<Monomial> p;  // positive terms
    std::vector<Monomial> q;  // negated negative terms (positive coefs)
    bool trivial = false;     // no positive part: always satisfied
    bool impossible = false;  // no negative part: never satisfiable
  };
  std::vector<SplitConstraint> split;
  size_t impossible_count = 0;
  split.reserve(problem.constraints().size());
  for (const SgpConstraint& c : problem.constraints()) {
    SplitConstraint sc;
    for (const Monomial& term : c.g.terms()) {
      if (term.coefficient() > 0.0) {
        sc.p.push_back(term);
      } else if (term.coefficient() < 0.0) {
        sc.q.push_back(term.Scaled(-1.0));
      }
    }
    if (sc.p.empty()) {
      sc.trivial = true;
    } else if (sc.q.empty()) {
      // posynomial <= 0 cannot hold for positive x (e.g. the best answer's
      // walks were all pruned away). Drop it from the program - it stays
      // counted as unsatisfied - rather than abort the whole solve.
      sc.impossible = true;
      ++impossible_count;
    }
    split.push_back(std::move(sc));
  }
  if (impossible_count == split.size() && !split.empty()) {
    solution.status = Status::Infeasible(
        "every constraint lacks a negative part; nothing to optimize");
    return solution;
  }

  // Log-space variable layout: y_0..y_{n-1} edge logs, y_n = log t.
  const VarId t_var = static_cast<VarId>(n);
  BoxBounds log_bounds;
  log_bounds.lower.resize(n + 1);
  log_bounds.upper.resize(n + 1);
  double max_ratio = 1.0;
  for (size_t i = 0; i < n; ++i) {
    log_bounds.lower[i] = std::log(lo[i]);
    log_bounds.upper[i] = std::log(hi[i]);
    max_ratio = std::max(max_ratio, hi[i] / lo[i]);
  }
  log_bounds.lower[t_var] = 0.0;                       // t >= 1
  log_bounds.upper[t_var] = std::log(max_ratio) + 1.0;  // generous cap

  // Anchor (the x0 of the ratio objective) = the problem's anchor.
  std::vector<double> anchor = problem.anchor();
  for (size_t i = 0; i < n; ++i) {
    anchor[i] = std::clamp(anchor[i], lo[i], hi[i]);
  }

  // Current iterate in log space.
  std::vector<double> y(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    y[i] = std::log(std::clamp(solution.x[i], lo[i], hi[i]));
  }
  y[t_var] = 0.5;  // small positive slack to start

  LinearObjective objective(t_var);
  const double shift = std::log1p(options_.strict_margin);

  static telemetry::Counter* const solves_counter =
      telemetry::MetricRegistry::Global().GetCounter(
          "sgp.condensation.solves");
  static telemetry::Counter* const rounds_counter =
      telemetry::MetricRegistry::Global().GetCounter(
          "sgp.condensation.rounds");
  telemetry::ScopedSpan span("sgp.condensation");
  solves_counter->Increment();

  int total_iterations = 0;
  for (int outer = 0; outer < options_.max_outer_iterations; ++outer) {
    rounds_counter->Increment();
    // Build the condensed GP at the current iterate.
    std::vector<std::unique_ptr<DifferentiableFunction>> owned;
    std::vector<const DifferentiableFunction*> constraints;

    // Ratio-proximal constraints: y_i - log(anchor_i) - y_t <= 0 and
    // log(anchor_i) - y_i - y_t <= 0.
    for (size_t i = 0; i < n; ++i) {
      if (!problem.proximal_mask()[i]) continue;
      double la = std::log(anchor[i]);
      owned.push_back(std::make_unique<AffineConstraint>(
          -la, std::vector<std::pair<VarId, double>>{
                   {static_cast<VarId>(i), 1.0}, {t_var, -1.0}}));
      constraints.push_back(owned.back().get());
      owned.push_back(std::make_unique<AffineConstraint>(
          la, std::vector<std::pair<VarId, double>>{
                  {static_cast<VarId>(i), -1.0}, {t_var, -1.0}}));
      constraints.push_back(owned.back().get());
    }

    // Condensed vote constraints.
    std::vector<double> x_now(n);
    for (size_t i = 0; i < n; ++i) x_now[i] = std::exp(y[i]);
    for (const SplitConstraint& sc : split) {
      if (sc.trivial || sc.impossible) continue;
      // Condense Q at x_now.
      double q0 = 0.0;
      std::vector<double> u(sc.q.size());
      for (size_t k = 0; k < sc.q.size(); ++k) {
        u[k] = sc.q[k].Evaluate(x_now);
        q0 += u[k];
      }
      if (q0 <= 0.0) {
        // Denominator vanished at the iterate (e.g. a weight at the tiny
        // floor); nudge with uniform alphas.
        q0 = static_cast<double>(sc.q.size());
        std::fill(u.begin(), u.end(), 1.0);
      }
      double c_q = 0.0;
      std::vector<double> a_q(n + 1, 0.0);
      for (size_t k = 0; k < sc.q.size(); ++k) {
        double alpha = u[k] / q0;
        if (alpha <= 0.0) continue;
        c_q += alpha * (std::log(sc.q[k].coefficient()) - std::log(alpha));
        for (const auto& [var, exp] : sc.q[k].powers()) {
          a_q[var] += alpha * exp;
        }
      }
      std::vector<LogTerm> p_terms;
      p_terms.reserve(sc.p.size());
      for (const Monomial& term : sc.p) {
        LogTerm lt;
        lt.log_coef = std::log(term.coefficient());
        lt.powers.assign(term.powers().begin(), term.powers().end());
        p_terms.push_back(std::move(lt));
      }
      owned.push_back(std::make_unique<LogGpConstraint>(
          std::move(p_terms), c_q, std::move(a_q), shift));
      constraints.push_back(owned.back().get());
    }

    AugLagOptions auglag = options_.auglag;
    auglag.inner = options_.inner;
    auglag.inner_solver = InnerSolverKind::kLbfgs;
    AugmentedLagrangianSolver solver(auglag);
    SolveResult result = solver.Minimize(objective, constraints, y,
                                         log_bounds);
    total_iterations += result.iterations;

    double step = 0.0;
    for (size_t i = 0; i <= n; ++i) {
      step = std::max(step, std::fabs(result.x[i] - y[i]));
    }
    y = std::move(result.x);
    solution.converged = result.converged;
    solution.status = result.status;
    if (step < options_.outer_tolerance) break;
  }

  solution.x.resize(n);
  for (size_t i = 0; i < n; ++i) {
    solution.x[i] = std::exp(y[i]);
  }
  solution.objective = std::exp(y[t_var]);  // the max weight ratio t
  solution.iterations = total_iterations;
  solution.satisfied_constraints = 0;
  for (const SgpConstraint& c : problem.constraints()) {
    if (c.g.Evaluate(solution.x) <= 1e-9) ++solution.satisfied_constraints;
  }
  return solution;
}

}  // namespace kgov::math
