#include "graph/stats.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <vector>

namespace kgov::graph {

GraphStats ComputeGraphStats(const WeightedDigraph& graph) {
  GraphStats stats;
  stats.num_nodes = graph.NumNodes();
  stats.num_edges = graph.NumEdges();
  if (stats.num_nodes == 0) return stats;

  stats.average_out_degree =
      static_cast<double>(stats.num_edges) /
      static_cast<double>(stats.num_nodes);

  std::vector<char> has_in(graph.NumNodes(), 0);
  double weight_sum = 0.0;
  double min_w = std::numeric_limits<double>::infinity();
  double max_w = 0.0;
  for (const Edge& e : graph.edges()) {
    has_in[e.to] = 1;
    if (e.from == e.to) ++stats.self_loops;
    if (e.weight == 0.0) ++stats.zero_weight_edges;
    weight_sum += e.weight;
    min_w = std::min(min_w, e.weight);
    max_w = std::max(max_w, e.weight);
  }
  if (stats.num_edges > 0) {
    stats.min_weight = min_w;
    stats.max_weight = max_w;
    stats.mean_weight = weight_sum / static_cast<double>(stats.num_edges);
  }

  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    size_t degree = graph.OutDegree(v);
    stats.max_out_degree = std::max(stats.max_out_degree, degree);
    if (degree == 0) ++stats.dangling_nodes;
    if (!has_in[v]) ++stats.source_nodes;
    if (graph.OutWeightSum(v) > 1.0 + 1e-9) ++stats.super_stochastic_nodes;
  }
  return stats;
}

std::string GraphStats::ToString() const {
  std::ostringstream os;
  os << "nodes " << num_nodes << ", edges " << num_edges
     << ", avg out-degree " << average_out_degree << ", max out-degree "
     << max_out_degree << "\n";
  os << "dangling " << dangling_nodes << ", sources " << source_nodes
     << ", self-loops " << self_loops << ", zero-weight edges "
     << zero_weight_edges << "\n";
  os << "weights: min " << min_weight << ", mean " << mean_weight
     << ", max " << max_weight << "; super-stochastic nodes "
     << super_stochastic_nodes;
  return os.str();
}

}  // namespace kgov::graph
