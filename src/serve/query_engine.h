// serve::QueryEngine - the concurrent query-serving subsystem.
//
// Production deployments serve QA traffic continuously while the
// OnlineKgOptimizer folds vote batches into the graph. This engine is the
// read side of that loop:
//
//  * It pins a core::ServingEpoch (ref-counted CSR snapshot + epoch
//    number) and serves every query from that frozen view; an optimizer
//    flush never blocks or mutates an in-flight query.
//  * Queries fan out across a ThreadPool. Each worker owns a reusable
//    ppr::PropagationWorkspace, so steady-state serving performs no
//    per-query allocation (the workspace is addressed by
//    ThreadPool::CurrentWorkerIndex - no locks, no thread_local growth).
//  * Results are memoized in a delta-aware ShardedResultCache. A cache
//    hit is bitwise identical to the propagation it replaced. On epoch
//    swap the engine asks the optimizer for the changed-cluster delta
//    (stream::EpochDelta history) and drops only entries whose dependency
//    clusters intersect it - selective invalidation, the read-side half
//    of the streaming pipeline. When the delta is unavailable, disabled,
//    or larger than full_flush_threshold of the partition, it falls back
//    to the old wholesale flush.
//  * Before each query the engine probes
//    OnlineKgOptimizer::CurrentEpochNumber() (one acquire load) and
//    re-pins when the optimizer has published a newer epoch, so fresh
//    results appear promptly without polling threads.
//
// Telemetry (kgov_telemetry registry): serve.queries, serve.cache.hits /
// .misses / .evictions / .invalidations, serve.epoch_refreshes,
// serve.queue_depth (gauge), span.serve.query.seconds (end-to-end
// latency histogram), stream.invalidation.selective / .full (refresh
// counts by sweep kind). See docs/serving.md and docs/streaming.md.

#ifndef KGOV_SERVE_QUERY_ENGINE_H_
#define KGOV_SERVE_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/online_optimizer.h"
#include "ppr/eipd_engine.h"
#include "ppr/query_seed.h"
#include "ppr/ranking.h"
#include "serve/result_cache.h"
#include "stream/partition.h"

namespace kgov::serve {

struct QueryEngineOptions {
  /// Propagation settings used for every query.
  ppr::EipdOptions eipd;
  /// Answers returned per query.
  size_t top_k = 10;
  /// Serving worker threads.
  size_t num_threads = 4;
  /// Memoize per-seed rankings (delta-aware LRU). Disable to force every
  /// query through a fresh propagation (the cache-off baseline).
  bool enable_cache = true;
  /// Total cached seed rankings across all shards.
  size_t cache_capacity = 4096;
  /// Cache shard count (locks per shard; more shards = less contention).
  size_t cache_shards = 8;
  /// Invalidate selectively on epoch swap using the optimizer's published
  /// changed-cluster deltas. Disable to flush the whole cache on every
  /// swap (the pre-streaming behaviour, and the bench baseline).
  bool selective_invalidation = true;
  /// Fall back to a full flush when the changed-cluster set exceeds this
  /// fraction of the partition (a near-global change makes the selective
  /// sweep pointless bookkeeping). In (0, 1].
  double full_flush_threshold = 0.5;

  /// Checks every field range; returns InvalidArgument naming the first
  /// offending field. QueryEngine::Create fails fast with the result.
  Status Validate() const;
};

/// One served query result.
struct RankedAnswers {
  /// Top-k candidates by descending EIPD score (ties by node id).
  std::vector<ppr::ScoredAnswer> answers;
  /// Epoch the ranking was computed on.
  uint64_t epoch = 0;
  /// True when the ranking came out of the result cache.
  bool from_cache = false;
};

/// Concurrent query-serving engine over an OnlineKgOptimizer's published
/// epochs. Submit/SubmitBatch are safe to call from any number of threads;
/// the engine never blocks on an in-progress optimizer flush.
class QueryEngine {
 public:
  /// `source` and `candidates` are borrowed and must outlive the engine.
  /// `candidates` is the fixed answer-node universe ranked for every
  /// query (a QA system's answer documents). Fails fast on invalid
  /// options or null/empty inputs.
  static StatusOr<std::unique_ptr<QueryEngine>> Create(
      const core::OnlineKgOptimizer* source,
      const std::vector<graph::NodeId>* candidates,
      QueryEngineOptions options);

  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Serves one query: enqueues it on the worker pool and blocks until
  /// its ranking is ready. InvalidArgument when the seed does not fit the
  /// pinned epoch's view.
  StatusOr<RankedAnswers> Submit(const ppr::QuerySeed& seed);

  /// Serves a batch: all queries are enqueued up front (saturating the
  /// pool), then gathered in order. results[i] corresponds to seeds[i].
  std::vector<StatusOr<RankedAnswers>> SubmitBatch(
      const std::vector<ppr::QuerySeed>& seeds);

  /// The epoch queries are currently served from (pinned; may trail the
  /// optimizer's latest by at most one in-flight refresh).
  uint64_t PinnedEpochNumber() const KGOV_EXCLUDES(epoch_mu_);

  /// Cache counters since construction.
  ShardedResultCache::Stats CacheStats() const { return cache_.GetStats(); }

  const QueryEngineOptions& options() const { return options_; }

 private:
  QueryEngine(const core::OnlineKgOptimizer* source,
              const std::vector<graph::NodeId>* candidates,
              QueryEngineOptions options);

  /// Re-pins the serving epoch when the optimizer has published a newer
  /// one (cheap acquire-load probe; lock taken only on an actual swap),
  /// advancing the cache with the changed-cluster delta (or a full flush
  /// when no usable delta exists) BEFORE the new pin becomes visible.
  void MaybeRefreshEpoch() KGOV_EXCLUDES(epoch_mu_);

  /// The partition clusters `seed`'s ranking can depend on: the L-ball
  /// around its link nodes mapped through the streaming partition.
  std::vector<uint32_t> DependencyClusters(graph::GraphView view,
                                           const ppr::QuerySeed& seed) const;

  /// The worker-side body of one query.
  StatusOr<RankedAnswers> ServeOne(const ppr::QuerySeed& seed)
      KGOV_EXCLUDES(epoch_mu_);

  /// This worker's reusable workspace (falls back to the thread-local
  /// workspace for non-pool callers).
  ppr::PropagationWorkspace* WorkspaceForThisThread();

  const core::OnlineKgOptimizer* source_;
  const std::vector<graph::NodeId>* candidates_;
  QueryEngineOptions options_;
  /// The optimizer's fixed streaming partition (shared; never null).
  std::shared_ptr<const stream::GraphPartition> partition_;

  /// Pinned epoch; a shared (reader-writer) mutex so concurrent queries
  /// copy it without serializing on each other, while a refresh takes it
  /// exclusively.
  mutable SharedMutex epoch_mu_;
  core::ServingEpoch pinned_ KGOV_GUARDED_BY(epoch_mu_);

  ShardedResultCache cache_;
  std::vector<ppr::PropagationWorkspace> workspaces_;
  std::atomic<int64_t> queue_depth_{0};

  /// Declared last: destroyed first, so workers drain before the state
  /// they touch goes away.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace kgov::serve

#endif  // KGOV_SERVE_QUERY_ENGINE_H_
