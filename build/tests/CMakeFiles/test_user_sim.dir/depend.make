# Empty dependencies file for test_user_sim.
# This may be replaced when dependencies are built.
