// Subgraph utilities: BFS region selection, induced-subgraph extraction,
// and zero-copy induced sub-views. The synthetic vote workloads (paper
// SVII-A) link queries and answers into an Nnodes-node region of a larger
// graph; the split-and-merge optimizer verifies per-cluster solutions on
// induced sub-views of the parent CSR without materializing graph copies.

#ifndef KGOV_GRAPH_SUBGRAPH_H_
#define KGOV_GRAPH_SUBGRAPH_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"
#include "graph/graph_view.h"

namespace kgov::graph {

/// Collects up to `target` nodes by BFS over out-edges from random start
/// nodes (re-seeding on frontier exhaustion until the target is met or all
/// nodes are visited). Deterministic given `rng`.
std::vector<NodeId> SelectBfsRegion(const WeightedDigraph& graph,
                                    size_t target, Rng& rng);

/// Shared membership index over a node set: answers "is v in the set, and
/// which local id does it map to?" in O(1). This is the single hashing
/// step behind induced-subgraph extraction, internal-edge counting, and
/// sub-view construction.
class NodeSetIndex {
 public:
  /// Builds the index. Fails on duplicate entries or ids >= num_nodes.
  static Result<NodeSetIndex> Make(const std::vector<NodeId>& nodes,
                                   size_t num_nodes);

  size_t size() const { return to_original_.size(); }
  bool Contains(NodeId original) const {
    return original < local_of_.size() &&
           local_of_[original] != kInvalidNode;
  }
  /// Local id of `original`, or kInvalidNode when outside the set.
  NodeId LocalOf(NodeId original) const {
    return original < local_of_.size() ? local_of_[original] : kInvalidNode;
  }
  NodeId ToOriginal(NodeId local) const { return to_original_[local]; }
  const std::vector<NodeId>& nodes() const { return to_original_; }

 private:
  // local_of_[v] = local id of v, or kInvalidNode. Sized to the parent
  // graph so lookups are branch-plus-load (the sets are small relative to
  // the graphs they index).
  std::vector<NodeId> local_of_;
  std::vector<NodeId> to_original_;
};

/// The subgraph induced by `nodes`: a new graph whose node i corresponds
/// to nodes[i], containing exactly the edges with both endpoints in the
/// set (weights preserved).
struct InducedSubgraph {
  WeightedDigraph graph;
  /// node id in the induced graph -> node id in the original graph.
  std::vector<NodeId> to_original;
};

/// Extracts the induced subgraph (a copying WeightedDigraph build — prefer
/// InducedSubview for read-only work). Duplicate entries in `nodes` are an
/// error.
Result<InducedSubgraph> ExtractInducedSubgraph(
    const WeightedDigraph& graph, const std::vector<NodeId>& nodes);

/// Number of edges with both endpoints inside `nodes`.
size_t CountInternalEdges(const WeightedDigraph& graph,
                          const std::vector<NodeId>& nodes);

/// Zero-copy-ish induced sub-view over a parent GraphView: owns only the
/// small local CSR index arrays (offsets + renumbered targets), never a
/// WeightedDigraph; weights are read from the parent entries and edge ids
/// stay the *parent's* EdgeIds, so EdgeId-keyed overrides built against
/// the parent graph apply directly to the sub-view.
class InducedSubview {
 public:
  /// Builds the sub-view of `parent` induced by `nodes`. The parent view's
  /// backing storage must outlive the sub-view. Fails on duplicates or
  /// out-of-range ids.
  static Result<InducedSubview> Make(GraphView parent,
                                     const std::vector<NodeId>& nodes);

  /// The sub-view as a GraphView (nodes renumbered 0..size-1). Valid while
  /// this InducedSubview is alive; HasEdgeIds() mirrors the parent.
  GraphView view() const {
    if (index_.size() == 0) return GraphView{};
    return GraphView(index_.size(), offsets_.data(), neighbors_.data(),
                     edge_ids_.empty() ? nullptr : edge_ids_.data());
  }

  size_t NumNodes() const { return index_.size(); }
  NodeId ToParent(NodeId local) const { return index_.ToOriginal(local); }
  /// Local id of a parent node, or kInvalidNode when outside the set.
  NodeId LocalOf(NodeId parent) const { return index_.LocalOf(parent); }
  const NodeSetIndex& index() const { return index_; }

 private:
  NodeSetIndex index_;
  std::vector<size_t> offsets_;
  std::vector<GraphView::Neighbor> neighbors_;
  std::vector<EdgeId> edge_ids_;
};

/// Nodes reachable from `roots` within `depth` out-edge hops (the L-ball
/// that bounds a length-limited propagation), roots included, each node
/// once. Out-of-range roots are ignored.
std::vector<NodeId> CollectOutNeighborhood(GraphView view,
                                           const std::vector<NodeId>& roots,
                                           int depth);

}  // namespace kgov::graph

#endif  // KGOV_GRAPH_SUBGRAPH_H_
