// Plain-text persistence for corpora and question sets, so experiments can
// be generated once and replayed (and real corpora can be imported). Used
// by the kgov_cli tool.
//
// Corpus format (line-oriented, '#' comments allowed):
//   E <num_entities>
//   N <entity_id> <name>                          (optional, any number)
//   D <topic> <e>:<count> ... [| <e>:<count> ...] (one per document;
//                                                  entries after '|' are
//                                                  query-side mentions)
// Question format:
//   Q <best_document> <e>:<count> ... [R <doc> <doc> ...]

#ifndef KGOV_QA_CORPUS_IO_H_
#define KGOV_QA_CORPUS_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "qa/corpus.h"

namespace kgov::qa {

/// Writes `corpus` to `path`.
Status SaveCorpus(const Corpus& corpus, const std::string& path);

/// Reads a corpus written by SaveCorpus (or hand-authored in the format).
Result<Corpus> LoadCorpus(const std::string& path);

/// Writes `questions` to `path`.
Status SaveQuestions(const std::vector<Question>& questions,
                     const std::string& path);

/// Reads questions written by SaveQuestions.
Result<std::vector<Question>> LoadQuestions(const std::string& path);

}  // namespace kgov::qa

#endif  // KGOV_QA_CORPUS_IO_H_
