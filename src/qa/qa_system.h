// The knowledge-graph Q&A system (paper Fig. 1): link a question into the
// graph, evaluate extended-inverse-P-distance similarities, return ranked
// answers.
//
// Serving is snapshot-backed: a QaSystem evaluates on an immutable
// graph::GraphView (one EipdEngine, zero per-query allocation). Construct
// it either directly over a view whose backing storage you manage (the
// epoch-serving path, e.g. core::OnlineKgOptimizer::serving()), or from a
// WeightedDigraph, in which case the system freezes its own CSR snapshot
// at construction — later mutations of that graph are not visible until
// you build a new QaSystem.

#ifndef KGOV_QA_QA_SYSTEM_H_
#define KGOV_QA_QA_SYSTEM_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "ppr/eipd_engine.h"
#include "ppr/query_seed.h"
#include "qa/corpus.h"
#include "qa/kg_builder.h"

namespace kgov::qa {

/// Builds the query seed of a question: w(vq, vi) = #(q, vi) / sum_j
/// #(q, vj) over the question's entity mentions (paper SIII-A). Mentions of
/// entities outside [0, num_entities) are ignored.
ppr::QuerySeed LinkQuestion(const Question& question, size_t num_entities);

struct QaOptions {
  ppr::EipdOptions eipd;
  /// Length of the returned answer list.
  size_t top_k = 20;

  /// OK iff eipd validates and top_k >= 1; the message names the field.
  Status Validate() const;
};

/// A ranked document with its similarity score.
struct RankedDocument {
  int document = -1;
  double score = 0.0;
};

class QaSystem {
 public:
  /// Serves answers from `view`. The view's backing storage and
  /// `answer_nodes` are borrowed and must outlive the system.
  /// `answer_nodes[d]` must be document d's node.
  QaSystem(graph::GraphView view,
           const std::vector<graph::NodeId>* answer_nodes,
           size_t num_entities, QaOptions options = {});

  /// Compatibility: freezes a CSR snapshot of `graph` (typically a
  /// KnowledgeGraph's graph or an optimized copy) at construction and
  /// serves from it. Later mutations of `graph` are not visible.
  QaSystem(const graph::WeightedDigraph* graph,
           const std::vector<graph::NodeId>* answer_nodes,
           size_t num_entities, QaOptions options = {});

  const QaOptions& options() const { return options_; }

  /// Top-k documents for `question`, best first. Mentions of entities the
  /// graph does not know are ignored (a question with no known mentions
  /// yields an empty list); a malformed linked seed is InvalidArgument.
  StatusOr<std::vector<RankedDocument>> Answer(const Question& question) const;

  /// Top-k answer *nodes* for a pre-linked query. InvalidArgument when a
  /// seed link is malformed for the served view.
  StatusOr<std::vector<ppr::ScoredAnswer>> AnswerSeed(
      const ppr::QuerySeed& seed) const;

  /// Deprecated: use Answer(). Returns an empty list where Answer()
  /// returns an error.
  std::vector<RankedDocument> Ask(const Question& question) const;

  /// Deprecated: use AnswerSeed(). Returns an empty list where
  /// AnswerSeed() returns an error.
  std::vector<ppr::ScoredAnswer> AskSeed(const ppr::QuerySeed& seed) const;

 private:
  // Set only by the WeightedDigraph constructor; declared before engine_
  // so the view it backs is valid when engine_ initializes.
  std::shared_ptr<const graph::CsrSnapshot> owned_snapshot_;
  const std::vector<graph::NodeId>* answer_nodes_;
  size_t num_entities_;
  QaOptions options_;
  ppr::EipdEngine engine_;
};

}  // namespace kgov::qa

#endif  // KGOV_QA_QA_SYSTEM_H_
