// One entry point for graph acquisition: graph::LoadGraph(GraphSource).
//
// Before this existed every binary hand-rolled its own mix of
// LoadEdgeList / ErdosRenyi / GenerateFromProfile / snapshot-restore call
// sites. GraphSource is a validated Options-style description of where a
// graph comes from - an edge-list file, a named KONECT profile, a seeded
// generator, or a durability snapshot - and LoadGraph is the single
// switch that materializes it. CLI flags, bench configs, and scenario
// specs all funnel through the same struct, so a new acquisition kind is
// one enum value here instead of another scattered call-site family.
//
// Layering note: the snapshot branch pulls in kgov_durability, so this
// pair lives in its own CMake target (kgov_graph_source) above both
// kgov_graph and kgov_durability; the namespace stays kgov::graph.

#ifndef KGOV_GRAPH_SOURCE_H_
#define KGOV_GRAPH_SOURCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace kgov::graph {

/// Which acquisition path a GraphSource selects.
enum class GraphSourceKind {
  /// Text edge list via graph_io.h (the portable interchange format).
  kEdgeList,
  /// Synthetic stand-in for a named KONECT profile (ProfileNames()).
  kProfile,
  /// A seeded synthetic generator (GeneratorSpec).
  kGenerator,
  /// A binary durability snapshot (durability::MappedSnapshot).
  kSnapshot,
};

/// Which generator a GraphSourceKind::kGenerator source runs.
enum class GeneratorKind {
  /// ErdosRenyi(num_nodes, num_edges).
  kErdosRenyi,
  /// BarabasiAlbert(num_nodes, edges_per_node).
  kBarabasiAlbert,
  /// ScaleFreeWithTargetEdges(num_nodes, num_edges).
  kScaleFree,
  /// StreamingScaleFree(num_nodes, edges_per_node): the large-graph path
  /// (10^5-10^7 nodes, O(V + E) memory).
  kStreamingScaleFree,
};

/// Parameters of a synthetic generator run.
struct GeneratorSpec {
  GeneratorKind kind = GeneratorKind::kScaleFree;
  size_t num_nodes = 0;
  /// Exact edge target; kErdosRenyi and kScaleFree only.
  size_t num_edges = 0;
  /// Out-edges per node; kBarabasiAlbert and kStreamingScaleFree only.
  size_t edges_per_node = 0;
  WeightInit weight_init = WeightInit::kNormalizedRandom;
};

/// A validated description of where a graph comes from. Build one with
/// the named constructors, or fill fields directly (CLI/config paths) and
/// let LoadGraph's Validate() call name what is wrong.
struct GraphSource {
  GraphSourceKind kind = GraphSourceKind::kEdgeList;
  /// kEdgeList: path to a text edge list. kSnapshot: path to a binary
  /// snapshot file (durability::SnapshotFileName).
  std::string path;
  /// kEdgeList: weight assigned to lines without a weight column.
  double default_weight = 1.0;
  /// kProfile: one of ProfileNames().
  std::string profile;
  /// kProfile / kGenerator: RNG seed; same source + same seed => the same
  /// graph, bit for bit.
  uint64_t seed = 1;
  /// kGenerator only.
  GeneratorSpec generator;

  static GraphSource EdgeList(std::string path, double default_weight = 1.0);
  static GraphSource Profile(std::string name, uint64_t seed = 1);
  static GraphSource Generator(GeneratorSpec spec, uint64_t seed = 1);
  static GraphSource Snapshot(std::string path);

  /// OK iff the fields the selected kind reads are usable; the message
  /// names the offending field. Kinds ignore fields they do not read.
  Status Validate() const;

  /// Human-readable one-line description ("profile:gnutella seed=7").
  std::string ToString() const;
};

/// The registered profile names GraphSource::Profile accepts.
std::vector<std::string> ProfileNames();

/// Profile for `name` ("twitter", "digg", "gnutella", "taobao"), or
/// InvalidArgument listing the registered names.
StatusOr<GraphProfile> ProfileByName(const std::string& name);

/// THE graph acquisition entry point: validates `source` and materializes
/// it. Generator/profile sources construct a fresh Rng from source.seed,
/// so results are reproducible from the struct alone.
Result<WeightedDigraph> LoadGraph(const GraphSource& source);

}  // namespace kgov::graph

#endif  // KGOV_GRAPH_SOURCE_H_
