#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/contracts.h"
#include "math/stats.h"

namespace kgov::telemetry {

namespace {

// Relaxed-CAS accumulate / min / max for atomic<double>: exactness of the
// *count* is what the concurrency tests pin down; the sum converges to the
// true total because every CAS retries until its delta lands.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

// JSON number formatting: shortest form that round-trips doubles well
// enough for operational snapshots; NaN/Inf (which should never appear)
// degrade to 0 so the document stays parseable.
std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

const std::vector<double>& DefaultLatencyBuckets() {
  // 1us .. ~30s, roughly x2.15 per step: fine resolution where serving
  // latencies live, coarse at the solver end.
  static const std::vector<double> kBuckets = [] {
    std::vector<double> b;
    double v = 1e-6;
    while (v < 30.0) {
      b.push_back(v);
      v *= 2.15;
    }
    b.push_back(30.0);
    return b;
  }();
  return kBuckets;
}

Status HistogramOptions::Validate() const {
  for (double bound : bucket_bounds) {
    if (!std::isfinite(bound)) {
      return Status::InvalidArgument(
          "HistogramOptions.bucket_bounds must be finite");
    }
  }
  if (reservoir_capacity < 1) {
    return Status::InvalidArgument(
        "HistogramOptions.reservoir_capacity must be >= 1");
  }
  return Status::OK();
}

Histogram::Histogram(HistogramOptions options)
    : bounds_(std::move(options.bucket_bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()),
      reservoir_capacity_(std::max<size_t>(1, options.reservoir_capacity)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  reservoir_.reserve(std::min<size_t>(reservoir_capacity_, 1024));
}

void Histogram::Observe(double value) {
  // Bounds are inclusive upper edges ("le"): the first bound >= value is
  // the bucket; values above every bound land in the trailing overflow.
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
  {
    MutexLock lock(reservoir_mu_);
    if (reservoir_.size() < reservoir_capacity_) {
      reservoir_.push_back(value);
    } else {
      reservoir_[reservoir_next_] = value;
      reservoir_next_ = (reservoir_next_ + 1) % reservoir_capacity_;
    }
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bucket_bounds = bounds_;
  snap.bucket_counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.bucket_counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.mean = snap.count == 0 ? 0.0
                              : snap.sum / static_cast<double>(snap.count);
  snap.min = snap.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  snap.max = snap.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  std::vector<double> samples;
  {
    MutexLock lock(reservoir_mu_);
    samples = reservoir_;
  }
  if (!samples.empty()) {
    // One sort of one scratch copy serves all three percentiles.
    std::vector<double> ps =
        math::Percentiles(samples, {50.0, 95.0, 99.0});
    snap.p50 = ps[0];
    snap.p95 = ps[1];
    snap.p99 = ps[2];
  }
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  MutexLock lock(reservoir_mu_);
  reservoir_.clear();
  reservoir_next_ = 0;
}

namespace {

// Mirrors soft-mode contract violations (common/contracts.h) into the
// registry, so a canary process that downgrades KGOV_ASSERT to counting
// still pages through its normal metrics pipeline. Lock-order violations
// (the runtime deadlock detector, common/lock_rank.h) additionally feed
// their own counter: deadlock potential pages on a separate signal.
void CountContractViolation(const char* /*file*/, int /*line*/,
                            const char* /*expression*/,
                            contracts::ViolationKind kind) {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("contracts.soft_violations");
  counter->Increment();
  if (kind == contracts::ViolationKind::kLockOrder) {
    static Counter* lock_order =
        MetricRegistry::Global().GetCounter("contracts.lock_order_violations");
    lock_order->Increment();
  }
}

}  // namespace

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = [] {
    contracts::SetViolationHandler(&CountContractViolation);
    return new MetricRegistry();
  }();
  return *registry;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const HistogramOptions& options) {
  // A bad bucket layout is a programmer error at the registration site;
  // release builds still construct (the constructor sorts and dedupes).
  // Checked before taking mu_: the soft-mode violation handler feeds this
  // registry and must not re-enter the lock.
  KGOV_DCHECK_OK(options.Validate());
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(options);
  return slot.get();
}

void MetricRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricRegistry::SnapshotJson() const {
  MutexLock lock(mu_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": " << counter->Value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": " << JsonNum(gauge->Value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snap = histogram->Snapshot();
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": {\n"
        << "      \"count\": " << snap.count << ",\n"
        << "      \"sum\": " << JsonNum(snap.sum) << ",\n"
        << "      \"min\": " << JsonNum(snap.min) << ",\n"
        << "      \"max\": " << JsonNum(snap.max) << ",\n"
        << "      \"mean\": " << JsonNum(snap.mean) << ",\n"
        << "      \"p50\": " << JsonNum(snap.p50) << ",\n"
        << "      \"p95\": " << JsonNum(snap.p95) << ",\n"
        << "      \"p99\": " << JsonNum(snap.p99) << ",\n"
        << "      \"buckets\": [";
    std::string buckets;
    for (size_t i = 0; i < snap.bucket_counts.size(); ++i) {
      // Sparse: zero finite buckets are elided; the trailing +inf
      // overflow bucket always prints so parsers see the full range.
      const bool is_overflow = i + 1 == snap.bucket_counts.size();
      if (snap.bucket_counts[i] == 0 && !is_overflow) continue;
      if (!buckets.empty()) buckets += ",";
      buckets += "\n        {\"le\": ";
      buckets += i < snap.bucket_bounds.size()
                     ? JsonNum(snap.bucket_bounds[i])
                     : std::string("\"+inf\"");
      buckets += ", \"count\": " + std::to_string(snap.bucket_counts[i]) +
                 "}";
    }
    out << buckets << (buckets.empty() ? "" : "\n      ") << "]\n    }";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

Status MetricRegistry::WriteSnapshotJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot write telemetry snapshot to " + path);
  }
  out << SnapshotJson();
  if (!out.good()) {
    return Status::IoError("short write of telemetry snapshot to " + path);
  }
  return Status::OK();
}

}  // namespace kgov::telemetry
