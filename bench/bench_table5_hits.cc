// Table V: promotion of best answers in the top-k list (H@k).
//
// H@k = fraction of test questions whose best answer ranks <= k, for:
//   IR                      - entity-coincidence retrieval baseline,
//   Q&A proposed in [5]     - random-walk (PPR) knowledge-graph Q&A,
//   KG without optimization - extended inverse P-distance Q&A,
//   KG + single-vote        - after Algorithm 1,
//   KG + multi-vote         - after the multi-vote solution.
//
// Paper Table V (H@1/H@3/H@5/H@10):
//   IR 0.15/0.29/0.34/0.47; [5] 0.47/0.68/0.77/0.89; KG 0.49/0.69/0.79/0.90;
//   single 0.45/0.68/0.81/0.92; multi 0.53/0.77/0.87/0.94.
// Expected shape: KG methods >> IR; [5] ~ KG (PPR and EIPD are
// equivalent); multi-vote best across all k.

#include <cstdio>

#include "bench/bench_util.h"
#include "qa/baselines.h"
#include "qa/metrics.h"

namespace kgov {
namespace {

using Rankings = std::vector<std::vector<qa::RankedDocument>>;

qa::RankingMetrics HitsOf(const std::vector<qa::Question>& questions,
                          const Rankings& rankings) {
  return qa::EvaluateRankings(questions, rankings, {1, 3, 5, 10});
}

int Run() {
  bench::Banner("Table V: promotion of best answers in top-k list",
                "Table V (SVII-B)");

  Result<bench::TaobaoEnvironment> setup =
      bench::MakeTaobaoEnvironment(1.0, /*seed=*/7101);
  if (!setup.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 setup.status().ToString().c_str());
    return 1;
  }
  bench::TaobaoEnvironment& t = *setup;
  const std::vector<qa::Question>& questions = t.env.test_questions;

  core::KgOptimizer optimizer(&t.env.deployed.graph, t.optimizer_options);
  Result<core::OptimizeReport> single =
      optimizer.SingleVoteSolve(t.env.votes);
  Result<core::OptimizeReport> multi = optimizer.MultiVoteSolve(t.env.votes);
  if (!single.ok() || !multi.ok()) {
    std::fprintf(stderr, "optimization failed\n");
    return 1;
  }

  // IR baseline.
  qa::IrBaseline ir(&t.env.corpus);
  Rankings ir_rankings;
  for (const qa::Question& q : questions) {
    ir_rankings.push_back(ir.Ask(q, t.sim_params.qa.top_k));
  }

  // Random-walk Q&A of [5] (fast path: identical scores to per-answer
  // solving; Table VI measures the cost difference).
  qa::RandomWalkQa rw(&t.env.deployed.graph, &t.env.deployed.answer_nodes,
                      t.env.deployed.num_entities, {},
                      t.sim_params.qa.top_k);
  Rankings rw_rankings;
  for (const qa::Question& q : questions) {
    rw_rankings.push_back(rw.AskFast(q));
  }

  auto kg_rankings = [&](const graph::WeightedDigraph& g) {
    qa::QaSystem system(&g, &t.env.deployed.answer_nodes,
                        t.env.deployed.num_entities, t.sim_params.qa);
    Rankings rankings;
    for (const qa::Question& q : questions) {
      rankings.push_back(system.Ask(q));
    }
    return rankings;
  };

  qa::RankingMetrics m_ir = HitsOf(questions, ir_rankings);
  qa::RankingMetrics m_rw = HitsOf(questions, rw_rankings);
  qa::RankingMetrics m_kg =
      HitsOf(questions, kg_rankings(t.env.deployed.graph));
  qa::RankingMetrics m_single =
      HitsOf(questions, kg_rankings(single->optimized));
  qa::RankingMetrics m_multi =
      HitsOf(questions, kg_rankings(multi->optimized));

  bench::TablePrinter table({"Method", "H@1", "H@3", "H@5", "H@10"},
                            {34, 6, 6, 6, 6});
  table.PrintHeader();
  auto row = [&](const std::string& name, const qa::RankingMetrics& m) {
    table.PrintRow({name, bench::Num(m.hits_at[0]), bench::Num(m.hits_at[1]),
                    bench::Num(m.hits_at[2]), bench::Num(m.hits_at[3])});
  };
  row("IR", m_ir);
  row("Q&A proposed in [5]", m_rw);
  row("KG without optimization", m_kg);
  row("KG optimized by single-vote", m_single);
  row("KG optimized by multi-vote", m_multi);

  std::printf(
      "\nPaper Table V: IR 0.15/0.29/0.34/0.47; [5] 0.47/0.68/0.77/0.89;\n"
      "KG 0.49/0.69/0.79/0.90; single 0.45/0.68/0.81/0.92; multi "
      "0.53/0.77/0.87/0.94\n");
  return 0;
}

}  // namespace
}  // namespace kgov

int main() { return kgov::Run(); }
