
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/gp_condensation.cc" "src/math/CMakeFiles/kgov_math.dir/gp_condensation.cc.o" "gcc" "src/math/CMakeFiles/kgov_math.dir/gp_condensation.cc.o.d"
  "/root/repo/src/math/monomial.cc" "src/math/CMakeFiles/kgov_math.dir/monomial.cc.o" "gcc" "src/math/CMakeFiles/kgov_math.dir/monomial.cc.o.d"
  "/root/repo/src/math/optimizer.cc" "src/math/CMakeFiles/kgov_math.dir/optimizer.cc.o" "gcc" "src/math/CMakeFiles/kgov_math.dir/optimizer.cc.o.d"
  "/root/repo/src/math/sgp_problem.cc" "src/math/CMakeFiles/kgov_math.dir/sgp_problem.cc.o" "gcc" "src/math/CMakeFiles/kgov_math.dir/sgp_problem.cc.o.d"
  "/root/repo/src/math/sgp_solver.cc" "src/math/CMakeFiles/kgov_math.dir/sgp_solver.cc.o" "gcc" "src/math/CMakeFiles/kgov_math.dir/sgp_solver.cc.o.d"
  "/root/repo/src/math/sigmoid.cc" "src/math/CMakeFiles/kgov_math.dir/sigmoid.cc.o" "gcc" "src/math/CMakeFiles/kgov_math.dir/sigmoid.cc.o.d"
  "/root/repo/src/math/signomial.cc" "src/math/CMakeFiles/kgov_math.dir/signomial.cc.o" "gcc" "src/math/CMakeFiles/kgov_math.dir/signomial.cc.o.d"
  "/root/repo/src/math/stats.cc" "src/math/CMakeFiles/kgov_math.dir/stats.cc.o" "gcc" "src/math/CMakeFiles/kgov_math.dir/stats.cc.o.d"
  "/root/repo/src/math/vector_ops.cc" "src/math/CMakeFiles/kgov_math.dir/vector_ops.cc.o" "gcc" "src/math/CMakeFiles/kgov_math.dir/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kgov_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
