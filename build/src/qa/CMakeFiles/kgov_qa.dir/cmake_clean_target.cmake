file(REMOVE_RECURSE
  "libkgov_qa.a"
)
