file(REMOVE_RECURSE
  "CMakeFiles/test_votes_io.dir/test_votes_io.cc.o"
  "CMakeFiles/test_votes_io.dir/test_votes_io.cc.o.d"
  "test_votes_io"
  "test_votes_io.pdb"
  "test_votes_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_votes_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
