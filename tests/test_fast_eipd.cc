#include "ppr/fast_eipd.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "graph/generators.h"
#include "ppr/eipd.h"

namespace kgov::ppr {
namespace {

using graph::CsrSnapshot;
using graph::WeightedDigraph;

// Core property: the snapshot evaluator reproduces the mutable evaluator
// exactly on arbitrary graphs, seeds, and lengths.
class FastEipdEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FastEipdEquivalence, MatchesMutableEvaluator) {
  Rng rng(GetParam());
  Result<WeightedDigraph> g = graph::ErdosRenyi(40, 200, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);

  for (int length : {1, 3, 5, 8}) {
    EipdOptions options;
    options.max_length = length;
    EipdEvaluator slow(&*g, options);
    FastEipdEvaluator fast(&snap, options);

    QuerySeed seed = QuerySeed::FromNode(*g, static_cast<graph::NodeId>(
                                                  rng.NextIndex(40)));
    if (seed.empty()) continue;
    for (graph::NodeId v = 0; v < 40; v += 7) {
      EXPECT_NEAR(fast.Similarity(seed, v), slow.Similarity(seed, v), 1e-14);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastEipdEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(FastEipdTest, SimilarityManyMatches) {
  Rng rng(9);
  Result<WeightedDigraph> g = graph::ErdosRenyi(25, 100, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);
  EipdEvaluator slow(&*g);
  FastEipdEvaluator fast(&snap);
  QuerySeed seed = QuerySeed::FromNode(*g, 0);
  if (seed.empty()) GTEST_SKIP();
  std::vector<graph::NodeId> targets{1, 5, 9, 13};
  std::vector<double> a = slow.SimilarityMany(seed, targets);
  std::vector<double> b = fast.SimilarityMany(seed, targets);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-14);
  }
}

TEST(FastEipdTest, RankAnswersMatches) {
  Rng rng(10);
  Result<WeightedDigraph> g = graph::ErdosRenyi(25, 100, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);
  EipdEvaluator slow(&*g);
  FastEipdEvaluator fast(&snap);
  QuerySeed seed = QuerySeed::FromNode(*g, 0);
  if (seed.empty()) GTEST_SKIP();
  std::vector<graph::NodeId> targets{1, 5, 9, 13, 17, 21};
  auto a = slow.RankAnswers(seed, targets, 4);
  auto b = fast.RankAnswers(seed, targets, 4);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_NEAR(a[i].score, b[i].score, 1e-14);
  }
}

TEST(FastEipdTest, OverridesMatchMutableEvaluator) {
  // The unified engine gives the snapshot path override support; it must
  // agree with the live evaluator's override semantics exactly.
  Rng rng(11);
  Result<WeightedDigraph> g = graph::ErdosRenyi(25, 100, rng);
  ASSERT_TRUE(g.ok());
  CsrSnapshot snap(*g);
  EipdEvaluator slow(&*g);
  FastEipdEvaluator fast(&snap);
  QuerySeed seed = QuerySeed::FromNode(*g, 0);
  if (seed.empty()) GTEST_SKIP();
  std::unordered_map<graph::EdgeId, double> overrides;
  for (graph::EdgeId e = 0; e < g->NumEdges(); e += 3) {
    overrides[e] = (e % 2 == 0) ? 0.0 : 1.0;
  }
  std::vector<graph::NodeId> targets{1, 5, 9, 13};
  std::vector<double> a = slow.SimilarityManyWithOverrides(seed, targets,
                                                           overrides);
  std::vector<double> b = fast.SimilarityManyWithOverrides(seed, targets,
                                                           overrides);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-14);
  }
}

TEST(FastEipdTest, SnapshotServesWhileGraphEvolves) {
  // The serving pattern: freeze, mutate the live graph, keep serving old
  // scores until the next freeze.
  WeightedDigraph g(3);
  graph::EdgeId e01 = *g.AddEdge(0, 1, 0.5);
  ASSERT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  CsrSnapshot before(g);
  FastEipdEvaluator fast(&before);
  QuerySeed seed;
  seed.links.emplace_back(0, 1.0);
  double score_before = fast.Similarity(seed, 1);

  g.SetWeight(e01, 0.05);
  EXPECT_DOUBLE_EQ(fast.Similarity(seed, 1), score_before);

  CsrSnapshot after(g);
  FastEipdEvaluator fast_after(&after);
  EXPECT_LT(fast_after.Similarity(seed, 1), score_before);
}

}  // namespace
}  // namespace kgov::ppr
