// Encoding user votes as SGP constraint functions (paper SIV-B, SV).
//
// For a negative vote with best answer a*, every other listed answer a
// yields the constraint S(vq, a) - S(vq, a*) < 0 (Eq. 11); for a positive
// vote the top answer a1 plays the role of a* (Eq. 13). The similarities
// are symbolic extended inverse P-distances over the edge-weight variables
// (signomials), so each vote contributes k-1 signomial constraints.

#ifndef KGOV_VOTES_VOTE_ENCODER_H_
#define KGOV_VOTES_VOTE_ENCODER_H_

#include <functional>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "math/sgp_problem.h"
#include "ppr/edge_vars.h"
#include "ppr/symbolic_eipd.h"
#include "votes/vote.h"

namespace kgov::votes {

struct EncoderOptions {
  ppr::SymbolicEipdOptions symbolic;
  /// Decides which edges are optimization variables (null = all edges).
  ppr::SymbolicEipd::VariablePredicate is_variable;
  /// Box bounds for edge-weight variables (paper Eq. 2: 0 < xl <= x <= xu).
  double weight_lower_bound = 1e-4;
  double weight_upper_bound = 1.0;
  /// Exclude edges that are their source node's only out-edge from the
  /// variable set. Such a weight is normalization-invariant (Alg. 1's
  /// NormalizeEdges rescales it straight back to 1), so letting the solver
  /// spend slack on it silently undoes the optimization.
  bool skip_degree_one_sources = true;

  /// Checks this struct and the nested SymbolicEipdOptions (positive box
  /// bounds with lower <= upper, per paper Eq. 2).
  Status Validate() const;
};

/// An encoded program plus the edge<->variable mapping needed to write the
/// solution back into the graph.
struct EncodedProgram {
  math::SgpProblem problem;
  ppr::EdgeVariableMap variables;
  /// Edges associated with each encoded vote, E(t) in Eq. 20 (union of
  /// path edges over the vote's answer list), aligned with the encoded
  /// votes' order.
  std::vector<std::unordered_set<graph::EdgeId>> vote_edges;
  /// Ids of the votes actually encoded (well-formed ones), in order.
  std::vector<uint32_t> encoded_vote_ids;
};

class VoteEncoder {
 public:
  /// `graph` is borrowed and must outlive the encoder.
  VoteEncoder(const graph::WeightedDigraph* graph, EncoderOptions options);

  /// Encodes a single negative vote (the single-vote solution considers
  /// only negative votes, SIV-B). Fails on malformed or positive votes.
  Result<EncodedProgram> EncodeSingle(const Vote& vote) const;

  /// Encodes a batch of votes (negative and positive) into one program
  /// (SV). Malformed votes are skipped.
  Result<EncodedProgram> EncodeBatch(const std::vector<Vote>& votes) const;

  /// Returns E(t): the union of edges on contributing walks from the
  /// vote's query to any of its listed answers. Used for vote similarity
  /// (Eq. 20) without building a full program.
  std::unordered_set<graph::EdgeId> AssociatedEdges(const Vote& vote) const;

 private:
  /// The user predicate composed with the degree-1 exclusion.
  ppr::SymbolicEipd::VariablePredicate EffectivePredicate() const;

  const graph::WeightedDigraph* graph_;
  EncoderOptions options_;
};

}  // namespace kgov::votes

#endif  // KGOV_VOTES_VOTE_ENCODER_H_
