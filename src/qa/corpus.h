// Synthetic help-desk corpus (substitute for the paper's Taobao
// customer-service dataset; see DESIGN.md SS1).
//
// The paper only consumes its corpus through (a) the co-occurrence
// statistics that define the knowledge graph (SIII-A) and (b) entity
// mentions linking questions to the graph. The generator reproduces those:
// a topic-structured entity vocabulary, documents that mention mostly
// within-topic entities, and questions that paraphrase a target document's
// entity set. The target document is the ground-truth best answer (the
// paper's expert label).

#ifndef KGOV_QA_CORPUS_H_
#define KGOV_QA_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace kgov::qa {

using EntityId = uint32_t;

/// One entity occurring `count` times in a document or question.
struct EntityMention {
  EntityId entity = 0;
  int count = 1;
};

/// A HELP document (an answer candidate).
struct Document {
  /// Entities occurring in the document text (drive answer links).
  std::vector<EntityMention> mentions;
  /// Query-side entities from historical questions answered by this
  /// document. They model the lexical gap: users' words ("parcel") differ
  /// from document words ("package"). They contribute co-occurrence
  /// edges to the knowledge graph but no answer links.
  std::vector<EntityMention> query_mentions;
  int topic = -1;
};

/// A user question with its expert ground truth.
struct Question {
  std::vector<EntityMention> mentions;
  /// Index of the best document (expert label); -1 when unlabeled.
  int best_document = -1;
  /// Graded relevance set (includes best_document) used for MAP.
  std::vector<int> relevant_documents;
};

struct Corpus {
  size_t num_entities = 0;
  /// Synthetic entity names ("topic3_entity17"), for Table III-style output.
  std::vector<std::string> entity_names;
  std::vector<Document> documents;
};

struct CorpusParams {
  size_t num_entities = 600;
  size_t num_topics = 30;
  size_t num_documents = 500;
  /// Distinct entities mentioned per document.
  size_t mentions_per_document = 10;
  /// Distinct entities mentioned per question.
  size_t mentions_per_question = 4;
  /// Probability that a mention is drawn from a foreign topic.
  double cross_topic_noise = 0.15;
  /// Mention counts are uniform in [1, max_mention_count].
  int max_mention_count = 3;
  /// Zipf exponent for question traffic: questions target document d with
  /// probability proportional to (d+1)^-skew. 0 = uniform. Help-desk
  /// traffic is head-heavy, which is also what makes user votes inform
  /// future (test) questions.
  double question_popularity_skew = 1.0;
  /// Fraction of the vocabulary that is *common* (stop-word-like) entities
  /// ("order", "account"): they occur across topics in most documents and
  /// in questions. Surface-overlap retrieval (the IR baseline) is misled
  /// by them; the knowledge graph's conditional weights discount them.
  double common_entity_fraction = 0.03;
  /// Common-entity mentions added to every document.
  size_t common_mentions_per_document = 2;
  /// Fraction of question mentions drawn from query-side vocabulary
  /// (the document's historical query_mentions) instead of the document's
  /// own entities. Models the lexical gap: such mentions defeat
  /// surface-overlap retrieval (they never occur in documents) while the
  /// knowledge graph resolves them through co-occurrence relations.
  /// At least one mention stays direct.
  double question_paraphrase_fraction = 0.5;
  /// Query-side entities reserved per topic (taken from the topic's
  /// entity block; documents never mention them).
  size_t query_entities_per_topic = 2;
};

/// Paper-scale parameters: ~2,379 documents over a vocabulary sized to
/// yield a KG of roughly 1.6k nodes / 17k edges (Table II's Taobao row).
CorpusParams TaobaoScaleParams();

/// Generates the document collection. Fails on inconsistent parameters
/// (e.g. more mentions than entities per topic).
Result<Corpus> GenerateCorpus(const CorpusParams& params, Rng& rng);

/// Generates labeled questions: each targets a random document, mentions a
/// subset of its entities (plus noise), and lists same-topic overlapping
/// documents as graded-relevant.
std::vector<Question> GenerateQuestions(const Corpus& corpus,
                                        size_t num_questions,
                                        const CorpusParams& params, Rng& rng);

}  // namespace kgov::qa

#endif  // KGOV_QA_CORPUS_H_
