#include "ppr/symbolic_eipd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/csr.h"
#include "graph/generators.h"
#include "ppr/eipd_engine.h"

namespace kgov::ppr {
namespace {

using graph::WeightedDigraph;

// One-shot numeric Phi(seed, answer) over the live graph's current
// weights, via a throwaway snapshot + engine.
double NumericSimilarity(const WeightedDigraph& g, const QuerySeed& seed,
                         graph::NodeId answer, const EipdOptions& options) {
  graph::CsrSnapshot snap(g);
  EipdEngine engine(snap.View(), options);
  StatusOr<std::vector<double>> scores = engine.Scores(seed, {answer});
  EXPECT_TRUE(scores.ok()) << scores.status().ToString();
  return scores.value()[0];
}

WeightedDigraph MakeFixture() {
  WeightedDigraph g(5);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(1, 3, 1.0).ok());
  EXPECT_TRUE(g.AddEdge(2, 4, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(2, 1, 0.4).ok());
  return g;
}

QuerySeed SeedAt(graph::NodeId node) {
  QuerySeed seed;
  seed.links.emplace_back(node, 1.0);
  return seed;
}

// Key round-trip property: evaluating the collected signomial at the
// current edge weights reproduces the numeric extended inverse P-distance.
TEST(SymbolicEipdTest, SignomialEvaluatesToNumericSimilarity) {
  WeightedDigraph g = MakeFixture();
  SymbolicEipdOptions options;
  options.eipd.max_length = 4;
  SymbolicEipd symbolic(&g, nullptr, options);
  EdgeVariableMap vars;
  std::vector<SymbolicAnswer> answers =
      symbolic.Collect(SeedAt(0), {3, 4}, &vars);

  std::vector<double> x = vars.InitialValues(g);
  for (const SymbolicAnswer& answer : answers) {
    double direct = NumericSimilarity(g, SeedAt(0), answer.answer,
                                      options.eipd);
    EXPECT_NEAR(answer.similarity.Evaluate(x), direct, 1e-12);
    EXPECT_NEAR(answer.numeric_value, direct, 1e-12);
  }
}

TEST(SymbolicEipdTest, TermPerWalk) {
  WeightedDigraph g = MakeFixture();
  SymbolicEipdOptions options;
  options.eipd.max_length = 4;
  SymbolicEipd symbolic(&g, nullptr, options);
  EdgeVariableMap vars;
  std::vector<SymbolicAnswer> answers =
      symbolic.Collect(SeedAt(0), {3, 4}, &vars);
  // Node 3 is reached by two distinct walks, node 4 by one.
  EXPECT_EQ(answers[0].similarity.NumTerms(), 2u);
  EXPECT_EQ(answers[1].similarity.NumTerms(), 1u);
}

TEST(SymbolicEipdTest, RegistersOnlyTraversedVariableEdges) {
  WeightedDigraph g = MakeFixture();
  SymbolicEipd symbolic(&g, nullptr, {});
  EdgeVariableMap vars;
  symbolic.Collect(SeedAt(1), {3}, &vars);  // only walk 1->3
  EXPECT_EQ(vars.NumVariables(), 1u);
  EXPECT_EQ(vars.EdgeOf(0), *g.FindEdge(1, 3));
}

TEST(SymbolicEipdTest, PathEdgesCollectAllWalkEdges) {
  WeightedDigraph g = MakeFixture();
  SymbolicEipdOptions options;
  options.eipd.max_length = 4;
  SymbolicEipd symbolic(&g, nullptr, options);
  EdgeVariableMap vars;
  std::vector<SymbolicAnswer> answers =
      symbolic.Collect(SeedAt(0), {3}, &vars);
  // Walks to 3 traverse edges 0->1, 1->3, 0->2, 2->1.
  EXPECT_EQ(answers[0].path_edges.size(), 4u);
  EXPECT_TRUE(answers[0].path_edges.count(*g.FindEdge(0, 1)) > 0);
  EXPECT_TRUE(answers[0].path_edges.count(*g.FindEdge(2, 1)) > 0);
  EXPECT_FALSE(answers[0].path_edges.count(*g.FindEdge(2, 4)) > 0);
}

TEST(SymbolicEipdTest, FixedEdgePredicateFoldsWeightsIntoCoefficients) {
  WeightedDigraph g = MakeFixture();
  graph::EdgeId fixed_edge = *g.FindEdge(1, 3);
  SymbolicEipdOptions options;
  options.eipd.max_length = 3;
  SymbolicEipd symbolic(
      &g,
      [fixed_edge](const WeightedDigraph&, graph::EdgeId e) {
        return e != fixed_edge;
      },
      options);
  EdgeVariableMap vars;
  std::vector<SymbolicAnswer> answers =
      symbolic.Collect(SeedAt(0), {3}, &vars);
  // Only the walk q->0->1->3 fits in L=3; edge 1->3 is fixed, so only
  // edge 0->1 becomes a variable.
  ASSERT_EQ(vars.NumVariables(), 1u);
  EXPECT_EQ(vars.EdgeOf(0), *g.FindEdge(0, 1));
  // Coefficient folds in the fixed weight (1.0) and c(1-c)^3.
  const double c = 0.15;
  ASSERT_EQ(answers[0].similarity.NumTerms(), 1u);
  EXPECT_NEAR(answers[0].similarity.terms()[0].coefficient(),
              c * std::pow(1 - c, 3) * 1.0, 1e-12);
}

TEST(SymbolicEipdTest, SymbolicSimilarityTracksWeightChanges) {
  WeightedDigraph g = MakeFixture();
  SymbolicEipdOptions options;
  options.eipd.max_length = 4;
  SymbolicEipd symbolic(&g, nullptr, options);
  EdgeVariableMap vars;
  std::vector<SymbolicAnswer> answers =
      symbolic.Collect(SeedAt(0), {3}, &vars);

  // Change a weight, re-evaluate the signomial at the new values, and
  // compare with a fresh numeric evaluation.
  graph::EdgeId e01 = *g.FindEdge(0, 1);
  g.SetWeight(e01, 0.9);
  std::vector<double> x = vars.InitialValues(g);
  EXPECT_NEAR(answers[0].similarity.Evaluate(x),
              NumericSimilarity(g, SeedAt(0), 3, options.eipd), 1e-12);
}

TEST(SymbolicEipdTest, RepeatedEdgeBecomesSquaredVariable) {
  // 2-cycle walk 0->1->0->1 traverses 0->1 twice within L=4.
  WeightedDigraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 0, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 0.5).ok());
  SymbolicEipdOptions options;
  options.eipd.max_length = 4;
  SymbolicEipd symbolic(&g, nullptr, options);
  EdgeVariableMap vars;
  std::vector<SymbolicAnswer> answers =
      symbolic.Collect(SeedAt(0), {2}, &vars);
  // Walks to 2: q->0->1->2 (len 3) and q->0->1->0->1->2 (len 5 > L). So
  // only one term... extend L to 5 to include the squared walk.
  EXPECT_EQ(answers[0].similarity.NumTerms(), 1u);

  options.eipd.max_length = 5;
  SymbolicEipd symbolic5(&g, nullptr, options);
  EdgeVariableMap vars5;
  std::vector<SymbolicAnswer> answers5 =
      symbolic5.Collect(SeedAt(0), {2}, &vars5);
  ASSERT_EQ(answers5[0].similarity.NumTerms(), 2u);
  // One of the terms carries x_{0->1}^2.
  math::VarId v01 = *vars5.Find(*g.FindEdge(0, 1));
  bool found_squared = false;
  for (const math::Monomial& term : answers5[0].similarity.terms()) {
    if (term.ExponentOf(v01) == 2.0) found_squared = true;
  }
  EXPECT_TRUE(found_squared);
}

TEST(SymbolicEipdTest, MinPathMassPrunes) {
  WeightedDigraph g = MakeFixture();
  SymbolicEipdOptions options;
  options.eipd.max_length = 4;
  options.min_path_mass = 0.25;  // kills the 0.2-mass walk via node 2
  SymbolicEipd symbolic(&g, nullptr, options);
  EdgeVariableMap vars;
  std::vector<SymbolicAnswer> answers =
      symbolic.Collect(SeedAt(0), {3}, &vars);
  EXPECT_EQ(answers[0].similarity.NumTerms(), 1u);
}

TEST(SymbolicEipdTest, TermCapDropsExcessWalks) {
  WeightedDigraph g = MakeFixture();
  SymbolicEipdOptions options;
  options.eipd.max_length = 4;
  options.max_terms_per_answer = 1;
  SymbolicEipd symbolic(&g, nullptr, options);
  EdgeVariableMap vars;
  std::vector<SymbolicAnswer> answers =
      symbolic.Collect(SeedAt(0), {3}, &vars);
  EXPECT_EQ(answers[0].similarity.NumTerms(), 1u);
}

TEST(SymbolicEipdTest, AgreesWithNumericOnRandomGraphs) {
  for (uint64_t seed_value : {11ull, 22ull, 33ull}) {
    Rng rng(seed_value);
    Result<WeightedDigraph> g = graph::ErdosRenyi(15, 60, rng);
    ASSERT_TRUE(g.ok());
    QuerySeed seed = QuerySeed::FromNode(*g, 0);
    if (seed.empty()) continue;

    SymbolicEipdOptions options;
    options.eipd.max_length = 5;
    SymbolicEipd symbolic(&*g, nullptr, options);
    EdgeVariableMap vars;
    std::vector<graph::NodeId> targets{3, 7, 11};
    std::vector<SymbolicAnswer> answers =
        symbolic.Collect(seed, targets, &vars);

    graph::CsrSnapshot snap(*g);
    EipdEngine numeric(snap.View(), options.eipd);
    std::vector<double> x = vars.InitialValues(*g);
    StatusOr<std::vector<double>> direct = numeric.Scores(seed, targets);
    ASSERT_TRUE(direct.ok());
    for (size_t i = 0; i < targets.size(); ++i) {
      EXPECT_NEAR(answers[i].similarity.Evaluate(x), (*direct)[i], 1e-10);
    }
  }
}

}  // namespace
}  // namespace kgov::ppr
