// sched::Explorer - deterministic schedule exploration for concurrent
// unit tests (docs/static_analysis.md, "Deterministic schedule
// exploration").
//
// TSan only reports interleavings the OS scheduler happens to produce.
// The explorer removes the "happens to": it serializes 2-4 registered
// test threads onto one run token, intercepts every yield point (lock
// acquire/release, condvar wait/notify, fault-injection sites, explicit
// TestYield calls), and re-runs the scenario under systematically chosen
// schedules:
//
//  1. exhaustive bounded-preemption search: every schedule with at most
//     `preemption_bound` preemptions (a la CHESS) is enumerated by DFS
//     over the decision tree, up to `max_schedules`;
//  2. PCT-style randomized fallback: `random_schedules` additional runs
//     with seeded random thread priorities and priority-change points,
//     reaching (with known probability) bugs beyond the bound.
//
// Every schedule is replayable: a failing run's token (printed in the
// returned status) feeds Replay() to reproduce the exact interleaving.
// A schedule on which every registered thread ends up blocked is
// reported as a DEADLOCK with the token - this is how lock-order cycles
// that the rank detector flags as *potential* become concrete,
// reproducible executions.
//
// Scenario state must be owned by the closures (capture via shared_ptr):
// a deadlocked or stuck schedule ABANDONS its threads and state (they
// are leaked, never destroyed) so the explorer can report the failure
// instead of hanging. Scenarios are re-created from the factory for
// every schedule.
//
// Threads the scenario spawns indirectly (e.g. ThreadPool workers) are
// NOT registered: they run freely alongside the single granted thread.
// Set `pure = false` for such scenarios so the scheduler polls instead
// of declaring deadlock when all registered threads are briefly blocked
// on state only a free thread can advance. Exploration then remains
// deterministic in the registered threads' decisions but best-effort
// with respect to free-thread timing.
//
// Usage:
//
//   sched::ExplorerOptions opts;
//   opts.preemption_bound = 2;
//   sched::Explorer explorer(opts);
//   Status result = explorer.Explore([] {
//     auto q = std::make_shared<Queue>(...);
//     sched::Scenario s;
//     s.threads.push_back([q] { q->Offer(...).IgnoreError(); });
//     s.threads.push_back([q] { q->Drain(...); });
//     s.check = [q] { return q->Validate(); };
//     return s;
//   });
//   // result embeds "schedule token: x:0,1,0,..." on failure.

#ifndef KGOV_COMMON_SCHED_H_
#define KGOV_COMMON_SCHED_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/status.h"

namespace kgov::sched {

/// One concurrent scenario: fresh state + thread bodies + an invariant
/// checked single-threaded after every body has finished.
struct Scenario {
  std::vector<std::function<void()>> threads;
  std::function<Status()> check;
};

struct ExplorerOptions {
  /// Maximum preemptions (switches away from a still-runnable thread)
  /// per exhaustively-explored schedule. 2-3 catches most bugs (CHESS).
  int preemption_bound = 2;
  /// Cap on exhaustively enumerated schedules; hitting it is recorded in
  /// Stats::capped and logged, never silent.
  int max_schedules = 2048;
  /// Seeded random (PCT-style) schedules run after the exhaustive phase.
  int random_schedules = 32;
  /// Seed for the randomized phase (and the replay of "p:" tokens).
  uint64_t seed = 0x9E3779B97F4A7C15ull;
  /// Scenarios whose registered threads interact with free (unregistered)
  /// threads must set pure = false; see the header comment.
  bool pure = true;
  /// Watchdog: a schedule making no progress for this long is abandoned
  /// and reported as stuck (deadlock is reported immediately in pure
  /// scenarios, without waiting for this).
  int64_t stuck_timeout_ms = 10000;

  /// Returns InvalidArgument naming the first offending field.
  Status Validate() const;
};

namespace internal {

/// One recorded scheduling decision (which thread got the token, out of
/// which runnable set); the exhaustive DFS backtracks over these.
struct DecisionRecord {
  std::vector<int> runnable;  // sorted ascending
  int prev = -1;              // token holder before (-1 at the kick)
  bool prev_runnable = false;
  int chosen = -1;
};

}  // namespace internal

class Explorer {
 public:
  explicit Explorer(ExplorerOptions options);
  Explorer() : Explorer(ExplorerOptions{}) {}

  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  /// Runs the scenario under every exhaustive schedule within the
  /// preemption bound, then the randomized fallback schedules. Returns
  /// OK when every schedule's bodies completed and check() passed;
  /// otherwise an Internal status naming the failure kind (invariant /
  /// deadlock / stuck / exception) and the replayable schedule token.
  /// Only one Explore/Replay may run at a time per process.
  Status Explore(const std::function<Scenario()>& scenario_factory);

  /// Re-runs a single schedule from a failing Explore's token.
  Status Replay(const std::string& token,
                const std::function<Scenario()>& scenario_factory);

  struct Stats {
    int schedules_run = 0;
    int exhaustive_schedules = 0;
    int random_schedules = 0;
    /// Largest number of scheduling decisions observed in one schedule.
    int max_decision_points = 0;
    /// True when the DFS enumerated every schedule within the bound.
    bool bound_exhausted = false;
    /// True when max_schedules cut the exhaustive phase short.
    bool capped = false;
  };
  Stats GetStats() const { return stats_; }

 private:
  Status RunOne(const std::function<Scenario()>& factory,
                const std::string& token,
                std::vector<internal::DecisionRecord>* trace_out);

  ExplorerOptions options_;
  Stats stats_;
};

/// True when the calling thread is a registered explorer thread (fast
/// thread-local check; hooks consult this before rerouting).
bool CurrentThreadRegistered();

/// Explicit yield point for test bodies: lets the explorer preempt
/// between two plain memory operations that involve no lock. No-op off
/// the explorer.
void TestYield();

/// Yield point wired into FaultInjector::ShouldFire, so fault-injection
/// sites are schedule decision points as promised in
/// common/fault_injection.h.
inline void FaultSiteYield() { TestYield(); }

/// Explorer-mediated condition wait, called by MutexLock::Wait for
/// registered threads: releases `mu` through the instrumentation layer,
/// blocks on the modeled condvar until a CvNotify or (WaitFor only) a
/// modeled timeout, reacquires, and re-checks `pred`. notify_one is
/// modeled as notify_all (a sound over-approximation: spurious wakeups
/// are permitted by the real API and explore strictly more schedules).
void CvWait(const void* cv_id, const void* mu_id, lockrank::Rank mu_rank,
            const lockinstr::NativeLockOps& mu_ops,
            const std::function<bool()>& pred);

/// Timed variant; returns pred() at wake-up, exactly like the real
/// WaitFor. Timeouts are modeled (taken when no other thread can run),
/// not measured, so schedules stay deterministic.
bool CvWaitFor(const void* cv_id, const void* mu_id, lockrank::Rank mu_rank,
               const lockinstr::NativeLockOps& mu_ops,
               std::chrono::nanoseconds timeout,
               const std::function<bool()>& pred);

namespace internal {

/// Hooks called from lockinstr for registered threads. AcquireMutex
/// models contention (try-lock + modeled blocking) so the harness never
/// deadlocks for real; ReleaseMutex unlocks, wakes modeled waiters and
/// yields; NotifyCv wakes modeled condvar waiters.
void AcquireMutex(const void* id, const lockinstr::NativeLockOps& ops);
bool TryAcquireMutex(const void* id, const lockinstr::NativeLockOps& ops);
void ReleaseMutex(const void* id, const lockinstr::NativeLockOps& ops);
void NotifyCv(const void* cv_id, bool notify_all);

/// Atomic release-and-block for cv waits (one scheduler step, no
/// lost-wakeup window). Returns true when woken by a modeled timeout.
bool BlockOnCv(const void* mu_id, const lockinstr::NativeLockOps& mu_ops,
               const void* cv_id, bool timed);

}  // namespace internal
}  // namespace kgov::sched

#endif  // KGOV_COMMON_SCHED_H_
