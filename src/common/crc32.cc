#include "common/crc32.h"

#include <array>

namespace kgov {
namespace {

// Byte-at-a-time table for the reflected CRC-32C polynomial 0x82F63B78.
std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const std::array<uint32_t, 256>& table = Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

uint32_t MaskCrc32c(uint32_t crc) {
  // Rotate right by 15 bits and add a constant (the LevelDB masking).
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8u;
}

}  // namespace kgov
