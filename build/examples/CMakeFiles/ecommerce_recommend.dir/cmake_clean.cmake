file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_recommend.dir/ecommerce_recommend.cpp.o"
  "CMakeFiles/ecommerce_recommend.dir/ecommerce_recommend.cpp.o.d"
  "ecommerce_recommend"
  "ecommerce_recommend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_recommend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
