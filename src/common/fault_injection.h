// Deterministic fault injection for exercising recovery paths.
//
// Production code calls FaultFires(site) at a handful of well-known
// injection points (forced solver non-convergence, NaN gradients, slow
// cluster solves, thread-pool task failure, graph corruption before the
// snapshot swap). With nothing armed the check is a single relaxed atomic
// load, so the hooks stay compiled in for tests and benchmarks without a
// measurable cost on the hot paths.
//
// Determinism: every site keeps a hit counter, and the fire decision for
// hit k is a pure function of (seed, site, k) via splitmix64 hashing, so a
// fixed seed and a fixed hit order replay the exact same fault schedule.
// Tests that need a fully deterministic schedule either run the code path
// sequentially or arm probability-1 faults, where thread interleaving
// cannot change the outcome.
//
// Typical test usage:
//
//   ScopedFault fault(FaultSite::kNanGradient,
//                     {.probability = 1.0, .max_fires = 1});
//   ... run the pipeline; the first gradient evaluation is poisoned ...
//   // disarmed automatically when `fault` leaves scope

#ifndef KGOV_COMMON_FAULT_INJECTION_H_
#define KGOV_COMMON_FAULT_INJECTION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

#include "common/thread_annotations.h"

namespace kgov {

/// The injection points wired into the library.
enum class FaultSite : int {
  /// SgpSolver::Solve returns NotConverged without running the solve.
  kSolveNonConvergence = 0,
  /// Inner solvers poison the next evaluated gradient with NaN.
  kNanGradient = 1,
  /// A split-merge cluster solve sleeps before starting (drives deadlines).
  kSlowSolve = 2,
  /// A ParallelFor task throws std::runtime_error.
  kTaskFailure = 3,
  /// OnlineKgOptimizer poisons one optimized edge weight to NaN before the
  /// graph-update validator runs (drives the rollback path).
  kGraphCorruption = 4,
  /// Durability-layer file writes (fs::AppendFile::Append, the atomic
  /// snapshot writer) return a simulated EIO.
  kFsWriteFailure = 5,
  /// Durability-layer fsync/fdatasync calls return a simulated error.
  kFsyncFailure = 6,
  /// Kill point: the process _exits between the synced snapshot temp file
  /// and the publishing rename (fs::WriteFileAtomic).
  kCrashMidSnapshot = 7,
  /// Kill point: the process _exits after writing a PREFIX of a WAL
  /// record - the classic torn tail recovery must truncate.
  kCrashMidWalAppend = 8,
  /// Kill point: the process _exits after the new snapshot is published
  /// but before the old WAL segments and snapshots are garbage-collected
  /// (the durable epoch swap is half-done).
  kCrashMidEpochSwap = 9,
};
inline constexpr int kNumFaultSites = 10;

/// Exit code used by the kill points above, so kill-tests can tell an
/// injected crash from a genuine child failure.
inline constexpr int kKillTestExitCode = 86;

std::string_view FaultSiteToString(FaultSite site);

/// How an armed site decides whether a given hit fires.
struct FaultConfig {
  /// Probability that a hit fires (1.0 = every eligible hit).
  double probability = 1.0;
  /// Total fires allowed; -1 means unlimited.
  int max_fires = -1;
  /// Hits ignored before any fire is considered (targets the Nth hit).
  int skip_hits = 0;
  /// For kSlowSolve: how long the injected stall lasts.
  double sleep_seconds = 0.0;
};

/// Process-wide registry of armed faults. All methods are thread-safe.
/// Tests must disarm what they arm (or use ScopedFault); the library never
/// arms anything itself.
class FaultInjector {
 public:
  static FaultInjector& Global();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `site` with `config` and resets its hit/fire counters.
  void Arm(FaultSite site, FaultConfig config) KGOV_EXCLUDES(mu_);

  /// Disarms `site`; its counters keep their values until the next Arm.
  void Disarm(FaultSite site) KGOV_EXCLUDES(mu_);

  /// Disarms every site and zeroes all counters.
  void Reset() KGOV_EXCLUDES(mu_);

  /// Reseeds the deterministic fire schedule (default seed is fixed).
  void Reseed(uint64_t seed) KGOV_EXCLUDES(mu_);

  /// Records a hit at `site` and returns whether the fault fires. With the
  /// site disarmed this is one relaxed atomic load.
  bool ShouldFire(FaultSite site) KGOV_EXCLUDES(mu_);

  /// Sleep duration configured for `site` (0 when disarmed).
  double SleepSeconds(FaultSite site) const KGOV_EXCLUDES(mu_);

  /// Counters for assertions: hits observed / faults fired since Arm.
  int64_t Hits(FaultSite site) const KGOV_EXCLUDES(mu_);
  int64_t Fires(FaultSite site) const KGOV_EXCLUDES(mu_);

 private:
  FaultInjector() = default;

  struct SiteState {
    FaultConfig config;
    int64_t hits = 0;
    int64_t fires = 0;
  };

  mutable Mutex mu_{KGOV_LOCK_RANK(kFaultInjection)};
  // Fast-path summary of which sites are armed; ShouldFire reads it with
  // one relaxed load before touching anything mu_ guards.
  std::atomic<uint32_t> armed_mask_{0};
  uint64_t seed_ KGOV_GUARDED_BY(mu_) = 0x8F0C'17B3'5E2A'D94Bull;
  std::array<SiteState, kNumFaultSites> sites_ KGOV_GUARDED_BY(mu_);
};

/// True when `site` is armed and its schedule fires on this hit. This is
/// the call production code makes at an injection point. Injection points
/// double as yield points for the schedule explorer (common/sched.h):
/// they mark exactly the recovery-path boundaries whose interleavings
/// matter.
inline bool FaultFires(FaultSite site) {
#if defined(KGOV_LOCK_DEBUG)
  if (lockinstr::Active()) sched::FaultSiteYield();
#endif
  return FaultInjector::Global().ShouldFire(site);
}

/// Sleeps for the injected stall duration when `site` fires; returns
/// whether it fired. Used at the slow-solve injection point.
bool MaybeInjectStall(FaultSite site);

/// Terminates the process immediately (std::_Exit(kKillTestExitCode),
/// no destructors, no atexit) when `site` fires - the crash simulation
/// the durability kill-tests restart from. No-op when disarmed.
void MaybeKillProcess(FaultSite site);

/// RAII arm/disarm for tests.
class ScopedFault {
 public:
  ScopedFault(FaultSite site, FaultConfig config) : site_(site) {
    FaultInjector::Global().Arm(site_, config);
  }
  ~ScopedFault() { FaultInjector::Global().Disarm(site_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  FaultSite site_;
};

}  // namespace kgov

#endif  // KGOV_COMMON_FAULT_INJECTION_H_
