#include "votes/vote_generator.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "math/stats.h"

namespace kgov::votes {
namespace {

graph::WeightedDigraph MakeBase(uint64_t seed = 1) {
  Rng rng(seed);
  Result<graph::WeightedDigraph> g =
      graph::ScaleFreeWithTargetEdges(500, 2000, rng);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

SyntheticVoteParams SmallParams() {
  SyntheticVoteParams params;
  params.num_queries = 20;
  params.num_answers = 60;
  params.subgraph_nodes = 200;
  params.top_k = 10;
  params.avg_negative_rank = 5.0;
  return params;
}

TEST(VoteGeneratorTest, ProducesRequestedVoteCount) {
  graph::WeightedDigraph base = MakeBase();
  Rng rng(7);
  Result<SyntheticWorkload> w =
      GenerateSyntheticWorkload(base, SmallParams(), rng);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->votes.size(), 20u);
  EXPECT_EQ(w->answers.size(), 60u);
  EXPECT_EQ(w->num_entity_nodes, 500u);
  EXPECT_EQ(w->graph.NumNodes(), 560u);
}

TEST(VoteGeneratorTest, AllVotesWellFormed) {
  graph::WeightedDigraph base = MakeBase();
  Rng rng(8);
  Result<SyntheticWorkload> w =
      GenerateSyntheticWorkload(base, SmallParams(), rng);
  ASSERT_TRUE(w.ok());
  for (const Vote& vote : w->votes) {
    EXPECT_TRUE(vote.IsWellFormed());
    EXPECT_LE(vote.answer_list.size(), 10u);
  }
}

TEST(VoteGeneratorTest, AnswerListsContainOnlyAnswerNodes) {
  graph::WeightedDigraph base = MakeBase();
  Rng rng(9);
  Result<SyntheticWorkload> w =
      GenerateSyntheticWorkload(base, SmallParams(), rng);
  ASSERT_TRUE(w.ok());
  for (const Vote& vote : w->votes) {
    for (graph::NodeId node : vote.answer_list) {
      EXPECT_GE(node, w->num_entity_nodes);
    }
  }
}

TEST(VoteGeneratorTest, NegativeFractionRespected) {
  graph::WeightedDigraph base = MakeBase();
  SyntheticVoteParams params = SmallParams();
  params.num_queries = 100;
  params.negative_fraction = 1.0;
  Rng rng(10);
  Result<SyntheticWorkload> w =
      GenerateSyntheticWorkload(base, params, rng);
  ASSERT_TRUE(w.ok());
  VoteSetSummary summary = Summarize(w->votes);
  EXPECT_EQ(summary.negative, 100u);

  params.negative_fraction = 0.0;
  Rng rng2(10);
  Result<SyntheticWorkload> w2 =
      GenerateSyntheticWorkload(base, params, rng2);
  ASSERT_TRUE(w2.ok());
  EXPECT_EQ(Summarize(w2->votes).positive, 100u);
}

TEST(VoteGeneratorTest, NegativeRanksCenterOnTarget) {
  graph::WeightedDigraph base = MakeBase();
  SyntheticVoteParams params = SmallParams();
  params.num_queries = 200;
  params.negative_fraction = 1.0;
  params.avg_negative_rank = 5.0;
  Rng rng(11);
  Result<SyntheticWorkload> w =
      GenerateSyntheticWorkload(base, params, rng);
  ASSERT_TRUE(w.ok());
  std::vector<double> ranks;
  for (const Vote& vote : w->votes) {
    ranks.push_back(static_cast<double>(vote.BestAnswerRank()));
  }
  // Clamping to [2, list size] shifts the mean a bit; allow slack.
  EXPECT_NEAR(math::Mean(ranks), 5.0, 1.5);
}

TEST(VoteGeneratorTest, DeterministicUnderSeed) {
  graph::WeightedDigraph base = MakeBase();
  Rng rng1(42), rng2(42);
  Result<SyntheticWorkload> a =
      GenerateSyntheticWorkload(base, SmallParams(), rng1);
  Result<SyntheticWorkload> b =
      GenerateSyntheticWorkload(base, SmallParams(), rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->votes.size(), b->votes.size());
  for (size_t i = 0; i < a->votes.size(); ++i) {
    EXPECT_EQ(a->votes[i].answer_list, b->votes[i].answer_list);
    EXPECT_EQ(a->votes[i].best_answer, b->votes[i].best_answer);
  }
}

TEST(VoteGeneratorTest, EntityEdgePredicateSeparatesLinkEdges) {
  graph::WeightedDigraph base = MakeBase();
  Rng rng(13);
  Result<SyntheticWorkload> w =
      GenerateSyntheticWorkload(base, SmallParams(), rng);
  ASSERT_TRUE(w.ok());
  auto predicate = w->EntityEdgePredicate();
  size_t entity_edges = 0, link_edges = 0;
  for (graph::EdgeId e = 0; e < w->graph.NumEdges(); ++e) {
    if (predicate(w->graph, e)) {
      ++entity_edges;
      EXPECT_LT(w->graph.edge(e).to, w->num_entity_nodes);
    } else {
      ++link_edges;
      EXPECT_GE(w->graph.edge(e).to, w->num_entity_nodes);
    }
  }
  // Densification (Ndegree) may add entity-entity edges but never link
  // edges.
  EXPECT_GE(entity_edges, base.NumEdges());
  EXPECT_GT(link_edges, 0u);
}

TEST(VoteGeneratorTest, GraphStaysSubStochastic) {
  graph::WeightedDigraph base = MakeBase();
  Rng rng(14);
  Result<SyntheticWorkload> w =
      GenerateSyntheticWorkload(base, SmallParams(), rng);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w->graph.IsSubStochastic(1e-6));
}

TEST(VoteGeneratorTest, DensificationRaisesSubgraphDegree) {
  // A sparse base graph must be densified toward Ndegree inside the
  // selected region.
  Rng rng_base(21);
  Result<graph::WeightedDigraph> sparse =
      graph::ScaleFreeWithTargetEdges(600, 700, rng_base);
  ASSERT_TRUE(sparse.ok());
  SyntheticVoteParams params = SmallParams();
  params.subgraph_target_degree = 4.0;
  Rng rng(22);
  Result<SyntheticWorkload> w =
      GenerateSyntheticWorkload(*sparse, params, rng);
  ASSERT_TRUE(w.ok());
  // Entity-entity edges must exceed the base count substantially.
  size_t entity_edges = 0;
  for (const graph::Edge& e : w->graph.edges()) {
    if (e.from < w->num_entity_nodes && e.to < w->num_entity_nodes) {
      ++entity_edges;
    }
  }
  EXPECT_GT(entity_edges, sparse->NumEdges() + 100);
  EXPECT_TRUE(w->graph.IsSubStochastic(1e-6));
}

TEST(VoteGeneratorTest, ZeroTargetDegreeKeepsStructure) {
  graph::WeightedDigraph base = MakeBase();
  SyntheticVoteParams params = SmallParams();
  params.subgraph_target_degree = 0.0;
  Rng rng(23);
  Result<SyntheticWorkload> w =
      GenerateSyntheticWorkload(base, params, rng);
  ASSERT_TRUE(w.ok());
  size_t entity_edges = 0;
  for (const graph::Edge& e : w->graph.edges()) {
    if (e.from < w->num_entity_nodes && e.to < w->num_entity_nodes) {
      ++entity_edges;
    }
  }
  EXPECT_EQ(entity_edges, base.NumEdges());
}

TEST(VoteGeneratorTest, RejectsDegenerateParams) {
  graph::WeightedDigraph base = MakeBase();
  SyntheticVoteParams params = SmallParams();
  params.num_answers = 1;
  Rng rng(15);
  EXPECT_FALSE(GenerateSyntheticWorkload(base, params, rng).ok());

  graph::WeightedDigraph tiny(1);
  Rng rng2(16);
  EXPECT_FALSE(
      GenerateSyntheticWorkload(tiny, SmallParams(), rng2).ok());
}

}  // namespace
}  // namespace kgov::votes
