#include "math/monomial.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/contracts.h"
#include "common/logging.h"

namespace kgov::math {

Monomial::Monomial(double coefficient,
                   std::vector<std::pair<VarId, double>> powers)
    : coefficient_(coefficient), powers_(std::move(powers)) {
  Normalize();
}

void Monomial::Normalize() {
  std::sort(powers_.begin(), powers_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Merge duplicate variable ids (exponents add) and drop zero exponents.
  size_t out = 0;
  for (size_t i = 0; i < powers_.size();) {
    VarId var = powers_[i].first;
    double exp = 0.0;
    while (i < powers_.size() && powers_[i].first == var) {
      exp += powers_[i].second;
      ++i;
    }
    if (exp != 0.0) {
      powers_[out++] = {var, exp};
    }
  }
  powers_.resize(out);
}

double Monomial::Degree() const {
  double degree = 0.0;
  for (const auto& [var, exp] : powers_) degree += exp;
  return degree;
}

double Monomial::ExponentOf(VarId var) const {
  auto it = std::lower_bound(
      powers_.begin(), powers_.end(), var,
      [](const auto& entry, VarId v) { return entry.first < v; });
  if (it != powers_.end() && it->first == var) return it->second;
  return 0.0;
}

double Monomial::Evaluate(const std::vector<double>& x) const {
  double value = coefficient_;
  for (const auto& [var, exp] : powers_) {
    KGOV_DCHECK(var < x.size());
    value *= std::pow(x[var], exp);
  }
  return value;
}

void Monomial::AccumulateGradient(const std::vector<double>& x, double scale,
                                  std::vector<double>* grad) const {
  if (powers_.empty() || coefficient_ == 0.0 || scale == 0.0) return;
  // d/dx_j [ c * prod_i x_i^{e_i} ] = c * e_j * x_j^{e_j-1} * prod_{i!=j}
  // x_i^{e_i}. Computed by exclusion so x_j == 0 stays well-defined.
  const size_t k = powers_.size();
  for (size_t j = 0; j < k; ++j) {
    const auto [var_j, exp_j] = powers_[j];
    KGOV_DCHECK(var_j < grad->size());
    double partial = coefficient_ * exp_j * std::pow(x[var_j], exp_j - 1.0);
    if (partial == 0.0 || !std::isfinite(partial)) {
      if (!std::isfinite(partial)) continue;  // x_j==0 with e_j<1: skip
      continue;
    }
    for (size_t i = 0; i < k; ++i) {
      if (i == j) continue;
      partial *= std::pow(x[powers_[i].first], powers_[i].second);
    }
    (*grad)[var_j] += scale * partial;
  }
}

Monomial Monomial::Scaled(double factor) const {
  Monomial out = *this;
  out.coefficient_ *= factor;
  return out;
}

Monomial Monomial::operator*(const Monomial& other) const {
  std::vector<std::pair<VarId, double>> powers = powers_;
  powers.insert(powers.end(), other.powers_.begin(), other.powers_.end());
  return Monomial(coefficient_ * other.coefficient_, std::move(powers));
}

void Monomial::MultiplyByPower(VarId var, double exponent) {
  if (exponent == 0.0) return;
  powers_.emplace_back(var, exponent);
  Normalize();
}

int64_t Monomial::MaxVarId() const {
  if (powers_.empty()) return -1;
  return static_cast<int64_t>(powers_.back().first);
}

std::string Monomial::ToString() const {
  std::ostringstream os;
  os << coefficient_;
  for (const auto& [var, exp] : powers_) {
    os << "*x" << var;
    if (exp != 1.0) os << "^" << exp;
  }
  return os.str();
}

}  // namespace kgov::math
