#include "ppr/symbolic_eipd.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include <string>

namespace kgov::ppr {


Status SymbolicEipdOptions::Validate() const {
  KGOV_RETURN_IF_ERROR(eipd.Validate());
  if (!(min_path_mass >= 0.0) || !std::isfinite(min_path_mass)) {
    return Status::InvalidArgument(
        "SymbolicEipdOptions.min_path_mass must be finite and >= 0, got " +
        std::to_string(min_path_mass));
  }
  return Status::OK();
}

struct SymbolicEipd::DfsState {
  EdgeVariableMap* vars = nullptr;
  std::vector<SymbolicAnswer>* out = nullptr;
  // answer node -> index into out (-1 = not an answer).
  std::vector<int> answer_index;
  // Edges of the current walk, in order (for path_edges bookkeeping).
  std::vector<graph::EdgeId> walk_edges;
  // Subset of walk_edges that are variables (with positions preserved so
  // multiplicity is implicit).
  std::vector<graph::EdgeId> variable_edges;
  // Precomputed c*(1-c)^len for len = 0..L.
  std::vector<double> decay;
  size_t dropped_terms = 0;
};

SymbolicEipd::SymbolicEipd(const graph::WeightedDigraph* graph,
                           VariablePredicate is_variable,
                           SymbolicEipdOptions options)
    : graph_(graph),
      is_variable_(std::move(is_variable)),
      options_(options) {
  KGOV_CHECK(graph_ != nullptr);
  KGOV_CHECK(options_.eipd.max_length >= 1);
}

std::vector<SymbolicAnswer> SymbolicEipd::Collect(
    const QuerySeed& seed, const std::vector<graph::NodeId>& answers,
    EdgeVariableMap* vars) const {
  KGOV_CHECK(vars != nullptr);
  DfsState state;
  state.vars = vars;

  std::vector<SymbolicAnswer> out(answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    out[i].answer = answers[i];
  }
  state.out = &out;

  state.answer_index.assign(graph_->NumNodes(), -1);
  for (size_t i = 0; i < answers.size(); ++i) {
    KGOV_CHECK(graph_->IsValidNode(answers[i]));
    state.answer_index[answers[i]] = static_cast<int>(i);
  }

  const double c = options_.eipd.restart;
  state.decay.resize(options_.eipd.max_length + 1);
  double d = c;
  for (int len = 0; len <= options_.eipd.max_length; ++len) {
    state.decay[len] = d;
    d *= 1.0 - c;
  }

  // The first hop follows the seed links; seed weights are fixed
  // coefficients (query links are not optimizable edges).
  for (const auto& [node, weight] : seed.links) {
    KGOV_CHECK(graph_->IsValidNode(node));
    if (weight <= 0.0) continue;
    Dfs(&state, node, /*length=*/1, /*numeric_mass=*/weight,
        /*fixed_coeff=*/weight);
  }

  for (SymbolicAnswer& answer : out) {
    answer.similarity.Compact();
  }
  if (state.dropped_terms > 0) {
    KGOV_LOG(DEBUG) << "symbolic EIPD dropped " << state.dropped_terms
                    << " walks past the per-answer term cap";
  }
  return out;
}

void SymbolicEipd::Dfs(DfsState* state, graph::NodeId node, int length,
                       double numeric_mass, double fixed_coeff) const {
  int answer_idx = state->answer_index[node];
  if (answer_idx >= 0) {
    SymbolicAnswer& answer = (*state->out)[answer_idx];
    if (options_.max_terms_per_answer != 0 &&
        answer.similarity.NumTerms() >= options_.max_terms_per_answer) {
      ++state->dropped_terms;
    } else {
      std::vector<std::pair<math::VarId, double>> powers;
      powers.reserve(state->variable_edges.size());
      for (graph::EdgeId e : state->variable_edges) {
        powers.emplace_back(state->vars->GetOrRegister(e), 1.0);
      }
      // Monomial normalization merges repeated edges into one power.
      answer.similarity.AddTerm(
          math::Monomial(fixed_coeff * state->decay[length], std::move(powers)));
      answer.path_edges.insert(state->walk_edges.begin(),
                               state->walk_edges.end());
      answer.numeric_value += numeric_mass * state->decay[length];
    }
  }

  if (length >= options_.eipd.max_length) return;

  for (const graph::OutEdge& out : graph_->OutEdges(node)) {
    double w = graph_->Weight(out.edge);
    if (w <= 0.0) continue;
    double next_mass = numeric_mass * w;
    if (options_.min_path_mass > 0.0 && next_mass < options_.min_path_mass) {
      continue;
    }
    bool variable = !is_variable_ || is_variable_(*graph_, out.edge);
    state->walk_edges.push_back(out.edge);
    if (variable) {
      state->variable_edges.push_back(out.edge);
      Dfs(state, out.to, length + 1, next_mass, fixed_coeff);
      state->variable_edges.pop_back();
    } else {
      Dfs(state, out.to, length + 1, next_mass, fixed_coeff * w);
    }
    state->walk_edges.pop_back();
  }
}

}  // namespace kgov::ppr
