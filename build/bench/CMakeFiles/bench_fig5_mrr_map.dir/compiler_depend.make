# Empty compiler generated dependencies file for bench_fig5_mrr_map.
# This may be replaced when dependencies are built.
