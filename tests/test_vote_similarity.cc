#include "cluster/vote_similarity.h"

#include <gtest/gtest.h>

namespace kgov::cluster {
namespace {

using EdgeSet = std::unordered_set<graph::EdgeId>;

TEST(JaccardTest, IdenticalSetsAreOne) {
  EdgeSet a{1, 2, 3};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 1.0);
}

TEST(JaccardTest, DisjointSetsAreZero) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2}, {3, 4}), 0.0);
}

TEST(JaccardTest, PartialOverlap) {
  // |{2,3}| / |{1,2,3,4}| = 0.5
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3}, {2, 3, 4}), 0.5);
}

TEST(JaccardTest, EmptySets) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1}, {}), 0.0);
}

TEST(JaccardTest, Symmetric) {
  EdgeSet a{1, 2, 3, 4};
  EdgeSet b{3, 4, 5};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), JaccardSimilarity(b, a));
}

TEST(JaccardTest, SubsetRatio) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2}, {1, 2, 3, 4}), 0.5);
}

TEST(VoteSimilarityMatrixTest, DiagonalIsOne) {
  std::vector<EdgeSet> edges{{1, 2}, {3}, {1, 3}};
  auto sim = VoteSimilarityMatrix(edges);
  ASSERT_EQ(sim.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(sim[i][i], 1.0);
  }
}

TEST(VoteSimilarityMatrixTest, SymmetricEntries) {
  std::vector<EdgeSet> edges{{1, 2, 3}, {2, 3, 4}, {9}};
  auto sim = VoteSimilarityMatrix(edges);
  for (size_t i = 0; i < edges.size(); ++i) {
    for (size_t j = 0; j < edges.size(); ++j) {
      EXPECT_DOUBLE_EQ(sim[i][j], sim[j][i]);
    }
  }
  EXPECT_DOUBLE_EQ(sim[0][1], 0.5);
  EXPECT_DOUBLE_EQ(sim[0][2], 0.0);
}

TEST(VoteSimilarityMatrixTest, EmptyInput) {
  EXPECT_TRUE(VoteSimilarityMatrix({}).empty());
}

}  // namespace
}  // namespace kgov::cluster
