# Empty dependencies file for bench_fig2_sigmoid.
# This may be replaced when dependencies are built.
