// Subgraph utilities: BFS region selection and induced-subgraph
// extraction. The synthetic vote workloads (paper SVII-A) link queries and
// answers into an Nnodes-node region of a larger graph; these helpers are
// also useful for ad-hoc analysis of optimization locality (which part of
// the graph a vote set can touch).

#ifndef KGOV_GRAPH_SUBGRAPH_H_
#define KGOV_GRAPH_SUBGRAPH_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"

namespace kgov::graph {

/// Collects up to `target` nodes by BFS over out-edges from random start
/// nodes (re-seeding on frontier exhaustion until the target is met or all
/// nodes are visited). Deterministic given `rng`.
std::vector<NodeId> SelectBfsRegion(const WeightedDigraph& graph,
                                    size_t target, Rng& rng);

/// The subgraph induced by `nodes`: a new graph whose node i corresponds
/// to nodes[i], containing exactly the edges with both endpoints in the
/// set (weights preserved).
struct InducedSubgraph {
  WeightedDigraph graph;
  /// node id in the induced graph -> node id in the original graph.
  std::vector<NodeId> to_original;
};

/// Extracts the induced subgraph. Duplicate entries in `nodes` are an
/// error.
Result<InducedSubgraph> ExtractInducedSubgraph(
    const WeightedDigraph& graph, const std::vector<NodeId>& nodes);

/// Number of edges with both endpoints inside `nodes`.
size_t CountInternalEdges(const WeightedDigraph& graph,
                          const std::vector<NodeId>& nodes);

}  // namespace kgov::graph

#endif  // KGOV_GRAPH_SUBGRAPH_H_
