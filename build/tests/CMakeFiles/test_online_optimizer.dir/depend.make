# Empty dependencies file for test_online_optimizer.
# This may be replaced when dependencies are built.
