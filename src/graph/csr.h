// Immutable CSR (compressed sparse row) snapshot of a WeightedDigraph.
//
// The mutable adjacency-list graph is ideal for the optimizer (O(1) weight
// writes), but each out-edge access indirects through the edge table. A
// serving system that answers many queries between optimization rounds can
// freeze the current weights into a CSR snapshot: contiguous
// (target, weight) pairs per node, cache-friendly and pointer-free, plus a
// parallel edge-id table so EdgeId-keyed weight overrides keep working.
// Read-side consumers access a snapshot through its View() (graph::GraphView,
// see graph/graph_view.h); the view borrows the snapshot's arrays and is
// valid only while the snapshot is alive.

#ifndef KGOV_GRAPH_CSR_H_
#define KGOV_GRAPH_CSR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/graph_view.h"

namespace kgov::graph {

/// How a CsrSnapshot orders its rows.
enum class CsrLayout {
  /// Rows in WeightedDigraph node-id order. The serving layout: node ids
  /// in the view are the graph's node ids, and results stay
  /// bitwise-stable across snapshots of the same graph.
  kNatural,
  /// Rows sorted by descending out-degree (ties by ascending original
  /// id). Hub rows - the ones every frontier expansion keeps revisiting -
  /// pack into one contiguous hot prefix of the neighbor array, so
  /// propagation on power-law graphs works out of a cache-resident block.
  /// Node ids in the view are INTERNAL ids; use ToInternal()/ToOriginal()
  /// to translate seeds and answers. Offline/bench use: summed scores are
  /// equal up to floating-point reassociation, not bitwise.
  kDegreeOrdered,
};

/// Validated options for CsrSnapshot construction.
struct CsrOptions {
  CsrLayout layout = CsrLayout::kNatural;

  /// Always OK today; exists so layout knobs added later are validated at
  /// the same place consumers already check.
  Status Validate() const;
};

/// Frozen graph storage. Cheap to move, immutable after construction.
class CsrSnapshot {
 public:
  /// A single out-neighbor entry (same layout the GraphView iterates).
  using Neighbor = GraphView::Neighbor;

  /// An empty snapshot (0 nodes); its View() is the empty view.
  CsrSnapshot() = default;

  /// Captures the current topology and weights of `graph`. Valid for any
  /// graph, including the empty graph and graphs whose tail nodes have no
  /// out-edges.
  explicit CsrSnapshot(const WeightedDigraph& graph);

  /// Captures `graph` under `options` (see CsrLayout). Asserts on invalid
  /// options (Validate them first when they come from config).
  CsrSnapshot(const WeightedDigraph& graph, const CsrOptions& options);

  size_t NumNodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t NumEdges() const { return neighbors_.size(); }
  bool IsValidNode(NodeId node) const { return node < NumNodes(); }

  /// Out-neighbors of `node` as a contiguous range.
  const Neighbor* begin(NodeId node) const {
    return neighbors_.data() + offsets_[node];
  }
  const Neighbor* end(NodeId node) const {
    return neighbors_.data() + offsets_[node + 1];
  }
  size_t OutDegree(NodeId node) const {
    return offsets_[node + 1] - offsets_[node];
  }

  /// Sum of outgoing weights of `node`.
  double OutWeightSum(NodeId node) const;

  /// The non-owning read view over this snapshot, including the edge-id
  /// table (view.HasEdgeIds() is true). Valid while the snapshot lives.
  GraphView View() const {
    if (offsets_.empty()) return GraphView{};
    return GraphView(NumNodes(), offsets_.data(), neighbors_.data(),
                     edge_ids_.data());
  }

  /// True when rows were permuted (kDegreeOrdered); kNatural snapshots
  /// return false and the id maps below are the identity.
  bool IsReordered() const { return !internal_to_original_.empty(); }

  /// Internal (row) id of the graph's `original` node id.
  NodeId ToInternal(NodeId original) const {
    return IsReordered() ? original_to_internal_[original] : original;
  }
  /// Original graph node id of the snapshot's `internal` row id.
  NodeId ToOriginal(NodeId internal) const {
    return IsReordered() ? internal_to_original_[internal] : internal;
  }

 private:
  // offsets_[v]..offsets_[v+1] indexes neighbors_ for node v; has
  // NumNodes()+1 entries (default-constructed snapshot: stays empty).
  std::vector<size_t> offsets_;
  std::vector<Neighbor> neighbors_;
  // Parallel to neighbors_: the WeightedDigraph EdgeId each slot came from.
  std::vector<EdgeId> edge_ids_;
  // Row permutation (kDegreeOrdered only; both empty for kNatural).
  std::vector<NodeId> internal_to_original_;
  std::vector<NodeId> original_to_internal_;
};

}  // namespace kgov::graph

#endif  // KGOV_GRAPH_CSR_H_
