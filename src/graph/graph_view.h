// GraphView: the non-owning, immutable, CSR-backed read interface of kgov.
//
// The mutable WeightedDigraph is the *write* representation (O(1) weight
// updates for the optimizer); every read-side consumer — EIPD serving, PPR,
// SimRank, Omega scoring, the Q&A baselines — operates on a GraphView:
// contiguous (target, weight) neighbor ranges plus an optional edge-id
// table mapping each CSR slot back to the originating WeightedDigraph edge,
// so weight overrides keyed by EdgeId (judgment filter, per-cluster
// solution checks) work unchanged on views and sub-views.
//
// Lifetime rules: a GraphView borrows its arrays from backing storage
// (graph::CsrSnapshot, graph::InducedSubview) and is valid only while that
// storage is alive and unmodified. Views are trivially copyable — pass
// them by value. For epoch-based serving, hold the storage via
// shared_ptr (see core::OnlineKgOptimizer::serving()) and copy views
// freely underneath it.

#ifndef KGOV_GRAPH_GRAPH_VIEW_H_
#define KGOV_GRAPH_GRAPH_VIEW_H_

#include <cstddef>

#include "graph/graph.h"

namespace kgov::graph {

class GraphView;

namespace internal {
/// Debug-build hook (see graph/validate.h): structurally validates a view
/// built from raw arrays. Honors contracts::CheckMode, so soft-mode
/// processes log-and-count instead of aborting.
void DebugValidateView(const GraphView& view);
}  // namespace internal

/// Immutable CSR view over borrowed storage. Cheap to copy.
class GraphView {
 public:
  /// A single out-neighbor entry.
  struct Neighbor {
    NodeId to;
    double weight;
  };

  /// An empty view (0 nodes, 0 edges).
  GraphView() = default;

  /// Wraps borrowed CSR arrays: `offsets` has `num_nodes + 1` entries,
  /// `neighbors` has `offsets[num_nodes]` entries, and `edge_ids` (may be
  /// null) parallels `neighbors` with the originating edge ids.
  GraphView(size_t num_nodes, const size_t* offsets,
            const Neighbor* neighbors, const EdgeId* edge_ids)
      : num_nodes_(num_nodes),
        offsets_(offsets),
        neighbors_(neighbors),
        edge_ids_(edge_ids) {
#if !defined(NDEBUG)
    // Debug builds structurally validate every view assembled from raw
    // arrays (copies of a validated view skip the check; the default
    // copy constructor does not re-enter here).
    internal::DebugValidateView(*this);
#endif
  }

  size_t NumNodes() const { return num_nodes_; }
  size_t NumEdges() const {
    return num_nodes_ == 0 ? 0 : offsets_[num_nodes_];
  }
  bool IsValidNode(NodeId node) const { return node < num_nodes_; }

  /// Out-neighbors of `node` as a contiguous range.
  const Neighbor* begin(NodeId node) const {
    return neighbors_ + offsets_[node];
  }
  const Neighbor* end(NodeId node) const {
    return neighbors_ + offsets_[node + 1];
  }
  size_t OutDegree(NodeId node) const {
    return offsets_[node + 1] - offsets_[node];
  }

  /// True when the view carries the edge-id table (needed by weight
  /// overrides and solution write-back checks).
  bool HasEdgeIds() const { return edge_ids_ != nullptr; }

  /// Edge ids parallel to [begin(node), end(node)); null when the view
  /// carries no edge-id table. For a sub-view these are the *parent*
  /// graph's edge ids (the remap that keeps overrides working).
  const EdgeId* edge_ids(NodeId node) const {
    return edge_ids_ == nullptr ? nullptr : edge_ids_ + offsets_[node];
  }

  /// Sum of outgoing weights of `node`.
  double OutWeightSum(NodeId node) const;

  /// True when every node's out-weights sum to <= 1 + tol (mirrors
  /// WeightedDigraph::IsSubStochastic).
  bool IsSubStochastic(double tol = 1e-9) const;

 private:
  size_t num_nodes_ = 0;
  const size_t* offsets_ = nullptr;
  const Neighbor* neighbors_ = nullptr;
  const EdgeId* edge_ids_ = nullptr;
};

}  // namespace kgov::graph

#endif  // KGOV_GRAPH_GRAPH_VIEW_H_
