# Empty compiler generated dependencies file for taobao_helpdesk.
# This may be replaced when dependencies are built.
