// Judgment filter for erroneous votes (paper SV).
//
// A negative vote is unsatisfiable when no assignment of edge weights can
// rank its best answer above the competitor directly above it. The paper
// tests an *extreme condition*: collect the edge sets of all (<= L)-length
// walks to the best answer a* and to the answer ranked immediately above
// it, then evaluate the two similarities with
//   - shared edges set to a constant in (0, 1),
//   - edges exclusive to a*'s walks set to 1,
//   - edges exclusive to the competitor's walks set to 0.
// If even under this maximally favourable weighting S(vq, a*) cannot exceed
// S(vq, a_{rank-1}), the vote is discarded before SGP encoding.

#ifndef KGOV_VOTES_JUDGMENT_H_
#define KGOV_VOTES_JUDGMENT_H_

#include <memory>
#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"
#include "ppr/eipd_engine.h"
#include "ppr/symbolic_eipd.h"
#include "votes/vote.h"

namespace kgov::votes {

struct JudgmentOptions {
  ppr::SymbolicEipdOptions symbolic;
  /// Which edges the optimizer may change; fixed edges keep their weight in
  /// the extreme condition (null = all edges changeable).
  ppr::SymbolicEipd::VariablePredicate is_variable;
  /// The constant assigned to shared edges (any value in (0,1) works; the
  /// paper leaves it unspecified).
  double shared_edge_weight = 0.5;

  /// Checks this struct and the nested SymbolicEipdOptions.
  Status Validate() const;
};

class JudgmentFilter {
 public:
  /// `graph` is borrowed and must outlive the filter; its weights are
  /// frozen into a CSR snapshot at construction (the filter evaluates the
  /// extreme condition on the unified EipdEngine), so construct the filter
  /// after the batch's graph state is final.
  JudgmentFilter(const graph::WeightedDigraph* graph,
                 JudgmentOptions options);

  /// True when the vote can in principle be satisfied (positive votes are
  /// trivially satisfiable; negative votes run the extreme-condition test).
  bool IsSatisfiable(const Vote& vote) const;

  /// Filters `votes`, keeping satisfiable ones (order preserved).
  std::vector<Vote> FilterVotes(const std::vector<Vote>& votes) const;

 private:
  const graph::WeightedDigraph* graph_;
  JudgmentOptions options_;
  // Frozen view of `graph_` for the numeric extreme-condition evaluation;
  // declared before engine_ so the view it backs outlives the engine.
  std::shared_ptr<const graph::CsrSnapshot> snapshot_;
  ppr::EipdEngine engine_;
};

}  // namespace kgov::votes

#endif  // KGOV_VOTES_JUDGMENT_H_
