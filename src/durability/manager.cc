#include "durability/manager.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/fault_injection.h"
#include "common/fs.h"
#include "common/logging.h"
#include "durability/snapshot.h"
#include "graph/csr.h"
#include "graph/validate.h"
#include "serve/validate.h"
#include "telemetry/metrics.h"

namespace kgov::durability {
namespace {

struct ManagerMetrics {
  telemetry::Counter* checkpoints;
  telemetry::Counter* recoveries;
  telemetry::Histogram* checkpoint_span;

  static const ManagerMetrics& Get() {
    static const ManagerMetrics m = [] {
      telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Global();
      return ManagerMetrics{
          reg.GetCounter("durability.checkpoints"),
          reg.GetCounter("durability.recoveries"),
          reg.GetHistogram("span.durability.checkpoint.seconds")};
    }();
    return m;
  }
};

}  // namespace

Status DurabilityOptions::Validate() const {
  if (dir.empty()) {
    return Status::InvalidArgument("DurabilityOptions.dir must be set");
  }
  if (snapshots_to_keep < 1) {
    return Status::InvalidArgument(
        "DurabilityOptions.snapshots_to_keep must be >= 1");
  }
  return wal.Validate();
}

Status RecoverOptions::Validate() const { return Status::OK(); }

StatusOr<DurabilityManager> DurabilityManager::Open(
    DurabilityOptions options) {
  KGOV_RETURN_IF_ERROR(options.Validate());
  KGOV_RETURN_IF_ERROR(fs::CreateDirs(options.dir));
  KGOV_ASSIGN_OR_RETURN(VoteWal wal,
                        VoteWal::Open(options.dir, options.wal));
  return DurabilityManager(std::move(options.dir), options.snapshots_to_keep,
                           std::move(wal));
}

Status DurabilityManager::Checkpoint(const core::OnlineKgOptimizer& optimizer,
                                     uint64_t num_entities,
                                     uint64_t num_documents) {
  const ManagerMetrics& metrics = ManagerMetrics::Get();
  telemetry::ScopedSpan span(metrics.checkpoint_span);

  // Step 1: roll the WAL first. Every vote acknowledged from here on
  // lands in a segment the snapshot's wal_seq stamp marks for replay, so
  // the snapshot and the surviving log can never disagree about a vote.
  KGOV_RETURN_IF_ERROR(wal_.RollSegment());

  // Step 2: freeze the optimizer's current state. The pinned epoch, the
  // vote buffers, and the wal_seq stamp are captured before the write so
  // a concurrent reader's view is irrelevant (the write path - and thus
  // Checkpoint - is single-threaded by contract).
  const core::ServingEpoch epoch = optimizer.CurrentEpoch();
  SnapshotMeta meta;
  meta.epoch = epoch.epoch;
  meta.num_entities = num_entities;
  meta.num_documents = num_documents;
  meta.wal_seq = wal_.live_seq();
  meta.pending = optimizer.PendingVoteList();
  meta.dead_letters = optimizer.DeadLetters();

  // Step 3: atomic publish (contains the kCrashMidSnapshot kill point).
  const std::string path = dir_ + "/" + SnapshotFileName(meta.epoch);
  KGOV_RETURN_IF_ERROR(WriteSnapshot(path, epoch.view(), meta));

  // Kill point: the new snapshot is live but the old generation has not
  // been garbage-collected - recovery must prefer the new snapshot and
  // ignore the stale segments its wal_seq stamp excludes.
  MaybeKillProcess(FaultSite::kCrashMidEpochSwap);

  // Step 4: truncate the log behind the snapshot and thin old snapshots.
  // Failures here are cleanup failures, not durability failures - the
  // state IS checkpointed - so they are logged, not returned.
  Status gc = wal_.DeleteSegmentsBelow(meta.wal_seq);
  if (gc.ok()) gc = DeleteSnapshotsBeyondRetention();
  if (!gc.ok()) {
    KGOV_LOG(WARNING) << "checkpoint GC incomplete (stale files remain in "
                      << dir_ << "): " << gc.ToString();
  }
  metrics.checkpoints->Increment();
  return Status::OK();
}

Status DurabilityManager::DeleteSnapshotsBeyondRetention() {
  KGOV_ASSIGN_OR_RETURN(std::vector<std::string> entries, fs::ListDir(dir_));
  std::vector<std::string> snapshots;
  for (const std::string& name : entries) {
    if (ParseSnapshotFileName(name).has_value()) snapshots.push_back(name);
  }
  if (snapshots.size() <= snapshots_to_keep_) return Status::OK();
  // ListDir sorts ascending and the names zero-pad their epoch, so the
  // oldest snapshots come first.
  for (size_t i = 0; i + snapshots_to_keep_ < snapshots.size(); ++i) {
    KGOV_RETURN_IF_ERROR(fs::RemoveFile(dir_ + "/" + snapshots[i]));
  }
  return fs::SyncDir(dir_);
}

StatusOr<RecoveredState> Recover(const std::string& dir,
                                 const RecoverOptions& options) {
  KGOV_RETURN_IF_ERROR(options.Validate());
  KGOV_ASSIGN_OR_RETURN(std::vector<std::string> entries, fs::ListDir(dir));
  std::vector<std::string> snapshots;
  for (const std::string& name : entries) {
    if (ParseSnapshotFileName(name).has_value()) snapshots.push_back(name);
  }
  // Newest first: recovery wants the snapshot that minimizes replay, and
  // only falls back when a newer file fails its checksum.
  std::sort(snapshots.rbegin(), snapshots.rend());

  RecoveredState state;
  std::unique_ptr<MappedSnapshot> loaded;
  SnapshotLoadOptions load_options;
  load_options.verify_body_checksum = options.verify_body_checksum;
  for (const std::string& name : snapshots) {
    StatusOr<MappedSnapshot> candidate =
        MappedSnapshot::Load(dir + "/" + name, load_options);
    if (candidate.ok()) {
      loaded = std::make_unique<MappedSnapshot>(std::move(candidate.value()));
      break;
    }
    // Loud skip: a corrupted snapshot is detected, reported, and stepped
    // over - never trusted, never silently ignored.
    KGOV_LOG(ERROR) << "recovery: skipping snapshot " << name << ": "
                    << candidate.status().ToString();
    ++state.snapshots_skipped;
  }
  if (loaded == nullptr) {
    return Status::NotFound(
        "no loadable snapshot in " + dir + " (" +
        std::to_string(snapshots.size()) + " candidate(s), " +
        std::to_string(state.snapshots_skipped) + " corrupt)");
  }

  state.snapshot_path = loaded->path();
  state.epoch = loaded->epoch();
  state.num_entities = loaded->num_entities();
  state.num_documents = loaded->num_documents();
  state.graph = loaded->ToWeightedDigraph();
  state.pending = loaded->pending();
  state.dead_letters = loaded->dead_letters();

  WalReplayOptions replay_options;
  replay_options.truncate_torn_tail = options.truncate_torn_tail;
  KGOV_ASSIGN_OR_RETURN(
      WalReplayResult replay,
      ReplayWal(dir, loaded->wal_seq(), replay_options));
  state.wal_records_replayed = replay.records.size();
  state.torn_tails_truncated = replay.torn_tails_truncated;
  state.corrupt_records = replay.corrupt_records;
  for (WalRecord& record : replay.records) {
    if (record.type == WalRecordType::kVote) {
      state.pending.push_back(std::move(record.vote));
      continue;
    }
    // A replayed dead-letter record moves the vote out of the pending
    // list (it was abandoned after the snapshot froze it as pending).
    auto it = std::find_if(
        state.pending.begin(), state.pending.end(),
        [&](const votes::Vote& vote) { return vote.id == record.vote.id; });
    if (it != state.pending.end()) state.pending.erase(it);
    state.dead_letters.push_back(std::move(record.vote));
  }

  if (options.validate) {
    KGOV_RETURN_IF_ERROR(graph::ValidateCsr(loaded->View()));
    // The serve-path contract check, run on the exact epoch a restored
    // optimizer would republish: recovery refuses to hand back a state
    // the query engine would refuse to serve.
    core::ServingEpoch epoch{
        std::make_shared<graph::CsrSnapshot>(state.graph), state.epoch,
        nullptr};
    KGOV_RETURN_IF_ERROR(serve::ValidateEpochPin(epoch, state.epoch));
  }

  ManagerMetrics::Get().recoveries->Increment();
  return state;
}

}  // namespace kgov::durability
