#include "math/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/logging.h"

namespace kgov::math {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  KGOV_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm2(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

double NormInf(const std::vector<double>& a) {
  double best = 0.0;
  for (double v : a) best = std::max(best, std::fabs(v));
  return best;
}

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  KGOV_DCHECK(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b) {
  KGOV_DCHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

void ScaleInPlace(std::vector<double>* v, double alpha) {
  for (double& x : *v) x *= alpha;
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  KGOV_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace kgov::math
