
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qa/baselines.cc" "src/qa/CMakeFiles/kgov_qa.dir/baselines.cc.o" "gcc" "src/qa/CMakeFiles/kgov_qa.dir/baselines.cc.o.d"
  "/root/repo/src/qa/corpus.cc" "src/qa/CMakeFiles/kgov_qa.dir/corpus.cc.o" "gcc" "src/qa/CMakeFiles/kgov_qa.dir/corpus.cc.o.d"
  "/root/repo/src/qa/corpus_io.cc" "src/qa/CMakeFiles/kgov_qa.dir/corpus_io.cc.o" "gcc" "src/qa/CMakeFiles/kgov_qa.dir/corpus_io.cc.o.d"
  "/root/repo/src/qa/kg_builder.cc" "src/qa/CMakeFiles/kgov_qa.dir/kg_builder.cc.o" "gcc" "src/qa/CMakeFiles/kgov_qa.dir/kg_builder.cc.o.d"
  "/root/repo/src/qa/metrics.cc" "src/qa/CMakeFiles/kgov_qa.dir/metrics.cc.o" "gcc" "src/qa/CMakeFiles/kgov_qa.dir/metrics.cc.o.d"
  "/root/repo/src/qa/qa_system.cc" "src/qa/CMakeFiles/kgov_qa.dir/qa_system.cc.o" "gcc" "src/qa/CMakeFiles/kgov_qa.dir/qa_system.cc.o.d"
  "/root/repo/src/qa/user_sim.cc" "src/qa/CMakeFiles/kgov_qa.dir/user_sim.cc.o" "gcc" "src/qa/CMakeFiles/kgov_qa.dir/user_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kgov_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kgov_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/kgov_math.dir/DependInfo.cmake"
  "/root/repo/build/src/ppr/CMakeFiles/kgov_ppr.dir/DependInfo.cmake"
  "/root/repo/build/src/votes/CMakeFiles/kgov_votes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
