// User votes (paper Definition 2).
//
// A vote records the query, the ranked top-k answer list the system
// returned, and the answer the user singled out as best. When the best
// answer is already ranked first the vote is *positive* (a confirmation);
// otherwise it is *negative* (a correction).

#ifndef KGOV_VOTES_VOTE_H_
#define KGOV_VOTES_VOTE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "ppr/query_seed.h"

namespace kgov::votes {

struct Vote {
  /// Stable id used in diagnostics and cluster assignments.
  uint32_t id = 0;
  /// The query, as links into the knowledge graph.
  ppr::QuerySeed query;
  /// Ranked top-k answers shown to the user (best-ranked first).
  std::vector<graph::NodeId> answer_list;
  /// The user's choice of best answer; must appear in answer_list.
  graph::NodeId best_answer = graph::kInvalidNode;
  /// Relative trust/importance of this vote (> 0). Scales the vote's
  /// constraint penalties in the multi-vote objective; use e.g. a user's
  /// historical reliability, or a count when identical implicit votes are
  /// aggregated. Extension beyond the paper (which weighs all votes
  /// equally).
  double weight = 1.0;

  /// True when the user confirmed the top-ranked answer.
  bool IsPositive() const {
    return !answer_list.empty() && answer_list.front() == best_answer;
  }
  bool IsNegative() const { return !IsPositive(); }

  /// 1-based rank of the best answer in answer_list; 0 when absent.
  int BestAnswerRank() const;

  /// Structural sanity: non-empty list, best answer present, query seeded.
  bool IsWellFormed() const;
};

/// 1-based position of `node` in `ranked` (0 when absent).
int RankOf(const std::vector<graph::NodeId>& ranked, graph::NodeId node);

/// Counts of positive/negative votes in `votes`.
struct VoteSetSummary {
  size_t positive = 0;
  size_t negative = 0;
};
VoteSetSummary Summarize(const std::vector<Vote>& votes);

}  // namespace kgov::votes

#endif  // KGOV_VOTES_VOTE_H_
