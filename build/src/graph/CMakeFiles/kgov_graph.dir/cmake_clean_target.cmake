file(REMOVE_RECURSE
  "libkgov_graph.a"
)
