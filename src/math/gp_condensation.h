// Condensation solver for signomial programs (successive geometric-
// programming approximation).
//
// The classical approach to SGP (cf. the paper's reference [35], Xu 2014,
// and Boyd et al.'s GP tutorial [11]): each vote constraint has the form
//   p(x) <= q(x)        with p, q posynomials
// (in kgov's encoding p = S(vq, a_other) and q = S(vq, a_best), both sums
// of positive walk terms). At the current iterate x0, the denominator
// posynomial is *condensed* to its arithmetic-geometric-mean monomial
// lower bound
//   q(x) >= q~(x) = prod_k (u_k(x) / alpha_k)^{alpha_k},
//   alpha_k = u_k(x0) / q(x0),
// which turns p(x)/q~(x) <= 1 into a valid posynomial (GP) constraint.
// The resulting geometric program is convex in log-space and solved with
// the augmented Lagrangian + L-BFGS stack; the condensation point is then
// moved to the solution and the process repeats (a standard inner-convex
// successive approximation, which converges to a KKT point of the SGP).
//
// The objective is the GP-compatible *minimal multiplicative change*:
//   minimize t  s.t.  x_e <= t * x0_e  and  x0_e <= t * x_e,
// i.e. the largest ratio by which any edge weight moves - the natural
// proximal notion for conditional-probability weights (the paper's
// Euclidean objective, Eq. 12, is not posynomial). Constraint strictness
// uses a multiplicative margin: p(x) <= q(x) / (1 + margin).

#ifndef KGOV_MATH_GP_CONDENSATION_H_
#define KGOV_MATH_GP_CONDENSATION_H_

#include "math/optimizer.h"
#include "math/sgp_problem.h"
#include "math/sgp_solver.h"

namespace kgov::math {

struct CondensationOptions {
  /// Outer successive-approximation iterations.
  int max_outer_iterations = 15;
  /// Stop when the iterate moves less than this (inf-norm, log space).
  double outer_tolerance = 1e-6;
  /// Multiplicative strictness: p <= q / (1 + margin).
  double strict_margin = 1e-4;
  /// Inner (log-space GP) solver settings.
  SolveOptions inner;
  AugLagOptions auglag;

  /// Checks this struct and the nested solver options.
  Status Validate() const;
};

/// Solves an SgpProblem whose every constraint splits into
/// posynomial - posynomial with a nonempty negative part (true for all
/// vote-encoded programs). Returns Infeasible/InvalidArgument status on
/// problems outside that class or without a feasible condensed iterate.
class CondensationSgpSolver {
 public:
  explicit CondensationSgpSolver(CondensationOptions options = {})
      : options_(options) {}

  SgpSolution Solve(const SgpProblem& problem) const;

 private:
  CondensationOptions options_;
};

}  // namespace kgov::math

#endif  // KGOV_MATH_GP_CONDENSATION_H_
