#include "stream/ingest_queue.h"

#include <chrono>
#include <utility>

#include "telemetry/metrics.h"

namespace kgov::stream {

namespace {

// Ingest-side streaming telemetry; pointers resolved once.
struct StreamIngestMetrics {
  telemetry::Counter* votes_ingested;
  telemetry::Counter* shed_votes;
  telemetry::Counter* rejected_votes;
  telemetry::Gauge* queue_depth;

  static const StreamIngestMetrics& Get() {
    static const StreamIngestMetrics m = [] {
      telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Global();
      return StreamIngestMetrics{reg.GetCounter("stream.votes_ingested"),
                                 reg.GetCounter("stream.shed_votes"),
                                 reg.GetCounter("stream.rejected_votes"),
                                 reg.GetGauge("stream.queue_depth")};
    }();
    return m;
  }
};

}  // namespace

Status VoteIngestQueueOptions::Validate() const {
  if (capacity < 1) {
    return Status::InvalidArgument(
        "VoteIngestQueueOptions.capacity must be >= 1");
  }
  return Status::OK();
}

VoteIngestQueue::VoteIngestQueue(VoteIngestQueueOptions options,
                                 votes::VoteLogSink* log,
                                 std::function<bool()> dead_letter_full)
    : options_(options),
      options_status_(options.Validate()),
      log_(log),
      dead_letter_full_(std::move(dead_letter_full)) {}

Status VoteIngestQueue::Offer(votes::Vote vote) {
  return OfferImpl(std::move(vote), options_.block_when_full);
}

Status VoteIngestQueue::TryOffer(votes::Vote vote) {
  return OfferImpl(std::move(vote), /*may_block=*/false);
}

Status VoteIngestQueue::OfferImpl(votes::Vote vote, bool may_block) {
  KGOV_RETURN_IF_ERROR(options_status_);
  const StreamIngestMetrics& metrics = StreamIngestMetrics::Get();
  MutexLock lock(mu_);
  if (closed_) {
    return Status::FailedPrecondition("vote ingest queue is closed");
  }
  // Dead-letter backpressure: accepting a vote that can only displace an
  // abandoned one trades silent eviction for an honest shed.
  if (dead_letter_full_ && dead_letter_full_()) {
    ++stats_.shed_dead_letter_full;
    metrics.shed_votes->Increment();
    return Status::ResourceExhausted(
        "vote shed: dead-letter buffer at capacity");
  }
  if (queue_.size() >= options_.capacity) {
    if (!may_block) {
      ++stats_.rejected_queue_full;
      metrics.rejected_votes->Increment();
      return Status::ResourceExhausted("vote ingest queue full");
    }
    lock.Wait(not_full_, [this]() KGOV_REQUIRES(mu_) {
      return closed_ || queue_.size() < options_.capacity;
    });
    if (closed_) {
      return Status::FailedPrecondition("vote ingest queue is closed");
    }
    // The dead-letter buffer may have filled while this producer slept.
    if (dead_letter_full_ && dead_letter_full_()) {
      ++stats_.shed_dead_letter_full;
      metrics.shed_votes->Increment();
      return Status::ResourceExhausted(
          "vote shed: dead-letter buffer at capacity");
    }
  }
  if (log_ != nullptr) {
    // Durable-acknowledgment ordering: the append happens under mu_, so a
    // concurrent DrainAllAndRun checkpoint either sees this vote in the
    // queue or runs before the append (never between append and enqueue).
    KGOV_RETURN_IF_ERROR(log_->AppendVote(vote));
  }
  queue_.push_back(std::move(vote));
  ++stats_.accepted;
  metrics.votes_ingested->Increment();
  metrics.queue_depth->Set(static_cast<double>(queue_.size()));
  not_empty_.NotifyOne();
  return Status::OK();
}

StatusOr<std::vector<votes::Vote>> VoteIngestQueue::DrainUpTo(size_t max) {
  KGOV_RETURN_IF_ERROR(options_status_);
  std::vector<votes::Vote> drained;
  MutexLock lock(mu_);
  while (!queue_.empty() && drained.size() < max) {
    drained.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  if (!drained.empty()) {
    StreamIngestMetrics::Get().queue_depth->Set(
        static_cast<double>(queue_.size()));
    not_full_.NotifyAll();
  }
  return drained;
}

StatusOr<std::vector<votes::Vote>> VoteIngestQueue::WaitAndDrain(
    size_t max, int64_t timeout_ms) {
  KGOV_RETURN_IF_ERROR(options_status_);
  std::vector<votes::Vote> drained;
  MutexLock lock(mu_);
  auto ready = [this]() KGOV_REQUIRES(mu_) {
    return closed_ || !queue_.empty();
  };
  if (timeout_ms <= 0) {
    lock.Wait(not_empty_, ready);
  } else {
    lock.WaitFor(not_empty_, std::chrono::milliseconds(timeout_ms), ready);
  }
  while (!queue_.empty() && drained.size() < max) {
    drained.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  if (!drained.empty()) {
    StreamIngestMetrics::Get().queue_depth->Set(
        static_cast<double>(queue_.size()));
    not_full_.NotifyAll();
  }
  return drained;
}

Status VoteIngestQueue::DrainAllAndRun(
    const std::function<Status(std::vector<votes::Vote>)>& fn) {
  KGOV_RETURN_IF_ERROR(options_status_);
  MutexLock lock(mu_);
  std::vector<votes::Vote> drained;
  drained.reserve(queue_.size());
  while (!queue_.empty()) {
    drained.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  StreamIngestMetrics::Get().queue_depth->Set(0.0);
  // fn runs with mu_ held: producers (whose log appends nest under mu_)
  // stay blocked out, so a checkpoint inside fn sees a frozen WAL.
  Status result = fn(std::move(drained));
  not_full_.NotifyAll();
  return result;
}

Status VoteIngestQueue::Close() {
  MutexLock lock(mu_);
  closed_ = true;
  not_full_.NotifyAll();
  not_empty_.NotifyAll();
  return Status::OK();
}

size_t VoteIngestQueue::size() const {
  MutexLock lock(mu_);
  return queue_.size();
}

bool VoteIngestQueue::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

VoteIngestQueue::Stats VoteIngestQueue::GetStats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace kgov::stream
