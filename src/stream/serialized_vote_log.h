// SerializedVoteLog: a mutex around a VoteLogSink so the streaming
// pipeline's two writers cannot interleave on the WAL.
//
// VoteLogSink implementations (durability::VoteWal in particular) are
// single-writer. Under streaming there are two: producer threads append
// acknowledged votes from inside VoteIngestQueue::Offer, and the consumer
// thread appends dead-letter records from inside the optimizer's flush.
// Routing both through this decorator restores the single-writer contract
// without widening the sink interface.
//
// Checkpoints do not need the lock: DurabilityManager::Checkpoint runs on
// the consumer thread inside VoteIngestQueue::DrainAllAndRun, which holds
// the queue mutex that every producer-side append nests under, so no
// append can race the segment roll.

#ifndef KGOV_STREAM_SERIALIZED_VOTE_LOG_H_
#define KGOV_STREAM_SERIALIZED_VOTE_LOG_H_

#include "common/contracts.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "votes/vote_log.h"

namespace kgov::stream {

class SerializedVoteLog final : public votes::VoteLogSink {
 public:
  /// `base` is borrowed and must outlive this object.
  explicit SerializedVoteLog(votes::VoteLogSink* base) : base_(base) {
    KGOV_CHECK(base_ != nullptr);
  }

  Status AppendVote(const votes::Vote& vote) override
      KGOV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return base_->AppendVote(vote);
  }

  Status AppendDeadLetter(const votes::Vote& vote) override
      KGOV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return base_->AppendDeadLetter(vote);
  }

 private:
  mutable Mutex mu_{KGOV_LOCK_RANK(kVoteLogSerial)};
  votes::VoteLogSink* base_;
};

}  // namespace kgov::stream

#endif  // KGOV_STREAM_SERIALIZED_VOTE_LOG_H_
