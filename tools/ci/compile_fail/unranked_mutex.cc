// Lint canary for the lock-rank-coverage rule. This file is never
// compiled: tools/ci/analyze.sh feeds it to tools/lint/kgov_lint.py
// --file and fails the build if the planted violations below stop being
// reported.
//
// Every kgov::Mutex / SharedMutex in production code must carry a rank
// from common/lock_ranks.h so the debug-build deadlock detector
// (common/lock_rank.h) can check acquisition order by rank instead of
// falling back to per-instance cycle detection.

#include "common/lock_ranks.h"
#include "common/thread_annotations.h"

namespace kgov {

struct UnrankedHolder {
  mutable Mutex mu_;        // violation: no KGOV_LOCK_RANK initializer
  SharedMutex table_mu_;    // violation: SharedMutex is covered too
  kgov::Mutex qualified_;   // violation: qualified spelling is covered too

  // Ranked and explicitly suppressed declarations must stay clean:
  Mutex ranked_{KGOV_LOCK_RANK(kLogging)};
  // kgov-lint: allow(lock-rank)
  Mutex deliberately_unranked_;
};

}  // namespace kgov
