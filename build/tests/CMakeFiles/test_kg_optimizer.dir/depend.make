# Empty dependencies file for test_kg_optimizer.
# This may be replaced when dependencies are built.
