// End-to-end reproduction smoke test: build a simulated Taobao-style
// environment, optimize the deployed graph with the collected votes, and
// verify the paper's headline effects at miniature scale:
//   * the multi-vote solution improves the votes' Omega score, and
//   * answer-ranking metrics on held-out test questions move toward the
//     truth graph's metrics.

#include <gtest/gtest.h>

#include "core/kg_optimizer.h"
#include "core/scoring.h"
#include "qa/metrics.h"
#include "qa/user_sim.h"

namespace kgov {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    qa::CorpusParams corpus;
    corpus.num_entities = 150;
    corpus.num_topics = 15;
    corpus.num_documents = 120;
    corpus.mentions_per_document = 6;
    corpus.mentions_per_question = 3;

    qa::UserSimParams sim;
    sim.num_votes = 40;
    sim.num_test_questions = 40;
    sim.qa.top_k = 10;
    sim.qa.eipd.max_length = 4;
    sim.weight_noise = 1.1;
    sim.edge_dropout = 0.10;

    Rng rng(20260705);
    Result<qa::SimulatedEnvironment> env =
        qa::BuildEnvironment(corpus, sim, rng);
    ASSERT_TRUE(env.ok());
    env_ = std::move(env).value();

    options_.encoder.symbolic.eipd.max_length = 4;
    options_.encoder.symbolic.min_path_mass = 1e-7;
    options_.encoder.is_variable = env_.deployed.EntityEdgePredicate();
    qa_options_ = sim.qa;
  }

  qa::RankingMetrics Evaluate(const graph::WeightedDigraph& graph) {
    qa::QaSystem system(&graph, &env_.deployed.answer_nodes,
                        env_.deployed.num_entities, qa_options_);
    std::vector<std::vector<qa::RankedDocument>> rankings;
    rankings.reserve(env_.test_questions.size());
    for (const qa::Question& q : env_.test_questions) {
      rankings.push_back(system.Ask(q));
    }
    return qa::EvaluateRankings(env_.test_questions, rankings);
  }

  qa::SimulatedEnvironment env_;
  core::OptimizerOptions options_;
  qa::QaOptions qa_options_;
};

TEST_F(EndToEndTest, MultiVoteImprovesOmegaOnVotes) {
  core::KgOptimizer optimizer(&env_.deployed.graph, options_);
  Result<core::OptimizeReport> report =
      optimizer.MultiVoteSolve(env_.votes);
  ASSERT_TRUE(report.ok());
  core::OmegaResult omega = core::EvaluateOmega(
      report->optimized, env_.votes, options_.encoder.symbolic.eipd);
  EXPECT_GT(omega.average, 0.0);
}

TEST_F(EndToEndTest, MultiVoteImprovesHeldOutMetrics) {
  qa::RankingMetrics before = Evaluate(env_.deployed.graph);

  core::KgOptimizer optimizer(&env_.deployed.graph, options_);
  Result<core::OptimizeReport> report =
      optimizer.MultiVoteSolve(env_.votes);
  ASSERT_TRUE(report.ok());
  qa::RankingMetrics after = Evaluate(report->optimized);

  // The optimized graph should answer held-out questions at least as well
  // as the corrupted one (the paper's Table IV/V effect). MRR measures the
  // voted-for quantity (best-answer rank) and gets a tight bound; MAP
  // covers the full graded-relevance set, which vote optimization does not
  // target directly, so it is allowed a slightly wider tolerance.
  EXPECT_GE(after.mrr, before.mrr - 0.02);
  EXPECT_GE(after.map, before.map - 0.05);
}

TEST_F(EndToEndTest, SplitMergeComparableToMultiVote) {
  core::KgOptimizer optimizer(&env_.deployed.graph, options_);
  Result<core::OptimizeReport> multi =
      optimizer.MultiVoteSolve(env_.votes);
  Result<core::OptimizeReport> split =
      optimizer.SplitMergeSolve(env_.votes);
  ASSERT_TRUE(multi.ok() && split.ok());

  core::OmegaResult omega_multi = core::EvaluateOmega(
      multi->optimized, env_.votes, options_.encoder.symbolic.eipd);
  core::OmegaResult omega_split = core::EvaluateOmega(
      split->optimized, env_.votes, options_.encoder.symbolic.eipd);
  // S-M should stay within a reasonable factor of the full batch solve
  // (the paper observes it is close or even better, Fig. 6 d-f).
  EXPECT_GT(omega_split.average, 0.0);
  EXPECT_GE(omega_split.average, 0.4 * omega_multi.average);
}

TEST_F(EndToEndTest, TruthGraphUpperBoundsDeployed) {
  // Sanity check of the simulation itself: the corrupted deployed graph
  // must answer worse than the clean truth graph.
  qa::RankingMetrics truth = Evaluate(env_.truth.graph);
  qa::RankingMetrics deployed = Evaluate(env_.deployed.graph);
  EXPECT_GT(truth.mrr, deployed.mrr);
}

}  // namespace
}  // namespace kgov
