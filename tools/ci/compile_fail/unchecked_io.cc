// Lint canary: kgov_lint.py --file must flag BOTH writes below with
// no-unchecked-io, or the rule has rotted. This file is never compiled
// (the compile_fail directory is excluded from the build and from the
// normal lint walk); tools/ci/analyze.sh runs the linter against it and
// fails the gate if it exits 0.

#include <cstdio>
#include <fstream>
#include <string>

namespace {

void UncheckedOfstream(const std::string& path) {
  std::ofstream out(path);  // violation: stream state never checked
  out << "results that vanish on a full disk\n";
}

void UncheckedFwrite(std::FILE* file, const char* data, size_t size) {
  fwrite(data, 1, size, file);  // violation: written count discarded
}

}  // namespace
