#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <optional>
#include <random>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/online_optimizer.h"
#include "ppr/eipd_engine.h"
#include "ppr/query_seed.h"
#include "telemetry/metrics.h"

namespace kgov::serve {
namespace {

using core::OnlineKgOptimizer;
using core::OnlineOptimizerOptions;
using graph::WeightedDigraph;

WeightedDigraph MakeFixture() {
  WeightedDigraph g(5);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.6).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 0.4).ok());
  EXPECT_TRUE(g.AddEdge(1, 3, 1.0).ok());
  EXPECT_TRUE(g.AddEdge(2, 4, 1.0).ok());
  return g;
}

votes::Vote MakeVote(graph::NodeId best, uint32_t id) {
  votes::Vote vote;
  vote.id = id;
  vote.query.links.emplace_back(0, 1.0);
  vote.answer_list = {3, 4};
  vote.best_answer = best;
  return vote;
}

OnlineOptimizerOptions SmallOnlineOptions() {
  OnlineOptimizerOptions options;
  options.batch_size = 100;  // flush explicitly
  options.optimizer.encoder.symbolic.eipd.max_length = 4;
  options.optimizer.apply_judgment_filter = false;
  options.strategy = core::FlushStrategy::kMultiVote;
  return options;
}

QueryEngineOptions SmallEngineOptions() {
  QueryEngineOptions options;
  options.eipd.max_length = 4;
  options.top_k = 2;
  options.num_threads = 2;
  return options;
}

const std::vector<graph::NodeId>& Candidates() {
  static const std::vector<graph::NodeId> c = {3, 4};
  return c;
}

/// Deterministic query stream: seeds over source nodes {0, 1, 2} with
/// pseudo-random (but seeded, hence replayable) link weights.
std::vector<ppr::QuerySeed> SeededStream(size_t count, uint64_t rng_seed) {
  std::mt19937_64 rng(rng_seed);
  std::uniform_real_distribution<double> weight(0.1, 1.0);
  std::vector<ppr::QuerySeed> seeds;
  seeds.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ppr::QuerySeed seed;
    const graph::NodeId first = static_cast<graph::NodeId>(rng() % 3);
    seed.links.emplace_back(first, weight(rng));
    if (rng() % 2 == 0) {
      seed.links.emplace_back((first + 1) % 3, weight(rng));
    }
    seed.Normalize();
    seeds.push_back(std::move(seed));
  }
  return seeds;
}

bool BitwiseEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Bitwise comparison of two rankings (node ids and raw score bits).
void ExpectIdenticalAnswers(const std::vector<ppr::ScoredAnswer>& a,
                            const std::vector<ppr::ScoredAnswer>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node) << "rank " << i;
    EXPECT_TRUE(BitwiseEqual(a[i].score, b[i].score))
        << "rank " << i << ": " << a[i].score << " vs " << b[i].score;
  }
}

TEST(QueryEngineTest, CreateFailsFastNamingTheField) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());

  QueryEngineOptions bad = SmallEngineOptions();
  bad.top_k = 0;
  auto engine_or = QueryEngine::Create(&online, &Candidates(), bad);
  ASSERT_FALSE(engine_or.ok());
  EXPECT_EQ(engine_or.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(engine_or.status().message().find("top_k"), std::string::npos)
      << engine_or.status().message();

  auto null_source = QueryEngine::Create(nullptr, &Candidates(),
                                         SmallEngineOptions());
  EXPECT_FALSE(null_source.ok());

  auto null_candidates =
      QueryEngine::Create(&online, nullptr, SmallEngineOptions());
  EXPECT_FALSE(null_candidates.ok());

  QueryEngineOptions bad_batch = SmallEngineOptions();
  bad_batch.max_batch_roots = 0;
  auto batch_or = QueryEngine::Create(&online, &Candidates(), bad_batch);
  ASSERT_FALSE(batch_or.ok());
  EXPECT_NE(batch_or.status().message().find("max_batch_roots"),
            std::string::npos)
      << batch_or.status().message();

  QueryEngineOptions bad_admission = SmallEngineOptions();
  bad_admission.admission.capacity = 0;
  auto admission_or =
      QueryEngine::Create(&online, &Candidates(), bad_admission);
  ASSERT_FALSE(admission_or.ok());
  EXPECT_NE(admission_or.status().message().find("capacity"),
            std::string::npos)
      << admission_or.status().message();
}

TEST(QueryEngineTest, RepeatSubmitIsServedFromCacheBitwiseIdentical) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());
  auto engine_or =
      QueryEngine::Create(&online, &Candidates(), SmallEngineOptions());
  ASSERT_TRUE(engine_or.ok()) << engine_or.status();
  QueryEngine& engine = **engine_or;

  ppr::QuerySeed seed = ppr::QuerySeed::UniformOver({0});
  StatusOr<RankedAnswers> first = engine.Submit(seed);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->from_cache);
  EXPECT_EQ(first->epoch, 0u);
  ASSERT_EQ(first->answers.size(), 2u);

  StatusOr<RankedAnswers> second = engine.Submit(seed);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->from_cache);
  ExpectIdenticalAnswers(first->answers, second->answers);

  ShardedResultCache::Stats stats = engine.CacheStats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.misses, 1u);
}

TEST(QueryEngineTest, InvalidSeedReturnsErrorNotCrash) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());
  auto engine_or =
      QueryEngine::Create(&online, &Candidates(), SmallEngineOptions());
  ASSERT_TRUE(engine_or.ok()) << engine_or.status();

  ppr::QuerySeed out_of_range;
  out_of_range.links.emplace_back(999, 1.0);
  StatusOr<RankedAnswers> served = (*engine_or)->Submit(out_of_range);
  EXPECT_FALSE(served.ok());
  EXPECT_EQ(served.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, CacheOnAndOffIdenticalAcrossEpochSwaps) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());

  QueryEngineOptions cached = SmallEngineOptions();
  QueryEngineOptions uncached = SmallEngineOptions();
  uncached.enable_cache = false;

  auto cached_or = QueryEngine::Create(&online, &Candidates(), cached);
  auto uncached_or = QueryEngine::Create(&online, &Candidates(), uncached);
  ASSERT_TRUE(cached_or.ok()) << cached_or.status();
  ASSERT_TRUE(uncached_or.ok()) << uncached_or.status();
  QueryEngine& with_cache = **cached_or;
  QueryEngine& without_cache = **uncached_or;

  const std::vector<ppr::QuerySeed> stream = SeededStream(24, 0xC0FFEE);

  // Serve the stream twice on the cached engine (second pass hits), once
  // on the uncached engine; every ranking must be bitwise identical.
  auto serve_and_compare = [&](uint64_t expect_epoch) {
    std::vector<StatusOr<RankedAnswers>> fresh =
        without_cache.SubmitBatch(stream);
    std::vector<StatusOr<RankedAnswers>> pass1 =
        with_cache.SubmitBatch(stream);
    std::vector<StatusOr<RankedAnswers>> pass2 =
        with_cache.SubmitBatch(stream);
    ASSERT_EQ(fresh.size(), stream.size());
    for (size_t i = 0; i < stream.size(); ++i) {
      ASSERT_TRUE(fresh[i].ok()) << fresh[i].status();
      ASSERT_TRUE(pass1[i].ok()) << pass1[i].status();
      ASSERT_TRUE(pass2[i].ok()) << pass2[i].status();
      EXPECT_EQ(fresh[i]->epoch, expect_epoch);
      EXPECT_EQ(pass1[i]->epoch, expect_epoch);
      EXPECT_EQ(pass2[i]->epoch, expect_epoch);
      EXPECT_FALSE(fresh[i]->from_cache);
      // The replay is served from the cache (duplicate seeds may make
      // some pass1 entries hits too, which is fine).
      EXPECT_TRUE(pass2[i]->from_cache);
      ExpectIdenticalAnswers(fresh[i]->answers, pass1[i]->answers);
      ExpectIdenticalAnswers(fresh[i]->answers, pass2[i]->answers);
    }
  };

  serve_and_compare(/*expect_epoch=*/0);

  // Epoch swap: fold a vote in, then re-serve the same stream. Both
  // engines must re-pin epoch 1 and agree again (the cached engine must
  // not leak epoch-0 rankings).
  ASSERT_TRUE(online.AddVote(MakeVote(4, 0)).ok());
  ASSERT_TRUE(online.Flush().ok());
  serve_and_compare(/*expect_epoch=*/1);

  ASSERT_TRUE(online.AddVote(MakeVote(3, 1)).ok());
  ASSERT_TRUE(online.Flush().ok());
  serve_and_compare(/*expect_epoch=*/2);

  EXPECT_EQ(with_cache.PinnedEpochNumber(), 2u);
  EXPECT_EQ(without_cache.PinnedEpochNumber(), 2u);
}

TEST(QueryEngineTest, FaultedFlushLeavesServingOnOldEpoch) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());
  auto engine_or =
      QueryEngine::Create(&online, &Candidates(), SmallEngineOptions());
  ASSERT_TRUE(engine_or.ok()) << engine_or.status();
  QueryEngine& engine = **engine_or;

  ppr::QuerySeed seed = ppr::QuerySeed::UniformOver({0});
  StatusOr<RankedAnswers> before = engine.Submit(seed);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(before->epoch, 0u);

  // A corrupted optimization result must roll back: the engine keeps
  // serving the pinned epoch-0 rankings, bit for bit.
  ASSERT_TRUE(online.AddVote(MakeVote(4, 0)).ok());
  {
    ScopedFault fault(FaultSite::kGraphCorruption,
                      {.probability = 1.0, .max_fires = 1});
    Result<core::FlushReport> r = online.Flush();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  }
  EXPECT_EQ(online.RollbackCount(), 1u);
  EXPECT_EQ(online.CurrentEpochNumber(), 0u);

  StatusOr<RankedAnswers> during = engine.Submit(seed);
  ASSERT_TRUE(during.ok()) << during.status();
  EXPECT_EQ(during->epoch, 0u);
  EXPECT_EQ(engine.PinnedEpochNumber(), 0u);
  ExpectIdenticalAnswers(before->answers, during->answers);

  // With the fault gone the retry publishes epoch 1 and the engine
  // re-pins on the next query.
  ASSERT_TRUE(online.Flush().ok());
  StatusOr<RankedAnswers> after = engine.Submit(seed);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->epoch, 1u);
  EXPECT_EQ(engine.PinnedEpochNumber(), 1u);
}

TEST(QueryEngineTest, ConcurrentFlushAndServeStress) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());
  auto engine_or =
      QueryEngine::Create(&online, &Candidates(), SmallEngineOptions());
  ASSERT_TRUE(engine_or.ok()) << engine_or.status();
  QueryEngine& engine = **engine_or;

  constexpr int kFlushes = 20;
  std::atomic<bool> stop{false};
  std::atomic<int> serve_errors{0};
  std::atomic<int> epoch_regressions{0};

  // Client threads hammer Submit while the optimizer flushes. Served
  // epochs must never go backwards from any single client's view.
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&, t]() {
      const std::vector<ppr::QuerySeed> stream =
          SeededStream(8, 0xBEEF + static_cast<uint64_t>(t));
      uint64_t last_epoch = 0;
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        StatusOr<RankedAnswers> served =
            engine.Submit(stream[i++ % stream.size()]);
        if (!served.ok()) {
          serve_errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (served->epoch < last_epoch) {
          epoch_regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last_epoch = served->epoch;
      }
    });
  }

  for (uint32_t i = 0; i < kFlushes; ++i) {
    ASSERT_TRUE(online.AddVote(MakeVote(i % 2 == 0 ? 4 : 3, i)).ok());
    ASSERT_TRUE(online.Flush().ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(serve_errors.load(), 0);
  EXPECT_EQ(epoch_regressions.load(), 0);
  EXPECT_EQ(online.CurrentEpochNumber(), static_cast<uint64_t>(kFlushes));

  // The next query re-pins the final epoch and serves from it.
  StatusOr<RankedAnswers> final_result =
      engine.Submit(ppr::QuerySeed::UniformOver({0}));
  ASSERT_TRUE(final_result.ok()) << final_result.status();
  EXPECT_EQ(final_result->epoch, static_cast<uint64_t>(kFlushes));
  EXPECT_EQ(engine.PinnedEpochNumber(), static_cast<uint64_t>(kFlushes));
}

TEST(QueryEngineTest, ConcurrentColdMissesCollapseOntoOneLeader) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());
  auto engine_or =
      QueryEngine::Create(&online, &Candidates(), SmallEngineOptions());
  ASSERT_TRUE(engine_or.ok()) << engine_or.status();
  QueryEngine& engine = **engine_or;

  // Cold single-threaded reference, cache and single-flight off.
  QueryEngineOptions cold_options = SmallEngineOptions();
  cold_options.enable_cache = false;
  cold_options.enable_single_flight = false;
  cold_options.num_threads = 1;
  auto cold_or = QueryEngine::Create(&online, &Candidates(), cold_options);
  ASSERT_TRUE(cold_or.ok()) << cold_or.status();
  StatusOr<RankedAnswers> reference =
      (*cold_or)->Submit(ppr::QuerySeed::UniformOver({0}));
  ASSERT_TRUE(reference.ok()) << reference.status();

  // A flash crowd: K threads submit the identical cold query at once.
  constexpr int kThreads = 8;
  std::vector<std::optional<StatusOr<RankedAnswers>>> results(kThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t]() {
      while (!go.load(std::memory_order_relaxed)) std::this_thread::yield();
      results[t].emplace(engine.Submit(ppr::QuerySeed::UniformOver({0})));
    });
  }
  go.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(results[t].has_value());
    ASSERT_TRUE(results[t]->ok()) << results[t]->status();
    ExpectIdenticalAnswers(reference->answers, (**results[t]).answers);
  }

  // Exactly ONE propagation ran; every other query was a cache hit or a
  // coalesced follower. This is the counter-verified dedup invariant the
  // CI smoke gate also enforces.
  QueryEngine::ServeStats stats = engine.GetServeStats();
  EXPECT_EQ(stats.queries, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.leaders, 1u);
  EXPECT_EQ(stats.hits + stats.followers, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(QueryEngineTest, BatchedMultiRootServesBitwiseIdenticalToSolo) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());

  // All seeds share first-link node 0 so the batcher folds them into
  // same-cluster multi-root groups deterministically.
  std::mt19937_64 rng(0xBA7C4);
  std::uniform_real_distribution<double> weight(0.1, 1.0);
  std::vector<ppr::QuerySeed> stream;
  for (int i = 0; i < 32; ++i) {
    ppr::QuerySeed seed;
    seed.links.emplace_back(0, weight(rng));
    if (i % 2 == 0) seed.links.emplace_back(1 + (i % 2), weight(rng));
    seed.Normalize();
    stream.push_back(std::move(seed));
  }

  QueryEngineOptions batched = SmallEngineOptions();
  batched.enable_cache = false;
  batched.enable_single_flight = false;  // every lane propagates
  batched.enable_batching = true;
  batched.max_batch_roots = 8;
  QueryEngineOptions solo = batched;
  solo.enable_batching = false;

  auto batched_or = QueryEngine::Create(&online, &Candidates(), batched);
  auto solo_or = QueryEngine::Create(&online, &Candidates(), solo);
  ASSERT_TRUE(batched_or.ok()) << batched_or.status();
  ASSERT_TRUE(solo_or.ok()) << solo_or.status();

  telemetry::Counter* multi_passes =
      telemetry::MetricRegistry::Global().GetCounter(
          "serving.eipd.multi_passes");
  const uint64_t passes_before = multi_passes->Value();

  std::vector<StatusOr<RankedAnswers>> from_batched =
      (*batched_or)->SubmitBatch(stream);
  std::vector<StatusOr<RankedAnswers>> from_solo =
      (*solo_or)->SubmitBatch(stream);
  ASSERT_EQ(from_batched.size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(from_batched[i].ok()) << from_batched[i].status();
    ASSERT_TRUE(from_solo[i].ok()) << from_solo[i].status();
    ExpectIdenticalAnswers(from_solo[i]->answers, from_batched[i]->answers);
  }
  // The batched engine really took the multi-root path.
  EXPECT_GT(multi_passes->Value(), passes_before);
  EXPECT_EQ((*batched_or)->GetServeStats().misses, stream.size());
}

TEST(QueryEngineTest, OutcomeAccountingIdentityHoldsUnderConcurrentLoad) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());
  auto engine_or =
      QueryEngine::Create(&online, &Candidates(), SmallEngineOptions());
  ASSERT_TRUE(engine_or.ok()) << engine_or.status();
  QueryEngine& engine = **engine_or;

  constexpr int kClients = 4;
  constexpr int kReps = 3;
  constexpr size_t kBatch = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t]() {
      // Overlapping streams: duplicates within and across threads force
      // hits, leaders, and followers to all occur.
      const std::vector<ppr::QuerySeed> stream =
          SeededStream(kBatch, 0xFEED + static_cast<uint64_t>(t % 2));
      for (int rep = 0; rep < kReps; ++rep) {
        std::vector<StatusOr<RankedAnswers>> results =
            engine.SubmitBatch(stream);
        for (const StatusOr<RankedAnswers>& r : results) {
          if (!r.ok()) failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Every query resolves to exactly one outcome: the books must balance
  // to the query count with nothing double- or un-counted. (This is the
  // accounting the old code got wrong: collapsed duplicates all bumped
  // serve.cache.misses even though only one propagation ran.)
  QueryEngine::ServeStats stats = engine.GetServeStats();
  EXPECT_EQ(stats.queries,
            static_cast<uint64_t>(kClients) * kReps * kBatch);
  EXPECT_EQ(stats.hits + stats.misses + stats.followers + stats.shed +
                stats.errors,
            stats.queries);
  EXPECT_EQ(stats.leaders + stats.timeouts, stats.misses);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.leaders, 0u);
}

TEST(QueryEngineTest, EpochSwapRacedAgainstCoalescedMissesNeverMixesPins) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());
  auto engine_or =
      QueryEngine::Create(&online, &Candidates(), SmallEngineOptions());
  ASSERT_TRUE(engine_or.ok()) << engine_or.status();
  QueryEngine& engine = **engine_or;

  // Property: under racing epoch swaps, every served ranking is bitwise
  // identical to a cold propagation on the epoch it CLAIMS - a follower
  // can never receive a result computed under a different pin (the
  // flight key embeds the epoch), and the acquire-probe re-pin can never
  // hand out a stale-epoch ranking for a fresh pin.
  struct Observation {
    size_t seed_index;
    uint64_t epoch;
    std::vector<ppr::ScoredAnswer> answers;
  };
  const std::vector<ppr::QuerySeed> shared_stream = SeededStream(6, 0xE9);
  constexpr int kRounds = 5;
  constexpr int kClients = 3;
  constexpr int kReps = 5;

  for (int round = 0; round < kRounds; ++round) {
    const core::ServingEpoch before = online.CurrentEpoch();
    std::vector<std::vector<Observation>> observed(kClients);
    std::atomic<int> failures{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t]() {
        while (!go.load(std::memory_order_relaxed)) {
          std::this_thread::yield();
        }
        for (int rep = 0; rep < kReps; ++rep) {
          for (size_t s = 0; s < shared_stream.size(); ++s) {
            StatusOr<RankedAnswers> served =
                engine.Submit(shared_stream[s]);
            if (!served.ok()) {
              failures.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            observed[t].push_back(
                Observation{s, served->epoch, std::move(served->answers)});
          }
        }
      });
    }
    go.store(true, std::memory_order_relaxed);
    // Swap the epoch mid-traffic.
    ASSERT_TRUE(
        online.AddVote(MakeVote(round % 2 == 0 ? 4 : 3,
                                static_cast<uint32_t>(round)))
            .ok());
    ASSERT_TRUE(online.Flush().ok());
    for (std::thread& t : clients) t.join();
    ASSERT_EQ(failures.load(), 0);
    const core::ServingEpoch after = online.CurrentEpoch();
    ASSERT_EQ(after.epoch, before.epoch + 1);

    // Cold references on both epochs a query could have pinned.
    ppr::EipdEngine cold_before(before.view(),
                                SmallEngineOptions().eipd);
    ppr::EipdEngine cold_after(after.view(), SmallEngineOptions().eipd);
    for (const std::vector<Observation>& thread_obs : observed) {
      for (const Observation& obs : thread_obs) {
        ASSERT_TRUE(obs.epoch == before.epoch || obs.epoch == after.epoch)
            << "served epoch " << obs.epoch << " outside [" << before.epoch
            << ", " << after.epoch << "]";
        ppr::EipdEngine& cold =
            obs.epoch == before.epoch ? cold_before : cold_after;
        StatusOr<std::vector<ppr::ScoredAnswer>> reference = cold.Rank(
            shared_stream[obs.seed_index], Candidates(),
            SmallEngineOptions().top_k);
        ASSERT_TRUE(reference.ok()) << reference.status();
        ExpectIdenticalAnswers(*reference, obs.answers);
      }
    }
  }
}

TEST(QueryEngineTest, FullAdmissionWindowShedsWithResourceExhausted) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());
  QueryEngineOptions options = SmallEngineOptions();
  options.admission.capacity = 2;
  auto engine_or = QueryEngine::Create(&online, &Candidates(), options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status();
  QueryEngine& engine = **engine_or;

  // SubmitBatch admits every query BEFORE enqueuing any work, so with
  // capacity 2 a 32-query batch deterministically admits exactly 2 and
  // sheds exactly 30 - each shed immediately, with kResourceExhausted,
  // never parked on the full window.
  const std::vector<ppr::QuerySeed> stream = SeededStream(32, 0x5EED);
  std::vector<StatusOr<RankedAnswers>> results = engine.SubmitBatch(stream);
  ASSERT_EQ(results.size(), stream.size());
  size_t served = 0;
  size_t shed = 0;
  for (const StatusOr<RankedAnswers>& r : results) {
    if (r.ok()) {
      ++served;
      EXPECT_FALSE(r->answers.empty());
    } else {
      ++shed;
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    }
  }
  EXPECT_EQ(served, 2u);
  EXPECT_EQ(shed, 30u);

  QueryEngine::ServeStats stats = engine.GetServeStats();
  EXPECT_EQ(stats.shed, 30u);
  EXPECT_EQ(stats.hits + stats.misses + stats.followers + stats.shed +
                stats.errors,
            stats.queries);
  EXPECT_EQ(engine.AdmissionStats().admitted, 2u);

  // The window drained: the next query is admitted and served normally.
  StatusOr<RankedAnswers> after =
      engine.Submit(ppr::QuerySeed::UniformOver({0}));
  ASSERT_TRUE(after.ok()) << after.status();
}

TEST(QueryEngineTest, DegradedModeServesValidShorterWalksAndNeverCaches) {
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online(g, SmallOnlineOptions());
  QueryEngineOptions options = SmallEngineOptions();
  options.num_threads = 1;
  options.admission.slo_seconds = 1e-9;  // any real latency breaches it
  options.admission.ewma_alpha = 1.0;
  options.admission.degraded_max_length = 2;
  auto engine_or = QueryEngine::Create(&online, &Candidates(), options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status();
  QueryEngine& engine = **engine_or;

  // The first query is served healthy (no latency sample yet) at full
  // depth and cached; its Finish pushes the EWMA over the SLO.
  const ppr::QuerySeed seed_a = ppr::QuerySeed::UniformOver({0});
  StatusOr<RankedAnswers> first = engine.Submit(seed_a);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->degraded);
  ASSERT_TRUE(engine.Degraded());
  EXPECT_GE(engine.AdmissionStats().degraded_entered, 1u);

  // A degraded miss is served at degraded_max_length: still a valid
  // ranking, bitwise identical to a cold walk of that shorter depth.
  const ppr::QuerySeed seed_b = ppr::QuerySeed::UniformOver({1});
  StatusOr<RankedAnswers> degraded = engine.Submit(seed_b);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_TRUE(degraded->degraded);
  EXPECT_FALSE(degraded->from_cache);
  ppr::EipdOptions short_walk = options.eipd;
  short_walk.max_length = options.admission.degraded_max_length;
  ppr::EipdEngine cold(online.CurrentEpoch().view(), short_walk);
  StatusOr<std::vector<ppr::ScoredAnswer>> reference =
      cold.Rank(seed_b, Candidates(), options.top_k);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ExpectIdenticalAnswers(*reference, degraded->answers);

  // Degraded rankings are never cached: re-asking recomputes (no hit),
  // because a shallow ranking must not masquerade as the full-depth one.
  StatusOr<RankedAnswers> again = engine.Submit(seed_b);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_FALSE(again->from_cache);
  EXPECT_TRUE(again->degraded);

  // Entries cached BEFORE degradation still serve (at full depth).
  StatusOr<RankedAnswers> cached = engine.Submit(seed_a);
  ASSERT_TRUE(cached.ok()) << cached.status();
  EXPECT_TRUE(cached->from_cache);
  EXPECT_FALSE(cached->degraded);
  ExpectIdenticalAnswers(first->answers, cached->answers);

  QueryEngine::ServeStats stats = engine.GetServeStats();
  EXPECT_GE(stats.degraded, 2u);
}

TEST(QueryEngineTest, SparseKernelServesIdenticalToDenseAtZeroThreshold) {
  // The serve path must be kernel-transparent: with sparse_threshold == 0
  // the sparse kernel is bitwise-identical to dense, so two engines over
  // the same graph differing only in EipdOptions::kernel return identical
  // rankings for every query.
  WeightedDigraph g = MakeFixture();
  OnlineKgOptimizer online_dense(g, SmallOnlineOptions());
  OnlineKgOptimizer online_sparse(g, SmallOnlineOptions());

  QueryEngineOptions dense_opts = SmallEngineOptions();
  dense_opts.eipd.kernel = ppr::EipdKernel::kDense;
  QueryEngineOptions sparse_opts = SmallEngineOptions();
  sparse_opts.eipd.kernel = ppr::EipdKernel::kSparse;
  sparse_opts.eipd.sparse_threshold = 0.0;

  auto dense_or =
      QueryEngine::Create(&online_dense, &Candidates(), dense_opts);
  auto sparse_or =
      QueryEngine::Create(&online_sparse, &Candidates(), sparse_opts);
  ASSERT_TRUE(dense_or.ok()) << dense_or.status();
  ASSERT_TRUE(sparse_or.ok()) << sparse_or.status();

  for (const ppr::QuerySeed& seed : SeededStream(32, 77)) {
    StatusOr<RankedAnswers> a = (*dense_or)->Submit(seed);
    StatusOr<RankedAnswers> b = (*sparse_or)->Submit(seed);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    ExpectIdenticalAnswers(a->answers, b->answers);
  }
}

}  // namespace
}  // namespace kgov::serve
