# Empty compiler generated dependencies file for kgov_ppr.
# This may be replaced when dependencies are built.
