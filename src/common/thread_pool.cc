#include "common/thread_pool.h"

#include "common/logging.h"

namespace kgov {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ && empty queue: drain complete.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(pool->Submit([&fn, i]() { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace kgov
